// Command vfocus runs the VFocus pipeline (or one of its ablated variants:
// baseline, vrank, pre+vrank) on benchmark tasks and reports the selected
// candidate and its verification verdict.
//
// Usage:
//
//	vfocus -task cmb_kmap_00 -model deepseek-r1 -variant vfocus -samples 50
//	vfocus -task all -model qwq-32b -variant vrank
//	vfocus -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/llmflags"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/llm"
	"repro/internal/resultstore"
	"repro/internal/testbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "vfocus: %v\n", err)
		os.Exit(1)
	}
}

func parseVariant(s string) (core.Variant, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return core.VariantBaseline, nil
	case "vrank":
		return core.VariantVRank, nil
	case "prevrank", "pre+vrank", "pre":
		return core.VariantPreVRank, nil
	case "vfocus":
		return core.VariantVFocus, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want baseline|vrank|prevrank|vfocus)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vfocus", flag.ContinueOnError)
	var (
		taskID     = fs.String("task", "", "task ID to run, or 'all' for the full suite")
		model      = fs.String("model", "deepseek-r1", "model profile: deepseek-r1|o3-mini-high|qwq-32b|o3-mini-medium")
		variantStr = fs.String("variant", "vfocus", "pipeline variant: baseline|vrank|prevrank|vfocus")
		samples    = fs.Int("samples", 50, "number of candidates (n)")
		seed       = fs.Int64("seed", 1, "random seed")
		list       = fs.Bool("list", false, "list all benchmark tasks and exit")
		showCode   = fs.Bool("code", false, "print the selected candidate's code")
		verbose    = fs.Bool("v", false, "print cluster details")
		soa        = fs.Bool("soa", true, "share struct-of-arrays planes across gang lanes (off: per-lane engines)")
		storeSpec  = fs.String("store", "off", "persistent result store: off, mem, disk, an http(s) URL, or a comma-separated tier list (nearest first)")
		storeDir   = fs.String("store-dir", resultstore.DefaultDir, "root directory of the disk store tier")
		storeCap   = fs.Int("store-cap", 0, "entry cap of the mem store tier (0 = default 4096)")
		memoCap    = fs.Int("memo-cap", 0, "in-process fingerprint memo capacity (0 = default 4096)")
	)
	llmf := llmflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *memoCap > 0 {
		testbench.SetFPMemoCap(*memoCap)
	}
	store, storeDesc, err := resultstore.Open(*storeSpec, *storeDir, *storeCap)
	if err != nil {
		return err
	}
	if store != nil {
		testbench.SetStore(store)
		defer store.Close()
		fmt.Fprintf(os.Stderr, "result store: %s\n", storeDesc)
	}

	tasks := eval.Suite()
	if *list {
		for _, t := range tasks {
			simple := ""
			if t.SimpleDesc {
				simple = " [simple-desc]"
			}
			fmt.Printf("%-28s %s %-10s diff=%.2f%s\n", t.ID, t.Category, t.Family, t.Difficulty, simple)
		}
		return nil
	}
	if *taskID == "" {
		return fmt.Errorf("missing -task (use -list to see available tasks)")
	}
	variant, err := parseVariant(*variantStr)
	if err != nil {
		return err
	}
	profile, err := llm.ProfileByName(*model)
	if err != nil {
		return err
	}

	var selected []eval.Task
	if *taskID == "all" {
		selected = tasks
	} else {
		for _, t := range tasks {
			if t.ID == *taskID {
				selected = []eval.Task{t}
				break
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown task %q (use -list)", *taskID)
		}
	}

	newClient, llmStats, llmClose, err := llmf.Factory()
	if err != nil {
		return err
	}
	defer llmClose()
	if llmStats != nil {
		fmt.Fprintf(os.Stderr, "llm backend: %s\n", llmf.Desc())
		defer func() {
			fmt.Fprintf(os.Stderr, "llm stats: %+v\n", llmStats())
		}()
	}
	client, err := newClient(profile.Name, *seed, selected)
	if err != nil {
		return err
	}
	oracle := exp.NewOracle(selected, *seed+7)

	cfg := core.DefaultConfig(variant, profile.Name)
	cfg.Samples = *samples
	cfg.TBSeed = *seed
	cfg.SelectSeed = *seed
	cfg.RetryBaseDelay = 0
	cfg.LLMRetries = llmf.Retries
	cfg.PerLaneGang = !*soa
	oracle.PerLaneGang = !*soa
	pipe := core.New(client, cfg)

	ctx := context.Background()
	passed := 0
	for _, task := range selected {
		res, rerr := pipe.Run(ctx, task)
		if rerr != nil {
			return fmt.Errorf("task %s: %w", task.ID, rerr)
		}
		ok, verr := oracle.Verify(task.ID, res.Final)
		if verr != nil {
			return verr
		}
		if ok {
			passed++
		}
		status := "FAIL"
		if ok {
			status = "PASS"
		}
		fmt.Printf("%-28s %s  variant=%s clusters=%d earlyExit=%v refinedUsed=%v gen=%d refine=%d judge=%d\n",
			task.ID, status, variant, len(res.Clusters), res.EarlyExit, res.RefinedUsed,
			res.Stats.GenerateCalls, res.Stats.RefineCalls, res.Stats.JudgeCalls)
		if *verbose {
			for ci, cl := range res.Clusters {
				if ci >= 5 {
					fmt.Printf("    ... %d more clusters\n", len(res.Clusters)-ci)
					break
				}
				fmt.Printf("    cluster %d: size=%d refined=%d\n", ci, cl.Score, len(cl.RefinedIdx))
			}
		}
		if *showCode {
			fmt.Println("---- selected candidate ----")
			fmt.Println(res.Final)
		}
	}
	if len(selected) > 1 {
		fmt.Printf("\npass@1: %.1f%% (%d/%d)\n", 100*float64(passed)/float64(len(selected)), passed, len(selected))
	}
	return nil
}
