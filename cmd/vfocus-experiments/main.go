// Command vfocus-experiments regenerates every table and figure of the
// paper's evaluation section:
//
//	vfocus-experiments -exp table1            # Table I
//	vfocus-experiments -exp fig3              # Fig. 3 (a-d)
//	vfocus-experiments -exp fig4              # Fig. 4
//	vfocus-experiments -exp all -quick        # everything, reduced sizes
//
// Full-size runs use the paper's parameters (n=50; 5 runs for Table I, 10
// for Fig. 4) and can take tens of minutes on a laptop; -quick cuts runs and
// sample counts for a fast smoke pass.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/cmd/internal/llmflags"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/resultstore"
	"repro/internal/testbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "vfocus-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vfocus-experiments", flag.ContinueOnError)
	var (
		expName   = fs.String("exp", "all", "experiment: table1|fig3|fig4|all")
		quick     = fs.Bool("quick", false, "reduced sizes for a fast smoke run")
		seed      = fs.Int64("seed", 1, "random seed")
		models    = fs.String("models", "", "comma-separated model list (default: paper's)")
		runs      = fs.Int("runs", 0, "override run count (0 = paper defaults)")
		samples   = fs.Int("samples", 0, "override sample count n (0 = paper defaults)")
		backend   = fs.String("backend", "compiled", "simulation backend: compiled|interpreter")
		legacy    = fs.Bool("legacy-traces", false, "rank and verify on the retained printed-trace path instead of streaming fingerprints (identical results; for differential benchmarking)")
		soa       = fs.Bool("soa", true, "share struct-of-arrays planes across gang lanes (off: per-lane engines; identical results)")
		workers   = fs.Int("workers", core.DefaultWorkers(), "task-level worker pool size")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		storeSpec = fs.String("store", "off", "persistent result store: off, mem, disk, an http(s) URL, or a comma-separated tier list (nearest first)")
		storeDir  = fs.String("store-dir", resultstore.DefaultDir, "root directory of the disk store tier")
		storeCap  = fs.Int("store-cap", 0, "entry cap of the mem store tier (0 = default 4096)")
		memoCap   = fs.Int("memo-cap", 0, "in-process fingerprint memo capacity (0 = default 4096)")
	)
	llmf := llmflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, storeDesc, err := resultstore.Open(*storeSpec, *storeDir, *storeCap)
	if err != nil {
		return err
	}
	if store != nil {
		testbench.SetStore(store)
		defer store.Close()
		fmt.Fprintf(os.Stderr, "result store: %s\n", storeDesc)
	}

	newClient, llmStats, llmClose, err := llmf.Factory()
	if err != nil {
		return err
	}
	defer llmClose()
	if llmStats != nil {
		fmt.Fprintf(os.Stderr, "llm backend: %s\n", llmf.Desc())
		defer func() {
			fmt.Fprintf(os.Stderr, "llm stats: %+v\n", llmStats())
		}()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "vfocus-experiments: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	var be testbench.Backend
	switch *backend {
	case "compiled":
		be = testbench.BackendCompiled
	case "interpreter":
		be = testbench.BackendInterpreter
	default:
		return fmt.Errorf("unknown backend %q (want compiled|interpreter)", *backend)
	}

	var modelList []string
	if *models != "" {
		modelList = strings.Split(*models, ",")
	}
	tasks := eval.Suite()
	ctx := context.Background()

	wantTable1 := *expName == "table1" || *expName == "all"
	wantFig3 := *expName == "fig3" || *expName == "all"
	wantFig4 := *expName == "fig4" || *expName == "all"
	if !wantTable1 && !wantFig3 && !wantFig4 {
		return fmt.Errorf("unknown experiment %q (want table1|fig3|fig4|all)", *expName)
	}

	if wantTable1 {
		cfg := exp.Table1Config{
			Models:       modelList,
			Tasks:        tasks,
			Samples:      pick(*samples, 50, 20, *quick),
			Runs:         pick(*runs, 5, 1, *quick),
			Seed:         *seed,
			Workers:      *workers,
			Backend:      be,
			LegacyTraces: *legacy,
			PerLaneGang:  !*soa,
			FPMemoCap:    *memoCap,
			NewClient:    newClient,
			LLMRetries:   llmf.Retries,
		}
		start := time.Now()
		res, err := exp.RunTable1(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("(table1 completed in %s)\n\n", time.Since(start).Round(time.Second))
	}

	if wantFig3 {
		cfg := exp.Fig3Config{
			Models:       modelList,
			Tasks:        tasks,
			Samples:      pick(*samples, 50, 20, *quick),
			Bins:         10,
			Seed:         *seed,
			Workers:      *workers,
			Backend:      be,
			LegacyTraces: *legacy,
			PerLaneGang:  !*soa,
			FPMemoCap:    *memoCap,
			NewClient:    newClient,
		}
		start := time.Now()
		res, err := exp.RunFig3(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("(fig3 completed in %s)\n\n", time.Since(start).Round(time.Second))
	}

	if wantFig4 {
		sizes := []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
		if *quick {
			sizes = []int{5, 15, 30, 50}
		}
		cfg := exp.Fig4Config{
			Models:       modelList,
			Tasks:        tasks,
			SampleSizes:  sizes,
			Runs:         pick(*runs, 10, 2, *quick),
			Seed:         *seed,
			Workers:      *workers,
			Backend:      be,
			LegacyTraces: *legacy,
			PerLaneGang:  !*soa,
			FPMemoCap:    *memoCap,
			NewClient:    newClient,
			LLMRetries:   llmf.Retries,
		}
		start := time.Now()
		res, err := exp.RunFig4(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("(fig4 completed in %s)\n", time.Since(start).Round(time.Second))
	}
	return nil
}

// pick resolves an override/default/quick triple.
func pick(override, full, quick int, isQuick bool) int {
	if override > 0 {
		return override
	}
	if isQuick {
		return quick
	}
	return full
}
