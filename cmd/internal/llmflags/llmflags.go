// Package llmflags registers the LLM-backend flag block shared by the
// vfocus, vfocus-experiments and vfocusd binaries and turns it into an
// httpclient factory. Keeping the mapping in one place guarantees the three
// commands expose identical -llm semantics.
package llmflags

import (
	"flag"
	"fmt"

	"repro/internal/llm/httpclient"
)

// Flags holds the parsed LLM-backend flag values.
type Flags struct {
	Mode     string
	URL      string
	Fixtures string
	RPS      float64
	Retries  int
}

// Register installs the -llm* flags on fs and returns the value holder.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Mode, "llm", "off", "LLM backend mode: off (simulated, hermetic), record (live HTTP, fixtures written), replay (fixtures only, zero egress)")
	fs.StringVar(&f.URL, "llm-url", "", "OpenAI-style completions endpoint base URL; with -llm off selects live HTTP, with -llm record empty runs the embedded reference server")
	fs.StringVar(&f.Fixtures, "llm-fixtures", "", "fixture directory for -llm record/replay")
	fs.Float64Var(&f.RPS, "llm-rps", 0, "client-side sustained request rate limit in requests/sec (0 = unlimited)")
	fs.IntVar(&f.Retries, "llm-retries", 4, "retry budget per LLM request: the pipeline's transient-retry bound and the HTTP backend's wire retry budget (keep 4 to reproduce published request streams)")
	return f
}

// Factory validates the flag block and builds the client factory. The
// returned stats hook is nil for the hermetic simulated backend; close must
// run at exit (it releases the shared transport and any embedded server).
func (f *Flags) Factory() (factory httpclient.ClientFactory, stats func() httpclient.Stats, close func() error, err error) {
	switch f.Mode {
	case httpclient.ModeOff, httpclient.ModeRecord, httpclient.ModeReplay:
	default:
		return nil, nil, nil, fmt.Errorf("unknown -llm mode %q (want off|record|replay)", f.Mode)
	}
	if f.Mode != httpclient.ModeOff && f.Fixtures == "" {
		return nil, nil, nil, fmt.Errorf("-llm %s requires -llm-fixtures", f.Mode)
	}
	return httpclient.Factory(httpclient.Options{
		URL:        f.URL,
		Mode:       f.Mode,
		FixtureDir: f.Fixtures,
		RPS:        f.RPS,
		Retries:    f.Retries,
	})
}

// Desc names the effective backend for logs and /statsz.
func (f *Flags) Desc() string {
	if f.Mode == httpclient.ModeOff && f.URL == "" {
		return "sim"
	}
	if f.URL == "" {
		return f.Mode
	}
	return f.Mode + " " + f.URL
}
