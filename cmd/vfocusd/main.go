// Command vfocusd serves the VFocus ranking pipeline as a long-running
// HTTP/JSON daemon: submit a (golden, buggy-candidate-pool) job, stream
// ranked clusters back as NDJSON, cancel mid-flight by ID. SIGINT/SIGTERM
// shut down gracefully — intake stops, in-flight jobs drain under the
// drain deadline, stragglers are force-cancelled.
//
// Usage:
//
//	vfocusd -addr :8080 -workers 4 -queue-cap 16
//
// See the README's "Running vfocusd" section for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/cmd/internal/llmflags"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/serve/faultinject"
	"repro/internal/testbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "vfocusd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vfocusd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 2, "concurrent ranking jobs")
		queueCap    = fs.Int("queue-cap", 16, "max queued jobs before 429")
		jobTimeout  = fs.Duration("job-timeout", 5*time.Minute, "per-job run deadline (0 = none)")
		drain       = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		rankWorkers = fs.Int("rank-workers", 4, "simulation workers per job")
		model       = fs.String("model", "deepseek-r1", "default simulated-LLM profile for generated pools")
		storeSpec   = fs.String("store", "off", "persistent result store: off, mem, disk, an http(s) URL, or a comma-separated tier list (nearest first)")
		storeDir    = fs.String("store-dir", resultstore.DefaultDir, "root directory of the disk store tier")
		storeCap    = fs.Int("store-cap", 0, "entry cap of the mem store tier (0 = default 4096)")
		memoCap     = fs.Int("memo-cap", 0, "in-process fingerprint memo capacity (0 = default 4096)")
	)
	llmf := llmflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *memoCap > 0 {
		testbench.SetFPMemoCap(*memoCap)
	}
	store, storeDesc, err := resultstore.Open(*storeSpec, *storeDir, *storeCap)
	if err != nil {
		return err
	}
	if store != nil {
		testbench.SetStore(store)
		defer store.Close()
		log.Printf("result store: %s", storeDesc)
	}

	// Test-only throttle for black-box harnesses (scripts/smoke_vfocusd.sh):
	// sleep this many milliseconds at every rank batch, so an external
	// driver can reliably land a cancel or an overload while a job is
	// mid-compute. Off (and zero-cost) unless the variable is set.
	if ms := os.Getenv("VFOCUSD_SLOW_BATCH_MS"); ms != "" {
		d, err := strconv.Atoi(ms)
		if err != nil || d < 0 {
			return fmt.Errorf("bad VFOCUSD_SLOW_BATCH_MS %q", ms)
		}
		faultinject.ArmFrom(faultinject.PointRankBatch, "", 1, func() {
			time.Sleep(time.Duration(d) * time.Millisecond)
		})
	}

	newClient, llmStats, llmClose, err := llmf.Factory()
	if err != nil {
		return err
	}
	defer llmClose()
	if llmStats != nil {
		log.Printf("llm backend: %s", llmf.Desc())
	}

	scfg := serve.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		JobTimeout:  *jobTimeout,
		RankWorkers: *rankWorkers,
		Model:       *model,
		StoreDesc:   storeDesc,
		NewClient:   newClient,
		LLMDesc:     llmf.Desc(),
	}
	if llmStats != nil {
		scfg.LLMStats = func() map[string]int64 { return llmStats().Map() }
	}
	srv := serve.New(scfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("vfocusd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %s, draining (deadline %s)", sig, *drain)
	}

	// Stop accepting connections first, then drain the job scheduler.
	// Streaming connections of still-running jobs get the drain window to
	// finish; after it, jobs are force-cancelled and their streams see the
	// terminal cancelled event.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	srv.Shutdown(*drain)
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("vfocusd: drained cleanly")
	return nil
}
