// Command benchgen exports the 156-task benchmark to disk in a layout a
// downstream user (or an external simulator like Icarus Verilog) can
// consume: one directory per task holding the natural-language spec, the
// golden implementation, and a rendered printing testbench.
//
//	benchgen -out ./bench            # export all tasks
//	benchgen -out ./bench -family kmap
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/eval"
	"repro/internal/testbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	var (
		out    = fs.String("out", "bench_export", "output directory")
		family = fs.String("family", "", "only export this task family")
		seed   = fs.Int64("seed", 1, "testbench generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tasks := eval.Suite()
	exported := 0
	for _, task := range tasks {
		if *family != "" && task.Family != *family {
			continue
		}
		dir := filepath.Join(*out, task.ID)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("mkdir %s: %w", dir, err)
		}
		gen := testbench.NewGenerator(*seed + int64(task.Index))
		st := gen.Ranking(task.Ifc)
		files := map[string]string{
			"spec.txt":     task.Spec + "\n",
			"golden.v":     task.Golden,
			"testbench.v":  testbench.RenderVerilog(st, eval.TopModule),
			"metadata.txt": fmt.Sprintf("id: %s\ncategory: %s\nfamily: %s\nsimple_desc: %v\n", task.ID, task.Category, task.Family, task.SimpleDesc),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", name, err)
			}
		}
		exported++
	}
	fmt.Printf("exported %d tasks to %s\n", exported, *out)
	return nil
}
