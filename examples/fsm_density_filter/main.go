// FSM density filtering: visualize the paper's "reasoning sweet spot" on
// the hardest task family.
//
// This example samples candidates for FSM tasks, prints the relationship
// between normalized reasoning length and functional correctness, and then
// contrasts VRank with Pre+VRank (which adds validity retry and
// Density-guided Filtering).
//
//	go run ./examples/fsm_density_filter
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/llm"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fsm_density_filter: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	suite := eval.Suite()
	var fsms []eval.Task
	for _, t := range suite {
		if t.Family == "fsm" || t.Family == "seqrec" {
			fsms = append(fsms, t)
		}
	}
	fmt.Printf("%d FSM/sequence-recognizer tasks (the paper's hardest families)\n\n", len(fsms))

	profile, err := llm.ProfileByName("deepseek-r1")
	if err != nil {
		return err
	}
	client, err := llm.NewSimClient(profile, 21, fsms)
	if err != nil {
		return err
	}
	oracle := exp.NewOracle(fsms, 5)
	ctx := context.Background()

	// Part 1: the length-correctness relationship that motivates filtering.
	var norm []float64
	var passed []bool
	for _, task := range fsms {
		type sample struct {
			tokens int
			pass   bool
		}
		var ss []sample
		minT, maxT := 1<<31, 0
		for i := 0; i < 40; i++ {
			resp, gerr := client.Generate(ctx, llm.GenerateRequest{TaskID: task.ID, Spec: task.Spec, SampleIndex: i})
			if gerr != nil || resp.ReasoningTokens <= 0 {
				continue
			}
			ok, verr := oracle.Verify(task.ID, resp.Code)
			if verr != nil {
				return verr
			}
			ss = append(ss, sample{tokens: resp.ReasoningTokens, pass: ok})
			if resp.ReasoningTokens < minT {
				minT = resp.ReasoningTokens
			}
			if resp.ReasoningTokens > maxT {
				maxT = resp.ReasoningTokens
			}
		}
		for _, s := range ss {
			n := 0.5
			if maxT > minT {
				n = float64(s.tokens-minT) / float64(maxT-minT)
			}
			norm = append(norm, n)
			passed = append(passed, s.pass)
		}
	}
	fmt.Println("Pass rate by normalized reasoning length (deepseek-r1, FSM families):")
	for _, b := range metrics.BinPassRates(norm, passed, 5) {
		bar := ""
		for i := 0; i < int(b.PassRate*40); i++ {
			bar += "#"
		}
		fmt.Printf("  [%.1f,%.1f)  n=%-4d %5.1f%%  %s\n", b.Lo, b.Hi, b.Count, 100*b.PassRate, bar)
	}

	// Part 2: what the filter buys end to end.
	fmt.Println("\nVRank vs Pre+VRank on the same tasks:")
	vr, pre := 0, 0
	for _, task := range fsms {
		for variant, counter := range map[core.Variant]*int{
			core.VariantVRank:    &vr,
			core.VariantPreVRank: &pre,
		} {
			cfg := core.DefaultConfig(variant, profile.Name)
			cfg.Samples = 40
			res, rerr := core.New(client, cfg).Run(ctx, task)
			if rerr != nil {
				return rerr
			}
			ok, verr := oracle.Verify(task.ID, res.Final)
			if verr != nil {
				return verr
			}
			if ok {
				*counter++
			}
		}
	}
	fmt.Printf("  VRank:     %d/%d\n", vr, len(fsms))
	fmt.Printf("  Pre+VRank: %d/%d  (validity retry + Density-guided Filtering)\n", pre, len(fsms))
	return nil
}
