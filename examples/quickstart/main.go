// Quickstart: run the full VFocus pipeline on a single benchmark task and
// inspect what each stage did.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/llm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Pick a task from the 156-task VerilogEval-Human-like suite.
	tasks := eval.Suite()
	var task eval.Task
	for _, t := range tasks {
		if t.ID == "seq_cnt_01_decade" {
			task = t
			break
		}
	}
	fmt.Printf("Task %s (%s/%s):\n  %s\n\n", task.ID, task.Category, task.Family, task.Spec)

	// 2. Build a model client. The simulated backend reproduces each
	// model's empirical correctness-vs-reasoning-length behavior; a real
	// HTTP client would implement the same llm.Client interface.
	profile, err := llm.ProfileByName("deepseek-r1")
	if err != nil {
		return err
	}
	client, err := llm.NewSimClient(profile, 42, tasks)
	if err != nil {
		return err
	}

	// 3. Run the three-stage VFocus pipeline.
	cfg := core.DefaultConfig(core.VariantVFocus, profile.Name)
	cfg.Samples = 30
	pipe := core.New(client, cfg)
	res, err := pipe.Run(context.Background(), task)
	if err != nil {
		return err
	}

	valid, filtered := 0, 0
	for _, c := range res.Candidates {
		if c.Valid {
			valid++
		}
		if c.Filtered {
			filtered++
		}
	}
	fmt.Printf("Pre-ranking: %d/%d candidates valid, %d dropped by Density-guided Filtering\n",
		valid, len(res.Candidates), filtered)
	fmt.Printf("Ranking: %d behavioral clusters; top cluster holds %d candidates\n",
		len(res.Clusters), res.Clusters[0].Score)
	fmt.Printf("Post-ranking: earlyExit=%v refinedUsed=%v (refine calls: %d, judge calls: %d)\n\n",
		res.EarlyExit, res.RefinedUsed, res.Stats.RefineCalls, res.Stats.JudgeCalls)

	fmt.Println("Selected implementation:")
	fmt.Println(res.Final)

	// 4. Verify the pick against the reference testbench (the golden
	// oracle the paper uses only for final scoring).
	oracle := exp.NewOracle(tasks, 7)
	ok, err := oracle.Verify(task.ID, res.Final)
	if err != nil {
		return err
	}
	fmt.Printf("Verification against reference testbench: %v\n", ok)
	return nil
}
