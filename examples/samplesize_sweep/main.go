// Sample-size sweep: a miniature Fig. 4 over a task subset, via the public
// experiment API.
//
// Shows the paper's RQ3 claim: VFocus's margin over both the baseline and
// VRank is largest at small sample counts, because self-consistency needs
// high-quality samples and small pools are hit hardest by invalid or
// off-sweet-spot candidates.
//
//	go run ./examples/samplesize_sweep
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "samplesize_sweep: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	suite := eval.Suite()
	// Every 4th task keeps the sweep fast while spanning all families.
	var tasks []eval.Task
	for i, t := range suite {
		if i%4 == 0 {
			tasks = append(tasks, t)
		}
	}
	cfg := exp.Fig4Config{
		Models:      []string{"qwq-32b"},
		Tasks:       tasks,
		SampleSizes: []int{5, 10, 20, 40},
		Runs:        3,
		Seed:        99,
	}
	res, err := exp.RunFig4(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())

	s := res.Series[0]
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	fmt.Printf("\nVFocus margin over VRank: %+0.1f%% at n=%d vs %+0.1f%% at n=%d\n",
		100*(first.VFocus.Mean-first.VRank.Mean), first.N,
		100*(last.VFocus.Mean-last.VRank.Mean), last.N)
	return nil
}
