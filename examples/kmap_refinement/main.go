// K-map inter-cluster refinement: the paper's "simple description" path.
//
// K-map tasks are exactly the case where VFocus lets the model *judge the
// expected output* on the test case where the top clusters disagree, instead
// of blindly trusting the majority. This example runs every k-map task under
// VRank and VFocus and shows where output judging changes the outcome.
//
//	go run ./examples/kmap_refinement
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/llm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "kmap_refinement: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	suite := eval.Suite()
	var kmaps []eval.Task
	for _, t := range suite {
		if t.Family == "kmap" {
			kmaps = append(kmaps, t)
		}
	}
	fmt.Printf("%d k-map tasks (all SimpleDesc: eligible for inter-cluster output judging)\n\n", len(kmaps))

	profile, err := llm.ProfileByName("qwq-32b") // the weakest model benefits most
	if err != nil {
		return err
	}
	client, err := llm.NewSimClient(profile, 7, kmaps)
	if err != nil {
		return err
	}
	oracle := exp.NewOracle(kmaps, 14)
	ctx := context.Background()

	runVariant := func(task eval.Task, v core.Variant) (*core.Result, bool, error) {
		cfg := core.DefaultConfig(v, profile.Name)
		cfg.Samples = 40
		pipe := core.New(client, cfg)
		res, err := pipe.Run(ctx, task)
		if err != nil {
			return nil, false, err
		}
		ok, err := oracle.Verify(task.ID, res.Final)
		return res, ok, err
	}

	vrankPass, vfocusPass, judged := 0, 0, 0
	fmt.Printf("%-14s %-8s %-8s %-7s %s\n", "task", "VRank", "VFocus", "judged", "spec (minterms)")
	for _, task := range kmaps {
		_, vrOK, err := runVariant(task, core.VariantVRank)
		if err != nil {
			return err
		}
		vfRes, vfOK, err := runVariant(task, core.VariantVFocus)
		if err != nil {
			return err
		}
		if vrOK {
			vrankPass++
		}
		if vfOK {
			vfocusPass++
		}
		if vfRes.JudgeVoted {
			judged++
		}
		spec := task.Spec
		if len(spec) > 52 {
			spec = spec[:52] + "..."
		}
		fmt.Printf("%-14s %-8v %-8v %-7v %s\n", task.ID, vrOK, vfOK, vfRes.JudgeVoted, spec)
	}
	fmt.Printf("\nVRank: %d/%d correct; VFocus: %d/%d correct; output judging fired on %d tasks\n",
		vrankPass, len(kmaps), vfocusPass, len(kmaps), judged)
	return nil
}
