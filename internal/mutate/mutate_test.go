package mutate

import (
	"repro/internal/xrng"
	"testing"

	"repro/internal/eval"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/printer"
	"repro/internal/verilog/sem"
)

func goldenModule(t *testing.T, task eval.Task) (*ast.Source, *ast.Module) {
	t.Helper()
	src, err := parser.Parse(task.Golden)
	if err != nil {
		t.Fatalf("%s: %v", task.ID, err)
	}
	return src, src.FindModule(eval.TopModule)
}

// replaceTop reprints a source with the top module swapped for mod.
func replaceTop(src *ast.Source, mod *ast.Module) string {
	out := ""
	for _, m := range src.Modules {
		if m.Name == mod.Name {
			out += printer.PrintModule(mod)
		} else {
			out += printer.PrintModule(m)
		}
		out += "\n"
	}
	return out
}

// TestEveryGoldenHasSites: the mutation engine must find semantic sites in
// every benchmark design, otherwise the simulated LLM could not produce
// wrong candidates for it.
func TestEveryGoldenHasSites(t *testing.T) {
	for _, task := range eval.Suite() {
		_, top := goldenModule(t, task)
		sites := CollectSites(ast.CloneModule(top))
		if len(sites) == 0 {
			t.Errorf("%s: no mutation sites", task.ID)
		}
	}
}

// TestSemanticMutantsStayValid: mutants must still parse and pass semantic
// checks (they are realistic wrong code, not garbage).
func TestSemanticMutantsStayValid(t *testing.T) {
	tasks := eval.Suite()
	rng := xrng.New(5)
	for _, task := range tasks {
		src, top := goldenModule(t, task)
		for trial := 0; trial < 3; trial++ {
			mutant, applied := Semantic(top, rng, Config{Count: 1 + trial%2})
			if mutant == nil {
				t.Fatalf("%s: no mutant", task.ID)
			}
			if len(applied) == 0 {
				t.Fatalf("%s: mutant without applied ops", task.ID)
			}
			text := replaceTop(src, mutant)
			re, err := parser.Parse(text)
			if err != nil {
				t.Fatalf("%s trial %d: mutant does not parse: %v\nops=%v\n%s",
					task.ID, trial, err, applied, text)
			}
			if res := sem.Check(re); res.HasErrors() {
				t.Fatalf("%s trial %d: mutant fails sem: %v\nops=%v",
					task.ID, trial, res.Err(), applied)
			}
		}
	}
}

// TestSemanticMutantsMostlyChangeBehavior: across the suite, a large
// majority of single-bug mutants must behave differently from the golden
// under the dense verification stimulus (equivalent mutants are tolerated
// but must be rare).
func TestSemanticMutantsMostlyChangeBehavior(t *testing.T) {
	tasks := eval.Suite()
	rng := xrng.New(9)
	changed, total := 0, 0
	for i, task := range tasks {
		if i%3 != 0 {
			continue // subsample for speed
		}
		src, top := goldenModule(t, task)
		gen := testbench.NewGenerator(3)
		st := gen.Verification(task.Ifc)
		goldenTrace := testbench.Run(src, eval.TopModule, st)
		if goldenTrace.Err != nil {
			t.Fatalf("%s: golden trace: %v", task.ID, goldenTrace.Err)
		}
		for trial := 0; trial < 4; trial++ {
			mutant, _ := Semantic(top, rng, Config{Count: 1})
			text := replaceTop(src, mutant)
			re, err := parser.Parse(text)
			if err != nil {
				t.Fatalf("%s: %v", task.ID, err)
			}
			tr := testbench.Run(re, eval.TopModule, st)
			total++
			if tr.Err != nil || !testbench.Agrees(tr, goldenTrace) {
				changed++
			}
		}
	}
	frac := float64(changed) / float64(total)
	if frac < 0.70 {
		t.Errorf("only %.0f%% of mutants (%d/%d) changed behavior; bug injection too weak",
			100*frac, changed, total)
	}
}

// TestCosmeticPreservesBehavior is the core invariant behind clustering:
// cosmetic rewrites of a design must produce identical traces.
func TestCosmeticPreservesBehavior(t *testing.T) {
	tasks := eval.Suite()
	rng := xrng.New(77)
	for i, task := range tasks {
		if i%2 != 0 {
			continue
		}
		src, top := goldenModule(t, task)
		gen := testbench.NewGenerator(13)
		st := gen.Verification(task.Ifc)
		goldenTrace := testbench.Run(src, eval.TopModule, st)
		if goldenTrace.Err != nil {
			t.Fatalf("%s: %v", task.ID, goldenTrace.Err)
		}
		for trial := 0; trial < 3; trial++ {
			variant := Cosmetic(top, rng)
			text := replaceTop(src, variant)
			re, err := parser.Parse(text)
			if err != nil {
				t.Fatalf("%s: cosmetic variant does not parse: %v\n%s", task.ID, err, text)
			}
			tr := testbench.Run(re, eval.TopModule, st)
			if tr.Err != nil {
				t.Fatalf("%s: cosmetic variant fails simulation: %v\n%s", task.ID, tr.Err, text)
			}
			if !testbench.Agrees(tr, goldenTrace) {
				t.Errorf("%s trial %d: cosmetic rewrite changed behavior\n%s", task.ID, trial, text)
			}
		}
	}
}

// TestCanonicalMutationIsShared: two candidates using the same canonical
// seed must apply the same mutation and therefore print identical behavior.
func TestCanonicalMutationIsShared(t *testing.T) {
	task := eval.Suite()[90] // a sequential task with plenty of sites
	src, top := goldenModule(t, task)
	cfg := Config{Count: 1, CanonicalSeed: 12345, CanonicalProb: 1}
	m1, ops1 := Semantic(top, xrng.New(1), cfg)
	m2, ops2 := Semantic(top, xrng.New(2), cfg)
	if len(ops1) != 1 || len(ops2) != 1 || ops1[0] != ops2[0] {
		t.Fatalf("canonical ops differ: %v vs %v", ops1, ops2)
	}
	gen := testbench.NewGenerator(3)
	st := gen.Verification(task.Ifc)
	t1, _ := parser.Parse(replaceTop(src, m1))
	t2, _ := parser.Parse(replaceTop(src, m2))
	tr1 := testbench.Run(t1, eval.TopModule, st)
	tr2 := testbench.Run(t2, eval.TopModule, st)
	if !testbench.Agrees(tr1, tr2) {
		t.Error("canonical mutants disagree behaviorally")
	}
}

func TestSemanticDoesNotMutateOriginal(t *testing.T) {
	task := eval.Suite()[0]
	_, top := goldenModule(t, task)
	before := printer.PrintModule(top)
	rng := xrng.New(4)
	for i := 0; i < 5; i++ {
		Semantic(top, rng, Config{Count: 2})
		Cosmetic(top, rng)
	}
	if printer.PrintModule(top) != before {
		t.Error("mutation touched the original module")
	}
}

func TestReorderMatters(t *testing.T) {
	mk := func(lhs string, blocking bool) ast.Stmt {
		return &ast.AssignStmt{LHS: &ast.Ident{Name: lhs}, RHS: &ast.Number{Text: "1"}, Blocking: blocking}
	}
	if reorderMatters(mk("a", false), mk("b", false)) {
		t.Error("independent NBA pair should not matter")
	}
	if !reorderMatters(mk("a", false), mk("a", false)) {
		t.Error("same-target NBA pair matters")
	}
	if !reorderMatters(mk("a", true), mk("b", false)) {
		t.Error("blocking + NBA matters")
	}
	if !reorderMatters(&ast.Block{}, mk("a", false)) {
		t.Error("non-assign statements matter")
	}
}
