package mutate

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/printer"
	"repro/internal/xrng"
)

// semanticFullClone is the legacy mutant pipeline: deep-clone the module,
// bind closure sites on the clone (CollectSites), then choose and apply with
// the exact selection loop Semantic uses. It is the reference the clone-light
// path is held against.
func semanticFullClone(m *ast.Module, rng *xrng.Rand, cfg Config) (*ast.Module, []string) {
	clone := ast.CloneModule(m)
	sites := CollectSites(clone)
	if len(sites) == 0 {
		return nil, nil
	}
	count := cfg.Count
	if count < 1 {
		count = 1
	}
	var applied []string
	used := make(map[int]bool)
	for k := 0; k < count && len(used) < len(sites); k++ {
		var idx int
		if k == 0 && cfg.CanonicalProb > 0 && rng.Float64() < cfg.CanonicalProb {
			canon := xrng.New(uint64(cfg.CanonicalSeed))
			idx = canon.Intn(len(sites))
		} else {
			idx = rng.Intn(len(sites))
		}
		if used[idx] {
			for used[idx] {
				idx = (idx + 1) % len(sites)
			}
		}
		used[idx] = true
		sites[idx].Apply()
		applied = append(applied, sites[idx].Kind+": "+sites[idx].Desc)
	}
	return clone, applied
}

// TestPathCopyMatchesFullClone is the random mutation harness gating the
// clone-light path: across the benchmark suite, seeds, mutation counts, and
// canonical-misconception settings, path-copied mutants must print
// byte-identical source (and report identical applied ops) to full-clone
// mutants, and the golden module must come through untouched.
func TestPathCopyMatchesFullClone(t *testing.T) {
	tasks := eval.Suite()
	trials := 0
	for ti, task := range tasks {
		if ti%2 != 0 {
			continue // subsample for speed; still spans every family
		}
		_, top := goldenModule(t, task)
		before := printer.PrintModule(top)
		for seed := uint64(0); seed < 6; seed++ {
			cfg := Config{Count: int(seed%3) + 1}
			if seed%2 == 1 {
				cfg.CanonicalSeed = int64(1000 + ti)
				cfg.CanonicalProb = 0.5
			}
			want, wantOps := semanticFullClone(top, xrng.New(seed*7+1), cfg)
			got, gotOps := Semantic(top, xrng.New(seed*7+1), cfg)
			if (want == nil) != (got == nil) {
				t.Fatalf("%s seed %d: nil mismatch (ref %v, path %v)", task.ID, seed, want == nil, got == nil)
			}
			if want == nil {
				continue
			}
			if len(wantOps) != len(gotOps) {
				t.Fatalf("%s seed %d: ops %v vs %v", task.ID, seed, wantOps, gotOps)
			}
			for i := range wantOps {
				if wantOps[i] != gotOps[i] {
					t.Fatalf("%s seed %d: op %d %q vs %q", task.ID, seed, i, wantOps[i], gotOps[i])
				}
			}
			wantSrc := printer.PrintModule(want)
			gotSrc := printer.PrintModule(got)
			if wantSrc != gotSrc {
				t.Fatalf("%s seed %d (ops %v): path-copied mutant diverges from full clone\n--- full clone ---\n%s\n--- path copy ---\n%s",
					task.ID, seed, wantOps, wantSrc, gotSrc)
			}
			trials++
		}
		if after := printer.PrintModule(top); after != before {
			t.Fatalf("%s: Semantic mutated the golden module", task.ID)
		}
	}
	t.Logf("%d mutants compared byte-identical", trials)
}

// TestPathCopySharesUntouchedSubtrees pins the point of the exercise: a
// single-site mutant must share (alias) at least one item with the golden —
// i.e. it is not a disguised full clone.
func TestPathCopySharesUntouchedSubtrees(t *testing.T) {
	task := eval.Suite()[90]
	_, top := goldenModule(t, task)
	if len(top.Items) < 2 {
		t.Skip("needs a module with several items")
	}
	mutant, _ := Semantic(top, xrng.New(3), Config{Count: 1})
	if mutant == nil {
		t.Fatal("no mutant")
	}
	shared := 0
	for i := range mutant.Items {
		if i < len(top.Items) && mutant.Items[i] == top.Items[i] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("mutant shares no items with the golden; path copy degenerated to a full clone")
	}
}

// TestSiteCacheReuse: repeated Semantic calls on one module must reuse the
// cached site collection (pointer-keyed), not re-collect.
func TestSiteCacheReuse(t *testing.T) {
	task := eval.Suite()[0]
	_, top := goldenModule(t, task)
	a := cachedSites(top)
	b := cachedSites(top)
	if a != b {
		t.Error("cachedSites did not reuse the memoized collection")
	}
	if len(a.sites) == 0 {
		t.Error("no sites collected")
	}
}
