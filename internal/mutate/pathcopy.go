package mutate

import (
	"fmt"

	"repro/internal/verilog/ast"
)

// This file materializes mutants from PathSites. In copy mode the walker
// copies exactly the nodes on the path from the module root to each chosen
// anchor (plus any node a mutation writes through), so a mutant shares every
// untouched subtree with the golden module — the clone-light replacement for
// CloneModule-per-candidate. In in-place mode (mutCtx.copied == nil) the
// walker only navigates, which is how CollectSites binds its legacy
// apply-on-a-clone closures.
//
// Mutants therefore alias golden nodes. That is safe under this package's
// contract: semantic applies only ever write to nodes the walker has
// freshened, Cosmetic's copy-on-write passes never mutate their input
// (rewrite.go's hook contract), and downstream consumers (printer,
// simulator) never mutate candidate ASTs in place.

// mutCtx tracks one mutant under construction.
type mutCtx struct {
	root     *ast.Module
	copied   map[any]bool // nil: navigate without copying (in-place mode)
	declared []string
}

// newCopyCtx starts a copy-mode mutant: a shallow module copy whose Items
// slice is fresh but whose items still alias the golden.
func newCopyCtx(m *ast.Module, declared []string) *mutCtx {
	root := &ast.Module{
		ModPos: m.ModPos,
		Name:   m.Name,
		Ports:  m.Ports,
		Items:  append([]ast.Item(nil), m.Items...),
	}
	ctx := &mutCtx{root: root, copied: map[any]bool{root: true}, declared: declared}
	return ctx
}

// resolve walks the path from the root, copying unvisited nodes along the
// spine in copy mode, and returns the anchor plus its parent and final step
// (for mutations that rewrite the parent's slot, like drop-invert). Copies
// are memoized across resolves of one mutant, so overlapping spines of a
// multi-mutation candidate converge on the same fresh nodes and node
// identity behaves exactly as it does on a full clone.
func (ctx *mutCtx) resolve(path []step) (node, parent any, last step) {
	cur := any(ctx.root)
	for _, st := range path {
		child := getChild(cur, st)
		if ctx.copied != nil && !ctx.copied[child] {
			child = copyShallow(child)
			ctx.copied[child] = true
			setChild(cur, st, child)
		}
		parent, cur, last = cur, child, st
	}
	return cur, parent, last
}

// freshExpr freshens the expression in *slot (a field of an already-fresh
// parent) and returns it, so a mutation may write through it.
func (ctx *mutCtx) freshExpr(slot *ast.Expr) ast.Expr {
	e := *slot
	if ctx.copied != nil && !ctx.copied[e] {
		e = copyShallow(e).(ast.Expr)
		ctx.copied[e] = true
		*slot = e
	}
	return e
}

// freshItem freshens case arm i of an already-fresh Case node.
func (ctx *mutCtx) freshItem(c *ast.Case, i int) *ast.CaseItem {
	it := c.Items[i]
	if ctx.copied != nil && !ctx.copied[it] {
		it = copyShallow(it).(*ast.CaseItem)
		ctx.copied[it] = true
		c.Items[i] = it
	}
	return it
}

// bindSite resolves a site against the mutant under construction and returns
// its apply action, bound to fresh nodes. All chosen sites of a mutant are
// bound before any apply runs — the same capture-then-apply discipline the
// closure-over-clone collector had — so mutations compose identically.
func bindSite(ctx *mutCtx, s *PathSite) func() {
	node, parent, last := ctx.resolve(s.path)
	switch s.Kind {
	case "wrong-signal":
		x := node.(*ast.Ident)
		name := x.Name
		declared := ctx.declared
		return func() {
			for _, cand := range declared {
				if cand != name {
					x.Name = cand
					return
				}
			}
		}
	case "wrong-constant":
		n := node.(*ast.Number)
		v := n.Val[0]
		w := n.Width
		if w <= 0 {
			w = 32
		}
		return func() {
			nv := v + 1
			if w < 64 {
				limit := uint64(1) << uint(w)
				if nv >= limit {
					nv = v - 1
					if v == 0 {
						nv = limit - 1
					}
				}
			}
			setNumber(n, nv)
		}
	case "drop-invert":
		u := node.(*ast.Unary)
		p, ls := parent, last
		return func() { setChild(p, ls, u.X) }
	case "wrong-operator":
		x := node.(*ast.Binary)
		alt := ast.BinaryOp(s.aux)
		return func() { x.Op = alt }
	case "swap-operands":
		x := node.(*ast.Binary)
		return func() { x.X, x.Y = x.Y, x.X }
	case "swap-branches":
		x := node.(*ast.Ternary)
		return func() { x.Then, x.Else = x.Else, x.Then }
	case "reorder-concat":
		x := node.(*ast.Concat)
		return func() { x.Parts[0], x.Parts[1] = x.Parts[1], x.Parts[0] }
	case "shift-slice":
		x := node.(*ast.PartSel)
		a := ctx.freshExpr(&x.A).(*ast.Number)
		b := ctx.freshExpr(&x.B).(*ast.Number)
		return func() {
			bumpNumber(a, 1)
			bumpNumber(b, 1)
		}
	case "shift-lhs-slice":
		x := node.(*ast.PartSel)
		a := ctx.freshExpr(&x.A).(*ast.Number)
		b := ctx.freshExpr(&x.B).(*ast.Number)
		return func() {
			bumpNumber(a, -1)
			bumpNumber(b, -1)
		}
	case "wrong-edge":
		x := node.(*ast.Always)
		evi := &x.Events[s.aux]
		return func() {
			if evi.Edge == ast.EdgePos {
				evi.Edge = ast.EdgeNeg
			} else {
				evi.Edge = ast.EdgePos
			}
		}
	case "blocking-swap":
		x := node.(*ast.AssignStmt)
		return func() { x.Blocking = true }
	case "reorder-stmts":
		x := node.(*ast.Block)
		return func() { x.Stmts[0], x.Stmts[1] = x.Stmts[1], x.Stmts[0] }
	case "negate-cond":
		x := node.(*ast.If)
		return func() { x.Cond = &ast.Unary{Op: ast.LogicalNot, X: x.Cond} }
	case "drop-else":
		x := node.(*ast.If)
		return func() { x.Else = nil }
	case "swap-case-bodies":
		x := node.(*ast.Case)
		a := ctx.freshItem(x, s.aux)
		b := ctx.freshItem(x, s.aux2)
		return func() { a.Body, b.Body = b.Body, a.Body }
	case "drop-case-arm":
		x := node.(*ast.Case)
		dropIdx := s.aux
		return func() {
			var kept []*ast.CaseItem
			for i, it := range x.Items {
				if i != dropIdx {
					kept = append(kept, it)
				}
			}
			x.Items = kept
		}
	default:
		panic(fmt.Sprintf("mutate: unknown site kind %q", s.Kind))
	}
}

// getChild decodes a step against a node. The field numbering is fixed by
// the collector (sites.go) and mirrored by setChild/copyShallow below.
func getChild(node any, st step) any {
	switch n := node.(type) {
	case *ast.Module:
		return n.Items[st.i]
	case *ast.ContAssign:
		if st.f == stepRHS {
			return n.RHS
		}
		return n.LHS
	case *ast.Always:
		return n.Body
	case *ast.Instance:
		return n.Conns[st.i].Expr
	case *ast.Unary:
		return n.X
	case *ast.Binary:
		if st.f == stepRHS {
			return n.X
		}
		return n.Y
	case *ast.Ternary:
		switch st.f {
		case stepRHS:
			return n.Cond
		case stepLHS:
			return n.Then
		default:
			return n.Else
		}
	case *ast.Concat:
		return n.Parts[st.i]
	case *ast.Repl:
		return n.Value
	case *ast.Index:
		if st.f == stepRHS {
			return n.Idx
		}
		return n.X
	case *ast.PartSel:
		return n.X
	case *ast.Block:
		return n.Stmts[st.i]
	case *ast.AssignStmt:
		if st.f == stepRHS {
			return n.RHS
		}
		return n.LHS
	case *ast.If:
		switch st.f {
		case stepRHS:
			return n.Cond
		case stepLHS:
			return n.Then
		default:
			return n.Else
		}
	case *ast.Case:
		if st.f == stepRHS {
			return n.Subject
		}
		return n.Items[st.i]
	case *ast.CaseItem:
		if st.f == stepRHS {
			return n.Labels[st.i]
		}
		return n.Body
	case *ast.For:
		if st.f == stepRHS {
			return n.Cond
		}
		return n.Body
	default:
		panic(fmt.Sprintf("mutate: getChild on %T", node))
	}
}

// setChild writes a (fresh) child back into its parent's slot.
func setChild(node any, st step, child any) {
	switch n := node.(type) {
	case *ast.Module:
		n.Items[st.i] = child.(ast.Item)
	case *ast.ContAssign:
		if st.f == stepRHS {
			n.RHS = child.(ast.Expr)
		} else {
			n.LHS = child.(ast.Expr)
		}
	case *ast.Always:
		n.Body = child.(ast.Stmt)
	case *ast.Instance:
		n.Conns[st.i].Expr = child.(ast.Expr)
	case *ast.Unary:
		n.X = child.(ast.Expr)
	case *ast.Binary:
		if st.f == stepRHS {
			n.X = child.(ast.Expr)
		} else {
			n.Y = child.(ast.Expr)
		}
	case *ast.Ternary:
		switch st.f {
		case stepRHS:
			n.Cond = child.(ast.Expr)
		case stepLHS:
			n.Then = child.(ast.Expr)
		default:
			n.Else = child.(ast.Expr)
		}
	case *ast.Concat:
		n.Parts[st.i] = child.(ast.Expr)
	case *ast.Repl:
		n.Value = child.(ast.Expr)
	case *ast.Index:
		if st.f == stepRHS {
			n.Idx = child.(ast.Expr)
		} else {
			n.X = child.(ast.Expr)
		}
	case *ast.PartSel:
		n.X = child.(ast.Expr)
	case *ast.Block:
		n.Stmts[st.i] = child.(ast.Stmt)
	case *ast.AssignStmt:
		if st.f == stepRHS {
			n.RHS = child.(ast.Expr)
		} else {
			n.LHS = child.(ast.Expr)
		}
	case *ast.If:
		switch st.f {
		case stepRHS:
			n.Cond = child.(ast.Expr)
		case stepLHS:
			n.Then = child.(ast.Stmt)
		default:
			n.Else = child.(ast.Stmt)
		}
	case *ast.Case:
		if st.f == stepRHS {
			n.Subject = child.(ast.Expr)
		} else {
			n.Items[st.i] = child.(*ast.CaseItem)
		}
	case *ast.CaseItem:
		if st.f == stepRHS {
			n.Labels[st.i] = child.(ast.Expr)
		} else {
			n.Body = child.(ast.Stmt)
		}
	case *ast.For:
		if st.f == stepRHS {
			n.Cond = child.(ast.Expr)
		} else {
			n.Body = child.(ast.Stmt)
		}
	default:
		panic(fmt.Sprintf("mutate: setChild on %T", node))
	}
}

// copyShallow copies one node, duplicating its child-holding slice headers
// (so element swaps stay local to the mutant) but sharing every child node.
func copyShallow(node any) any {
	switch n := node.(type) {
	case *ast.ContAssign:
		c := *n
		return &c
	case *ast.Always:
		c := *n
		c.Events = append([]ast.Event(nil), n.Events...)
		return &c
	case *ast.Instance:
		c := *n
		c.Conns = append([]ast.PortConn(nil), n.Conns...)
		return &c
	case *ast.Ident:
		c := *n
		return &c
	case *ast.Number:
		c := *n
		return &c
	case *ast.Unary:
		c := *n
		return &c
	case *ast.Binary:
		c := *n
		return &c
	case *ast.Ternary:
		c := *n
		return &c
	case *ast.Concat:
		c := *n
		c.Parts = append([]ast.Expr(nil), n.Parts...)
		return &c
	case *ast.Repl:
		c := *n
		return &c
	case *ast.Index:
		c := *n
		return &c
	case *ast.PartSel:
		c := *n
		return &c
	case *ast.Block:
		c := *n
		c.Stmts = append([]ast.Stmt(nil), n.Stmts...)
		return &c
	case *ast.AssignStmt:
		c := *n
		return &c
	case *ast.If:
		c := *n
		return &c
	case *ast.Case:
		c := *n
		c.Items = append([]*ast.CaseItem(nil), n.Items...)
		return &c
	case *ast.CaseItem:
		c := *n
		c.Labels = append([]ast.Expr(nil), n.Labels...)
		return &c
	case *ast.For:
		c := *n
		return &c
	default:
		panic(fmt.Sprintf("mutate: copyShallow on %T", node))
	}
}

// MutatedItems exposes the path-copy provenance of a mutant: the indices of
// mut's top-level items that are not pointer-shared with base. Because
// Semantic's copy mode freshens exactly the spine from the module root to
// each mutation anchor, the returned indices are precisely the items a
// mutation touched — the "mutated spine" a delta-aware compiler re-lowers
// while splicing every shared item's artifact from the base design. A mutant
// whose item list changed length (not produced by path-copy mutation, or
// restructured by a cosmetic pass) reports every index as mutated.
func MutatedItems(base, mut *ast.Module) []int {
	if len(base.Items) != len(mut.Items) {
		all := make([]int, len(mut.Items))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var diff []int
	for i := range mut.Items {
		if mut.Items[i] != base.Items[i] {
			diff = append(diff, i)
		}
	}
	return diff
}
