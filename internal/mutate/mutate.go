// Package mutate implements semantic and cosmetic AST mutations on Verilog
// modules. The simulated LLM uses it to materialize candidates: incorrect
// candidates carry one or more *semantic* mutations (realistic RTL bugs —
// wrong operators, off-by-one selects, inverted resets, dropped case arms),
// while correct candidates differ only by *cosmetic*, behavior-preserving
// rewrites (renames, literal re-basing, declaration reordering).
package mutate

import (
	"fmt"
	"math/rand"

	"repro/internal/verilog/ast"
)

// Site is one applicable mutation with an in-place apply action.
type Site struct {
	// Kind names the mutation operator (for diagnostics and tests).
	Kind string
	// Desc describes the concrete site.
	Desc string
	// Apply performs the mutation on the (already cloned) module.
	Apply func()
}

// Config controls semantic mutation.
type Config struct {
	// Count is the number of semantic mutations to apply (>=1).
	Count int
	// CanonicalSeed derives the task's "common misconception": candidates
	// that share a seed and have CanonicalProb hit choose the same site, so
	// wrong candidates can agree with each other (forming large incorrect
	// clusters, as observed in practice).
	CanonicalSeed int64
	// CanonicalProb is the probability of using the canonical site for the
	// first mutation.
	CanonicalProb float64
}

// Semantic clones m, applies cfg.Count semantic mutations chosen with rng,
// and returns the mutant plus a description of what was applied. Returns
// nil if the module offers no mutation sites (degenerate inputs).
func Semantic(m *ast.Module, rng *rand.Rand, cfg Config) (*ast.Module, []string) {
	clone := ast.CloneModule(m)
	sites := CollectSites(clone)
	if len(sites) == 0 {
		return nil, nil
	}
	count := cfg.Count
	if count < 1 {
		count = 1
	}
	var applied []string
	used := make(map[int]bool)
	for k := 0; k < count && len(used) < len(sites); k++ {
		var idx int
		if k == 0 && cfg.CanonicalProb > 0 && rng.Float64() < cfg.CanonicalProb {
			canon := rand.New(rand.NewSource(cfg.CanonicalSeed))
			idx = canon.Intn(len(sites))
		} else {
			idx = rng.Intn(len(sites))
		}
		if used[idx] {
			// Linear-probe to the next unused site for determinism.
			for used[idx] {
				idx = (idx + 1) % len(sites)
			}
		}
		used[idx] = true
		sites[idx].Apply()
		applied = append(applied, sites[idx].Kind+": "+sites[idx].Desc)
	}
	return clone, applied
}

// CollectSites enumerates every semantic mutation applicable to the module.
// Apply actions mutate the module in place, so callers must clone first.
func CollectSites(m *ast.Module) []Site {
	c := &collector{declared: declaredNames(m)}
	for _, it := range m.Items {
		switch x := it.(type) {
		case *ast.ContAssign:
			c.exprSites(&x.RHS, true)
			c.lhsSelectSites(x.LHS)
		case *ast.Always:
			c.alwaysSites(x)
		case *ast.Instance:
			for i := range x.Conns {
				if x.Conns[i].Expr != nil {
					c.connSite(&x.Conns[i])
				}
			}
		}
	}
	return c.sites
}

type collector struct {
	sites    []Site
	declared []string
}

func declaredNames(m *ast.Module) []string {
	var names []string
	for _, p := range m.Ports {
		names = append(names, p.Name)
	}
	for _, it := range m.Items {
		if d, ok := it.(*ast.NetDecl); ok {
			names = append(names, d.Names...)
		}
	}
	return names
}

func (c *collector) add(kind, desc string, apply func()) {
	c.sites = append(c.sites, Site{Kind: kind, Desc: desc, Apply: apply})
}

// binarySwaps maps operators to plausible wrong alternatives.
var binarySwaps = map[ast.BinaryOp][]ast.BinaryOp{
	ast.Add:    {ast.Sub, ast.BitOr},
	ast.Sub:    {ast.Add},
	ast.Mul:    {ast.Add},
	ast.BitAnd: {ast.BitOr, ast.BitXor},
	ast.BitOr:  {ast.BitAnd, ast.BitXor},
	ast.BitXor: {ast.BitAnd, ast.BitXnor},
	ast.LogAnd: {ast.LogOr},
	ast.LogOr:  {ast.LogAnd},
	ast.Eq:     {ast.Neq},
	ast.Neq:    {ast.Eq},
	ast.Lt:     {ast.Leq, ast.Gt},
	ast.Leq:    {ast.Lt, ast.Geq},
	ast.Gt:     {ast.Geq, ast.Lt},
	ast.Geq:    {ast.Gt, ast.Leq},
	ast.Shl:    {ast.Shr},
	ast.Shr:    {ast.Shl, ast.AShr},
	ast.AShr:   {ast.Shr},
}

// exprSites collects mutation sites within an expression accessed through a
// settable slot. allowIdentSwap permits wrong-signal substitutions (RHS
// contexts only).
func (c *collector) exprSites(slot *ast.Expr, allowIdentSwap bool) {
	e := *slot
	switch x := e.(type) {
	case *ast.Ident:
		if allowIdentSwap && len(c.declared) > 1 {
			name := x.Name
			c.add("wrong-signal", fmt.Sprintf("replace read of %q", name), func() {
				for _, cand := range c.declared {
					if cand != name {
						x.Name = cand
						return
					}
				}
			})
		}
	case *ast.Number:
		c.numberSite(x)
	case *ast.Unary:
		if x.Op == ast.BitNot || x.Op == ast.LogicalNot {
			c.add("drop-invert", fmt.Sprintf("remove %s", x.Op), func() { *slot = x.X })
		}
		c.exprSites(&x.X, allowIdentSwap)
	case *ast.Binary:
		if alts, ok := binarySwaps[x.Op]; ok {
			alt := alts[0]
			c.add("wrong-operator", fmt.Sprintf("%s -> %s", x.Op, alt), func() { x.Op = alt })
			if len(alts) > 1 {
				alt2 := alts[1]
				c.add("wrong-operator", fmt.Sprintf("%s -> %s", x.Op, alt2), func() { x.Op = alt2 })
			}
		}
		if x.Op == ast.Sub || x.Op == ast.Lt || x.Op == ast.Gt || x.Op == ast.Shl || x.Op == ast.Shr {
			c.add("swap-operands", fmt.Sprintf("swap operands of %s", x.Op), func() {
				x.X, x.Y = x.Y, x.X
			})
		}
		c.exprSites(&x.X, allowIdentSwap)
		c.exprSites(&x.Y, allowIdentSwap)
	case *ast.Ternary:
		c.add("swap-branches", "swap ternary branches", func() {
			x.Then, x.Else = x.Else, x.Then
		})
		c.exprSites(&x.Cond, allowIdentSwap)
		c.exprSites(&x.Then, allowIdentSwap)
		c.exprSites(&x.Else, allowIdentSwap)
	case *ast.Concat:
		if len(x.Parts) >= 2 {
			c.add("reorder-concat", "swap first two concat parts", func() {
				x.Parts[0], x.Parts[1] = x.Parts[1], x.Parts[0]
			})
		}
		for i := range x.Parts {
			c.exprSites(&x.Parts[i], allowIdentSwap)
		}
	case *ast.Repl:
		c.exprSites(&x.Value, allowIdentSwap)
	case *ast.Index:
		c.exprSites(&x.Idx, allowIdentSwap)
		c.exprSites(&x.X, false)
	case *ast.PartSel:
		if x.Kind == ast.SelConst {
			a, okA := x.A.(*ast.Number)
			b, okB := x.B.(*ast.Number)
			if okA && okB {
				c.add("shift-slice", "shift part-select by one", func() {
					bumpNumber(a, 1)
					bumpNumber(b, 1)
				})
			}
		}
		c.exprSites(&x.X, false)
	}
}

// numberSite perturbs an integer literal.
func (c *collector) numberSite(n *ast.Number) {
	v := n.Val[0]
	w := n.Width
	if w <= 0 {
		w = 32
	}
	if anySet(n.XZ) {
		return // leave x/z literals alone
	}
	c.add("wrong-constant", fmt.Sprintf("perturb literal %s", n.Text), func() {
		nv := v + 1
		if w < 64 {
			limit := uint64(1) << uint(w)
			if nv >= limit {
				nv = v - 1
				if v == 0 {
					nv = limit - 1
				}
			}
		}
		setNumber(n, nv)
	})
}

func anySet(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}

// bumpNumber adds delta to the literal, saturating at zero.
func bumpNumber(n *ast.Number, delta int64) {
	v := int64(n.Val[0]) + delta
	if v < 0 {
		v = 0
	}
	setNumber(n, uint64(v))
}

// setNumber rewrites the literal's value and text, preserving its width.
func setNumber(n *ast.Number, v uint64) {
	n.Val = []uint64{v}
	n.XZ = []uint64{0}
	if n.Width > 0 {
		if n.Width < 64 {
			v &= (uint64(1) << uint(n.Width)) - 1
		}
		n.Val[0] = v
		n.Text = fmt.Sprintf("%d'd%d", n.Width, v)
		return
	}
	n.Text = fmt.Sprintf("%d", v)
}

// reorderMatters reports whether swapping two adjacent statements can change
// behavior: independent non-blocking assignments commute, everything else is
// treated as order-sensitive.
func reorderMatters(a, b ast.Stmt) bool {
	aa, okA := a.(*ast.AssignStmt)
	bb, okB := b.(*ast.AssignStmt)
	if !okA || !okB {
		return true
	}
	if aa.Blocking || bb.Blocking {
		return true
	}
	// Both non-blocking: order only matters when they write the same base.
	targets := make(map[string]bool)
	ast.LHSBase(aa.LHS, func(n string) { targets[n] = true })
	conflict := false
	ast.LHSBase(bb.LHS, func(n string) {
		if targets[n] {
			conflict = true
		}
	})
	return conflict
}

// emptyStmt reports whether s is an empty block.
func emptyStmt(s ast.Stmt) bool {
	blk, ok := s.(*ast.Block)
	return ok && len(blk.Stmts) == 0
}

// lhsSelectSites allows off-by-one mutations of constant selects on lvalues.
func (c *collector) lhsSelectSites(lhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.PartSel:
		if x.Kind == ast.SelConst {
			a, okA := x.A.(*ast.Number)
			b, okB := x.B.(*ast.Number)
			if okA && okB && b.Val[0] > 0 {
				c.add("shift-lhs-slice", "shift lvalue part-select down by one", func() {
					bumpNumber(a, -1)
					bumpNumber(b, -1)
				})
			}
		}
	case *ast.Concat:
		for _, p := range x.Parts {
			c.lhsSelectSites(p)
		}
	}
}

// connSite swaps an instance connection expression with a sibling.
func (c *collector) connSite(conn *ast.PortConn) {
	c.exprSites(&conn.Expr, true)
}

// alwaysSites collects sites in an always block: edge polarity, statement
// structure and nested expressions.
func (c *collector) alwaysSites(a *ast.Always) {
	hasEdge := false
	for i := range a.Events {
		ev := &a.Events[i]
		if ev.Edge == ast.EdgeNone {
			continue
		}
		hasEdge = true
		// Flipping the clock edge is a classic bug; keep it rare by only
		// offering it for non-first events (usually the reset) plus the
		// first event once.
		evi := ev
		c.add("wrong-edge", "flip event edge", func() {
			if evi.Edge == ast.EdgePos {
				evi.Edge = ast.EdgeNeg
			} else {
				evi.Edge = ast.EdgePos
			}
		})
	}
	c.stmtSites(a.Body, hasEdge)
}

func (c *collector) stmtSites(s ast.Stmt, inEdge bool) {
	switch x := s.(type) {
	case *ast.Block:
		for i := range x.Stmts {
			c.stmtSites(x.Stmts[i], inEdge)
		}
		if len(x.Stmts) >= 2 && reorderMatters(x.Stmts[0], x.Stmts[1]) {
			// Reordering statements is a real bug for blocking sequences;
			// swapping independent non-blocking assignments would be a
			// behavioral no-op, so those sites are skipped.
			c.add("reorder-stmts", "swap first two statements in block", func() {
				x.Stmts[0], x.Stmts[1] = x.Stmts[1], x.Stmts[0]
			})
		}
	case *ast.AssignStmt:
		if inEdge && !x.Blocking {
			c.add("blocking-swap", "use blocking assignment in clocked block", func() {
				x.Blocking = true
			})
		}
		c.exprSites(&x.RHS, true)
		c.lhsSelectSites(x.LHS)
	case *ast.If:
		c.add("negate-cond", "negate if condition", func() {
			x.Cond = &ast.Unary{Op: ast.LogicalNot, X: x.Cond}
		})
		if x.Else != nil && !emptyStmt(x.Else) {
			if _, isElseIf := x.Else.(*ast.If); !isElseIf {
				c.add("drop-else", "remove else branch", func() {
					x.Else = nil
				})
			}
		}
		c.exprSites(&x.Cond, true)
		c.stmtSites(x.Then, inEdge)
		if x.Else != nil {
			c.stmtSites(x.Else, inEdge)
		}
	case *ast.Case:
		var nonDefault []*ast.CaseItem
		for _, it := range x.Items {
			if it.Labels != nil {
				nonDefault = append(nonDefault, it)
			}
		}
		if len(nonDefault) >= 2 {
			a, b := nonDefault[0], nonDefault[1]
			c.add("swap-case-bodies", "swap bodies of first two case arms", func() {
				a.Body, b.Body = b.Body, a.Body
			})
		}
		if len(nonDefault) >= 2 {
			drop := nonDefault[len(nonDefault)-1]
			c.add("drop-case-arm", "remove last labeled case arm", func() {
				var kept []*ast.CaseItem
				for _, it := range x.Items {
					if it != drop {
						kept = append(kept, it)
					}
				}
				x.Items = kept
			})
		}
		for _, it := range x.Items {
			for li := range it.Labels {
				c.exprSites(&it.Labels[li], false)
			}
			c.stmtSites(it.Body, inEdge)
		}
		c.exprSites(&x.Subject, true)
	case *ast.For:
		c.exprSites(&x.Cond, false)
		c.stmtSites(x.Body, inEdge)
	}
}
