// Package mutate implements semantic and cosmetic AST mutations on Verilog
// modules. The simulated LLM uses it to materialize candidates: incorrect
// candidates carry one or more *semantic* mutations (realistic RTL bugs —
// wrong operators, off-by-one selects, inverted resets, dropped case arms),
// while correct candidates differ only by *cosmetic*, behavior-preserving
// rewrites (renames, literal re-basing, declaration reordering).
//
// Semantic mutation is clone-light: sites are collected once per golden
// module (cached across a task's whole candidate pool) and each mutant is
// materialized by copying only the spine from the module root to the mutated
// nodes, sharing every untouched subtree with the golden (pathcopy.go). The
// random mutation harness in mutate_test.go holds this path byte-identical
// (printed source) to the legacy full-clone path.
package mutate

import (
	"fmt"

	"repro/internal/verilog/ast"
	"repro/internal/xrng"
)

// Site is one applicable mutation with an in-place apply action.
type Site struct {
	// Kind names the mutation operator (for diagnostics and tests).
	Kind string
	// Desc describes the concrete site.
	Desc string
	// Apply performs the mutation on the (already cloned) module.
	Apply func()
}

// Config controls semantic mutation.
type Config struct {
	// Count is the number of semantic mutations to apply (>=1).
	Count int
	// CanonicalSeed derives the task's "common misconception": candidates
	// that share a seed and have CanonicalProb hit choose the same site, so
	// wrong candidates can agree with each other (forming large incorrect
	// clusters, as observed in practice).
	CanonicalSeed int64
	// CanonicalProb is the probability of using the canonical site for the
	// first mutation.
	CanonicalProb float64
}

// Semantic applies cfg.Count semantic mutations chosen with rng and returns
// the mutant plus a description of what was applied. Returns nil if the
// module offers no mutation sites (degenerate inputs).
//
// m is never mutated and must not be mutated by the caller afterwards
// either: site collection is cached per module pointer, and the returned
// mutant shares all unmutated subtrees with m.
func Semantic(m *ast.Module, rng *xrng.Rand, cfg Config) (*ast.Module, []string) {
	ms := cachedSites(m)
	if len(ms.sites) == 0 {
		return nil, nil
	}
	count := cfg.Count
	if count < 1 {
		count = 1
	}

	// Choose site indices first (draw order matches the legacy collector:
	// choices never depended on applied mutations).
	var chosen []int
	used := make(map[int]bool)
	for k := 0; k < count && len(used) < len(ms.sites); k++ {
		var idx int
		if k == 0 && cfg.CanonicalProb > 0 && rng.Float64() < cfg.CanonicalProb {
			canon := xrng.New(uint64(cfg.CanonicalSeed))
			idx = canon.Intn(len(ms.sites))
		} else {
			idx = rng.Intn(len(ms.sites))
		}
		if used[idx] {
			// Linear-probe to the next unused site for determinism.
			for used[idx] {
				idx = (idx + 1) % len(ms.sites)
			}
		}
		used[idx] = true
		chosen = append(chosen, idx)
	}

	// Bind every site before applying any (capture-then-apply, the same
	// discipline the closure-over-clone collector had), then apply in
	// chosen order.
	ctx := newCopyCtx(m, ms.declared)
	applies := make([]func(), 0, len(chosen))
	applied := make([]string, 0, len(chosen))
	for _, idx := range chosen {
		site := &ms.sites[idx]
		applies = append(applies, bindSite(ctx, site))
		applied = append(applied, site.Kind+": "+site.Desc)
	}
	for _, apply := range applies {
		apply()
	}
	return ctx.root, applied
}

// CollectSites enumerates every semantic mutation applicable to the module.
// Apply actions mutate the module in place, so callers must clone first.
// Retained as the legacy full-clone path: the differential harness holds
// Semantic's path-copied mutants byte-identical to mutants produced this
// way.
func CollectSites(m *ast.Module) []Site {
	ms := collectPathSites(m)
	ctx := &mutCtx{root: m, declared: ms.declared} // in-place: no copying
	out := make([]Site, 0, len(ms.sites))
	for i := range ms.sites {
		s := &ms.sites[i]
		out = append(out, Site{Kind: s.Kind, Desc: s.Desc, Apply: bindSite(ctx, s)})
	}
	return out
}

func declaredNames(m *ast.Module) []string {
	var names []string
	for _, p := range m.Ports {
		names = append(names, p.Name)
	}
	for _, it := range m.Items {
		if d, ok := it.(*ast.NetDecl); ok {
			names = append(names, d.Names...)
		}
	}
	return names
}

// binarySwaps maps operators to plausible wrong alternatives.
var binarySwaps = map[ast.BinaryOp][]ast.BinaryOp{
	ast.Add:    {ast.Sub, ast.BitOr},
	ast.Sub:    {ast.Add},
	ast.Mul:    {ast.Add},
	ast.BitAnd: {ast.BitOr, ast.BitXor},
	ast.BitOr:  {ast.BitAnd, ast.BitXor},
	ast.BitXor: {ast.BitAnd, ast.BitXnor},
	ast.LogAnd: {ast.LogOr},
	ast.LogOr:  {ast.LogAnd},
	ast.Eq:     {ast.Neq},
	ast.Neq:    {ast.Eq},
	ast.Lt:     {ast.Leq, ast.Gt},
	ast.Leq:    {ast.Lt, ast.Geq},
	ast.Gt:     {ast.Geq, ast.Lt},
	ast.Geq:    {ast.Gt, ast.Leq},
	ast.Shl:    {ast.Shr},
	ast.Shr:    {ast.Shl, ast.AShr},
	ast.AShr:   {ast.Shr},
}

func anySet(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}

// bumpNumber adds delta to the literal, saturating at zero.
func bumpNumber(n *ast.Number, delta int64) {
	v := int64(n.Val[0]) + delta
	if v < 0 {
		v = 0
	}
	setNumber(n, uint64(v))
}

// setNumber rewrites the literal's value and text, preserving its width.
func setNumber(n *ast.Number, v uint64) {
	n.Val = []uint64{v}
	n.XZ = []uint64{0}
	if n.Width > 0 {
		if n.Width < 64 {
			v &= (uint64(1) << uint(n.Width)) - 1
		}
		n.Val[0] = v
		n.Text = fmt.Sprintf("%d'd%d", n.Width, v)
		return
	}
	n.Text = fmt.Sprintf("%d", v)
}

// reorderMatters reports whether swapping two adjacent statements can change
// behavior: independent non-blocking assignments commute, everything else is
// treated as order-sensitive.
func reorderMatters(a, b ast.Stmt) bool {
	aa, okA := a.(*ast.AssignStmt)
	bb, okB := b.(*ast.AssignStmt)
	if !okA || !okB {
		return true
	}
	if aa.Blocking || bb.Blocking {
		return true
	}
	// Both non-blocking: order only matters when they write the same base.
	targets := make(map[string]bool)
	ast.LHSBase(aa.LHS, func(n string) { targets[n] = true })
	conflict := false
	ast.LHSBase(bb.LHS, func(n string) {
		if targets[n] {
			conflict = true
		}
	})
	return conflict
}

// emptyStmt reports whether s is an empty block.
func emptyStmt(s ast.Stmt) bool {
	blk, ok := s.(*ast.Block)
	return ok && len(blk.Stmts) == 0
}
