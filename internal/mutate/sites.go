package mutate

import (
	"fmt"
	"sync"

	"repro/internal/verilog/ast"
)

// This file enumerates mutation sites as *paths* into the module instead of
// closures over a clone. Collection runs once per golden module (cached);
// each candidate then materializes its mutant by copying only the spine from
// the module root to the mutated nodes (pathcopy.go), sharing every
// untouched subtree with the golden. The enumeration order here is the
// contract the canonical-misconception mechanism depends on: site index i
// must mean the same mutation for every candidate of a task.

// step addresses one child of an AST node: f selects the field, i indexes
// into it when the field is a slice.
type step struct {
	f uint8
	i int32
}

// PathSite is one applicable mutation, located by the path from the module
// root to its anchor node. aux/aux2 carry kind-specific data resolved at
// collection time (operator alternative, event index, case-arm positions).
type PathSite struct {
	// Kind names the mutation operator (for diagnostics and tests).
	Kind string
	// Desc describes the concrete site.
	Desc string

	path []step
	aux  int
	aux2 int
}

// moduleSites is the cached per-module collection result.
type moduleSites struct {
	sites    []PathSite
	declared []string
}

// --- Site cache ------------------------------------------------------------
//
// Site collection is a pure function of the module, and the simulated LLM
// re-collects for every candidate of a task's pool (dozens per task, re-run
// per pipeline variant). Golden modules are parsed once and shared
// (eval.ParseCached), so a pointer-keyed memo turns all but the first
// collection into a map hit. Callers must treat cached modules as immutable,
// which Semantic guarantees by never mutating its input.

var (
	siteMu   sync.Mutex
	siteMemo = make(map[*ast.Module]*moduleSites)
)

const siteMemoCap = 1024

func cachedSites(m *ast.Module) *moduleSites {
	siteMu.Lock()
	if ms, hit := siteMemo[m]; hit {
		siteMu.Unlock()
		return ms
	}
	siteMu.Unlock()
	ms := collectPathSites(m)
	siteMu.Lock()
	if len(siteMemo) >= siteMemoCap {
		siteMemo = make(map[*ast.Module]*moduleSites, siteMemoCap)
	}
	siteMemo[m] = ms
	siteMu.Unlock()
	return ms
}

// collectPathSites enumerates every semantic mutation applicable to the
// module, in the fixed historical order.
func collectPathSites(m *ast.Module) *moduleSites {
	c := &pcollector{declared: declaredNames(m)}
	for i, it := range m.Items {
		c.push(0, int32(i))
		switch x := it.(type) {
		case *ast.ContAssign:
			c.push(stepRHS, 0)
			c.exprSites(x.RHS, true)
			c.pop()
			c.push(stepLHS, 0)
			c.lhsSelectSites(x.LHS)
			c.pop()
		case *ast.Always:
			c.alwaysSites(x)
		case *ast.Instance:
			for ci := range x.Conns {
				if x.Conns[ci].Expr != nil {
					c.push(0, int32(ci))
					c.exprSites(x.Conns[ci].Expr, true)
					c.pop()
				}
			}
		}
		c.pop()
	}
	return &moduleSites{sites: c.sites, declared: c.declared}
}

// Child-field selectors. Binary nodes reuse RHS/LHS-style 0/1; three-field
// nodes add a third selector. getChild/setChild in pathcopy.go are the
// authoritative decoding.
const (
	stepRHS  uint8 = 0 // ContAssign.RHS, AssignStmt.RHS, Binary.X, Index.Idx, If/Ternary Cond, Case.Subject, For.Cond, Block/Concat/Module/Instance slice entry, CaseItem label, Unary.X, Repl.Value, PartSel.X, Always.Body
	stepLHS  uint8 = 1 // ContAssign.LHS, AssignStmt.LHS, Binary.Y, Index.X, If/Ternary Then, Case item, CaseItem.Body, For.Body
	stepElse uint8 = 2 // If/Ternary Else
)

type pcollector struct {
	sites    []PathSite
	declared []string
	path     []step
}

func (c *pcollector) push(f uint8, i int32) { c.path = append(c.path, step{f: f, i: i}) }
func (c *pcollector) pop()                  { c.path = c.path[:len(c.path)-1] }

func (c *pcollector) add(kind, desc string, aux, aux2 int) {
	c.sites = append(c.sites, PathSite{
		Kind: kind,
		Desc: desc,
		path: append([]step(nil), c.path...),
		aux:  aux,
		aux2: aux2,
	})
}

// exprSites collects mutation sites within the expression the current path
// points at. allowIdentSwap permits wrong-signal substitutions (RHS contexts
// only).
func (c *pcollector) exprSites(e ast.Expr, allowIdentSwap bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if allowIdentSwap && len(c.declared) > 1 {
			c.add("wrong-signal", fmt.Sprintf("replace read of %q", x.Name), 0, 0)
		}
	case *ast.Number:
		c.numberSite(x)
	case *ast.Unary:
		if x.Op == ast.BitNot || x.Op == ast.LogicalNot {
			c.add("drop-invert", fmt.Sprintf("remove %s", x.Op), 0, 0)
		}
		c.push(stepRHS, 0)
		c.exprSites(x.X, allowIdentSwap)
		c.pop()
	case *ast.Binary:
		if alts, ok := binarySwaps[x.Op]; ok {
			alt := alts[0]
			c.add("wrong-operator", fmt.Sprintf("%s -> %s", x.Op, alt), int(alt), 0)
			if len(alts) > 1 {
				alt2 := alts[1]
				c.add("wrong-operator", fmt.Sprintf("%s -> %s", x.Op, alt2), int(alt2), 0)
			}
		}
		if x.Op == ast.Sub || x.Op == ast.Lt || x.Op == ast.Gt || x.Op == ast.Shl || x.Op == ast.Shr {
			c.add("swap-operands", fmt.Sprintf("swap operands of %s", x.Op), 0, 0)
		}
		c.push(stepRHS, 0)
		c.exprSites(x.X, allowIdentSwap)
		c.pop()
		c.push(stepLHS, 0)
		c.exprSites(x.Y, allowIdentSwap)
		c.pop()
	case *ast.Ternary:
		c.add("swap-branches", "swap ternary branches", 0, 0)
		c.push(stepRHS, 0)
		c.exprSites(x.Cond, allowIdentSwap)
		c.pop()
		c.push(stepLHS, 0)
		c.exprSites(x.Then, allowIdentSwap)
		c.pop()
		c.push(stepElse, 0)
		c.exprSites(x.Else, allowIdentSwap)
		c.pop()
	case *ast.Concat:
		if len(x.Parts) >= 2 {
			c.add("reorder-concat", "swap first two concat parts", 0, 0)
		}
		for i := range x.Parts {
			c.push(stepRHS, int32(i))
			c.exprSites(x.Parts[i], allowIdentSwap)
			c.pop()
		}
	case *ast.Repl:
		c.push(stepRHS, 0)
		c.exprSites(x.Value, allowIdentSwap)
		c.pop()
	case *ast.Index:
		c.push(stepRHS, 0)
		c.exprSites(x.Idx, allowIdentSwap)
		c.pop()
		c.push(stepLHS, 0)
		c.exprSites(x.X, false)
		c.pop()
	case *ast.PartSel:
		if x.Kind == ast.SelConst {
			_, okA := x.A.(*ast.Number)
			_, okB := x.B.(*ast.Number)
			if okA && okB {
				c.add("shift-slice", "shift part-select by one", 0, 0)
			}
		}
		c.push(stepRHS, 0)
		c.exprSites(x.X, false)
		c.pop()
	}
}

// numberSite perturbs an integer literal.
func (c *pcollector) numberSite(n *ast.Number) {
	if anySet(n.XZ) {
		return // leave x/z literals alone
	}
	c.add("wrong-constant", fmt.Sprintf("perturb literal %s", n.Text), 0, 0)
}

// lhsSelectSites allows off-by-one mutations of constant selects on lvalues.
func (c *pcollector) lhsSelectSites(lhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.PartSel:
		if x.Kind == ast.SelConst {
			_, okA := x.A.(*ast.Number)
			b, okB := x.B.(*ast.Number)
			if okA && okB && b.Val[0] > 0 {
				c.add("shift-lhs-slice", "shift lvalue part-select down by one", 0, 0)
			}
		}
	case *ast.Concat:
		for i, p := range x.Parts {
			c.push(stepRHS, int32(i))
			c.lhsSelectSites(p)
			c.pop()
		}
	}
}

// alwaysSites collects sites in an always block: edge polarity, statement
// structure and nested expressions.
func (c *pcollector) alwaysSites(a *ast.Always) {
	hasEdge := false
	for i := range a.Events {
		if a.Events[i].Edge == ast.EdgeNone {
			continue
		}
		hasEdge = true
		c.add("wrong-edge", "flip event edge", i, 0)
	}
	c.push(stepRHS, 0) // Always.Body
	c.stmtSites(a.Body, hasEdge)
	c.pop()
}

func (c *pcollector) stmtSites(s ast.Stmt, inEdge bool) {
	switch x := s.(type) {
	case *ast.Block:
		for i := range x.Stmts {
			c.push(stepRHS, int32(i))
			c.stmtSites(x.Stmts[i], inEdge)
			c.pop()
		}
		if len(x.Stmts) >= 2 && reorderMatters(x.Stmts[0], x.Stmts[1]) {
			// Reordering statements is a real bug for blocking sequences;
			// swapping independent non-blocking assignments would be a
			// behavioral no-op, so those sites are skipped.
			c.add("reorder-stmts", "swap first two statements in block", 0, 0)
		}
	case *ast.AssignStmt:
		if inEdge && !x.Blocking {
			c.add("blocking-swap", "use blocking assignment in clocked block", 0, 0)
		}
		c.push(stepRHS, 0)
		c.exprSites(x.RHS, true)
		c.pop()
		c.push(stepLHS, 0)
		c.lhsSelectSites(x.LHS)
		c.pop()
	case *ast.If:
		c.add("negate-cond", "negate if condition", 0, 0)
		if x.Else != nil && !emptyStmt(x.Else) {
			if _, isElseIf := x.Else.(*ast.If); !isElseIf {
				c.add("drop-else", "remove else branch", 0, 0)
			}
		}
		c.push(stepRHS, 0)
		c.exprSites(x.Cond, true)
		c.pop()
		c.push(stepLHS, 0)
		c.stmtSites(x.Then, inEdge)
		c.pop()
		if x.Else != nil {
			c.push(stepElse, 0)
			c.stmtSites(x.Else, inEdge)
			c.pop()
		}
	case *ast.Case:
		var nonDefault []int
		for i, it := range x.Items {
			if it.Labels != nil {
				nonDefault = append(nonDefault, i)
			}
		}
		if len(nonDefault) >= 2 {
			c.add("swap-case-bodies", "swap bodies of first two case arms",
				nonDefault[0], nonDefault[1])
		}
		if len(nonDefault) >= 2 {
			c.add("drop-case-arm", "remove last labeled case arm",
				nonDefault[len(nonDefault)-1], 0)
		}
		for i, it := range x.Items {
			c.push(stepLHS, int32(i)) // Case.Items[i]
			for li := range it.Labels {
				c.push(stepRHS, int32(li)) // CaseItem.Labels[li]
				c.exprSites(it.Labels[li], false)
				c.pop()
			}
			c.push(stepLHS, 0) // CaseItem.Body
			c.stmtSites(it.Body, inEdge)
			c.pop()
			c.pop()
		}
		c.push(stepRHS, 0) // Case.Subject
		c.exprSites(x.Subject, true)
		c.pop()
	case *ast.For:
		c.push(stepRHS, 0)
		c.exprSites(x.Cond, false)
		c.pop()
		c.push(stepLHS, 0)
		c.stmtSites(x.Body, inEdge)
		c.pop()
	}
}
