package mutate

import (
	"fmt"
	"math/rand"

	"repro/internal/verilog/ast"
)

// Cosmetic clones m and applies behavior-preserving rewrites chosen by rng:
// internal signal renames, numeric literal re-basing, commutative operand
// swaps, if/else inversion and declaration reordering. Two cosmetic variants
// of the same design print differently but simulate identically, which is
// what lets correct candidates form one behavioral cluster despite textual
// diversity.
func Cosmetic(m *ast.Module, rng *rand.Rand) *ast.Module {
	clone := ast.CloneModule(m)
	renameInternals(clone, rng)
	if rng.Float64() < 0.7 {
		rebaseLiterals(clone, rng)
	}
	if rng.Float64() < 0.5 {
		swapCommutative(clone, rng)
	}
	if rng.Float64() < 0.4 {
		invertIfs(clone, rng)
	}
	if rng.Float64() < 0.5 {
		reorderDecls(clone, rng)
	}
	return clone
}

var renameSuffixes = []string{"_r", "_reg", "_q", "_int", "_sig", "_v", "_w", "_next"}

// renameInternals renames non-port declared names consistently.
func renameInternals(m *ast.Module, rng *rand.Rand) {
	ports := make(map[string]bool)
	for _, p := range m.Ports {
		ports[p.Name] = true
	}
	mapping := make(map[string]string)
	for _, it := range m.Items {
		d, ok := it.(*ast.NetDecl)
		if !ok {
			continue
		}
		for i, name := range d.Names {
			if ports[name] || rng.Float64() < 0.3 {
				continue
			}
			suffix := renameSuffixes[rng.Intn(len(renameSuffixes))]
			newName := name + suffix
			if ports[newName] {
				continue
			}
			mapping[name] = newName
			d.Names[i] = newName
		}
	}
	if len(mapping) == 0 {
		return
	}
	renameIdents := func(e ast.Expr) bool {
		if id, ok := e.(*ast.Ident); ok {
			if nn, hit := mapping[id.Name]; hit {
				id.Name = nn
			}
		}
		return true
	}
	ast.ModuleExprs(m, renameIdents)
}

// rebaseLiterals rewrites sized literal text between decimal, hex and binary
// without changing the value.
func rebaseLiterals(m *ast.Module, rng *rand.Rand) {
	ast.ModuleExprs(m, func(e ast.Expr) bool {
		n, ok := e.(*ast.Number)
		if !ok || n.Width <= 0 || n.Width > 64 || anySet(n.XZ) {
			return true
		}
		if rng.Float64() < 0.5 {
			return true
		}
		v := n.Val[0]
		switch rng.Intn(3) {
		case 0:
			n.Text = fmt.Sprintf("%d'd%d", n.Width, v)
		case 1:
			n.Text = fmt.Sprintf("%d'h%x", n.Width, v)
		default:
			n.Text = fmt.Sprintf("%d'b%b", n.Width, v)
		}
		return true
	})
}

// swapCommutative swaps operands of +, &, |, ^ nodes (value-preserving).
func swapCommutative(m *ast.Module, rng *rand.Rand) {
	ast.ModuleExprs(m, func(e ast.Expr) bool {
		b, ok := e.(*ast.Binary)
		if !ok {
			return true
		}
		switch b.Op {
		case ast.Add, ast.BitAnd, ast.BitOr, ast.BitXor:
			if rng.Float64() < 0.5 {
				b.X, b.Y = b.Y, b.X
			}
		}
		return true
	})
}

// invertIfs rewrites if (c) A else B into if (!c) B else A for plain
// two-branch ifs (behavior-preserving for fully-known conditions, which is
// what the benchmark stimulus exercises after reset).
func invertIfs(m *ast.Module, rng *rand.Rand) {
	var visit func(s ast.Stmt)
	visit = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.Block:
			for _, sub := range x.Stmts {
				visit(sub)
			}
		case *ast.If:
			_, elseIsIf := x.Else.(*ast.If)
			if x.Else != nil && !elseIsIf && rng.Float64() < 0.5 {
				x.Cond = &ast.Unary{Op: ast.LogicalNot, X: x.Cond}
				x.Then, x.Else = x.Else, x.Then
			}
			visit(x.Then)
			if x.Else != nil {
				visit(x.Else)
			}
		case *ast.Case:
			for _, it := range x.Items {
				visit(it.Body)
			}
		case *ast.For:
			visit(x.Body)
		}
	}
	for _, it := range m.Items {
		switch x := it.(type) {
		case *ast.Always:
			visit(x.Body)
		case *ast.Initial:
			visit(x.Body)
		}
	}
}

// reorderDecls rotates the leading run of NetDecl items.
func reorderDecls(m *ast.Module, rng *rand.Rand) {
	var declIdx []int
	for i, it := range m.Items {
		if _, ok := it.(*ast.NetDecl); ok {
			declIdx = append(declIdx, i)
		}
	}
	if len(declIdx) < 2 {
		return
	}
	i, j := declIdx[0], declIdx[len(declIdx)-1]
	if rng.Float64() < 0.5 {
		m.Items[i], m.Items[j] = m.Items[j], m.Items[i]
	}
}
