package mutate

import (
	"fmt"

	"repro/internal/verilog/ast"
	"repro/internal/xrng"
)

// Cosmetic applies behavior-preserving rewrites chosen by rng: internal
// signal renames, numeric literal re-basing, commutative operand swaps,
// if/else inversion and declaration reordering. Two cosmetic variants of the
// same design print differently but simulate identically, which is what lets
// correct candidates form one behavioral cluster despite textual diversity.
//
// Like Semantic, Cosmetic is clone-light: each pass rebuilds the module
// copy-on-write (rewrite.go), so the variant shares every unrewritten
// subtree with its input instead of paying a full deep clone per candidate.
// m is never mutated; when no pass fires the input itself is returned.
func Cosmetic(m *ast.Module, rng *xrng.Rand) *ast.Module {
	out := renameInternals(m, rng)
	if rng.Float64() < 0.7 {
		out = rebaseLiterals(out, rng)
	}
	if rng.Float64() < 0.5 {
		out = swapCommutative(out, rng)
	}
	if rng.Float64() < 0.4 {
		out = invertIfs(out, rng)
	}
	if rng.Float64() < 0.5 {
		out = reorderDecls(out, rng)
	}
	return out
}

var renameSuffixes = []string{"_r", "_reg", "_q", "_int", "_sig", "_v", "_w", "_next"}

// renameInternals renames non-port declared names consistently.
func renameInternals(m *ast.Module, rng *xrng.Rand) *ast.Module {
	ports := make(map[string]bool)
	for _, p := range m.Ports {
		ports[p.Name] = true
	}
	mapping := make(map[string]string)
	for _, it := range m.Items {
		d, ok := it.(*ast.NetDecl)
		if !ok {
			continue
		}
		for _, name := range d.Names {
			if ports[name] || rng.Float64() < 0.3 {
				continue
			}
			suffix := renameSuffixes[rng.Intn(len(renameSuffixes))]
			newName := name + suffix
			if ports[newName] {
				continue
			}
			mapping[name] = newName
		}
	}
	if len(mapping) == 0 {
		return m
	}
	cw := &cow{
		expr: func(e ast.Expr) ast.Expr {
			if id, ok := e.(*ast.Ident); ok {
				if nn, hit := mapping[id.Name]; hit {
					return &ast.Ident{NamePos: id.NamePos, Name: nn}
				}
			}
			return e
		},
		item: func(it ast.Item) ast.Item {
			d, ok := it.(*ast.NetDecl)
			if !ok {
				return it
			}
			var names []string
			for i, name := range d.Names {
				nn, hit := mapping[name]
				if names == nil && hit {
					names = append([]string(nil), d.Names...)
				}
				if names != nil && hit {
					names[i] = nn
				}
			}
			if names == nil {
				return it
			}
			c := *d
			c.Names = names
			return &c
		},
	}
	return cw.rwModule(m)
}

// rebaseLiterals rewrites sized literal text between decimal, hex and binary
// without changing the value.
func rebaseLiterals(m *ast.Module, rng *xrng.Rand) *ast.Module {
	cw := &cow{expr: func(e ast.Expr) ast.Expr {
		n, ok := e.(*ast.Number)
		if !ok || n.Width <= 0 || n.Width > 64 || anySet(n.XZ) {
			return e
		}
		if rng.Float64() < 0.5 {
			return e
		}
		v := n.Val[0]
		c := *n
		switch rng.Intn(3) {
		case 0:
			c.Text = fmt.Sprintf("%d'd%d", n.Width, v)
		case 1:
			c.Text = fmt.Sprintf("%d'h%x", n.Width, v)
		default:
			c.Text = fmt.Sprintf("%d'b%b", n.Width, v)
		}
		if c.Text == n.Text {
			return e // re-based to the spelling it already had
		}
		return &c
	}}
	return cw.rwModule(m)
}

// swapCommutative swaps operands of +, &, |, ^ nodes (value-preserving).
func swapCommutative(m *ast.Module, rng *xrng.Rand) *ast.Module {
	cw := &cow{expr: func(e ast.Expr) ast.Expr {
		b, ok := e.(*ast.Binary)
		if !ok {
			return e
		}
		switch b.Op {
		case ast.Add, ast.BitAnd, ast.BitOr, ast.BitXor:
			if rng.Float64() < 0.5 {
				return &ast.Binary{Op: b.Op, X: b.Y, Y: b.X}
			}
		}
		return e
	}}
	return cw.rwModule(m)
}

// invertIfs rewrites if (c) A else B into if (!c) B else A for plain
// two-branch ifs (behavior-preserving for fully-known conditions, which is
// what the benchmark stimulus exercises after reset).
func invertIfs(m *ast.Module, rng *xrng.Rand) *ast.Module {
	cw := &cow{stmt: func(s ast.Stmt) ast.Stmt {
		x, ok := s.(*ast.If)
		if !ok {
			return s
		}
		_, elseIsIf := x.Else.(*ast.If)
		if x.Else != nil && !elseIsIf && rng.Float64() < 0.5 {
			return &ast.If{
				IfPos: x.IfPos,
				Cond:  &ast.Unary{Op: ast.LogicalNot, X: x.Cond},
				Then:  x.Else,
				Else:  x.Then,
			}
		}
		return s
	}}
	return cw.rwModule(m)
}

// reorderDecls rotates the leading run of NetDecl items.
func reorderDecls(m *ast.Module, rng *xrng.Rand) *ast.Module {
	var declIdx []int
	for i, it := range m.Items {
		if _, ok := it.(*ast.NetDecl); ok {
			declIdx = append(declIdx, i)
		}
	}
	if len(declIdx) < 2 {
		return m
	}
	i, j := declIdx[0], declIdx[len(declIdx)-1]
	if rng.Float64() < 0.5 {
		c := *m
		c.Items = append([]ast.Item(nil), m.Items...)
		c.Items[i], c.Items[j] = c.Items[j], c.Items[i]
		return &c
	}
	return m
}
