package mutate

import (
	"repro/internal/verilog/ast"
)

// cow is a bottom-up copy-on-write rebuilder: it walks a module and returns
// a structurally shared rewrite — any node whose subtree is untouched by the
// hooks is returned as-is (pointer-equal), and only the spines above changed
// nodes are copied. Hooks receive nodes whose children are already rebuilt
// and must return either the same node (no change) or a NEW node; they must
// never mutate their argument, since it may be shared with the golden
// module. Expression coverage matches ast.ModuleExprs (declaration ranges
// are not visited, mirroring the legacy in-place passes).
type cow struct {
	expr func(ast.Expr) ast.Expr // nil: identity
	stmt func(ast.Stmt) ast.Stmt // nil: identity
	item func(ast.Item) ast.Item // nil: identity (applied post-children)
}

func (cw *cow) hookE(e ast.Expr) ast.Expr {
	if cw.expr == nil {
		return e
	}
	return cw.expr(e)
}

func (cw *cow) hookS(s ast.Stmt) ast.Stmt {
	if cw.stmt == nil {
		return s
	}
	return cw.stmt(s)
}

func (cw *cow) hookI(it ast.Item) ast.Item {
	if cw.item == nil {
		return it
	}
	return cw.item(it)
}

// rwExprs rebuilds an expression slice, returning nil when unchanged.
func (cw *cow) rwExprs(xs []ast.Expr) []ast.Expr {
	var out []ast.Expr
	for i, x := range xs {
		nx := cw.rwExpr(x)
		if out == nil && nx != x {
			out = make([]ast.Expr, len(xs))
			copy(out, xs[:i])
		}
		if out != nil {
			out[i] = nx
		}
	}
	return out
}

func (cw *cow) rwExpr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Ident, *ast.Number:
		return cw.hookE(e)
	case *ast.Unary:
		if nx := cw.rwExpr(x.X); nx != x.X {
			c := *x
			c.X = nx
			e = &c
		}
		return cw.hookE(e)
	case *ast.Binary:
		nx, ny := cw.rwExpr(x.X), cw.rwExpr(x.Y)
		if nx != x.X || ny != x.Y {
			c := *x
			c.X, c.Y = nx, ny
			e = &c
		}
		return cw.hookE(e)
	case *ast.Ternary:
		nc, nt, ne := cw.rwExpr(x.Cond), cw.rwExpr(x.Then), cw.rwExpr(x.Else)
		if nc != x.Cond || nt != x.Then || ne != x.Else {
			c := *x
			c.Cond, c.Then, c.Else = nc, nt, ne
			e = &c
		}
		return cw.hookE(e)
	case *ast.Concat:
		if parts := cw.rwExprs(x.Parts); parts != nil {
			c := *x
			c.Parts = parts
			e = &c
		}
		return cw.hookE(e)
	case *ast.Repl:
		ncnt, nv := cw.rwExpr(x.Count), cw.rwExpr(x.Value)
		if ncnt != x.Count || nv != x.Value {
			c := *x
			c.Count, c.Value = ncnt, nv
			e = &c
		}
		return cw.hookE(e)
	case *ast.Index:
		nx, ni := cw.rwExpr(x.X), cw.rwExpr(x.Idx)
		if nx != x.X || ni != x.Idx {
			c := *x
			c.X, c.Idx = nx, ni
			e = &c
		}
		return cw.hookE(e)
	case *ast.PartSel:
		nx, na, nb := cw.rwExpr(x.X), cw.rwExpr(x.A), cw.rwExpr(x.B)
		if nx != x.X || na != x.A || nb != x.B {
			c := *x
			c.X, c.A, c.B = nx, na, nb
			e = &c
		}
		return cw.hookE(e)
	default:
		return cw.hookE(e)
	}
}

func (cw *cow) rwAssign(a *ast.AssignStmt) *ast.AssignStmt {
	if a == nil {
		return nil
	}
	nl, nr := cw.rwExpr(a.LHS), cw.rwExpr(a.RHS)
	if nl != a.LHS || nr != a.RHS {
		c := *a
		c.LHS, c.RHS = nl, nr
		a = &c
	}
	if ns := cw.hookS(a); ns != ast.Stmt(a) {
		return ns.(*ast.AssignStmt)
	}
	return a
}

// rwStmts rebuilds a statement slice, returning nil when unchanged.
func (cw *cow) rwStmts(xs []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for i, x := range xs {
		nx := cw.rwStmt(x)
		if out == nil && nx != x {
			out = make([]ast.Stmt, len(xs))
			copy(out, xs[:i])
		}
		if out != nil {
			out[i] = nx
		}
	}
	return out
}

func (cw *cow) rwStmt(s ast.Stmt) ast.Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *ast.Block:
		if stmts := cw.rwStmts(x.Stmts); stmts != nil {
			c := *x
			c.Stmts = stmts
			s = &c
		}
		return cw.hookS(s)
	case *ast.AssignStmt:
		return cw.rwAssign(x)
	case *ast.If:
		nc, nt, ne := cw.rwExpr(x.Cond), cw.rwStmt(x.Then), cw.rwStmt(x.Else)
		if nc != x.Cond || nt != x.Then || ne != x.Else {
			c := *x
			c.Cond, c.Then, c.Else = nc, nt, ne
			s = &c
		}
		return cw.hookS(s)
	case *ast.Case:
		nsub := cw.rwExpr(x.Subject)
		var items []*ast.CaseItem
		for i, it := range x.Items {
			labels := cw.rwExprs(it.Labels)
			body := cw.rwStmt(it.Body)
			nit := it
			if labels != nil || body != it.Body {
				c := *it
				if labels != nil {
					c.Labels = labels
				}
				c.Body = body
				nit = &c
			}
			if items == nil && nit != it {
				items = make([]*ast.CaseItem, len(x.Items))
				copy(items, x.Items[:i])
			}
			if items != nil {
				items[i] = nit
			}
		}
		if nsub != x.Subject || items != nil {
			c := *x
			c.Subject = nsub
			if items != nil {
				c.Items = items
			}
			s = &c
		}
		return cw.hookS(s)
	case *ast.For:
		ninit := cw.rwAssign(x.Init)
		ncond := cw.rwExpr(x.Cond)
		nstep := cw.rwAssign(x.Step)
		nbody := cw.rwStmt(x.Body)
		if ninit != x.Init || ncond != x.Cond || nstep != x.Step || nbody != x.Body {
			c := *x
			c.Init, c.Cond, c.Step, c.Body = ninit, ncond, nstep, nbody
			s = &c
		}
		return cw.hookS(s)
	default:
		return cw.hookS(s)
	}
}

func (cw *cow) rwItem(it ast.Item) ast.Item {
	switch x := it.(type) {
	case *ast.NetDecl:
		if inits := cw.rwExprs(x.Init); inits != nil {
			c := *x
			c.Init = inits
			it = &c
		}
		return cw.hookI(it)
	case *ast.ParamDecl:
		if nv := cw.rwExpr(x.Value); nv != x.Value {
			c := *x
			c.Value = nv
			it = &c
		}
		return cw.hookI(it)
	case *ast.ContAssign:
		nl, nr := cw.rwExpr(x.LHS), cw.rwExpr(x.RHS)
		if nl != x.LHS || nr != x.RHS {
			c := *x
			c.LHS, c.RHS = nl, nr
			it = &c
		}
		return cw.hookI(it)
	case *ast.Always:
		var events []ast.Event
		for i, ev := range x.Events {
			nsig := cw.rwExpr(ev.Sig)
			if events == nil && nsig != ev.Sig {
				events = make([]ast.Event, len(x.Events))
				copy(events, x.Events[:i])
			}
			if events != nil {
				events[i] = ast.Event{Edge: ev.Edge, Sig: nsig}
			}
		}
		nbody := cw.rwStmt(x.Body)
		if events != nil || nbody != x.Body {
			c := *x
			if events != nil {
				c.Events = events
			}
			c.Body = nbody
			it = &c
		}
		return cw.hookI(it)
	case *ast.Initial:
		if nbody := cw.rwStmt(x.Body); nbody != x.Body {
			c := *x
			c.Body = nbody
			it = &c
		}
		return cw.hookI(it)
	case *ast.Instance:
		nconns := cw.rwConns(x.Conns)
		nparams := cw.rwConns(x.ParamsBy)
		if nconns != nil || nparams != nil {
			c := *x
			if nconns != nil {
				c.Conns = nconns
			}
			if nparams != nil {
				c.ParamsBy = nparams
			}
			it = &c
		}
		return cw.hookI(it)
	default:
		return cw.hookI(it)
	}
}

// rwConns rebuilds a connection list, returning nil when nothing changed.
func (cw *cow) rwConns(conns []ast.PortConn) []ast.PortConn {
	var out []ast.PortConn
	for i, c := range conns {
		ne := cw.rwExpr(c.Expr)
		if out == nil && ne != c.Expr {
			out = make([]ast.PortConn, len(conns))
			copy(out, conns[:i])
		}
		if out != nil {
			out[i] = ast.PortConn{Name: c.Name, Expr: ne}
		}
	}
	return out
}

// rwModule rebuilds the module, sharing it entirely when no hook fired.
func (cw *cow) rwModule(m *ast.Module) *ast.Module {
	var items []ast.Item
	for i, it := range m.Items {
		nit := cw.rwItem(it)
		if items == nil && nit != it {
			items = make([]ast.Item, len(m.Items))
			copy(items, m.Items[:i])
		}
		if items != nil {
			items[i] = nit
		}
	}
	if items == nil {
		return m
	}
	c := *m
	c.Items = items
	return &c
}
