package printer_test

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/printer"
)

// TestRoundTripSuite is the key printer property: for every golden design in
// the benchmark, print(parse(src)) must itself parse, and a second
// print(parse(print)) must be byte-identical (the printer is a fixpoint
// normalizer).
func TestRoundTripSuite(t *testing.T) {
	for _, task := range eval.Suite() {
		src, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: golden parse: %v", task.ID, err)
		}
		printed := printer.Print(src)
		re, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("%s: printed output does not parse: %v\n%s", task.ID, err, printed)
		}
		printed2 := printer.Print(re)
		if printed != printed2 {
			t.Errorf("%s: printer is not a fixpoint", task.ID)
		}
	}
}

func TestPrecedenceParens(t *testing.T) {
	// a | (b & c) needs no parens; (a | b) & c does.
	src := `
module m (
    input a,
    input b,
    input c,
    output x,
    output y
);
    assign x = a | b & c;
    assign y = (a | b) & c;
endmodule
`
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(s)
	if !strings.Contains(out, "assign x = a | b & c;") {
		t.Errorf("x printed with redundant parens:\n%s", out)
	}
	if !strings.Contains(out, "assign y = (a | b) & c;") {
		t.Errorf("y lost required parens:\n%s", out)
	}
}

func TestUnaryReductionParens(t *testing.T) {
	// ~(^x) must keep parens or it re-lexes as the ~^ XNOR token.
	src := `
module m (
    input [3:0] x,
    output y
);
    assign y = ~(^x);
endmodule
`
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(s)
	re, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, out)
	}
	ca := re.Modules[0].Items[0].(*ast.ContAssign)
	not, ok := ca.RHS.(*ast.Unary)
	if !ok || not.Op != ast.BitNot {
		t.Fatalf("outer op lost: %#v", ca.RHS)
	}
	inner, ok := not.X.(*ast.Unary)
	if !ok || inner.Op != ast.RedXor {
		t.Fatalf("inner reduction lost: %#v", not.X)
	}
}

func TestTernaryInBinaryParens(t *testing.T) {
	src := `
module m (
    input a,
    input b,
    output y
);
    assign y = (a ? b : a) | b;
endmodule
`
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(s)
	re, rerr := parser.Parse(out)
	if rerr != nil {
		t.Fatalf("round trip: %v\n%s", rerr, out)
	}
	ca := re.Modules[0].Items[0].(*ast.ContAssign)
	if b, ok := ca.RHS.(*ast.Binary); !ok || b.Op != ast.BitOr {
		t.Fatalf("structure changed: %#v", ca.RHS)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
module m (
    input [1:0] s,
    output reg y
);
    always @(*) begin
        if (s == 2'd0)
            y = 1'b0;
        else if (s == 2'd1)
            y = 1'b1;
        else
            y = 1'b0;
    end
endmodule
`
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(s)
	if !strings.Contains(out, "else if (") {
		t.Errorf("else-if chain not flattened:\n%s", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestPrintStmtAndExpr(t *testing.T) {
	e := &ast.Binary{Op: ast.Add, X: &ast.Ident{Name: "a"}, Y: &ast.Ident{Name: "b"}}
	if got := printer.PrintExpr(e); got != "a + b" {
		t.Errorf("PrintExpr = %q", got)
	}
	st := &ast.AssignStmt{LHS: &ast.Ident{Name: "q"}, RHS: e, Blocking: false}
	if got := strings.TrimSpace(printer.PrintStmt(st, 0)); got != "q <= a + b;" {
		t.Errorf("PrintStmt = %q", got)
	}
}
