// Package printer renders AST nodes back to deterministic, readable Verilog
// source text. The mutation engine relies on it to materialize candidate
// code, and round-tripping through the parser is covered by tests.
package printer

import (
	"fmt"
	"strings"

	"repro/internal/verilog/ast"
)

// Print renders a full compilation unit.
func Print(s *ast.Source) string {
	var b strings.Builder
	for i, m := range s.Modules {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(PrintModule(m))
	}
	return b.String()
}

// PrintModule renders one module.
func PrintModule(m *ast.Module) string {
	p := &printer{}
	p.module(m)
	return p.b.String()
}

// PrintExpr renders an expression.
func PrintExpr(e ast.Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.b.String()
}

// PrintStmt renders a statement at the given indent depth.
func PrintStmt(s ast.Stmt, depth int) string {
	p := &printer{}
	p.stmt(s, depth)
	return p.b.String()
}

type printer struct {
	b strings.Builder
}

func (p *printer) indent(depth int) {
	for i := 0; i < depth; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) module(m *ast.Module) {
	fmt.Fprintf(&p.b, "module %s", m.Name)
	if len(m.Ports) > 0 {
		p.b.WriteString(" (\n")
		for i, port := range m.Ports {
			p.indent(1)
			p.b.WriteString(port.Dir.String())
			if port.IsReg {
				p.b.WriteString(" reg")
			}
			if port.Signed {
				p.b.WriteString(" signed")
			}
			if port.Range != nil {
				p.b.WriteString(" ")
				p.rng(port.Range)
			}
			p.b.WriteString(" ")
			p.b.WriteString(port.Name)
			if i < len(m.Ports)-1 {
				p.b.WriteString(",")
			}
			p.b.WriteString("\n")
		}
		p.b.WriteString(")")
	}
	p.b.WriteString(";\n")
	for _, item := range m.Items {
		p.item(item)
	}
	p.b.WriteString("endmodule\n")
}

func (p *printer) rng(r *ast.Range) {
	p.b.WriteString("[")
	p.expr(r.MSB, 0)
	p.b.WriteString(":")
	p.expr(r.LSB, 0)
	p.b.WriteString("]")
}

func (p *printer) item(item ast.Item) {
	switch it := item.(type) {
	case *ast.NetDecl:
		p.indent(1)
		p.b.WriteString(it.Kind.String())
		if it.Signed {
			p.b.WriteString(" signed")
		}
		if it.Range != nil {
			p.b.WriteString(" ")
			p.rng(it.Range)
		}
		p.b.WriteString(" ")
		for i, name := range it.Names {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(name)
			if i < len(it.Init) && it.Init[i] != nil {
				p.b.WriteString(" = ")
				p.expr(it.Init[i], 0)
			}
		}
		p.b.WriteString(";\n")
	case *ast.ParamDecl:
		p.indent(1)
		if it.Local {
			p.b.WriteString("localparam ")
		} else {
			p.b.WriteString("parameter ")
		}
		if it.Range != nil {
			p.rng(it.Range)
			p.b.WriteString(" ")
		}
		fmt.Fprintf(&p.b, "%s = ", it.Name)
		p.expr(it.Value, 0)
		p.b.WriteString(";\n")
	case *ast.ContAssign:
		p.indent(1)
		p.b.WriteString("assign ")
		p.expr(it.LHS, 0)
		p.b.WriteString(" = ")
		p.expr(it.RHS, 0)
		p.b.WriteString(";\n")
	case *ast.Always:
		p.indent(1)
		p.b.WriteString("always @(")
		if it.Star {
			p.b.WriteString("*")
		} else {
			for i, ev := range it.Events {
				if i > 0 {
					p.b.WriteString(" or ")
				}
				switch ev.Edge {
				case ast.EdgePos:
					p.b.WriteString("posedge ")
				case ast.EdgeNeg:
					p.b.WriteString("negedge ")
				}
				p.expr(ev.Sig, 0)
			}
		}
		p.b.WriteString(")")
		p.bodyAfterHeader(it.Body)
	case *ast.Initial:
		p.indent(1)
		p.b.WriteString("initial")
		p.bodyAfterHeader(it.Body)
	case *ast.Instance:
		p.indent(1)
		p.b.WriteString(it.ModName)
		if len(it.ParamsBy) > 0 {
			p.b.WriteString(" #(")
			p.conns(it.ParamsBy)
			p.b.WriteString(")")
		}
		fmt.Fprintf(&p.b, " %s (", it.Name)
		p.conns(it.Conns)
		p.b.WriteString(");\n")
	}
}

func (p *printer) conns(conns []ast.PortConn) {
	for i, c := range conns {
		if i > 0 {
			p.b.WriteString(", ")
		}
		if c.Name != "" {
			fmt.Fprintf(&p.b, ".%s(", c.Name)
			if c.Expr != nil {
				p.expr(c.Expr, 0)
			}
			p.b.WriteString(")")
		} else {
			p.expr(c.Expr, 0)
		}
	}
}

// bodyAfterHeader prints a statement that follows an always/initial header,
// putting `begin` on the same line.
func (p *printer) bodyAfterHeader(s ast.Stmt) {
	if blk, ok := s.(*ast.Block); ok {
		p.b.WriteString(" begin")
		if blk.Name != "" {
			fmt.Fprintf(&p.b, " : %s", blk.Name)
		}
		p.b.WriteString("\n")
		for _, sub := range blk.Stmts {
			p.stmt(sub, 2)
		}
		p.indent(1)
		p.b.WriteString("end\n")
		return
	}
	p.b.WriteString("\n")
	p.stmt(s, 2)
}

func (p *printer) stmt(s ast.Stmt, depth int) {
	switch st := s.(type) {
	case *ast.Block:
		p.indent(depth)
		p.b.WriteString("begin")
		if st.Name != "" {
			fmt.Fprintf(&p.b, " : %s", st.Name)
		}
		p.b.WriteString("\n")
		for _, sub := range st.Stmts {
			p.stmt(sub, depth+1)
		}
		p.indent(depth)
		p.b.WriteString("end\n")
	case *ast.AssignStmt:
		p.indent(depth)
		p.expr(st.LHS, 0)
		if st.Blocking {
			p.b.WriteString(" = ")
		} else {
			p.b.WriteString(" <= ")
		}
		p.expr(st.RHS, 0)
		p.b.WriteString(";\n")
	case *ast.If:
		p.indent(depth)
		p.ifChain(st, depth)
	case *ast.Case:
		p.indent(depth)
		fmt.Fprintf(&p.b, "%s (", st.Kind)
		p.expr(st.Subject, 0)
		p.b.WriteString(")\n")
		for _, item := range st.Items {
			p.indent(depth + 1)
			if item.Labels == nil {
				p.b.WriteString("default:")
			} else {
				for i, l := range item.Labels {
					if i > 0 {
						p.b.WriteString(", ")
					}
					p.expr(l, 0)
				}
				p.b.WriteString(":")
			}
			if blk, ok := item.Body.(*ast.Block); ok && len(blk.Stmts) != 1 {
				p.b.WriteString("\n")
				p.stmt(item.Body, depth+2)
			} else if ok && len(blk.Stmts) == 1 {
				p.b.WriteString(" ")
				inline := PrintStmt(blk.Stmts[0], 0)
				p.b.WriteString(strings.TrimRight(inline, "\n"))
				p.b.WriteString("\n")
			} else {
				p.b.WriteString(" ")
				inline := PrintStmt(item.Body, 0)
				p.b.WriteString(strings.TrimRight(inline, "\n"))
				p.b.WriteString("\n")
			}
		}
		p.indent(depth)
		p.b.WriteString("endcase\n")
	case *ast.For:
		p.indent(depth)
		p.b.WriteString("for (")
		p.expr(st.Init.LHS, 0)
		p.b.WriteString(" = ")
		p.expr(st.Init.RHS, 0)
		p.b.WriteString("; ")
		p.expr(st.Cond, 0)
		p.b.WriteString("; ")
		p.expr(st.Step.LHS, 0)
		p.b.WriteString(" = ")
		p.expr(st.Step.RHS, 0)
		p.b.WriteString(")\n")
		p.stmt(st.Body, depth+1)
	}
}

// ifChain prints if/else-if chains without extra indentation pyramids.
// The caller has already printed the indent for the `if` keyword.
func (p *printer) ifChain(st *ast.If, depth int) {
	p.b.WriteString("if (")
	p.expr(st.Cond, 0)
	p.b.WriteString(")")
	p.branch(st.Then, depth)
	if st.Else != nil {
		p.indent(depth)
		p.b.WriteString("else")
		if elif, ok := st.Else.(*ast.If); ok {
			p.b.WriteString(" ")
			p.ifChain(elif, depth)
			return
		}
		p.branch(st.Else, depth)
	}
}

// branch prints the then/else body of an if, inlining blocks.
func (p *printer) branch(s ast.Stmt, depth int) {
	if blk, ok := s.(*ast.Block); ok {
		p.b.WriteString(" begin\n")
		for _, sub := range blk.Stmts {
			p.stmt(sub, depth+1)
		}
		p.indent(depth)
		p.b.WriteString("end\n")
		return
	}
	p.b.WriteString("\n")
	p.stmt(s, depth+1)
}

// Operator precedence used to decide parenthesization; mirrors the parser's
// table.
func exprPrec(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.Binary:
		switch x.Op {
		case ast.Mul, ast.Div, ast.Mod:
			return 10
		case ast.Add, ast.Sub:
			return 9
		case ast.Shl, ast.Shr, ast.AShl, ast.AShr:
			return 8
		case ast.Lt, ast.Leq, ast.Gt, ast.Geq:
			return 7
		case ast.Eq, ast.Neq, ast.CaseEq, ast.CaseNeq:
			return 6
		case ast.BitAnd:
			return 5
		case ast.BitXor, ast.BitXnor:
			return 4
		case ast.BitOr:
			return 3
		case ast.LogAnd:
			return 2
		case ast.LogOr:
			return 1
		}
	case *ast.Ternary:
		return 0
	case *ast.Unary:
		return 11
	}
	return 12 // primary
}

func (p *printer) expr(e ast.Expr, parentPrec int) {
	prec := exprPrec(e)
	paren := prec < parentPrec
	if paren {
		p.b.WriteString("(")
	}
	switch x := e.(type) {
	case *ast.Ident:
		p.b.WriteString(x.Name)
	case *ast.Number:
		p.b.WriteString(x.Text)
	case *ast.Unary:
		p.b.WriteString(x.Op.String())
		// Parenthesize nested unary/binary operands of reductions for clarity.
		p.expr(x.X, 11+1)
	case *ast.Binary:
		p.expr(x.X, prec)
		fmt.Fprintf(&p.b, " %s ", x.Op)
		p.expr(x.Y, prec+1)
	case *ast.Ternary:
		p.expr(x.Cond, 1)
		p.b.WriteString(" ? ")
		p.expr(x.Then, 0)
		p.b.WriteString(" : ")
		p.expr(x.Else, 0)
	case *ast.Concat:
		p.b.WriteString("{")
		for i, part := range x.Parts {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(part, 0)
		}
		p.b.WriteString("}")
	case *ast.Repl:
		p.b.WriteString("{")
		p.expr(x.Count, 12)
		p.b.WriteString("{")
		p.expr(x.Value, 0)
		p.b.WriteString("}}")
	case *ast.Index:
		p.expr(x.X, 12)
		p.b.WriteString("[")
		p.expr(x.Idx, 0)
		p.b.WriteString("]")
	case *ast.PartSel:
		p.expr(x.X, 12)
		p.b.WriteString("[")
		p.expr(x.A, 0)
		switch x.Kind {
		case ast.SelPlus:
			p.b.WriteString(" +: ")
		case ast.SelMinus:
			p.b.WriteString(" -: ")
		default:
			p.b.WriteString(":")
		}
		p.expr(x.B, 0)
		p.b.WriteString("]")
	}
	if paren {
		p.b.WriteString(")")
	}
}
