package parser

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseNumberValues(t *testing.T) {
	cases := []struct {
		text  string
		width int // expected declared width (-1 unsized)
		val   uint64
	}{
		{"0", -1, 0},
		{"42", -1, 42},
		{"8'hFF", 8, 255},
		{"8'hff", 8, 255},
		{"4'b1010", 4, 10},
		{"4'd9", 4, 9},
		{"12'o777", 12, 0o777},
		{"16'd65535", 16, 65535},
		{"'b101", -1, 5},
		{"8'sb11", 8, 3},
		{"8'b1010_1010", 8, 0xAA},
		{"3'd9", 3, 1}, // oversized digits truncate to width
	}
	for _, tc := range cases {
		n, err := ParseNumber(tc.text)
		if err != nil {
			t.Errorf("%q: %v", tc.text, err)
			continue
		}
		if n.Width != tc.width {
			t.Errorf("%q: width %d, want %d", tc.text, n.Width, tc.width)
		}
		if n.Val[0] != tc.val {
			t.Errorf("%q: val %d, want %d", tc.text, n.Val[0], tc.val)
		}
		for _, xz := range n.XZ {
			if xz != 0 {
				t.Errorf("%q: unexpected x/z bits", tc.text)
			}
		}
	}
}

func TestParseNumberXZ(t *testing.T) {
	n, err := ParseNumber("4'b1x0z")
	if err != nil {
		t.Fatal(err)
	}
	// bit3=1, bit2=x, bit1=0, bit0=z
	if n.Val[0]&(1<<3) == 0 {
		t.Error("bit 3 should be 1")
	}
	if n.XZ[0]&(1<<2) == 0 || n.Val[0]&(1<<2) != 0 {
		t.Error("bit 2 should be X")
	}
	if n.XZ[0]&(1<<0) == 0 || n.Val[0]&(1<<0) == 0 {
		t.Error("bit 0 should be Z")
	}
	// '?' is Z in literals.
	n2, err := ParseNumber("2'b?1")
	if err != nil {
		t.Fatal(err)
	}
	if n2.XZ[0]&2 == 0 || n2.Val[0]&2 == 0 {
		t.Error("? should read as Z")
	}
}

func TestParseNumberWide(t *testing.T) {
	n, err := ParseNumber("100'h1")
	if err != nil {
		t.Fatal(err)
	}
	if n.Width != 100 || len(n.Val) != 2 {
		t.Fatalf("width=%d words=%d", n.Width, len(n.Val))
	}
	if n.Val[0] != 1 || n.Val[1] != 0 {
		t.Errorf("val = %v", n.Val)
	}
}

func TestParseNumberErrors(t *testing.T) {
	for _, text := range []string{"8'q1", "'h", "8'", "0x12", "4'bxyz2w", "abc"} {
		if _, err := ParseNumber(text); err == nil {
			t.Errorf("%q: expected error", text)
		} else if !errors.Is(err, ErrNumber) {
			t.Errorf("%q: %v is not ErrNumber", text, err)
		}
	}
}

// TestParseNumberRoundTripQuick checks that any uint64 value formatted as a
// sized hex or decimal literal parses back to itself.
func TestParseNumberRoundTripQuick(t *testing.T) {
	prop := func(v uint64, useHex bool) bool {
		var text string
		if useHex {
			text = fmt.Sprintf("64'h%x", v)
		} else {
			text = fmt.Sprintf("64'd%d", v)
		}
		n, err := ParseNumber(text)
		if err != nil {
			return false
		}
		return n.Width == 64 && n.Val[0] == v && n.XZ[0] == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParseNumberWidthMaskQuick: a literal never carries bits above its
// declared width.
func TestParseNumberWidthMaskQuick(t *testing.T) {
	prop := func(v uint16, w uint8) bool {
		width := int(w%16) + 1
		text := fmt.Sprintf("%d'h%x", width, v)
		n, err := ParseNumber(text)
		if err != nil {
			return false
		}
		if width < 64 && n.Val[0] >= 1<<uint(width) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
