package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/verilog/ast"
)

// ErrNumber is the sentinel for malformed number literals.
var ErrNumber = errors.New("malformed number literal")

func wordsFor(width int) int {
	if width <= 0 {
		return 1
	}
	return (width + 63) / 64
}

func setBit(words []uint64, i int) {
	words[i/64] |= 1 << (uint(i) % 64)
}

// ParseNumber parses a Verilog number literal into an ast.Number with
// four-state bitplanes. Supported forms: plain decimal (`42`), sized or
// unsized based literals (`8'hFF`, `'b101`, `4'b1x0z`), with optional
// underscores and an ignored signed marker (`8'sb...`).
func ParseNumber(text string) (*ast.Number, error) {
	n := &ast.Number{Text: text, Width: -1}
	quote := strings.IndexByte(text, '\'')
	if quote < 0 {
		// Plain decimal, 32-bit unsized.
		clean := strings.ReplaceAll(text, "_", "")
		v, err := strconv.ParseUint(clean, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q", ErrNumber, text)
		}
		n.Val = []uint64{v}
		n.XZ = []uint64{0}
		return n, nil
	}

	sizeText := strings.ReplaceAll(text[:quote], "_", "")
	rest := text[quote+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return nil, fmt.Errorf("%w: %q has no base", ErrNumber, text)
	}
	base := rest[0]
	digits := strings.ReplaceAll(rest[1:], "_", "")
	if digits == "" {
		return nil, fmt.Errorf("%w: %q has no digits", ErrNumber, text)
	}

	width := -1
	if sizeText != "" {
		w, err := strconv.Atoi(sizeText)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("%w: bad size in %q", ErrNumber, text)
		}
		width = w
	}

	var bitsPerDigit int
	switch base {
	case 'b', 'B':
		bitsPerDigit = 1
	case 'o', 'O':
		bitsPerDigit = 3
	case 'h', 'H':
		bitsPerDigit = 4
	case 'd', 'D':
		// Decimal based literal: no x/z digits allowed.
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q", ErrNumber, text)
		}
		if width < 0 {
			width = 32
			n.Width = -1
		} else {
			n.Width = width
		}
		nw := wordsFor(width)
		n.Val = make([]uint64, nw)
		n.XZ = make([]uint64, nw)
		n.Val[0] = v
		maskTo(n.Val, width)
		maskTo(n.XZ, width)
		return n, nil
	default:
		return nil, fmt.Errorf("%w: bad base %q in %q", ErrNumber, string(base), text)
	}

	totalBits := len(digits) * bitsPerDigit
	if width < 0 {
		width = totalBits
		if width < 32 {
			width = 32
		}
	} else {
		n.Width = width
	}
	nw := wordsFor(width)
	n.Val = make([]uint64, nw)
	n.XZ = make([]uint64, nw)

	// Fill from the least-significant digit.
	bit := 0
	for i := len(digits) - 1; i >= 0; i-- {
		d := digits[i]
		var dv uint64
		var isX, isZ bool
		switch {
		case d >= '0' && d <= '9':
			dv = uint64(d - '0')
		case d >= 'a' && d <= 'f':
			dv = uint64(d-'a') + 10
		case d >= 'A' && d <= 'F':
			dv = uint64(d-'A') + 10
		case d == 'x' || d == 'X':
			isX = true
		case d == 'z' || d == 'Z' || d == '?':
			isZ = true
		default:
			return nil, fmt.Errorf("%w: digit %q in %q", ErrNumber, string(d), text)
		}
		if dv >= 1<<uint(bitsPerDigit) {
			return nil, fmt.Errorf("%w: digit %q too large for base in %q", ErrNumber, string(d), text)
		}
		for b := 0; b < bitsPerDigit; b++ {
			if bit >= width {
				break
			}
			switch {
			case isX:
				setBit(n.XZ, bit)
			case isZ:
				setBit(n.XZ, bit)
				setBit(n.Val, bit)
			default:
				if dv&(1<<uint(b)) != 0 {
					setBit(n.Val, bit)
				}
			}
			bit++
		}
	}
	maskTo(n.Val, width)
	maskTo(n.XZ, width)
	return n, nil
}

// maskTo clears bits at positions >= width.
func maskTo(words []uint64, width int) {
	if width <= 0 {
		return
	}
	for i := range words {
		lo := i * 64
		switch {
		case lo >= width:
			words[i] = 0
		case lo+64 > width:
			words[i] &= (1 << (uint(width) % 64)) - 1
		}
	}
}
