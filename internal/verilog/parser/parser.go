// Package parser implements a recursive-descent parser for the supported
// Verilog subset. It consumes the lexer's token stream and produces ast
// nodes, accumulating all syntax errors instead of stopping at the first.
package parser

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/verilog/ast"
	"repro/internal/verilog/lexer"
	"repro/internal/verilog/token"
)

// ErrSyntax is the sentinel wrapped by all parse errors.
var ErrSyntax = errors.New("verilog syntax error")

// Error is a single syntax diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList aggregates every diagnostic from one parse.
type ErrorList []*Error

// Error implements the error interface, joining the first few messages.
func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i == 3 {
			fmt.Fprintf(&b, "; and %d more", len(l)-i)
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Is reports that an ErrorList is a syntax error.
func (l ErrorList) Is(target error) bool { return target == ErrSyntax }

const maxErrors = 20

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

// Parse parses a full compilation unit (one or more modules).
func Parse(src string) (*ast.Source, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &parser{toks: toks}
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	out := &ast.Source{}
	for !p.at(token.EOF) && len(p.errs) < maxErrors {
		m := p.parseModule()
		if m == nil {
			break
		}
		out.Modules = append(out.Modules, m)
	}
	if len(p.errs) > 0 {
		return out, fmt.Errorf("%w: %s", ErrSyntax, p.errs.Error())
	}
	if len(out.Modules) == 0 {
		return out, fmt.Errorf("%w: no module found", ErrSyntax)
	}
	return out, nil
}

// ParseModule parses a source expected to contain exactly one module and
// returns it.
func ParseModule(src string) (*ast.Module, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.Modules[0], nil
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) next() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < maxErrors {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// expect consumes a token of kind k or records an error.
func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

// accept consumes a token of kind k if present.
func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// syncTo skips tokens until one of the kinds (or EOF) is current.
func (p *parser) syncTo(kinds ...token.Kind) {
	for !p.at(token.EOF) {
		for _, k := range kinds {
			if p.at(k) {
				return
			}
		}
		p.next()
	}
}

// --- Module ------------------------------------------------------------------

func (p *parser) parseModule() *ast.Module {
	if !p.at(token.KwModule) {
		p.errorf(p.cur().Pos, "expected 'module', found %s", p.cur())
		return nil
	}
	modTok := p.next()
	name := p.expect(token.Ident)
	m := &ast.Module{ModPos: modTok.Pos, Name: name.Text}

	if p.accept(token.LParen) {
		p.parsePortList(m)
		p.expect(token.RParen)
	}
	p.expect(token.Semi)

	for !p.at(token.KwEndmodule) && !p.at(token.EOF) && len(p.errs) < maxErrors {
		item := p.parseItem()
		if item != nil {
			m.Items = append(m.Items, item)
		}
	}
	p.expect(token.KwEndmodule)
	return m
}

// parsePortList parses an ANSI-style port list. Direction, reg-ness and range
// are sticky across comma-separated names until overridden.
func (p *parser) parsePortList(m *ast.Module) {
	if p.at(token.RParen) {
		return
	}
	var (
		dir    ast.Dir
		isReg  bool
		signed bool
		rng    *ast.Range
	)
	for {
		pos := p.cur().Pos
		changed := false
		switch p.cur().Kind {
		case token.KwInput:
			p.next()
			dir, isReg, signed, rng, changed = ast.Input, false, false, nil, true
		case token.KwOutput:
			p.next()
			dir, isReg, signed, rng, changed = ast.Output, false, false, nil, true
		case token.KwInout:
			p.next()
			dir, isReg, signed, rng, changed = ast.Inout, false, false, nil, true
		}
		if changed {
			if p.accept(token.KwReg) {
				isReg = true
			} else {
				p.accept(token.KwWire)
			}
			if p.accept(token.KwSigned) {
				signed = true
			}
			if p.at(token.LBrack) {
				rng = p.parseRange()
			}
		}
		if dir == 0 {
			p.errorf(pos, "port without direction")
			p.syncTo(token.RParen, token.Semi)
			return
		}
		nameTok := p.expect(token.Ident)
		m.Ports = append(m.Ports, &ast.Port{
			PortPos: pos,
			Dir:     dir,
			IsReg:   isReg,
			Signed:  signed,
			Range:   rng,
			Name:    nameTok.Text,
		})
		if !p.accept(token.Comma) {
			return
		}
	}
}

func (p *parser) parseRange() *ast.Range {
	p.expect(token.LBrack)
	msb := p.parseExpr()
	p.expect(token.Colon)
	lsb := p.parseExpr()
	p.expect(token.RBrack)
	return &ast.Range{MSB: msb, LSB: lsb}
}

// --- Items -------------------------------------------------------------------

func (p *parser) parseItem() ast.Item {
	switch p.cur().Kind {
	case token.KwWire, token.KwReg, token.KwInteger, token.KwGenvar:
		return p.parseNetDecl()
	case token.KwParameter, token.KwLocalparam:
		return p.parseParamDecl()
	case token.KwAssign:
		return p.parseContAssign()
	case token.KwAlways:
		return p.parseAlways()
	case token.KwInitial:
		tok := p.next()
		body := p.parseStmt()
		return &ast.Initial{InitPos: tok.Pos, Body: body}
	case token.Ident:
		return p.parseInstance()
	default:
		p.errorf(p.cur().Pos, "unexpected token %s in module body", p.cur())
		p.next()
		p.syncTo(token.Semi, token.KwEndmodule)
		p.accept(token.Semi)
		return nil
	}
}

func (p *parser) parseNetDecl() ast.Item {
	tok := p.next()
	var kind ast.NetKind
	switch tok.Kind {
	case token.KwWire:
		kind = ast.Wire
	case token.KwReg:
		kind = ast.Reg
	case token.KwInteger, token.KwGenvar:
		kind = ast.Integer
	}
	d := &ast.NetDecl{DeclPos: tok.Pos, Kind: kind}
	if p.accept(token.KwSigned) {
		d.Signed = true
	}
	if p.at(token.LBrack) {
		d.Range = p.parseRange()
	}
	for {
		name := p.expect(token.Ident)
		d.Names = append(d.Names, name.Text)
		var initExpr ast.Expr
		if p.accept(token.Assign) {
			initExpr = p.parseExpr()
		}
		d.Init = append(d.Init, initExpr)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semi)
	return d
}

func (p *parser) parseParamDecl() ast.Item {
	tok := p.next()
	d := &ast.ParamDecl{DeclPos: tok.Pos, Local: tok.Kind == token.KwLocalparam}
	if p.at(token.LBrack) {
		d.Range = p.parseRange()
	}
	name := p.expect(token.Ident)
	d.Name = name.Text
	p.expect(token.Assign)
	d.Value = p.parseExpr()
	p.expect(token.Semi)
	return d
}

func (p *parser) parseContAssign() ast.Item {
	tok := p.next()
	lhs := p.parseExpr()
	p.expect(token.Assign)
	rhs := p.parseExpr()
	p.expect(token.Semi)
	return &ast.ContAssign{AssignPos: tok.Pos, LHS: lhs, RHS: rhs}
}

func (p *parser) parseAlways() ast.Item {
	tok := p.next()
	a := &ast.Always{AlwaysPos: tok.Pos}
	if p.accept(token.At) {
		if p.accept(token.Star) {
			a.Star = true
		} else {
			p.expect(token.LParen)
			if p.accept(token.Star) {
				a.Star = true
			} else {
				for {
					ev := ast.Event{Edge: ast.EdgeNone}
					switch p.cur().Kind {
					case token.KwPosedge:
						p.next()
						ev.Edge = ast.EdgePos
					case token.KwNegedge:
						p.next()
						ev.Edge = ast.EdgeNeg
					}
					ev.Sig = p.parseExpr()
					a.Events = append(a.Events, ev)
					if !p.accept(token.KwOr) && !p.accept(token.Comma) {
						break
					}
				}
			}
			p.expect(token.RParen)
		}
	} else {
		p.errorf(tok.Pos, "always block without event control is not supported")
	}
	a.Body = p.parseStmt()
	return a
}

// parseInstance parses `modname instname ( ... );` with optional #(...)
// parameter overrides.
func (p *parser) parseInstance() ast.Item {
	mod := p.expect(token.Ident)
	inst := &ast.Instance{InstPos: mod.Pos, ModName: mod.Text}
	if p.accept(token.Hash) {
		p.expect(token.LParen)
		inst.ParamsBy = p.parseConnList()
		p.expect(token.RParen)
	}
	name := p.expect(token.Ident)
	inst.Name = name.Text
	p.expect(token.LParen)
	inst.Conns = p.parseConnList()
	for _, c := range inst.Conns {
		if c.Name != "" {
			inst.ByName = true
			break
		}
	}
	p.expect(token.RParen)
	p.expect(token.Semi)
	return inst
}

func (p *parser) parseConnList() []ast.PortConn {
	var conns []ast.PortConn
	if p.at(token.RParen) {
		return conns
	}
	for {
		var c ast.PortConn
		if p.accept(token.Dot) {
			nameTok := p.expect(token.Ident)
			c.Name = nameTok.Text
			p.expect(token.LParen)
			if !p.at(token.RParen) {
				c.Expr = p.parseExpr()
			}
			p.expect(token.RParen)
		} else {
			c.Expr = p.parseExpr()
		}
		conns = append(conns, c)
		if !p.accept(token.Comma) {
			return conns
		}
	}
}

// --- Statements ----------------------------------------------------------------

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.KwBegin:
		return p.parseBlock()
	case token.KwIf:
		return p.parseIf()
	case token.KwCase, token.KwCasez, token.KwCasex:
		return p.parseCase()
	case token.KwFor:
		return p.parseFor()
	case token.Ident, token.LBrace:
		return p.parseAssignStmt()
	case token.Semi:
		// Empty statement: normalize to an empty block.
		tok := p.next()
		return &ast.Block{BeginPos: tok.Pos}
	default:
		p.errorf(p.cur().Pos, "unexpected token %s at start of statement", p.cur())
		p.next()
		p.syncTo(token.Semi, token.KwEnd, token.KwEndmodule)
		p.accept(token.Semi)
		return &ast.Block{BeginPos: p.cur().Pos}
	}
}

func (p *parser) parseBlock() ast.Stmt {
	tok := p.expect(token.KwBegin)
	b := &ast.Block{BeginPos: tok.Pos}
	if p.accept(token.Colon) {
		name := p.expect(token.Ident)
		b.Name = name.Text
	}
	for !p.at(token.KwEnd) && !p.at(token.EOF) && len(p.errs) < maxErrors {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.KwEnd)
	return b
}

func (p *parser) parseIf() ast.Stmt {
	tok := p.expect(token.KwIf)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		els = p.parseStmt()
	}
	return &ast.If{IfPos: tok.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseCase() ast.Stmt {
	tok := p.next()
	var kind ast.CaseKind
	switch tok.Kind {
	case token.KwCase:
		kind = ast.CasePlain
	case token.KwCasez:
		kind = ast.CaseZ
	case token.KwCasex:
		kind = ast.CaseX
	}
	p.expect(token.LParen)
	subj := p.parseExpr()
	p.expect(token.RParen)
	c := &ast.Case{CasePos: tok.Pos, Kind: kind, Subject: subj}
	for !p.at(token.KwEndcase) && !p.at(token.EOF) && len(p.errs) < maxErrors {
		item := &ast.CaseItem{ItemPos: p.cur().Pos}
		if p.accept(token.KwDefault) {
			p.accept(token.Colon)
		} else {
			for {
				item.Labels = append(item.Labels, p.parseExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.Colon)
		}
		item.Body = p.parseStmt()
		c.Items = append(c.Items, item)
	}
	p.expect(token.KwEndcase)
	return c
}

func (p *parser) parseFor() ast.Stmt {
	tok := p.expect(token.KwFor)
	p.expect(token.LParen)
	initStmt := p.parseSimpleAssign()
	p.expect(token.Semi)
	cond := p.parseExpr()
	p.expect(token.Semi)
	step := p.parseSimpleAssign()
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.For{ForPos: tok.Pos, Init: initStmt, Cond: cond, Step: step, Body: body}
}

// parseSimpleAssign parses `lhs = rhs` (no semicolon) used in for headers.
func (p *parser) parseSimpleAssign() *ast.AssignStmt {
	lhs := p.parsePrimary()
	p.expect(token.Assign)
	rhs := p.parseExpr()
	return &ast.AssignStmt{LHS: lhs, RHS: rhs, Blocking: true}
}

// parseAssignStmt parses a blocking or non-blocking procedural assignment.
// The `<=` token doubles as less-equal; in statement-lead position it is a
// non-blocking assignment.
func (p *parser) parseAssignStmt() ast.Stmt {
	lhs := p.parseLValue()
	var blocking bool
	switch p.cur().Kind {
	case token.Assign:
		p.next()
		blocking = true
	case token.Leq:
		p.next()
		blocking = false
	default:
		p.errorf(p.cur().Pos, "expected '=' or '<=' in assignment, found %s", p.cur())
		p.syncTo(token.Semi, token.KwEnd, token.KwEndmodule)
		p.accept(token.Semi)
		return &ast.Block{BeginPos: p.cur().Pos}
	}
	rhs := p.parseExpr()
	p.expect(token.Semi)
	return &ast.AssignStmt{LHS: lhs, RHS: rhs, Blocking: blocking}
}

// parseLValue parses an assignment target: identifier with optional selects,
// or a concatenation of lvalues.
func (p *parser) parseLValue() ast.Expr {
	if p.at(token.LBrace) {
		tok := p.next()
		c := &ast.Concat{LbPos: tok.Pos}
		for {
			c.Parts = append(c.Parts, p.parseLValue())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
		return c
	}
	name := p.expect(token.Ident)
	var e ast.Expr = &ast.Ident{NamePos: name.Pos, Name: name.Text}
	return p.parseSelects(e)
}

// --- Expressions ---------------------------------------------------------------

// Binding powers for the precedence climber, tightest first. Mirrors the
// Verilog operator precedence table.
func binaryPrec(k token.Kind) (ast.BinaryOp, int) {
	switch k {
	case token.Star:
		return ast.Mul, 10
	case token.Slash:
		return ast.Div, 10
	case token.Percent:
		return ast.Mod, 10
	case token.Plus:
		return ast.Add, 9
	case token.Minus:
		return ast.Sub, 9
	case token.Shl:
		return ast.Shl, 8
	case token.Shr:
		return ast.Shr, 8
	case token.AShl:
		return ast.AShl, 8
	case token.AShr:
		return ast.AShr, 8
	case token.Lt:
		return ast.Lt, 7
	case token.Leq:
		return ast.Leq, 7
	case token.Gt:
		return ast.Gt, 7
	case token.Geq:
		return ast.Geq, 7
	case token.Eq:
		return ast.Eq, 6
	case token.Neq:
		return ast.Neq, 6
	case token.CaseEq:
		return ast.CaseEq, 6
	case token.CaseNeq:
		return ast.CaseNeq, 6
	case token.Amp:
		return ast.BitAnd, 5
	case token.Caret:
		return ast.BitXor, 4
	case token.TildeCaret:
		return ast.BitXnor, 4
	case token.Pipe:
		return ast.BitOr, 3
	case token.AmpAmp:
		return ast.LogAnd, 2
	case token.PipePipe:
		return ast.LogOr, 1
	}
	return 0, 0
}

func (p *parser) parseExpr() ast.Expr {
	return p.parseTernary()
}

func (p *parser) parseTernary() ast.Expr {
	cond := p.parseBinary(1)
	if !p.accept(token.Question) {
		return cond
	}
	then := p.parseTernary()
	p.expect(token.Colon)
	els := p.parseTernary()
	return &ast.Ternary{Cond: cond, Then: then, Else: els}
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op, prec := binaryPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() ast.Expr {
	pos := p.cur().Pos
	var op ast.UnaryOp
	switch p.cur().Kind {
	case token.Plus:
		op = ast.UnaryPlus
	case token.Minus:
		op = ast.UnaryMinus
	case token.Bang:
		op = ast.LogicalNot
	case token.Tilde:
		op = ast.BitNot
	case token.Amp:
		op = ast.RedAnd
	case token.Pipe:
		op = ast.RedOr
	case token.Caret:
		op = ast.RedXor
	case token.TildeAmp:
		op = ast.RedNand
	case token.TildePipe:
		op = ast.RedNor
	case token.TildeCaret:
		op = ast.RedXnor
	default:
		return p.parseSelects(p.parsePrimary())
	}
	p.next()
	x := p.parseUnary()
	return &ast.Unary{OpPos: pos, Op: op, X: x}
}

// parseSelects attaches any number of [i] and [a:b] selections to e.
func (p *parser) parseSelects(e ast.Expr) ast.Expr {
	for p.at(token.LBrack) {
		p.next()
		first := p.parseExpr()
		switch p.cur().Kind {
		case token.Colon:
			p.next()
			second := p.parseExpr()
			e = &ast.PartSel{X: e, Kind: ast.SelConst, A: first, B: second}
		case token.PlusColon:
			p.next()
			second := p.parseExpr()
			e = &ast.PartSel{X: e, Kind: ast.SelPlus, A: first, B: second}
		case token.MinusColon:
			p.next()
			second := p.parseExpr()
			e = &ast.PartSel{X: e, Kind: ast.SelMinus, A: first, B: second}
		default:
			e = &ast.Index{X: e, Idx: first}
		}
		p.expect(token.RBrack)
	}
	return e
}

func (p *parser) parsePrimary() ast.Expr {
	tok := p.cur()
	switch tok.Kind {
	case token.Ident:
		p.next()
		return &ast.Ident{NamePos: tok.Pos, Name: tok.Text}
	case token.Number:
		p.next()
		n, err := ParseNumber(tok.Text)
		if err != nil {
			p.errorf(tok.Pos, "bad number literal %q: %v", tok.Text, err)
			return &ast.Number{LitPos: tok.Pos, Text: tok.Text, Width: 1, Val: []uint64{0}, XZ: []uint64{0}}
		}
		n.LitPos = tok.Pos
		return n
	case token.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(token.RParen)
		return p.parseSelects(e)
	case token.LBrace:
		return p.parseConcatOrRepl()
	case token.SysID:
		p.errorf(tok.Pos, "system function %s is not supported", tok.Text)
		p.next()
		if p.accept(token.LParen) {
			depth := 1
			for depth > 0 && !p.at(token.EOF) {
				switch p.cur().Kind {
				case token.LParen:
					depth++
				case token.RParen:
					depth--
				}
				p.next()
			}
		}
		return &ast.Number{LitPos: tok.Pos, Text: "0", Width: -1, Val: []uint64{0}, XZ: []uint64{0}}
	default:
		p.errorf(tok.Pos, "unexpected token %s in expression", tok)
		p.next()
		return &ast.Number{LitPos: tok.Pos, Text: "0", Width: -1, Val: []uint64{0}, XZ: []uint64{0}}
	}
}

// parseConcatOrRepl parses {a, b} or {n{v}}.
func (p *parser) parseConcatOrRepl() ast.Expr {
	lb := p.expect(token.LBrace)
	first := p.parseExpr()
	if p.at(token.LBrace) {
		// Replication: {count {value}}.
		p.next()
		val := p.parseExpr()
		// Allow {n{a,b}} by treating multiple parts as an inner concat.
		if p.accept(token.Comma) {
			inner := &ast.Concat{LbPos: p.cur().Pos, Parts: []ast.Expr{val}}
			for {
				inner.Parts = append(inner.Parts, p.parseExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			val = inner
		}
		p.expect(token.RBrace)
		p.expect(token.RBrace)
		return &ast.Repl{LbPos: lb.Pos, Count: first, Value: val}
	}
	c := &ast.Concat{LbPos: lb.Pos, Parts: []ast.Expr{first}}
	for p.accept(token.Comma) {
		c.Parts = append(c.Parts, p.parseExpr())
	}
	p.expect(token.RBrace)
	return c
}
