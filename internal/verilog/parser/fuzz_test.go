package parser_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/printer"
)

// FuzzParsePrintRoundTrip fuzzes the front-end's core invariant: any source
// the parser accepts must print to source the parser accepts again, and the
// second parse must be AST-equivalent to the first (witnessed by the printer
// being a fixpoint: print(parse(print(parse(s)))) == print(parse(s))). The
// corpus is seeded with every golden module in the eval suite plus a few
// hand-picked stress inputs.
func FuzzParsePrintRoundTrip(f *testing.F) {
	for _, task := range eval.Suite() {
		f.Add(task.Golden)
	}
	f.Add("module m(input [7:0] a, output y); assign y = ^a; endmodule")
	f.Add("module m(output reg [3:0] q); initial q = 4'bx1z0; endmodule")
	f.Add(`module m(input clk, output reg [7:0] q);
    integer i;
    always @(posedge clk)
        for (i = 0; i < 8; i = i + 1)
            q[i] <= ~q[i];
endmodule`)
	f.Add("module m(input [15:0] a, input [3:0] s, output [3:0] y); assign y = a[s +: 4]; endmodule")
	f.Fuzz(func(t *testing.T, src string) {
		ast1, err := parser.Parse(src)
		if err != nil {
			return // invalid input: nothing to round-trip
		}
		p1 := printer.Print(ast1)
		ast2, err := parser.Parse(p1)
		if err != nil {
			t.Fatalf("printed output does not re-parse: %v\ninput:\n%s\nprinted:\n%s", err, src, p1)
		}
		p2 := printer.Print(ast2)
		if p1 != p2 {
			t.Fatalf("printer is not a fixpoint\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	})
}
