package parser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/verilog/ast"
)

func mustParseModule(t *testing.T, src string) *ast.Module {
	t.Helper()
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func TestModulePorts(t *testing.T) {
	m := mustParseModule(t, `
module top_module (
    input clk,
    input [7:0] a, b,
    output reg [3:0] q,
    output done
);
endmodule
`)
	if m.Name != "top_module" {
		t.Errorf("name = %q", m.Name)
	}
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports, want 5", len(m.Ports))
	}
	// Sticky direction/range: b inherits input [7:0].
	b := m.Ports[2]
	if b.Name != "b" || b.Dir != ast.Input || b.Range == nil {
		t.Errorf("port b = %+v", b)
	}
	q := m.Ports[3]
	if !q.IsReg || q.Dir != ast.Output {
		t.Errorf("port q = %+v", q)
	}
	done := m.Ports[4]
	if done.IsReg || done.Range != nil {
		t.Errorf("done should reset reg/range stickiness: %+v", done)
	}
}

func TestItems(t *testing.T) {
	m := mustParseModule(t, `
module m (input a, output y);
    wire w1, w2;
    reg [3:0] r;
    integer i;
    parameter WIDTH = 8;
    localparam [1:0] MODE = 2'd1;
    assign y = a & w1;
    always @(posedge a) r <= r + 1;
    always @(*) w2 = a;
    initial r = 0;
endmodule
`)
	counts := map[string]int{}
	for _, it := range m.Items {
		switch it.(type) {
		case *ast.NetDecl:
			counts["net"]++
		case *ast.ParamDecl:
			counts["param"]++
		case *ast.ContAssign:
			counts["assign"]++
		case *ast.Always:
			counts["always"]++
		case *ast.Initial:
			counts["initial"]++
		}
	}
	want := map[string]int{"net": 3, "param": 2, "assign": 1, "always": 2, "initial": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("%s count = %d, want %d", k, counts[k], v)
		}
	}
}

func TestPrecedence(t *testing.T) {
	m := mustParseModule(t, `
module m (input a, input b, input c, output y);
    assign y = a | b & c;
endmodule
`)
	ca := m.Items[0].(*ast.ContAssign)
	or, ok := ca.RHS.(*ast.Binary)
	if !ok || or.Op != ast.BitOr {
		t.Fatalf("root should be |, got %T", ca.RHS)
	}
	and, ok := or.Y.(*ast.Binary)
	if !ok || and.Op != ast.BitAnd {
		t.Fatalf("right child should be &, got %T", or.Y)
	}
}

func TestTernaryRightAssoc(t *testing.T) {
	m := mustParseModule(t, `
module m (input a, input b, output y);
    assign y = a ? b : a ? 1'b0 : 1'b1;
endmodule
`)
	ca := m.Items[0].(*ast.ContAssign)
	tern := ca.RHS.(*ast.Ternary)
	if _, ok := tern.Else.(*ast.Ternary); !ok {
		t.Fatalf("else branch should be nested ternary, got %T", tern.Else)
	}
}

func TestConcatReplSelects(t *testing.T) {
	m := mustParseModule(t, `
module m (input [7:0] a, output [15:0] y);
    assign y = {{8{a[7]}}, a[6:0], a[0]};
endmodule
`)
	ca := m.Items[0].(*ast.ContAssign)
	c, ok := ca.RHS.(*ast.Concat)
	if !ok || len(c.Parts) != 3 {
		t.Fatalf("rhs = %T with %d parts", ca.RHS, len(c.Parts))
	}
	if _, ok := c.Parts[0].(*ast.Repl); !ok {
		t.Errorf("part 0 = %T, want Repl", c.Parts[0])
	}
	if ps, ok := c.Parts[1].(*ast.PartSel); !ok || ps.Kind != ast.SelConst {
		t.Errorf("part 1 = %T", c.Parts[1])
	}
	if _, ok := c.Parts[2].(*ast.Index); !ok {
		t.Errorf("part 2 = %T, want Index", c.Parts[2])
	}
}

func TestIndexedPartSelect(t *testing.T) {
	m := mustParseModule(t, `
module m (input [31:0] a, input [2:0] s, output [3:0] y, output [3:0] z);
    assign y = a[s*4 +: 4];
    assign z = a[s*4+3 -: 4];
endmodule
`)
	y := m.Items[0].(*ast.ContAssign).RHS.(*ast.PartSel)
	if y.Kind != ast.SelPlus {
		t.Errorf("y kind = %v", y.Kind)
	}
	z := m.Items[1].(*ast.ContAssign).RHS.(*ast.PartSel)
	if z.Kind != ast.SelMinus {
		t.Errorf("z kind = %v", z.Kind)
	}
}

func TestCaseKindsAndDefault(t *testing.T) {
	m := mustParseModule(t, `
module m (input [1:0] s, output reg y);
    always @(*) begin
        casez (s)
            2'b1z: y = 1'b1;
            2'b01, 2'b00: y = 1'b0;
            default: y = 1'bx;
        endcase
    end
endmodule
`)
	alw := m.Items[0].(*ast.Always)
	blk := alw.Body.(*ast.Block)
	cs := blk.Stmts[0].(*ast.Case)
	if cs.Kind != ast.CaseZ {
		t.Errorf("kind = %v", cs.Kind)
	}
	if len(cs.Items) != 3 {
		t.Fatalf("items = %d", len(cs.Items))
	}
	if len(cs.Items[1].Labels) != 2 {
		t.Errorf("multi-label arm has %d labels", len(cs.Items[1].Labels))
	}
	if cs.Items[2].Labels != nil {
		t.Error("default arm should have nil labels")
	}
}

func TestNonBlockingVsLessEqual(t *testing.T) {
	m := mustParseModule(t, `
module m (input clk, input [3:0] a, output reg y);
    always @(posedge clk)
        if (a <= 4'd3)
            y <= 1'b1;
endmodule
`)
	alw := m.Items[0].(*ast.Always)
	iff := alw.Body.(*ast.If)
	cmp, ok := iff.Cond.(*ast.Binary)
	if !ok || cmp.Op != ast.Leq {
		t.Fatalf("condition should be <= comparison, got %#v", iff.Cond)
	}
	as := iff.Then.(*ast.AssignStmt)
	if as.Blocking {
		t.Error("statement-position <= must be non-blocking assign")
	}
}

func TestForLoop(t *testing.T) {
	m := mustParseModule(t, `
module m (input [7:0] in, output reg [3:0] n);
    integer i;
    always @(*) begin
        n = 0;
        for (i = 0; i < 8; i = i + 1)
            if (in[i]) n = n + 1;
    end
endmodule
`)
	alw := m.Items[1].(*ast.Always)
	blk := alw.Body.(*ast.Block)
	f, ok := blk.Stmts[1].(*ast.For)
	if !ok {
		t.Fatalf("second stmt = %T", blk.Stmts[1])
	}
	if f.Init == nil || f.Step == nil || f.Cond == nil {
		t.Error("for loop missing parts")
	}
}

func TestInstances(t *testing.T) {
	src := `
module sub (input a, output y);
    assign y = ~a;
endmodule

module top_module (input x, output z);
    wire m;
    sub u1 (.a(x), .y(m));
    sub u2 (m, z);
endmodule
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(s.Modules) != 2 {
		t.Fatalf("modules = %d", len(s.Modules))
	}
	top := s.FindModule("top_module")
	var insts []*ast.Instance
	for _, it := range top.Items {
		if inst, ok := it.(*ast.Instance); ok {
			insts = append(insts, inst)
		}
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	if !insts[0].ByName || insts[1].ByName {
		t.Error("connection style flags wrong")
	}
}

func TestParamOverride(t *testing.T) {
	src := `
module sub (input a, output y);
    parameter N = 1;
    assign y = a;
endmodule
module top_module (input x, output z);
    sub #(.N(4)) u (.a(x), .y(z));
endmodule
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	top := s.FindModule("top_module")
	inst := top.Items[0].(*ast.Instance)
	if len(inst.ParamsBy) != 1 || inst.ParamsBy[0].Name != "N" {
		t.Errorf("params = %+v", inst.ParamsBy)
	}
}

func TestConcatLValue(t *testing.T) {
	m := mustParseModule(t, `
module m (input [3:0] a, input [3:0] b, input cin, output [3:0] s, output co);
    assign {co, s} = a + b + cin;
endmodule
`)
	ca := m.Items[0].(*ast.ContAssign)
	if _, ok := ca.LHS.(*ast.Concat); !ok {
		t.Fatalf("lhs = %T, want Concat", ca.LHS)
	}
}

func TestSyntaxErrors(t *testing.T) {
	for name, src := range map[string]string{
		"truncated":     "module m (input a, output y);\n    assign y = a &",
		"missing-end":   "module m (input a, output y);\n    assign y = a;",
		"no-module":     "wire x;",
		"bad-stmt":      "module m (input a); always @(*) 42 = a; endmodule",
		"empty":         "",
		"garbage":       "!!!",
		"sysid-in-expr": "module m (input a, output y); assign y = $signed(a); endmodule",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: error %v is not ErrSyntax", name, err)
		}
	}
}

func TestErrorListBounded(t *testing.T) {
	// A long stream of garbage must not produce unbounded errors.
	src := "module m (input a);\n" + strings.Repeat("@@ ;\n", 200) + "endmodule"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	var list ErrorList
	if errors.As(err, &list) {
		if len(list) > maxErrors {
			t.Errorf("error list has %d entries, cap is %d", len(list), maxErrors)
		}
	}
}

func TestEmptySensitivityRejected(t *testing.T) {
	_, err := Parse("module m (input a, output reg y); always y = a; endmodule")
	if err == nil {
		t.Error("always without @ must be rejected")
	}
}
