package ast

import (
	"testing"

	"repro/internal/verilog/token"
)

func sampleModule() *Module {
	// module m (input a, output reg q);
	//   wire w = a;
	//   always @(posedge a) q <= w ? a : ~a;
	// endmodule
	return &Module{
		Name: "m",
		Ports: []*Port{
			{Dir: Input, Name: "a"},
			{Dir: Output, IsReg: true, Name: "q"},
		},
		Items: []Item{
			&NetDecl{Kind: Wire, Names: []string{"w"}, Init: []Expr{&Ident{Name: "a"}}},
			&Always{
				Events: []Event{{Edge: EdgePos, Sig: &Ident{Name: "a"}}},
				Body: &AssignStmt{
					LHS: &Ident{Name: "q"},
					RHS: &Ternary{
						Cond: &Ident{Name: "w"},
						Then: &Ident{Name: "a"},
						Else: &Unary{Op: BitNot, X: &Ident{Name: "a"}},
					},
				},
			},
		},
	}
}

func TestWalkExprs(t *testing.T) {
	e := &Binary{Op: Add,
		X: &Concat{Parts: []Expr{&Ident{Name: "x"}, &Number{Text: "1"}}},
		Y: &Repl{Count: &Number{Text: "2"}, Value: &Index{X: &Ident{Name: "y"}, Idx: &Number{Text: "0"}}},
	}
	var idents []string
	WalkExprs(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			idents = append(idents, id.Name)
		}
		return true
	})
	if len(idents) != 2 || idents[0] != "x" || idents[1] != "y" {
		t.Errorf("idents = %v", idents)
	}
}

func TestWalkExprsPrune(t *testing.T) {
	e := &Binary{Op: Add, X: &Ident{Name: "x"}, Y: &Ident{Name: "y"}}
	count := 0
	WalkExprs(e, func(x Expr) bool {
		count++
		return false // do not descend
	})
	if count != 1 {
		t.Errorf("visited %d nodes, want 1", count)
	}
}

func TestExprReads(t *testing.T) {
	e := &Ternary{
		Cond: &Ident{Name: "sel"},
		Then: &PartSel{X: &Ident{Name: "bus"}, Kind: SelConst, A: &Number{Text: "3"}, B: &Number{Text: "0"}},
		Else: &Ident{Name: "alt"},
	}
	reads := map[string]struct{}{}
	ExprReads(e, reads)
	for _, want := range []string{"sel", "bus", "alt"} {
		if _, ok := reads[want]; !ok {
			t.Errorf("missing read %q", want)
		}
	}
}

func TestLHSBase(t *testing.T) {
	lhs := &Concat{Parts: []Expr{
		&Ident{Name: "hi"},
		&Index{X: &Ident{Name: "mid"}, Idx: &Number{Text: "0"}},
		&PartSel{X: &Ident{Name: "lo"}, Kind: SelConst, A: &Number{Text: "3"}, B: &Number{Text: "0"}},
	}}
	var names []string
	LHSBase(lhs, func(n string) { names = append(names, n) })
	if len(names) != 3 || names[0] != "hi" || names[1] != "mid" || names[2] != "lo" {
		t.Errorf("names = %v", names)
	}
}

func TestCloneModuleIsDeep(t *testing.T) {
	orig := sampleModule()
	clone := CloneModule(orig)

	// Mutate the clone everywhere and verify the original is untouched.
	clone.Name = "changed"
	clone.Ports[0].Name = "zz"
	clone.Items[0].(*NetDecl).Names[0] = "renamed"
	alw := clone.Items[1].(*Always)
	alw.Events[0].Edge = EdgeNeg
	alw.Body.(*AssignStmt).LHS.(*Ident).Name = "other"

	if orig.Name != "m" {
		t.Error("module name leaked")
	}
	if orig.Ports[0].Name != "a" {
		t.Error("port leaked")
	}
	if orig.Items[0].(*NetDecl).Names[0] != "w" {
		t.Error("net decl leaked")
	}
	origAlw := orig.Items[1].(*Always)
	if origAlw.Events[0].Edge != EdgePos {
		t.Error("event leaked")
	}
	if origAlw.Body.(*AssignStmt).LHS.(*Ident).Name != "q" {
		t.Error("stmt leaked")
	}
}

func TestCloneStmtTypes(t *testing.T) {
	stmts := []Stmt{
		&Block{Stmts: []Stmt{&AssignStmt{LHS: &Ident{Name: "a"}, RHS: &Number{Text: "1"}}}},
		&If{Cond: &Ident{Name: "c"}, Then: &Block{}, Else: &Block{}},
		&Case{Subject: &Ident{Name: "s"}, Items: []*CaseItem{
			{Labels: []Expr{&Number{Text: "0"}}, Body: &Block{}},
			{Body: &Block{}},
		}},
		&For{
			Init: &AssignStmt{LHS: &Ident{Name: "i"}, RHS: &Number{Text: "0"}, Blocking: true},
			Cond: &Binary{Op: Lt, X: &Ident{Name: "i"}, Y: &Number{Text: "8"}},
			Step: &AssignStmt{LHS: &Ident{Name: "i"}, RHS: &Number{Text: "1"}, Blocking: true},
			Body: &Block{},
		},
	}
	for i, s := range stmts {
		c := CloneStmt(s)
		if c == nil {
			t.Errorf("stmt %d cloned to nil", i)
		}
	}
	if CloneStmt(nil) != nil {
		t.Error("nil should clone to nil")
	}
}

func TestFindModuleAndPortByName(t *testing.T) {
	src := &Source{Modules: []*Module{sampleModule()}}
	if src.FindModule("m") == nil {
		t.Error("FindModule failed")
	}
	if src.FindModule("nope") != nil {
		t.Error("FindModule false positive")
	}
	m := src.Modules[0]
	if m.PortByName("q") == nil || m.PortByName("zz") != nil {
		t.Error("PortByName wrong")
	}
}

func TestEnumStrings(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" || Inout.String() != "inout" {
		t.Error("dir strings")
	}
	if Wire.String() != "wire" || Reg.String() != "reg" || Integer.String() != "integer" {
		t.Error("net kind strings")
	}
	if CasePlain.String() != "case" || CaseZ.String() != "casez" || CaseX.String() != "casex" {
		t.Error("case kind strings")
	}
	if Add.String() != "+" || BitXnor.String() != "~^" || AShr.String() != ">>>" {
		t.Error("binary op strings")
	}
	if LogicalNot.String() != "!" || RedNand.String() != "~&" {
		t.Error("unary op strings")
	}
}

func TestModuleExprsCoversItems(t *testing.T) {
	m := sampleModule()
	m.Items = append(m.Items,
		&ParamDecl{Name: "P", Value: &Ident{Name: "a"}},
		&ContAssign{LHS: &Ident{Name: "q"}, RHS: &Ident{Name: "w"}},
		&Instance{ModName: "sub", Name: "u", Conns: []PortConn{{Name: "x", Expr: &Ident{Name: "a"}}}},
		&Initial{Body: &AssignStmt{LHS: &Ident{Name: "q"}, RHS: &Number{Text: "0"}}},
	)
	count := 0
	ModuleExprs(m, func(e Expr) bool {
		count++
		return true
	})
	if count < 10 {
		t.Errorf("ModuleExprs visited only %d nodes", count)
	}
}

func TestPosAccessors(t *testing.T) {
	pos := token.Pos{Line: 2, Col: 5}
	nodes := []Node{
		&Ident{NamePos: pos},
		&Number{LitPos: pos},
		&Unary{OpPos: pos},
		&Concat{LbPos: pos},
		&Repl{LbPos: pos},
		&Block{BeginPos: pos},
		&If{IfPos: pos},
		&Case{CasePos: pos},
		&For{ForPos: pos},
		&Port{PortPos: pos},
		&NetDecl{DeclPos: pos},
		&ParamDecl{DeclPos: pos},
		&ContAssign{AssignPos: pos},
		&Always{AlwaysPos: pos},
		&Initial{InitPos: pos},
		&Instance{InstPos: pos},
	}
	for i, n := range nodes {
		if n.Pos() != pos {
			t.Errorf("node %d Pos() = %v", i, n.Pos())
		}
	}
	empty := &Source{}
	if empty.Pos() != (token.Pos{}) {
		t.Error("empty source pos should be zero")
	}
}
