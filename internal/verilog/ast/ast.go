// Package ast defines the abstract syntax tree for the supported Verilog
// subset: ANSI-style modules with nets, continuous assignments, always and
// initial blocks, behavioral statements, and module instantiation.
package ast

import "repro/internal/verilog/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// --- Expressions -----------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a reference to a named net, variable, or parameter.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// Number is an integer literal. Width<0 means an unsized literal (treated as
// 32 bits). Bits are stored in four-state form to support x/z digits.
type Number struct {
	LitPos token.Pos
	Text   string // original literal text, e.g. "4'b10x0"
	Width  int    // declared width, or -1 if unsized
	// Val and XZ encode the four-state value: for bit i,
	// XZ=0 → value bit Val; XZ=1 → Val=0 is X, Val=1 is Z.
	Val []uint64
	XZ  []uint64
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators. RedAnd..RedXnor are reduction operators.
const (
	UnaryPlus UnaryOp = iota + 1
	UnaryMinus
	LogicalNot // !
	BitNot     // ~
	RedAnd     // &
	RedOr      // |
	RedXor     // ^
	RedNand    // ~&
	RedNor     // ~|
	RedXnor    // ~^
)

var unaryNames = map[UnaryOp]string{
	UnaryPlus:  "+",
	UnaryMinus: "-",
	LogicalNot: "!",
	BitNot:     "~",
	RedAnd:     "&",
	RedOr:      "|",
	RedXor:     "^",
	RedNand:    "~&",
	RedNor:     "~|",
	RedXnor:    "~^",
}

// String returns the operator's source spelling.
func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a unary or reduction expression.
type Unary struct {
	OpPos token.Pos
	Op    UnaryOp
	X     Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	Add BinaryOp = iota + 1
	Sub
	Mul
	Div
	Mod
	BitAnd
	BitOr
	BitXor
	BitXnor
	LogAnd
	LogOr
	Eq
	Neq
	CaseEq
	CaseNeq
	Lt
	Leq
	Gt
	Geq
	Shl
	Shr
	AShl
	AShr
)

var binaryNames = map[BinaryOp]string{
	Add:     "+",
	Sub:     "-",
	Mul:     "*",
	Div:     "/",
	Mod:     "%",
	BitAnd:  "&",
	BitOr:   "|",
	BitXor:  "^",
	BitXnor: "~^",
	LogAnd:  "&&",
	LogOr:   "||",
	Eq:      "==",
	Neq:     "!=",
	CaseEq:  "===",
	CaseNeq: "!==",
	Lt:      "<",
	Leq:     "<=",
	Gt:      ">",
	Geq:     ">=",
	Shl:     "<<",
	Shr:     ">>",
	AShl:    "<<<",
	AShr:    ">>>",
}

// String returns the operator's source spelling.
func (op BinaryOp) String() string { return binaryNames[op] }

// Binary is a binary expression X Op Y.
type Binary struct {
	Op   BinaryOp
	X, Y Expr
}

// Ternary is the conditional expression Cond ? Then : Else.
type Ternary struct {
	Cond, Then, Else Expr
}

// Concat is a concatenation {A, B, ...}.
type Concat struct {
	LbPos token.Pos
	Parts []Expr
}

// Repl is a replication {Count{Value}}.
type Repl struct {
	LbPos token.Pos
	Count Expr
	Value Expr
}

// Index is a bit-select X[Idx].
type Index struct {
	X   Expr
	Idx Expr
}

// SelKind distinguishes part-select forms.
type SelKind int

// Part-select kinds: constant [msb:lsb], indexed up [base +: width], and
// indexed down [base -: width].
const (
	SelConst SelKind = iota + 1
	SelPlus
	SelMinus
)

// PartSel is a part-select X[A:B], X[A+:B] or X[A-:B].
type PartSel struct {
	X    Expr
	Kind SelKind
	A, B Expr
}

// Pos implementations.
func (e *Ident) Pos() token.Pos   { return e.NamePos }
func (e *Number) Pos() token.Pos  { return e.LitPos }
func (e *Unary) Pos() token.Pos   { return e.OpPos }
func (e *Binary) Pos() token.Pos  { return e.X.Pos() }
func (e *Ternary) Pos() token.Pos { return e.Cond.Pos() }
func (e *Concat) Pos() token.Pos  { return e.LbPos }
func (e *Repl) Pos() token.Pos    { return e.LbPos }
func (e *Index) Pos() token.Pos   { return e.X.Pos() }
func (e *PartSel) Pos() token.Pos { return e.X.Pos() }

func (*Ident) exprNode()   {}
func (*Number) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Ternary) exprNode() {}
func (*Concat) exprNode()  {}
func (*Repl) exprNode()    {}
func (*Index) exprNode()   {}
func (*PartSel) exprNode() {}

// --- Statements -------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a begin/end statement group.
type Block struct {
	BeginPos token.Pos
	Name     string // optional label (begin : name)
	Stmts    []Stmt
}

// AssignStmt is a procedural assignment. Blocking selects `=` vs `<=`.
type AssignStmt struct {
	LHS      Expr // Ident, Index, PartSel, or Concat of those
	RHS      Expr
	Blocking bool
}

// If is an if/else statement. Else may be nil.
type If struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt
}

// CaseKind distinguishes case statement variants.
type CaseKind int

// Case statement kinds.
const (
	CasePlain CaseKind = iota + 1
	CaseZ
	CaseX
)

// String returns the source keyword of the case kind.
func (k CaseKind) String() string {
	switch k {
	case CaseZ:
		return "casez"
	case CaseX:
		return "casex"
	default:
		return "case"
	}
}

// CaseItem is one arm of a case statement. A nil Labels slice marks the
// default arm.
type CaseItem struct {
	ItemPos token.Pos
	Labels  []Expr // nil for default
	Body    Stmt
}

// Case is a case/casez/casex statement.
type Case struct {
	CasePos token.Pos
	Kind    CaseKind
	Subject Expr
	Items   []*CaseItem
}

// For is a for loop with blocking-assignment init and step.
type For struct {
	ForPos token.Pos
	Init   *AssignStmt
	Cond   Expr
	Step   *AssignStmt
	Body   Stmt
}

// Pos implementations.
func (s *Block) Pos() token.Pos      { return s.BeginPos }
func (s *AssignStmt) Pos() token.Pos { return s.LHS.Pos() }
func (s *If) Pos() token.Pos         { return s.IfPos }
func (s *Case) Pos() token.Pos       { return s.CasePos }
func (s *For) Pos() token.Pos        { return s.ForPos }

func (*Block) stmtNode()      {}
func (*AssignStmt) stmtNode() {}
func (*If) stmtNode()         {}
func (*Case) stmtNode()       {}
func (*For) stmtNode()        {}

// --- Module items ------------------------------------------------------------

// Item is implemented by all module-level items.
type Item interface {
	Node
	itemNode()
}

// Range is a vector range [MSB:LSB]. Nil means a scalar.
type Range struct {
	MSB, LSB Expr
}

// Dir is a port direction.
type Dir int

// Port directions.
const (
	Input Dir = iota + 1
	Output
	Inout
)

// String returns the source keyword of the direction.
func (d Dir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	case Inout:
		return "inout"
	default:
		return "dir?"
	}
}

// Port is an ANSI-style module port.
type Port struct {
	PortPos token.Pos
	Dir     Dir
	IsReg   bool
	Signed  bool
	Range   *Range // nil for scalar
	Name    string
}

// NetKind distinguishes net/variable declarations.
type NetKind int

// Net kinds.
const (
	Wire NetKind = iota + 1
	Reg
	Integer
)

// String returns the source keyword of the net kind.
func (k NetKind) String() string {
	switch k {
	case Wire:
		return "wire"
	case Reg:
		return "reg"
	case Integer:
		return "integer"
	default:
		return "net?"
	}
}

// NetDecl declares one or more nets or variables of the same kind and range.
type NetDecl struct {
	DeclPos token.Pos
	Kind    NetKind
	Signed  bool
	Range   *Range
	Names   []string
	// Init, if non-nil and the same length as Names, holds per-name
	// initialization expressions from `wire x = expr;` declarations
	// (entries may be nil).
	Init []Expr
}

// ParamDecl declares a parameter or localparam.
type ParamDecl struct {
	DeclPos token.Pos
	Local   bool
	Range   *Range
	Name    string
	Value   Expr
}

// ContAssign is a continuous assignment: assign LHS = RHS;
type ContAssign struct {
	AssignPos token.Pos
	LHS       Expr
	RHS       Expr
}

// EdgeKind is the edge specifier of a sensitivity event.
type EdgeKind int

// Edge kinds. EdgeNone is a level (plain signal) sensitivity entry.
const (
	EdgeNone EdgeKind = iota + 1
	EdgePos
	EdgeNeg
)

// Event is one entry of a sensitivity list.
type Event struct {
	Edge EdgeKind
	Sig  Expr
}

// Always is an always block. Star marks always @(*) / always @*.
type Always struct {
	AlwaysPos token.Pos
	Star      bool
	Events    []Event
	Body      Stmt
}

// Initial is an initial block (used by rendered testbenches; designs in the
// benchmark do not rely on it).
type Initial struct {
	InitPos token.Pos
	Body    Stmt
}

// PortConn is one port connection of a module instance. Name is empty for
// positional connections.
type PortConn struct {
	Name string
	Expr Expr // nil for explicitly unconnected .name()
}

// Instance instantiates a module.
type Instance struct {
	InstPos  token.Pos
	ModName  string
	Name     string
	ByName   bool
	Conns    []PortConn
	ParamsBy []PortConn // #(.N(4)) style parameter overrides, by name
}

// Pos implementations.
func (i *Port) Pos() token.Pos       { return i.PortPos }
func (i *NetDecl) Pos() token.Pos    { return i.DeclPos }
func (i *ParamDecl) Pos() token.Pos  { return i.DeclPos }
func (i *ContAssign) Pos() token.Pos { return i.AssignPos }
func (i *Always) Pos() token.Pos     { return i.AlwaysPos }
func (i *Initial) Pos() token.Pos    { return i.InitPos }
func (i *Instance) Pos() token.Pos   { return i.InstPos }

func (*NetDecl) itemNode()    {}
func (*ParamDecl) itemNode()  {}
func (*ContAssign) itemNode() {}
func (*Always) itemNode()     {}
func (*Initial) itemNode()    {}
func (*Instance) itemNode()   {}

// Module is a Verilog module with ANSI-style ports.
type Module struct {
	ModPos token.Pos
	Name   string
	Ports  []*Port
	Items  []Item
}

// Pos returns the position of the module keyword.
func (m *Module) Pos() token.Pos { return m.ModPos }

// Source is a compilation unit: one or more modules.
type Source struct {
	Modules []*Module
}

// Pos returns the position of the first module, or the zero position.
func (s *Source) Pos() token.Pos {
	if len(s.Modules) > 0 {
		return s.Modules[0].Pos()
	}
	return token.Pos{}
}

// FindModule returns the module with the given name, or nil.
func (s *Source) FindModule(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortByName returns the port with the given name, or nil.
func (m *Module) PortByName(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}
