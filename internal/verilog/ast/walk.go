package ast

// WalkExprs calls fn for every expression reachable from e, in pre-order.
// If fn returns false the walk does not descend into that expression.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Ident, *Number:
	case *Unary:
		WalkExprs(x.X, fn)
	case *Binary:
		WalkExprs(x.X, fn)
		WalkExprs(x.Y, fn)
	case *Ternary:
		WalkExprs(x.Cond, fn)
		WalkExprs(x.Then, fn)
		WalkExprs(x.Else, fn)
	case *Concat:
		for _, p := range x.Parts {
			WalkExprs(p, fn)
		}
	case *Repl:
		WalkExprs(x.Count, fn)
		WalkExprs(x.Value, fn)
	case *Index:
		WalkExprs(x.X, fn)
		WalkExprs(x.Idx, fn)
	case *PartSel:
		WalkExprs(x.X, fn)
		WalkExprs(x.A, fn)
		WalkExprs(x.B, fn)
	}
}

// WalkStmts calls fn for every statement reachable from s, in pre-order.
// If fn returns false the walk does not descend into that statement.
func WalkStmts(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch x := s.(type) {
	case *AssignStmt:
	case *Block:
		for _, sub := range x.Stmts {
			WalkStmts(sub, fn)
		}
	case *If:
		WalkStmts(x.Then, fn)
		WalkStmts(x.Else, fn)
	case *Case:
		for _, item := range x.Items {
			WalkStmts(item.Body, fn)
		}
	case *For:
		WalkStmts(x.Body, fn)
	}
}

// StmtExprs calls fn for every expression directly referenced by s (not
// descending into nested statements).
func StmtExprs(s Stmt, fn func(Expr) bool) {
	switch x := s.(type) {
	case *AssignStmt:
		WalkExprs(x.LHS, fn)
		WalkExprs(x.RHS, fn)
	case *If:
		WalkExprs(x.Cond, fn)
	case *Case:
		WalkExprs(x.Subject, fn)
		for _, item := range x.Items {
			for _, l := range item.Labels {
				WalkExprs(l, fn)
			}
		}
	case *For:
		if x.Init != nil {
			WalkExprs(x.Init.LHS, fn)
			WalkExprs(x.Init.RHS, fn)
		}
		WalkExprs(x.Cond, fn)
		if x.Step != nil {
			WalkExprs(x.Step.LHS, fn)
			WalkExprs(x.Step.RHS, fn)
		}
	case *Block:
	}
}

// ModuleExprs calls fn for every expression in every item of the module,
// including those nested inside statements.
func ModuleExprs(m *Module, fn func(Expr) bool) {
	for _, it := range m.Items {
		switch x := it.(type) {
		case *NetDecl:
			for _, e := range x.Init {
				WalkExprs(e, fn)
			}
		case *ParamDecl:
			WalkExprs(x.Value, fn)
		case *ContAssign:
			WalkExprs(x.LHS, fn)
			WalkExprs(x.RHS, fn)
		case *Always:
			for _, ev := range x.Events {
				WalkExprs(ev.Sig, fn)
			}
			WalkStmts(x.Body, func(s Stmt) bool {
				StmtExprs(s, fn)
				return true
			})
		case *Initial:
			WalkStmts(x.Body, func(s Stmt) bool {
				StmtExprs(s, fn)
				return true
			})
		case *Instance:
			for _, c := range x.Conns {
				WalkExprs(c.Expr, fn)
			}
			for _, c := range x.ParamsBy {
				WalkExprs(c.Expr, fn)
			}
		}
	}
}

// ExprReads collects the names of all identifiers read by e.
func ExprReads(e Expr, out map[string]struct{}) {
	WalkExprs(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			out[id.Name] = struct{}{}
		}
		return true
	})
}

// LHSBase returns the base identifier written by an lvalue expression:
// x, x[i], x[a:b] all yield "x". Concatenation lvalues return every base via
// the callback.
func LHSBase(e Expr, fn func(name string)) {
	switch x := e.(type) {
	case *Ident:
		fn(x.Name)
	case *Index:
		LHSBase(x.X, fn)
	case *PartSel:
		LHSBase(x.X, fn)
	case *Concat:
		for _, p := range x.Parts {
			LHSBase(p, fn)
		}
	}
}
