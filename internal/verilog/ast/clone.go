package ast

// CloneModule returns a deep copy of a module. The mutation engine clones
// the golden design before applying in-place mutations.
func CloneModule(m *Module) *Module {
	if m == nil {
		return nil
	}
	out := &Module{ModPos: m.ModPos, Name: m.Name}
	for _, p := range m.Ports {
		cp := *p
		cp.Range = cloneRange(p.Range)
		out.Ports = append(out.Ports, &cp)
	}
	for _, it := range m.Items {
		out.Items = append(out.Items, CloneItem(it))
	}
	return out
}

// CloneSource deep-copies a compilation unit.
func CloneSource(s *Source) *Source {
	if s == nil {
		return nil
	}
	out := &Source{}
	for _, m := range s.Modules {
		out.Modules = append(out.Modules, CloneModule(m))
	}
	return out
}

func cloneRange(r *Range) *Range {
	if r == nil {
		return nil
	}
	return &Range{MSB: CloneExpr(r.MSB), LSB: CloneExpr(r.LSB)}
}

// CloneItem deep-copies a module item.
func CloneItem(it Item) Item {
	switch x := it.(type) {
	case *NetDecl:
		cp := *x
		cp.Range = cloneRange(x.Range)
		cp.Names = append([]string(nil), x.Names...)
		cp.Init = nil
		for _, e := range x.Init {
			cp.Init = append(cp.Init, CloneExpr(e))
		}
		return &cp
	case *ParamDecl:
		cp := *x
		cp.Range = cloneRange(x.Range)
		cp.Value = CloneExpr(x.Value)
		return &cp
	case *ContAssign:
		cp := *x
		cp.LHS = CloneExpr(x.LHS)
		cp.RHS = CloneExpr(x.RHS)
		return &cp
	case *Always:
		cp := *x
		cp.Events = nil
		for _, ev := range x.Events {
			cp.Events = append(cp.Events, Event{Edge: ev.Edge, Sig: CloneExpr(ev.Sig)})
		}
		cp.Body = CloneStmt(x.Body)
		return &cp
	case *Initial:
		cp := *x
		cp.Body = CloneStmt(x.Body)
		return &cp
	case *Instance:
		cp := *x
		cp.Conns = clonePortConns(x.Conns)
		cp.ParamsBy = clonePortConns(x.ParamsBy)
		return &cp
	default:
		return it
	}
}

func clonePortConns(conns []PortConn) []PortConn {
	out := make([]PortConn, len(conns))
	for i, c := range conns {
		out[i] = PortConn{Name: c.Name, Expr: CloneExpr(c.Expr)}
	}
	return out
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *Block:
		cp := *x
		cp.Stmts = nil
		for _, sub := range x.Stmts {
			cp.Stmts = append(cp.Stmts, CloneStmt(sub))
		}
		return &cp
	case *AssignStmt:
		cp := *x
		cp.LHS = CloneExpr(x.LHS)
		cp.RHS = CloneExpr(x.RHS)
		return &cp
	case *If:
		cp := *x
		cp.Cond = CloneExpr(x.Cond)
		cp.Then = CloneStmt(x.Then)
		cp.Else = CloneStmt(x.Else)
		return &cp
	case *Case:
		cp := *x
		cp.Subject = CloneExpr(x.Subject)
		cp.Items = nil
		for _, item := range x.Items {
			ci := &CaseItem{ItemPos: item.ItemPos}
			for _, l := range item.Labels {
				ci.Labels = append(ci.Labels, CloneExpr(l))
			}
			ci.Body = CloneStmt(item.Body)
			cp.Items = append(cp.Items, ci)
		}
		return &cp
	case *For:
		cp := *x
		if x.Init != nil {
			cp.Init = CloneStmt(x.Init).(*AssignStmt)
		}
		cp.Cond = CloneExpr(x.Cond)
		if x.Step != nil {
			cp.Step = CloneStmt(x.Step).(*AssignStmt)
		}
		cp.Body = CloneStmt(x.Body)
		return &cp
	default:
		return s
	}
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		cp := *x
		return &cp
	case *Number:
		cp := *x
		cp.Val = append([]uint64(nil), x.Val...)
		cp.XZ = append([]uint64(nil), x.XZ...)
		return &cp
	case *Unary:
		cp := *x
		cp.X = CloneExpr(x.X)
		return &cp
	case *Binary:
		cp := *x
		cp.X = CloneExpr(x.X)
		cp.Y = CloneExpr(x.Y)
		return &cp
	case *Ternary:
		cp := *x
		cp.Cond = CloneExpr(x.Cond)
		cp.Then = CloneExpr(x.Then)
		cp.Else = CloneExpr(x.Else)
		return &cp
	case *Concat:
		cp := *x
		cp.Parts = nil
		for _, p := range x.Parts {
			cp.Parts = append(cp.Parts, CloneExpr(p))
		}
		return &cp
	case *Repl:
		cp := *x
		cp.Count = CloneExpr(x.Count)
		cp.Value = CloneExpr(x.Value)
		return &cp
	case *Index:
		cp := *x
		cp.X = CloneExpr(x.X)
		cp.Idx = CloneExpr(x.Idx)
		return &cp
	case *PartSel:
		cp := *x
		cp.X = CloneExpr(x.X)
		cp.A = CloneExpr(x.A)
		cp.B = CloneExpr(x.B)
		return &cp
	default:
		return e
	}
}
