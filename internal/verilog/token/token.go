// Package token defines the lexical tokens of the supported Verilog subset
// and source positions used across the front-end.
package token

import "strconv"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Enums start at one so the zero value is invalid.
const (
	// Special tokens.
	Illegal Kind = iota + 1
	EOF

	// Literals and identifiers.
	Ident  // top_module, q, state
	Number // 12, 8'hFF, 4'b10x0
	SysID  // $display, $signed (lexed, rejected later where unsupported)

	// Punctuation.
	LParen   // (
	RParen   // )
	LBrack   // [
	RBrack   // ]
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Semi     // ;
	Colon    // :
	Dot      // .
	Hash     // #
	At       // @
	Question // ?

	// Operators.
	Assign     // =
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	AmpAmp     // &&
	Pipe       // |
	PipePipe   // ||
	Caret      // ^
	TildeCaret // ~^ and ^~
	TildeAmp   // ~&
	TildePipe  // ~|
	Tilde      // ~
	Bang       // !
	Eq         // ==
	Neq        // !=
	CaseEq     // ===
	CaseNeq    // !==
	Lt         // <
	Leq        // <= (also non-blocking assign; parser disambiguates)
	Gt         // >
	Geq        // >=
	Shl        // <<
	Shr        // >>
	AShl       // <<<
	AShr       // >>>
	PlusColon  // +:
	MinusColon // -:

	// Keywords.
	KwModule
	KwEndmodule
	KwInput
	KwOutput
	KwInout
	KwWire
	KwReg
	KwInteger
	KwGenvar
	KwParameter
	KwLocalparam
	KwAssign
	KwAlways
	KwInitial
	KwBegin
	KwEnd
	KwIf
	KwElse
	KwCase
	KwCasez
	KwCasex
	KwEndcase
	KwDefault
	KwPosedge
	KwNegedge
	KwOr
	KwFor
	KwSigned
)

var kindNames = map[Kind]string{
	Illegal:      "ILLEGAL",
	EOF:          "EOF",
	Ident:        "IDENT",
	Number:       "NUMBER",
	SysID:        "SYSID",
	LParen:       "(",
	RParen:       ")",
	LBrack:       "[",
	RBrack:       "]",
	LBrace:       "{",
	RBrace:       "}",
	Comma:        ",",
	Semi:         ";",
	Colon:        ":",
	Dot:          ".",
	Hash:         "#",
	At:           "@",
	Question:     "?",
	Assign:       "=",
	Plus:         "+",
	Minus:        "-",
	Star:         "*",
	Slash:        "/",
	Percent:      "%",
	Amp:          "&",
	AmpAmp:       "&&",
	Pipe:         "|",
	PipePipe:     "||",
	Caret:        "^",
	TildeCaret:   "~^",
	TildeAmp:     "~&",
	TildePipe:    "~|",
	Tilde:        "~",
	Bang:         "!",
	Eq:           "==",
	Neq:          "!=",
	CaseEq:       "===",
	CaseNeq:      "!==",
	Lt:           "<",
	Leq:          "<=",
	Gt:           ">",
	Geq:          ">=",
	Shl:          "<<",
	Shr:          ">>",
	AShl:         "<<<",
	AShr:         ">>>",
	PlusColon:    "+:",
	MinusColon:   "-:",
	KwModule:     "module",
	KwEndmodule:  "endmodule",
	KwInput:      "input",
	KwOutput:     "output",
	KwInout:      "inout",
	KwWire:       "wire",
	KwReg:        "reg",
	KwInteger:    "integer",
	KwGenvar:     "genvar",
	KwParameter:  "parameter",
	KwLocalparam: "localparam",
	KwAssign:     "assign",
	KwAlways:     "always",
	KwInitial:    "initial",
	KwBegin:      "begin",
	KwEnd:        "end",
	KwIf:         "if",
	KwElse:       "else",
	KwCase:       "case",
	KwCasez:      "casez",
	KwCasex:      "casex",
	KwEndcase:    "endcase",
	KwDefault:    "default",
	KwPosedge:    "posedge",
	KwNegedge:    "negedge",
	KwOr:         "or",
	KwFor:        "for",
	KwSigned:     "signed",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

var keywords = map[string]Kind{
	"module":     KwModule,
	"endmodule":  KwEndmodule,
	"input":      KwInput,
	"output":     KwOutput,
	"inout":      KwInout,
	"wire":       KwWire,
	"reg":        KwReg,
	"integer":    KwInteger,
	"genvar":     KwGenvar,
	"parameter":  KwParameter,
	"localparam": KwLocalparam,
	"assign":     KwAssign,
	"always":     KwAlways,
	"initial":    KwInitial,
	"begin":      KwBegin,
	"end":        KwEnd,
	"if":         KwIf,
	"else":       KwElse,
	"case":       KwCase,
	"casez":      KwCasez,
	"casex":      KwCasex,
	"endcase":    KwEndcase,
	"default":    KwDefault,
	"posedge":    KwPosedge,
	"negedge":    KwNegedge,
	"or":         KwOr,
	"for":        KwFor,
	"signed":     KwSigned,
}

// Lookup maps an identifier to its keyword kind, or Ident if it is not a
// keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether the string is a reserved word of the subset.
func IsKeyword(s string) bool {
	_, ok := keywords[s]
	return ok
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string {
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind == Ident || t.Kind == Number || t.Kind == SysID {
		return t.Kind.String() + "(" + t.Text + ")"
	}
	return t.Kind.String()
}
