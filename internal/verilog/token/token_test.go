package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("module") != KwModule {
		t.Error("module should be a keyword")
	}
	if Lookup("Module") != Ident {
		t.Error("keywords are case-sensitive")
	}
	if Lookup("foo") != Ident {
		t.Error("foo should be an identifier")
	}
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []string{"module", "endmodule", "posedge", "casez", "signed", "genvar"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	if IsKeyword("top_module") {
		t.Error("top_module is not a keyword")
	}
}

func TestKindString(t *testing.T) {
	if KwModule.String() != "module" {
		t.Errorf("KwModule = %q", KwModule.String())
	}
	if Leq.String() != "<=" {
		t.Errorf("Leq = %q", Leq.String())
	}
	if Kind(9999).String() != "Kind(9999)" {
		t.Errorf("unknown kind = %q", Kind(9999).String())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Text: "clk"}
	if tok.String() != "IDENT(clk)" {
		t.Errorf("got %q", tok.String())
	}
	tok = Token{Kind: Semi}
	if tok.String() != ";" {
		t.Errorf("got %q", tok.String())
	}
}

func TestPosString(t *testing.T) {
	p := Pos{Line: 3, Col: 14}
	if p.String() != "3:14" {
		t.Errorf("got %q", p.String())
	}
}
