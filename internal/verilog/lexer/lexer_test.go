package lexer

import (
	"testing"

	"repro/internal/verilog/token"
)

func kinds(src string) []token.Kind {
	l := New(src)
	var out []token.Kind
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			return out
		}
		out = append(out, t.Kind)
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"(": token.LParen, ")": token.RParen, "[": token.LBrack, "]": token.RBrack,
		"{": token.LBrace, "}": token.RBrace, ",": token.Comma, ";": token.Semi,
		":": token.Colon, ".": token.Dot, "#": token.Hash, "@": token.At,
		"?": token.Question, "=": token.Assign, "+": token.Plus, "-": token.Minus,
		"*": token.Star, "/": token.Slash, "%": token.Percent,
		"&": token.Amp, "&&": token.AmpAmp, "|": token.Pipe, "||": token.PipePipe,
		"^": token.Caret, "~^": token.TildeCaret, "^~": token.TildeCaret,
		"~&": token.TildeAmp, "~|": token.TildePipe, "~": token.Tilde,
		"!": token.Bang, "==": token.Eq, "!=": token.Neq, "===": token.CaseEq,
		"!==": token.CaseNeq, "<": token.Lt, "<=": token.Leq, ">": token.Gt,
		">=": token.Geq, "<<": token.Shl, ">>": token.Shr,
		"<<<": token.AShl, ">>>": token.AShr, "+:": token.PlusColon, "-:": token.MinusColon,
	}
	for src, want := range cases {
		got := kinds(src)
		if len(got) != 1 || got[0] != want {
			t.Errorf("lex %q = %v, want [%v]", src, got, want)
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	got := kinds("module foo endmodule always begin end if else case endcase wire reg")
	want := []token.Kind{
		token.KwModule, token.Ident, token.KwEndmodule, token.KwAlways,
		token.KwBegin, token.KwEnd, token.KwIf, token.KwElse,
		token.KwCase, token.KwEndcase, token.KwWire, token.KwReg,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	for _, src := range []string{
		"42", "0", "8'hFF", "4'b1010", "4'b1x0z", "'b0", "12'o777",
		"16'd65535", "4'sb11", "1_000", "8'b1010_1010", "4'b??01",
	} {
		l := New(src)
		tok := l.Next()
		if tok.Kind != token.Number {
			t.Errorf("lex %q: kind %v, want Number", src, tok.Kind)
		}
		if tok.Text != src {
			t.Errorf("lex %q: text %q", src, tok.Text)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("lex %q: errors %v", src, l.Errors())
		}
	}
}

func TestBadNumbers(t *testing.T) {
	for _, src := range []string{"8'q1", "4'b"} {
		l := New(src)
		tok := l.Next()
		if tok.Kind != token.Illegal {
			t.Errorf("lex %q: kind %v, want Illegal", src, tok.Kind)
		}
		if len(l.Errors()) == 0 {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment with module keyword
a /* block
comment */ b
`
	got := kinds(src)
	if len(got) != 2 || got[0] != token.Ident || got[1] != token.Ident {
		t.Fatalf("got %v, want two idents", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	l := New("a /* never closed")
	if tok := l.Next(); tok.Kind != token.Ident {
		t.Fatalf("first token %v", tok)
	}
	if tok := l.Next(); tok.Kind != token.EOF {
		t.Fatalf("second token %v, want EOF", tok)
	}
	if len(l.Errors()) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestPositions(t *testing.T) {
	l := New("a\n  b")
	ta := l.Next()
	tb := l.Next()
	if ta.Pos.Line != 1 || ta.Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", ta.Pos)
	}
	if tb.Pos.Line != 2 || tb.Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", tb.Pos)
	}
}

func TestSysID(t *testing.T) {
	l := New("$display")
	tok := l.Next()
	if tok.Kind != token.SysID || tok.Text != "$display" {
		t.Errorf("got %v %q", tok.Kind, tok.Text)
	}
}

func TestUnexpectedChar(t *testing.T) {
	l := New("`define")
	tok := l.Next()
	if tok.Kind != token.Illegal {
		t.Errorf("got %v, want Illegal", tok.Kind)
	}
}

func TestEOFForever(t *testing.T) {
	l := New("")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: %v", i, tok.Kind)
		}
	}
}

func TestAllIncludesEOF(t *testing.T) {
	toks := New("a b").All()
	if len(toks) != 3 || toks[2].Kind != token.EOF {
		t.Fatalf("All = %v", toks)
	}
}
