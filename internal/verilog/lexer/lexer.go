// Package lexer implements a hand-written lexer for the supported Verilog
// subset. It produces token streams consumed by the parser and reports
// precise source positions for diagnostics.
package lexer

import (
	"fmt"

	"repro/internal/verilog/token"
)

// Error describes a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("lex error at %s: %s", e.Pos, e.Msg)
}

// Lexer tokenizes Verilog source text. The zero value is not usable; use New.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors accumulated so far.
func (l *Lexer) Errors() []*Error {
	return l.errs
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Line: l.line, Col: l.col}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

func isBaseDigit(c byte) bool {
	switch {
	case isDigit(c):
		return true
	case c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		return true
	case c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?':
		return true
	case c == '_':
		return true
	}
	return false
}

// skipSpaceAndComments consumes whitespace, // line comments and /* block */
// comments.
func (l *Lexer) skipSpaceAndComments() {
	for {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

// Next returns the next token. After the end of input it returns EOF tokens
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	c := l.peek()
	if c == 0 {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	switch {
	case isIdentStart(c):
		return l.lexIdent(pos)
	case isDigit(c) || c == '\'':
		return l.lexNumber(pos)
	case c == '$':
		return l.lexSysID(pos)
	}

	l.advance()
	mk := func(k token.Kind, text string) token.Token {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	switch c {
	case '(':
		return mk(token.LParen, "(")
	case ')':
		return mk(token.RParen, ")")
	case '[':
		return mk(token.LBrack, "[")
	case ']':
		return mk(token.RBrack, "]")
	case '{':
		return mk(token.LBrace, "{")
	case '}':
		return mk(token.RBrace, "}")
	case ',':
		return mk(token.Comma, ",")
	case ';':
		return mk(token.Semi, ";")
	case ':':
		return mk(token.Colon, ":")
	case '.':
		return mk(token.Dot, ".")
	case '#':
		return mk(token.Hash, "#")
	case '@':
		return mk(token.At, "@")
	case '?':
		return mk(token.Question, "?")
	case '+':
		if l.peek() == ':' {
			l.advance()
			return mk(token.PlusColon, "+:")
		}
		return mk(token.Plus, "+")
	case '-':
		if l.peek() == ':' {
			l.advance()
			return mk(token.MinusColon, "-:")
		}
		return mk(token.Minus, "-")
	case '*':
		return mk(token.Star, "*")
	case '/':
		return mk(token.Slash, "/")
	case '%':
		return mk(token.Percent, "%")
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.AmpAmp, "&&")
		}
		return mk(token.Amp, "&")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.PipePipe, "||")
		}
		return mk(token.Pipe, "|")
	case '^':
		if l.peek() == '~' {
			l.advance()
			return mk(token.TildeCaret, "^~")
		}
		return mk(token.Caret, "^")
	case '~':
		switch l.peek() {
		case '&':
			l.advance()
			return mk(token.TildeAmp, "~&")
		case '|':
			l.advance()
			return mk(token.TildePipe, "~|")
		case '^':
			l.advance()
			return mk(token.TildeCaret, "~^")
		}
		return mk(token.Tilde, "~")
	case '!':
		if l.peek() == '=' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return mk(token.CaseNeq, "!==")
			}
			return mk(token.Neq, "!=")
		}
		return mk(token.Bang, "!")
	case '=':
		if l.peek() == '=' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return mk(token.CaseEq, "===")
			}
			return mk(token.Eq, "==")
		}
		return mk(token.Assign, "=")
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(token.Leq, "<=")
		case '<':
			l.advance()
			if l.peek() == '<' {
				l.advance()
				return mk(token.AShl, "<<<")
			}
			return mk(token.Shl, "<<")
		}
		return mk(token.Lt, "<")
	case '>':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(token.Geq, ">=")
		case '>':
			l.advance()
			if l.peek() == '>' {
				l.advance()
				return mk(token.AShr, ">>>")
			}
			return mk(token.Shr, ">>")
		}
		return mk(token.Gt, ">")
	}

	l.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.Illegal, Text: string(c), Pos: pos}
}

func (l *Lexer) lexIdent(pos token.Pos) token.Token {
	start := l.off
	for isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	return token.Token{Kind: token.Lookup(text), Text: text, Pos: pos}
}

func (l *Lexer) lexSysID(pos token.Pos) token.Token {
	start := l.off
	l.advance() // consume '$'
	for isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if len(text) == 1 {
		l.errorf(pos, "bare '$' is not a valid token")
		return token.Token{Kind: token.Illegal, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.SysID, Text: text, Pos: pos}
}

// lexNumber handles plain decimal numbers, based literals with optional size
// (8'hFF, 'b0, 4'b1x0z), and underscores in digit groups.
func (l *Lexer) lexNumber(pos token.Pos) token.Token {
	start := l.off
	// Optional decimal size before the base marker.
	for isDigit(l.peek()) || l.peek() == '_' {
		l.advance()
	}
	if l.peek() != '\'' {
		// Plain decimal number.
		return token.Token{Kind: token.Number, Text: l.src[start:l.off], Pos: pos}
	}
	l.advance() // consume quote
	if l.peek() == 's' || l.peek() == 'S' {
		l.advance()
	}
	base := l.peek()
	switch base {
	case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
		l.advance()
	default:
		l.errorf(pos, "invalid number base %q", string(base))
		return token.Token{Kind: token.Illegal, Text: l.src[start:l.off], Pos: pos}
	}
	ndigits := 0
	for isBaseDigit(l.peek()) {
		if l.peek() != '_' {
			ndigits++
		}
		l.advance()
	}
	if ndigits == 0 {
		l.errorf(pos, "number literal has no digits")
		return token.Token{Kind: token.Illegal, Text: l.src[start:l.off], Pos: pos}
	}
	return token.Token{Kind: token.Number, Text: l.src[start:l.off], Pos: pos}
}

// All tokenizes the whole input, returning every token up to and including
// the first EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
