// Package sem implements semantic validity checks for parsed modules. The
// VFocus pre-ranking stage uses it (together with the parser) as the
// syntactic-validity gate: candidates that fail these checks are retried.
package sem

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/verilog/ast"
	"repro/internal/verilog/token"
)

// ErrSemantic is the sentinel wrapped by Check failures.
var ErrSemantic = errors.New("verilog semantic error")

// Severity grades an issue.
type Severity int

// Issue severities.
const (
	Warning Severity = iota + 1
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Issue is one diagnostic produced by Check.
type Issue struct {
	Sev Severity
	Pos token.Pos
	Msg string
}

// String renders the issue.
func (i Issue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Pos, i.Sev, i.Msg)
}

// Result aggregates the diagnostics for one source.
type Result struct {
	Issues []Issue
}

// HasErrors reports whether any issue is an Error.
func (r *Result) HasErrors() bool {
	for _, i := range r.Issues {
		if i.Sev == Error {
			return true
		}
	}
	return false
}

// Err returns a wrapped error if the result contains errors, else nil.
func (r *Result) Err() error {
	if !r.HasErrors() {
		return nil
	}
	var msgs []string
	for _, i := range r.Issues {
		if i.Sev == Error {
			msgs = append(msgs, i.String())
			if len(msgs) == 3 {
				break
			}
		}
	}
	return fmt.Errorf("%w: %s", ErrSemantic, strings.Join(msgs, "; "))
}

// Check runs all semantic checks on a compilation unit.
func Check(src *ast.Source) *Result {
	r := &Result{}
	names := make(map[string]bool)
	for _, m := range src.Modules {
		if names[m.Name] {
			r.errorf(m.Pos(), "duplicate module %q", m.Name)
		}
		names[m.Name] = true
	}
	for _, m := range src.Modules {
		checkModule(r, src, m)
	}
	return r
}

// CheckModule runs checks for a single module against its source unit.
func CheckModule(src *ast.Source, m *ast.Module) *Result {
	r := &Result{}
	checkModule(r, src, m)
	return r
}

func (r *Result) errorf(pos token.Pos, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Sev: Error, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (r *Result) warnf(pos token.Pos, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Sev: Warning, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// symKind classifies a declared name.
type symKind int

const (
	symWire symKind = iota + 1
	symReg
	symInteger
	symParam
)

type symbol struct {
	kind  symKind
	dir   ast.Dir // nonzero for ports
	pos   token.Pos
	width int // 0 = unknown/scalar
}

func checkModule(r *Result, src *ast.Source, m *ast.Module) {
	syms := make(map[string]*symbol)

	declare := func(name string, s *symbol) {
		if prev, ok := syms[name]; ok {
			// Allow a net decl to re-type a port (non-ANSI style).
			if prev.dir != 0 && prev.kind == symWire && (s.kind == symReg || s.kind == symWire) {
				prev.kind = s.kind
				return
			}
			r.errorf(s.pos, "duplicate declaration of %q (first at %s)", name, prev.pos)
			return
		}
		syms[name] = s
	}

	for _, p := range m.Ports {
		kind := symWire
		if p.IsReg {
			kind = symReg
		}
		declare(p.Name, &symbol{kind: kind, dir: p.Dir, pos: p.PortPos})
		if p.Dir == ast.Input && p.IsReg {
			r.errorf(p.PortPos, "input port %q cannot be a reg", p.Name)
		}
	}
	for _, it := range m.Items {
		switch d := it.(type) {
		case *ast.NetDecl:
			for _, n := range d.Names {
				kind := symWire
				switch d.Kind {
				case ast.Reg:
					kind = symReg
				case ast.Integer:
					kind = symInteger
				}
				declare(n, &symbol{kind: kind, pos: d.DeclPos})
			}
		case *ast.ParamDecl:
			declare(d.Name, &symbol{kind: symParam, pos: d.DeclPos})
		}
	}

	resolve := func(e ast.Expr) {
		ast.WalkExprs(e, func(x ast.Expr) bool {
			if id, ok := x.(*ast.Ident); ok {
				if _, found := syms[id.Name]; !found {
					r.errorf(id.NamePos, "undeclared identifier %q", id.Name)
				}
			}
			return true
		})
	}

	// Driver tracking: name -> how it is driven. Whole-net continuous
	// drivers conflict with any other continuous driver of the same net;
	// per-bit drivers are allowed to coexist (overlap is not checked).
	type contDriver struct {
		pos   token.Pos
		whole bool
	}
	contDriven := make(map[string]contDriver)
	procDriven := make(map[string]token.Pos)

	// isWholeTarget reports whether the lvalue writes name as a bare
	// identifier (possibly inside a concatenation) rather than a bit or
	// part select.
	var isWholeTarget func(lhs ast.Expr, name string) bool
	isWholeTarget = func(lhs ast.Expr, name string) bool {
		switch x := lhs.(type) {
		case *ast.Ident:
			return x.Name == name
		case *ast.Concat:
			for _, p := range x.Parts {
				if isWholeTarget(p, name) {
					return true
				}
			}
		}
		return false
	}

	checkLValue := func(lhs ast.Expr, procedural bool, pos token.Pos) {
		ast.LHSBase(lhs, func(name string) {
			s, ok := syms[name]
			if !ok {
				r.errorf(pos, "assignment to undeclared identifier %q", name)
				return
			}
			if s.dir == ast.Input {
				r.errorf(pos, "assignment to input port %q", name)
				return
			}
			if procedural {
				if s.kind == symWire {
					r.errorf(pos, "procedural assignment to wire %q (declare it reg)", name)
				}
				procDriven[name] = pos
				if p, dup := contDriven[name]; dup {
					r.errorf(pos, "%q driven both procedurally and by continuous assignment (other driver at %s)", name, p.pos)
				}
			} else {
				if s.kind == symReg || s.kind == symInteger {
					r.errorf(pos, "continuous assignment to reg %q (use a wire or assign inside always)", name)
				}
				whole := isWholeTarget(lhs, name)
				if p, dup := contDriven[name]; dup && (p.whole || whole) {
					r.errorf(pos, "multiple continuous assignments drive %q (other driver at %s)", name, p.pos)
				}
				if p, dup := contDriven[name]; !dup || (!p.whole && whole) {
					contDriven[name] = contDriver{pos: pos, whole: whole}
				}
				if p, dup := procDriven[name]; dup {
					r.errorf(pos, "%q driven both procedurally and by continuous assignment (other driver at %s)", name, p)
				}
			}
		})
	}

	var checkStmt func(st ast.Stmt, inEdgeBlock bool)
	checkStmt = func(st ast.Stmt, inEdgeBlock bool) {
		switch x := st.(type) {
		case *ast.Block:
			for _, sub := range x.Stmts {
				checkStmt(sub, inEdgeBlock)
			}
		case *ast.AssignStmt:
			checkLValue(x.LHS, true, x.Pos())
			resolve(x.LHS)
			resolve(x.RHS)
		case *ast.If:
			resolve(x.Cond)
			checkStmt(x.Then, inEdgeBlock)
			if x.Else != nil {
				checkStmt(x.Else, inEdgeBlock)
			}
		case *ast.Case:
			resolve(x.Subject)
			defaults := 0
			for _, item := range x.Items {
				if item.Labels == nil {
					defaults++
				}
				for _, l := range item.Labels {
					resolve(l)
				}
				checkStmt(item.Body, inEdgeBlock)
			}
			if defaults > 1 {
				r.errorf(x.CasePos, "case statement has %d default arms", defaults)
			}
		case *ast.For:
			if x.Init != nil {
				checkLValue(x.Init.LHS, true, x.Init.Pos())
				resolve(x.Init.RHS)
			}
			resolve(x.Cond)
			if x.Step != nil {
				checkLValue(x.Step.LHS, true, x.Step.Pos())
				resolve(x.Step.RHS)
			}
			checkStmt(x.Body, inEdgeBlock)
		}
	}

	for _, it := range m.Items {
		switch x := it.(type) {
		case *ast.NetDecl:
			if x.Range != nil {
				resolve(x.Range.MSB)
				resolve(x.Range.LSB)
			}
			for i, e := range x.Init {
				if e == nil {
					continue
				}
				if x.Kind != ast.Wire {
					r.errorf(x.DeclPos, "declaration initializer on %s %q is not supported", x.Kind, x.Names[i])
				}
				resolve(e)
				contDriven[x.Names[i]] = contDriver{pos: x.DeclPos, whole: true}
			}
		case *ast.ParamDecl:
			resolve(x.Value)
		case *ast.ContAssign:
			checkLValue(x.LHS, false, x.AssignPos)
			resolve(x.LHS)
			resolve(x.RHS)
		case *ast.Always:
			hasEdge := false
			for _, ev := range x.Events {
				resolve(ev.Sig)
				if ev.Edge != ast.EdgeNone {
					hasEdge = true
				}
			}
			if !x.Star && len(x.Events) == 0 {
				r.errorf(x.AlwaysPos, "always block has an empty sensitivity list")
			}
			mixed := false
			for _, ev := range x.Events {
				if hasEdge && ev.Edge == ast.EdgeNone {
					mixed = true
				}
			}
			if mixed {
				r.errorf(x.AlwaysPos, "sensitivity list mixes edge and level events")
			}
			checkBlockingStyle(r, x, hasEdge)
			checkStmt(x.Body, hasEdge)
		case *ast.Initial:
			checkStmt(x.Body, false)
		case *ast.Instance:
			checkInstance(r, src, m, x, syms, resolve, checkLValue)
		}
	}

	// Every output must have some driver.
	for _, p := range m.Ports {
		if p.Dir != ast.Output {
			continue
		}
		_, c := contDriven[p.Name]
		_, pr := procDriven[p.Name]
		if !c && !pr && !drivenByInstance(m, p.Name) {
			r.warnf(p.PortPos, "output port %q is never driven", p.Name)
		}
	}
}

// checkBlockingStyle flags non-blocking assignment in combinational blocks
// and blocking assignment in edge-triggered blocks as warnings (common
// LLM-generated-code smells, per the paper's "typical mistakes" guidance).
func checkBlockingStyle(r *Result, a *ast.Always, hasEdge bool) {
	ast.WalkStmts(a.Body, func(st ast.Stmt) bool {
		as, ok := st.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if hasEdge && as.Blocking {
			r.warnf(as.Pos(), "blocking assignment in edge-triggered always block")
		}
		if !hasEdge && !as.Blocking {
			r.warnf(as.Pos(), "non-blocking assignment in combinational always block")
		}
		return true
	})
}

func drivenByInstance(m *ast.Module, name string) bool {
	for _, it := range m.Items {
		inst, ok := it.(*ast.Instance)
		if !ok {
			continue
		}
		for _, c := range inst.Conns {
			if c.Expr == nil {
				continue
			}
			found := false
			ast.LHSBase(c.Expr, func(n string) {
				if n == name {
					found = true
				}
			})
			if found {
				return true
			}
		}
	}
	return false
}

func checkInstance(
	r *Result,
	src *ast.Source,
	m *ast.Module,
	inst *ast.Instance,
	syms map[string]*symbol,
	resolve func(ast.Expr),
	checkLValue func(ast.Expr, bool, token.Pos),
) {
	child := src.FindModule(inst.ModName)
	if child == nil {
		r.errorf(inst.InstPos, "instance %q references unknown module %q", inst.Name, inst.ModName)
		return
	}
	if child == m {
		r.errorf(inst.InstPos, "module %q instantiates itself", m.Name)
		return
	}
	if inst.ByName {
		seen := make(map[string]bool)
		for _, c := range inst.Conns {
			if c.Name == "" {
				r.errorf(inst.InstPos, "instance %q mixes positional and named connections", inst.Name)
				continue
			}
			if seen[c.Name] {
				r.errorf(inst.InstPos, "instance %q connects port %q twice", inst.Name, c.Name)
			}
			seen[c.Name] = true
			port := child.PortByName(c.Name)
			if port == nil {
				r.errorf(inst.InstPos, "module %q has no port %q", child.Name, c.Name)
				continue
			}
			if c.Expr != nil {
				resolve(c.Expr)
			}
		}
	} else {
		if len(inst.Conns) > len(child.Ports) {
			r.errorf(inst.InstPos, "instance %q has %d connections but module %q has %d ports",
				inst.Name, len(inst.Conns), child.Name, len(child.Ports))
		}
		for _, c := range inst.Conns {
			if c.Expr != nil {
				resolve(c.Expr)
			}
		}
	}
	for _, pc := range inst.ParamsBy {
		if pc.Name == "" {
			r.errorf(inst.InstPos, "parameter overrides must be by name")
		}
		if pc.Expr != nil {
			resolve(pc.Expr)
		}
	}
}
