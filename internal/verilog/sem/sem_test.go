package sem

import (
	"strings"
	"testing"

	"repro/internal/verilog/parser"
)

func check(t *testing.T, src string) *Result {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(s)
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	r := check(t, src)
	if !r.HasErrors() {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if err := r.Err(); !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err, fragment)
	}
}

func wantClean(t *testing.T, src string) {
	t.Helper()
	r := check(t, src)
	if r.HasErrors() {
		t.Fatalf("unexpected errors: %v", r.Err())
	}
}

func TestCleanModule(t *testing.T) {
	wantClean(t, `
module top_module (input clk, input [3:0] d, output reg [3:0] q);
    always @(posedge clk)
        q <= d;
endmodule
`)
}

func TestUndeclaredIdent(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    assign y = a & ghost;
endmodule
`, "undeclared")
}

func TestAssignToInput(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    assign a = y;
endmodule
`, "input port")
}

func TestProceduralAssignToWire(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    wire w;
    always @(*) w = a;
    assign y = w;
endmodule
`, "wire")
}

func TestContinuousAssignToReg(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    reg r;
    assign r = a;
    assign y = r;
endmodule
`, "reg")
}

func TestDoubleContinuousDriver(t *testing.T) {
	wantError(t, `
module m (input a, input b, output y);
    assign y = a;
    assign y = b;
endmodule
`, "multiple continuous")
}

func TestPerBitDriversAllowed(t *testing.T) {
	wantClean(t, `
module m (input a, input b, output [1:0] y);
    assign y[0] = a;
    assign y[1] = b;
endmodule
`)
}

func TestMixedDrivers(t *testing.T) {
	wantError(t, `
module m (input a, input clk, output reg y);
    always @(posedge clk) y <= a;
    assign y = a;
endmodule
`, "procedurally and by continuous")
}

func TestDuplicateDeclaration(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    wire x;
    reg x;
    assign y = a;
endmodule
`, "duplicate declaration")
}

func TestInputRegRejected(t *testing.T) {
	wantError(t, `
module m (input reg a, output y);
    assign y = a;
endmodule
`, "cannot be a reg")
}

func TestMixedSensitivity(t *testing.T) {
	wantError(t, `
module m (input clk, input a, output reg y);
    always @(posedge clk or a) y <= a;
endmodule
`, "mixes edge and level")
}

func TestDuplicateModule(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    assign y = a;
endmodule
module m (input a, output y);
    assign y = a;
endmodule
`, "duplicate module")
}

func TestUnknownInstanceModule(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    ghost u (.x(a), .y(y));
endmodule
`, "unknown module")
}

func TestSelfInstantiation(t *testing.T) {
	wantError(t, `
module m (input a, output y);
    m u (.a(a), .y(y));
endmodule
`, "instantiates itself")
}

func TestInstancePortChecks(t *testing.T) {
	wantError(t, `
module sub (input a, output y);
    assign y = a;
endmodule
module m (input a, output y);
    sub u (.a(a), .nope(y));
endmodule
`, "no port")

	wantError(t, `
module sub (input a, output y);
    assign y = a;
endmodule
module m (input a, output y);
    sub u (.a(a), .a(a));
endmodule
`, "twice")

	wantError(t, `
module sub (input a, output y);
    assign y = a;
endmodule
module m (input a, output y);
    sub u (a, y, a);
endmodule
`, "connections")
}

func TestBlockingStyleWarnings(t *testing.T) {
	r := check(t, `
module m (input clk, input a, output reg y, output reg z);
    always @(posedge clk) y = a;
    always @(*) z <= a;
endmodule
`)
	if r.HasErrors() {
		t.Fatalf("style issues must be warnings, got errors: %v", r.Err())
	}
	warnings := 0
	for _, iss := range r.Issues {
		if iss.Sev == Warning {
			warnings++
		}
	}
	if warnings < 2 {
		t.Errorf("expected blocking-style warnings, got %d: %v", warnings, r.Issues)
	}
}

func TestUndrivenOutputWarning(t *testing.T) {
	r := check(t, `
module m (input a, output y);
endmodule
`)
	if r.HasErrors() {
		t.Fatalf("undriven output must be a warning: %v", r.Err())
	}
	found := false
	for _, iss := range r.Issues {
		if strings.Contains(iss.Msg, "never driven") {
			found = true
		}
	}
	if !found {
		t.Error("missing never-driven warning")
	}
}

func TestOutputDrivenByInstanceNoWarning(t *testing.T) {
	r := check(t, `
module sub (input a, output y);
    assign y = a;
endmodule
module m (input a, output y);
    sub u (.a(a), .y(y));
endmodule
`)
	for _, iss := range r.Issues {
		if strings.Contains(iss.Msg, "never driven") {
			t.Errorf("false positive: %v", iss)
		}
	}
}

func TestMultipleDefaults(t *testing.T) {
	wantError(t, `
module m (input [1:0] s, output reg y);
    always @(*) begin
        case (s)
            2'd0: y = 1'b0;
            default: y = 1'b1;
            default: y = 1'bx;
        endcase
    end
endmodule
`, "default arms")
}

func TestSeverityString(t *testing.T) {
	if Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity names wrong")
	}
}
