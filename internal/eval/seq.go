package eval

import (
	"fmt"
	"strings"

	"repro/internal/testbench"
)

// seqTasks assembles the 75 sequential tasks.
func seqTasks() []Task {
	var ts []Task
	ts = append(ts, dffTasks()...)      // 8
	ts = append(ts, registerTasks()...) // 4
	ts = append(ts, counterTasks()...)  // 10
	ts = append(ts, shiftRegTasks()...) // 8
	ts = append(ts, edgeTasks()...)     // 4
	ts = append(ts, seqRecTasks()...)   // 8
	ts = append(ts, fsmTasks()...)      // 12
	ts = append(ts, timerTasks()...)    // 6
	ts = append(ts, serialTasks()...)   // 4
	ts = append(ts, arbTasks()...)      // 4
	ts = append(ts, accumTasks()...)    // 4
	ts = append(ts, miscSeqTasks()...)  // 3
	if len(ts) != 75 {
		panic(fmt.Sprintf("sequential suite has %d tasks, want 75", len(ts)))
	}
	return ts
}

// ifcSeq builds a sequential interface with clk and optional reset.
func ifcSeq(reset string, ins []testbench.PortSpec, outs []testbench.PortSpec) testbench.Interface {
	all := []testbench.PortSpec{in1("clk")}
	if reset != "" {
		all = append(all, in1(reset))
	}
	all = append(all, ins...)
	return testbench.Interface{Inputs: all, Outputs: outs, Clock: "clk", Reset: reset}
}

// --- D flip-flops (8) ------------------------------------------------------------

func dffTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "dff", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_dff_00_basic",
		"Build a single D flip-flop: q takes the value of d at every rising edge of clk.",
		`module top_module (
    input clk,
    input d,
    output reg q
);
    always @(posedge clk)
        q <= d;
endmodule
`, "", []testbench.PortSpec{in1("d")}, []testbench.PortSpec{in1("q")}, 0.10)

	add("seq_dff_01_dff8",
		"Build an 8-bit register: q takes the value of d at every rising edge of clk.",
		`module top_module (
    input clk,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk)
        q <= d;
endmodule
`, "", []testbench.PortSpec{inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.10)

	add("seq_dff_02_sync_reset",
		"Build an 8-bit register with an active-high synchronous reset that clears q to zero.",
		`module top_module (
    input clk,
    input reset,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else
            q <= d;
    end
endmodule
`, "reset", []testbench.PortSpec{inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.18)

	add("seq_dff_03_reset_to_val",
		"Build an 8-bit register with synchronous reset; on reset q must be set to 0x34 rather than zero.",
		`module top_module (
    input clk,
    input reset,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'h34;
        else
            q <= d;
    end
endmodule
`, "reset", []testbench.PortSpec{inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.22)

	add("seq_dff_04_enable",
		"Build an 8-bit register with a clock-enable: q only loads d on rising clock edges where en is 1, otherwise it holds its value.",
		`module top_module (
    input clk,
    input en,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (en)
            q <= d;
    end
endmodule
`, "", []testbench.PortSpec{in1("en"), inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.20)

	add("seq_dff_05_en_reset",
		"Build an 8-bit register with synchronous reset and clock-enable; reset has priority over enable.",
		`module top_module (
    input clk,
    input reset,
    input en,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else if (en)
            q <= d;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("en"), inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.25)

	add("seq_dff_06_qbar",
		"Build a D flip-flop clocked on the rising edge, with both true and complemented outputs q and qn.",
		`module top_module (
    input clk,
    input d,
    output reg q,
    output qn
);
    always @(posedge clk)
        q <= d;
    assign qn = ~q;
endmodule
`, "", []testbench.PortSpec{in1("d")}, []testbench.PortSpec{in1("q"), in1("qn")}, 0.15)

	add("seq_dff_07_mux_dff",
		"Build a multiplexed flip-flop: on each rising clock edge q loads a when sel is 1 and b when sel is 0.",
		`module top_module (
    input clk,
    input sel,
    input [3:0] a,
    input [3:0] b,
    output reg [3:0] q
);
    always @(posedge clk)
        q <= sel ? a : b;
endmodule
`, "", []testbench.PortSpec{in1("sel"), inw("a", 4), inw("b", 4)}, []testbench.PortSpec{inw("q", 4)}, 0.18)

	return ts
}

// --- registers (4) ------------------------------------------------------------------

func registerTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "register", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_reg_00_byteen",
		"Build a 16-bit register with two byte-enables: be[1] allows loading of the upper byte of d, be[0] of the lower byte; unloaded bytes hold.",
		`module top_module (
    input clk,
    input [1:0] be,
    input [15:0] d,
    output reg [15:0] q
);
    always @(posedge clk) begin
        if (be[1])
            q[15:8] <= d[15:8];
        if (be[0])
            q[7:0] <= d[7:0];
    end
endmodule
`, "", []testbench.PortSpec{inw("be", 2), inw("d", 16)}, []testbench.PortSpec{inw("q", 16)}, 0.28)

	add("seq_reg_01_pipeline2",
		"Build a two-stage pipeline register: out is in delayed by exactly two clock cycles.",
		`module top_module (
    input clk,
    input [7:0] in,
    output reg [7:0] out
);
    reg [7:0] stage1;
    always @(posedge clk) begin
        stage1 <= in;
        out <= stage1;
    end
endmodule
`, "", []testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("out", 8)}, 0.22)

	add("seq_reg_02_load_hold",
		"Build a 4-bit register with load: when load is 1 the register takes d; otherwise it holds. The register resets synchronously to zero.",
		`module top_module (
    input clk,
    input reset,
    input load,
    input [3:0] d,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else if (load)
            q <= d;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("load"), inw("d", 4)}, []testbench.PortSpec{inw("q", 4)}, 0.22)

	add("seq_reg_03_swap_halves",
		"Build an 8-bit register that, on every rising clock edge when swap is 1, loads d with its nibbles swapped, and loads d unchanged when swap is 0.",
		`module top_module (
    input clk,
    input swap,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (swap)
            q <= {d[3:0], d[7:4]};
        else
            q <= d;
    end
endmodule
`, "", []testbench.PortSpec{in1("swap"), inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.22)

	return ts
}

// --- counters (10) -----------------------------------------------------------------------

func counterTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "counter", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_cnt_00_bin4",
		"Build a 4-bit binary counter that increments every clock cycle and wraps from 15 to 0, with synchronous active-high reset.",
		`module top_module (
    input clk,
    input reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else
            q <= q + 4'd1;
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 4)}, 0.25)

	add("seq_cnt_01_decade",
		"Build a decade counter that counts 0 through 9 inclusive and wraps back to 0, with synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else if (q == 4'd9)
            q <= 4'd0;
        else
            q <= q + 4'd1;
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 4)}, 0.30)

	add("seq_cnt_02_down4",
		"Build a 4-bit down counter that decrements every cycle and wraps from 0 to 15, with synchronous reset to 15.",
		`module top_module (
    input clk,
    input reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd15;
        else
            q <= q - 4'd1;
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 4)}, 0.28)

	add("seq_cnt_03_updown",
		"Build a 4-bit up/down counter: when up is 1 it increments, otherwise it decrements; synchronous reset to 0.",
		`module top_module (
    input clk,
    input reset,
    input up,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else if (up)
            q <= q + 4'd1;
        else
            q <= q - 4'd1;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("up")}, []testbench.PortSpec{inw("q", 4)}, 0.32)

	add("seq_cnt_04_enable",
		"Build an 8-bit counter with enable: it increments only on cycles where en is 1; synchronous reset to 0.",
		`module top_module (
    input clk,
    input reset,
    input en,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else if (en)
            q <= q + 8'd1;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("en")}, []testbench.PortSpec{inw("q", 8)}, 0.28)

	add("seq_cnt_05_mod12",
		"Build a modulo-12 counter that counts 0 through 11 and wraps, with synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else if (q == 4'd11)
            q <= 4'd0;
        else
            q <= q + 4'd1;
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 4)}, 0.30)

	add("seq_cnt_06_load",
		"Build an 8-bit counter with parallel load: when load is 1 it takes d, otherwise it increments; synchronous reset to 0 with highest priority.",
		`module top_module (
    input clk,
    input reset,
    input load,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else if (load)
            q <= d;
        else
            q <= q + 8'd1;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("load"), inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.32)

	add("seq_cnt_07_bcd2",
		"Build a two-digit BCD counter: ones and tens each count 0-9; the tens digit increments when the ones digit wraps; synchronous reset clears both.",
		`module top_module (
    input clk,
    input reset,
    output reg [3:0] ones,
    output reg [3:0] tens
);
    always @(posedge clk) begin
        if (reset) begin
            ones <= 4'd0;
            tens <= 4'd0;
        end else if (ones == 4'd9) begin
            ones <= 4'd0;
            if (tens == 4'd9)
                tens <= 4'd0;
            else
                tens <= tens + 4'd1;
        end else
            ones <= ones + 4'd1;
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("ones", 4), inw("tens", 4)}, 0.40)

	add("seq_cnt_08_gray4",
		"Build a 4-bit Gray-code counter: the output follows the Gray code sequence (binary count XOR its right shift); synchronous reset to 0.",
		`module top_module (
    input clk,
    input reset,
    output [3:0] q
);
    reg [3:0] bin;
    always @(posedge clk) begin
        if (reset)
            bin <= 4'd0;
        else
            bin <= bin + 4'd1;
    end
    assign q = bin ^ (bin >> 1);
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 4)}, 0.38)

	add("seq_cnt_09_ring4",
		"Build a 4-bit ring counter: exactly one bit is hot and it rotates one position per cycle; synchronous reset sets the pattern to 0001.",
		`module top_module (
    input clk,
    input reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'b0001;
        else
            q <= {q[2:0], q[3]};
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 4)}, 0.30)

	return ts
}

// --- shift registers (8) ----------------------------------------------------------------------

func shiftRegTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "shiftreg", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_shr_00_siso4",
		"Build a 4-bit serial-in serial-out shift register: each cycle the register shifts left by one, taking sin into the LSB; sout is the MSB.",
		`module top_module (
    input clk,
    input sin,
    output sout
);
    reg [3:0] sr;
    always @(posedge clk)
        sr <= {sr[2:0], sin};
    assign sout = sr[3];
endmodule
`, "", []testbench.PortSpec{in1("sin")}, []testbench.PortSpec{in1("sout")}, 0.30)

	add("seq_shr_01_sipo8",
		"Build an 8-bit serial-in parallel-out shift register shifting toward the MSB with synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input sin,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else
            q <= {q[6:0], sin};
    end
endmodule
`, "reset", []testbench.PortSpec{in1("sin")}, []testbench.PortSpec{inw("q", 8)}, 0.30)

	add("seq_shr_02_piso8",
		"Build an 8-bit parallel-in serial-out shift register: when load is 1 the register loads d; otherwise it shifts toward the MSB inserting zeros; sout is the MSB.",
		`module top_module (
    input clk,
    input load,
    input [7:0] d,
    output sout
);
    reg [7:0] sr;
    always @(posedge clk) begin
        if (load)
            sr <= d;
        else
            sr <= {sr[6:0], 1'b0};
    end
    assign sout = sr[7];
endmodule
`, "", []testbench.PortSpec{in1("load"), inw("d", 8)}, []testbench.PortSpec{in1("sout")}, 0.35)

	add("seq_shr_03_bidir8",
		"Build an 8-bit bidirectional shift register: dir 0 shifts left (toward MSB) inserting sin at the LSB, dir 1 shifts right inserting sin at the MSB; synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input dir,
    input sin,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else if (dir)
            q <= {sin, q[7:1]};
        else
            q <= {q[6:0], sin};
    end
endmodule
`, "reset", []testbench.PortSpec{in1("dir"), in1("sin")}, []testbench.PortSpec{inw("q", 8)}, 0.38)

	add("seq_shr_04_lfsr5",
		"Build a 5-bit maximal-length Galois LFSR with taps at positions 5 and 3: on each cycle shift right, feeding back q[0] into bit 4 and XORing it into bit 2; synchronous reset loads 5'h1.",
		`module top_module (
    input clk,
    input reset,
    output reg [4:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 5'h1;
        else begin
            q[4] <= q[0];
            q[3] <= q[4];
            q[2] <= q[3] ^ q[0];
            q[1] <= q[2];
            q[0] <= q[1];
        end
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 5)}, 0.45)

	add("seq_shr_05_lfsr8",
		"Build an 8-bit Fibonacci LFSR: shift left one position per cycle, inserting the XOR of bits 7, 5, 4 and 3 at the LSB; synchronous reset loads 8'h1.",
		`module top_module (
    input clk,
    input reset,
    output reg [7:0] q
);
    wire fb;
    assign fb = q[7] ^ q[5] ^ q[4] ^ q[3];
    always @(posedge clk) begin
        if (reset)
            q <= 8'h1;
        else
            q <= {q[6:0], fb};
    end
endmodule
`, "reset", nil, []testbench.PortSpec{inw("q", 8)}, 0.45)

	add("seq_shr_06_history3",
		"Record the last three values of a 1-bit input, sampling on every rising clock edge: q[0] is the most recent sample, q[2] the oldest.",
		`module top_module (
    input clk,
    input in,
    output reg [2:0] q
);
    always @(posedge clk)
        q <= {q[1:0], in};
endmodule
`, "", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{inw("q", 3)}, 0.25)

	add("seq_shr_07_rotator8",
		"Build an 8-bit rotator with load: when load is 1 the register takes d; when en is 1 it rotates right by one (bit 0 moves to bit 7); otherwise it holds.",
		`module top_module (
    input clk,
    input load,
    input en,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (load)
            q <= d;
        else if (en)
            q <= {q[0], q[7:1]};
    end
endmodule
`, "", []testbench.PortSpec{in1("load"), in1("en"), inw("d", 8)}, []testbench.PortSpec{inw("q", 8)}, 0.38)

	return ts
}

// --- edge detectors (4) ----------------------------------------------------------------------------

func edgeTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "edge", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_edge_00_rise8",
		"For each bit of an 8-bit input, set the corresponding output bit for one cycle in the cycle after a 0-to-1 transition of that input bit.",
		`module top_module (
    input clk,
    input [7:0] in,
    output reg [7:0] pedge
);
    reg [7:0] prev;
    always @(posedge clk) begin
        prev <= in;
        pedge <= in & ~prev;
    end
endmodule
`, "", []testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("pedge", 8)}, 0.35)

	add("seq_edge_01_fall8",
		"For each bit of an 8-bit input, set the corresponding output bit for one cycle in the cycle after a 1-to-0 transition of that input bit.",
		`module top_module (
    input clk,
    input [7:0] in,
    output reg [7:0] nedge
);
    reg [7:0] prev;
    always @(posedge clk) begin
        prev <= in;
        nedge <= ~in & prev;
    end
endmodule
`, "", []testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("nedge", 8)}, 0.35)

	add("seq_edge_02_any8",
		"For each bit of an 8-bit input, set the corresponding output bit for one cycle after any transition of that input bit.",
		`module top_module (
    input clk,
    input [7:0] in,
    output reg [7:0] anyedge
);
    reg [7:0] prev;
    always @(posedge clk) begin
        prev <= in;
        anyedge <= in ^ prev;
    end
endmodule
`, "", []testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("anyedge", 8)}, 0.35)

	add("seq_edge_03_capture8",
		"For each bit of an 8-bit input, set and hold the corresponding output bit after a 1-to-0 transition, until a synchronous reset clears it.",
		`module top_module (
    input clk,
    input reset,
    input [7:0] in,
    output reg [7:0] out
);
    reg [7:0] prev;
    always @(posedge clk) begin
        prev <= in;
        if (reset)
            out <= 8'd0;
        else
            out <= out | (~in & prev);
    end
endmodule
`, "reset", []testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("out", 8)}, 0.42)

	return ts
}

// --- sequence recognizers (8) ----------------------------------------------------------------------------

func seqRecTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, diff float64) {
		ts = append(ts, newTask(id, Sequential, "seqrec", spec, golden,
			ifcSeq("reset", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("found")}), diff, false))
	}

	add("seq_rec_00_101_overlap",
		"Detect the pattern 101 on a serial input (overlapping occurrences count): found is 1 in the cycle after the final bit of the pattern arrives. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg [1:0] state;
    always @(posedge clk) begin
        if (reset)
            state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= in ? 2'd1 : 2'd0;
                2'd1: state <= in ? 2'd1 : 2'd2;
                2'd2: state <= in ? 2'd3 : 2'd0;
                default: state <= in ? 2'd1 : 2'd2;
            endcase
        end
    end
    assign found = (state == 2'd3);
endmodule
`, 0.55)

	add("seq_rec_01_110",
		"Detect the pattern 110 on a serial input (overlapping occurrences count): found is 1 in the cycle after the final bit arrives. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg [1:0] state;
    always @(posedge clk) begin
        if (reset)
            state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= in ? 2'd1 : 2'd0;
                2'd1: state <= in ? 2'd2 : 2'd0;
                2'd2: state <= in ? 2'd2 : 2'd3;
                default: state <= in ? 2'd1 : 2'd0;
            endcase
        end
    end
    assign found = (state == 2'd3);
endmodule
`, 0.55)

	add("seq_rec_02_0110",
		"Detect the pattern 0110 on a serial input (overlapping occurrences count): found is 1 in the cycle after the final bit arrives. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg [2:0] state;
    always @(posedge clk) begin
        if (reset)
            state <= 3'd0;
        else begin
            case (state)
                3'd0: state <= in ? 3'd0 : 3'd1;
                3'd1: state <= in ? 3'd2 : 3'd1;
                3'd2: state <= in ? 3'd3 : 3'd1;
                3'd3: state <= in ? 3'd0 : 3'd4;
                default: state <= in ? 3'd2 : 3'd1;
            endcase
        end
    end
    assign found = (state == 3'd4);
endmodule
`, 0.62)

	add("seq_rec_03_three_ones",
		"Assert found whenever the serial input has been 1 for three or more consecutive cycles (level output while the run continues). Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg [1:0] run;
    always @(posedge clk) begin
        if (reset)
            run <= 2'd0;
        else if (in) begin
            if (run != 2'd3)
                run <= run + 2'd1;
        end else
            run <= 2'd0;
    end
    assign found = (run == 2'd3);
endmodule
`, 0.50)

	add("seq_rec_04_alt",
		"Assert found for one cycle whenever the serial input alternated over the last three samples (010 or 101). Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg [2:0] hist;
    always @(posedge clk) begin
        if (reset)
            hist <= 3'b000;
        else
            hist <= {hist[1:0], in};
    end
    assign found = (hist == 3'b010) | (hist == 3'b101);
endmodule
`, 0.52)

	add("seq_rec_05_same4",
		"Assert found when the last four samples of the serial input were identical (all 0 or all 1). Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg [3:0] hist;
    always @(posedge clk) begin
        if (reset)
            hist <= 4'b0101;
        else
            hist <= {hist[2:0], in};
    end
    assign found = (hist == 4'b0000) | (hist == 4'b1111);
endmodule
`, 0.52)

	add("seq_rec_06_start_bit",
		"Detect a serial start condition: found pulses one cycle after the input goes from idle-high to low. Synchronous reset; treat the pre-reset input as high.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg prev;
    reg pulse;
    always @(posedge clk) begin
        if (reset) begin
            prev <= 1'b1;
            pulse <= 1'b0;
        end else begin
            prev <= in;
            pulse <= prev & ~in;
        end
    end
    assign found = pulse;
endmodule
`, 0.55)

	add("seq_rec_07_even_ones",
		"Assert found whenever the number of 1 bits seen on the serial input since reset is even (found is 1 immediately after reset).",
		`module top_module (
    input clk,
    input reset,
    input in,
    output found
);
    reg par;
    always @(posedge clk) begin
        if (reset)
            par <= 1'b0;
        else
            par <= par ^ in;
    end
    assign found = ~par;
endmodule
`, 0.48)

	return ts
}

// --- generated Moore FSMs (12) ---------------------------------------------------------------------------------

// fsmTasks builds parameterized Moore FSMs with deterministic pseudo-random
// transition tables (the hardest family, mirroring VerilogEval's FSM tasks).
func fsmTasks() []Task {
	var ts []Task
	for i := 0; i < 12; i++ {
		rng := familyRand("fsm", i)
		nstates := 4 + rng.Intn(3) // 4..6
		bits := 3
		if nstates <= 4 {
			bits = 2
		}
		// next[s][in] for in=0,1 ; out[s] is the Moore output.
		next := make([][2]int, nstates)
		outBits := make([]int, nstates)
		for s := 0; s < nstates; s++ {
			next[s][0] = rng.Intn(nstates)
			next[s][1] = rng.Intn(nstates)
			outBits[s] = rng.Intn(2)
		}
		// Ensure state 0 is reachable as reset and output has both values.
		outBits[0] = 0
		outBits[nstates-1] = 1

		var caseArms []string
		var specRows []string
		for s := 0; s < nstates; s++ {
			caseArms = append(caseArms, fmt.Sprintf(
				"                %d'd%d: state <= in ? %d'd%d : %d'd%d;",
				bits, s, bits, next[s][1], bits, next[s][0]))
			specRows = append(specRows, fmt.Sprintf(
				"from S%d: go to S%d on in=0 and S%d on in=1; output %d",
				s, next[s][0], next[s][1], outBits[s]))
		}
		var outTerms []string
		for s := 0; s < nstates; s++ {
			if outBits[s] == 1 {
				outTerms = append(outTerms, fmt.Sprintf("(state == %d'd%d)", bits, s))
			}
		}
		outExpr := strings.Join(outTerms, " | ")

		golden := fmt.Sprintf(`module top_module (
    input clk,
    input reset,
    input in,
    output out
);
    reg [%d:0] state;
    always @(posedge clk) begin
        if (reset)
            state <= %d'd0;
        else begin
            case (state)
%s
                default: state <= %d'd0;
            endcase
        end
    end
    assign out = %s;
endmodule
`, bits-1, bits, strings.Join(caseArms, "\n"), bits, outExpr)

		spec := fmt.Sprintf(
			"Implement a Moore finite-state machine with %d states S0..S%d, a 1-bit input and a 1-bit output. Synchronous reset to S0. Transitions: %s.",
			nstates, nstates-1, strings.Join(specRows, "; "))
		id := fmt.Sprintf("seq_fsm_%02d", i)
		ts = append(ts, newTask(id, Sequential, "fsm", spec, golden,
			ifcSeq("reset", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("out")}), 0.60, false))
	}
	return ts
}

// --- timers (6) -----------------------------------------------------------------------------------------------------

func timerTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "timer", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_tmr_00_div4",
		"Divide the clock by 4: the output toggles every two input clock cycles, producing a square wave of one quarter the clock frequency. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    output out
);
    reg [1:0] cnt;
    always @(posedge clk) begin
        if (reset)
            cnt <= 2'd0;
        else
            cnt <= cnt + 2'd1;
    end
    assign out = cnt[1];
endmodule
`, "reset", nil, []testbench.PortSpec{in1("out")}, 0.40)

	add("seq_tmr_01_div6",
		"Divide the clock by 6: the output is high for three input cycles, then low for three, repeating. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    output out
);
    reg [2:0] cnt;
    always @(posedge clk) begin
        if (reset)
            cnt <= 3'd0;
        else if (cnt == 3'd5)
            cnt <= 3'd0;
        else
            cnt <= cnt + 3'd1;
    end
    assign out = (cnt >= 3'd3);
endmodule
`, "reset", nil, []testbench.PortSpec{in1("out")}, 0.48)

	add("seq_tmr_02_oneshot4",
		"Build a one-shot timer: when start is seen the output goes high for exactly 4 cycles, then returns low until the next start; starts during a run restart the count. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input start,
    output busy
);
    reg [2:0] remain;
    always @(posedge clk) begin
        if (reset)
            remain <= 3'd0;
        else if (start)
            remain <= 3'd4;
        else if (remain != 3'd0)
            remain <= remain - 3'd1;
    end
    assign busy = (remain != 3'd0);
endmodule
`, "reset", []testbench.PortSpec{in1("start")}, []testbench.PortSpec{in1("busy")}, 0.55)

	add("seq_tmr_03_stretch3",
		"Stretch every 1-cycle input pulse to exactly 3 cycles on the output (retriggerable). Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input pulse,
    output out
);
    reg [1:0] remain;
    always @(posedge clk) begin
        if (reset)
            remain <= 2'd0;
        else if (pulse)
            remain <= 2'd3;
        else if (remain != 2'd0)
            remain <= remain - 2'd1;
    end
    assign out = (remain != 2'd0);
endmodule
`, "reset", []testbench.PortSpec{in1("pulse")}, []testbench.PortSpec{in1("out")}, 0.52)

	add("seq_tmr_04_watchdog",
		"Build a watchdog: a 4-bit counter increments every cycle and is cleared when kick is 1; the alarm output is asserted when the counter reaches 12 and stays asserted until a kick. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input kick,
    output alarm
);
    reg [3:0] cnt;
    always @(posedge clk) begin
        if (reset)
            cnt <= 4'd0;
        else if (kick)
            cnt <= 4'd0;
        else if (cnt != 4'd12)
            cnt <= cnt + 4'd1;
    end
    assign alarm = (cnt == 4'd12);
endmodule
`, "reset", []testbench.PortSpec{in1("kick")}, []testbench.PortSpec{in1("alarm")}, 0.50)

	add("seq_tmr_05_delay4",
		"Delay a 1-bit input by exactly 4 clock cycles.",
		`module top_module (
    input clk,
    input in,
    output out
);
    reg [3:0] line;
    always @(posedge clk)
        line <= {line[2:0], in};
    assign out = line[3];
endmodule
`, "", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("out")}, 0.35)

	return ts
}

// --- serial arithmetic (4) ----------------------------------------------------------------------------------------------

func serialTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "serial", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_ser_00_twos_complement",
		"Build a bit-serial two's complementer (LSB first): copy input bits through until after the first 1 is seen, then output the complement of each input bit. Synchronous reset starts a new number.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output out
);
    reg seen1;
    always @(posedge clk) begin
        if (reset)
            seen1 <= 1'b0;
        else if (in)
            seen1 <= 1'b1;
    end
    assign out = seen1 ? ~in : in;
endmodule
`, "reset", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("out")}, 0.58)

	add("seq_ser_01_serial_adder",
		"Build a bit-serial adder (LSB first): each cycle output the sum bit of a, b and the stored carry, then update the carry. Synchronous reset clears the carry.",
		`module top_module (
    input clk,
    input reset,
    input a,
    input b,
    output sum
);
    reg carry;
    always @(posedge clk) begin
        if (reset)
            carry <= 1'b0;
        else
            carry <= (a & b) | (a & carry) | (b & carry);
    end
    assign sum = a ^ b ^ carry;
endmodule
`, "reset", []testbench.PortSpec{in1("a"), in1("b")}, []testbench.PortSpec{in1("sum")}, 0.55)

	add("seq_ser_02_parity_acc",
		"Accumulate the running parity of a serial input since reset: out is the XOR of all bits seen so far, updated each cycle.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output reg out
);
    always @(posedge clk) begin
        if (reset)
            out <= 1'b0;
        else
            out <= out ^ in;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("out")}, 0.42)

	add("seq_ser_03_majority3",
		"Each cycle output the majority vote of the current serial input bit and the previous two bits.",
		`module top_module (
    input clk,
    input in,
    output out
);
    reg [1:0] hist;
    always @(posedge clk)
        hist <= {hist[0], in};
    assign out = (in & hist[0]) | (in & hist[1]) | (hist[0] & hist[1]);
endmodule
`, "", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("out")}, 0.55)

	return ts
}

// --- arbiters (4) ------------------------------------------------------------------------------------------------------------

func arbTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "arb", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_arb_00_fixed4",
		"Build a registered fixed-priority arbiter for four request lines (bit 0 has highest priority): each cycle the one-hot grant register takes the highest-priority active request, or zero. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input [3:0] req,
    output reg [3:0] grant
);
    always @(posedge clk) begin
        if (reset)
            grant <= 4'd0;
        else if (req[0])
            grant <= 4'b0001;
        else if (req[1])
            grant <= 4'b0010;
        else if (req[2])
            grant <= 4'b0100;
        else if (req[3])
            grant <= 4'b1000;
        else
            grant <= 4'd0;
    end
endmodule
`, "reset", []testbench.PortSpec{inw("req", 4)}, []testbench.PortSpec{inw("grant", 4)}, 0.48)

	add("seq_arb_01_rr2",
		"Build a round-robin arbiter for two requesters: when both request, the grant alternates relative to the last winner; a lone requester always wins. Grants are registered. Synchronous reset gives requester 0 priority first.",
		`module top_module (
    input clk,
    input reset,
    input [1:0] req,
    output reg [1:0] grant
);
    reg last;
    always @(posedge clk) begin
        if (reset) begin
            grant <= 2'd0;
            last <= 1'b1;
        end else begin
            if (req == 2'b11) begin
                if (last) begin
                    grant <= 2'b01;
                    last <= 1'b0;
                end else begin
                    grant <= 2'b10;
                    last <= 1'b1;
                end
            end else if (req == 2'b01) begin
                grant <= 2'b01;
                last <= 1'b0;
            end else if (req == 2'b10) begin
                grant <= 2'b10;
                last <= 1'b1;
            end else
                grant <= 2'b00;
        end
    end
endmodule
`, "reset", []testbench.PortSpec{inw("req", 2)}, []testbench.PortSpec{inw("grant", 2)}, 0.60)

	add("seq_arb_02_req_latch",
		"Latch incoming requests: each bit of the 4-bit output is set when the corresponding request bit is seen and cleared only when the corresponding ack bit is 1 (ack has priority). Synchronous reset clears all.",
		`module top_module (
    input clk,
    input reset,
    input [3:0] req,
    input [3:0] ack,
    output reg [3:0] pending
);
    always @(posedge clk) begin
        if (reset)
            pending <= 4'd0;
        else
            pending <= (pending | req) & ~ack;
    end
endmodule
`, "reset", []testbench.PortSpec{inw("req", 4), inw("ack", 4)}, []testbench.PortSpec{inw("pending", 4)}, 0.50)

	add("seq_arb_03_grant_hold",
		"Build an arbiter that grants the lowest-numbered active request of four and holds the grant as long as that request stays asserted; when it drops, re-arbitrate. Grants are registered. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input [3:0] req,
    output reg [3:0] grant
);
    always @(posedge clk) begin
        if (reset)
            grant <= 4'd0;
        else if ((grant & req) != 4'd0)
            grant <= grant;
        else if (req[0])
            grant <= 4'b0001;
        else if (req[1])
            grant <= 4'b0010;
        else if (req[2])
            grant <= 4'b0100;
        else if (req[3])
            grant <= 4'b1000;
        else
            grant <= 4'd0;
    end
endmodule
`, "reset", []testbench.PortSpec{inw("req", 4)}, []testbench.PortSpec{inw("grant", 4)}, 0.58)

	return ts
}

// --- accumulators (4) -----------------------------------------------------------------------------------------------------------

func accumTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "accum", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_acc_00_sat4",
		"Build a 4-bit saturating counter: inc increments and dec decrements, but the count sticks at 15 and 0 instead of wrapping; simultaneous inc and dec hold. Synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input inc,
    input dec,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else if (inc & ~dec) begin
            if (q != 4'd15)
                q <= q + 4'd1;
        end else if (dec & ~inc) begin
            if (q != 4'd0)
                q <= q - 4'd1;
        end
    end
endmodule
`, "reset", []testbench.PortSpec{in1("inc"), in1("dec")}, []testbench.PortSpec{inw("q", 4)}, 0.45)

	add("seq_acc_01_sum8",
		"Accumulate an 8-bit input into an 8-bit register every cycle (wrapping); clear synchronously when clr is 1 (clr has priority). Synchronous reset also clears.",
		`module top_module (
    input clk,
    input reset,
    input clr,
    input [7:0] in,
    output reg [7:0] sum
);
    always @(posedge clk) begin
        if (reset | clr)
            sum <= 8'd0;
        else
            sum <= sum + in;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("clr"), inw("in", 8)}, []testbench.PortSpec{inw("sum", 8)}, 0.40)

	add("seq_acc_02_max8",
		"Track the maximum 8-bit input value seen since the last synchronous reset.",
		`module top_module (
    input clk,
    input reset,
    input [7:0] in,
    output reg [7:0] max
);
    always @(posedge clk) begin
        if (reset)
            max <= 8'd0;
        else if (in > max)
            max <= in;
    end
endmodule
`, "reset", []testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("max", 8)}, 0.40)

	add("seq_acc_03_toggle",
		"Build a toggle flip-flop: the output inverts on every rising clock edge where t is 1, and holds otherwise. Synchronous reset to 0.",
		`module top_module (
    input clk,
    input reset,
    input t,
    output reg q
);
    always @(posedge clk) begin
        if (reset)
            q <= 1'b0;
        else if (t)
            q <= ~q;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("t")}, []testbench.PortSpec{in1("q")}, 0.30)

	return ts
}

// --- miscellaneous control (3) --------------------------------------------------------------------------------------------------------

func miscSeqTasks() []Task {
	var ts []Task
	add := func(id, spec, golden, reset string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Sequential, "miscseq", spec, golden, ifcSeq(reset, ins, outs), diff, false))
	}

	add("seq_misc_00_walker",
		"Build a two-state walker (like the Lemmings game): it walks left until bump_right... walks right until bump_left. Output walk_left is 1 in the left-walking state. On simultaneous bumps it reverses. Synchronous reset to walking left.",
		`module top_module (
    input clk,
    input reset,
    input bump_left,
    input bump_right,
    output walk_left
);
    reg dir;
    always @(posedge clk) begin
        if (reset)
            dir <= 1'b0;
        else if (dir == 1'b0) begin
            if (bump_left)
                dir <= 1'b1;
        end else begin
            if (bump_right)
                dir <= 1'b0;
        end
    end
    assign walk_left = (dir == 1'b0);
endmodule
`, "reset", []testbench.PortSpec{in1("bump_left"), in1("bump_right")},
		[]testbench.PortSpec{in1("walk_left")}, 0.55)

	add("seq_misc_01_traffic",
		"Build a traffic-light controller cycling green for 4 cycles, yellow for 2, red for 4, repeating; one-hot outputs. Synchronous reset starts at green.",
		`module top_module (
    input clk,
    input reset,
    output green,
    output yellow,
    output red
);
    reg [3:0] cnt;
    always @(posedge clk) begin
        if (reset)
            cnt <= 4'd0;
        else if (cnt == 4'd9)
            cnt <= 4'd0;
        else
            cnt <= cnt + 4'd1;
    end
    assign green = (cnt < 4'd4);
    assign yellow = (cnt >= 4'd4) & (cnt < 4'd6);
    assign red = (cnt >= 4'd6);
endmodule
`, "reset", nil, []testbench.PortSpec{in1("green"), in1("yellow"), in1("red")}, 0.58)

	add("seq_misc_02_debounce",
		"Debounce a 1-bit input: the output only changes after the input has held the new value for 3 consecutive cycles. Synchronous reset clears the output and history.",
		`module top_module (
    input clk,
    input reset,
    input in,
    output reg out
);
    reg [1:0] cnt;
    always @(posedge clk) begin
        if (reset) begin
            out <= 1'b0;
            cnt <= 2'd0;
        end else if (in == out)
            cnt <= 2'd0;
        else if (cnt == 2'd2) begin
            out <= in;
            cnt <= 2'd0;
        end else
            cnt <= cnt + 2'd1;
    end
endmodule
`, "reset", []testbench.PortSpec{in1("in")}, []testbench.PortSpec{in1("out")}, 0.60)

	return ts
}
