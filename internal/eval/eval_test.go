package eval

import (
	"strings"
	"testing"

	"repro/internal/testbench"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/sem"
)

func TestSuiteSizeAndSplit(t *testing.T) {
	tasks := Suite()
	if len(tasks) != SuiteSize {
		t.Fatalf("suite has %d tasks, want %d", len(tasks), SuiteSize)
	}
	cmb := len(ByCategory(tasks, Combinational))
	seq := len(ByCategory(tasks, Sequential))
	if cmb != 81 {
		t.Errorf("combinational count = %d, want 81", cmb)
	}
	if seq != 75 {
		t.Errorf("sequential count = %d, want 75", seq)
	}
}

func TestTaskIDsUniqueAndIndexed(t *testing.T) {
	tasks := Suite()
	seen := make(map[string]bool)
	for i, task := range tasks {
		if task.ID == "" {
			t.Fatalf("task %d has empty ID", i)
		}
		if seen[task.ID] {
			t.Errorf("duplicate task ID %q", task.ID)
		}
		seen[task.ID] = true
		if task.Index != i {
			t.Errorf("task %s has index %d, want %d", task.ID, task.Index, i)
		}
		if task.Spec == "" {
			t.Errorf("task %s has empty spec", task.ID)
		}
		if task.Difficulty <= 0 || task.Difficulty >= 1 {
			t.Errorf("task %s difficulty %v out of (0,1)", task.ID, task.Difficulty)
		}
	}
}

func TestSuiteIsDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Golden != b[i].Golden || a[i].Spec != b[i].Spec {
			t.Fatalf("task %d differs between generations", i)
		}
		if a[i].Difficulty != b[i].Difficulty {
			t.Fatalf("task %d difficulty differs", i)
		}
	}
}

// TestGoldenDesignsAreValid parses, semantically checks, and simulates every
// golden design under its verification stimulus, confirming that each task's
// reference implementation runs cleanly and produces fully-known outputs by
// the end of the trace.
func TestGoldenDesignsAreValid(t *testing.T) {
	for _, task := range Suite() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			src, err := parser.Parse(task.Golden)
			if err != nil {
				t.Fatalf("golden does not parse: %v", err)
			}
			res := sem.Check(src)
			if res.HasErrors() {
				t.Fatalf("golden has semantic errors: %v", res.Err())
			}
			if src.FindModule(TopModule) == nil {
				t.Fatalf("golden does not define %s", TopModule)
			}
			gen := testbench.NewGenerator(42)
			st := gen.Verification(task.Ifc)
			tr := testbench.Run(src, TopModule, st)
			if tr.Err != nil {
				t.Fatalf("golden fails simulation: %v", tr.Err)
			}
			if len(tr.Cases) == 0 {
				t.Fatal("verification stimulus produced no cases")
			}
			// The last step of every case must not be all-X (the design
			// must actually compute something).
			for ci, c := range tr.Cases {
				last := c.Steps[len(c.Steps)-1]
				for oi, o := range last.Outputs {
					if strings.Contains(o, "z") {
						t.Errorf("case %d output %d has Z bits: %s", ci, oi, o)
					}
				}
			}
		})
	}
}

// TestGoldenSelfConsistency runs each golden twice under the same stimulus
// and confirms traces agree (simulator determinism at the task level).
func TestGoldenSelfConsistency(t *testing.T) {
	tasks := Suite()
	for _, task := range []Task{tasks[0], tasks[40], tasks[81], tasks[120], tasks[155]} {
		src, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		gen := testbench.NewGenerator(7)
		st := gen.Ranking(task.Ifc)
		a := testbench.Run(src, TopModule, st)
		b := testbench.Run(src, TopModule, st)
		if !testbench.Agrees(a, b) {
			t.Errorf("%s: golden disagrees with itself", task.ID)
		}
	}
}

func TestInterfaceMatchesPorts(t *testing.T) {
	for _, task := range Suite() {
		src, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		m := src.FindModule(TopModule)
		if m == nil {
			t.Fatalf("%s: no top module", task.ID)
		}
		declared := make(map[string]bool)
		for _, p := range m.Ports {
			declared[p.Name] = true
		}
		for _, in := range task.Ifc.Inputs {
			if !declared[in.Name] {
				t.Errorf("%s: interface input %q not a module port", task.ID, in.Name)
			}
		}
		for _, out := range task.Ifc.Outputs {
			if !declared[out.Name] {
				t.Errorf("%s: interface output %q not a module port", task.ID, out.Name)
			}
		}
		if len(m.Ports) != len(task.Ifc.Inputs)+len(task.Ifc.Outputs) {
			t.Errorf("%s: module has %d ports, interface describes %d",
				task.ID, len(m.Ports), len(task.Ifc.Inputs)+len(task.Ifc.Outputs))
		}
		if task.Category == Sequential && task.Ifc.Clock == "" {
			t.Errorf("%s: sequential task without clock", task.ID)
		}
		if task.Category == Combinational && task.Ifc.Clock != "" {
			t.Errorf("%s: combinational task with clock", task.ID)
		}
	}
}
