package eval

import (
	"strings"
	"testing"

	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
)

// TestFamilyCoverage pins the family mix: these families must exist with at
// least the expected population so the benchmark keeps the task diversity
// VerilogEval-Human has.
func TestFamilyCoverage(t *testing.T) {
	tasks := Suite()
	counts := make(map[string]int)
	for _, task := range tasks {
		counts[task.Family]++
	}
	want := map[string]int{
		"gates": 8, "boolexpr": 8, "mux": 6, "decoder": 6, "kmap": 12,
		"truthtable": 4, "vector": 8, "adder": 8, "compare": 6,
		"popcount": 5, "shift": 4, "alu": 2, "gray": 4,
		"dff": 8, "register": 4, "counter": 10, "shiftreg": 8, "edge": 4,
		"seqrec": 8, "fsm": 12, "timer": 6, "serial": 4, "arb": 4,
		"accum": 4, "miscseq": 3,
	}
	for fam, n := range want {
		if counts[fam] != n {
			t.Errorf("family %s has %d tasks, want %d", fam, counts[fam], n)
		}
	}
	if got := len(Families(tasks)); got != len(want) {
		t.Errorf("found %d families, want %d", got, len(want))
	}
}

// TestSimpleDescOnlyOnJudgeableTasks: the SimpleDesc flag drives
// inter-cluster output judging and must mark the k-map/waveform-like
// families.
func TestSimpleDescOnlyOnJudgeableTasks(t *testing.T) {
	for _, task := range Suite() {
		switch task.Family {
		case "kmap", "truthtable", "gates", "boolexpr":
			if !task.SimpleDesc {
				t.Errorf("%s (%s) should be SimpleDesc", task.ID, task.Family)
			}
		case "fsm", "seqrec", "counter":
			if task.SimpleDesc {
				t.Errorf("%s (%s) must not be SimpleDesc", task.ID, task.Family)
			}
		}
	}
}

// TestSpecsAreSubstantial: a spec must be self-contained enough to describe
// behavior — minimum length, and sequential specs must speak in temporal
// or stateful terms.
func TestSpecsAreSubstantial(t *testing.T) {
	temporal := []string{"clock", "cycle", "edge", "register", "reset", "serial", "rotat", "shift", "delay", "state"}
	for _, task := range Suite() {
		if len(task.Spec) < 40 {
			t.Errorf("%s: spec too thin: %q", task.ID, task.Spec)
		}
		if task.Category != Sequential {
			continue
		}
		lower := strings.ToLower(task.Spec)
		found := false
		for _, kw := range temporal {
			if strings.Contains(lower, kw) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: sequential spec lacks temporal language: %q", task.ID, task.Spec)
		}
	}
}

// TestSequentialGoldensUseClock: every sequential golden must contain a
// clocked always block; combinational goldens must not.
func TestClockUsageMatchesCategory(t *testing.T) {
	for _, task := range Suite() {
		src, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		m := src.FindModule(TopModule)
		clocked := false
		for _, it := range m.Items {
			alw, ok := it.(*ast.Always)
			if !ok {
				continue
			}
			for _, ev := range alw.Events {
				if ev.Edge != ast.EdgeNone {
					clocked = true
				}
			}
		}
		if task.Category == Sequential && !clocked {
			t.Errorf("%s: sequential golden has no clocked always block", task.ID)
		}
		if task.Category == Combinational && clocked {
			t.Errorf("%s: combinational golden has a clocked always block", task.ID)
		}
	}
}

// TestDifficultyOrdering: sequential families must be harder on average than
// combinational ones — that is what drives the paper's CMB/SEQ split.
func TestDifficultyOrdering(t *testing.T) {
	tasks := Suite()
	avg := func(cat Category) float64 {
		sum, n := 0.0, 0
		for _, task := range tasks {
			if task.Category == cat {
				sum += task.Difficulty
				n++
			}
		}
		return sum / float64(n)
	}
	cmb, seq := avg(Combinational), avg(Sequential)
	if seq <= cmb {
		t.Errorf("SEQ difficulty %.3f should exceed CMB %.3f", seq, cmb)
	}
	if seq-cmb < 0.1 {
		t.Errorf("SEQ-CMB difficulty gap %.3f too small to reproduce the paper's split", seq-cmb)
	}
}

// TestResetPolarity: every task that declares a reset uses an input port by
// that name.
func TestResetPortsExist(t *testing.T) {
	for _, task := range Suite() {
		if task.Ifc.Reset == "" {
			continue
		}
		found := false
		for _, in := range task.Ifc.Inputs {
			if in.Name == task.Ifc.Reset {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: reset %q not among inputs", task.ID, task.Ifc.Reset)
		}
	}
}

// TestKmapSpecListsMinterms: kmap specs must enumerate their minterms so the
// output-judging path has real content to "reason" about.
func TestKmapSpecListsMinterms(t *testing.T) {
	for _, task := range Suite() {
		if task.Family != "kmap" {
			continue
		}
		if !strings.Contains(task.Spec, "minterms {") {
			t.Errorf("%s: spec does not enumerate minterms: %q", task.ID, task.Spec)
		}
	}
}
