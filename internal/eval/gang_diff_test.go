package eval

import (
	"fmt"
	"testing"

	"repro/internal/mutate"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/printer"
	"repro/internal/xrng"
)

// freshStimulus clones a stimulus into a new value: the fresh pointer misses
// the process-wide (design, stimulus) fingerprint memo, so every comparison
// below is an honest simulation rather than a memo read.
func freshStimulus(st *testbench.Stimulus) *testbench.Stimulus {
	return &testbench.Stimulus{Ifc: st.Ifc, Cases: st.Cases}
}

// fpEqual requires two fingerprint traces to agree exactly, including error
// bytes.
func fpEqual(t *testing.T, label string, got, want *testbench.FPTrace) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) ||
		(got.Err != nil && got.Err.Error() != want.Err.Error()) {
		t.Fatalf("%s: error divergence: got %v, want %v", label, got.Err, want.Err)
	}
	if len(got.CaseFPs) != len(want.CaseFPs) {
		t.Fatalf("%s: case counts differ: %d vs %d", label, len(got.CaseFPs), len(want.CaseFPs))
	}
	for i := range got.CaseFPs {
		if got.CaseFPs[i] != want.CaseFPs[i] {
			t.Fatalf("%s: case %d fingerprint differs", label, i)
		}
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("%s: whole-run fingerprint differs", label)
	}
}

// TestSuiteGangFingerprintEquivalence runs every golden design in the
// 156-task benchmark, plus random semantic mutants of each, through
// RunFingerprintGang at several gang partitionings and requires bit-identical
// fingerprints to solo runs of the same candidates — with and without the
// compiled golden as delta-compilation base. This is the suite-wide
// acceptance gate for gang ranking and delta compilation together: it covers
// every construct family the benchmark exercises, healthy and buggy lanes in
// the same gang, and both the lockstep drive loop and its solo fallbacks.
func TestSuiteGangFingerprintEquivalence(t *testing.T) {
	rng := xrng.New(91)
	for _, task := range Suite() {
		golden, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: golden parse: %v", task.ID, err)
		}
		srcs := []*ast.Source{golden}
		if mod := golden.FindModule(TopModule); mod != nil {
			for trial := 0; trial < 3; trial++ {
				mut, _ := mutate.Semantic(mod, rng, mutate.Config{Count: 1})
				if mut == nil {
					continue
				}
				msrc, perr := parser.Parse(printer.PrintModule(mut))
				if perr != nil {
					continue // a mutant may print to something unparseable; skip
				}
				srcs = append(srcs, msrc)
			}
		}
		st := testbench.NewGenerator(9 + int64(task.Index)).Ranking(task.Ifc)

		// Solo baselines on a fresh stimulus value (memo-miss).
		solo := make([]*testbench.FPTrace, len(srcs))
		soloSt := freshStimulus(st)
		for i, src := range srcs {
			solo[i] = testbench.RunFingerprint(src, TopModule, soloSt, testbench.BackendCompiled)
		}

		base, _ := sim.CompileCached(golden, TopModule)
		for _, gm := range gangModes {
			for _, bs := range []struct {
				name string
				d    *sim.Design
			}{
				{"goldenbase", base},
				{"nobase", nil},
			} {
				for _, chunk := range []int{1, 2, len(srcs)} {
					gangSt := freshStimulus(st)
					got := make([]*testbench.FPTrace, 0, len(srcs))
					for lo := 0; lo < len(srcs); lo += chunk {
						hi := lo + chunk
						if hi > len(srcs) {
							hi = len(srcs)
						}
						got = append(got, testbench.RunFingerprintGangMode(srcs[lo:hi], TopModule, gangSt, testbench.BackendCompiled, bs.d, gm.mode)...)
					}
					for i := range srcs {
						fpEqual(t, fmt.Sprintf("%s %s/%s chunk=%d cand=%d", task.ID, gm.name, bs.name, chunk, i), got[i], solo[i])
					}
				}
			}
		}
	}
}

// gangModes enumerates both gang execution models for matrix tests.
var gangModes = []struct {
	name string
	mode testbench.GangMode
}{
	{"soa", testbench.GangSoA},
	{"perlane", testbench.GangPerLane},
}

// TestSuiteGangWideLanes exercises the wide gang sizes of the acceptance
// matrix (8 and 64 lanes) that the per-task test above cannot reach with a
// handful of mutants: for a spread of benchmark tasks it builds a 64-candidate
// pool of distinct mutants of the golden and requires both gang modes to match
// solo fingerprints when the pool is partitioned into gangs of 8 and one gang
// of 64, with and without the golden delta base.
func TestSuiteGangWideLanes(t *testing.T) {
	rng := xrng.New(177)
	tasks := Suite()
	for ti := 0; ti < len(tasks); ti += 39 {
		task := tasks[ti]
		golden, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: golden parse: %v", task.ID, err)
		}
		mod := golden.FindModule(TopModule)
		if mod == nil {
			continue
		}
		srcs := []*ast.Source{golden}
		for trial := 0; len(srcs) < 64 && trial < 512; trial++ {
			mut, _ := mutate.Semantic(mod, rng, mutate.Config{Count: 1 + trial%3})
			if mut == nil {
				continue
			}
			msrc, perr := parser.Parse(printer.PrintModule(mut))
			if perr != nil {
				continue
			}
			srcs = append(srcs, msrc)
		}
		st := testbench.NewGenerator(41 + int64(task.Index)).Ranking(task.Ifc)

		solo := make([]*testbench.FPTrace, len(srcs))
		soloSt := freshStimulus(st)
		for i, src := range srcs {
			solo[i] = testbench.RunFingerprint(src, TopModule, soloSt, testbench.BackendCompiled)
		}

		base, _ := sim.CompileCached(golden, TopModule)
		for _, gm := range gangModes {
			for _, bd := range []*sim.Design{base, nil} {
				for _, chunk := range []int{8, 64} {
					gangSt := freshStimulus(st)
					got := make([]*testbench.FPTrace, 0, len(srcs))
					for lo := 0; lo < len(srcs); lo += chunk {
						hi := lo + chunk
						if hi > len(srcs) {
							hi = len(srcs)
						}
						got = append(got, testbench.RunFingerprintGangMode(srcs[lo:hi], TopModule, gangSt, testbench.BackendCompiled, bd, gm.mode)...)
					}
					for i := range srcs {
						fpEqual(t, fmt.Sprintf("%s %s base=%v chunk=%d cand=%d", task.ID, gm.name, bd != nil, chunk, i), got[i], solo[i])
					}
				}
			}
		}
	}
}
