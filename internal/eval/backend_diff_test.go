package eval

import (
	"testing"

	"repro/internal/testbench"
	"repro/internal/verilog/parser"
)

// TestSuiteGoldensBackendEquivalence runs every golden design in the
// 156-task benchmark through both simulation backends under the same
// generated stimulus and requires byte-identical printed traces. This pins
// the compiled backend to the interpreter across every construct the
// benchmark exercises (gates, muxes, k-maps, wide vectors, adders,
// counters, shift registers, FSMs, ...).
func TestSuiteGoldensBackendEquivalence(t *testing.T) {
	for _, task := range Suite() {
		src, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatalf("%s: golden parse: %v", task.ID, err)
		}
		st := testbench.NewGenerator(9 + int64(task.Index)).Ranking(task.Ifc)
		ti := testbench.RunBackend(src, TopModule, st, testbench.BackendInterpreter)
		tc := testbench.RunBackend(src, TopModule, st, testbench.BackendCompiled)
		if (ti.Err == nil) != (tc.Err == nil) {
			t.Fatalf("%s: error divergence: interp=%v compiled=%v", task.ID, ti.Err, tc.Err)
		}
		if ti.Err != nil {
			t.Fatalf("%s: golden failed to simulate: %v", task.ID, ti.Err)
		}
		if got, want := tc.String(), ti.String(); got != want {
			t.Errorf("%s: trace divergence\ninterpreter:\n%s\ncompiled:\n%s", task.ID, want, got)
		}
		// The streaming fingerprint path must reproduce the printed-trace
		// fingerprints exactly — per case and whole-run — on both backends.
		for _, pair := range []struct {
			name    string
			tr      *testbench.Trace
			backend testbench.Backend
		}{
			{"interpreter", ti, testbench.BackendInterpreter},
			{"compiled", tc, testbench.BackendCompiled},
		} {
			fp := testbench.RunFingerprint(src, TopModule, st, pair.backend)
			if fp.Err != nil {
				t.Fatalf("%s: %s fingerprint run failed: %v", task.ID, pair.name, fp.Err)
			}
			if !testbench.FPAgrees(fp, pair.tr.FP()) || fp.Fingerprint() != pair.tr.Fingerprint() {
				t.Errorf("%s: %s fingerprint path diverges from printed trace", task.ID, pair.name)
			}
		}
	}
}
