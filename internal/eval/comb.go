package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/testbench"
)

// combTasks assembles the 81 combinational tasks.
func combTasks() []Task {
	var ts []Task
	ts = append(ts, gateTasks()...)       // 8
	ts = append(ts, boolExprTasks()...)   // 8
	ts = append(ts, muxTasks()...)        // 6
	ts = append(ts, decoderTasks()...)    // 6
	ts = append(ts, kmapTasks()...)       // 12
	ts = append(ts, truthTableTasks()...) // 4
	ts = append(ts, vectorTasks()...)     // 8
	ts = append(ts, adderTasks()...)      // 8
	ts = append(ts, compareTasks()...)    // 6
	ts = append(ts, popcountTasks()...)   // 5
	ts = append(ts, shiftTasks()...)      // 4
	ts = append(ts, aluTasks()...)        // 2
	ts = append(ts, grayTasks()...)       // 4
	if len(ts) != 81 {
		panic(fmt.Sprintf("combinational suite has %d tasks, want 81", len(ts)))
	}
	return ts
}

func ifcComb(ins []testbench.PortSpec, outs []testbench.PortSpec) testbench.Interface {
	return testbench.Interface{Inputs: ins, Outputs: outs}
}

// --- gates (8) -----------------------------------------------------------------

func gateTasks() []Task {
	type gate struct {
		name string
		expr string
		desc string
	}
	gates := []gate{
		{"and2", "a & b", "the logical AND of its two inputs"},
		{"or2", "a | b", "the logical OR of its two inputs"},
		{"xor2", "a ^ b", "the exclusive OR of its two inputs"},
		{"nand2", "~(a & b)", "the logical NAND of its two inputs"},
		{"nor2", "~(a | b)", "the logical NOR of its two inputs"},
		{"xnor2", "~(a ^ b)", "the exclusive NOR of its two inputs"},
		{"not1", "~a", "the logical complement of its input"},
		{"aoi21", "~((a & b) | c)", "an AND-OR-INVERT: NOT((a AND b) OR c)"},
	}
	var ts []Task
	for i, g := range gates {
		var ins []testbench.PortSpec
		ports := "input a,\n    input b,\n    input c,"
		switch g.name {
		case "not1":
			ports = "input a,"
			ins = []testbench.PortSpec{in1("a")}
		case "aoi21":
			ins = []testbench.PortSpec{in1("a"), in1("b"), in1("c")}
		default:
			ports = "input a,\n    input b,"
			ins = []testbench.PortSpec{in1("a"), in1("b")}
		}
		golden := fmt.Sprintf(`module top_module (
    %s
    output y
);
    assign y = %s;
endmodule
`, ports, g.expr)
		spec := fmt.Sprintf("Build a combinational circuit whose output y is %s.", g.desc)
		id := fmt.Sprintf("cmb_gate_%02d_%s", i, g.name)
		ts = append(ts, newTask(id, Combinational, "gates", spec, golden,
			ifcComb(ins, []testbench.PortSpec{in1("y")}), 0.05, true))
	}
	return ts
}

// --- boolean expressions (8) ------------------------------------------------------

// randBoolExpr builds a random boolean expression over the given variables.
func randBoolExpr(rng *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || rng.Float64() < 0.3 {
		v := vars[rng.Intn(len(vars))]
		if rng.Float64() < 0.4 {
			return "~" + v
		}
		return v
	}
	ops := []string{"&", "|", "^"}
	op := ops[rng.Intn(len(ops))]
	left := randBoolExpr(rng, vars, depth-1)
	right := randBoolExpr(rng, vars, depth-1)
	return fmt.Sprintf("(%s %s %s)", left, op, right)
}

func boolExprTasks() []Task {
	vars := []string{"a", "b", "c", "d"}
	var ts []Task
	for i := 0; i < 8; i++ {
		rng := familyRand("boolexpr", i)
		expr := randBoolExpr(rng, vars, 3)
		golden := fmt.Sprintf(`module top_module (
    input a,
    input b,
    input c,
    input d,
    output y
);
    assign y = %s;
endmodule
`, expr)
		spec := fmt.Sprintf("Implement the boolean function y = %s over the four inputs a, b, c and d, where ~ is NOT, & is AND, | is OR and ^ is XOR.", expr)
		id := fmt.Sprintf("cmb_boolexpr_%02d", i)
		ts = append(ts, newTask(id, Combinational, "boolexpr", spec, golden,
			ifcComb([]testbench.PortSpec{in1("a"), in1("b"), in1("c"), in1("d")},
				[]testbench.PortSpec{in1("y")}), 0.12, true))
	}
	return ts
}

// --- muxes (6) ---------------------------------------------------------------------

func muxTasks() []Task {
	var ts []Task

	add := func(id, spec, golden string, ins, outs []testbench.PortSpec) {
		ts = append(ts, newTask(id, Combinational, "mux", spec, golden, ifcComb(ins, outs), 0.10, false))
	}

	add("cmb_mux_00_mux2x1",
		"Build a 2-to-1 multiplexer for 1-bit inputs: when sel is 0 the output y equals a, when sel is 1 it equals b.",
		`module top_module (
    input a,
    input b,
    input sel,
    output y
);
    assign y = sel ? b : a;
endmodule
`,
		[]testbench.PortSpec{in1("a"), in1("b"), in1("sel")}, []testbench.PortSpec{in1("y")})

	add("cmb_mux_01_mux2x8",
		"Build a 2-to-1 multiplexer for 8-bit buses: when sel is 0 the output y equals a, when sel is 1 it equals b.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    input sel,
    output [7:0] y
);
    assign y = sel ? b : a;
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8), in1("sel")}, []testbench.PortSpec{inw("y", 8)})

	add("cmb_mux_02_mux4x4",
		"Build a 4-to-1 multiplexer with four 4-bit data inputs a, b, c, d and a 2-bit select: sel==0 picks a, sel==1 picks b, sel==2 picks c, sel==3 picks d.",
		`module top_module (
    input [3:0] a,
    input [3:0] b,
    input [3:0] c,
    input [3:0] d,
    input [1:0] sel,
    output reg [3:0] y
);
    always @(*) begin
        case (sel)
            2'd0: y = a;
            2'd1: y = b;
            2'd2: y = c;
            default: y = d;
        endcase
    end
endmodule
`,
		[]testbench.PortSpec{inw("a", 4), inw("b", 4), inw("c", 4), inw("d", 4), inw("sel", 2)},
		[]testbench.PortSpec{inw("y", 4)})

	add("cmb_mux_03_mux8x4",
		"Build an 8-to-1 multiplexer: the 3-bit select chooses one 4-bit slice of the 32-bit packed input bus in, where sel==0 selects in[3:0], sel==1 selects in[7:4], and so on.",
		`module top_module (
    input [31:0] in,
    input [2:0] sel,
    output [3:0] y
);
    assign y = in >> {sel, 2'b00};
endmodule
`,
		[]testbench.PortSpec{inw("in", 32), inw("sel", 3)}, []testbench.PortSpec{inw("y", 4)})

	add("cmb_mux_04_mux4x16",
		"Build a 4-to-1 multiplexer with four 16-bit data inputs a, b, c, d selected by a 2-bit select input in order a, b, c, d.",
		`module top_module (
    input [15:0] a,
    input [15:0] b,
    input [15:0] c,
    input [15:0] d,
    input [1:0] sel,
    output [15:0] y
);
    assign y = (sel == 2'd0) ? a :
               (sel == 2'd1) ? b :
               (sel == 2'd2) ? c : d;
endmodule
`,
		[]testbench.PortSpec{inw("a", 16), inw("b", 16), inw("c", 16), inw("d", 16), inw("sel", 2)},
		[]testbench.PortSpec{inw("y", 16)})

	add("cmb_mux_05_mux16x1",
		"Build a 16-to-1 multiplexer of single bits: output y is bit number sel of the 16-bit input bus in.",
		`module top_module (
    input [15:0] in,
    input [3:0] sel,
    output y
);
    assign y = in[sel];
endmodule
`,
		[]testbench.PortSpec{inw("in", 16), inw("sel", 4)}, []testbench.PortSpec{in1("y")})

	return ts
}

// --- decoders / encoders (6) ----------------------------------------------------------

func decoderTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "decoder", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_dec_00_dec24",
		"Build a 2-to-4 one-hot decoder: output bit number in of y is 1 and all other bits are 0.",
		`module top_module (
    input [1:0] in,
    output [3:0] y
);
    assign y = 4'b0001 << in;
endmodule
`,
		[]testbench.PortSpec{inw("in", 2)}, []testbench.PortSpec{inw("y", 4)}, 0.12)

	add("cmb_dec_01_dec38",
		"Build a 3-to-8 one-hot decoder: output bit number in of y is 1 and all other bits are 0.",
		`module top_module (
    input [2:0] in,
    output [7:0] y
);
    assign y = 8'b00000001 << in;
endmodule
`,
		[]testbench.PortSpec{inw("in", 3)}, []testbench.PortSpec{inw("y", 8)}, 0.12)

	add("cmb_dec_02_dec24en",
		"Build a 2-to-4 decoder with an active-high enable: when en is 1 the output is the one-hot decode of in, when en is 0 the output is all zeros.",
		`module top_module (
    input [1:0] in,
    input en,
    output [3:0] y
);
    assign y = en ? (4'b0001 << in) : 4'b0000;
endmodule
`,
		[]testbench.PortSpec{inw("in", 2), in1("en")}, []testbench.PortSpec{inw("y", 4)}, 0.15)

	add("cmb_dec_03_prienc4",
		"Build a 4-bit priority encoder: pos is the index of the highest-numbered 1 bit of in, and valid is 1 when any bit of in is set. When in is zero, pos must be 0.",
		`module top_module (
    input [3:0] in,
    output reg [1:0] pos,
    output valid
);
    assign valid = |in;
    always @(*) begin
        casez (in)
            4'b1zzz: pos = 2'd3;
            4'b01zz: pos = 2'd2;
            4'b001z: pos = 2'd1;
            4'b0001: pos = 2'd0;
            default: pos = 2'd0;
        endcase
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 4)}, []testbench.PortSpec{inw("pos", 2), in1("valid")}, 0.22)

	add("cmb_dec_04_prienc8",
		"Build an 8-bit priority encoder: pos is the index of the lowest-numbered 1 bit of in, and valid is 1 when any bit of in is set. When in is zero, pos must be 0.",
		`module top_module (
    input [7:0] in,
    output reg [2:0] pos,
    output valid
);
    integer i;
    assign valid = |in;
    always @(*) begin
        pos = 3'd0;
        for (i = 0; i < 8; i = i + 1)
            if (in[7 - i])
                pos = 3'd7 - i[2:0];
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("pos", 3), in1("valid")}, 0.25)

	add("cmb_dec_05_onehot2bin",
		"Build a one-hot to binary converter: the 8-bit input is guaranteed one-hot; output the 3-bit index of the set bit (and 0 for an all-zero input).",
		`module top_module (
    input [7:0] in,
    output reg [2:0] y
);
    integer i;
    always @(*) begin
        y = 3'd0;
        for (i = 0; i < 8; i = i + 1)
            if (in[i])
                y = i[2:0];
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("y", 3)}, 0.18)

	return ts
}

// --- k-maps (12) -------------------------------------------------------------------------

// kmapTask builds a random truth-table task over nvars variables presented as
// a Karnaugh-map specification (minterm list). These are the paper's
// "simple description" tasks.
func kmapTasks() []Task {
	var ts []Task
	for i := 0; i < 12; i++ {
		rng := familyRand("kmap", i)
		nvars := 3
		if i >= 6 {
			nvars = 4
		}
		size := 1 << uint(nvars)
		var minterms []int
		for m := 0; m < size; m++ {
			if rng.Float64() < 0.45 {
				minterms = append(minterms, m)
			}
		}
		if len(minterms) == 0 {
			minterms = append(minterms, rng.Intn(size))
		}
		if len(minterms) == size {
			minterms = minterms[:size-1]
		}
		names := []string{"a", "b", "c", "d"}[:nvars]

		// Golden: sum of products over the minterms.
		var products []string
		for _, m := range minterms {
			var lits []string
			for v := 0; v < nvars; v++ {
				// Variable 0 (a) is the MSB of the minterm index.
				bit := (m >> uint(nvars-1-v)) & 1
				if bit == 1 {
					lits = append(lits, names[v])
				} else {
					lits = append(lits, "~"+names[v])
				}
			}
			products = append(products, "("+strings.Join(lits, " & ")+")")
		}
		expr := strings.Join(products, " | ")

		var portDecls []string
		var ins []testbench.PortSpec
		for _, n := range names {
			portDecls = append(portDecls, fmt.Sprintf("    input %s,", n))
			ins = append(ins, in1(n))
		}
		golden := fmt.Sprintf(`module top_module (
%s
    output f
);
    assign f = %s;
endmodule
`, strings.Join(portDecls, "\n"), expr)

		var mstr []string
		for _, m := range minterms {
			mstr = append(mstr, fmt.Sprintf("%d", m))
		}
		spec := fmt.Sprintf(
			"Implement the %d-variable Karnaugh map over inputs (%s), where %s is the most significant bit of the minterm index: the output f is 1 exactly for minterms {%s} and 0 otherwise.",
			nvars, strings.Join(names, ", "), names[0], strings.Join(mstr, ", "))
		id := fmt.Sprintf("cmb_kmap_%02d", i)
		ts = append(ts, newTask(id, Combinational, "kmap", spec, golden,
			ifcComb(ins, []testbench.PortSpec{in1("f")}), 0.28, true))
	}
	return ts
}

// --- explicit truth tables (4) --------------------------------------------------------------

func truthTableTasks() []Task {
	var ts []Task
	for i := 0; i < 4; i++ {
		rng := familyRand("truthtable", i)
		var rows uint8
		for rows == 0 || rows == 0xFF {
			rows = uint8(rng.Intn(256))
		}
		// Golden: case statement over the 3 inputs.
		var items []string
		for m := 0; m < 8; m++ {
			bit := (rows >> uint(m)) & 1
			items = append(items, fmt.Sprintf("            3'd%d: f = 1'b%d;", m, bit))
		}
		golden := fmt.Sprintf(`module top_module (
    input [2:0] x,
    output reg f
);
    always @(*) begin
        case (x)
%s
            default: f = 1'b0;
        endcase
    end
endmodule
`, strings.Join(items, "\n"))
		var ones []string
		for m := 0; m < 8; m++ {
			if (rows>>uint(m))&1 == 1 {
				ones = append(ones, fmt.Sprintf("%d", m))
			}
		}
		spec := fmt.Sprintf(
			"Implement the truth table over the 3-bit input x: the output f is 1 exactly when the value of x is one of {%s}, and 0 otherwise.",
			strings.Join(ones, ", "))
		id := fmt.Sprintf("cmb_truthtable_%02d", i)
		ts = append(ts, newTask(id, Combinational, "truthtable", spec, golden,
			ifcComb([]testbench.PortSpec{inw("x", 3)}, []testbench.PortSpec{in1("f")}), 0.20, true))
	}
	return ts
}

// --- vector manipulation (8) -----------------------------------------------------------------

func vectorTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "vector", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_vec_00_reverse8",
		"Reverse the bit order of an 8-bit input: out[0] must equal in[7], out[1] must equal in[6], and so on.",
		`module top_module (
    input [7:0] in,
    output [7:0] out
);
    assign out = {in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7]};
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("out", 8)}, 0.15)

	add("cmb_vec_01_swapbytes16",
		"Swap the two bytes of a 16-bit word: the output's upper byte is the input's lower byte and vice versa.",
		`module top_module (
    input [15:0] in,
    output [15:0] out
);
    assign out = {in[7:0], in[15:8]};
endmodule
`,
		[]testbench.PortSpec{inw("in", 16)}, []testbench.PortSpec{inw("out", 16)}, 0.10)

	add("cmb_vec_02_swapnibbles8",
		"Swap the two nibbles of an 8-bit byte: output bits [7:4] are input bits [3:0] and output bits [3:0] are input bits [7:4].",
		`module top_module (
    input [7:0] in,
    output [7:0] out
);
    assign out = {in[3:0], in[7:4]};
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("out", 8)}, 0.10)

	add("cmb_vec_03_signext8to16",
		"Sign-extend an 8-bit two's-complement number to 16 bits by replicating its sign bit.",
		`module top_module (
    input [7:0] in,
    output [15:0] out
);
    assign out = {{8{in[7]}}, in};
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("out", 16)}, 0.15)

	add("cmb_vec_04_zeroext4to12",
		"Zero-extend a 4-bit input to a 12-bit output by padding the upper bits with zeros.",
		`module top_module (
    input [3:0] in,
    output [11:0] out
);
    assign out = {8'b00000000, in};
endmodule
`,
		[]testbench.PortSpec{inw("in", 4)}, []testbench.PortSpec{inw("out", 12)}, 0.08)

	add("cmb_vec_05_split24",
		"Split a 24-bit word into three bytes: hi is bits [23:16], mid is bits [15:8], lo is bits [7:0].",
		`module top_module (
    input [23:0] in,
    output [7:0] hi,
    output [7:0] mid,
    output [7:0] lo
);
    assign hi = in[23:16];
    assign mid = in[15:8];
    assign lo = in[7:0];
endmodule
`,
		[]testbench.PortSpec{inw("in", 24)},
		[]testbench.PortSpec{inw("hi", 8), inw("mid", 8), inw("lo", 8)}, 0.10)

	add("cmb_vec_06_interleave",
		"Interleave two 4-bit inputs into an 8-bit output: out = {a[3], b[3], a[2], b[2], a[1], b[1], a[0], b[0]}.",
		`module top_module (
    input [3:0] a,
    input [3:0] b,
    output [7:0] out
);
    assign out = {a[3], b[3], a[2], b[2], a[1], b[1], a[0], b[0]};
endmodule
`,
		[]testbench.PortSpec{inw("a", 4), inw("b", 4)}, []testbench.PortSpec{inw("out", 8)}, 0.18)

	add("cmb_vec_07_rotl8by3",
		"Rotate an 8-bit input left by exactly 3 positions (bits shifted out on the left re-enter on the right).",
		`module top_module (
    input [7:0] in,
    output [7:0] out
);
    assign out = {in[4:0], in[7:5]};
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("out", 8)}, 0.20)

	return ts
}

// --- adders (8) --------------------------------------------------------------------------------

func adderTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "adder", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_add_00_half",
		"Build a half adder: sum is the XOR of the two 1-bit inputs and cout is their AND.",
		`module top_module (
    input a,
    input b,
    output sum,
    output cout
);
    assign sum = a ^ b;
    assign cout = a & b;
endmodule
`,
		[]testbench.PortSpec{in1("a"), in1("b")}, []testbench.PortSpec{in1("sum"), in1("cout")}, 0.08)

	add("cmb_add_01_full",
		"Build a full adder of three 1-bit inputs a, b and cin, producing sum and cout.",
		`module top_module (
    input a,
    input b,
    input cin,
    output sum,
    output cout
);
    assign sum = a ^ b ^ cin;
    assign cout = (a & b) | (a & cin) | (b & cin);
endmodule
`,
		[]testbench.PortSpec{in1("a"), in1("b"), in1("cin")},
		[]testbench.PortSpec{in1("sum"), in1("cout")}, 0.10)

	add("cmb_add_02_add4carry",
		"Add two 4-bit unsigned numbers plus a carry-in; produce the 4-bit sum and the carry-out.",
		`module top_module (
    input [3:0] a,
    input [3:0] b,
    input cin,
    output [3:0] sum,
    output cout
);
    assign {cout, sum} = a + b + cin;
endmodule
`,
		[]testbench.PortSpec{inw("a", 4), inw("b", 4), in1("cin")},
		[]testbench.PortSpec{inw("sum", 4), in1("cout")}, 0.18)

	add("cmb_add_03_add8",
		"Add two 8-bit unsigned numbers; the 9-bit output carries the full result including the carry bit.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    output [8:0] sum
);
    assign sum = a + b;
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8)}, []testbench.PortSpec{inw("sum", 9)}, 0.12)

	add("cmb_add_04_addsub8",
		"Build an 8-bit adder/subtractor: when mode is 0 the output is a + b, when mode is 1 it is a - b (two's complement).",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    input mode,
    output [7:0] out
);
    assign out = mode ? (a - b) : (a + b);
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8), in1("mode")},
		[]testbench.PortSpec{inw("out", 8)}, 0.20)

	add("cmb_add_05_ovf8",
		"Add two 8-bit two's-complement numbers and raise the overflow flag when the signed result does not fit in 8 bits (both operands share a sign that differs from the result's sign).",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] s,
    output overflow
);
    assign s = a + b;
    assign overflow = (a[7] & b[7] & ~s[7]) | (~a[7] & ~b[7] & s[7]);
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8)},
		[]testbench.PortSpec{inw("s", 8), in1("overflow")}, 0.28)

	add("cmb_add_06_add16",
		"Add two 16-bit unsigned numbers with carry-in; produce the 16-bit sum and carry-out.",
		`module top_module (
    input [15:0] a,
    input [15:0] b,
    input cin,
    output [15:0] sum,
    output cout
);
    assign {cout, sum} = a + b + cin;
endmodule
`,
		[]testbench.PortSpec{inw("a", 16), inw("b", 16), in1("cin")},
		[]testbench.PortSpec{inw("sum", 16), in1("cout")}, 0.18)

	add("cmb_add_07_inc_dec",
		"Build an incrementer/decrementer: when up is 1 the 8-bit output is in + 1, otherwise it is in - 1 (wrapping).",
		`module top_module (
    input [7:0] in,
    input up,
    output [7:0] out
);
    assign out = up ? (in + 8'd1) : (in - 8'd1);
endmodule
`,
		[]testbench.PortSpec{inw("in", 8), in1("up")}, []testbench.PortSpec{inw("out", 8)}, 0.12)

	return ts
}

// --- comparators (6) ------------------------------------------------------------------------------

func compareTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "compare", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_cmp_00_eq4",
		"Compare two 4-bit inputs: eq is 1 when they are equal.",
		`module top_module (
    input [3:0] a,
    input [3:0] b,
    output eq
);
    assign eq = (a == b);
endmodule
`,
		[]testbench.PortSpec{inw("a", 4), inw("b", 4)}, []testbench.PortSpec{in1("eq")}, 0.08)

	add("cmb_cmp_01_min2x8",
		"Output the smaller of two 8-bit unsigned inputs.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] min
);
    assign min = (a < b) ? a : b;
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8)}, []testbench.PortSpec{inw("min", 8)}, 0.12)

	add("cmb_cmp_02_max2x8",
		"Output the larger of two 8-bit unsigned inputs.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] max
);
    assign max = (a > b) ? a : b;
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8)}, []testbench.PortSpec{inw("max", 8)}, 0.12)

	add("cmb_cmp_03_min4x8",
		"Output the minimum of four 8-bit unsigned inputs.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    input [7:0] c,
    input [7:0] d,
    output [7:0] min
);
    wire [7:0] m1, m2;
    assign m1 = (a < b) ? a : b;
    assign m2 = (c < d) ? c : d;
    assign min = (m1 < m2) ? m1 : m2;
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8), inw("c", 8), inw("d", 8)},
		[]testbench.PortSpec{inw("min", 8)}, 0.22)

	add("cmb_cmp_04_absdiff8",
		"Output the absolute difference |a - b| of two 8-bit unsigned inputs.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] diff
);
    assign diff = (a > b) ? (a - b) : (b - a);
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8)}, []testbench.PortSpec{inw("diff", 8)}, 0.18)

	add("cmb_cmp_05_flags8",
		"Compare two 8-bit unsigned inputs and produce three flags: lt (a<b), eq (a==b) and gt (a>b).",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    output lt,
    output eq,
    output gt
);
    assign lt = (a < b);
    assign eq = (a == b);
    assign gt = (a > b);
endmodule
`,
		[]testbench.PortSpec{inw("a", 8), inw("b", 8)},
		[]testbench.PortSpec{in1("lt"), in1("eq"), in1("gt")}, 0.12)

	return ts
}

// --- popcount / parity (5) -----------------------------------------------------------------------------

func popcountTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "popcount", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_pop_00_popcount8",
		"Count the number of 1 bits in an 8-bit input.",
		`module top_module (
    input [7:0] in,
    output reg [3:0] count
);
    integer i;
    always @(*) begin
        count = 4'd0;
        for (i = 0; i < 8; i = i + 1)
            if (in[i])
                count = count + 4'd1;
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("count", 4)}, 0.20)

	add("cmb_pop_01_popcount16",
		"Count the number of 1 bits in a 16-bit input.",
		`module top_module (
    input [15:0] in,
    output reg [4:0] count
);
    integer i;
    always @(*) begin
        count = 5'd0;
        for (i = 0; i < 16; i = i + 1)
            if (in[i])
                count = count + 5'd1;
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 16)}, []testbench.PortSpec{inw("count", 5)}, 0.20)

	add("cmb_pop_02_evenparity8",
		"Compute the even-parity bit of an 8-bit input: parity is 1 when the number of 1 bits is odd, so that the 9 bits together carry even parity.",
		`module top_module (
    input [7:0] in,
    output parity
);
    assign parity = ^in;
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{in1("parity")}, 0.15)

	add("cmb_pop_03_oddparity16",
		"Compute the odd-parity bit of a 16-bit input: parity is 1 when the number of 1 bits is even.",
		`module top_module (
    input [15:0] in,
    output parity
);
    assign parity = ~(^in);
endmodule
`,
		[]testbench.PortSpec{inw("in", 16)}, []testbench.PortSpec{in1("parity")}, 0.18)

	add("cmb_pop_04_clz8",
		"Count the leading zeros of an 8-bit input (the number of consecutive 0 bits starting at bit 7); the result is 8 when the input is zero.",
		`module top_module (
    input [7:0] in,
    output reg [3:0] count
);
    integer i;
    always @(*) begin
        count = 4'd8;
        for (i = 0; i < 8; i = i + 1)
            if (in[i])
                count = 4'd7 - i[3:0];
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 8)}, []testbench.PortSpec{inw("count", 4)}, 0.30)

	return ts
}

// --- shifters (4) -------------------------------------------------------------------------------------

func shiftTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "shift", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_shift_00_sll8",
		"Build a logical left barrel shifter: shift the 8-bit input left by the 3-bit amount, filling with zeros.",
		`module top_module (
    input [7:0] in,
    input [2:0] amt,
    output [7:0] out
);
    assign out = in << amt;
endmodule
`,
		[]testbench.PortSpec{inw("in", 8), inw("amt", 3)}, []testbench.PortSpec{inw("out", 8)}, 0.15)

	add("cmb_shift_01_srl8",
		"Build a logical right barrel shifter: shift the 8-bit input right by the 3-bit amount, filling with zeros.",
		`module top_module (
    input [7:0] in,
    input [2:0] amt,
    output [7:0] out
);
    assign out = in >> amt;
endmodule
`,
		[]testbench.PortSpec{inw("in", 8), inw("amt", 3)}, []testbench.PortSpec{inw("out", 8)}, 0.15)

	add("cmb_shift_02_rotl8",
		"Build an 8-bit left rotator: bits shifted out of the top re-enter at the bottom; the rotate amount is a 3-bit input.",
		`module top_module (
    input [7:0] in,
    input [2:0] amt,
    output [7:0] out
);
    wire [15:0] doubled;
    assign doubled = {in, in} << amt;
    assign out = doubled[15:8];
endmodule
`,
		[]testbench.PortSpec{inw("in", 8), inw("amt", 3)}, []testbench.PortSpec{inw("out", 8)}, 0.30)

	add("cmb_shift_03_sra8",
		"Build an 8-bit arithmetic right shifter: shift right by the 3-bit amount, replicating the sign bit into vacated positions.",
		`module top_module (
    input [7:0] in,
    input [2:0] amt,
    output reg [7:0] out
);
    integer i;
    always @(*) begin
        out = in;
        for (i = 0; i < 8; i = i + 1)
            if (i < amt)
                out = {out[7], out[7:1]};
    end
endmodule
`,
		[]testbench.PortSpec{inw("in", 8), inw("amt", 3)}, []testbench.PortSpec{inw("out", 8)}, 0.32)

	return ts
}

// --- ALUs (2) -------------------------------------------------------------------------------------------

func aluTasks() []Task {
	var ts []Task

	ts = append(ts, newTask("cmb_alu_00_alu4op", Combinational, "alu",
		"Build an 8-bit ALU with a 2-bit opcode: op 0 adds, op 1 subtracts, op 2 is bitwise AND, op 3 is bitwise OR. Also raise the zero flag when the result is zero.",
		`module top_module (
    input [7:0] a,
    input [7:0] b,
    input [1:0] op,
    output reg [7:0] y,
    output zero
);
    always @(*) begin
        case (op)
            2'd0: y = a + b;
            2'd1: y = a - b;
            2'd2: y = a & b;
            default: y = a | b;
        endcase
    end
    assign zero = (y == 8'd0);
endmodule
`,
		ifcComb([]testbench.PortSpec{inw("a", 8), inw("b", 8), inw("op", 2)},
			[]testbench.PortSpec{inw("y", 8), in1("zero")}), 0.30, false))

	ts = append(ts, newTask("cmb_alu_01_alu8op", Combinational, "alu",
		"Build a 4-bit ALU with a 3-bit opcode: 0 add, 1 subtract, 2 AND, 3 OR, 4 XOR, 5 NOT a, 6 shift a left by one, 7 shift a right by one.",
		`module top_module (
    input [3:0] a,
    input [3:0] b,
    input [2:0] op,
    output reg [3:0] y
);
    always @(*) begin
        case (op)
            3'd0: y = a + b;
            3'd1: y = a - b;
            3'd2: y = a & b;
            3'd3: y = a | b;
            3'd4: y = a ^ b;
            3'd5: y = ~a;
            3'd6: y = a << 1;
            default: y = a >> 1;
        endcase
    end
endmodule
`,
		ifcComb([]testbench.PortSpec{inw("a", 4), inw("b", 4), inw("op", 3)},
			[]testbench.PortSpec{inw("y", 4)}), 0.35, false))

	return ts
}

// --- Gray code (4) -----------------------------------------------------------------------------------------

func grayTasks() []Task {
	var ts []Task
	add := func(id, spec, golden string, ins, outs []testbench.PortSpec, diff float64) {
		ts = append(ts, newTask(id, Combinational, "gray", spec, golden, ifcComb(ins, outs), diff, false))
	}

	add("cmb_gray_00_bin2gray4",
		"Convert a 4-bit binary number to Gray code: g = b XOR (b >> 1).",
		`module top_module (
    input [3:0] b,
    output [3:0] g
);
    assign g = b ^ (b >> 1);
endmodule
`,
		[]testbench.PortSpec{inw("b", 4)}, []testbench.PortSpec{inw("g", 4)}, 0.18)

	add("cmb_gray_01_gray2bin4",
		"Convert a 4-bit Gray code to binary: each binary bit is the XOR of all Gray bits at or above its position.",
		`module top_module (
    input [3:0] g,
    output [3:0] b
);
    assign b[3] = g[3];
    assign b[2] = g[3] ^ g[2];
    assign b[1] = g[3] ^ g[2] ^ g[1];
    assign b[0] = g[3] ^ g[2] ^ g[1] ^ g[0];
endmodule
`,
		[]testbench.PortSpec{inw("g", 4)}, []testbench.PortSpec{inw("b", 4)}, 0.25)

	add("cmb_gray_02_bin2gray8",
		"Convert an 8-bit binary number to Gray code: g = b XOR (b >> 1).",
		`module top_module (
    input [7:0] b,
    output [7:0] g
);
    assign g = b ^ (b >> 1);
endmodule
`,
		[]testbench.PortSpec{inw("b", 8)}, []testbench.PortSpec{inw("g", 8)}, 0.18)

	add("cmb_gray_03_gray2bin8",
		"Convert an 8-bit Gray code to binary: each binary bit is the XOR of all Gray bits at or above its position.",
		`module top_module (
    input [7:0] g,
    output reg [7:0] b
);
    integer i;
    always @(*) begin
        b[7] = g[7];
        for (i = 1; i < 8; i = i + 1)
            b[7 - i] = b[8 - i] ^ g[7 - i];
    end
endmodule
`,
		[]testbench.PortSpec{inw("g", 8)}, []testbench.PortSpec{inw("b", 8)}, 0.28)

	return ts
}
