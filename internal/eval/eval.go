// Package eval provides the 156-task Verilog generation benchmark used by
// the experiments: a deterministic, self-contained substitute for
// VerilogEval-Human with the same split (81 combinational, 75 sequential)
// and the same task-family mix (gates, muxes, k-maps, vector ops, adders,
// counters, shift registers, FSMs, ...).
//
// Each task carries a natural-language specification, a hidden golden
// implementation, interface metadata for testbench generation, an intrinsic
// difficulty rating consumed by the simulated LLM, and a SimpleDesc flag
// marking k-map/waveform-like tasks whose expected outputs an LLM can judge
// directly (the paper's inter-cluster refinement distinction).
package eval

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/testbench"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
)

// parseMemo caches parse results by source text. Every simulated client and
// every oracle re-parses its tasks' goldens, and every fresh oracle
// re-parses the same deterministic candidate completions; the texts recur
// for the process lifetime and parsed ASTs are treated as immutable
// everywhere downstream (mutation always clones first), so one parse per
// distinct text suffices. Sharing pointers also makes the simulator's
// pointer-keyed canonical-hash memo more effective. Cleared wholesale at
// the cap so it stays bounded.
var (
	parseMu   sync.Mutex
	parseMemo = make(map[string]parsed)
)

const parseMemoCap = 8192

type parsed struct {
	src *ast.Source
	err error
}

// ParseCached parses Verilog with a process-wide memo (parse failures are
// memoized too). The returned source is shared: callers must treat it as
// immutable.
func ParseCached(src string) (*ast.Source, error) {
	parseMu.Lock()
	if p, hit := parseMemo[src]; hit {
		parseMu.Unlock()
		return p.src, p.err
	}
	parseMu.Unlock()
	p := parsed{}
	p.src, p.err = parser.Parse(src)
	parseMu.Lock()
	if len(parseMemo) >= parseMemoCap {
		parseMemo = make(map[string]parsed, parseMemoCap)
	}
	parseMemo[src] = p
	parseMu.Unlock()
	return p.src, p.err
}

// Category splits the benchmark the way the paper's Table I does.
type Category int

// Task categories.
const (
	Combinational Category = iota + 1
	Sequential
)

// String names the category like the paper ("CMB"/"SEQ").
func (c Category) String() string {
	if c == Combinational {
		return "CMB"
	}
	return "SEQ"
}

// Task is one benchmark problem.
type Task struct {
	// ID is a unique stable identifier, e.g. "cmb_kmap_03".
	ID string
	// Index is the position in the suite (0..155).
	Index int
	// Category is CMB or SEQ.
	Category Category
	// Family groups related tasks (gates, kmap, counter, fsm, ...).
	Family string
	// Spec is the natural-language module specification handed to the LLM.
	Spec string
	// Golden is the hidden reference implementation (module top_module).
	Golden string
	// Ifc describes the ports for testbench generation.
	Ifc testbench.Interface
	// Difficulty in (0,1): the probability scale of the simulated LLM
	// getting the task wrong; calibrated per family to match the paper's
	// baseline pass rates.
	Difficulty float64
	// SimpleDesc marks k-map/waveform-like tasks where expected outputs are
	// directly reasonable from the spec (enables inter-cluster output
	// judging in post-ranking refinement).
	SimpleDesc bool
}

// TopModule is the module name every task uses, matching VerilogEval.
const TopModule = "top_module"

// SuiteSize is the total number of tasks, matching VerilogEval-Human.
const SuiteSize = 156

// Suite returns the full deterministic benchmark: 81 combinational tasks
// followed by 75 sequential tasks.
func Suite() []Task {
	var tasks []Task
	tasks = append(tasks, combTasks()...)
	tasks = append(tasks, seqTasks()...)
	for i := range tasks {
		tasks[i].Index = i
	}
	return tasks
}

// ByCategory filters the suite.
func ByCategory(tasks []Task, c Category) []Task {
	var out []Task
	for _, t := range tasks {
		if t.Category == c {
			out = append(out, t)
		}
	}
	return out
}

// Families returns the sorted set of family names present in tasks.
func Families(tasks []Task) []string {
	set := make(map[string]bool)
	for _, t := range tasks {
		set[t.Family] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// jitter returns a deterministic per-ID difficulty jitter in [-d, +d].
func jitter(id string, d float64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	u := float64(h.Sum64()%10000) / 10000 // [0,1)
	return (2*u - 1) * d
}

// clampDifficulty keeps difficulties in a sane open interval.
func clampDifficulty(d float64) float64 {
	if d < 0.02 {
		return 0.02
	}
	if d > 0.97 {
		return 0.97
	}
	return d
}

// familyRand returns a deterministic RNG for a parameterized family member,
// so regenerating the suite always yields identical tasks.
func familyRand(family string, n int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(fmt.Sprintf("%s/%d", family, n)))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// mustParse panics if a golden design does not parse; the suite is static
// data, so a failure here is a programming error caught by tests.
func mustParse(id, src string) {
	if _, err := parser.Parse(src); err != nil {
		panic(fmt.Sprintf("task %s: golden does not parse: %v", id, err))
	}
}

// newTask assembles a task and sanity-checks its golden design.
func newTask(id string, cat Category, family, spec, golden string, ifc testbench.Interface, baseDifficulty float64, simple bool) Task {
	mustParse(id, golden)
	return Task{
		ID:         id,
		Category:   cat,
		Family:     family,
		Spec:       spec,
		Golden:     golden,
		Ifc:        ifc,
		Difficulty: clampDifficulty(baseDifficulty + jitter(id, 0.12)),
		SimpleDesc: simple,
	}
}

// in1 builds a single-bit input PortSpec.
func in1(name string) testbench.PortSpec { return testbench.PortSpec{Name: name, Width: 1} }

// inw builds a vector input PortSpec.
func inw(name string, w int) testbench.PortSpec { return testbench.PortSpec{Name: name, Width: w} }
