// Package serve is the HTTP/JSON transport of the vfocusd daemon: it
// accepts (golden, buggy-candidate-pool) ranking jobs, runs them on a
// bounded scheduler (internal/serve/sched), and streams ranked clusters
// back as newline-delimited JSON. The package holds no simulation logic —
// jobs call core.RankPool, and all heavy state (compiled designs,
// schedules, stimulus plans, fingerprint memos) lives in the process-wide
// caches those paths already share, so concurrent jobs against one golden
// automatically share one compiled Design and stimulus stream.
//
// Streaming is slow-client-proof by construction: workers append events to
// a per-job log under a mutex and move on; each streaming handler replays
// the log and follows at its own pace, so a stalled reader blocks only its
// own connection, never a worker slot.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/serve/sched"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
)

// Config sizes a Server.
type Config struct {
	// Workers is the number of concurrent ranking jobs (scheduler slots).
	Workers int
	// QueueCap bounds accepted-but-not-started jobs; past it, submits are
	// rejected with 429 + Retry-After.
	QueueCap int
	// JobTimeout bounds each job's run (scheduler-enforced); 0 = none.
	JobTimeout time.Duration
	// RankWorkers is the per-job simulation worker count passed to
	// core.RankPool (0 = sequential).
	RankWorkers int
	// Model is the default simulated-LLM profile for jobs that ask the
	// server to generate their candidate pool.
	Model string
	// MaxSamples caps server-side candidate generation per job.
	MaxSamples int
	// StoreDesc describes the persistent result store the process runs
	// with ("off" when none); surfaced by /statsz for operators and the
	// warm-restart smoke.
	StoreDesc string
	// NewClient, when non-nil, replaces llm.NewSimClient as the source of
	// candidate-pool generators — the hook that points server-side
	// generation at a real HTTP backend or replayed fixtures
	// (httpclient.Factory).
	NewClient func(model string, seed int64, tasks []eval.Task) (llm.Client, error)
	// LLMStats, when non-nil, is snapshotted into /statsz under "llm" —
	// wire it to the HTTP client factory's stats (wire requests, retries,
	// coalesced calls, breaker trips, …).
	LLMStats func() map[string]int64
	// LLMDesc names the LLM backend for /statsz ("sim" when empty).
	LLMDesc string
}

// finishedCap bounds how many completed job records the server retains for
// late status/stream readers; the oldest finished jobs are evicted first.
const finishedCap = 256

// Server owns the job table and the scheduler. Create with New, mount
// Handler on an http.Server, stop with Shutdown.
type Server struct {
	cfg   Config
	sched *sched.Scheduler
	tasks map[string]eval.Task

	mu       sync.Mutex
	jobs     map[string]*jobRecord
	finished []string // completion order, for bounded retention
	seq      int
}

// storeDesc names the configured persistent store for /statsz.
func (s *Server) storeDesc() string {
	if s.cfg.StoreDesc == "" {
		return "off"
	}
	return s.cfg.StoreDesc
}

// llmDesc names the configured LLM backend for /statsz.
func (s *Server) llmDesc() string {
	if s.cfg.LLMDesc == "" {
		return "sim"
	}
	return s.cfg.LLMDesc
}

// New builds a Server over the benchmark suite.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 8
	}
	if cfg.RankWorkers < 1 {
		cfg.RankWorkers = 1
	}
	if cfg.Model == "" {
		cfg.Model = "deepseek-r1"
	}
	if cfg.MaxSamples < 1 {
		cfg.MaxSamples = 200
	}
	tasks := make(map[string]eval.Task)
	for _, t := range eval.Suite() {
		tasks[t.ID] = t
	}
	return &Server{
		cfg: cfg,
		sched: sched.New(sched.Config{
			Workers:    cfg.Workers,
			QueueCap:   cfg.QueueCap,
			JobTimeout: cfg.JobTimeout,
		}),
		tasks: tasks,
		jobs:  make(map[string]*jobRecord),
	}
}

// Shutdown stops intake and drains in-flight jobs for up to drain before
// force-cancelling them. It returns when every worker has exited.
func (s *Server) Shutdown(drain time.Duration) {
	s.sched.Shutdown(drain)
}

// SubmitRequest is the POST /jobs body. TaskID names the golden design
// (and its interface) from the benchmark suite. The buggy candidate pool
// is either supplied verbatim in Candidates or generated server-side from
// the simulated LLM (Samples completions of Model at Seed).
type SubmitRequest struct {
	ID         string   `json:"id,omitempty"`
	TaskID     string   `json:"task_id"`
	Candidates []string `json:"candidates,omitempty"`
	Samples    int      `json:"samples,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Model      string   `json:"model,omitempty"`
	GangSize   int      `json:"gang_size,omitempty"`
}

// Event is one NDJSON line of a job's stream.
//
//	{"type":"progress","done":3,"total":7}
//	{"type":"cluster","rank":1,"score":12,"fingerprint":"…","members":[0,4],"code":"…"}
//	{"type":"done","status":"completed"}   (or "cancelled" / "failed" with error)
type Event struct {
	Type        string `json:"type"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	Rank        int    `json:"rank,omitempty"` // 1-based
	Score       int    `json:"score,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Members     []int  `json:"members,omitempty"`
	Code        string `json:"code,omitempty"`
	Status      string `json:"status,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Job lifecycle states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusCancelled = "cancelled"
	StatusFailed    = "failed"
)

// jobRecord is the per-job event log and status. wake is a broadcast
// channel replaced on every append: followers wait on the current channel
// and re-check the log when it closes.
type jobRecord struct {
	id string

	mu     sync.Mutex
	status string
	errMsg string
	events []Event
	wake   chan struct{}
	final  bool
}

func newJobRecord(id string) *jobRecord {
	return &jobRecord{id: id, status: StatusQueued, wake: make(chan struct{})}
}

func (j *jobRecord) append(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

func (j *jobRecord) setStatus(status string) {
	j.mu.Lock()
	j.status = status
	j.mu.Unlock()
}

// finish records the terminal state and appends the terminal event.
func (j *jobRecord) finish(err error) {
	status := StatusCompleted
	msg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = StatusCancelled
		msg = err.Error()
	default:
		status = StatusFailed
		msg = err.Error()
	}
	j.mu.Lock()
	j.status = status
	j.errMsg = msg
	j.final = true
	j.mu.Unlock()
	ev := Event{Type: "done", Status: status}
	if status == StatusFailed {
		ev.Type = "error"
		ev.Error = msg
	}
	if status == StatusCancelled {
		ev.Type = "cancelled"
		ev.Error = msg
	}
	j.append(ev)
}

// snapshot returns the events at or after index i, plus the wake channel
// to wait on when the log is exhausted and the job is not final.
func (j *jobRecord) snapshot(i int) (evs []Event, wake chan struct{}, final bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = j.events[i:len(j.events):len(j.events)]
	}
	return evs, j.wake, j.final
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /statsz exposes the process-wide simulation/result-store counters:
	// fp_sims counts fingerprint simulations actually performed, so a
	// fully store-warm process reports zero — the warm-restart smoke and
	// capacity dashboards key off exactly that.
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		stats := testbench.ReadStoreStats()
		w.Header().Set("Content-Type", "application/json")
		body := map[string]any{
			"fp_sims":              stats.Sims,
			"store_hits":           stats.Hits,
			"store_misses":         stats.Misses,
			"store_puts":           stats.Puts,
			"store_put_fails":      stats.PutFails,
			"remote_retries":       stats.RemoteRetries,
			"remote_breaker_trips": stats.RemoteBreakerTrips,
			"remote_fast_fails":    stats.RemoteFastFails,
			"fp_memo_len":          testbench.FPMemoLen(),
			"store":                s.storeDesc(),
			"llm_backend":          s.llmDesc(),
		}
		if s.cfg.LLMStats != nil {
			body["llm"] = s.cfg.LLMStats()
		}
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleSubmit(w, r)
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
		id, sub, _ := strings.Cut(rest, "/")
		if id == "" {
			http.NotFound(w, r)
			return
		}
		switch {
		case sub == "" && r.Method == http.MethodGet:
			s.handleStatus(w, r, id)
		case sub == "stream" && r.Method == http.MethodGet:
			s.handleStream(w, r, id)
		case sub == "cancel" && r.Method == http.MethodPost:
			s.handleCancel(w, r, id)
		default:
			http.NotFound(w, r)
		}
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	task, ok := s.tasks[req.TaskID]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown task_id %q", req.TaskID), http.StatusBadRequest)
		return
	}
	if len(req.Candidates) == 0 {
		if req.Samples <= 0 {
			req.Samples = 20
		}
		if req.Samples > s.cfg.MaxSamples {
			req.Samples = s.cfg.MaxSamples
		}
	}

	s.mu.Lock()
	id := req.ID
	if id == "" {
		s.seq++
		id = fmt.Sprintf("job-%d", s.seq)
	}
	if _, dup := s.jobs[id]; dup {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("duplicate job id %q", id), http.StatusConflict)
		return
	}
	rec := newJobRecord(id)
	s.jobs[id] = rec
	s.mu.Unlock()

	err := s.sched.Submit(sched.Job{
		ID: id,
		Run: func(ctx context.Context) error {
			rec.setStatus(StatusRunning)
			return s.runJob(ctx, rec, req, task)
		},
		Done: func(err error) {
			rec.finish(err)
			s.retire(id)
		},
	})
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		switch {
		case errors.Is(err, sched.ErrQueueFull):
			queued, running := s.sched.Stats()
			retry := 1 + (queued+running)/s.cfg.Workers
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			http.Error(w, "queue full", http.StatusTooManyRequests)
		case errors.Is(err, sched.ErrDraining):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": id, "status": StatusQueued})
}

// retire moves a finished job into the bounded retention window.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > finishedCap {
		old := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, old)
	}
}

func (s *Server) lookup(id string) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, id string) {
	rec := s.lookup(id)
	if rec == nil {
		http.NotFound(w, r)
		return
	}
	rec.mu.Lock()
	resp := map[string]any{"id": rec.id, "status": rec.status, "events": len(rec.events)}
	if rec.errMsg != "" {
		resp["error"] = rec.errMsg
	}
	rec.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, id string) {
	rec := s.lookup(id)
	if rec == nil {
		http.NotFound(w, r)
		return
	}
	found := s.sched.Cancel(id)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"id": id, "cancelled": found})
}

// handleStream replays the job's event log as NDJSON and follows until the
// job reaches a terminal event or the client goes away. Each connection
// paces itself; a slow reader never blocks the job.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, id string) {
	rec := s.lookup(id)
	if rec == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, wake, final := rec.snapshot(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if final && len(evs) == 0 {
			return
		}
		if len(evs) > 0 {
			continue // drain before blocking
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// runJob executes one ranking job on a scheduler worker: build (or accept)
// the candidate pool, rank it under the task's cached stimulus, and stream
// progress + ranked clusters into the job's event log.
func (s *Server) runJob(ctx context.Context, rec *jobRecord, req SubmitRequest, task eval.Task) error {
	codes, srcs, err := s.candidatePool(ctx, req, task)
	if err != nil {
		return err
	}
	// RankingCached is keyed by (seed, imperfection, interface): every job
	// naming the same task and seed shares one stimulus and one schedule.
	st := testbench.RankingCached(req.Seed+int64(task.Index), 0, task.Ifc)
	var golden *ast.Source
	if gsrc, gerr := eval.ParseCached(task.Golden); gerr == nil {
		golden = gsrc
	}
	pool, err := core.RankPool(ctx, srcs, st, core.RankPoolConfig{
		Backend:  testbench.BackendCompiled,
		Workers:  s.cfg.RankWorkers,
		GangSize: req.GangSize,
		Golden:   golden,
		OnBatch: func(done, total int) {
			rec.append(Event{Type: "progress", Done: done, Total: total})
		},
	})
	if err != nil {
		return err
	}
	for ci := range pool.Clusters {
		cl := &pool.Clusters[ci]
		rec.append(Event{
			Type:        "cluster",
			Rank:        ci + 1,
			Score:       cl.Score,
			Fingerprint: fmt.Sprintf("%016x", cl.Fingerprint),
			Members:     cl.Members,
			Code:        codes[cl.Members[0]],
		})
	}
	return nil
}

// candidatePool resolves the job's buggy-candidate pool: the request's own
// candidates when present (invalid ones stay in the pool as ineligible nil
// sources, keeping member indices aligned with the submission), otherwise
// Samples completions drawn from the simulated LLM.
func (s *Server) candidatePool(ctx context.Context, req SubmitRequest, task eval.Task) ([]string, []*ast.Source, error) {
	if len(req.Candidates) > 0 {
		srcs := make([]*ast.Source, len(req.Candidates))
		for i, code := range req.Candidates {
			if src, ok := core.ValidateCandidate(code); ok {
				srcs[i] = src
			}
		}
		return req.Candidates, srcs, nil
	}
	model := req.Model
	if model == "" {
		model = s.cfg.Model
	}
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return nil, nil, err
	}
	var client llm.Client
	if s.cfg.NewClient != nil {
		client, err = s.cfg.NewClient(profile.Name, req.Seed, []eval.Task{task})
	} else {
		client, err = llm.NewSimClient(profile, req.Seed, []eval.Task{task})
	}
	if err != nil {
		return nil, nil, err
	}
	codes := make([]string, 0, req.Samples)
	srcs := make([]*ast.Source, 0, req.Samples)
	for i := 0; i < req.Samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		resp, gerr := client.Generate(ctx, llm.GenerateRequest{
			TaskID:      task.ID,
			Spec:        task.Spec,
			SampleIndex: i,
		})
		if gerr != nil {
			if errors.Is(gerr, llm.ErrTransient) {
				continue // simulated API hiccup: skip the sample
			}
			return nil, nil, gerr
		}
		codes = append(codes, resp.Code)
		if src, ok := core.ValidateCandidate(resp.Code); ok {
			srcs = append(srcs, src)
		} else {
			srcs = append(srcs, nil)
		}
	}
	return codes, srcs, nil
}
