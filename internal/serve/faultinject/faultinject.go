// Package faultinject is a deterministic, hook-based fault-injection
// harness for the vfocusd robustness suite. Production code marks
// interesting execution points with Fire(point, key); tests Arm those
// points with an action (panic, cancel a captured context, sleep) that
// runs on the n-th matching Fire. When nothing is armed — the only state
// a production process ever sees — Fire is a single atomic load and
// allocates nothing, so hooks are safe to place on simulation hot paths.
//
// Actions are counted per (point, key) arm, so a test can target e.g.
// "the 3rd simulated case of exactly this candidate" and replay it
// identically under -race. The package deliberately has no build-tag
// variant: the disabled fast path is cheap enough to keep compiled in,
// and one binary serving both production and fault drills is exactly
// what the daemon's tests need.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Point names an instrumented execution site.
type Point string

// Instrumented sites. Keys at each site are documented next to the Fire
// call; "" arms match any key.
const (
	// PointSimCase fires once per (candidate, test case) on both the gang
	// and the solo fingerprint paths, keyed by the candidate's canonical
	// design hash. Panicking here models a simulator crash mid-candidate;
	// cancelling here models cancel-at-step-N.
	PointSimCase Point = "testbench.sim.case"
	// PointBind fires inside the single-flight binding resolution, keyed
	// by "". Panicking here models a binder crash while holding the claim.
	PointBind Point = "testbench.bind"
	// PointRankBatch fires before each ranking gang batch, keyed by "".
	PointRankBatch Point = "core.rank.batch"
	// PointSchedRun fires in a scheduler worker just before it invokes a
	// job's task, keyed by the job ID. Panicking here models a worker
	// crash outside the compute path's own recovery.
	PointSchedRun Point = "sched.worker.run"
	// PointStorePut fires inside the disk result-store adapter after the
	// temp record is fully written but before the atomic rename, keyed by
	// the entry's design hash. Cancelling here models a job killed
	// mid-publish; panicking models a crash with the temp file on disk.
	PointStorePut Point = "resultstore.disk.put"
	// PointLLMRequest fires in the reference LLM completions server after
	// the request is decoded and before it is dispatched to the backing
	// client, keyed by the request's task ID. Sleeping here models a slow
	// upstream (per-attempt timeout drills); panicking models a connection
	// torn before any response bytes.
	PointLLMRequest Point = "llm.server.request"
	// PointLLMResponse fires in the reference LLM completions server after
	// the response body is marshaled and before it is written, keyed by the
	// request's task ID. Panicking here models a connection torn between
	// headers and body.
	PointLLMResponse Point = "llm.server.response"
)

// armed flips on while at least one action is registered. It is the only
// state Fire reads on the disabled path.
var armed atomic.Bool

// Enabled reports whether any action is armed. Call sites whose key is
// costly to derive should guard the derivation with it.
func Enabled() bool { return armed.Load() }

type armKey struct {
	point Point
	key   string
}

type action struct {
	n      int64 // fire on the n-th matching call (1-based)
	seen   int64
	sticky bool // fire on every call from the n-th on, not just the n-th
	fn     func()
}

var (
	mu    sync.Mutex
	plans map[armKey][]*action
)

// Arm registers fn to run on the n-th (1-based) Fire of point whose key
// matches key; key "" matches every Fire of the point. fn runs on the
// firing goroutine and may panic, sleep, or cancel a captured context.
// Arms are one-shot: after firing they stay exhausted until Reset.
func Arm(point Point, key string, n int, fn func()) {
	arm(point, key, n, false, fn)
}

// ArmFrom is Arm, but sticky: fn runs on the n-th matching Fire and every
// one after it until Reset. Use it for faults the code under test retries
// past — e.g. a simulated crash that must also crash the solo re-run the
// gang falls back to, so the fault stays attached to its candidate.
func ArmFrom(point Point, key string, n int, fn func()) {
	arm(point, key, n, true, fn)
}

func arm(point Point, key string, n int, sticky bool, fn func()) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	if plans == nil {
		plans = make(map[armKey][]*action)
	}
	k := armKey{point: point, key: key}
	plans[k] = append(plans[k], &action{n: int64(n), sticky: sticky, fn: fn})
	armed.Store(true)
}

// Reset disarms everything. Tests must defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	plans = nil
	armed.Store(false)
}

// Fire reports the execution site (point, key) was reached. With nothing
// armed it is one atomic load; with arms present it runs (outside the
// registry lock) every matching action whose count just came due.
func Fire(point Point, key string) {
	if !armed.Load() {
		return
	}
	fire(point, key)
}

func fire(point Point, key string) {
	var due []func()
	keys := [2]armKey{{point: point, key: key}, {point: point, key: ""}}
	match := keys[:2]
	if key == "" {
		match = keys[:1] // the two candidates coincide: match once
	}
	mu.Lock()
	for _, k := range match {
		for _, a := range plans[k] {
			a.seen++
			if a.seen == a.n || (a.sticky && a.seen > a.n) {
				due = append(due, a.fn)
			}
		}
	}
	mu.Unlock()
	for _, fn := range due {
		fn()
	}
}
