package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/serve/faultinject"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
)

const gateTaskID = "cmb_gate_00_and2"

// gateCandidates is a hand-built buggy pool for the AND-gate task: golden,
// OR mutant, XOR mutant, a duplicate of the OR mutant, and one syntactically
// invalid submission that must stay index-aligned but never simulate.
func gateCandidates() []string {
	mk := func(expr string) string {
		return "module top_module(\n    input a,\n    input b,\n    output y\n);\n    assign y = " + expr + ";\nendmodule\n"
	}
	return []string{mk("a & b"), mk("a | b"), mk("a ^ b"), mk("a | b"), "module broken("}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	client := &http.Client{}
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		ts.Close()
		client.CloseIdleConnections()
	})
	return srv, ts, client
}

func submitJob(t *testing.T, client *http.Client, base string, req SubmitRequest) (string, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		// Drain and close so rejections don't pin the connection; callers
		// only look at the status line and headers.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return "", resp
	}
	var acc struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return acc.ID, resp
}

// streamEvents reads the job's whole NDJSON stream to its terminal event.
func streamEvents(t *testing.T, client *http.Client, base, id string) []Event {
	t.Helper()
	resp, err := client.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: HTTP %d", id, resp.StatusCode)
	}
	var evs []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return evs
			}
			t.Fatalf("stream %s: %v", id, err)
		}
		evs = append(evs, ev)
	}
}

func jobStatus(t *testing.T, client *http.Client, base, id string) string {
	t.Helper()
	resp, err := client.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Status
}

func terminal(evs []Event) *Event {
	if len(evs) == 0 {
		return nil
	}
	return &evs[len(evs)-1]
}

func clusterEvents(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Type == "cluster" {
			out = append(out, ev)
		}
	}
	return out
}

// TestSubmitStreamComplete drives the happy path end to end: submit an
// explicit candidate pool, stream it, and check the ranked clusters against
// a direct core.RankPool computation of the same job.
func TestSubmitStreamComplete(t *testing.T) {
	_, ts, client := newTestServer(t, Config{Workers: 2, QueueCap: 4, RankWorkers: 2})

	id, resp := submitJob(t, client, ts.URL, SubmitRequest{
		ID: "happy", TaskID: gateTaskID, Candidates: gateCandidates(), Seed: 7,
	})
	if id == "" {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	evs := streamEvents(t, client, ts.URL, id)
	fin := terminal(evs)
	if fin == nil || fin.Type != "done" || fin.Status != StatusCompleted {
		t.Fatalf("terminal event = %+v, want done/completed", fin)
	}
	if got := jobStatus(t, client, ts.URL, id); got != StatusCompleted {
		t.Fatalf("status = %q, want completed", got)
	}

	// Progress must be monotonic and end at done==total.
	last, total := 0, 0
	for _, ev := range evs {
		if ev.Type != "progress" {
			continue
		}
		if ev.Done <= last {
			t.Fatalf("progress not monotonic: %+v after done=%d", ev, last)
		}
		last, total = ev.Done, ev.Total
	}
	if last == 0 || last != total {
		t.Fatalf("progress ended at %d/%d", last, total)
	}

	// Clusters must match a direct rank of the same pool: {OR, OR-dup}
	// first, then the two singletons; the invalid candidate appears nowhere.
	want := directClusters(t, 7, gateCandidates())
	got := clusterEvents(evs)
	if len(got) != len(want) {
		t.Fatalf("cluster events: %d, want %d", len(got), len(want))
	}
	for i, cl := range want {
		ev := got[i]
		if ev.Rank != i+1 || ev.Score != cl.Score ||
			ev.Fingerprint != fmt.Sprintf("%016x", cl.Fingerprint) ||
			!reflect.DeepEqual(ev.Members, cl.Members) {
			t.Fatalf("cluster %d = %+v, want %+v", i, ev, cl)
		}
		if ev.Code == "" {
			t.Fatalf("cluster %d missing representative code", i)
		}
	}
	for _, ev := range got {
		for _, m := range ev.Members {
			if m == 4 {
				t.Fatal("invalid candidate clustered")
			}
		}
	}
}

// directClusters ranks the pool in-process, bypassing the daemon — the
// referee the streamed clusters must agree with.
func directClusters(t *testing.T, seed int64, codes []string) []core.Cluster {
	t.Helper()
	var task eval.Task
	for _, tk := range eval.Suite() {
		if tk.ID == gateTaskID {
			task = tk
		}
	}
	srcs := make([]*ast.Source, len(codes))
	for i, code := range codes {
		if src, ok := core.ValidateCandidate(code); ok {
			srcs[i] = src
		}
	}
	st := testbench.RankingCached(seed+int64(task.Index), 0, task.Ifc)
	golden, err := eval.ParseCached(task.Golden)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := core.RankPool(t.Context(), srcs, st, core.RankPoolConfig{
		Backend: testbench.BackendCompiled, Golden: golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool.Clusters
}

// TestGeneratedPool lets the server draw its candidate pool from the
// simulated LLM and checks the job completes with at least one cluster.
func TestGeneratedPool(t *testing.T) {
	_, ts, client := newTestServer(t, Config{Workers: 1, QueueCap: 2, RankWorkers: 2})
	id, resp := submitJob(t, client, ts.URL, SubmitRequest{TaskID: gateTaskID, Samples: 8, Seed: 3})
	if id == "" {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	evs := streamEvents(t, client, ts.URL, id)
	if fin := terminal(evs); fin == nil || fin.Status != StatusCompleted {
		t.Fatalf("terminal = %+v, want completed", terminal(evs))
	}
	if len(clusterEvents(evs)) == 0 {
		t.Fatal("generated pool produced no clusters")
	}
}

// TestSubmitRejections covers the submit-time error surface: unknown task
// (400), duplicate live ID (409), and bad JSON (400).
func TestSubmitRejections(t *testing.T) {
	_, ts, client := newTestServer(t, Config{Workers: 1, QueueCap: 4})

	if _, resp := submitJob(t, client, ts.URL, SubmitRequest{TaskID: "no_such_task"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown task: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err := client.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}

	// Hold the only worker inside the fault hook so "dup" stays live.
	defer faultinject.Reset()
	release := make(chan struct{})
	entered := make(chan struct{})
	faultinject.Arm(faultinject.PointSchedRun, "dup", 1, func() {
		close(entered)
		<-release
	})
	if id, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "dup", TaskID: gateTaskID, Candidates: gateCandidates()}); id == "" {
		t.Fatalf("first submit rejected: HTTP %d", resp.StatusCode)
	}
	<-entered
	if _, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "dup", TaskID: gateTaskID, Candidates: gateCandidates()}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: HTTP %d, want 409", resp.StatusCode)
	}
	close(release)
	if fin := terminal(streamEvents(t, client, ts.URL, "dup")); fin == nil || fin.Status != StatusCompleted {
		t.Fatalf("held job terminal = %+v", fin)
	}
}

// TestOverloadReturns429 saturates one worker slot and a one-deep queue,
// then asserts the next submit gets 429 with a positive Retry-After and no
// job record left behind; after the backlog drains, the same submit is
// accepted.
func TestOverloadReturns429(t *testing.T) {
	defer faultinject.Reset()
	_, ts, client := newTestServer(t, Config{Workers: 1, QueueCap: 1})

	release := make(chan struct{})
	entered := make(chan struct{})
	faultinject.Arm(faultinject.PointSchedRun, "hog", 1, func() {
		close(entered)
		<-release
	})
	if id, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "hog", TaskID: gateTaskID, Candidates: gateCandidates()}); id == "" {
		t.Fatalf("hog rejected: HTTP %d", resp.StatusCode)
	}
	<-entered // hog occupies the worker slot
	if id, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "queued", TaskID: gateTaskID, Candidates: gateCandidates()}); id == "" {
		t.Fatalf("queued rejected: HTTP %d", resp.StatusCode)
	}

	_, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "overflow", TaskID: gateTaskID, Candidates: gateCandidates()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: HTTP %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want positive integer", resp.Header.Get("Retry-After"))
	}
	// The rejected job must leave no trace.
	sresp, err := client.Get(ts.URL + "/jobs/overflow")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected job status: HTTP %d, want 404", sresp.StatusCode)
	}

	close(release)
	for _, id := range []string{"hog", "queued"} {
		if fin := terminal(streamEvents(t, client, ts.URL, id)); fin == nil || fin.Status != StatusCompleted {
			t.Fatalf("%s terminal = %+v", id, fin)
		}
	}
	if id, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "overflow", TaskID: gateTaskID, Candidates: gateCandidates()}); id == "" {
		t.Fatalf("post-drain resubmit rejected: HTTP %d", resp.StatusCode)
	}
	if fin := terminal(streamEvents(t, client, ts.URL, "overflow")); fin == nil || fin.Status != StatusCompleted {
		t.Fatalf("post-drain overflow terminal = %+v", fin)
	}
}

// TestCancelMidFlightThenRerunBitIdentical is the ISSUE's acceptance drill:
// cancel a job between gang batches through the real HTTP endpoint, observe
// the cancelled terminal event, then resubmit the identical job twice — the
// cancelled run must have left every process-wide cache reusable, so the
// re-runs stream bit-identical cluster sets that also match a direct
// in-process rank.
func TestCancelMidFlightThenRerunBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	_, ts, client := newTestServer(t, Config{Workers: 1, QueueCap: 4, RankWorkers: 1})

	// A pool big enough for several gang-2 batches.
	mk := func(expr string) string {
		return "module top_module(\n    input a,\n    input b,\n    output y\n);\n    assign y = " + expr + ";\nendmodule\n"
	}
	pool := []string{mk("a & b"), mk("a | b"), mk("a ^ b"), mk("~(a & b)"), mk("~(a | b)"), mk("~(a ^ b)"), mk("a"), mk("b")}
	req := SubmitRequest{TaskID: gateTaskID, Candidates: pool, Seed: 99, GangSize: 2}

	// The second gang batch fires the hook, which cancels the job through
	// the daemon's own endpoint — the full cancel-by-ID path, mid-compute.
	faultinject.Arm(faultinject.PointRankBatch, "", 2, func() {
		resp, err := client.Post(ts.URL+"/jobs/victim/cancel", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	})
	vreq := req
	vreq.ID = "victim"
	if id, resp := submitJob(t, client, ts.URL, vreq); id == "" {
		t.Fatalf("victim rejected: HTTP %d", resp.StatusCode)
	}
	evs := streamEvents(t, client, ts.URL, "victim")
	fin := terminal(evs)
	if fin == nil || fin.Type != "cancelled" || fin.Status != StatusCancelled {
		t.Fatalf("victim terminal = %+v, want cancelled", fin)
	}
	if len(clusterEvents(evs)) != 0 {
		t.Fatal("cancelled job streamed clusters")
	}
	faultinject.Reset()

	var runs [][]Event
	for i := 0; i < 2; i++ {
		rreq := req
		rreq.ID = fmt.Sprintf("rerun-%d", i)
		if id, resp := submitJob(t, client, ts.URL, rreq); id == "" {
			t.Fatalf("rerun-%d rejected: HTTP %d", i, resp.StatusCode)
		}
		revs := streamEvents(t, client, ts.URL, rreq.ID)
		if fin := terminal(revs); fin == nil || fin.Status != StatusCompleted {
			t.Fatalf("rerun-%d terminal = %+v", i, fin)
		}
		runs = append(runs, clusterEvents(revs))
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("post-cancel re-runs diverged:\n%+v\nvs\n%+v", runs[0], runs[1])
	}
	want := directClusters(t, 99, pool)
	if len(runs[0]) != len(want) {
		t.Fatalf("clusters after cancel: %d, want %d", len(runs[0]), len(want))
	}
	for i, cl := range want {
		if runs[0][i].Fingerprint != fmt.Sprintf("%016x", cl.Fingerprint) ||
			!reflect.DeepEqual(runs[0][i].Members, cl.Members) {
			t.Fatalf("cluster %d = %+v, want %+v", i, runs[0][i], cl)
		}
	}
}

// TestSlowClientDoesNotBlockJob opens a stream and refuses to read it while
// the job runs; the job must complete regardless (the event log decouples
// workers from readers), and a late full read must still replay everything.
func TestSlowClientDoesNotBlockJob(t *testing.T) {
	_, ts, client := newTestServer(t, Config{Workers: 1, QueueCap: 2})

	id, resp := submitJob(t, client, ts.URL, SubmitRequest{TaskID: gateTaskID, Candidates: gateCandidates(), Seed: 5})
	if id == "" {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	// Open the stream on its own connection and do not read from it.
	slow, err := (&http.Client{}).Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for jobStatus(t, client, ts.URL, id) != StatusCompleted {
		if time.Now().After(deadline) {
			t.Fatal("job did not complete while a slow client held a stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The stalled stream, read now, still replays the full log.
	var evs []Event
	dec := json.NewDecoder(slow.Body)
	for {
		var ev Event
		if derr := dec.Decode(&ev); derr != nil {
			break
		}
		evs = append(evs, ev)
	}
	if fin := terminal(evs); fin == nil || fin.Status != StatusCompleted {
		t.Fatalf("slow stream terminal = %+v, want completed", fin)
	}
	if len(clusterEvents(evs)) == 0 {
		t.Fatal("slow stream missed the cluster events")
	}
}

// TestShutdownMidDrainForceCancels holds a job mid-compute, shuts the
// server down with a tiny drain window, and asserts: new submits get 503,
// the stuck job's stream terminates with a cancelled event, Shutdown
// returns, and no goroutines leak from the whole exercise.
func TestShutdownMidDrainForceCancels(t *testing.T) {
	defer faultinject.Reset()
	before := runtime.NumGoroutine()

	// A private transport so the leak check below can retire this test's own
	// keep-alive connections (the shared DefaultTransport holds conns from
	// other tests that predate the baseline).
	tr := &http.Transport{}
	srv := New(Config{Workers: 1, QueueCap: 2, RankWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	client := &http.Client{Transport: tr}

	entered := make(chan struct{})
	hold := make(chan struct{})
	faultinject.Arm(faultinject.PointRankBatch, "", 1, func() {
		close(entered)
		<-hold
	})
	if id, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "stuck", TaskID: gateTaskID, Candidates: gateCandidates(), GangSize: 2}); id == "" {
		t.Fatalf("stuck rejected: HTTP %d", resp.StatusCode)
	}
	<-entered

	done := make(chan struct{})
	go func() {
		srv.Shutdown(10 * time.Millisecond)
		close(done)
	}()
	// Give the drain deadline time to expire and force-cancel the job's
	// context, then let the worker out of the hook; it must observe the
	// cancellation at the batch boundary.
	time.Sleep(200 * time.Millisecond)
	if _, resp := submitJob(t, client, ts.URL, SubmitRequest{ID: "late", TaskID: gateTaskID, Candidates: gateCandidates()}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d, want 503", resp.StatusCode)
	}
	close(hold)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung after force-cancel")
	}
	if fin := terminal(streamEvents(t, client, ts.URL, "stuck")); fin == nil || fin.Type != "cancelled" || fin.Status != StatusCancelled {
		t.Fatalf("stuck terminal = %+v, want cancelled", fin)
	}

	ts.Close()
	// Zero leaked goroutines: everything above (workers, streams, HTTP
	// plumbing) must wind down to the pre-test count. Idle-closing inside
	// the loop catches connections that go idle after the first sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		tr.CloseIdleConnections()
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
