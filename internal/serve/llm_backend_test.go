package serve

// Daemon-level wiring drills for the resilient HTTP LLM backend: a
// NewClient factory pointed at the embedded reference server must generate
// candidate pools bit-identical to the in-process simulated client, and
// /statsz must surface the client's resilience counters.

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/llm/httpclient"
)

// TestGeneratedPoolViaHTTPFactory points server-side candidate generation
// at the HTTP client (record mode, embedded reference server) and checks
// the ranked clusters match the simulated-client run of the same job.
func TestGeneratedPoolViaHTTPFactory(t *testing.T) {
	factory, stats, closeFn, err := httpclient.Factory(httpclient.Options{
		Mode:           httpclient.ModeRecord,
		FixtureDir:     t.TempDir(),
		AttemptTimeout: 5 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffCap:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	_, ts, client := newTestServer(t, Config{
		Workers: 1, QueueCap: 2, RankWorkers: 2,
		NewClient: factory,
		LLMDesc:   "record (embedded)",
		LLMStats:  func() map[string]int64 { return stats().Map() },
	})
	id, resp := submitJob(t, client, ts.URL, SubmitRequest{TaskID: gateTaskID, Samples: 8, Seed: 3})
	if id == "" {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	evs := streamEvents(t, client, ts.URL, id)
	if fin := terminal(evs); fin == nil || fin.Status != StatusCompleted {
		t.Fatalf("terminal = %+v, want completed", terminal(evs))
	}
	httpClusters := clusterEvents(evs)
	if len(httpClusters) == 0 {
		t.Fatal("HTTP-backed pool produced no clusters")
	}

	// Referee: the same job on the default simulated client. The reference
	// server wraps the same SimClient, so the generated pools — and hence
	// the ranked clusters — must agree exactly.
	_, ts2, client2 := newTestServer(t, Config{Workers: 1, QueueCap: 2, RankWorkers: 2})
	id2, resp2 := submitJob(t, client2, ts2.URL, SubmitRequest{TaskID: gateTaskID, Samples: 8, Seed: 3})
	if id2 == "" {
		t.Fatalf("referee submit rejected: HTTP %d", resp2.StatusCode)
	}
	simClusters := clusterEvents(streamEvents(t, client2, ts2.URL, id2))
	if len(simClusters) != len(httpClusters) {
		t.Fatalf("cluster counts differ: http=%d sim=%d", len(httpClusters), len(simClusters))
	}
	for i := range simClusters {
		if httpClusters[i].Fingerprint != simClusters[i].Fingerprint ||
			httpClusters[i].Score != simClusters[i].Score {
			t.Fatalf("cluster %d diverges: http=%+v sim=%+v", i, httpClusters[i], simClusters[i])
		}
	}

	// /statsz carries the LLM block and the remote-store counters.
	sresp, err := client.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/statsz: HTTP %d", sresp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if got := body["llm_backend"]; got != "record (embedded)" {
		t.Fatalf("llm_backend = %v", got)
	}
	llmBlock, ok := body["llm"].(map[string]any)
	if !ok {
		t.Fatalf("missing llm block in /statsz: %v", body)
	}
	if wire, _ := llmBlock["wire_requests"].(float64); wire <= 0 {
		t.Fatalf("llm wire_requests = %v, want > 0", llmBlock["wire_requests"])
	}
	for _, key := range []string{"remote_retries", "remote_breaker_trips", "remote_fast_fails"} {
		if _, present := body[key]; !present {
			t.Fatalf("/statsz missing %s: %v", key, body)
		}
	}
}
