// Package sched is a bounded job scheduler in the taskerlite shape: a
// fixed pool of worker slots pulls jobs from a hard-capped FIFO queue, each
// job runs under its own cancellable context, and shutdown is graceful —
// intake stops first, in-flight jobs drain under a deadline, stragglers are
// force-cancelled. The scheduler knows nothing about HTTP or ranking; it
// runs opaque Task functions and reports their outcomes through per-job
// callbacks, which is what keeps the pipeline core transport-agnostic.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve/faultinject"
)

// Sentinel errors. ErrQueueFull maps to HTTP 429 at the transport layer,
// ErrDraining to 503; both are rejections at submit time, before any
// resources are committed to the job.
var (
	ErrQueueFull = errors.New("sched: queue full")
	ErrDraining  = errors.New("sched: draining, intake closed")
	ErrDuplicate = errors.New("sched: duplicate job id")
	// ErrJobPanic wraps a panic recovered from a job's Task. The worker
	// survives; only the panicking job fails.
	ErrJobPanic = errors.New("sched: job panicked")
)

// Task is one unit of schedulable work. It must observe ctx: cancellation
// (cancel-by-ID, job deadline, force-cancelled shutdown) is delivered only
// through it.
type Task func(ctx context.Context) error

// Job couples a Task with its identity and completion callback.
type Job struct {
	// ID names the job for Cancel; it must be unique among live jobs.
	ID string
	// Run does the work.
	Run Task
	// Done, when set, is called exactly once with the job's outcome: nil on
	// success, the Task's error, the context error for jobs cancelled
	// before or during their run, or an ErrJobPanic-wrapped error for a
	// recovered panic. It runs on the worker goroutine.
	Done func(err error)
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of concurrent job slots (minimum 1).
	Workers int
	// QueueCap bounds the jobs accepted but not yet started (minimum 1).
	// Submits past the cap are rejected with ErrQueueFull.
	QueueCap int
	// JobTimeout, when positive, bounds each job's run measured from the
	// moment a worker picks it up (time spent queued does not count).
	JobTimeout time.Duration
}

type job struct {
	id     string
	run    Task
	done   func(error)
	ctx    context.Context
	cancel context.CancelFunc
}

// Scheduler is the bounded worker pool. Create with New, stop with
// Shutdown.
type Scheduler struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	queue    chan *job
	live     map[string]*job // queued + running, for Cancel
	running  int
	draining bool

	wg sync.WaitGroup
}

// New starts a scheduler with cfg.Workers worker goroutines.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueCap),
		live:       make(map[string]*job),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues j. It never blocks: a full queue rejects with
// ErrQueueFull, a draining scheduler with ErrDraining, a live duplicate ID
// with ErrDuplicate. The job is cancellable by ID from the moment Submit
// returns, including while it is still queued.
func (s *Scheduler) Submit(j Job) error {
	if j.Run == nil {
		return errors.New("sched: nil Run")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if _, dup := s.live[j.ID]; dup {
		return ErrDuplicate
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	jb := &job{id: j.ID, run: j.Run, done: j.Done, ctx: ctx, cancel: cancel}
	select {
	case s.queue <- jb:
	default:
		cancel()
		return ErrQueueFull
	}
	s.live[j.ID] = jb
	return nil
}

// Cancel cancels the job's context — whether it is still queued or already
// running — and reports whether the ID named a live job. A queued job is
// skipped by the worker that pops it; a running job unwinds at its next
// ctx check. Completion (with the context error) is still reported through
// the job's Done.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	jb := s.live[id]
	s.mu.Unlock()
	if jb == nil {
		return false
	}
	jb.cancel()
	return true
}

// Stats reports the current queue depth and running-job count.
func (s *Scheduler) Stats() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// Draining reports whether Shutdown has closed intake.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops intake, lets queued and in-flight jobs drain for up to
// drain, then force-cancels every remaining job and waits for the workers
// to exit. Safe to call once; Submit after Shutdown returns ErrDraining.
func (s *Scheduler) Shutdown(drain time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	// Submit holds mu and checks draining before sending, so no send can
	// race this close.
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(drain)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		// Drain deadline passed: force-cancel everything still live. The
		// workers observe their job contexts and exit; jobs still report
		// through Done with the cancellation error.
		s.baseCancel()
		<-done
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

func (s *Scheduler) runJob(jb *job) {
	defer func() {
		jb.cancel()
		s.mu.Lock()
		delete(s.live, jb.id)
		s.running--
		s.mu.Unlock()
	}()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	err := jb.ctx.Err()
	if err == nil {
		ctx := jb.ctx
		if s.cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
			defer cancel()
		}
		err = func() (err error) {
			// A panicking job must not take its worker slot down with it:
			// convert to a per-job error and keep serving.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("%w: %v", ErrJobPanic, r)
				}
			}()
			faultinject.Fire(faultinject.PointSchedRun, jb.id)
			return jb.run(ctx)
		}()
	}
	if jb.done != nil {
		jb.done(err)
	}
}
