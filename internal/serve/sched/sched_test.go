package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/serve/faultinject"
)

// outcome collects Done callbacks for assertions.
type outcome struct {
	mu   sync.Mutex
	errs map[string]error
	done chan string
}

func newOutcome(cap int) *outcome {
	return &outcome{errs: make(map[string]error), done: make(chan string, cap)}
}

func (o *outcome) fn(id string) func(error) {
	return func(err error) {
		o.mu.Lock()
		o.errs[id] = err
		o.mu.Unlock()
		o.done <- id
	}
}

// resubmit reuses a completed job's ID: it forgets the recorded outcome and
// retries past the window where the worker has reported Done but not yet
// retired the old job from the live set.
func (o *outcome) resubmit(t *testing.T, s *Scheduler, j Job) {
	t.Helper()
	o.mu.Lock()
	delete(o.errs, j.ID)
	o.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := s.Submit(j)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrDuplicate) || time.Now().After(deadline) {
			t.Fatalf("resubmit %s: %v", j.ID, err)
		}
		time.Sleep(time.Millisecond)
	}
}

func (o *outcome) wait(t *testing.T, id string) error {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		o.mu.Lock()
		err, ok := o.errs[id]
		o.mu.Unlock()
		if ok {
			return err
		}
		select {
		case <-o.done: // some job finished; re-check the map
		case <-deadline:
			t.Fatalf("job %s never completed", id)
		}
	}
}

// TestSubmitRunsJobs: submitted jobs run, complete with their Task's error,
// and leave the live set.
func TestSubmitRunsJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 4})
	defer s.Shutdown(time.Second)
	o := newOutcome(4)

	boom := errors.New("boom")
	if err := s.Submit(Job{ID: "ok", Run: func(context.Context) error { return nil }, Done: o.fn("ok")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: "bad", Run: func(context.Context) error { return boom }, Done: o.fn("bad")}); err != nil {
		t.Fatal(err)
	}
	if err := o.wait(t, "ok"); err != nil {
		t.Fatalf("ok job: %v", err)
	}
	if err := o.wait(t, "bad"); !errors.Is(err, boom) {
		t.Fatalf("bad job: %v, want boom", err)
	}
	// IDs are reusable once the old job retires from the live set.
	o.resubmit(t, s, Job{ID: "ok", Run: func(context.Context) error { return nil }, Done: o.fn("ok")})
	if err := o.wait(t, "ok"); err != nil {
		t.Fatalf("resubmitted job: %v", err)
	}
	if q, r := s.Stats(); q != 0 {
		t.Fatalf("stats after drain: queued=%d running=%d", q, r)
	}
}

// TestQueueOverflow fills every worker slot and the whole queue, then
// asserts the next submit is rejected with ErrQueueFull without blocking,
// and that releasing the workers drains everything accepted.
func TestQueueOverflow(t *testing.T) {
	const workers, queueCap = 2, 3
	s := New(Config{Workers: workers, QueueCap: queueCap})
	defer s.Shutdown(time.Second)
	o := newOutcome(workers + queueCap + 1)

	release := make(chan struct{})
	started := make(chan string, workers+queueCap)
	blocker := func(id string) Task {
		return func(ctx context.Context) error {
			started <- id
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("run-%d", i)
		if err := s.Submit(Job{ID: id, Run: blocker(id), Done: o.fn(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		<-started // both slots occupied before we fill the queue
	}
	for i := 0; i < queueCap; i++ {
		id := fmt.Sprintf("queued-%d", i)
		if err := s.Submit(Job{ID: id, Run: blocker(id), Done: o.fn(id)}); err != nil {
			t.Fatal(err)
		}
	}
	err := s.Submit(Job{ID: "overflow", Run: blocker("overflow")})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if q, r := s.Stats(); q != queueCap || r != workers {
		t.Fatalf("stats at saturation: queued=%d running=%d", q, r)
	}
	// Duplicate of a queued job is also rejected, not double-queued.
	if err := s.Submit(Job{ID: "queued-0", Run: blocker("dup")}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate submit: %v, want ErrDuplicate", err)
	}

	close(release)
	for i := 0; i < workers; i++ {
		if err := o.wait(t, fmt.Sprintf("run-%d", i)); err != nil {
			t.Fatalf("run-%d: %v", i, err)
		}
	}
	for i := 0; i < queueCap; i++ {
		if err := o.wait(t, fmt.Sprintf("queued-%d", i)); err != nil {
			t.Fatalf("queued-%d: %v", i, err)
		}
	}
}

// TestCancelQueuedAndRunning cancels one running job (it must unwind at its
// next ctx check with context.Canceled) and one still-queued job (the
// worker must skip its Task entirely and report the context error).
func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(time.Second)
	o := newOutcome(4)

	started := make(chan struct{})
	ran := make(chan string, 4)
	if err := s.Submit(Job{ID: "running", Done: o.fn("running"), Run: func(ctx context.Context) error {
		close(started)
		ran <- "running"
		<-ctx.Done()
		return ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Submit(Job{ID: "victim", Done: o.fn("victim"), Run: func(context.Context) error {
		ran <- "victim"
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: "after", Done: o.fn("after"), Run: func(context.Context) error {
		ran <- "after"
		return nil
	}}); err != nil {
		t.Fatal(err)
	}

	if !s.Cancel("victim") {
		t.Fatal("Cancel(victim) found no live job")
	}
	if !s.Cancel("running") {
		t.Fatal("Cancel(running) found no live job")
	}
	if s.Cancel("nope") {
		t.Fatal("Cancel of unknown id reported true")
	}

	if err := o.wait(t, "running"); !errors.Is(err, context.Canceled) {
		t.Fatalf("running job: %v, want context.Canceled", err)
	}
	if err := o.wait(t, "victim"); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued victim: %v, want context.Canceled", err)
	}
	if err := o.wait(t, "after"); err != nil {
		t.Fatalf("untouched job: %v", err)
	}
	for len(ran) > 0 {
		if id := <-ran; id == "victim" {
			t.Fatal("cancelled queued job's Task still ran")
		}
	}
}

// TestJobPanicKeepsWorkerAlive: a panicking Task fails with ErrJobPanic and
// the worker slot keeps serving later jobs.
func TestJobPanicKeepsWorkerAlive(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(time.Second)
	o := newOutcome(4)

	if err := s.Submit(Job{ID: "bomb", Done: o.fn("bomb"), Run: func(context.Context) error {
		panic("kaboom")
	}}); err != nil {
		t.Fatal(err)
	}
	if err := o.wait(t, "bomb"); !errors.Is(err, ErrJobPanic) {
		t.Fatalf("panicking job: %v, want ErrJobPanic", err)
	}
	if err := s.Submit(Job{ID: "next", Done: o.fn("next"), Run: func(context.Context) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := o.wait(t, "next"); err != nil {
		t.Fatalf("job after panic: %v", err)
	}
}

// TestInjectedSchedPanic drives the same recovery through the fault
// injection point instead of a cooperating Task.
func TestInjectedSchedPanic(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(time.Second)
	o := newOutcome(2)

	faultinject.Arm(faultinject.PointSchedRun, "target", 1, func() {
		panic("injected scheduler fault")
	})
	if err := s.Submit(Job{ID: "target", Done: o.fn("target"), Run: func(context.Context) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := o.wait(t, "target"); !errors.Is(err, ErrJobPanic) {
		t.Fatalf("injected panic: %v, want ErrJobPanic", err)
	}
	faultinject.Reset()
	o.resubmit(t, s, Job{ID: "target", Done: o.fn("target"), Run: func(context.Context) error { return nil }})
	if err := o.wait(t, "target"); err != nil {
		t.Fatalf("post-fault rerun: %v", err)
	}
}

// TestJobTimeout: a job exceeding JobTimeout is cancelled through its ctx
// and reports context.DeadlineExceeded.
func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 2, JobTimeout: 20 * time.Millisecond})
	defer s.Shutdown(time.Second)
	o := newOutcome(2)

	if err := s.Submit(Job{ID: "slow", Done: o.fn("slow"), Run: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	if err := o.wait(t, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow job: %v, want context.DeadlineExceeded", err)
	}
}

// TestShutdownDrains: Shutdown with headroom lets queued work finish; once
// draining, Submit rejects with ErrDraining.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	o := newOutcome(4)

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := s.Submit(Job{ID: id, Done: o.fn(id), Run: func(context.Context) error {
			time.Sleep(5 * time.Millisecond)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Shutdown(10 * time.Second)
	if err := s.Submit(Job{ID: "late", Run: func(context.Context) error { return nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v, want ErrDraining", err)
	}
	for i := 0; i < 3; i++ {
		if err := o.wait(t, fmt.Sprintf("j%d", i)); err != nil {
			t.Fatalf("j%d not drained cleanly: %v", i, err)
		}
	}
}

// TestShutdownForceCancels: a job ignoring the drain deadline is
// force-cancelled through its context; Shutdown still returns and the job
// still reports through Done.
func TestShutdownForceCancels(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 2})
	o := newOutcome(2)

	started := make(chan struct{})
	if err := s.Submit(Job{ID: "stuck", Done: o.fn("stuck"), Run: func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // refuses to finish until force-cancelled
		return ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	finished := make(chan struct{})
	go func() {
		s.Shutdown(10 * time.Millisecond)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung past the drain deadline")
	}
	if err := o.wait(t, "stuck"); !errors.Is(err, context.Canceled) {
		t.Fatalf("force-cancelled job: %v, want context.Canceled", err)
	}
}
