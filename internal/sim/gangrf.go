// Gang register-file lowering: one shared program drives every lane of a
// struct-of-arrays gang (soa.go). The lowering mirrors regfile.go construct
// by construct, but each node's kernel walk happens ONCE per activation and
// applies to all participating lanes in a tight per-lane inner loop, so the
// rexpr tree-walk, dispatch, and bounds checks are amortized across the gang
// instead of being paid per engine.
//
// Addressing: a gang run owns one shared val plane and one shared xz plane,
// partitioned lane-major with a fixed stride. The first frameWords of each
// lane's block alias that lane's Engine frame (net state + the lane design's
// own scratch/constants), so every existing per-engine mechanism — storeNet
// change records, NBA arena, fanout dispatch, reset, HashOutputH, and the
// solo closures of non-shared processes — works unchanged on the shared
// planes. Gang scratch and gang constants live past the largest lane frame
// (ext region); a node's absolute slot for lane l is
//
//	l*stride + off            (net leaves: frame-relative, layout-identical
//	                           across lanes by the layoutSig guard)
//	l*stride + extBase + off  (gang scratch/constants: ext-relative)
//
// Error discipline: the only runtime-erroring constructs regfile.go lowers
// are compile-time-determined (replication with an X/oversized count,
// part-selects with constant-bad bounds, indexed part-selects with a bad
// width). Gang lowering BAILS on those processes — they keep per-lane solo
// execution, which is always available — so gang expressions are total and
// pure. The one remaining runtime error, the for-loop iteration cap, is
// handled per lane: the lane records its error and drops out of every mask
// while the surviving lanes keep running. Purity also means evaluating an
// expression for a lane that doesn't need it is invisible, which keeps mask
// bookkeeping out of expressions entirely; only statements (if/case/for) and
// short-circuiting operators partition the lane mask, using a preallocated
// arena sized at compile time so the warm path stays allocation-free.
package sim

import (
	"fmt"

	"repro/internal/verilog/ast"
)

// gangProg is the lane-count-independent shared program for one Design.
// Compiled lazily, once, by Design.gangProgram.
type gangProg struct {
	extWords  int32        // per-lane gang scratch+constant words past the lane frame
	nwids     int32        // dynamic produced-width slots (per lane at run time)
	maskSlots int32        // worst-case concurrently outstanding lane masks
	consts    []constPatch // ext-relative; copied into every lane's ext region
	procs     []gproc      // aligned with Design.procs; run == nil: no gang form
}

type gproc struct {
	run  gstmt
	cont bool
}

// gstmt executes one lowered statement for every lane in m.
type gstmt func(g *gangRun, m []int32)

// gexpr is one lowered expression node of the shared program.
type gexpr struct {
	run     func(g *gangRun, m []int32) // nil: value already in place (leaf)
	off     int32                       // lane-relative word offset of the slot
	inFrame bool                        // frame-relative (net leaf) vs ext-relative
	nw      int32                       // slot size in words
	cap     int32                       // static upper bound on produced width
	sw      int32                       // produced width when wid < 0 (static)
	wid     int32                       // per-lane produced-width slot, -1 if static
	net     int32                       // net index for net leaves, else -1
}

func (e *gexpr) eval(g *gangRun, m []int32) {
	if e.run != nil {
		e.run(g, m)
	}
}

// width returns the node's produced width for lane l.
func (e *gexpr) width(g *gangRun, l int32) int32 {
	if e.wid < 0 {
		return e.sw
	}
	return g.wids[int(e.wid)*int(g.lanes)+int(l)]
}

func (e *gexpr) setWidth(g *gangRun, l int32, w int32) {
	g.wids[int(e.wid)*int(g.lanes)+int(l)] = w
}

// gangRun is the shared execution state of one SoA gang (built in soa.go).
type gangRun struct {
	lanes   int32 // lane slots (fixed at seal; retirement only shrinks masks)
	stride  int32 // words per lane block in the shared planes
	extBase int32 // lane-relative start of the gang ext region
	val, xz []uint64
	engines []*Engine // aliasing engines: engines[l] frames the lane's block
	wids    []int32   // nwids * lanes per-lane produced widths
	arena   []int32   // lane-mask arena; capacity fixed at seal, never grows
	laneErr []error   // terminal per-lane error (loop cap, no-converge, solo)

	// anyFailed gates the cheap per-lane liveness checks at effect sites
	// (stores, for-loop continuation). It is reset by the gang once failed
	// lanes have been retired out of the live set.
	anyFailed bool
}

// planesAt returns node e's slot slices for lane l.
func (g *gangRun) planesAt(e *gexpr, l int32) ([]uint64, []uint64) {
	off := l*g.stride + e.off
	if !e.inFrame {
		off += g.extBase
	}
	return g.val[off : off+e.nw], g.xz[off : off+e.nw]
}

// --- Lane-mask arena ---------------------------------------------------------

func (g *gangRun) mark() int      { return len(g.arena) }
func (g *gangRun) restore(mk int) { g.arena = g.arena[:mk] }

// maskCopy reserves an arena region holding a copy of m. The region stays
// valid (no reallocation) because the arena's capacity covers the program's
// static worst-case mask depth.
func (g *gangRun) maskCopy(m []int32) []int32 {
	base := len(g.arena)
	g.arena = append(g.arena, m...)
	return g.arena[base:len(g.arena):len(g.arena)]
}

// failLane records lane l's terminal error (first error wins, matching the
// solo engine where the first error aborts the run).
func (g *gangRun) failLane(l int32, err error) {
	if g.laneErr[l] == nil {
		g.laneErr[l] = err
		g.anyFailed = true
	}
}

// filterLive drops failed lanes from m in place. Only safe on frame-owned
// masks (a for-loop's own L) — never on a caller's mask.
func (g *gangRun) filterLive(m []int32) []int32 {
	k := 0
	for _, l := range m {
		if g.laneErr[l] == nil {
			m[k] = l
			k++
		}
	}
	return m[:k]
}

// --- Gang program compilation ------------------------------------------------

// gangProgram lazily lowers the design's processes into the shared gang
// program. Safe for concurrent use. Processes that cannot take the gang form
// (boxed fallback, or constructs carrying a baked runtime error) get a nil
// run and keep per-lane execution.
func (d *Design) gangProgram() *gangProg {
	d.gangOnce.Do(func() {
		c := &gcompiler{d: d, netIdx: d.gangNetIdx}
		prog := &gangProg{procs: make([]gproc, len(d.procs))}
		for k, p := range d.gangProcs {
			if p == nil || d.procArts[k].boxed {
				continue
			}
			cursorMark, constMark, widMark := c.cursor, len(c.consts), c.nwids
			c.curMask = 0
			run, cont, err := c.compileGangProcess(p)
			if err != nil {
				// No gang form: roll back this process's allocations and
				// leave the per-lane solo closure in charge.
				c.cursor, c.consts, c.nwids = cursorMark, c.consts[:constMark], widMark
				continue
			}
			prog.procs[k] = gproc{run: run, cont: cont}
		}
		prog.extWords = c.cursor
		prog.nwids = c.nwids
		prog.maskSlots = c.maxMask
		prog.consts = c.consts
		d.gangProg = prog
	})
	return d.gangProg
}

// gcompiler lowers one design's processes to the gang form. It mirrors
// compiler but allocates scratch/constants in the gang ext region
// (ext-relative offsets) and tracks the worst-case lane-mask nesting.
type gcompiler struct {
	d       *Design
	netIdx  map[*net]int32
	cursor  int32 // ext-relative bump allocator
	consts  []constPatch
	nwids   int32
	curMask int32
	maxMask int32
}

// errNoGang signals a construct without a gang form; the process falls back
// to per-lane execution. Never returned to callers of gangProgram.
var errNoGang = fmt.Errorf("gang: no gang form")

func (c *gcompiler) alloc(nwords int) int32 {
	off := c.cursor
	c.cursor += int32(nwords)
	return off
}

func (c *gcompiler) node(cap int) (*gexpr, error) {
	if cap > maxRegCap {
		return nil, fmt.Errorf("%w: intermediate capacity %d bits", errNoGang, cap)
	}
	if cap < 1 {
		cap = 1
	}
	nw := words(cap)
	return &gexpr{off: c.alloc(nw), nw: int32(nw), cap: int32(cap), wid: -1, net: -1}, nil
}

func (c *gcompiler) leafConst(v Value) *gexpr {
	w := v.Width()
	nw := words(w)
	off := c.alloc(nw)
	c.consts = append(c.consts, constPatch{off: off, v: v})
	return &gexpr{off: off, nw: int32(nw), cap: int32(w), sw: int32(w), wid: -1, net: -1}
}

func (c *gcompiler) widSlot() int32 {
	id := c.nwids
	c.nwids++
	return id
}

func (c *gcompiler) pushMasks(n int32) {
	c.curMask += n
	if c.curMask > c.maxMask {
		c.maxMask = c.curMask
	}
}

func (c *gcompiler) popMasks(n int32) { c.curMask -= n }

func (c *gcompiler) compileGangProcess(p *process) (gstmt, bool, error) {
	if p.cont {
		rsc := p.rhsScope
		if rsc == nil {
			rsc = p.scope
		}
		run, err := c.compileGAssign(p.lhs, p.scope, p.rhs, rsc, true)
		if err != nil {
			return nil, false, err
		}
		return run, true, nil
	}
	body, err := c.compileGStmt(p.body, p.scope)
	if err != nil {
		return nil, false, err
	}
	return body, false, nil
}

// --- Statements --------------------------------------------------------------

func (c *gcompiler) compileGStmt(st ast.Stmt, sc *scope) (gstmt, error) {
	switch x := st.(type) {
	case *ast.Block:
		subs := make([]gstmt, len(x.Stmts))
		for i, sub := range x.Stmts {
			cs, err := c.compileGStmt(sub, sc)
			if err != nil {
				return nil, err
			}
			subs[i] = cs
		}
		return func(g *gangRun, m []int32) {
			for _, cs := range subs {
				cs(g, m)
			}
		}, nil
	case *ast.AssignStmt:
		return c.compileGAssign(x.LHS, sc, x.RHS, sc, x.Blocking)
	case *ast.If:
		cond, err := c.compileGExpr(x.Cond, sc, 0)
		if err != nil {
			return nil, err
		}
		c.pushMasks(2)
		then, err := c.compileGStmt(x.Then, sc)
		if err != nil {
			return nil, err
		}
		var els gstmt
		if x.Else != nil {
			if els, err = c.compileGStmt(x.Else, sc); err != nil {
				return nil, err
			}
		}
		c.popMasks(2)
		return func(g *gangRun, m []int32) {
			cond.eval(g, m)
			mk := g.mark()
			// Partition: known-true lanes take then; known-false and unknown
			// both take else, matching the solo lowering.
			tb := len(g.arena)
			for _, l := range m {
				cv, cx := g.planesAt(cond, l)
				if truth, known := kbool3(cv, cx); known && truth {
					g.arena = append(g.arena, l)
				}
			}
			tm := g.arena[tb:len(g.arena):len(g.arena)]
			eb := len(g.arena)
			for _, l := range m {
				cv, cx := g.planesAt(cond, l)
				if truth, known := kbool3(cv, cx); !known || !truth {
					g.arena = append(g.arena, l)
				}
			}
			em := g.arena[eb:len(g.arena):len(g.arena)]
			if len(tm) > 0 {
				then(g, tm)
			}
			if els != nil && len(em) > 0 {
				els(g, em)
			}
			g.restore(mk)
		}, nil
	case *ast.Case:
		return c.compileGCase(x, sc)
	case *ast.For:
		return c.compileGFor(x, sc)
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", errNoGang, st)
	}
}

type gcaseItem struct {
	isDefault bool
	labels    []*gexpr
	body      gstmt
}

func (c *gcompiler) compileGCase(x *ast.Case, sc *scope) (gstmt, error) {
	subj, err := c.compileGExpr(x.Subject, sc, 0)
	if err != nil {
		return nil, err
	}
	c.pushMasks(2)
	items := make([]gcaseItem, len(x.Items))
	for i, item := range x.Items {
		body, err := c.compileGStmt(item.Body, sc)
		if err != nil {
			return nil, err
		}
		ci := gcaseItem{body: body}
		if item.Labels == nil {
			ci.isDefault = true
		} else {
			ci.labels = make([]*gexpr, len(item.Labels))
			for j, lbl := range item.Labels {
				cl, err := c.compileGExpr(lbl, sc, 0)
				if err != nil {
					return nil, err
				}
				ci.labels[j] = cl
			}
		}
		items[i] = ci
	}
	c.popMasks(2)
	kind := x.Kind
	return func(g *gangRun, m []int32) {
		subj.eval(g, m)
		mk := g.mark()
		// U: lanes still looking for a match. Progressive first-match — a
		// lane that matches item i never sees item i+1, exactly like the
		// solo walk; evaluating labels for lanes that matched an earlier
		// label of the SAME item is invisible (labels are pure).
		u := g.maskCopy(m)
		deflt := -1
		for i := range items {
			if items[i].isDefault {
				deflt = i
				continue
			}
			if len(u) == 0 {
				continue
			}
			imk := g.mark()
			for _, cl := range items[i].labels {
				cl.eval(g, u)
			}
			mb := len(g.arena)
			k := 0
			for _, l := range u {
				sv, sx := g.planesAt(subj, l)
				hit := false
				for _, cl := range items[i].labels {
					lv, lx := g.planesAt(cl, l)
					switch kind {
					case ast.CaseZ:
						hit = kcasezMatch(sv, sx, lv, lx, false)
					case ast.CaseX:
						hit = kcasezMatch(sv, sx, lv, lx, true)
					default:
						hit = kcaseEqual(sv, sx, lv, lx)
					}
					if hit {
						break
					}
				}
				if hit {
					g.arena = append(g.arena, l)
				} else {
					u[k] = l
					k++
				}
			}
			matched := g.arena[mb:len(g.arena):len(g.arena)]
			u = u[:k]
			if len(matched) > 0 {
				items[i].body(g, matched)
			}
			g.restore(imk)
		}
		if deflt >= 0 && len(u) > 0 {
			items[deflt].body(g, u)
		}
		g.restore(mk)
	}, nil
}

func (c *gcompiler) compileGFor(x *ast.For, sc *scope) (gstmt, error) {
	var initA, stepA gstmt
	var err error
	if x.Init != nil {
		if initA, err = c.compileGAssignCtx(x.Init.LHS, sc, x.Init.RHS, sc, true, 0); err != nil {
			return nil, err
		}
	}
	cond, err := c.compileGExpr(x.Cond, sc, 0)
	if err != nil {
		return nil, err
	}
	c.pushMasks(1)
	body, err := c.compileGStmt(x.Body, sc)
	if err != nil {
		return nil, err
	}
	if x.Step != nil {
		if stepA, err = c.compileGAssignCtx(x.Step.LHS, sc, x.Step.RHS, sc, true, 0); err != nil {
			return nil, err
		}
	}
	c.popMasks(1)
	return func(g *gangRun, m []int32) {
		mk := g.mark()
		if initA != nil {
			initA(g, m)
		}
		// L is frame-owned: only this loop mutates it (in place), so the
		// arena never grows per iteration.
		loop := g.maskCopy(m)
		for iter := 0; ; iter++ {
			if g.anyFailed {
				loop = g.filterLive(loop)
			}
			if len(loop) == 0 {
				g.restore(mk)
				return
			}
			if iter >= maxLoopIters {
				err := fmt.Errorf("%w: for loop exceeded %d iterations", ErrRuntime, maxLoopIters)
				for _, l := range loop {
					g.failLane(l, err)
				}
				g.restore(mk)
				return
			}
			cond.eval(g, loop)
			k := 0
			for _, l := range loop {
				cv, cx := g.planesAt(cond, l)
				if truth, known := kbool3(cv, cx); known && truth {
					loop[k] = l
					k++
				}
			}
			loop = loop[:k]
			if len(loop) == 0 {
				g.restore(mk)
				return
			}
			body(g, loop)
			if stepA != nil {
				stepA(g, loop)
			}
		}
	}, nil
}

// --- Lvalues and assignment --------------------------------------------------

// gdynTarget is one dynamically resolved lvalue target: index expressions in
// pre are evaluated under the statement's mask, then res reads them per lane.
// Resolvers never error — lvalue constructs with baked runtime errors bail to
// per-lane execution at compile time.
type gdynTarget struct {
	pre []*gexpr
	res func(g *gangRun, l int32) rtarget
}

type glval struct {
	total   int
	static  []rtarget
	dyn     []gdynTarget
	netIdxs []int32
}

func (lv *glval) mayTouch(idx int32) bool {
	for _, n := range lv.netIdxs {
		if n == idx {
			return true
		}
	}
	return false
}

func (lv *glval) isWholeNet(idx int32) bool {
	return len(lv.static) == 1 && !lv.static[0].skip &&
		lv.static[0].net == idx && lv.static[0].lo == 0
}

func (c *gcompiler) compileGAssign(lhs ast.Expr, lsc *scope, rhs ast.Expr, rsc *scope, blocking bool) (gstmt, error) {
	lv, err := c.compileGLValue(lhs, lsc)
	if err != nil {
		return nil, err
	}
	return c.finishGAssign(lv, rhs, rsc, blocking, lv.total)
}

func (c *gcompiler) compileGAssignCtx(lhs ast.Expr, lsc *scope, rhs ast.Expr, rsc *scope, blocking bool, ctx int) (gstmt, error) {
	lv, err := c.compileGLValue(lhs, lsc)
	if err != nil {
		return nil, err
	}
	return c.finishGAssign(lv, rhs, rsc, blocking, ctx)
}

func (c *gcompiler) finishGAssign(lv *glval, rhs ast.Expr, rsc *scope, blocking bool, ctx int) (gstmt, error) {
	rx, err := c.compileGExpr(rhs, rsc, ctx)
	if err != nil {
		return nil, err
	}
	// Same alias bounce as the solo lowering: a net-leaf RHS the lvalue can
	// partially overwrite is copied through scratch first.
	if rx.run == nil && rx.net >= 0 && lv.mayTouch(rx.net) && !lv.isWholeNet(rx.net) {
		src := rx
		bounced, err := c.node(int(src.cap))
		if err != nil {
			return nil, err
		}
		w := src.sw
		bounced.sw = w
		bounced.run = func(g *gangRun, m []int32) {
			for _, l := range m {
				dv, dx := g.planesAt(bounced, l)
				sv, sx := g.planesAt(src, l)
				kcopy(dv, dx, sv, sx, int(w), int(bounced.nw))
			}
		}
		rx = bounced
	}
	total := lv.total
	if lv.static != nil {
		targets := lv.static
		if len(targets) == 1 && !targets[0].skip && targets[0].width == total {
			t := targets[0]
			return func(g *gangRun, m []int32) {
				rx.eval(g, m)
				for _, l := range m {
					if g.anyFailed && g.laneErr[l] != nil {
						continue
					}
					en := g.engines[l]
					sv, sx := g.planesAt(rx, l)
					if blocking {
						en.storeNet(t.net, t.lo, sv, sx, 0, total)
					} else {
						en.queueNBA(t.net, t.lo, sv, sx, 0, total)
					}
				}
			}, nil
		}
		return func(g *gangRun, m []int32) {
			rx.eval(g, m)
			for _, l := range m {
				if g.anyFailed && g.laneErr[l] != nil {
					continue
				}
				en := g.engines[l]
				sv, sx := g.planesAt(rx, l)
				pos := total
				for _, t := range targets {
					pos -= t.width
					if t.skip {
						continue
					}
					if blocking {
						en.storeNet(t.net, t.lo, sv, sx, pos, t.width)
					} else {
						en.queueNBA(t.net, t.lo, sv, sx, pos, t.width)
					}
				}
			}
		}, nil
	}
	resolvers := lv.dyn
	return func(g *gangRun, m []int32) {
		// Mirror the solo order per lane: RHS first, then every index
		// expression, then resolve ALL targets, then store.
		rx.eval(g, m)
		for i := range resolvers {
			for _, pe := range resolvers[i].pre {
				pe.eval(g, m)
			}
		}
		for _, l := range m {
			if g.anyFailed && g.laneErr[l] != nil {
				continue
			}
			en := g.engines[l]
			en.targets = en.targets[:0]
			for i := range resolvers {
				en.targets = append(en.targets, resolvers[i].res(g, l))
			}
			sv, sx := g.planesAt(rx, l)
			pos := total
			for _, t := range en.targets {
				pos -= t.width
				if t.skip {
					continue
				}
				if blocking {
					en.storeNet(t.net, t.lo, sv, sx, pos, t.width)
				} else {
					en.queueNBA(t.net, t.lo, sv, sx, pos, t.width)
				}
			}
		}
	}, nil
}

func (c *gcompiler) compileGLValue(lhs ast.Expr, sc *scope) (*glval, error) {
	switch x := lhs.(type) {
	case *ast.Ident:
		n, ok := sc.lookupNet(x.Name)
		if !ok {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", errNoGang, x.Name)
		}
		idx := c.netIdx[n]
		return &glval{
			total:   n.width,
			static:  []rtarget{{net: idx, lo: 0, width: n.width}},
			netIdxs: []int32{idx},
		}, nil
	case *ast.Index:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%w: nested lvalue selects", errNoGang)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", errNoGang, base.Name)
		}
		idx, lsb, width := c.netIdx[n], n.lsb, n.width
		if iv, isConst := constFold(x.Idx, sc); isConst {
			u, known := iv.Uint64()
			t := rtarget{skip: true, width: 1}
			if known {
				if lo := int(u) - lsb; lo >= 0 && lo < width {
					t = rtarget{net: idx, lo: lo, width: 1}
				}
			}
			return &glval{total: 1, static: []rtarget{t}, netIdxs: []int32{idx}}, nil
		}
		cidx, err := c.compileGExpr(x.Idx, sc, 0)
		if err != nil {
			return nil, err
		}
		res := func(g *gangRun, l int32) rtarget {
			iv, known := kfits64(g.planesAt(cidx, l))
			if !known {
				return rtarget{skip: true, width: 1}
			}
			lo := int(iv) - lsb
			if lo < 0 || lo >= width {
				return rtarget{skip: true, width: 1}
			}
			return rtarget{net: idx, lo: lo, width: 1}
		}
		return &glval{total: 1, dyn: []gdynTarget{{pre: []*gexpr{cidx}, res: res}}, netIdxs: []int32{idx}}, nil
	case *ast.PartSel:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%w: nested lvalue selects", errNoGang)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", errNoGang, base.Name)
		}
		idx, lsb := c.netIdx[n], n.lsb
		av, aConst := constFold(x.A, sc)
		bv, bConst := constFold(x.B, sc)
		if aConst && bConst {
			lo, rw, known, rtErr := partSelBoundsVals(x.Kind, av, bv, lsb)
			if rtErr != nil {
				// Errors every evaluation in the solo form: no gang form.
				return nil, fmt.Errorf("%w: erroring part-select bounds", errNoGang)
			}
			t := rtarget{skip: true, width: rw}
			if known {
				t = rtarget{net: idx, lo: lo, width: rw}
			}
			return &glval{total: rw, static: []rtarget{t}, netIdxs: []int32{idx}}, nil
		}
		if x.Kind == ast.SelConst || !bConst {
			return nil, fmt.Errorf("%w: dynamic part-select bounds", errNoGang)
		}
		wv, okw := bv.Uint64()
		if !okw || wv == 0 {
			return nil, fmt.Errorf("%w: erroring indexed part-select width", errNoGang)
		}
		ca, err := c.compileGExpr(x.A, sc, 0)
		if err != nil {
			return nil, err
		}
		w := int(wv)
		minus := x.Kind == ast.SelMinus
		res := func(g *gangRun, l int32) rtarget {
			baseV, known := kfits64(g.planesAt(ca, l))
			if !known {
				return rtarget{skip: true, width: w}
			}
			lo := int(baseV) - lsb
			if minus {
				lo = int(baseV) - w + 1 - lsb
			}
			return rtarget{net: idx, lo: lo, width: w}
		}
		return &glval{total: w, dyn: []gdynTarget{{pre: []*gexpr{ca}, res: res}}, netIdxs: []int32{idx}}, nil
	case *ast.Concat:
		out := &glval{}
		allStatic := true
		var parts []*glval
		for _, part := range x.Parts {
			lv, err := c.compileGLValue(part, sc)
			if err != nil {
				return nil, err
			}
			parts = append(parts, lv)
			out.total += lv.total
			out.netIdxs = append(out.netIdxs, lv.netIdxs...)
			if lv.static == nil {
				allStatic = false
			}
		}
		if allStatic {
			for _, lv := range parts {
				out.static = append(out.static, lv.static...)
			}
			return out, nil
		}
		for _, lv := range parts {
			if lv.static != nil {
				for _, t := range lv.static {
					t := t
					out.dyn = append(out.dyn, gdynTarget{res: func(g *gangRun, l int32) rtarget { return t }})
				}
			} else {
				out.dyn = append(out.dyn, lv.dyn...)
			}
		}
		out.static = nil
		return out, nil
	default:
		return nil, fmt.Errorf("%w: expression is not a valid lvalue", errNoGang)
	}
}

// --- Expressions -------------------------------------------------------------

func (c *gcompiler) compileGExpr(e ast.Expr, sc *scope, ctx int) (*gexpr, error) {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := sc.params[x.Name]; ok {
			return c.leafConst(v), nil
		}
		if n, ok := sc.lookupNet(x.Name); ok {
			idx := c.netIdx[n]
			cn := &c.d.nets[idx]
			return &gexpr{off: cn.off, inFrame: true, nw: cn.nw,
				cap: int32(n.width), sw: int32(n.width), wid: -1, net: idx}, nil
		}
		return nil, fmt.Errorf("%w: unknown identifier %q", errNoGang, x.Name)
	case *ast.Number:
		return c.leafConst(numberValue(x)), nil
	case *ast.Unary:
		return c.compileGUnary(x, sc, ctx)
	case *ast.Binary:
		return c.compileGBinary(x, sc, ctx)
	case *ast.Ternary:
		return c.compileGTernary(x, sc, ctx)
	case *ast.Concat:
		return c.compileGConcat(x, sc)
	case *ast.Repl:
		return c.compileGRepl(x, sc)
	case *ast.Index:
		return c.compileGIndex(x, sc)
	case *ast.PartSel:
		return c.compileGPartSel(x, sc)
	default:
		return nil, fmt.Errorf("%w: unsupported expression %T", errNoGang, e)
	}
}

func (c *gcompiler) compileGUnary(x *ast.Unary, sc *scope, ctx int) (*gexpr, error) {
	op := x.Op
	switch op {
	case ast.UnaryPlus:
		// Identity: reuse the operand slot, only the width context extends.
		child, err := c.compileGExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		if child.wid < 0 {
			out := *child
			out.sw = max(child.sw, int32(ctx))
			out.cap = max(child.cap, int32(ctx))
			return &out, nil
		}
		out := &gexpr{off: child.off, inFrame: child.inFrame, nw: child.nw,
			cap: max(child.cap, int32(ctx)), wid: c.widSlot(), net: -1}
		cw := int32(ctx)
		out.run = func(g *gangRun, m []int32) {
			child.eval(g, m)
			for _, l := range m {
				out.setWidth(g, l, max(child.width(g, l), cw))
			}
		}
		return out, nil
	case ast.UnaryMinus, ast.BitNot:
		child, err := c.compileGExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		out, err := c.node(int(max(child.cap, int32(ctx))))
		if err != nil {
			return nil, err
		}
		neg := op == ast.UnaryMinus
		cw := int32(ctx)
		if child.wid < 0 {
			out.sw = max(child.sw, cw)
		} else {
			out.wid = c.widSlot()
		}
		out.run = func(g *gangRun, m []int32) {
			child.eval(g, m)
			nw := int(out.nw)
			for _, l := range m {
				w := max(child.width(g, l), cw)
				dv, dx := g.planesAt(out, l)
				sv, sx := g.planesAt(child, l)
				if neg {
					kneg(dv, dx, sv, sx, int(w), nw)
				} else {
					knot(dv, dx, sv, sx, int(w), nw)
				}
				if out.wid >= 0 {
					out.setWidth(g, l, w)
				}
			}
		}
		return out, nil
	default:
		// Logical not and reductions: self-determined operand, 1-bit result.
		child, err := c.compileGExpr(x.X, sc, 0)
		if err != nil {
			return nil, err
		}
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.sw = 1
		out.run = func(g *gangRun, m []int32) {
			child.eval(g, m)
			nw := int(out.nw)
			for _, l := range m {
				wc := child.width(g, l)
				sv, sx := g.planesAt(child, l)
				dv, dx := g.planesAt(out, l)
				var code uint8
				switch op {
				case ast.LogicalNot:
					truth, known := kbool3(sv, sx)
					switch {
					case !known:
						code = 2
					case !truth:
						code = 1
					}
				case ast.RedAnd, ast.RedNand:
					any0, anyXZ := kredAnd(sv, sx, int(wc))
					switch {
					case any0:
						code = 0
					case anyXZ:
						code = 2
					default:
						code = 1
					}
					if op == ast.RedNand && code != 2 {
						code ^= 1
					}
				case ast.RedOr, ast.RedNor:
					any1, anyXZ := kredOr(sv, sx)
					switch {
					case any1:
						code = 1
					case anyXZ:
						code = 2
					default:
						code = 0
					}
					if op == ast.RedNor && code != 2 {
						code ^= 1
					}
				case ast.RedXor, ast.RedXnor:
					parity, anyXZ := kredXor(sv, sx)
					if anyXZ {
						code = 2
					} else {
						code = uint8(parity)
						if op == ast.RedXnor {
							code ^= 1
						}
					}
				default:
					code = 2
				}
				kset1(dv, dx, nw, code)
			}
		}
		return out, nil
	}
}

func (c *gcompiler) compileGBinary(x *ast.Binary, sc *scope, ctx int) (*gexpr, error) {
	op := x.Op
	switch op {
	case ast.Add, ast.Sub, ast.Mul, ast.Div, ast.Mod,
		ast.BitAnd, ast.BitOr, ast.BitXor, ast.BitXnor:
		a, err := c.compileGExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		b, err := c.compileGExpr(x.Y, sc, ctx)
		if err != nil {
			return nil, err
		}
		capb := int(max(max(a.cap, b.cap), int32(ctx)))
		out, err := c.node(capb)
		if err != nil {
			return nil, err
		}
		var aux *gexpr
		if op == ast.Div || op == ast.Mod {
			if aux, err = c.node(capb); err != nil {
				return nil, err
			}
		}
		cw := int32(ctx)
		if a.wid < 0 && b.wid < 0 {
			out.sw = max(max(a.sw, b.sw), cw)
		} else {
			out.wid = c.widSlot()
		}
		out.run = func(g *gangRun, m []int32) {
			a.eval(g, m)
			b.eval(g, m)
			nw := int(out.nw)
			for _, l := range m {
				w := int(max(max(a.width(g, l), b.width(g, l)), cw))
				dv, dx := g.planesAt(out, l)
				av, ax := g.planesAt(a, l)
				bv, bx := g.planesAt(b, l)
				switch op {
				case ast.Add:
					kadd(dv, dx, av, ax, bv, bx, w, nw, false)
				case ast.Sub:
					kadd(dv, dx, av, ax, bv, bx, w, nw, true)
				case ast.Mul:
					kmul(dv, dx, av, ax, bv, bx, w, nw)
				case ast.Div, ast.Mod:
					if kanyNZ(ax) || kanyNZ(bx) || !kanyNZ(bv) {
						ksetX(dv, dx, w, nw)
						break
					}
					rv, rx := g.planesAt(aux, l)
					wn := words(w)
					if op == ast.Div {
						kdivmod(dv, rv, av, bv, w)
					} else {
						kdivmod(rv, dv, av, bv, w)
					}
					for i := 0; i < wn; i++ {
						dx[i], rx[i] = 0, 0
					}
					kfinish(dv, dx, w, nw)
				case ast.BitAnd:
					kand(dv, dx, av, ax, bv, bx, w, nw)
				case ast.BitOr:
					kor(dv, dx, av, ax, bv, bx, w, nw)
				case ast.BitXor:
					kxor(dv, dx, av, ax, bv, bx, w, nw, false)
				case ast.BitXnor:
					kxor(dv, dx, av, ax, bv, bx, w, nw, true)
				}
				if out.wid >= 0 {
					out.setWidth(g, l, int32(w))
				}
			}
		}
		return out, nil
	case ast.Shl, ast.Shr, ast.AShl, ast.AShr:
		a, err := c.compileGExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		b, err := c.compileGExpr(x.Y, sc, 0) // shift amount is self-determined
		if err != nil {
			return nil, err
		}
		out, err := c.node(int(max(a.cap, int32(ctx))))
		if err != nil {
			return nil, err
		}
		right := op == ast.Shr || op == ast.AShr
		arith := op == ast.AShr
		cw := int32(ctx)
		if a.wid < 0 {
			out.sw = max(a.sw, cw)
		} else {
			out.wid = c.widSlot()
		}
		out.run = func(g *gangRun, m []int32) {
			a.eval(g, m)
			b.eval(g, m)
			nw := int(out.nw)
			for _, l := range m {
				w := int(max(a.width(g, l), cw))
				dv, dx := g.planesAt(out, l)
				av, ax := g.planesAt(a, l)
				bv, bx := g.planesAt(b, l)
				amt, ok := kfits64(bv, bx)
				switch {
				case !ok:
					ksetX(dv, dx, w, nw)
				case amt >= uint64(w):
					kzero(dv, dx, nw)
					if arith && kbit(av, ax, w, w-1) == 1 {
						for i := 0; i < words(w); i++ {
							dv[i] = ^uint64(0)
						}
						kfinish(dv, dx, w, nw)
					}
				default:
					kshift(dv, dx, av, ax, w, nw, int(amt), right, arith)
				}
				if out.wid >= 0 {
					out.setWidth(g, l, int32(w))
				}
			}
		}
		return out, nil
	case ast.LogAnd, ast.LogOr:
		a, err := c.compileGExpr(x.X, sc, 0)
		if err != nil {
			return nil, err
		}
		c.pushMasks(1)
		b, err := c.compileGExpr(x.Y, sc, 0)
		if err != nil {
			return nil, err
		}
		c.popMasks(1)
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.sw = 1
		isAnd := op == ast.LogAnd
		out.run = func(g *gangRun, m []int32) {
			a.eval(g, m)
			// Lanes whose left operand decides the result skip the right
			// operand, preserving the solo short-circuit per lane.
			mk := g.mark()
			bb := len(g.arena)
			for _, l := range m {
				av, ax := g.planesAt(a, l)
				at, ak := kbool3(av, ax)
				if ak && ((isAnd && !at) || (!isAnd && at)) {
					continue
				}
				g.arena = append(g.arena, l)
			}
			mb := g.arena[bb:len(g.arena):len(g.arena)]
			if len(mb) > 0 {
				b.eval(g, mb)
			}
			nw := int(out.nw)
			for _, l := range m {
				dv, dx := g.planesAt(out, l)
				av, ax := g.planesAt(a, l)
				at, ak := kbool3(av, ax)
				if ak {
					if isAnd && !at {
						kset1(dv, dx, nw, 0)
						continue
					}
					if !isAnd && at {
						kset1(dv, dx, nw, 1)
						continue
					}
				}
				bv, bx := g.planesAt(b, l)
				bt, bk := kbool3(bv, bx)
				var code uint8
				if isAnd {
					switch {
					case (ak && !at) || (bk && !bt):
						code = 0
					case ak && bk:
						if at && bt {
							code = 1
						}
					default:
						code = 2
					}
				} else {
					switch {
					case (ak && at) || (bk && bt):
						code = 1
					case ak && bk:
						if at || bt {
							code = 1
						}
					default:
						code = 2
					}
				}
				kset1(dv, dx, nw, code)
			}
			g.restore(mk)
		}
		return out, nil
	default:
		// Comparisons: operands sized to each other, result is 1 bit.
		a, err := c.compileGExpr(x.X, sc, 0)
		if err != nil {
			return nil, err
		}
		b, err := c.compileGExpr(x.Y, sc, 0)
		if err != nil {
			return nil, err
		}
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.sw = 1
		out.run = func(g *gangRun, m []int32) {
			a.eval(g, m)
			b.eval(g, m)
			nw := int(out.nw)
			for _, l := range m {
				dv, dx := g.planesAt(out, l)
				av, ax := g.planesAt(a, l)
				bv, bx := g.planesAt(b, l)
				var code uint8
				switch op {
				case ast.CaseEq, ast.CaseNeq:
					eq := kcaseEqual(av, ax, bv, bx)
					if eq == (op == ast.CaseEq) {
						code = 1
					}
				default:
					if kanyNZ(ax) || kanyNZ(bx) {
						code = 2
						break
					}
					cmp := kcmp(av, bv)
					var truth bool
					switch op {
					case ast.Eq:
						truth = cmp == 0
					case ast.Neq:
						truth = cmp != 0
					case ast.Lt:
						truth = cmp < 0
					case ast.Leq:
						truth = cmp <= 0
					case ast.Gt:
						truth = cmp > 0
					case ast.Geq:
						truth = cmp >= 0
					}
					if truth {
						code = 1
					}
				}
				kset1(dv, dx, nw, code)
			}
		}
		return out, nil
	}
}

func (c *gcompiler) compileGTernary(x *ast.Ternary, sc *scope, ctx int) (*gexpr, error) {
	cond, err := c.compileGExpr(x.Cond, sc, 0)
	if err != nil {
		return nil, err
	}
	c.pushMasks(2)
	then, err := c.compileGExpr(x.Then, sc, ctx)
	if err != nil {
		return nil, err
	}
	els, err := c.compileGExpr(x.Else, sc, ctx)
	if err != nil {
		return nil, err
	}
	c.popMasks(2)
	out, err := c.node(int(max(then.cap, els.cap)))
	if err != nil {
		return nil, err
	}
	if then.wid < 0 && els.wid < 0 && then.sw == els.sw {
		out.sw = then.sw
	} else {
		out.wid = c.widSlot()
	}
	out.run = func(g *gangRun, m []int32) {
		cond.eval(g, m)
		// Each branch is evaluated only under the lanes that need it
		// (known-deciding lanes skip the other branch), so nested ternary
		// cascades stay linear like the solo short-circuit. Unknown-cond
		// lanes land in both masks — branch evaluation is pure.
		mk := g.mark()
		tb := len(g.arena)
		for _, l := range m {
			cv, cx := g.planesAt(cond, l)
			if truth, known := kbool3(cv, cx); truth || !known {
				g.arena = append(g.arena, l)
			}
		}
		tm := g.arena[tb:len(g.arena):len(g.arena)]
		eb := len(g.arena)
		for _, l := range m {
			cv, cx := g.planesAt(cond, l)
			if truth, known := kbool3(cv, cx); !truth || !known {
				g.arena = append(g.arena, l)
			}
		}
		em := g.arena[eb:len(g.arena):len(g.arena)]
		if len(tm) > 0 {
			then.eval(g, tm)
		}
		if len(em) > 0 {
			els.eval(g, em)
		}
		nw := int(out.nw)
		for _, l := range m {
			cv, cx := g.planesAt(cond, l)
			truth, known := kbool3(cv, cx)
			dv, dx := g.planesAt(out, l)
			var w int32
			if known {
				br := then
				if !truth {
					br = els
				}
				w = br.width(g, l)
				sv, sx := g.planesAt(br, l)
				kcopy(dv, dx, sv, sx, int(w), nw)
			} else {
				w = max(then.width(g, l), els.width(g, l))
				tv, tx := g.planesAt(then, l)
				ev, ex := g.planesAt(els, l)
				kmergeTernary(dv, dx, tv, tx, ev, ex, int(w), nw)
			}
			if out.wid >= 0 {
				out.setWidth(g, l, w)
			}
		}
		g.restore(mk)
	}
	return out, nil
}

func (c *gcompiler) compileGConcat(x *ast.Concat, sc *scope) (*gexpr, error) {
	parts := make([]*gexpr, len(x.Parts))
	capSum := 0
	allStatic := true
	staticSum := int32(0)
	for i, pe := range x.Parts {
		cp, err := c.compileGExpr(pe, sc, 0)
		if err != nil {
			return nil, err
		}
		parts[i] = cp
		capSum += int(cp.cap)
		if cp.wid < 0 {
			staticSum += cp.sw
		} else {
			allStatic = false
		}
	}
	out, err := c.node(capSum)
	if err != nil {
		return nil, err
	}
	if allStatic {
		out.sw = staticSum
	} else {
		out.wid = c.widSlot()
	}
	out.run = func(g *gangRun, m []int32) {
		for _, cp := range parts {
			cp.eval(g, m)
		}
		nw := int(out.nw)
		for _, l := range m {
			total := int32(0)
			for _, cp := range parts {
				total += cp.width(g, l)
			}
			dv, dx := g.planesAt(out, l)
			kzero(dv, dx, nw)
			pos := total
			for _, cp := range parts {
				w := cp.width(g, l)
				pos -= w
				sv, sx := g.planesAt(cp, l)
				kblit(dv, dx, int(pos), sv, sx, 0, int(w))
			}
			if out.wid >= 0 {
				out.setWidth(g, l, total)
			}
		}
	}
	return out, nil
}

func (c *gcompiler) compileGRepl(x *ast.Repl, sc *scope) (*gexpr, error) {
	cntV, isConst := constFold(x.Count, sc)
	if !isConst {
		return nil, fmt.Errorf("%w: non-constant replication count", errNoGang)
	}
	n, ok := cntV.Uint64()
	if !ok || n > 1<<16 {
		// The solo form errors every evaluation: no gang form.
		return nil, fmt.Errorf("%w: erroring replication count", errNoGang)
	}
	child, err := c.compileGExpr(x.Value, sc, 0)
	if err != nil {
		return nil, err
	}
	out, err := c.node(int(n) * int(child.cap))
	if err != nil {
		return nil, err
	}
	cnt := int32(n)
	if child.wid < 0 {
		out.sw = cnt * child.sw
	} else {
		out.wid = c.widSlot()
	}
	out.run = func(g *gangRun, m []int32) {
		child.eval(g, m)
		nw := int(out.nw)
		for _, l := range m {
			wv := child.width(g, l)
			dv, dx := g.planesAt(out, l)
			kzero(dv, dx, nw)
			sv, sx := g.planesAt(child, l)
			for i := int32(0); i < cnt; i++ {
				kblit(dv, dx, int(i*wv), sv, sx, 0, int(wv))
			}
			if out.wid >= 0 {
				out.setWidth(g, l, cnt*wv)
			}
		}
	}
	return out, nil
}

func (c *gcompiler) compileGIndex(x *ast.Index, sc *scope) (*gexpr, error) {
	base, err := c.compileGExpr(x.X, sc, 0)
	if err != nil {
		return nil, err
	}
	lsb := exprBaseLSB(x.X, sc)
	cidx, err := c.compileGExpr(x.Idx, sc, 0)
	if err != nil {
		return nil, err
	}
	out, err := c.node(1)
	if err != nil {
		return nil, err
	}
	out.sw = 1
	out.run = func(g *gangRun, m []int32) {
		base.eval(g, m)
		cidx.eval(g, m)
		nw := int(out.nw)
		for _, l := range m {
			wb := base.width(g, l)
			dv, dx := g.planesAt(out, l)
			iv, known := kfits64(g.planesAt(cidx, l))
			if !known {
				kset1(dv, dx, nw, 2)
				continue
			}
			lo := int(iv) - lsb
			if lo < 0 || lo >= int(wb) {
				kset1(dv, dx, nw, 2)
				continue
			}
			sv, sx := g.planesAt(base, l)
			kset1(dv, dx, nw, kbit(sv, sx, int(wb), lo))
		}
	}
	return out, nil
}

func (c *gcompiler) compileGPartSel(x *ast.PartSel, sc *scope) (*gexpr, error) {
	base, err := c.compileGExpr(x.X, sc, 0)
	if err != nil {
		return nil, err
	}
	lsb := exprBaseLSB(x.X, sc)
	av, aConst := constFold(x.A, sc)
	bv, bConst := constFold(x.B, sc)
	if aConst && bConst {
		lo, w, known, rtErr := partSelBoundsVals(x.Kind, av, bv, lsb)
		if rtErr != nil {
			return nil, fmt.Errorf("%w: erroring part-select bounds", errNoGang)
		}
		out, err := c.node(w)
		if err != nil {
			return nil, err
		}
		out.sw = int32(w)
		out.run = func(g *gangRun, m []int32) {
			base.eval(g, m)
			nw := int(out.nw)
			for _, l := range m {
				dv, dx := g.planesAt(out, l)
				if !known {
					ksetX(dv, dx, w, nw)
					continue
				}
				wb := base.width(g, l)
				sv, sx := g.planesAt(base, l)
				kslice(dv, dx, w, nw, sv, sx, int(wb), lo)
			}
		}
		return out, nil
	}
	if x.Kind == ast.SelConst || !bConst {
		return nil, fmt.Errorf("%w: dynamic part-select bounds", errNoGang)
	}
	wv, okw := bv.Uint64()
	if !okw || wv == 0 {
		return nil, fmt.Errorf("%w: erroring indexed part-select width", errNoGang)
	}
	ca, err := c.compileGExpr(x.A, sc, 0)
	if err != nil {
		return nil, err
	}
	w := int(wv)
	minus := x.Kind == ast.SelMinus
	out, err := c.node(w)
	if err != nil {
		return nil, err
	}
	out.sw = int32(w)
	out.run = func(g *gangRun, m []int32) {
		base.eval(g, m)
		ca.eval(g, m)
		nw := int(out.nw)
		for _, l := range m {
			wb := base.width(g, l)
			dv, dx := g.planesAt(out, l)
			baseV, known := kfits64(g.planesAt(ca, l))
			if !known {
				ksetX(dv, dx, w, nw)
				continue
			}
			lo := int(baseV) - lsb
			if minus {
				lo = int(baseV) - w + 1 - lsb
			}
			sv, sx := g.planesAt(base, l)
			kslice(dv, dx, w, nw, sv, sx, int(wb), lo)
		}
	}
	return out, nil
}
