package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// VCDRecorder captures value changes of top-level nets into the standard
// Value Change Dump format, the waveform interchange format EDA tools
// consume. The paper's VerilogCoder baseline relies on waveform tracing for
// debugging; this recorder provides the same capability for the in-process
// simulator.
//
// Usage: create a recorder, call Sample after every Settle/Tick with the
// current simulation time, then Flush to an io.Writer.
type VCDRecorder struct {
	sim     *Simulator
	signals []vcdSignal
	events  []vcdEvent
	sampled bool
	last    []Value
}

type vcdSignal struct {
	name  string
	width int
	code  string
}

type vcdEvent struct {
	time  uint64
	index int
	value Value
}

// NewVCDRecorder tracks all top-level ports (inputs and outputs) of the
// simulator.
func NewVCDRecorder(s *Simulator) *VCDRecorder {
	r := &VCDRecorder{sim: s}
	var names []string
	for _, p := range s.Inputs() {
		names = append(names, p.Name)
	}
	for _, p := range s.Outputs() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	for i, name := range names {
		v, err := s.Output(name)
		width := 1
		if err == nil {
			width = v.Width()
		}
		r.signals = append(r.signals, vcdSignal{
			name:  name,
			width: width,
			code:  vcdCode(i),
		})
	}
	r.last = make([]Value, len(r.signals))
	return r
}

// vcdCode yields the compact printable identifier VCD uses.
func vcdCode(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdCode(i/len(alphabet))
}

// Sample records the current value of every tracked signal at the given
// simulation time. Only changed signals produce dump events.
func (r *VCDRecorder) Sample(time uint64) {
	for i, sig := range r.signals {
		v, err := r.sim.Output(sig.name)
		if err != nil {
			continue
		}
		if r.sampled && r.last[i].Width() == v.Width() && r.last[i].Equal(v) {
			continue
		}
		r.last[i] = v
		r.events = append(r.events, vcdEvent{time: time, index: i, value: v})
	}
	r.sampled = true
}

// Flush writes the complete VCD document.
func (r *VCDRecorder) Flush(w io.Writer) error {
	var b strings.Builder
	b.WriteString("$date\n    (simulation)\n$end\n")
	b.WriteString("$version\n    repro/internal/sim VCD recorder\n$end\n")
	b.WriteString("$timescale 1ns $end\n")
	b.WriteString("$scope module top_module $end\n")
	for _, sig := range r.signals {
		fmt.Fprintf(&b, "$var wire %d %s %s $end\n", sig.width, sig.code, sig.name)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	lastTime := uint64(0)
	first := true
	for _, ev := range r.events {
		if first || ev.time != lastTime {
			fmt.Fprintf(&b, "#%d\n", ev.time)
			lastTime = ev.time
			first = false
		}
		sig := r.signals[ev.index]
		if sig.width == 1 {
			fmt.Fprintf(&b, "%c%s\n", ev.value.Bit(0), sig.code)
		} else {
			b.WriteString("b")
			for i := ev.value.Width() - 1; i >= 0; i-- {
				b.WriteByte(ev.value.Bit(i))
			}
			fmt.Fprintf(&b, " %s\n", sig.code)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
