package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/verilog/parser"
)

// randExpr builds a random combinational expression over inputs a and b
// (both 8-bit) together with a reference evaluator over uint64 that mirrors
// the subset's width semantics at a fixed 8-bit context.
type exprGen struct {
	rng *rand.Rand
}

// gen returns (verilog text, reference func) for an expression evaluated in
// an 8-bit assignment context with zero-extension semantics.
func (g *exprGen) gen(depth int) (string, func(a, b uint64) uint64) {
	const mask = 0xFF
	if depth <= 0 || g.rng.Float64() < 0.25 {
		switch g.rng.Intn(3) {
		case 0:
			return "a", func(a, _ uint64) uint64 { return a }
		case 1:
			return "b", func(_, b uint64) uint64 { return b }
		default:
			k := uint64(g.rng.Intn(256))
			return fmt.Sprintf("8'd%d", k), func(_, _ uint64) uint64 { return k }
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		x, fx := g.gen(depth - 1)
		return "(~" + x + ")", func(a, b uint64) uint64 { return ^fx(a, b) & mask }
	case 1:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " + " + y + ")", func(a, b uint64) uint64 { return (fx(a, b) + fy(a, b)) & mask }
	case 2:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " - " + y + ")", func(a, b uint64) uint64 { return (fx(a, b) - fy(a, b)) & mask }
	case 3:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " & " + y + ")", func(a, b uint64) uint64 { return fx(a, b) & fy(a, b) }
	case 4:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " | " + y + ")", func(a, b uint64) uint64 { return fx(a, b) | fy(a, b) }
	case 5:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " ^ " + y + ")", func(a, b uint64) uint64 { return fx(a, b) ^ fy(a, b) }
	case 6:
		x, fx := g.gen(depth - 1)
		k := g.rng.Intn(8)
		return fmt.Sprintf("(%s << %d)", x, k), func(a, b uint64) uint64 { return (fx(a, b) << uint(k)) & mask }
	default:
		x, fx := g.gen(depth - 1)
		k := g.rng.Intn(8)
		return fmt.Sprintf("(%s >> %d)", x, k), func(a, b uint64) uint64 { return fx(a, b) >> uint(k) }
	}
}

// TestRandomExpressionsMatchReference simulates randomly generated
// combinational designs and compares every output against a direct Go
// reference evaluation. This is the simulator's strongest differential test.
func TestRandomExpressionsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 60; trial++ {
		expr, ref := g.gen(3)
		src := fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = %s;
endmodule
`, expr)
		parsed, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated source does not parse: %v\n%s", trial, err, src)
		}
		s, err := New(parsed, "top_module")
		if err != nil {
			t.Fatalf("trial %d: elaborate: %v\n%s", trial, err, src)
		}
		for vec := 0; vec < 12; vec++ {
			av := rng.Uint64() & 0xFF
			bv := rng.Uint64() & 0xFF
			if err := s.SetInputUint("a", av); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInputUint("b", bv); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatalf("trial %d: settle: %v\n%s", trial, err, src)
			}
			got, err := s.Output("y")
			if err != nil {
				t.Fatal(err)
			}
			gotU, ok := got.Uint64()
			if !ok {
				t.Fatalf("trial %d: output has X bits for known inputs: %s\nexpr: %s", trial, got, expr)
			}
			want := ref(av, bv)
			if gotU != want {
				t.Fatalf("trial %d: a=%d b=%d: y=%d, want %d\nexpr: %s", trial, av, bv, gotU, want, expr)
			}
		}
	}
}

// TestRandomMixedProcessStyles cross-checks that the same random function
// computed three ways — continuous assign, always @(*) with a case-free
// body, and a two-way split through a helper wire — produces identical
// traces.
func TestRandomMixedProcessStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 20; trial++ {
		expr, _ := g.gen(3)
		styles := []string{
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = %s;
endmodule
`, expr),
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] y
);
    always @(*)
        y = %s;
endmodule
`, expr),
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    wire [7:0] t;
    assign t = %s;
    assign y = t;
endmodule
`, expr),
		}
		var results []uint64
		for si, src := range styles {
			parsed, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("style %d: %v", si, err)
			}
			s, err := New(parsed, "top_module")
			if err != nil {
				t.Fatalf("style %d: %v", si, err)
			}
			if err := s.SetInputUint("a", 0xA7); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInputUint("b", 0x3C); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatalf("style %d: %v\n%s", si, err, src)
			}
			v, err := s.Output("y")
			if err != nil {
				t.Fatal(err)
			}
			u, ok := v.Uint64()
			if !ok {
				t.Fatalf("style %d produced X: %s\nexpr %s", si, v, expr)
			}
			results = append(results, u)
		}
		if results[0] != results[1] || results[1] != results[2] {
			t.Fatalf("styles disagree: %v\nexpr: %s", results, expr)
		}
	}
}

// TestWideVectorOperations exercises >64-bit vectors end to end.
func TestWideVectorOperations(t *testing.T) {
	src := `
module top_module (
    input [99:0] in,
    output [99:0] rev,
    output [99:0] sum
);
    integer i;
    reg [99:0] r;
    always @(*) begin
        for (i = 0; i < 100; i = i + 1)
            r[99 - i] = in[i];
    end
    assign rev = r;
    assign sum = in + 100'd1;
endmodule
`
	s := mustElab(t, src, "top_module")
	// in = 1 (bit 0 set) -> rev has bit 99 set; sum = 2.
	if err := s.SetInput("in", NewKnown(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	rev, err := s.Output("rev")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Bit(99) != '1' {
		t.Errorf("rev bit 99 = %c", rev.Bit(99))
	}
	for i := 0; i < 99; i++ {
		if rev.Bit(i) != '0' {
			t.Errorf("rev bit %d = %c, want 0", i, rev.Bit(i))
		}
	}
	sum, err := s.Output("sum")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := sum.Uint64(); !ok || u != 2 {
		t.Errorf("sum = %s", sum)
	}
	// All-ones + 1 wraps to zero at 100 bits.
	ones := Not(NewKnown(100, 0))
	if err := s.SetInput("in", ones); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	sum2, _ := s.Output("sum")
	if !sum2.IsZero() {
		t.Errorf("wrap: sum = %s", sum2)
	}
}

// TestTraceStability re-runs a full suite member many times and confirms the
// trace never varies (no map-iteration nondeterminism in the engine).
func TestTraceStability(t *testing.T) {
	src := `
module top_module (
    input clk,
    input reset,
    input [3:0] d,
    output reg [3:0] q,
    output [3:0] inv
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else
            q <= q ^ d;
    end
    assign inv = ~q;
endmodule
`
	var ref []string
	for rep := 0; rep < 10; rep++ {
		s := mustElab(t, src, "top_module")
		if err := s.SetInputUint("clk", 0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInputUint("reset", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInputUint("reset", 0); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for c := 0; c < 8; c++ {
			if err := s.SetInputUint("d", uint64(c*5)%16); err != nil {
				t.Fatal(err)
			}
			if err := s.Tick("clk"); err != nil {
				t.Fatal(err)
			}
			q, _ := s.Output("q")
			inv, _ := s.Output("inv")
			lines = append(lines, q.String()+inv.String())
		}
		got := strings.Join(lines, "|")
		if rep == 0 {
			ref = lines
			continue
		}
		if got != strings.Join(ref, "|") {
			t.Fatalf("rep %d trace differs", rep)
		}
	}
}
