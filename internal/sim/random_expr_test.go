package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/verilog/parser"
)

// randExpr builds a random combinational expression over inputs a and b
// (both 8-bit) together with a reference evaluator over uint64 that mirrors
// the subset's width semantics at a fixed 8-bit context.
type exprGen struct {
	rng *rand.Rand
}

// gen returns (verilog text, reference func) for an expression evaluated in
// an 8-bit assignment context with zero-extension semantics.
func (g *exprGen) gen(depth int) (string, func(a, b uint64) uint64) {
	const mask = 0xFF
	if depth <= 0 || g.rng.Float64() < 0.25 {
		switch g.rng.Intn(3) {
		case 0:
			return "a", func(a, _ uint64) uint64 { return a }
		case 1:
			return "b", func(_, b uint64) uint64 { return b }
		default:
			k := uint64(g.rng.Intn(256))
			return fmt.Sprintf("8'd%d", k), func(_, _ uint64) uint64 { return k }
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		x, fx := g.gen(depth - 1)
		return "(~" + x + ")", func(a, b uint64) uint64 { return ^fx(a, b) & mask }
	case 1:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " + " + y + ")", func(a, b uint64) uint64 { return (fx(a, b) + fy(a, b)) & mask }
	case 2:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " - " + y + ")", func(a, b uint64) uint64 { return (fx(a, b) - fy(a, b)) & mask }
	case 3:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " & " + y + ")", func(a, b uint64) uint64 { return fx(a, b) & fy(a, b) }
	case 4:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " | " + y + ")", func(a, b uint64) uint64 { return fx(a, b) | fy(a, b) }
	case 5:
		x, fx := g.gen(depth - 1)
		y, fy := g.gen(depth - 1)
		return "(" + x + " ^ " + y + ")", func(a, b uint64) uint64 { return fx(a, b) ^ fy(a, b) }
	case 6:
		x, fx := g.gen(depth - 1)
		k := g.rng.Intn(8)
		return fmt.Sprintf("(%s << %d)", x, k), func(a, b uint64) uint64 { return (fx(a, b) << uint(k)) & mask }
	default:
		x, fx := g.gen(depth - 1)
		k := g.rng.Intn(8)
		return fmt.Sprintf("(%s >> %d)", x, k), func(a, b uint64) uint64 { return fx(a, b) >> uint(k) }
	}
}

// TestRandomExpressionsMatchReference simulates randomly generated
// combinational designs and compares every output against a direct Go
// reference evaluation. This is the simulator's strongest differential test.
func TestRandomExpressionsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 60; trial++ {
		expr, ref := g.gen(3)
		src := fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = %s;
endmodule
`, expr)
		parsed, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated source does not parse: %v\n%s", trial, err, src)
		}
		s, err := New(parsed, "top_module")
		if err != nil {
			t.Fatalf("trial %d: elaborate: %v\n%s", trial, err, src)
		}
		for vec := 0; vec < 12; vec++ {
			av := rng.Uint64() & 0xFF
			bv := rng.Uint64() & 0xFF
			if err := s.SetInputUint("a", av); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInputUint("b", bv); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatalf("trial %d: settle: %v\n%s", trial, err, src)
			}
			got, err := s.Output("y")
			if err != nil {
				t.Fatal(err)
			}
			gotU, ok := got.Uint64()
			if !ok {
				t.Fatalf("trial %d: output has X bits for known inputs: %s\nexpr: %s", trial, got, expr)
			}
			want := ref(av, bv)
			if gotU != want {
				t.Fatalf("trial %d: a=%d b=%d: y=%d, want %d\nexpr: %s", trial, av, bv, gotU, want, expr)
			}
		}
	}
}

// TestRandomMixedProcessStyles cross-checks that the same random function
// computed three ways — continuous assign, always @(*) with a case-free
// body, and a two-way split through a helper wire — produces identical
// traces.
func TestRandomMixedProcessStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 20; trial++ {
		expr, _ := g.gen(3)
		styles := []string{
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = %s;
endmodule
`, expr),
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] y
);
    always @(*)
        y = %s;
endmodule
`, expr),
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    wire [7:0] t;
    assign t = %s;
    assign y = t;
endmodule
`, expr),
		}
		var results []uint64
		for si, src := range styles {
			parsed, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("style %d: %v", si, err)
			}
			s, err := New(parsed, "top_module")
			if err != nil {
				t.Fatalf("style %d: %v", si, err)
			}
			if err := s.SetInputUint("a", 0xA7); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInputUint("b", 0x3C); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatalf("style %d: %v\n%s", si, err, src)
			}
			v, err := s.Output("y")
			if err != nil {
				t.Fatal(err)
			}
			u, ok := v.Uint64()
			if !ok {
				t.Fatalf("style %d produced X: %s\nexpr %s", si, v, expr)
			}
			results = append(results, u)
		}
		if results[0] != results[1] || results[1] != results[2] {
			t.Fatalf("styles disagree: %v\nexpr: %s", results, expr)
		}
	}
}

// TestWideVectorOperations exercises >64-bit vectors end to end.
func TestWideVectorOperations(t *testing.T) {
	src := `
module top_module (
    input [99:0] in,
    output [99:0] rev,
    output [99:0] sum
);
    integer i;
    reg [99:0] r;
    always @(*) begin
        for (i = 0; i < 100; i = i + 1)
            r[99 - i] = in[i];
    end
    assign rev = r;
    assign sum = in + 100'd1;
endmodule
`
	s := mustElab(t, src, "top_module")
	// in = 1 (bit 0 set) -> rev has bit 99 set; sum = 2.
	if err := s.SetInput("in", NewKnown(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	rev, err := s.Output("rev")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Bit(99) != '1' {
		t.Errorf("rev bit 99 = %c", rev.Bit(99))
	}
	for i := 0; i < 99; i++ {
		if rev.Bit(i) != '0' {
			t.Errorf("rev bit %d = %c, want 0", i, rev.Bit(i))
		}
	}
	sum, err := s.Output("sum")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := sum.Uint64(); !ok || u != 2 {
		t.Errorf("sum = %s", sum)
	}
	// All-ones + 1 wraps to zero at 100 bits.
	ones := Not(NewKnown(100, 0))
	if err := s.SetInput("in", ones); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	sum2, _ := s.Output("sum")
	if !sum2.IsZero() {
		t.Errorf("wrap: sum = %s", sum2)
	}
}

// TestTraceStability re-runs a full suite member many times and confirms the
// trace never varies (no map-iteration nondeterminism in the engine).
func TestTraceStability(t *testing.T) {
	src := `
module top_module (
    input clk,
    input reset,
    input [3:0] d,
    output reg [3:0] q,
    output [3:0] inv
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else
            q <= q ^ d;
    end
    assign inv = ~q;
endmodule
`
	var ref []string
	for rep := 0; rep < 10; rep++ {
		s := mustElab(t, src, "top_module")
		if err := s.SetInputUint("clk", 0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInputUint("reset", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInputUint("reset", 0); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for c := 0; c < 8; c++ {
			if err := s.SetInputUint("d", uint64(c*5)%16); err != nil {
				t.Fatal(err)
			}
			if err := s.Tick("clk"); err != nil {
				t.Fatal(err)
			}
			q, _ := s.Output("q")
			inv, _ := s.Output("inv")
			lines = append(lines, q.String()+inv.String())
		}
		got := strings.Join(lines, "|")
		if rep == 0 {
			ref = lines
			continue
		}
		if got != strings.Join(ref, "|") {
			t.Fatalf("rep %d trace differs", rep)
		}
	}
}

// --- Interpreter vs compiled differential harness ---------------------------------
//
// Every design generated below runs through all THREE engines — the
// AST-walking interpreter, the PR-1 boxed compiler (forced via the
// compileFrom fallback switch), and the register-file kernels — under
// identical stimulus, and every output must agree bit-exactly in all four
// states (compared via Value.String, which encodes width and each 0/1/x/z
// bit).

// diffPair holds one design elaborated on all backends.
type diffPair struct {
	interp   *Simulator
	compiled *Engine // register-file lowering
	boxed    *Engine // forced PR-1 boxed lowering
}

// newDiffPair elaborates src under every backend, failing the test if any
// rejects the design.
func newDiffPair(t *testing.T, src, top string) *diffPair {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	s, err := New(parsed, top)
	if err != nil {
		t.Fatalf("interpreter elaborate: %v\n%s", err, src)
	}
	d, err := Compile(parsed, top)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	sb, err := New(parsed, top)
	if err != nil {
		t.Fatalf("boxed elaborate: %v\n%s", err, src)
	}
	db, err := compileFrom(sb, true, nil)
	if err != nil {
		t.Fatalf("boxed compile: %v\n%s", err, src)
	}
	return &diffPair{interp: s, compiled: d.NewEngine(), boxed: db.NewEngine()}
}

// backends lists the engines with their labels, interpreter first (it is
// the reference the others are compared against).
func (dp *diffPair) backends() []struct {
	name string
	ins  Instance
} {
	return []struct {
		name string
		ins  Instance
	}{
		{"interp", dp.interp},
		{"compiled", dp.compiled},
		{"boxed", dp.boxed},
	}
}

// drive applies one input to every backend.
func (dp *diffPair) drive(t *testing.T, name string, v Value) {
	t.Helper()
	for _, b := range dp.backends() {
		if err := b.ins.SetInput(name, v); err != nil {
			t.Fatalf("%s SetInput(%s): %v", b.name, name, err)
		}
	}
}

// settle settles every backend; all must agree on convergence.
func (dp *diffPair) settle(t *testing.T, src string) {
	t.Helper()
	errI := dp.interp.Settle()
	for _, b := range dp.backends()[1:] {
		errC := b.ins.Settle()
		if (errI == nil) != (errC == nil) {
			t.Fatalf("settle divergence: interp=%v %s=%v\n%s", errI, b.name, errC, src)
		}
	}
	if errI != nil {
		t.Fatalf("settle: %v\n%s", errI, src)
	}
}

// tick runs one clock cycle on every backend.
func (dp *diffPair) tick(t *testing.T, clock, src string) {
	t.Helper()
	errI := dp.interp.Tick(clock)
	for _, b := range dp.backends()[1:] {
		errC := b.ins.Tick(clock)
		if (errI == nil) != (errC == nil) {
			t.Fatalf("tick divergence: interp=%v %s=%v\n%s", errI, b.name, errC, src)
		}
	}
	if errI != nil {
		t.Fatalf("tick: %v\n%s", errI, src)
	}
}

// compareOutputs asserts bit-exact four-state three-way equality of every
// output, and that each engine's streaming HashOutput digest matches the
// FNV-1a hash of the printed string — the equivalence the fingerprint
// ranking path relies on — at the natural width and a wider one (covering
// the beyond-width zero-extension rule).
func (dp *diffPair) compareOutputs(t *testing.T, label, src string) {
	t.Helper()
	for _, out := range dp.interp.Outputs() {
		vi, err := dp.interp.Output(out.Name)
		if err != nil {
			t.Fatalf("interp Output(%s): %v", out.Name, err)
		}
		for _, b := range dp.backends()[1:] {
			vc, err := b.ins.Output(out.Name)
			if err != nil {
				t.Fatalf("%s Output(%s): %v", b.name, out.Name, err)
			}
			if vi.String() != vc.String() {
				t.Fatalf("%s: output %s diverges: interp=%s %s=%s\n%s",
					label, out.Name, vi, b.name, vc, src)
			}
			en, ok := b.ins.(*Engine)
			if !ok {
				continue
			}
			for _, w := range []int{vc.Width(), vc.Width() + 3} {
				got, err := en.HashOutput(FNVOffset64, out.Name, w)
				if err != nil {
					t.Fatalf("%s HashOutput(%s): %v", b.name, out.Name, err)
				}
				if want := fnvTest(FNVOffset64, vc.Resize(w).String()); got != want {
					t.Fatalf("%s: output %s streaming hash diverges from printed hash at width %d (%s)\n%s",
						label, out.Name, w, vc.Resize(w), src)
				}
			}
		}
	}
}

// fnvTest is the reference FNV-1a fold the streaming digest must match.
func fnvTest(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// randFourState returns a width-bit value where each bit is 0/1/x/z with the
// given probability of being unknown.
func randFourState(rng *rand.Rand, width int, pUnknown float64) Value {
	v := NewKnown(width, 0)
	for i := 0; i < width; i++ {
		switch {
		case rng.Float64() < pUnknown:
			if rng.Intn(2) == 0 {
				v.setBit(i, 'x')
			} else {
				v.setBit(i, 'z')
			}
		case rng.Intn(2) == 0:
			v.setBit(i, '1')
		default:
			v.setBit(i, '0')
		}
	}
	return v
}

// richExprGen generates expressions over arbitrary named 8-bit operands using
// the full supported operator set (no Go reference needed: the two backends
// referee each other).
type richExprGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *richExprGen) gen(depth int) string {
	if depth <= 0 || g.rng.Float64() < 0.2 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("8'd%d", g.rng.Intn(256))
		case 1:
			return fmt.Sprintf("8'b%03b", g.rng.Intn(8))
		default:
			return g.vars[g.rng.Intn(len(g.vars))]
		}
	}
	v := g.vars[g.rng.Intn(len(g.vars))]
	switch g.rng.Intn(16) {
	case 0:
		return "(~" + g.gen(depth-1) + ")"
	case 1:
		ops := []string{"+", "-", "*", "&", "|", "^", "~^"}
		return "(" + g.gen(depth-1) + " " + ops[g.rng.Intn(len(ops))] + " " + g.gen(depth-1) + ")"
	case 2:
		ops := []string{"<", "<=", ">", ">=", "==", "!=", "===", "!=="}
		return "{8{(" + g.gen(depth-1) + " " + ops[g.rng.Intn(len(ops))] + " " + g.gen(depth-1) + ")}}"
	case 3:
		ops := []string{"&&", "||"}
		return "{8{(" + g.gen(depth-1) + " " + ops[g.rng.Intn(len(ops))] + " " + g.gen(depth-1) + ")}}"
	case 4:
		return fmt.Sprintf("(%s << %d)", g.gen(depth-1), g.rng.Intn(9))
	case 5:
		return fmt.Sprintf("(%s >> %d)", g.gen(depth-1), g.rng.Intn(9))
	case 6:
		return fmt.Sprintf("(%s >>> %d)", g.gen(depth-1), g.rng.Intn(9))
	case 7:
		return "(" + g.gen(depth-1) + " ? " + g.gen(depth-1) + " : " + g.gen(depth-1) + ")"
	case 8:
		hi := g.rng.Intn(8)
		lo := g.rng.Intn(hi + 1)
		return fmt.Sprintf("{%d'd0, %s[%d:%d]}", 8-(hi-lo+1), v, hi, lo)
	case 9:
		return fmt.Sprintf("{7'd0, %s[%d]}", v, g.rng.Intn(8))
	case 10:
		return fmt.Sprintf("{7'd0, %s[%s[2:0]]}", v, g.vars[g.rng.Intn(len(g.vars))])
	case 11:
		return "{" + g.gen(depth-1) + "[3:0], " + g.gen(depth-1) + "[7:4]}"
	case 12:
		red := []string{"&", "|", "^", "~&", "~|", "~^"}
		return fmt.Sprintf("{7'd0, %s%s}", red[g.rng.Intn(len(red))], v)
	case 13:
		return "{8{!(" + g.gen(depth-1) + ")}}"
	case 14:
		return fmt.Sprintf("(%s %% (8'd%d))", g.gen(depth-1), 1+g.rng.Intn(15))
	default:
		return fmt.Sprintf("(%s / (8'd%d))", g.gen(depth-1), 1+g.rng.Intn(15))
	}
}

// TestDifferentialCombinational runs randomly generated combinational
// designs with the full operator mix through both backends under known and
// four-state stimulus.
func TestDifferentialCombinational(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	g := &richExprGen{rng: rng, vars: []string{"a", "b"}}
	designs := 0
	for trial := 0; trial < 60; trial++ {
		src := fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y,
    output [7:0] z
);
    assign y = %s;
    assign z = %s;
endmodule
`, g.gen(3), g.gen(2))
		dp := newDiffPair(t, src, "top_module")
		designs++
		for vec := 0; vec < 10; vec++ {
			dp.drive(t, "a", NewKnown(8, rng.Uint64()&0xFF))
			dp.drive(t, "b", NewKnown(8, rng.Uint64()&0xFF))
			dp.settle(t, src)
			dp.compareOutputs(t, fmt.Sprintf("trial %d vec %d", trial, vec), src)
		}
		for vec := 0; vec < 6; vec++ {
			dp.drive(t, "a", randFourState(rng, 8, 0.3))
			dp.drive(t, "b", randFourState(rng, 8, 0.3))
			dp.settle(t, src)
			dp.compareOutputs(t, fmt.Sprintf("trial %d xvec %d", trial, vec), src)
		}
	}
	t.Logf("differential combinational designs: %d", designs)
}

// TestDifferentialProcessStyles cross-checks the backends over the same
// function expressed as a continuous assign, an always @(*) block, and a
// split through a helper wire.
func TestDifferentialProcessStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	g := &richExprGen{rng: rng, vars: []string{"a", "b"}}
	designs := 0
	for trial := 0; trial < 20; trial++ {
		expr := g.gen(3)
		styles := []string{
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = %s;
endmodule
`, expr),
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] y
);
    always @(*)
        y = %s;
endmodule
`, expr),
			fmt.Sprintf(`
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    wire [7:0] t;
    assign t = %s;
    assign y = t;
endmodule
`, expr),
		}
		for si, src := range styles {
			dp := newDiffPair(t, src, "top_module")
			designs++
			for vec := 0; vec < 8; vec++ {
				dp.drive(t, "a", randFourState(rng, 8, 0.15))
				dp.drive(t, "b", randFourState(rng, 8, 0.15))
				dp.settle(t, src)
				dp.compareOutputs(t, fmt.Sprintf("trial %d style %d vec %d", trial, si, vec), src)
			}
		}
	}
	t.Logf("differential style designs: %d", designs)
}

// TestDifferentialSequential runs randomly generated clocked designs (state
// register + combinational decode, behavioral if/case/for mix) through both
// backends across full reset-plus-random-stimulus sequences.
func TestDifferentialSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	g := &richExprGen{rng: rng, vars: []string{"a", "b", "q"}}
	designs := 0
	for trial := 0; trial < 30; trial++ {
		var body string
		switch trial % 3 {
		case 0:
			body = fmt.Sprintf("q <= %s;", g.gen(3))
		case 1:
			body = fmt.Sprintf(`case (q[1:0])
                2'd0: q <= %s;
                2'd1: q <= %s;
                default: q <= %s;
            endcase`, g.gen(2), g.gen(2), g.gen(2))
		default:
			body = fmt.Sprintf(`begin
                for (i = 0; i < 4; i = i + 1)
                    acc[i] = a[i] ^ q[i];
                q <= %s + {4'd0, acc};
            end`, g.gen(2))
		}
		decl := ""
		if trial%3 == 2 {
			decl = "integer i;\n    reg [3:0] acc;"
		}
		src := fmt.Sprintf(`
module top_module (
    input clk,
    input reset,
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] q,
    output [7:0] y
);
    %s
    always @(posedge clk) begin
        if (reset)
            q <= 8'd%d;
        else
            %s
    end
    assign y = %s;
endmodule
`, decl, rng.Intn(256), body, g.gen(2))
		dp := newDiffPair(t, src, "top_module")
		designs++
		dp.drive(t, "clk", NewKnown(1, 0))
		dp.drive(t, "reset", NewKnown(1, 1))
		dp.drive(t, "a", NewKnown(8, 0))
		dp.drive(t, "b", NewKnown(8, 0))
		dp.tick(t, "clk", src)
		dp.tick(t, "clk", src)
		dp.compareOutputs(t, fmt.Sprintf("trial %d reset", trial), src)
		dp.drive(t, "reset", NewKnown(1, 0))
		for step := 0; step < 10; step++ {
			dp.drive(t, "a", NewKnown(8, rng.Uint64()&0xFF))
			dp.drive(t, "b", NewKnown(8, rng.Uint64()&0xFF))
			dp.tick(t, "clk", src)
			dp.compareOutputs(t, fmt.Sprintf("trial %d step %d", trial, step), src)
		}
	}
	t.Logf("differential sequential designs: %d", designs)
}
