package sim

import (
	"testing"

	"repro/internal/verilog/parser"
)

// compileMust compiles src for tests.
func compileMust(t *testing.T, src, top string) *Design {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Compile(parsed, top)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return d
}

// allocComb is a combinational design touching the major kernel families:
// arithmetic (incl. multi-delta ripple through wires), muxing, comparison,
// reduction, concatenation, and shifts.
const allocComb = `
module top_module (
    input [63:0] a,
    input [63:0] b,
    output [63:0] y,
    output [63:0] z,
    output p
);
    wire [63:0] s = a + b;
    wire [63:0] m = a * b;
    wire [63:0] q = (a[0]) ? s ^ m : s - m;
    assign y = {q[31:0], q[63:32]} >> b[4:0];
    assign z = (a < b) ? ~q : q | 64'hDEAD_BEEF;
    assign p = ^y & |z;
endmodule
`

// allocSeq is a clocked design with non-blocking assignments, a case mux, a
// for loop, and partial-bit writes — the paths that stress the NBA arena and
// partial stores.
const allocSeq = `
module top_module (
    input clk,
    input reset,
    input [31:0] d,
    output reg [31:0] q,
    output reg [7:0] cnt
);
    integer i;
    reg [31:0] acc;
    always @(posedge clk) begin
        if (reset) begin
            q <= 32'd0;
            cnt <= 8'd0;
        end else begin
            acc = 32'd0;
            for (i = 0; i < 4; i = i + 1)
                acc[7:0] = acc[7:0] + d[7:0];
            case (d[1:0])
                2'd0: q <= q + acc;
                2'd1: q <= q ^ d;
                default: q <= {q[15:0], d[15:0]};
            endcase
            cnt <= cnt + 8'd1;
        end
    end
endmodule
`

// TestSettleZeroAlloc asserts the tentpole invariant: steady-state Settle on
// the register-file engine allocates nothing, so the zero-allocation win
// cannot silently rot.
func TestSettleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	d := compileMust(t, allocComb, "top_module")
	if got := d.BoxedProcs(); got != 0 {
		t.Fatalf("BoxedProcs() = %d, want 0 (design should lower fully to the register file)", got)
	}
	en := d.NewEngine()
	step := func(i uint64) {
		if err := en.SetInputUint("a", 0x0123_4567_89AB_CDEF^i); err != nil {
			t.Fatal(err)
		}
		if err := en.SetInputUint("b", 0xFEDC_BA98_7654_3210+i); err != nil {
			t.Fatal(err)
		}
		if err := en.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up the scheduler's double buffers, then measure.
	for i := uint64(0); i < 8; i++ {
		step(i)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		i++
		step(i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SetInput+Settle allocates %.1f objects/run, want 0", allocs)
	}
}

// TestTickZeroAlloc is the sequential counterpart: a full clock cycle
// (posedge settle + negedge settle) with NBA traffic allocates nothing.
func TestTickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	d := compileMust(t, allocSeq, "top_module")
	if got := d.BoxedProcs(); got != 0 {
		t.Fatalf("BoxedProcs() = %d, want 0", got)
	}
	en := d.NewEngine()
	if err := en.SetInputUint("reset", 1); err != nil {
		t.Fatal(err)
	}
	if err := en.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if err := en.SetInputUint("reset", 0); err != nil {
		t.Fatal(err)
	}
	step := func(i uint64) {
		if err := en.SetInputUint("d", 0x1357_9BDF^i); err != nil {
			t.Fatal(err)
		}
		if err := en.Tick("clk"); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 8; i++ {
		step(i)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		i++
		step(i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SetInput+Tick allocates %.1f objects/run, want 0", allocs)
	}
}

// TestAcquireReleaseZeroAlloc asserts that cycling a pooled engine (the
// per-testbench-case pattern) settles to zero allocations: reset is two
// plane copies, not a reallocation.
func TestAcquireReleaseZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	d := compileMust(t, allocSeq, "top_module")
	run := func() {
		en := d.AcquireEngine()
		if err := en.SetInputUint("reset", 1); err != nil {
			t.Fatal(err)
		}
		if err := en.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		d.ReleaseEngine(en)
	}
	for i := 0; i < 4; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Fatalf("acquire/tick/release allocates %.1f objects/run, want 0", allocs)
	}
}

// TestHashOutputZeroAlloc asserts the streaming fingerprint digest allocates
// nothing: ranking whole candidate pools hashes every output of every step
// through this path, so a single allocation here would undo the win.
func TestHashOutputZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	d := compileMust(t, allocComb, "top_module")
	en := d.NewEngine()
	if err := en.SetInputUint("a", 0x0123_4567_89AB_CDEF); err != nil {
		t.Fatal(err)
	}
	if err := en.SetInputUint("b", 0xFEDC_BA98_7654_3210); err != nil {
		t.Fatal(err)
	}
	if err := en.Settle(); err != nil {
		t.Fatal(err)
	}
	h := FNVOffset64
	allocs := testing.AllocsPerRun(100, func() {
		for _, out := range []struct {
			name  string
			width int
		}{{"y", 64}, {"z", 67}, {"p", 1}} {
			var err error
			h, err = en.HashOutput(h, out.name, out.width)
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("HashOutput allocates %.1f objects/run, want 0", allocs)
	}
}

// TestSoAGangTickZeroAlloc gates the shared-plane gang at the solo floor:
// with the gang sealed (planes allocated, program lowered, arena sized), a
// full clock cycle across every lane — per-lane drives, two merged settles
// with gang-program activations and NBA traffic — must allocate nothing. The
// mask arena, participant buffers, and batch swaps all reuse seal-time
// storage, so any per-step allocation here is a regression.
func TestSoAGangTickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	d := compileMust(t, allocSeq, "top_module")
	const lanes = 2
	g := NewSoAGang(lanes, nil)
	// Identical lanes would dedup to one leader; the alloc gate covers the
	// gang-kernel execution path, so force both lanes to run.
	g.dedup = false
	for l := 0; l < lanes; l++ {
		g.AddLane(d, nil, -1, nil, nil)
	}
	g.BeginCase() // seal the layout and reset the lanes
	for l := 0; l < lanes; l++ {
		for k, c := range g.lanes[l].class {
			if c < 0 {
				t.Fatalf("lane %d process %d did not lower to the gang program", l, k)
			}
		}
	}
	set := func(l int, name string, v uint64) {
		if err := g.run.engines[l].SetInputUint(name, v); err != nil {
			t.Fatal(err)
		}
	}
	tick := func() {
		for l := 0; l < lanes; l++ {
			set(l, "clk", 1)
		}
		g.settleAll()
		for l := 0; l < lanes; l++ {
			set(l, "clk", 0)
		}
		g.settleAll()
		for l := 0; l < lanes; l++ {
			if err := g.run.laneErr[l]; err != nil {
				t.Fatal(err)
			}
		}
	}
	for l := 0; l < lanes; l++ {
		set(l, "reset", 1)
	}
	tick()
	for l := 0; l < lanes; l++ {
		set(l, "reset", 0)
	}
	step := func(i uint64) {
		for l := 0; l < lanes; l++ {
			set(l, "d", 0x1357_9BDF^(i+uint64(l)*0x1111))
		}
		tick()
	}
	for i := uint64(0); i < 8; i++ {
		step(i)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		i++
		step(i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SoA gang tick allocates %.1f objects/run, want 0", allocs)
	}
}

// TestEngineResetMatchesFresh checks that a recycled engine is
// indistinguishable from a new one, including after a run that left NBA and
// scheduler state behind.
func TestEngineResetMatchesFresh(t *testing.T) {
	d := compileMust(t, allocSeq, "top_module")

	trace := func(en *Engine) []string {
		t.Helper()
		var out []string
		if err := en.SetInputUint("reset", 1); err != nil {
			t.Fatal(err)
		}
		if err := en.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		if err := en.SetInputUint("reset", 0); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 6; i++ {
			if err := en.SetInputUint("d", i*0x1111); err != nil {
				t.Fatal(err)
			}
			if err := en.Tick("clk"); err != nil {
				t.Fatal(err)
			}
			q, err := en.Output("q")
			if err != nil {
				t.Fatal(err)
			}
			cnt, err := en.Output("cnt")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, q.String()+"|"+cnt.String())
		}
		return out
	}

	fresh := d.NewEngine()
	want := trace(fresh)

	// Dirty an engine (mid-flight state), release, reacquire, and re-trace.
	en := d.AcquireEngine()
	_ = en.SetInputUint("d", 42)
	_ = en.SetInputUint("clk", 1) // posedge queued but never settled
	d.ReleaseEngine(en)
	en2 := d.AcquireEngine()
	got := trace(en2)
	d.ReleaseEngine(en2)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recycled engine diverges at step %d: got %s want %s", i, got[i], want[i])
		}
	}
}

// TestDeltaEngineTickZeroAlloc gates the delta-compilation path at the same
// floor as from-scratch compilation: an engine of a design whose processes
// were spliced from a base's artifacts must tick with zero steady-state
// allocations (the spliced closures address the same register file layout).
func TestDeltaEngineTickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool and allocation accounting")
	}
	base := compileMust(t, allocSeq, "top_module")
	parsed, err := parser.Parse(allocSeq)
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompileDelta(base, parsed, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	if d.DeltaReused() == 0 {
		t.Fatal("delta compile of the identical source reused nothing")
	}
	en := d.NewEngine()
	if err := en.SetInputUint("reset", 1); err != nil {
		t.Fatal(err)
	}
	if err := en.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if err := en.SetInputUint("reset", 0); err != nil {
		t.Fatal(err)
	}
	step := func(i uint64) {
		if err := en.SetInputUint("d", 0x2468_ACE0^i); err != nil {
			t.Fatal(err)
		}
		if err := en.Tick("clk"); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 8; i++ {
		step(i)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		i++
		step(i)
	})
	if allocs != 0 {
		t.Fatalf("delta-compiled engine allocates %.1f objects/run, want 0", allocs)
	}
}
