package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/verilog/parser"
)

func mustCompile(t *testing.T, src, top string) *Design {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Compile(parsed, top)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return d
}

// TestCompiledHierarchyAndParams differentially checks a parameterized
// two-level hierarchy: instance port binding crosses scopes in both
// directions and parameter overrides resolve at compile time.
func TestCompiledHierarchyAndParams(t *testing.T) {
	src := `
module adder (
    input [W-1:0] x,
    output [W-1:0] s
);
    parameter W = 4;
    parameter BIAS = 1;
    assign s = x + BIAS;
endmodule

module top_module (
    input [7:0] a,
    output [7:0] y,
    output [3:0] small
);
    wire [7:0] mid;
    adder #(.W(8), .BIAS(3)) u0 (.x(a), .s(mid));
    adder #(.W(8)) u1 (.x(mid), .s(y));
    adder u2 (.x(a[3:0]), .s(small));
endmodule
`
	dp := newDiffPair(t, src, "top_module")
	rng := rand.New(rand.NewSource(11))
	for vec := 0; vec < 16; vec++ {
		dp.drive(t, "a", NewKnown(8, rng.Uint64()&0xFF))
		dp.settle(t, src)
		dp.compareOutputs(t, fmt.Sprintf("vec %d", vec), src)
	}
	// Four-state input propagates through the hierarchy identically.
	dp.drive(t, "a", randFourState(rng, 8, 0.4))
	dp.settle(t, src)
	dp.compareOutputs(t, "xvec", src)
}

// TestCompiledLValueForms differentially checks bit/part/concat lvalues,
// including a variable bit index and an indexed (+:) part-select.
func TestCompiledLValueForms(t *testing.T) {
	src := `
module top_module (
    input [7:0] a,
    input [2:0] sel,
    output reg [7:0] y,
    output reg [7:0] w,
    output reg [3:0] hi,
    output reg [3:0] lo
);
    always @(*) begin
        y = 8'd0;
        y[sel] = a[0];
        y[7:6] = a[1:0];
        w = 8'd0;
        w[sel +: 2] = a[3:2];
        {hi, lo} = a;
    end
endmodule
`
	dp := newDiffPair(t, src, "top_module")
	rng := rand.New(rand.NewSource(22))
	for vec := 0; vec < 24; vec++ {
		dp.drive(t, "a", NewKnown(8, rng.Uint64()&0xFF))
		dp.drive(t, "sel", NewKnown(3, rng.Uint64()&0x7))
		dp.settle(t, src)
		dp.compareOutputs(t, fmt.Sprintf("vec %d", vec), src)
	}
	// X index: both backends must drop the write identically.
	dp.drive(t, "a", NewKnown(8, 0xFF))
	dp.drive(t, "sel", NewX(3))
	dp.settle(t, src)
	dp.compareOutputs(t, "x-index", src)
}

// TestCompiledCaseZ differentially checks casez/casex wildcard matching.
func TestCompiledCaseZ(t *testing.T) {
	src := `
module top_module (
    input [3:0] a,
    output reg [1:0] y
);
    always @(*) begin
        casez (a)
            4'b1???: y = 2'd3;
            4'b01??: y = 2'd2;
            4'b001?: y = 2'd1;
            default: y = 2'd0;
        endcase
    end
endmodule
`
	dp := newDiffPair(t, src, "top_module")
	for v := uint64(0); v < 16; v++ {
		dp.drive(t, "a", NewKnown(4, v))
		dp.settle(t, src)
		dp.compareOutputs(t, fmt.Sprintf("v=%d", v), src)
	}
	rng := rand.New(rand.NewSource(33))
	for vec := 0; vec < 8; vec++ {
		dp.drive(t, "a", randFourState(rng, 4, 0.5))
		dp.settle(t, src)
		dp.compareOutputs(t, fmt.Sprintf("xvec %d", vec), src)
	}
}

// TestCompiledLSBOffsetRange differentially checks nets declared with a
// nonzero LSB.
func TestCompiledLSBOffsetRange(t *testing.T) {
	src := `
module top_module (
    input [11:4] a,
    output [11:4] y,
    output [3:0] nib
);
    assign y = a + 8'd1;
    assign nib = a[7:4];
endmodule
`
	dp := newDiffPair(t, src, "top_module")
	rng := rand.New(rand.NewSource(44))
	for vec := 0; vec < 16; vec++ {
		dp.drive(t, "a", NewKnown(8, rng.Uint64()&0xFF))
		dp.settle(t, src)
		dp.compareOutputs(t, fmt.Sprintf("vec %d", vec), src)
	}
}

// TestCompiledInitialBlock checks that initial-block state lands in the
// compiled snapshot.
func TestCompiledInitialBlock(t *testing.T) {
	src := `
module top_module (
    input [7:0] a,
    output [7:0] y
);
    reg [7:0] base;
    initial base = 8'd42;
    assign y = a + base;
endmodule
`
	dp := newDiffPair(t, src, "top_module")
	dp.drive(t, "a", NewKnown(8, 1))
	dp.settle(t, src)
	dp.compareOutputs(t, "init", src)
	v, err := dp.compiled.Output("y")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := v.Uint64(); !ok || u != 43 {
		t.Fatalf("y = %s, want 43", v)
	}
}

// TestCompileRejectsUnknownIdent documents the intended strictness
// difference: Compile rejects unknown identifiers up front.
func TestCompileRejectsUnknownIdent(t *testing.T) {
	src := `
module top_module (
    input clk,
    output reg y
);
    always @(posedge clk)
        y <= ghost;
endmodule
`
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(parsed, "top_module"); err == nil {
		t.Fatal("Compile accepted a design with an unknown identifier")
	}
}

// TestCompileCacheDedup verifies that canonically identical sources — even
// when formatted differently — share one compilation.
func TestCompileCacheDedup(t *testing.T) {
	cache := NewCompileCache(16)
	a := "module top_module (input x, output y);\n    assign y = ~x;\nendmodule\n"
	b := "module top_module(input x,output y); assign y = ~ x; endmodule"
	pa, err := parser.Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := parser.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalKey(pa) != CanonicalKey(pb) {
		t.Fatal("cosmetically different sources should share a canonical key")
	}
	da, err := cache.Get(pa, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	db, err := cache.Get(pb, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("cache returned distinct designs for canonically equal sources")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCompileCacheEviction verifies the LRU bound.
func TestCompileCacheEviction(t *testing.T) {
	cache := NewCompileCache(2)
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("module top_module(input x, output [7:0] y); assign y = {7'd0, x} + 8'd%d; endmodule", i)
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cache.Get(p, "top_module"); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
}

// TestCompiledConcurrentEngines is the race-mode smoke test for the compiled
// engine: one shared Design driven by many concurrent Engines, while other
// goroutines hammer the same source through a shared cache. Run with -race.
func TestCompiledConcurrentEngines(t *testing.T) {
	src := `
module top_module (
    input clk,
    input reset,
    input [7:0] d,
    output reg [7:0] q,
    output [7:0] inv
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else
            q <= q + d;
    end
    assign inv = ~q;
endmodule
`
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCompileCache(8)
	d, err := cache.Get(parsed, "top_module")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			en := d.NewEngine()
			if err := en.SetInputUint("clk", 0); err != nil {
				errs <- err
				return
			}
			if err := en.SetInputUint("reset", 1); err != nil {
				errs <- err
				return
			}
			if err := en.Tick("clk"); err != nil {
				errs <- err
				return
			}
			if err := en.SetInputUint("reset", 0); err != nil {
				errs <- err
				return
			}
			var sum uint64
			for i := 0; i < 50; i++ {
				dv := rng.Uint64() & 0xFF
				sum = (sum + dv) & 0xFF
				if err := en.SetInputUint("d", dv); err != nil {
					errs <- err
					return
				}
				if err := en.Tick("clk"); err != nil {
					errs <- err
					return
				}
			}
			q, err := en.Output("q")
			if err != nil {
				errs <- err
				return
			}
			if u, ok := q.Uint64(); !ok || u != sum {
				errs <- fmt.Errorf("worker %d: q=%s want %d", seed, q, sum)
			}
		}(int64(w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := cache.Get(parsed, "top_module"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
