package sim

import "repro/internal/verilog/ast"

// Gang-compat signatures: alpha-renaming-insensitive hashes deciding when two
// designs can share one lowered gang program (soa.go).
//
// The name-sensitive pair used by delta compilation (layoutSigOf, procSigOf)
// is the wrong sharing key for ranking gangs: LLM candidates habitually
// rename internal registers (hist vs hist_r vs hist_v) while keeping the
// circuit identical, and a renamed process prints differently even though it
// lowers to the same kernel. A gang kernel captures no names — only net
// indices, frame offsets derived from widths, and constant values — so the
// honest compatibility relation is structural:
//
//   - gangLayoutSigOf hashes the flattened net shapes in order (width, LSB)
//     and the lowering mode, but not names. Equal signatures mean net index i
//     occupies the same frame range with the same bit addressing in both
//     designs, which is all a kernel's loads and stores depend on.
//   - gangProcSig hashes one process with every identifier resolved the way
//     lowering resolves it: parameters fold as their elaborated constant
//     value, nets fold as their index. Two processes with equal signatures
//     are structurally identical modulo renaming, so the base design's
//     lowered kernel computes exactly what the lane's own process would.
//
// Everything lowering reads is covered: AST shape and operators, parameter
// values (constFold consults only sc.params), resolved net indices (net
// width/LSB then come from the layout signature), literal values (numbers
// fold by value, so 4'd15 and 4'b1111 hash equal, matching numberValue), and
// assignment/case/select kinds. Sensitivity lists are deliberately excluded,
// exactly as in procSigOf: activation is per-lane through each lane's own
// fanout tables, so only the executed body must agree.

// Node tags folded ahead of each node so that different shapes cannot collide
// by concatenation reshuffling (every variable-length child list is folded
// with a leading count for the same reason).
const (
	gsNil uint64 = iota + 1
	gsParam
	gsNet
	gsFreeIdent
	gsNumber
	gsUnary
	gsBinary
	gsTernary
	gsConcat
	gsRepl
	gsIndex
	gsPartSel
	gsBlock
	gsAssign
	gsIf
	gsCase
	gsCaseItem
	gsCaseDefault
	gsFor
	gsLValNet
	gsLValFree
	gsCont
	gsBehavioral
)

// gangLayoutSigOf is the name-blind counterpart of layoutSigOf: it fixes
// every net's index, width, declared LSB and (by accumulation over the
// preceding widths) frame offset, without pinning hierarchical names.
func gangLayoutSigOf(s *Simulator, forceBoxed bool) uint64 {
	h := sigUint(FNVOffset64, uint64(len(s.nets)))
	if forceBoxed {
		h = sigUint(h, 1)
	}
	for _, n := range s.nets {
		h = sigUint(h, uint64(n.width))
		h = sigUint(h, uint64(int64(n.lsb)))
	}
	return h
}

// GangClassHash folds every design-level input the SoA gang's whole-lane
// dedup compares (laneEqual): name-blind layout, per-process signatures and
// boxed-ness, dispatch tables, and the initial frame snapshot. Callers use
// it to order candidates so alpha-equivalent designs land in the same gang,
// where dedup and kernel sharing collapse them. The hash is advisory — the
// gang re-verifies equality field by field — so a collision costs batching
// quality, never correctness. Computed once at compile time: the walk
// covers the whole frame snapshot, which is too much to redo per ranking
// call on the memo-warm path.
func (d *Design) GangClassHash() uint64 { return d.gangClassHash }

func (d *Design) computeGangClassHash() uint64 {
	h := sigUint(FNVOffset64, d.gangLayoutSig)
	h = sigUint(h, uint64(len(d.procArts)))
	for k := range d.procArts {
		h = sigUint(h, d.procArts[k].gangSig)
		if d.procArts[k].boxed {
			h = sigUint(h, 1)
		}
	}
	for i := range d.initVal {
		h = sigUint(h, d.initVal[i])
		h = sigUint(h, d.initXZ[i])
	}
	for i := range d.levelFan {
		h = sigUint(h, uint64(len(d.levelFan[i])))
		for _, pid := range d.levelFan[i] {
			h = sigUint(h, uint64(pid))
		}
		h = sigUint(h, uint64(len(d.edgeFan[i])))
		for _, sub := range d.edgeFan[i] {
			h = sigUint(h, uint64(sub.proc))
			h = sigUint(h, uint64(sub.edge))
		}
	}
	return h
}

// gangProcSig canonically hashes one process for gang-program sharing, with
// identifiers resolved to what lowering reads instead of what the source
// calls them.
func gangProcSig(p *process, netIdx map[*net]int32) uint64 {
	if p.cont {
		h := sigUint(FNVOffset64, gsCont)
		h = gangSigLValue(h, p.lhs, p.scope, netIdx)
		rsc := p.rhsScope
		if rsc == nil {
			rsc = p.scope
		}
		return gangSigExpr(h, p.rhs, rsc, netIdx)
	}
	h := sigUint(FNVOffset64, gsBehavioral)
	return gangSigStmt(h, p.body, p.scope, netIdx)
}

// gangSigExpr folds one expression in rvalue position. Resolution mirrors
// compileGExpr and constFold: parameters shadow nets, a parameter folds as
// its constant value, a net folds as its index. An identifier resolving to
// neither keeps its name (elaboration rejects such processes anyway; the
// name-sensitive fallback just keeps the hash total).
func gangSigExpr(h uint64, e ast.Expr, sc *scope, netIdx map[*net]int32) uint64 {
	switch x := e.(type) {
	case nil:
		return sigUint(h, gsNil)
	case *ast.Ident:
		if v, ok := sc.params[x.Name]; ok {
			h = sigUint(h, gsParam)
			h = sigUint(h, uint64(v.Width()))
			return sigString(h, v.String())
		}
		if n, ok := sc.lookupNet(x.Name); ok {
			h = sigUint(h, gsNet)
			return sigUint(h, uint64(netIdx[n]))
		}
		h = sigUint(h, gsFreeIdent)
		return sigString(h, x.Name)
	case *ast.Number:
		v := numberValue(x)
		h = sigUint(h, gsNumber)
		h = sigUint(h, uint64(v.Width()))
		return sigString(h, v.String())
	case *ast.Unary:
		h = sigUint(h, gsUnary)
		h = sigUint(h, uint64(x.Op))
		return gangSigExpr(h, x.X, sc, netIdx)
	case *ast.Binary:
		h = sigUint(h, gsBinary)
		h = sigUint(h, uint64(x.Op))
		h = gangSigExpr(h, x.X, sc, netIdx)
		return gangSigExpr(h, x.Y, sc, netIdx)
	case *ast.Ternary:
		h = sigUint(h, gsTernary)
		h = gangSigExpr(h, x.Cond, sc, netIdx)
		h = gangSigExpr(h, x.Then, sc, netIdx)
		return gangSigExpr(h, x.Else, sc, netIdx)
	case *ast.Concat:
		h = sigUint(h, gsConcat)
		h = sigUint(h, uint64(len(x.Parts)))
		for _, part := range x.Parts {
			h = gangSigExpr(h, part, sc, netIdx)
		}
		return h
	case *ast.Repl:
		h = sigUint(h, gsRepl)
		h = gangSigExpr(h, x.Count, sc, netIdx)
		return gangSigExpr(h, x.Value, sc, netIdx)
	case *ast.Index:
		h = sigUint(h, gsIndex)
		h = gangSigExpr(h, x.X, sc, netIdx)
		return gangSigExpr(h, x.Idx, sc, netIdx)
	case *ast.PartSel:
		h = sigUint(h, gsPartSel)
		h = sigUint(h, uint64(x.Kind))
		h = gangSigExpr(h, x.X, sc, netIdx)
		h = gangSigExpr(h, x.A, sc, netIdx)
		return gangSigExpr(h, x.B, sc, netIdx)
	default:
		// Unknown node kind: no structural identity to claim.
		return sigUint(h, 0)
	}
}

// gangSigLValue folds one expression in lvalue position, where lowering
// (compileGLValue) resolves base identifiers as nets only — parameters never
// shadow an assignment target. Select bounds inside the lvalue are ordinary
// rvalue expressions.
func gangSigLValue(h uint64, e ast.Expr, sc *scope, netIdx map[*net]int32) uint64 {
	switch x := e.(type) {
	case nil:
		return sigUint(h, gsNil)
	case *ast.Ident:
		if n, ok := sc.lookupNet(x.Name); ok {
			h = sigUint(h, gsLValNet)
			return sigUint(h, uint64(netIdx[n]))
		}
		h = sigUint(h, gsLValFree)
		return sigString(h, x.Name)
	case *ast.Index:
		h = sigUint(h, gsIndex)
		h = gangSigLValue(h, x.X, sc, netIdx)
		return gangSigExpr(h, x.Idx, sc, netIdx)
	case *ast.PartSel:
		h = sigUint(h, gsPartSel)
		h = sigUint(h, uint64(x.Kind))
		h = gangSigLValue(h, x.X, sc, netIdx)
		h = gangSigExpr(h, x.A, sc, netIdx)
		return gangSigExpr(h, x.B, sc, netIdx)
	case *ast.Concat:
		h = sigUint(h, gsConcat)
		h = sigUint(h, uint64(len(x.Parts)))
		for _, part := range x.Parts {
			h = gangSigLValue(h, part, sc, netIdx)
		}
		return h
	default:
		return sigUint(h, 0)
	}
}

// gangSigStmt folds one statement. Block labels are skipped (lowering ignores
// them); everything that shapes execution — assignment blocking-ness, case
// kinds, default arms, loop spines — is folded.
func gangSigStmt(h uint64, st ast.Stmt, sc *scope, netIdx map[*net]int32) uint64 {
	switch x := st.(type) {
	case nil:
		return sigUint(h, gsNil)
	case *ast.Block:
		h = sigUint(h, gsBlock)
		h = sigUint(h, uint64(len(x.Stmts)))
		for _, sub := range x.Stmts {
			h = gangSigStmt(h, sub, sc, netIdx)
		}
		return h
	case *ast.AssignStmt:
		h = sigUint(h, gsAssign)
		if x.Blocking {
			h = sigUint(h, 1)
		} else {
			h = sigUint(h, 2)
		}
		h = gangSigLValue(h, x.LHS, sc, netIdx)
		return gangSigExpr(h, x.RHS, sc, netIdx)
	case *ast.If:
		h = sigUint(h, gsIf)
		h = gangSigExpr(h, x.Cond, sc, netIdx)
		h = gangSigStmt(h, x.Then, sc, netIdx)
		return gangSigStmt(h, x.Else, sc, netIdx)
	case *ast.Case:
		h = sigUint(h, gsCase)
		h = sigUint(h, uint64(x.Kind))
		h = gangSigExpr(h, x.Subject, sc, netIdx)
		h = sigUint(h, uint64(len(x.Items)))
		for _, item := range x.Items {
			if item.Labels == nil {
				h = sigUint(h, gsCaseDefault)
			} else {
				h = sigUint(h, gsCaseItem)
				h = sigUint(h, uint64(len(item.Labels)))
				for _, lab := range item.Labels {
					h = gangSigExpr(h, lab, sc, netIdx)
				}
			}
			h = gangSigStmt(h, item.Body, sc, netIdx)
		}
		return h
	case *ast.For:
		// Init and Step are concrete pointers: box them only when non-nil, so
		// a typed nil cannot slip past the interface nil case above.
		h = sigUint(h, gsFor)
		if x.Init == nil {
			h = sigUint(h, gsNil)
		} else {
			h = gangSigStmt(h, x.Init, sc, netIdx)
		}
		h = gangSigExpr(h, x.Cond, sc, netIdx)
		if x.Step == nil {
			h = sigUint(h, gsNil)
		} else {
			h = gangSigStmt(h, x.Step, sc, netIdx)
		}
		return gangSigStmt(h, x.Body, sc, netIdx)
	default:
		return sigUint(h, 0)
	}
}
