//go:build !race

package sim

// raceEnabled reports whether the race detector is active (it perturbs
// sync.Pool and allocation behavior, so the alloc-regression tests skip).
const raceEnabled = false
