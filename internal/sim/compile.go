// Compiled simulation backend: Compile flattens an elaborated design into an
// index-addressed netlist whose entire mutable state lives in two flat
// per-Engine []uint64 planes (val/xz). Every net owns a contiguous word range
// in the planes, and every intermediate expression of every process owns a
// scratch word range assigned at compile time, so compiled processes are
// destination-passing kernels that read operand slots and write their result
// slot in place: steady-state evaluation performs zero heap allocations.
// Boxed Values survive only at the API boundary (SetInput/Output) and in the
// boxed fallback path below. A Design is immutable and safe for concurrent
// use; each concurrent evaluation gets its own cheap Engine (pooled via
// AcquireEngine/ReleaseEngine).
//
// Two lowering strategies share this file's Design:
//
//   - The register-file path (regfile.go) statically sizes every slot. It
//     handles every construct whose result width has a compile-time bound —
//     in practice all real designs.
//   - The boxed path below (the PR-1 compiler, kept verbatim in semantics)
//     lowers processes the register-file path cannot bound statically:
//     part-selects with non-constant [a:b] bounds or non-constant indexed
//     widths, replications with non-constant counts, and pathologically wide
//     intermediates. It evaluates immutable Values exactly like the
//     interpreter and converts to/from the flat planes at net accesses.
//
// Both compilers deliberately mirror the interpreter (eval.go) construct by
// construct — width contexts, X-propagation, part-select bounds, event
// semantics — and the backends are held together by differential tests
// (random_expr_test.go, kernel_width_test.go) rather than trust. One
// intended difference: the interpreter reports unknown identifiers and
// unsupported constructs lazily at first execution, while Compile rejects
// them up front.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/verilog/ast"
	"repro/internal/verilog/printer"
)

// maxRegCap bounds the static bit capacity of a register-file slot. A node
// whose width bound exceeds it (e.g. nested replications) drops the whole
// process to the boxed path rather than reserving absurd frame space.
const maxRegCap = 1 << 16

// errNoRegfile is the internal signal that a process cannot be lowered to
// the register-file form and should fall back to the boxed compiler. It is
// never returned to callers.
var errNoRegfile = errors.New("regfile: dynamic width")

// cnet is one compiled net slot (static metadata; values live in the
// Engine's planes at [off, off+nw)).
type cnet struct {
	name  string
	width int
	lsb   int
	off   int32 // word offset in the frame
	nw    int32 // words(width)
}

// cproc is one compiled process: a closure over frame offsets.
type cproc struct {
	run  func(en *Engine) error
	cont bool
}

// cedgeSub is an edge-sensitive subscription of a process to a net.
type cedgeSub struct {
	proc int32
	edge ast.EdgeKind
}

// Design is a compiled, elaborated design. It is immutable after Compile and
// safe for concurrent use: all mutable simulation state lives in Engines.
type Design struct {
	top        string
	nets       []cnet
	stateWords int32 // words holding net state (prefix of the frame)
	frameWords int32 // total frame size: state + constant pool + scratch
	// initVal/initXZ are the frame snapshot after initial blocks + first
	// settle: net state, then compile-time constants, then zeroed scratch.
	initVal []uint64
	initXZ  []uint64

	procs    []cproc
	levelFan [][]int32
	edgeFan  [][]cedgeSub
	inputs   []PortInfo
	outputs  []PortInfo
	topIdx   map[string]int32 // top-scope local name -> net index
	inputIdx map[string]int32 // top-level input port name -> net index

	boxedProcs int // processes lowered via the boxed fallback (observability)

	// layoutSig and procArts make the design usable as a delta-compilation
	// base (see CompileDelta): layoutSig hashes the flattened net layout
	// (order, widths, LSBs — the inputs that fix every net's frame offset),
	// and procArts records one compiled artifact per lowered process.
	layoutSig   uint64
	procArts    []procArt
	deltaReused int // processes whose artifacts came from the base design

	// gangLayoutSig is the name-blind layout hash (gangsig.go): net shapes
	// and order without hierarchical names. It keys gang-program sharing
	// across designs that differ only by identifier renaming, which the
	// name-sensitive layoutSig deliberately distinguishes.
	gangLayoutSig uint64
	// gangClassHash folds everything whole-lane dedup compares (laneEqual);
	// precomputed at compile time for the ranking batcher (GangClassHash).
	gangClassHash uint64

	// canonHash is the content address of this design for the persistent
	// result store: a hash over (canonical source key, top module). Set by
	// the compile cache, whose key computes both halves anyway; designs
	// compiled directly (tests, tools) leave it "" and simply skip the
	// store. See CanonicalHash.
	canonHash string

	// gangProcs and gangNetIdx retain the elaborated process list (aligned
	// with procs) and the net index map, so the shared gang program
	// (gangrf.go) can be lowered lazily from the same sources the solo
	// closures came from. gangProg caches that lowering; it is lane-count
	// independent, so one program serves every SoA gang of this design.
	gangProcs  []*process
	gangNetIdx map[*net]int32
	gangOnce   sync.Once
	gangProg   *gangProg

	pool sync.Pool // recycled Engines (AcquireEngine/ReleaseEngine)
}

// procArt is the per-process unit of compilation reuse: the lowered closure
// plus everything needed to splice it into another design's frame. A closure
// captures only frame offsets, net indices and compile-time Values — no
// reference to the Simulator or Design it was lowered under — so it is valid
// in any design with an identical net layout, provided it is re-entered at
// the identical frame cursor (frameIn) so all its scratch and constant
// offsets land where they were allocated.
type procArt struct {
	sig      uint64 // canonical process hash (printed text, scope, params)
	gangSig  uint64 // alpha-renaming-blind hash for gang sharing (gangsig.go)
	frameIn  int32  // frame cursor at lowering entry
	frameOut int32  // frame cursor after lowering (scratch + interned consts)
	consts   []constPatch
	cp       cproc
	boxed    bool
}

// Top returns the top module name the design was compiled for.
func (d *Design) Top() string { return d.top }

// CanonicalHash returns the design's content address — a stable hex hash
// over (canonical source, top module) that identifies it across processes
// and machines — or "" when the design was compiled outside the cache and
// has none. It keys the persistent fingerprint store: two designs with the
// same CanonicalHash are behaviorally identical.
func (d *Design) CanonicalHash() string { return d.canonHash }

// InputHandle resolves a top-level input port name to a handle usable with
// the Engine's handle-bound stimulus methods (SetInputH, SetInputUintH,
// TickH). Resolution costs one map lookup; handles are valid for every
// Engine of this Design, so the testbench resolves each name once per
// (design, stimulus) pair instead of once per drive. Non-input names fail
// with ErrNotInput, exactly like SetInput.
func (d *Design) InputHandle(name string) (int, error) {
	idx, ok := d.inputIdx[name]
	if !ok {
		return -1, fmt.Errorf("%w: %q", ErrNotInput, name)
	}
	return int(idx), nil
}

// OutputHandle resolves a top-level net name (usually an output port) to a
// handle usable with the Engine's handle-bound observation methods
// (HashOutputH, AppendOutputH, OutputH). Unknown names fail with
// ErrUnknownNet, exactly like Output.
func (d *Design) OutputHandle(name string) (int, error) {
	idx, ok := d.topIdx[name]
	if !ok {
		return -1, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return int(idx), nil
}

// NumNets returns the number of flattened nets.
func (d *Design) NumNets() int { return len(d.nets) }

// FrameWords returns the per-Engine state size in 64-bit words (net state,
// constant pool, and expression scratch).
func (d *Design) FrameWords() int { return int(d.frameWords) }

// BoxedProcs returns how many processes could not be lowered to the
// zero-allocation register-file form and use the boxed fallback.
func (d *Design) BoxedProcs() int { return d.boxedProcs }

// DeltaReused returns how many of the design's processes were spliced in
// from the delta base instead of being re-lowered (0 for plain Compile).
func (d *Design) DeltaReused() int { return d.deltaReused }

// Compile elaborates src with the given top module and compiles it. The
// initial state (initial blocks executed, combinational logic settled) is
// computed once here; NewEngine then only copies the frame snapshot.
func Compile(src *ast.Source, top string) (*Design, error) {
	s, err := New(src, top)
	if err != nil {
		return nil, err
	}
	return compileFrom(s, false, nil)
}

// CompileDelta compiles src like Compile but reuses per-process artifacts
// from base where they provably transfer: the net layouts must hash equal,
// and a process transfers when its canonical hash matches the base process
// at the same position and the frame cursor at its entry is unchanged (all
// captured scratch/constant offsets then resolve identically). Mutants
// produced by path-copy mutation differ from their base in one process
// spine, so typically everything up to the mutated process — and, when the
// mutation preserves frame shape, everything after it — is spliced instead
// of re-lowered. Elaboration (New) still runs per design: the initial-state
// snapshot depends on the mutated code.
func CompileDelta(base *Design, src *ast.Source, top string) (*Design, error) {
	s, err := New(src, top)
	if err != nil {
		return nil, err
	}
	return compileFrom(s, false, base)
}

// compiler carries the cross-references needed while lowering processes.
type compiler struct {
	netIdx     map[*net]int32
	d          *Design
	frameWords int32
	consts     []constPatch
	forceBoxed bool
}

type constPatch struct {
	off int32
	v   Value
}

// alloc reserves nwords words of frame space and returns their offset.
func (c *compiler) alloc(nwords int) int32 {
	off := c.frameWords
	c.frameWords += int32(nwords)
	return off
}

// allocConst interns a constant Value in the frame's constant pool.
func (c *compiler) allocConst(v Value) int32 {
	off := c.alloc(words(v.Width()))
	c.consts = append(c.consts, constPatch{off: off, v: v})
	return off
}

// sigString folds s (length-prefixed, so concatenations cannot collide by
// re-splitting) into a running FNV-1a hash.
func sigString(h uint64, s string) uint64 {
	h = sigUint(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * FNVPrime64
	}
	return h
}

func sigUint(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * FNVPrime64
		x >>= 8
	}
	return h
}

// layoutSigOf hashes everything that fixes net frame offsets and handle
// indices: the flattened net order with hierarchical names, widths and LSBs,
// plus the lowering mode. Two elaborations with equal layout signatures
// assign every net the same index and frame range, which is the ambient
// precondition for reusing any compiled process closure across them.
func layoutSigOf(s *Simulator, forceBoxed bool) uint64 {
	h := sigString(FNVOffset64, s.topName)
	if forceBoxed {
		h = sigUint(h, 1)
	}
	for _, n := range s.nets {
		h = sigString(h, n.name)
		h = sigUint(h, uint64(n.width))
		h = sigUint(h, uint64(int64(n.lsb)))
	}
	return h
}

// scopeSig folds a scope's identity and parameter environment: lowering
// resolves identifiers and elaboration-time constants through it, so a
// process artifact only transfers between designs whose scopes agree.
func scopeSig(h uint64, sc *scope) uint64 {
	if sc == nil {
		return sigUint(h, 0)
	}
	h = sigString(h, sc.prefix)
	names := make([]string, 0, len(sc.params))
	for name := range sc.params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := sc.params[name]
		h = sigString(h, name)
		h = sigUint(h, uint64(v.Width()))
		h = sigString(h, v.String())
	}
	return h
}

// procSigOf canonically hashes one process: its printed body (the printer is
// a tested normalizer, so formatting differences vanish) plus the scopes and
// parameters lowering reads. Sensitivity lists are deliberately excluded —
// they determine fanout, which compileFrom always recomputes per design.
func procSigOf(p *process) uint64 {
	h := scopeSig(FNVOffset64, p.scope)
	if p.cont {
		h = sigUint(h, 1)
		h = sigString(h, printer.PrintExpr(p.lhs))
		h = sigString(h, printer.PrintExpr(p.rhs))
		h = scopeSig(h, p.rhsScope)
		return h
	}
	h = sigUint(h, 2)
	return sigString(h, printer.PrintStmt(p.body, 0))
}

func compileFrom(s *Simulator, forceBoxed bool, base *Design) (*Design, error) {
	d := &Design{
		top:     s.topName,
		inputs:  append([]PortInfo(nil), s.inputs...),
		outputs: append([]PortInfo(nil), s.outputs...),
		topIdx:  make(map[string]int32, len(s.topScope.nets)),
	}
	c := &compiler{
		netIdx:     make(map[*net]int32, len(s.nets)),
		d:          d,
		forceBoxed: forceBoxed,
	}
	d.nets = make([]cnet, len(s.nets))
	for i, n := range s.nets {
		c.netIdx[n] = int32(i)
		nw := int32(words(n.width))
		d.nets[i] = cnet{name: n.name, width: n.width, lsb: n.lsb, off: c.alloc(int(nw)), nw: nw}
	}
	d.stateWords = c.frameWords
	for name, n := range s.topScope.nets {
		d.topIdx[name] = c.netIdx[n]
	}
	d.inputIdx = make(map[string]int32, len(d.inputs))
	for _, in := range d.inputs {
		if idx, ok := d.topIdx[in.Name]; ok {
			d.inputIdx[in.Name] = idx
		}
	}

	// Initial-only processes ran during New and never re-trigger, so they are
	// dropped; everything else is lowered in registration order. With a
	// delta base of identical layout, each process is first matched against
	// the base artifact at the same position — the per-process artifact
	// cache keyed by (process canonical hash, net-layout hash) the base
	// carries — and spliced in when both the hash and the frame entry cursor
	// agree; only processes that fail the match (the mutated spine, plus any
	// suffix the mutation's frame-shape change displaced) are re-lowered.
	d.layoutSig = layoutSigOf(s, forceBoxed)
	d.gangLayoutSig = gangLayoutSigOf(s, forceBoxed)
	canReuse := base != nil && base.layoutSig == d.layoutSig
	procID := make(map[*process]int32, len(s.procs))
	for _, p := range s.procs {
		if p.initialOnly {
			continue
		}
		sig := procSigOf(p)
		k := len(d.procs)
		var art procArt
		if canReuse && k < len(base.procArts) &&
			base.procArts[k].sig == sig && base.procArts[k].frameIn == c.frameWords {
			ba := &base.procArts[k]
			art = procArt{sig: sig, frameIn: ba.frameIn, frameOut: ba.frameOut,
				consts: ba.consts, cp: ba.cp, boxed: ba.boxed}
			c.frameWords = ba.frameOut
			c.consts = append(c.consts, ba.consts...)
			if ba.boxed {
				d.boxedProcs++
			}
			d.deltaReused++
		} else {
			frameIn, constMark, boxedMark := c.frameWords, len(c.consts), d.boxedProcs
			cp, err := c.compileProcess(p)
			if err != nil {
				return nil, err
			}
			art = procArt{sig: sig, frameIn: frameIn, frameOut: c.frameWords,
				consts: append([]constPatch(nil), c.consts[constMark:]...),
				cp:     cp, boxed: d.boxedProcs > boxedMark}
		}
		art.gangSig = gangProcSig(p, c.netIdx)
		procID[p] = int32(k)
		d.procs = append(d.procs, art.cp)
		d.procArts = append(d.procArts, art)
		d.gangProcs = append(d.gangProcs, p)
	}
	d.gangNetIdx = c.netIdx

	d.levelFan = make([][]int32, len(s.nets))
	d.edgeFan = make([][]cedgeSub, len(s.nets))
	for i, n := range s.nets {
		for _, p := range n.levelFanout {
			if id, ok := procID[p]; ok {
				d.levelFan[i] = append(d.levelFan[i], id)
			}
		}
		for _, sub := range n.edgeFanout {
			if id, ok := procID[sub.proc]; ok {
				d.edgeFan[i] = append(d.edgeFan[i], cedgeSub{proc: id, edge: sub.edge})
			}
		}
	}

	// Assemble the frame snapshot: net state from the settled simulator,
	// then interned constants, then zeroed scratch.
	d.frameWords = c.frameWords
	d.initVal = make([]uint64, d.frameWords)
	d.initXZ = make([]uint64, d.frameWords)
	for i, n := range s.nets {
		cn := &d.nets[i]
		copy(d.initVal[cn.off:cn.off+cn.nw], n.value.val)
		copy(d.initXZ[cn.off:cn.off+cn.nw], n.value.xz)
	}
	for _, cp := range c.consts {
		copy(d.initVal[cp.off:], cp.v.val)
		copy(d.initXZ[cp.off:], cp.v.xz)
	}
	// Everything the gang's whole-lane equality compares is now fixed, so the
	// advisory batching hash is computed once here instead of re-walking the
	// frame snapshot and fanout tables on every ranking call.
	d.gangClassHash = d.computeGangClassHash()
	return d, nil
}

// compileProcess lowers one process, preferring the register-file form and
// falling back to the boxed compiler for dynamically sized constructs. A
// failed register-file attempt rolls back the scratch/constant allocations
// it made before hitting the unsupported construct, so the fallback leaves
// no dead words in every Engine's frame.
func (c *compiler) compileProcess(p *process) (cproc, error) {
	if !c.forceBoxed {
		frameMark, constMark := c.frameWords, len(c.consts)
		cp, err := c.compileProcessRegfile(p)
		if err == nil {
			return cp, nil
		}
		if !errors.Is(err, errNoRegfile) {
			return cproc{}, err
		}
		c.frameWords, c.consts = frameMark, c.consts[:constMark]
	}
	c.d.boxedProcs++
	return c.compileProcessBoxed(p)
}

// --- Boxed fallback path (PR-1 semantics over flat storage) ------------------

func (c *compiler) compileProcessBoxed(p *process) (cproc, error) {
	if p.cont {
		rsc := p.rhsScope
		if rsc == nil {
			rsc = p.scope
		}
		lv, err := c.compileLValue(p.lhs, p.scope)
		if err != nil {
			return cproc{}, err
		}
		rhs, err := c.compileExpr(p.rhs, rsc)
		if err != nil {
			return cproc{}, err
		}
		run := func(en *Engine) error {
			w, err := lv.width(en)
			if err != nil {
				return err
			}
			v, err := rhs(en, w)
			if err != nil {
				return err
			}
			return en.assignLV(lv, v, true)
		}
		return cproc{run: run, cont: true}, nil
	}
	body, err := c.compileStmt(p.body, p.scope)
	if err != nil {
		return cproc{}, err
	}
	return cproc{run: body}, nil
}

// --- Statement lowering ------------------------------------------------------

// cstmt is a compiled statement.
type cstmt func(en *Engine) error

func (c *compiler) compileStmt(st ast.Stmt, sc *scope) (cstmt, error) {
	switch x := st.(type) {
	case *ast.Block:
		subs := make([]cstmt, len(x.Stmts))
		for i, sub := range x.Stmts {
			cs, err := c.compileStmt(sub, sc)
			if err != nil {
				return nil, err
			}
			subs[i] = cs
		}
		return func(en *Engine) error {
			for _, cs := range subs {
				if err := cs(en); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *ast.AssignStmt:
		lv, err := c.compileLValue(x.LHS, sc)
		if err != nil {
			return nil, err
		}
		rhs, err := c.compileExpr(x.RHS, sc)
		if err != nil {
			return nil, err
		}
		blocking := x.Blocking
		return func(en *Engine) error {
			w, err := lv.width(en)
			if err != nil {
				return err
			}
			v, err := rhs(en, w)
			if err != nil {
				return err
			}
			return en.assignLV(lv, v, blocking)
		}, nil
	case *ast.If:
		cond, err := c.compileExpr(x.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := c.compileStmt(x.Then, sc)
		if err != nil {
			return nil, err
		}
		var els cstmt
		if x.Else != nil {
			if els, err = c.compileStmt(x.Else, sc); err != nil {
				return nil, err
			}
		}
		return func(en *Engine) error {
			cv, err := cond(en, 0)
			if err != nil {
				return err
			}
			truth, known := cv.Bool3()
			if known && truth {
				return then(en)
			}
			// Known-false and unknown both take the else branch, matching
			// the interpreter (Icarus treats X as false).
			if els != nil {
				return els(en)
			}
			return nil
		}, nil
	case *ast.Case:
		return c.compileCase(x, sc)
	case *ast.For:
		return c.compileFor(x, sc)
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrElab, st)
	}
}

type ccaseItem struct {
	isDefault bool
	labels    []cexpr
	body      cstmt
}

func (c *compiler) compileCase(x *ast.Case, sc *scope) (cstmt, error) {
	subj, err := c.compileExpr(x.Subject, sc)
	if err != nil {
		return nil, err
	}
	items := make([]ccaseItem, len(x.Items))
	for i, item := range x.Items {
		body, err := c.compileStmt(item.Body, sc)
		if err != nil {
			return nil, err
		}
		ci := ccaseItem{body: body}
		if item.Labels == nil {
			ci.isDefault = true
		} else {
			ci.labels = make([]cexpr, len(item.Labels))
			for j, lbl := range item.Labels {
				cl, err := c.compileExpr(lbl, sc)
				if err != nil {
					return nil, err
				}
				ci.labels[j] = cl
			}
		}
		items[i] = ci
	}
	kind := x.Kind
	return func(en *Engine) error {
		sv, err := subj(en, 0)
		if err != nil {
			return err
		}
		deflt := -1
		for i := range items {
			if items[i].isDefault {
				deflt = i
				continue
			}
			for _, cl := range items[i].labels {
				lv, err := cl(en, 0)
				if err != nil {
					return err
				}
				match := false
				switch kind {
				case ast.CaseZ:
					match = CasezMatch(sv, lv, false)
				case ast.CaseX:
					match = CasezMatch(sv, lv, true)
				default:
					w := maxInt(sv.Width(), lv.Width())
					match = sv.Resize(w).Equal(lv.Resize(w))
				}
				if match {
					return items[i].body(en)
				}
			}
		}
		if deflt >= 0 {
			return items[deflt].body(en)
		}
		return nil
	}, nil
}

func (c *compiler) compileFor(x *ast.For, sc *scope) (cstmt, error) {
	var initLV, stepLV *clval
	var initRHS, stepRHS cexpr
	var err error
	if x.Init != nil {
		if initLV, err = c.compileLValue(x.Init.LHS, sc); err != nil {
			return nil, err
		}
		if initRHS, err = c.compileExpr(x.Init.RHS, sc); err != nil {
			return nil, err
		}
	}
	cond, err := c.compileExpr(x.Cond, sc)
	if err != nil {
		return nil, err
	}
	body, err := c.compileStmt(x.Body, sc)
	if err != nil {
		return nil, err
	}
	if x.Step != nil {
		if stepLV, err = c.compileLValue(x.Step.LHS, sc); err != nil {
			return nil, err
		}
		if stepRHS, err = c.compileExpr(x.Step.RHS, sc); err != nil {
			return nil, err
		}
	}
	return func(en *Engine) error {
		if initLV != nil {
			// Loop init/step RHS are self-determined, as in the interpreter.
			v, err := initRHS(en, 0)
			if err != nil {
				return err
			}
			if err := en.assignLV(initLV, v, true); err != nil {
				return err
			}
		}
		for iter := 0; ; iter++ {
			if iter >= maxLoopIters {
				return fmt.Errorf("%w: for loop exceeded %d iterations", ErrRuntime, maxLoopIters)
			}
			cv, err := cond(en, 0)
			if err != nil {
				return err
			}
			truth, known := cv.Bool3()
			if !known || !truth {
				return nil
			}
			if err := body(en); err != nil {
				return err
			}
			if stepLV != nil {
				v, err := stepRHS(en, 0)
				if err != nil {
					return err
				}
				if err := en.assignLV(stepLV, v, true); err != nil {
					return err
				}
			}
		}
	}, nil
}

// --- Lvalue lowering ---------------------------------------------------------

// ctarget is one resolved slice of a compiled lvalue.
type ctarget struct {
	idx   int32
	lo    int
	width int
	skip  bool
}

// clval is a compiled lvalue: width mirrors Simulator.lvalueWidth, resolve
// mirrors Simulator.resolveLValue.
type clval struct {
	width   func(en *Engine) (int, error)
	resolve func(en *Engine) ([]ctarget, int, error)
}

func constWidth(w int) func(en *Engine) (int, error) {
	return func(en *Engine) (int, error) { return w, nil }
}

func staticResolve(targets []ctarget, total int) func(en *Engine) ([]ctarget, int, error) {
	return func(en *Engine) ([]ctarget, int, error) { return targets, total, nil }
}

func (c *compiler) compileLValue(lhs ast.Expr, sc *scope) (*clval, error) {
	switch x := lhs.(type) {
	case *ast.Ident:
		n, ok := sc.lookupNet(x.Name)
		if !ok {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", ErrElab, x.Name)
		}
		idx := c.netIdx[n]
		targets := []ctarget{{idx: idx, lo: 0, width: n.width}}
		return &clval{width: constWidth(n.width), resolve: staticResolve(targets, n.width)}, nil
	case *ast.Index:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%w: nested lvalue selects are not supported", ErrElab)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", ErrElab, base.Name)
		}
		idx, lsb, width := c.netIdx[n], n.lsb, n.width
		if iv, isConst := constOf(x.Idx, sc); isConst {
			// Constant bit index: resolve the slot once at compile time.
			u, known := iv.Uint64()
			lo := 0
			skip := true
			if known {
				lo = int(u) - lsb
				skip = lo < 0 || lo >= width
			}
			t := ctarget{skip: true, width: 1}
			if !skip {
				t = ctarget{idx: idx, lo: lo, width: 1}
			}
			return &clval{width: constWidth(1), resolve: staticResolve([]ctarget{t}, 1)}, nil
		}
		cidx, err := c.compileExpr(x.Idx, sc)
		if err != nil {
			return nil, err
		}
		return &clval{
			width: constWidth(1),
			resolve: func(en *Engine) ([]ctarget, int, error) {
				idxv, err := cidx(en, 0)
				if err != nil {
					return nil, 0, err
				}
				iv, known := idxv.Uint64()
				if !known {
					return []ctarget{{skip: true, width: 1}}, 1, nil
				}
				lo := int(iv) - lsb
				if lo < 0 || lo >= width {
					return []ctarget{{skip: true, width: 1}}, 1, nil
				}
				return []ctarget{{idx: idx, lo: lo, width: 1}}, 1, nil
			},
		}, nil
	case *ast.PartSel:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%w: nested lvalue selects are not supported", ErrElab)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", ErrElab, base.Name)
		}
		idx, lsb := c.netIdx[n], n.lsb
		av, aConst := constOf(x.A, sc)
		bv, bConst := constOf(x.B, sc)
		if aConst && bConst {
			// Constant bounds (the overwhelmingly common case): both the
			// width estimate and the slice resolve once at compile time.
			w := partSelLvalueWidthVals(x.Kind, av, bv)
			lo, rw, known, err := partSelBoundsVals(x.Kind, av, bv, lsb)
			lv := &clval{width: constWidth(w)}
			if err != nil {
				lv.resolve = func(en *Engine) ([]ctarget, int, error) { return nil, 0, err }
			} else if !known {
				lv.resolve = staticResolve([]ctarget{{skip: true, width: rw}}, rw)
			} else {
				lv.resolve = staticResolve([]ctarget{{idx: idx, lo: lo, width: rw}}, rw)
			}
			return lv, nil
		}
		ca, err := c.compileExpr(x.A, sc)
		if err != nil {
			return nil, err
		}
		cb, err := c.compileExpr(x.B, sc)
		if err != nil {
			return nil, err
		}
		kind := x.Kind
		return &clval{
			width: func(en *Engine) (int, error) {
				av, errA := ca(en, 0)
				bv, errB := cb(en, 0)
				if errA != nil || errB != nil {
					return 1, nil
				}
				return partSelLvalueWidthVals(kind, av, bv), nil
			},
			resolve: func(en *Engine) ([]ctarget, int, error) {
				av, err := ca(en, 0)
				if err != nil {
					return nil, 0, err
				}
				bv, err := cb(en, 0)
				if err != nil {
					return nil, 0, err
				}
				lo, w, known, err := partSelBoundsVals(kind, av, bv, lsb)
				if err != nil {
					return nil, 0, err
				}
				if !known {
					return []ctarget{{skip: true, width: w}}, w, nil
				}
				return []ctarget{{idx: idx, lo: lo, width: w}}, w, nil
			},
		}, nil
	case *ast.Concat:
		parts := make([]*clval, len(x.Parts))
		for i, part := range x.Parts {
			lv, err := c.compileLValue(part, sc)
			if err != nil {
				return nil, err
			}
			parts[i] = lv
		}
		return &clval{
			width: func(en *Engine) (int, error) {
				total := 0
				for _, lv := range parts {
					w, err := lv.width(en)
					if err != nil {
						return 0, err
					}
					total += w
				}
				return total, nil
			},
			resolve: func(en *Engine) ([]ctarget, int, error) {
				var all []ctarget
				total := 0
				for _, lv := range parts {
					ts, w, err := lv.resolve(en)
					if err != nil {
						return nil, 0, err
					}
					all = append(all, ts...)
					total += w
				}
				return all, total, nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("%w: expression is not a valid lvalue", ErrElab)
	}
}

// --- Expression lowering -----------------------------------------------------

// cexpr is a compiled expression evaluated under an assignment context width
// (0 = self-determined), mirroring Simulator.evalCtx.
type cexpr func(en *Engine, ctx int) (Value, error)

// constOf recognizes elaboration-time constants (literals and parameters)
// whose self-determined value is context-independent.
func constOf(e ast.Expr, sc *scope) (Value, bool) {
	switch x := e.(type) {
	case *ast.Number:
		return numberValue(x), true
	case *ast.Ident:
		if v, ok := sc.params[x.Name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

func constExpr(v Value) cexpr {
	return func(en *Engine, ctx int) (Value, error) { return v, nil }
}

func (c *compiler) compileExpr(e ast.Expr, sc *scope) (cexpr, error) {
	switch x := e.(type) {
	case *ast.Ident:
		// Parameters shadow nets, as in the interpreter.
		if v, ok := sc.params[x.Name]; ok {
			return constExpr(v), nil
		}
		if n, ok := sc.lookupNet(x.Name); ok {
			idx := c.netIdx[n]
			return func(en *Engine, ctx int) (Value, error) { return en.netValue(idx), nil }, nil
		}
		return nil, fmt.Errorf("%w: unknown identifier %q", ErrElab, x.Name)
	case *ast.Number:
		return constExpr(numberValue(x)), nil
	case *ast.Unary:
		cx, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		op := x.Op
		switch op {
		case ast.UnaryPlus, ast.UnaryMinus, ast.BitNot:
			return func(en *Engine, ctx int) (Value, error) {
				v, err := cx(en, ctx)
				if err != nil {
					return Value{}, err
				}
				if ctx > v.Width() {
					v = v.Resize(ctx)
				}
				return evalUnary(op, v), nil
			}, nil
		default:
			// Logical not and reductions are self-determined, 1-bit results.
			return func(en *Engine, ctx int) (Value, error) {
				v, err := cx(en, 0)
				if err != nil {
					return Value{}, err
				}
				return evalUnary(op, v), nil
			}, nil
		}
	case *ast.Binary:
		return c.compileBinary(x, sc)
	case *ast.Ternary:
		cond, err := c.compileExpr(x.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := c.compileExpr(x.Then, sc)
		if err != nil {
			return nil, err
		}
		els, err := c.compileExpr(x.Else, sc)
		if err != nil {
			return nil, err
		}
		return func(en *Engine, ctx int) (Value, error) {
			cv, err := cond(en, 0)
			if err != nil {
				return Value{}, err
			}
			truth, known := cv.Bool3()
			if known {
				if truth {
					return then(en, ctx)
				}
				return els(en, ctx)
			}
			tv, err := then(en, ctx)
			if err != nil {
				return Value{}, err
			}
			ev, err := els(en, ctx)
			if err != nil {
				return Value{}, err
			}
			return mergeTernary(tv, ev), nil
		}, nil
	case *ast.Concat:
		parts := make([]cexpr, len(x.Parts))
		for i, pe := range x.Parts {
			cp, err := c.compileExpr(pe, sc)
			if err != nil {
				return nil, err
			}
			parts[i] = cp
		}
		return func(en *Engine, ctx int) (Value, error) {
			vals := make([]Value, len(parts))
			for i, cp := range parts {
				v, err := cp(en, 0)
				if err != nil {
					return Value{}, err
				}
				vals[i] = v
			}
			return ConcatVals(vals), nil
		}, nil
	case *ast.Repl:
		cnt, err := c.compileExpr(x.Count, sc)
		if err != nil {
			return nil, err
		}
		cv, err := c.compileExpr(x.Value, sc)
		if err != nil {
			return nil, err
		}
		return func(en *Engine, ctx int) (Value, error) {
			cntV, err := cnt(en, 0)
			if err != nil {
				return Value{}, err
			}
			n, ok := cntV.Uint64()
			if !ok || n > 1<<16 {
				return Value{}, fmt.Errorf("%w: replication count must be a small constant", ErrRuntime)
			}
			v, err := cv(en, 0)
			if err != nil {
				return Value{}, err
			}
			return ReplVal(int(n), v), nil
		}, nil
	case *ast.Index:
		cx, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		lsb := exprBaseLSB(x.X, sc)
		cidx, err := c.compileExpr(x.Idx, sc)
		if err != nil {
			return nil, err
		}
		return func(en *Engine, ctx int) (Value, error) {
			base, err := cx(en, 0)
			if err != nil {
				return Value{}, err
			}
			idxV, err := cidx(en, 0)
			if err != nil {
				return Value{}, err
			}
			iv, known := idxV.Uint64()
			if !known {
				return NewX(1), nil
			}
			return base.SliceBits(int(iv)-lsb, 1), nil
		}, nil
	case *ast.PartSel:
		cx, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		lsb := exprBaseLSB(x.X, sc)
		ca, err := c.compileExpr(x.A, sc)
		if err != nil {
			return nil, err
		}
		cb, err := c.compileExpr(x.B, sc)
		if err != nil {
			return nil, err
		}
		kind := x.Kind
		return func(en *Engine, ctx int) (Value, error) {
			base, err := cx(en, 0)
			if err != nil {
				return Value{}, err
			}
			av, err := ca(en, 0)
			if err != nil {
				return Value{}, err
			}
			bv, err := cb(en, 0)
			if err != nil {
				return Value{}, err
			}
			lo, w, known, err := partSelBoundsVals(kind, av, bv, lsb)
			if err != nil {
				return Value{}, err
			}
			if !known {
				return NewX(w), nil
			}
			return base.SliceBits(lo, w), nil
		}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported expression %T", ErrElab, e)
	}
}

// exprBaseLSB resolves the declared LSB of a select's base expression, which
// only identifiers that name nets carry (everything else reads from bit 0).
func exprBaseLSB(e ast.Expr, sc *scope) int {
	if id, ok := e.(*ast.Ident); ok {
		if n, ok2 := sc.lookupNet(id.Name); ok2 {
			return n.lsb
		}
	}
	return 0
}

func (c *compiler) compileBinary(x *ast.Binary, sc *scope) (cexpr, error) {
	cx, err := c.compileExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	cy, err := c.compileExpr(x.Y, sc)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case ast.Add, ast.Sub, ast.Mul, ast.Div, ast.Mod,
		ast.BitAnd, ast.BitOr, ast.BitXor, ast.BitXnor:
		return func(en *Engine, ctx int) (Value, error) {
			a, err := cx(en, ctx)
			if err != nil {
				return Value{}, err
			}
			b, err := cy(en, ctx)
			if err != nil {
				return Value{}, err
			}
			w := maxInt(maxInt(a.Width(), b.Width()), ctx)
			return evalBinary(op, a.Resize(w), b.Resize(w)), nil
		}, nil
	case ast.Shl, ast.Shr, ast.AShl, ast.AShr:
		return func(en *Engine, ctx int) (Value, error) {
			a, err := cx(en, ctx)
			if err != nil {
				return Value{}, err
			}
			if ctx > a.Width() {
				a = a.Resize(ctx)
			}
			b, err := cy(en, 0) // shift amount is self-determined
			if err != nil {
				return Value{}, err
			}
			return evalBinary(op, a, b), nil
		}, nil
	case ast.LogAnd, ast.LogOr:
		return func(en *Engine, ctx int) (Value, error) {
			a, err := cx(en, 0)
			if err != nil {
				return Value{}, err
			}
			truth, known := a.Bool3()
			if known {
				if op == ast.LogAnd && !truth {
					return NewKnown(1, 0), nil
				}
				if op == ast.LogOr && truth {
					return NewKnown(1, 1), nil
				}
			}
			b, err := cy(en, 0)
			if err != nil {
				return Value{}, err
			}
			return evalBinary(op, a, b), nil
		}, nil
	default:
		// Comparisons: operands sized to each other, result is 1 bit.
		return func(en *Engine, ctx int) (Value, error) {
			a, err := cx(en, 0)
			if err != nil {
				return Value{}, err
			}
			b, err := cy(en, 0)
			if err != nil {
				return Value{}, err
			}
			return evalBinary(op, a, b), nil
		}, nil
	}
}
