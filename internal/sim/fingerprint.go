package sim

import (
	"fmt"
	"strconv"
)

// Inline FNV-1a, matching hash/fnv's 64-bit variant byte for byte. The
// streaming fingerprint path folds output bits into a running hash without
// materializing the printed string, so the hasher itself must not allocate
// either (hash/fnv boxes a new hasher per call).
const (
	// FNVOffset64 is the FNV-1a 64-bit offset basis — the seed callers pass
	// for the first HashOutput call of a digest.
	FNVOffset64 uint64 = 0xcbf29ce484222325
	// FNVPrime64 is the matching multiplier. Exported alongside the offset
	// so callers folding their own bytes into the same digest (testbench's
	// fingerprint path) share one definition instead of a copy that must
	// stay byte-identical.
	FNVPrime64 uint64 = 0x100000001b3
)

// HashOutput folds the binary rendering of a top-level net at the given
// width into a running FNV-1a hash and returns the updated hash. The bytes
// hashed are exactly the bytes AppendOutput would append (equivalently,
// Output(name).Resize(width).String()): the decimal width, "'b", then one
// character per bit MSB-first with bits beyond the net width reading as
// known 0. Two outputs therefore collide exactly when their printed strings
// are equal, which makes streaming fingerprints interchangeable with
// printed-trace fingerprints. Allocates nothing.
func (en *Engine) HashOutput(h uint64, name string, width int) (uint64, error) {
	idx, ok := en.d.topIdx[name]
	if !ok {
		return h, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return en.HashOutputH(h, int(idx), width), nil
}

// HashOutputH is HashOutput through a handle: the streaming fingerprint hot
// path, with the per-output map lookup hoisted out entirely.
func (en *Engine) HashOutputH(h uint64, idx int, width int) uint64 {
	cn := &en.d.nets[idx]
	sv := en.val[cn.off : cn.off+cn.nw]
	sx := en.xz[cn.off : cn.off+cn.nw]
	var wbuf [20]byte
	for _, b := range strconv.AppendInt(wbuf[:0], int64(width), 10) {
		h = (h ^ uint64(b)) * FNVPrime64
	}
	h = (h ^ '\'') * FNVPrime64
	h = (h ^ 'b') * FNVPrime64
	for i := width - 1; i >= 0; i-- {
		var b uint64
		switch kbit(sv, sx, cn.width, i) {
		case 0:
			b = '0'
		case 1:
			b = '1'
		case 2:
			b = 'x'
		default:
			b = 'z'
		}
		h = (h ^ b) * FNVPrime64
	}
	return h
}
