// Package sim implements a four-state (0/1/X/Z) event-driven simulator for
// the supported Verilog subset. It plays the role Icarus Verilog plays in the
// paper: executing candidate modules under generated testbenches and
// producing output traces.
//
// Value is the four-state bit-vector type. Bit i of a value is encoded by
// two planes: xz=0 means a known bit whose value is val; xz=1 with val=0 is
// X and with val=1 is Z.
package sim

import "strconv"

// Value is an arbitrary-width four-state logic vector. Values are immutable
// by convention: operations return new Values.
type Value struct {
	width int
	val   []uint64
	xz    []uint64
}

func words(width int) int {
	if width <= 0 {
		return 1
	}
	return (width + 63) / 64
}

// mask clears storage bits above the width.
func (v Value) mask() Value {
	if v.width <= 0 {
		return v
	}
	rem := v.width % 64
	last := (v.width - 1) / 64
	for i := last + 1; i < len(v.val); i++ {
		v.val[i], v.xz[i] = 0, 0
	}
	if rem != 0 {
		m := uint64(1)<<uint(rem) - 1
		v.val[last] &= m
		v.xz[last] &= m
	}
	return v
}

// NewKnown returns a width-bit value holding the low bits of x (known).
func NewKnown(width int, x uint64) Value {
	v := Value{width: width, val: make([]uint64, words(width)), xz: make([]uint64, words(width))}
	v.val[0] = x
	return v.mask()
}

// NewX returns a width-bit all-X value.
func NewX(width int) Value {
	v := Value{width: width, val: make([]uint64, words(width)), xz: make([]uint64, words(width))}
	for i := range v.xz {
		v.xz[i] = ^uint64(0)
	}
	return v.mask()
}

// NewFromPlanes builds a value from copied val/xz planes.
func NewFromPlanes(width int, val, xz []uint64) Value {
	n := words(width)
	v := Value{width: width, val: make([]uint64, n), xz: make([]uint64, n)}
	copy(v.val, val)
	copy(v.xz, xz)
	return v.mask()
}

// ValueView wraps existing planes as a Value WITHOUT copying. The planes
// must hold words(width) properly masked words (no set bits at or above
// width) and must not be mutated while the view is live — the view aliases
// them. This is the zero-allocation bridge the compiled testbench schedule
// uses to drive stimulus words straight from its flat buffers.
func ValueView(width int, val, xz []uint64) Value {
	n := words(width)
	return Value{width: width, val: val[:n], xz: xz[:n]}
}

// CopyPlanes copies the value's words(Width()) storage words into the
// destination slices, which must be at least that long. It is the inverse of
// ValueView: testbench schedules flatten generated stimulus values into
// reusable plane buffers with it.
func (v Value) CopyPlanes(dstVal, dstXZ []uint64) {
	n := words(v.width)
	copy(dstVal[:n], v.val)
	copy(dstXZ[:n], v.xz)
}

// PlaneWords returns words(Width()): the number of storage words CopyPlanes
// transfers and ValueView expects.
func (v Value) PlaneWords() int { return words(v.width) }

// Width returns the bit width.
func (v Value) Width() int { return v.width }

// IsZero reports whether the value is fully known and equal to zero.
func (v Value) IsZero() bool {
	for i := range v.val {
		if v.val[i] != 0 || v.xz[i] != 0 {
			return false
		}
	}
	return true
}

// HasXZ reports whether any bit is X or Z.
func (v Value) HasXZ() bool {
	for _, w := range v.xz {
		if w != 0 {
			return true
		}
	}
	return false
}

// Bit returns the state of bit i as one of '0','1','x','z'. Out-of-range
// bits read as 0.
func (v Value) Bit(i int) byte {
	if i < 0 || i >= v.width {
		return '0'
	}
	w, b := i/64, uint(i)%64
	valBit := v.val[w]>>b&1 != 0
	xzBit := v.xz[w]>>b&1 != 0
	switch {
	case !xzBit && !valBit:
		return '0'
	case !xzBit && valBit:
		return '1'
	case xzBit && !valBit:
		return 'x'
	default:
		return 'z'
	}
}

// setBit sets bit i to the given state character.
func (v Value) setBit(i int, state byte) {
	if i < 0 || i >= v.width {
		return
	}
	w, b := i/64, uint(i)%64
	vm, xm := uint64(0), uint64(0)
	switch state {
	case '1':
		vm = 1
	case 'x':
		xm = 1
	case 'z':
		vm, xm = 1, 1
	}
	v.val[w] = v.val[w]&^(1<<b) | vm<<b
	v.xz[w] = v.xz[w]&^(1<<b) | xm<<b
}

// Uint64 returns the value as a uint64 if it is fully known and fits.
func (v Value) Uint64() (uint64, bool) {
	if v.HasXZ() {
		return 0, false
	}
	for i := 1; i < len(v.val); i++ {
		if v.val[i] != 0 {
			return 0, false
		}
	}
	return v.val[0], true
}

// Resize returns the value zero-extended or truncated to width bits. X and Z
// bits are preserved where they fit.
func (v Value) Resize(width int) Value {
	if width == v.width {
		return v
	}
	out := Value{width: width, val: make([]uint64, words(width)), xz: make([]uint64, words(width))}
	copy(out.val, v.val)
	copy(out.xz, v.xz)
	return out.mask()
}

// Equal reports exact four-state equality (same width contents; widths may
// differ if the extra bits are zero).
func (v Value) Equal(o Value) bool {
	maxw := len(v.val)
	if len(o.val) > maxw {
		maxw = len(o.val)
	}
	get := func(s []uint64, i int) uint64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := 0; i < maxw; i++ {
		if get(v.val, i) != get(o.val, i) || get(v.xz, i) != get(o.xz, i) {
			return false
		}
	}
	return true
}

// String renders the value as a binary literal, e.g. "4'b10x1".
func (v Value) String() string {
	prefix := strconv.Itoa(v.width)
	out := make([]byte, 0, len(prefix)+2+v.width)
	out = append(out, prefix...)
	out = append(out, '\'', 'b')
	for i := v.width - 1; i >= 0; i-- {
		out = append(out, v.Bit(i))
	}
	return string(out)
}

// Bool3 is the three-valued truth of the value: (true, known) if any bit is
// 1; (false, known) if all bits are known 0; unknown otherwise.
func (v Value) Bool3() (truth, known bool) {
	anyOne := false
	anyXZ := false
	for i := range v.val {
		one := v.val[i] &^ v.xz[i]
		if one != 0 {
			anyOne = true
		}
		if v.xz[i] != 0 {
			anyXZ = true
		}
	}
	if anyOne {
		return true, true
	}
	if anyXZ {
		return false, false
	}
	return false, true
}

// --- Bitwise operations ------------------------------------------------------

// is0/is1 planes: a bit is known-0 when both planes are clear; known-1 when
// val is set and xz clear.

// And returns the bitwise AND with four-state semantics.
func And(a, b Value) Value {
	w := maxInt(a.width, b.width)
	a, b = a.Resize(w), b.Resize(w)
	out := Value{width: w, val: make([]uint64, words(w)), xz: make([]uint64, words(w))}
	for i := range out.val {
		a0 := ^a.val[i] & ^a.xz[i]
		a1 := a.val[i] & ^a.xz[i]
		b0 := ^b.val[i] & ^b.xz[i]
		b1 := b.val[i] & ^b.xz[i]
		one := a1 & b1
		zero := a0 | b0
		out.val[i] = one
		out.xz[i] = ^(one | zero)
	}
	return out.mask()
}

// Or returns the bitwise OR with four-state semantics.
func Or(a, b Value) Value {
	w := maxInt(a.width, b.width)
	a, b = a.Resize(w), b.Resize(w)
	out := Value{width: w, val: make([]uint64, words(w)), xz: make([]uint64, words(w))}
	for i := range out.val {
		a0 := ^a.val[i] & ^a.xz[i]
		a1 := a.val[i] & ^a.xz[i]
		b0 := ^b.val[i] & ^b.xz[i]
		b1 := b.val[i] & ^b.xz[i]
		one := a1 | b1
		zero := a0 & b0
		out.val[i] = one
		out.xz[i] = ^(one | zero)
	}
	return out.mask()
}

// Xor returns the bitwise XOR with four-state semantics.
func Xor(a, b Value) Value {
	w := maxInt(a.width, b.width)
	a, b = a.Resize(w), b.Resize(w)
	out := Value{width: w, val: make([]uint64, words(w)), xz: make([]uint64, words(w))}
	for i := range out.val {
		unk := a.xz[i] | b.xz[i]
		out.val[i] = (a.val[i] ^ b.val[i]) &^ unk
		out.xz[i] = unk
	}
	return out.mask()
}

// Xnor returns the bitwise XNOR with four-state semantics.
func Xnor(a, b Value) Value {
	return Not(Xor(a, b))
}

// Not returns the bitwise complement; X/Z bits stay X.
func Not(a Value) Value {
	out := Value{width: a.width, val: make([]uint64, len(a.val)), xz: make([]uint64, len(a.xz))}
	for i := range out.val {
		out.val[i] = ^a.val[i] &^ a.xz[i]
		out.xz[i] = a.xz[i]
	}
	return out.mask()
}

// --- Arithmetic ----------------------------------------------------------------

// Add returns a+b at width max(wa,wb); all-X if any operand bit is X/Z.
func Add(a, b Value) Value {
	w := maxInt(a.width, b.width)
	if a.HasXZ() || b.HasXZ() {
		return NewX(w)
	}
	a, b = a.Resize(w), b.Resize(w)
	out := Value{width: w, val: make([]uint64, words(w)), xz: make([]uint64, words(w))}
	var carry uint64
	for i := range out.val {
		s := a.val[i] + b.val[i]
		c1 := boolToU64(s < a.val[i])
		s2 := s + carry
		c2 := boolToU64(s2 < s)
		out.val[i] = s2
		carry = c1 | c2
	}
	return out.mask()
}

// Sub returns a-b at width max(wa,wb); all-X if any operand bit is X/Z.
func Sub(a, b Value) Value {
	w := maxInt(a.width, b.width)
	if a.HasXZ() || b.HasXZ() {
		return NewX(w)
	}
	a, b = a.Resize(w), b.Resize(w)
	out := Value{width: w, val: make([]uint64, words(w)), xz: make([]uint64, words(w))}
	var borrow uint64
	for i := range out.val {
		d := a.val[i] - b.val[i]
		b1 := boolToU64(a.val[i] < b.val[i])
		d2 := d - borrow
		b2 := boolToU64(d < borrow)
		out.val[i] = d2
		borrow = b1 | b2
	}
	return out.mask()
}

// Neg returns two's-complement negation.
func Neg(a Value) Value {
	return Sub(NewKnown(a.width, 0), a)
}

// Mul returns a*b at width max(wa,wb) (truncating); all-X on X/Z input.
func Mul(a, b Value) Value {
	w := maxInt(a.width, b.width)
	if a.HasXZ() || b.HasXZ() {
		return NewX(w)
	}
	a, b = a.Resize(w), b.Resize(w)
	n := words(w)
	out := Value{width: w, val: make([]uint64, n), xz: make([]uint64, n)}
	// Schoolbook 32-bit limb multiply to keep carries manageable.
	al := limbs32(a.val, n)
	bl := limbs32(b.val, n)
	res := make([]uint64, 2*n*2)
	for i := range al {
		var carry uint64
		for j := range bl {
			if i+j >= len(res) {
				break
			}
			cur := res[i+j] + al[i]*bl[j] + carry
			res[i+j] = cur & 0xFFFFFFFF
			carry = cur >> 32
		}
		if i+len(bl) < len(res) {
			res[i+len(bl)] += carry
		}
	}
	for i := 0; i < n; i++ {
		out.val[i] = res[2*i] | res[2*i+1]<<32
	}
	return out.mask()
}

func limbs32(v []uint64, n int) []uint64 {
	out := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		out[2*i] = v[i] & 0xFFFFFFFF
		out[2*i+1] = v[i] >> 32
	}
	return out
}

// Div returns a/b (unsigned); all-X on X/Z input or division by zero.
// Only single-word divisors/dividends take the fast path; multi-word uses
// long division on bits.
func Div(a, b Value) Value {
	w := maxInt(a.width, b.width)
	if a.HasXZ() || b.HasXZ() || b.IsZero() {
		return NewX(w)
	}
	if av, ok := a.Uint64(); ok {
		if bv, ok2 := b.Uint64(); ok2 {
			return NewKnown(w, av/bv)
		}
	}
	q, _ := divmodBits(a.Resize(w), b.Resize(w))
	return q
}

// Mod returns a%b (unsigned); all-X on X/Z input or division by zero.
func Mod(a, b Value) Value {
	w := maxInt(a.width, b.width)
	if a.HasXZ() || b.HasXZ() || b.IsZero() {
		return NewX(w)
	}
	if av, ok := a.Uint64(); ok {
		if bv, ok2 := b.Uint64(); ok2 {
			return NewKnown(w, av%bv)
		}
	}
	_, r := divmodBits(a.Resize(w), b.Resize(w))
	return r
}

// divmodBits is bit-serial restoring division for multi-word operands.
func divmodBits(a, b Value) (q, r Value) {
	w := a.width
	q = NewKnown(w, 0)
	r = NewKnown(w, 0)
	for i := w - 1; i >= 0; i-- {
		r = Shl(r, NewKnown(32, 1))
		if a.Bit(i) == '1' {
			r.val[0] |= 1
		}
		if cmpKnown(r, b) >= 0 {
			r = Sub(r, b)
			q.val[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return q, r
}

// cmpKnown compares fully known values as unsigned integers: -1, 0, +1.
func cmpKnown(a, b Value) int {
	n := maxInt(len(a.val), len(b.val))
	get := func(s []uint64, i int) uint64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := n - 1; i >= 0; i-- {
		av, bv := get(a.val, i), get(b.val, i)
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// --- Comparison ------------------------------------------------------------------

// Eq returns the 1-bit logical equality: X if any operand bit is unknown.
func Eq(a, b Value) Value {
	if a.HasXZ() || b.HasXZ() {
		return NewX(1)
	}
	if cmpKnown(a, b) == 0 {
		return NewKnown(1, 1)
	}
	return NewKnown(1, 0)
}

// Neq is the negation of Eq.
func Neq(a, b Value) Value { return Not(Eq(a, b)) }

// CaseEq returns 1-bit exact four-state equality (===).
func CaseEq(a, b Value) Value {
	w := maxInt(a.width, b.width)
	if a.Resize(w).Equal(b.Resize(w)) {
		return NewKnown(1, 1)
	}
	return NewKnown(1, 0)
}

// CaseNeq is the negation of CaseEq (!==).
func CaseNeq(a, b Value) Value { return Not(CaseEq(a, b)) }

// Lt returns the 1-bit unsigned less-than; X on unknown operands.
func Lt(a, b Value) Value { return cmpRel(a, b, func(c int) bool { return c < 0 }) }

// Leq returns the 1-bit unsigned less-or-equal; X on unknown operands.
func Leq(a, b Value) Value { return cmpRel(a, b, func(c int) bool { return c <= 0 }) }

// Gt returns the 1-bit unsigned greater-than; X on unknown operands.
func Gt(a, b Value) Value { return cmpRel(a, b, func(c int) bool { return c > 0 }) }

// Geq returns the 1-bit unsigned greater-or-equal; X on unknown operands.
func Geq(a, b Value) Value { return cmpRel(a, b, func(c int) bool { return c >= 0 }) }

func cmpRel(a, b Value, ok func(int) bool) Value {
	if a.HasXZ() || b.HasXZ() {
		return NewX(1)
	}
	if ok(cmpKnown(a, b)) {
		return NewKnown(1, 1)
	}
	return NewKnown(1, 0)
}

// --- Shifts -----------------------------------------------------------------------

// Shl shifts a left by the amount in b; result keeps a's width. X amount
// yields all-X.
func Shl(a, b Value) Value {
	amt, ok := b.Uint64()
	if !ok {
		return NewX(a.width)
	}
	if amt >= uint64(a.width) {
		return NewKnown(a.width, 0)
	}
	return shiftLeft(a, int(amt))
}

// Shr shifts a right logically by the amount in b; result keeps a's width.
func Shr(a, b Value) Value {
	amt, ok := b.Uint64()
	if !ok {
		return NewX(a.width)
	}
	if amt >= uint64(a.width) {
		return NewKnown(a.width, 0)
	}
	return shiftRight(a, int(amt), false)
}

// AShr shifts right arithmetically (sign-filling with the MSB).
func AShr(a, b Value) Value {
	amt, ok := b.Uint64()
	if !ok {
		return NewX(a.width)
	}
	if amt >= uint64(a.width) {
		if a.Bit(a.width-1) == '1' {
			return Not(NewKnown(a.width, 0))
		}
		return NewKnown(a.width, 0)
	}
	return shiftRight(a, int(amt), true)
}

func shiftLeft(a Value, amt int) Value {
	out := NewKnown(a.width, 0)
	for i := a.width - 1; i >= amt; i-- {
		out.setBit(i, a.Bit(i-amt))
	}
	return out
}

func shiftRight(a Value, amt int, arith bool) Value {
	out := NewKnown(a.width, 0)
	fill := byte('0')
	if arith {
		fill = a.Bit(a.width - 1)
	}
	for i := 0; i < a.width; i++ {
		src := i + amt
		if src < a.width {
			out.setBit(i, a.Bit(src))
		} else {
			out.setBit(i, fill)
		}
	}
	return out
}

// --- Reductions ---------------------------------------------------------------------

// RedAnd reduces with AND: 0 if any known-0 bit, 1 if all bits known-1,
// else X.
func RedAnd(a Value) Value {
	any0, anyXZ := false, false
	for i := 0; i < a.width; i++ {
		switch a.Bit(i) {
		case '0':
			any0 = true
		case 'x', 'z':
			anyXZ = true
		}
	}
	switch {
	case any0:
		return NewKnown(1, 0)
	case anyXZ:
		return NewX(1)
	default:
		return NewKnown(1, 1)
	}
}

// RedOr reduces with OR: 1 if any known-1 bit, 0 if all bits known-0, else X.
func RedOr(a Value) Value {
	any1, anyXZ := false, false
	for i := 0; i < a.width; i++ {
		switch a.Bit(i) {
		case '1':
			any1 = true
		case 'x', 'z':
			anyXZ = true
		}
	}
	switch {
	case any1:
		return NewKnown(1, 1)
	case anyXZ:
		return NewX(1)
	default:
		return NewKnown(1, 0)
	}
}

// RedXor reduces with XOR; X if any bit unknown.
func RedXor(a Value) Value {
	parity := uint64(0)
	for i := 0; i < a.width; i++ {
		switch a.Bit(i) {
		case '1':
			parity ^= 1
		case 'x', 'z':
			return NewX(1)
		}
	}
	return NewKnown(1, parity)
}

// --- Structure ----------------------------------------------------------------------

// ConcatVals concatenates parts, first part becoming the most significant.
func ConcatVals(parts []Value) Value {
	total := 0
	for _, p := range parts {
		total += p.width
	}
	out := NewKnown(total, 0)
	pos := total
	for _, p := range parts {
		pos -= p.width
		for i := 0; i < p.width; i++ {
			out.setBit(pos+i, p.Bit(i))
		}
	}
	return out
}

// ReplVal replicates v count times.
func ReplVal(count int, v Value) Value {
	if count <= 0 {
		return NewKnown(0, 0)
	}
	parts := make([]Value, count)
	for i := range parts {
		parts[i] = v
	}
	return ConcatVals(parts)
}

// SliceBits extracts width bits starting at bit lo (LSB-relative). Bits read
// outside the source are X (matching out-of-range select semantics).
func (v Value) SliceBits(lo, width int) Value {
	out := NewKnown(width, 0)
	for i := 0; i < width; i++ {
		src := lo + i
		if src < 0 || src >= v.width {
			out.setBit(i, 'x')
		} else {
			out.setBit(i, v.Bit(src))
		}
	}
	return out
}

// WriteBits returns a copy of v with width bits starting at lo replaced by
// the low bits of src. Writes outside the vector are dropped.
func (v Value) WriteBits(lo int, src Value) Value {
	out := NewFromPlanes(v.width, v.val, v.xz)
	for i := 0; i < src.width; i++ {
		dst := lo + i
		if dst < 0 || dst >= v.width {
			continue
		}
		out.setBit(dst, src.Bit(i))
	}
	return out
}

// CasezMatch reports whether subject matches label treating Z/? bits in
// either as wildcards (casez), or additionally X bits (casex).
func CasezMatch(subject, label Value, alsoX bool) bool {
	w := maxInt(subject.width, label.width)
	s, l := subject.Resize(w), label.Resize(w)
	for i := 0; i < w; i++ {
		sb, lb := s.Bit(i), l.Bit(i)
		if sb == 'z' || lb == 'z' {
			continue
		}
		if alsoX && (sb == 'x' || lb == 'x') {
			continue
		}
		if sb != lb {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
