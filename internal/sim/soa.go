// SoA gang execution: every lane's register file lives in ONE shared val
// plane and ONE shared xz plane, partitioned lane-major with a fixed stride,
// and processes that are structurally identical across lanes run as a single
// gang program (gangrf.go) walked once per activation with a per-lane inner
// loop. Mutated or gang-ineligible processes keep per-lane execution: each
// lane owns an ALIASING Engine whose frame is a subslice of the shared
// planes, so the solo closures, storeNet change records, NBA arena, fanout
// dispatch, reset, and HashOutputH all work unchanged — per-lane and gang
// execution interleave freely over the same storage.
//
// Sharing is peer-to-peer, not base-anchored: at seal, lanes group per pid
// into alpha-equivalence classes (same name-blind net layout, same
// gangProcSig — gangsig.go), and every class of two or more lanes gets one
// gang kernel lowered from a member design. Candidate pools cluster heavily
// under this relation — LLM candidates rename registers freely and repeat
// the same mutations — so one kernel walk typically drives most of the gang
// even when no two lanes are textually identical. Each distinct member
// program gets its own ext segment in the lane stride; gangRun.extBase is
// switched to the owning program's segment around each kernel run.
//
// Sharing has a degenerate-best case the gang exploits outright: lanes whose
// designs are alpha-equivalent END TO END — same name-blind layout, same
// process signature at every pid, same dispatch tables, same initial frame,
// same port binding — compute bit-identical trajectories on the shared
// stimulus, so only one leader lane per whole-design equivalence class
// executes and the rest mirror its fingerprints and errors by reference.
// Candidate pools make this common: register renames and repeated mutations
// produce textually distinct sources that are the same machine.
//
// Semantics are bit-identical to sim.Gang (N independent engines): the
// merged scheduler replays each lane's exact solo Settle loop — same action
// priority (dispatch > run > NBA), same per-lane delta budget, same
// first-error retirement — it only lines the lanes up so that process
// activations with the same pid coalesce into per-class gang-program runs. A
// lane retires by dropping out of the live list and every mask; its plane
// block is simply never touched again (no block swapping), so survivors'
// storage and fingerprints are unaffected by construction.
package sim

import (
	"os"
	"sync"
)

// SoAGang runs several candidate designs over shared struct-of-arrays
// planes. It mirrors the Gang surface so the testbench drives either
// interchangeably. Not safe for concurrent use.
type SoAGang struct {
	base  *Design
	run   gangRun
	lanes []soaLane
	live  []int32

	sealed bool
	closed bool

	// dedup collapses whole-design equivalence classes to one executing
	// leader per class (see laneEqual); mirror[id] names the leader a lane
	// mirrors, or -1 for lanes that run themselves. Kernel-level tests
	// disable dedup so identical lanes still exercise the gang kernels.
	dedup  bool
	mirror []int32

	// Per-pid lane equivalence classes (built at seal). classes[c] holds the
	// kernel and ext segment of class c; classBuf[c] is the class's reusable
	// activation mask, capacity fixed at its member count (sliced out of
	// bufArena). mergedLanes lists the leaders that share at least one class
	// and so run under the merged scheduler; the rest settle solo.
	classes     []soaClass
	classBuf    [][]int32
	bufArena    []int32
	touched     []int32 // classes gathered in the current activation
	mergedLanes []int32

	// Seal-time grouping scratch, pooled across gangs: the key table is
	// scanned linearly (entry count is leaders × procs, always small), and
	// the per-lane class arrays are sliced out of classArena.
	keys       []soaClassKey
	kcount     []int32
	kfirst     []int32
	remap      []int32
	classArena []int32
	progs      []*gangProg
	progSegs   []int32

	// Merged-scheduler scratch, sized at seal.
	iters   []int32   // per-lane settle action counters
	batches [][]int32 // per-lane active batch being drained
	cursors []int
	pbuf    []int32 // participants of the current runActiveMerged
	mSolo   []int32
}

// soaClass is one gang-executable equivalence class: lanes whose process at
// one pid is structurally identical modulo renaming. gp points into the
// owning member design's cached gang program; extBase is that program's ext
// segment within every lane block.
type soaClass struct {
	gp      *gproc
	extBase int32
}

type soaLane struct {
	d        *Design
	perCase  bool // sequential lifecycle: reset the lane engine every case
	soloOnly bool // no shared class at any pid: settle with the solo loop
	clock    int
	ins      []int
	outs     []int
	hash     uint64
	class    []int32 // per pid: class id, or -1 for per-lane execution
}

// soaGangPool recycles closed gangs: planes, engines, class tables, and
// scheduler scratch keep their capacity across rank batches, so after warmup
// sealing a gang allocates (almost) nothing — the SoA analogue of the
// per-design engine pool.
var soaGangPool sync.Pool

// NewSoAGang returns an empty SoA gang with capacity for n lanes, recycling
// a pooled gang when one is available. The base design (typically the golden
// the lanes were delta-compiled against) is kept for surface parity with the
// delta-compilation flow; gang sharing itself is peer-to-peer between lanes,
// so a nil base costs nothing.
func NewSoAGang(n int, base *Design) *SoAGang {
	sg, _ := soaGangPool.Get().(*SoAGang)
	if sg == nil {
		sg = &SoAGang{}
	}
	sg.base = base
	sg.dedup = true
	sg.sealed = false
	sg.closed = false
	if cap(sg.lanes) < n {
		sg.lanes = make([]soaLane, 0, n)
	} else {
		sg.lanes = sg.lanes[:0]
	}
	if cap(sg.live) < n {
		sg.live = make([]int32, 0, n)
	} else {
		sg.live = sg.live[:0]
	}
	return sg
}

// growI32 returns s resized to n elements, reallocating only when capacity
// is short. Contents are unspecified; callers initialize what they read.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// AddLane registers one candidate design and returns the lane id. The engine
// argument exists for surface parity with Gang.AddLane: the SoA gang always
// builds its own aliasing engines over the shared planes, so a probe engine
// passed in is simply returned to its pool. Lanes must all be added before
// the first BeginCase.
func (sg *SoAGang) AddLane(d *Design, en *Engine, clock int, ins, outs []int) int {
	if en != nil {
		d.ReleaseEngine(en)
	}
	if sg.base == nil {
		sg.base = d
	}
	id := len(sg.lanes)
	sg.lanes = append(sg.lanes, soaLane{d: d, perCase: en == nil, clock: clock, ins: ins, outs: outs})
	sg.live = append(sg.live, int32(id))
	return id
}

// LiveLanes returns how many lanes are still running.
func (sg *SoAGang) LiveLanes() int { return len(sg.live) }

// Err returns the error that retired the lane, or nil while it runs. A
// mirroring lane reports its leader's error: the two designs are the same
// machine, so the leader's failure is exactly the failure the mirror would
// have produced.
func (sg *SoAGang) Err(id int) error {
	if sg.mirror != nil && sg.mirror[id] >= 0 {
		id = int(sg.mirror[id])
	}
	if sg.run.laneErr == nil {
		return nil
	}
	return sg.run.laneErr[id]
}

// Hash returns the lane's running fingerprint for the current case
// (mirroring lanes read their leader's).
func (sg *SoAGang) Hash(id int) uint64 {
	if sg.mirror != nil && sg.mirror[id] >= 0 {
		id = int(sg.mirror[id])
	}
	return sg.lanes[id].hash
}

// laneEqual reports whether lanes a and b are the same machine: identical
// name-blind net layout, identical process signature and boxed-ness at every
// pid, identical dispatch tables (level and edge fanout are proc-id lists
// built in structural order, so they carry sensitivity information the body
// signatures deliberately omit), identical initial frame snapshot (which also
// covers initial-block effects and the constant pool), and identical port
// binding. Equal lanes compute bit-identical trajectories on the shared
// stimulus, so one may mirror the other outright.
func (sg *SoAGang) laneEqual(a, b int32) bool {
	x, y := &sg.lanes[a], &sg.lanes[b]
	if x.perCase != y.perCase || x.clock != y.clock ||
		len(x.ins) != len(y.ins) || len(x.outs) != len(y.outs) {
		return false
	}
	for i := range x.ins {
		if x.ins[i] != y.ins[i] {
			return false
		}
	}
	for i := range x.outs {
		if x.outs[i] != y.outs[i] {
			return false
		}
	}
	dx, dy := x.d, y.d
	if dx == dy {
		return true
	}
	if dx.gangLayoutSig != dy.gangLayoutSig ||
		len(dx.procArts) != len(dy.procArts) ||
		len(dx.initVal) != len(dy.initVal) ||
		len(dx.levelFan) != len(dy.levelFan) {
		return false
	}
	for k := range dx.procArts {
		if dx.procArts[k].gangSig != dy.procArts[k].gangSig ||
			dx.procArts[k].boxed != dy.procArts[k].boxed {
			return false
		}
	}
	for i := range dx.initVal {
		if dx.initVal[i] != dy.initVal[i] || dx.initXZ[i] != dy.initXZ[i] {
			return false
		}
	}
	for i := range dx.levelFan {
		lx, ly := dx.levelFan[i], dy.levelFan[i]
		if len(lx) != len(ly) {
			return false
		}
		for j := range lx {
			if lx[j] != ly[j] {
				return false
			}
		}
		ex, ey := dx.edgeFan[i], dy.edgeFan[i]
		if len(ex) != len(ey) {
			return false
		}
		for j := range ex {
			if ex[j] != ey[j] {
				return false
			}
		}
	}
	return true
}

// soaClassKey groups lanes that may share one gang kernel at one pid: the
// name-blind layout signature guarantees identical net indices and frame
// offsets, the process signature guarantees an identical computation.
type soaClassKey struct {
	pid     int32
	layout  uint64
	procSig uint64
}

// seal fixes the gang layout: groups lanes into per-pid equivalence classes,
// lowers one gang kernel per multi-lane class, allocates the shared planes
// (one ext segment per distinct member program), builds one aliasing engine
// per lane, and copies initial state and gang constants.
func (sg *SoAGang) seal() {
	sg.sealed = true
	n := len(sg.lanes)
	if n == 0 {
		return
	}

	// Pass 0: whole-design dedup. Each lane either leads a behavior class
	// (and joins the live execution set) or mirrors an earlier equal lane and
	// never executes: no plane block initialization, no engine, no class
	// membership — its Hash/Err reads resolve through the leader.
	sg.mirror = growI32(sg.mirror, n)
	sg.live = sg.live[:0]
	for i := range sg.lanes {
		sg.mirror[i] = -1
		if sg.dedup {
			for _, ld := range sg.live {
				if sg.laneEqual(int32(i), ld) {
					sg.mirror[i] = ld
					break
				}
			}
		}
		if sg.mirror[i] < 0 {
			sg.live = append(sg.live, int32(i))
		}
	}

	maxFrame := int32(0)
	totalProcs := 0
	for _, li := range sg.live {
		d := sg.lanes[li].d
		if d.frameWords > maxFrame {
			maxFrame = d.frameWords
		}
		totalProcs += len(d.procs)
	}

	// Pass 1: group (pid, layout, procSig) over leader lanes in
	// deterministic order. Grouping scratch is pooled: the key table is
	// scanned linearly (entries = leaders × procs, always small) and the
	// per-lane class arrays slice classArena.
	sg.keys = sg.keys[:0]
	sg.kcount = sg.kcount[:0]
	sg.kfirst = sg.kfirst[:0]
	sg.classArena = growI32(sg.classArena, totalProcs)
	arena := sg.classArena
	for _, li := range sg.live {
		ln := &sg.lanes[li]
		np := len(ln.d.procs)
		ln.class, arena = arena[:np:np], arena[np:]
		for k := range ln.d.procs {
			key := soaClassKey{pid: int32(k), layout: ln.d.gangLayoutSig,
				procSig: ln.d.procArts[k].gangSig}
			c := int32(-1)
			for j := range sg.keys {
				if sg.keys[j] == key {
					c = int32(j)
					break
				}
			}
			if c < 0 {
				c = int32(len(sg.keys))
				sg.keys = append(sg.keys, key)
				sg.kcount = append(sg.kcount, 0)
				sg.kfirst = append(sg.kfirst, li)
			}
			sg.kcount[c]++
			ln.class[k] = c
		}
	}

	// Pass 2: keep classes with two or more lanes (a singleton gains nothing
	// over its solo closure) and a lowerable kernel. The kernel comes from
	// the first member's cached gang program; any member works — class
	// signatures pin the lowering inputs — and reusing first-seen designs
	// keeps the distinct-program count (and so the stride) small. Programs
	// get consecutive ext segments after the frame region.
	sg.classes = sg.classes[:0]
	sg.progs = sg.progs[:0]
	sg.progSegs = sg.progSegs[:0]
	sg.remap = growI32(sg.remap, len(sg.keys))
	extCursor := maxFrame
	maxWids, maxMasks := int32(0), int32(0)
	bufTotal := int32(0)
	for c := range sg.keys {
		sg.remap[c] = -1
		if sg.kcount[c] < 2 {
			continue
		}
		owner := sg.lanes[sg.kfirst[c]].d
		prog := owner.gangProgram()
		gp := &prog.procs[sg.keys[c].pid]
		if gp.run == nil {
			continue
		}
		seg := int32(-1)
		for j := range sg.progs {
			if sg.progs[j] == prog {
				seg = sg.progSegs[j]
				break
			}
		}
		if seg < 0 {
			seg = extCursor
			sg.progs = append(sg.progs, prog)
			sg.progSegs = append(sg.progSegs, seg)
			extCursor += prog.extWords
			if prog.nwids > maxWids {
				maxWids = prog.nwids
			}
			if prog.maskSlots > maxMasks {
				maxMasks = prog.maskSlots
			}
		}
		sg.remap[c] = int32(len(sg.classes))
		sg.classes = append(sg.classes, soaClass{gp: gp, extBase: seg})
		bufTotal += sg.kcount[c]
	}
	sg.bufArena = growI32(sg.bufArena, int(bufTotal))
	if cap(sg.classBuf) < len(sg.classes) {
		sg.classBuf = make([][]int32, len(sg.classes))
	} else {
		sg.classBuf = sg.classBuf[:len(sg.classes)]
	}
	bufOff := int32(0)
	for c := range sg.keys {
		if r := sg.remap[c]; r >= 0 {
			cnt := sg.kcount[c]
			sg.classBuf[r] = sg.bufArena[bufOff : bufOff : bufOff+cnt]
			bufOff += cnt
		}
	}
	sg.mergedLanes = sg.mergedLanes[:0]
	for _, li := range sg.live {
		ln := &sg.lanes[li]
		ln.soloOnly = true
		for k := range ln.class {
			ln.class[k] = sg.remap[ln.class[k]]
			if ln.class[k] >= 0 {
				ln.soloOnly = false
			}
		}
		if !ln.soloOnly {
			sg.mergedLanes = append(sg.mergedLanes, li)
		}
	}

	// Storage below reuses pooled capacity. Plane contents start as garbage,
	// which is safe for the same reason gang scratch needs no per-case
	// zeroing: every lane's frame region is overwritten with the full
	// initVal/initXZ snapshot (state, constant pool, zeroed scratch), ext
	// constants are patched explicitly, and ext scratch is written at the
	// produced width before any kernel reads it.
	g := &sg.run
	g.lanes = int32(n)
	g.extBase = maxFrame
	g.stride = extCursor
	g.val = growU64(g.val, int(g.stride)*n)
	g.xz = growU64(g.xz, int(g.stride)*n)
	if cap(g.engines) < n {
		ng := make([]*Engine, n)
		copy(ng, g.engines)
		g.engines = ng
	} else {
		g.engines = g.engines[:n]
	}
	g.wids = growI32(g.wids, int(maxWids)*n)
	if cap(g.arena) < (int(maxMasks)+4)*n {
		g.arena = make([]int32, 0, (int(maxMasks)+4)*n)
	} else {
		g.arena = g.arena[:0]
	}
	if cap(g.laneErr) < n {
		g.laneErr = make([]error, n)
	} else {
		g.laneErr = g.laneErr[:n]
		for i := range g.laneErr {
			g.laneErr[i] = nil
		}
	}
	g.anyFailed = false

	for _, li := range sg.live {
		i := int(li)
		ln := &sg.lanes[i]
		o := int32(i) * g.stride
		fw := ln.d.frameWords
		en := g.engines[i]
		if en == nil {
			en = &Engine{}
			g.engines[i] = en
		}
		en.d = ln.d
		en.val = g.val[o : o+fw : o+fw]
		en.xz = g.xz[o : o+fw : o+fw]
		np := len(ln.d.procs)
		if cap(en.queued) < np {
			en.queued = make([]bool, np)
		} else {
			en.queued = en.queued[:np]
			for j := range en.queued {
				en.queued[j] = false
			}
		}
		en.active = en.active[:0]
		en.changed = en.changed[:0]
		en.nba = en.nba[:0]
		en.nbaVal = en.nbaVal[:0]
		en.nbaXZ = en.nbaXZ[:0]
		en.wstack = en.wstack[:0]
		en.targets = en.targets[:0]
		en.current = -1
		copy(en.val, ln.d.initVal)
		copy(en.xz, ln.d.initXZ)

		// Gang constants live in each program's ext segment of every lane
		// and are never overwritten (gang scratch needs no per-case zeroing:
		// kernels read exactly the produced width, so stale high words are
		// never seen — the same argument that lets solo engines skip scratch
		// resets).
		for j := range sg.progs {
			eo := o + sg.progSegs[j]
			for _, cp := range sg.progs[j].consts {
				copy(g.val[eo+cp.off:eo+cp.off+int32(len(cp.v.val))], cp.v.val)
				copy(g.xz[eo+cp.off:eo+cp.off+int32(len(cp.v.xz))], cp.v.xz)
			}
		}
	}

	if soaSealDebug {
		sh, so := 0, 0
		for i := range sg.lanes {
			for _, c := range sg.lanes[i].class {
				if c >= 0 {
					sh++
				} else {
					so++
				}
			}
		}
		println("soa seal: lanes", n, "leaders", len(sg.live), "classes", len(sg.classes),
			"programs", len(sg.progs), "shared", sh, "solo", so)
	}
	sg.touched = sg.touched[:0]
	sg.iters = growI32(sg.iters, n)
	if cap(sg.batches) < n {
		sg.batches = make([][]int32, n)
	} else {
		sg.batches = sg.batches[:n]
		for i := range sg.batches {
			sg.batches[i] = nil
		}
	}
	sg.cursors = growInt(sg.cursors, n)
	sg.pbuf = sg.pbuf[:0]
	sg.mSolo = sg.mSolo[:0]
}

// BeginCase starts the next test case on every live lane: sequential lanes
// reset to the design's initial snapshot (the SoA equivalent of acquiring a
// pooled engine), fingerprints reset to the FNV offset basis, and clocked
// lanes drive their clock low — the exact preamble of a solo scheduled case.
func (sg *SoAGang) BeginCase() {
	if !sg.sealed {
		sg.seal()
	}
	for _, id := range sg.live {
		ln := &sg.lanes[id]
		en := sg.run.engines[id]
		if ln.perCase {
			en.reset()
		}
		ln.hash = FNVOffset64
		if ln.clock >= 0 {
			en.SetInputUintH(ln.clock, 0)
		}
	}
}

// EndCase exists for surface parity with Gang (which releases per-case
// engines here); SoA lane engines persist, resetting at the next BeginCase.
func (sg *SoAGang) EndCase() {}

// Drive stores one decoded stimulus value into drive position pos of every
// live lane. The Value may be a view over shared schedule planes.
func (sg *SoAGang) Drive(pos int, v Value) {
	for _, id := range sg.live {
		ln := &sg.lanes[id]
		sg.run.engines[id].SetInputH(ln.ins[pos], v)
	}
}

// Advance moves every live lane one step — a full clock cycle for clocked
// lanes, a settle otherwise — in merged lockstep. Failing lanes retire with
// their error and drop out of every mask; survivors are untouched.
func (sg *SoAGang) Advance() {
	clocked := false
	for _, id := range sg.live {
		ln := &sg.lanes[id]
		if ln.clock >= 0 {
			clocked = true
			sg.run.engines[id].SetInputUintH(ln.clock, 1)
		}
	}
	sg.settleAll()
	if clocked {
		for _, id := range sg.live {
			ln := &sg.lanes[id]
			if ln.clock >= 0 && sg.run.laneErr[id] == nil {
				sg.run.engines[id].SetInputUintH(ln.clock, 0)
			}
		}
		sg.settleAll()
	}
	n := 0
	for _, id := range sg.live {
		if sg.run.laneErr[id] == nil {
			sg.live[n] = id
			n++
		}
	}
	sg.live = sg.live[:n]
	// Every failed lane is now out of the live set (and so out of every
	// future mask); drop the effect-site guards back to the fast path.
	sg.run.anyFailed = false
}

// settleAll replays each live lane's solo Settle loop in merged lockstep:
// per pass, every lane takes at most one action in solo priority order
// (dispatch changes > run active batch > apply NBAs), with per-lane action
// counters enforcing exactly the solo delta budget (a lane whose budget
// trips fails with ErrNoConverge precisely when its solo run would). Active
// batches across lanes are drained pid-merged so shared processes coalesce
// into per-class gang-program runs.
func (sg *SoAGang) settleAll() {
	g := &sg.run
	// Lanes that share no class at any pid gain nothing from merging: run
	// the reference solo loop directly (it is the semantics the merged loop
	// replicates). Lanes are data-independent, so ordering solo settles
	// before the merged set is unobservable.
	for _, id := range sg.live {
		if sg.lanes[id].soloOnly && g.laneErr[id] == nil {
			if err := g.engines[id].Settle(); err != nil {
				g.failLane(id, err)
			}
		}
	}
	if len(sg.mergedLanes) == 0 {
		return
	}
	for _, id := range sg.mergedLanes {
		sg.iters[id] = 0
	}
	for {
		work := false
		for _, id := range sg.mergedLanes {
			if g.laneErr[id] != nil {
				continue
			}
			en := g.engines[id]
			if len(en.changed) > 0 {
				if sg.bumpIter(id) {
					continue
				}
				en.dispatchChanges()
				work = true
			}
		}
		sg.pbuf = sg.pbuf[:0]
		for _, id := range sg.mergedLanes {
			if g.laneErr[id] != nil {
				continue
			}
			en := g.engines[id]
			if len(en.changed) == 0 && len(en.active) > 0 {
				if sg.bumpIter(id) {
					continue
				}
				sg.pbuf = append(sg.pbuf, id)
			}
		}
		if len(sg.pbuf) == 1 {
			// One lane with runnable work cannot coalesce with anyone
			// (participants are fixed for the drain): the solo batch drain
			// is the same semantics without the merge bookkeeping.
			id := sg.pbuf[0]
			if err := g.engines[id].runActive(); err != nil {
				g.failLane(id, err)
			}
			work = true
		} else if len(sg.pbuf) > 0 {
			sg.runActiveMerged(sg.pbuf)
			work = true
		}
		for _, id := range sg.mergedLanes {
			if g.laneErr[id] != nil {
				continue
			}
			en := g.engines[id]
			if len(en.changed) == 0 && len(en.active) == 0 && len(en.nba) > 0 {
				if sg.bumpIter(id) {
					continue
				}
				en.applyNBA()
				work = true
			}
		}
		if !work {
			// Converged. A lane that spent its whole budget fails even so:
			// the solo loop checks the budget before discovering idleness.
			for _, id := range sg.mergedLanes {
				if g.laneErr[id] == nil && sg.iters[id] > maxDeltas {
					g.failLane(id, ErrNoConverge)
				}
			}
			return
		}
	}
}

// bumpIter charges one scheduler action to the lane's delta budget,
// reporting true (and failing the lane) when the budget is already spent —
// the exact check solo Settle performs at the top of each iteration.
func (sg *SoAGang) bumpIter(id int32) bool {
	if sg.iters[id] > maxDeltas {
		sg.run.failLane(id, ErrNoConverge)
		return true
	}
	sg.iters[id]++
	return false
}

// runActiveMerged drains the active batches of all participants in merged
// order: repeatedly take the next pid of the first participant with work,
// gather every participant whose next pid matches, bucket them by
// equivalence class, run each class as one gang-program activation and the
// rest per lane. Each lane consumes its own batch strictly in order, so
// per-lane semantics are exactly runActive; pid merging only lines identical
// activations up across lanes (lanes are data-independent, so cross-lane
// ordering is unobservable).
func (sg *SoAGang) runActiveMerged(participants []int32) {
	g := &sg.run
	for _, id := range participants {
		en := g.engines[id]
		sg.batches[id] = en.active
		en.active = en.activeSpare[:0]
		sg.cursors[id] = 0
	}
	for {
		pid := int32(-1)
		for _, id := range participants {
			if g.laneErr[id] != nil {
				continue
			}
			if sg.cursors[id] < len(sg.batches[id]) {
				pid = sg.batches[id][sg.cursors[id]]
				break
			}
		}
		if pid < 0 {
			break
		}
		sg.touched = sg.touched[:0]
		sg.mSolo = sg.mSolo[:0]
		for _, id := range participants {
			if g.laneErr[id] != nil || sg.cursors[id] >= len(sg.batches[id]) ||
				sg.batches[id][sg.cursors[id]] != pid {
				continue
			}
			sg.cursors[id]++
			g.engines[id].queued[pid] = false
			if c := sg.lanes[id].class[pid]; c >= 0 {
				if len(sg.classBuf[c]) == 0 {
					sg.touched = append(sg.touched, c)
				}
				sg.classBuf[c] = append(sg.classBuf[c], id)
			} else {
				sg.mSolo = append(sg.mSolo, id)
			}
		}
		for _, c := range sg.touched {
			m := sg.classBuf[c]
			cl := &sg.classes[c]
			// A class gathered a single activated lane this round: its solo
			// closure is cheaper than a one-lane kernel walk.
			if len(m) == 1 {
				sg.classBuf[c] = m[:0]
				if err := g.engines[m[0]].runProcess(pid); err != nil {
					g.failLane(m[0], err)
				}
				continue
			}
			g.extBase = cl.extBase
			if !cl.gp.cont {
				for _, l := range m {
					g.engines[l].current = pid
				}
			}
			cl.gp.run(g, m)
			if !cl.gp.cont {
				for _, l := range m {
					g.engines[l].current = -1
				}
			}
			sg.classBuf[c] = m[:0]
		}
		for _, id := range sg.mSolo {
			if err := g.engines[id].runProcess(pid); err != nil {
				// Abort the lane mid-batch like solo runActive: the batch
				// tail is abandoned (its queued flags are cleared by the
				// next reset, exactly as on a solo engine).
				g.failLane(id, err)
			}
		}
	}
	for _, id := range participants {
		g.engines[id].activeSpare = sg.batches[id][:0]
		sg.batches[id] = nil
	}
}

// HashOutput folds output column col at the given rendering width into every
// live lane's case fingerprint, followed by the newline separator — the same
// byte stream the solo scheduled fingerprint run folds.
func (sg *SoAGang) HashOutput(col, width int) {
	for _, id := range sg.live {
		ln := &sg.lanes[id]
		h := sg.run.engines[id].HashOutputH(ln.hash, ln.outs[col], width)
		ln.hash = (h ^ uint64('\n')) * FNVPrime64
	}
}

// Close retires the gang into the gang pool: design and error references
// are dropped, but planes, engines, class tables, and scheduler scratch keep
// their capacity for the next gang. The gang must not be used after Close.
func (sg *SoAGang) Close() {
	if sg.closed {
		return
	}
	sg.closed = true
	for i := range sg.lanes {
		ln := &sg.lanes[i]
		ln.d, ln.ins, ln.outs, ln.class = nil, nil, nil, nil
	}
	sg.lanes = sg.lanes[:0]
	for _, en := range sg.run.engines {
		if en != nil {
			en.d = nil
		}
	}
	for i := range sg.run.laneErr {
		sg.run.laneErr[i] = nil
	}
	for i := range sg.classes {
		sg.classes[i] = soaClass{}
	}
	sg.classes = sg.classes[:0]
	for i := range sg.progs {
		sg.progs[i] = nil
	}
	sg.progs = sg.progs[:0]
	for i := range sg.kfirst {
		sg.kfirst[i] = 0
	}
	sg.base = nil
	sg.live = sg.live[:0]
	soaGangPool.Put(sg)
}

var soaSealDebug = os.Getenv("SOA_SEAL_DEBUG") != ""
