package sim

import (
	"fmt"
	"testing"

	"repro/internal/mutate"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/printer"
	"repro/internal/xrng"
)

func mustParse(t *testing.T, src string) *ast.Source {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

// moduleText renders a mutant module back to source; re-parsing it yields an
// independent AST, so the delta compile sees a genuinely fresh candidate.
func moduleText(t *testing.T, m *ast.Module) string {
	t.Helper()
	return printer.PrintModule(m)
}

// deltaBaseSrc has several processes (two continuous assigns and a clocked
// block), so a single-site mutant leaves most process artifacts reusable.
const deltaBaseSrc = `
module top_module (
    input clk,
    input reset,
    input [7:0] a,
    input [7:0] b,
    output [7:0] s,
    output reg [7:0] acc,
    output [7:0] m
);
    assign s = a + b;
    always @(posedge clk) begin
        if (reset) acc <= 8'd0;
        else acc <= acc + a;
    end
    assign m = a & b;
endmodule
`

// driveCompare ticks both engines through the same random input sequence and
// compares every output after every cycle.
func driveCompare(t *testing.T, label string, da, db *Design, seed uint64) {
	t.Helper()
	ea, eb := da.AcquireEngine(), db.AcquireEngine()
	defer da.ReleaseEngine(ea)
	defer db.ReleaseEngine(eb)
	rng := xrng.New(seed)
	for cyc := 0; cyc < 24; cyc++ {
		reset := uint64(0)
		if cyc < 2 {
			reset = 1
		}
		a, b := rng.Uint64()&0xFF, rng.Uint64()&0xFF
		for _, en := range []*Engine{ea, eb} {
			if err := en.SetInputUint("reset", reset); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := en.SetInputUint("a", a); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := en.SetInputUint("b", b); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := en.Tick("clk"); err != nil {
				t.Fatalf("%s: tick: %v", label, err)
			}
		}
		for _, out := range []string{"s", "acc", "m"} {
			va, err := ea.Output(out)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			vb, err := eb.Output(out)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !va.Equal(vb) {
				t.Fatalf("%s: cycle %d output %s: scratch %s, delta %s", label, cyc, out, va, vb)
			}
		}
	}
}

// TestDeltaCompileIdenticalSourceReusesAll: delta-compiling the very design
// the base was compiled from must splice every process artifact (the module
// has three processes) and behave identically.
func TestDeltaCompileIdenticalSourceReusesAll(t *testing.T) {
	src := mustParse(t, deltaBaseSrc)
	base, err := Compile(src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	// A re-parse yields a distinct AST with identical layout and processes.
	again := mustParse(t, deltaBaseSrc)
	d, err := CompileDelta(base, again, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DeltaReused(); got != 3 {
		t.Fatalf("identical source reused %d process artifacts, want 3", got)
	}
	scratch, err := Compile(again, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	driveCompare(t, "identical", scratch, d, 5)
}

// TestDeltaCompileMutantsDifferential holds CompileDelta to Compile over a
// spine-mutant harness: every mutant of the base module must simulate
// identically whether lowered from scratch or spliced against the base, and
// mutants that keep the net layout must actually reuse unmutated processes.
func TestDeltaCompileMutantsDifferential(t *testing.T) {
	src := mustParse(t, deltaBaseSrc)
	base, err := Compile(src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	mod := src.FindModule("top_module")
	if mod == nil {
		t.Fatal("no top_module")
	}
	rng := xrng.New(77)
	reusedSome := false
	tried := 0
	for trial := 0; trial < 24; trial++ {
		mut, desc := mutate.Semantic(mod, rng, mutate.Config{Count: 1})
		if mut == nil {
			continue
		}
		tried++
		label := fmt.Sprintf("trial %d (%v)", trial, desc)
		mutSrc := mustParse(t, moduleText(t, mut))
		scratch, serr := Compile(mutSrc, "top_module")
		delta, derr := CompileDelta(base, mutSrc, "top_module")
		if (serr == nil) != (derr == nil) {
			t.Fatalf("%s: compile error divergence: scratch=%v delta=%v", label, serr, derr)
		}
		if serr != nil {
			continue
		}
		if delta.DeltaReused() > 0 {
			reusedSome = true
		}
		driveCompare(t, label, scratch, delta, uint64(100+trial))
	}
	if tried == 0 {
		t.Fatal("mutation harness produced no mutants")
	}
	if !reusedSome {
		t.Error("no mutant reused any process artifact; delta path never engaged")
	}
}

// TestDeltaCompileLayoutMismatchFallsBack: a base from an unrelated module
// (different nets) must not contribute artifacts — the delta compile
// degrades to a full lowering with identical results.
func TestDeltaCompileLayoutMismatchFallsBack(t *testing.T) {
	const otherSrc = `
module top_module (
    input [3:0] x,
    output [3:0] y
);
    assign y = ~x;
endmodule
`
	base, err := Compile(mustParse(t, otherSrc), "top_module")
	if err != nil {
		t.Fatal(err)
	}
	src := mustParse(t, deltaBaseSrc)
	d, err := CompileDelta(base, src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DeltaReused(); got != 0 {
		t.Fatalf("layout-mismatched base reused %d artifacts, want 0", got)
	}
	scratch, err := Compile(src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	driveCompare(t, "mismatch", scratch, d, 9)
}
