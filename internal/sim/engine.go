package sim

import (
	"errors"
	"fmt"

	"repro/internal/verilog/ast"
)

// Sentinel errors reported by elaboration and simulation.
var (
	ErrElab       = errors.New("elaboration error")
	ErrNoConverge = errors.New("simulation did not converge (combinational loop?)")
	ErrUnknownNet = errors.New("unknown net")
	ErrNotInput   = errors.New("not an input port")
	ErrRuntime    = errors.New("simulation runtime error")
)

// maxDeltas bounds the number of delta cycles per settle; exceeding it means
// a combinational loop or zero-delay oscillation.
const maxDeltas = 4096

// maxLoopIters bounds behavioral for-loop iterations.
const maxLoopIters = 1 << 16

// net is one elaborated signal with four-state storage.
type net struct {
	name  string // hierarchical name
	idx   int    // position in Simulator.nets (the net's stimulus handle)
	width int
	lsb   int // declared LSB index (bit address of storage bit 0)
	value Value

	// levelFanout are processes re-evaluated whenever the net changes.
	levelFanout []*process
	// edgeFanout are edge-sensitive subscriptions.
	edgeFanout []edgeSub
}

type edgeSub struct {
	proc *process
	edge ast.EdgeKind
}

// process is an executable unit: a continuous assignment, an always block,
// or an initial block.
type process struct {
	id    int
	scope *scope
	// Continuous assignment form (cont == true). rhsScope, when non-nil,
	// resolves RHS identifiers in a different scope (used for instance port
	// bindings that cross the hierarchy boundary).
	cont     bool
	lhs      ast.Expr
	rhs      ast.Expr
	rhsScope *scope
	// Behavioral form.
	body        ast.Stmt
	starSens    bool
	levelEvents []ast.Event
	edgeEvents  []ast.Event
	initialOnly bool
	queued      bool
}

// scope resolves identifiers for one module instance.
type scope struct {
	prefix string
	nets   map[string]*net
	params map[string]Value
}

func (sc *scope) lookupNet(name string) (*net, bool) {
	n, ok := sc.nets[name]
	return n, ok
}

// PortInfo describes one port of the top-level module.
type PortInfo struct {
	Name  string
	Dir   ast.Dir
	Width int
}

// Simulator is an elaborated design ready for stimulus. It is not safe for
// concurrent use.
type Simulator struct {
	src      *ast.Source
	topName  string
	nets     []*net
	procs    []*process
	topScope *scope
	inputs   []PortInfo
	outputs  []PortInfo

	active      []*process
	nba         []nbaWrite
	changed     []netChange
	currentProc *process
}

type nbaWrite struct {
	target *net
	lo     int
	val    Value
}

// netChange records a value transition. byProc is the behavioral process
// whose blocking assignment caused it, if any: per event-control semantics a
// process does not observe changes it makes while executing, so dispatch
// skips waking byProc on its own change.
type netChange struct {
	n        *net
	old, new Value
	byProc   *process
}

// New elaborates src with the given top module and returns a simulator with
// all state initialized to X and initial blocks executed.
func New(src *ast.Source, top string) (*Simulator, error) {
	m := src.FindModule(top)
	if m == nil {
		return nil, fmt.Errorf("%w: top module %q not found", ErrElab, top)
	}
	s := &Simulator{src: src, topName: top}
	sc, err := s.elaborate(m, "", nil, nil)
	if err != nil {
		return nil, err
	}
	s.topScope = sc
	for _, p := range m.Ports {
		w := 1
		if p.Range != nil {
			w, _, err = s.rangeWidth(p.Range, sc)
			if err != nil {
				return nil, err
			}
		}
		info := PortInfo{Name: p.Name, Dir: p.Dir, Width: w}
		if p.Dir == ast.Input {
			s.inputs = append(s.inputs, info)
		} else {
			s.outputs = append(s.outputs, info)
		}
	}
	// Schedule every process once so combinational logic computes its
	// initial outputs and sequential blocks observe initial edges from X.
	for _, p := range s.procs {
		if !p.cont && len(collectEdgeEvents(p)) > 0 {
			continue // edge-triggered blocks wait for a real edge
		}
		s.enqueue(p)
	}
	if err := s.Settle(); err != nil {
		return nil, err
	}
	return s, nil
}

func collectEdgeEvents(p *process) []ast.Event {
	return p.edgeEvents
}

// rangeWidth const-evaluates a range and returns (width, lsb).
func (s *Simulator) rangeWidth(r *ast.Range, sc *scope) (int, int, error) {
	msbV, err := s.constEval(r.MSB, sc)
	if err != nil {
		return 0, 0, err
	}
	lsbV, err := s.constEval(r.LSB, sc)
	if err != nil {
		return 0, 0, err
	}
	msb, ok1 := msbV.Uint64()
	lsb, ok2 := lsbV.Uint64()
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("%w: range bounds must be constant", ErrElab)
	}
	if lsb > msb {
		return 0, 0, fmt.Errorf("%w: ascending ranges [%d:%d] are not supported", ErrElab, msb, lsb)
	}
	return int(msb-lsb) + 1, int(lsb), nil
}

// constEval evaluates an elaboration-time constant expression.
func (s *Simulator) constEval(e ast.Expr, sc *scope) (Value, error) {
	return s.eval(e, sc)
}

func (s *Simulator) newNet(sc *scope, localName string, width, lsb int) *net {
	n := &net{
		name:  sc.prefix + localName,
		idx:   len(s.nets),
		width: width,
		lsb:   lsb,
		value: NewX(width),
	}
	s.nets = append(s.nets, n)
	sc.nets[localName] = n
	return n
}

// elaborate recursively instantiates module m under the given hierarchical
// prefix with parameter overrides.
func (s *Simulator) elaborate(m *ast.Module, prefix string, paramOverrides map[string]Value, _ *scope) (*scope, error) {
	sc := &scope{prefix: prefix, nets: make(map[string]*net), params: make(map[string]Value)}

	// Ports first, so parameter defaults can reference them is not allowed
	// (params may appear in port ranges, so do params lazily: collect decls
	// and evaluate parameter items before nets that use them).
	for _, it := range m.Items {
		pd, ok := it.(*ast.ParamDecl)
		if !ok {
			continue
		}
		if ov, has := paramOverrides[pd.Name]; has && !pd.Local {
			sc.params[pd.Name] = ov
			continue
		}
		v, err := s.eval(pd.Value, sc)
		if err != nil {
			return nil, fmt.Errorf("%w: parameter %s: %v", ErrElab, pd.Name, err)
		}
		if pd.Range != nil {
			w, _, err := s.rangeWidth(pd.Range, sc)
			if err != nil {
				return nil, err
			}
			v = v.Resize(w)
		}
		sc.params[pd.Name] = v
	}

	for _, p := range m.Ports {
		w, lsb := 1, 0
		var err error
		if p.Range != nil {
			w, lsb, err = s.rangeWidth(p.Range, sc)
			if err != nil {
				return nil, fmt.Errorf("%w: port %s: %v", ErrElab, p.Name, err)
			}
		}
		s.newNet(sc, p.Name, w, lsb)
	}

	// First pass: declare every net so later passes resolve names regardless
	// of item order (Verilog is declaration-order insensitive). Initializer
	// processes are added only after all nets exist, so their sensitivity
	// subscriptions resolve.
	var initAssigns []*process
	for _, it := range m.Items {
		item, ok := it.(*ast.NetDecl)
		if !ok {
			continue
		}
		w, lsb := 1, 0
		var err error
		if item.Kind == ast.Integer {
			w = 32
		}
		if item.Range != nil {
			w, lsb, err = s.rangeWidth(item.Range, sc)
			if err != nil {
				return nil, fmt.Errorf("%w: decl at %s: %v", ErrElab, item.DeclPos, err)
			}
		}
		for i, name := range item.Names {
			if _, exists := sc.nets[name]; !exists {
				s.newNet(sc, name, w, lsb)
			}
			if i < len(item.Init) && item.Init[i] != nil {
				initAssigns = append(initAssigns, &process{
					scope: sc,
					cont:  true,
					lhs:   &ast.Ident{Name: name},
					rhs:   item.Init[i],
				})
			}
		}
	}
	for _, p := range initAssigns {
		s.addProcess(p)
	}

	var behavioral []*ast.Always
	var initials []*ast.Initial
	for _, it := range m.Items {
		switch item := it.(type) {
		case *ast.ParamDecl, *ast.NetDecl:
			// handled above
		case *ast.ContAssign:
			p := &process{scope: sc, cont: true, lhs: item.LHS, rhs: item.RHS}
			s.addProcess(p)
		case *ast.Always:
			behavioral = append(behavioral, item)
		case *ast.Initial:
			initials = append(initials, item)
		case *ast.Instance:
			if err := s.elabInstance(item, m, sc); err != nil {
				return nil, err
			}
		}
	}

	for _, a := range behavioral {
		p := &process{scope: sc, body: a.Body}
		if a.Star {
			p.starSens = true
		} else {
			for _, ev := range a.Events {
				if ev.Edge == ast.EdgeNone {
					p.levelEvents = append(p.levelEvents, ev)
				} else {
					p.edgeEvents = append(p.edgeEvents, ev)
				}
			}
		}
		s.addProcess(p)
	}
	for _, ini := range initials {
		p := &process{scope: sc, body: ini.Body, initialOnly: true}
		s.addProcess(p)
	}
	return sc, nil
}

// elabInstance wires a child module instance into the parent scope by
// creating connection processes for each bound port.
func (s *Simulator) elabInstance(inst *ast.Instance, parent *ast.Module, sc *scope) error {
	child := s.src.FindModule(inst.ModName)
	if child == nil {
		return fmt.Errorf("%w: instance %s: unknown module %q", ErrElab, inst.Name, inst.ModName)
	}
	overrides := make(map[string]Value)
	for _, pc := range inst.ParamsBy {
		if pc.Name == "" || pc.Expr == nil {
			return fmt.Errorf("%w: instance %s: parameter overrides must be by name", ErrElab, inst.Name)
		}
		v, err := s.eval(pc.Expr, sc)
		if err != nil {
			return fmt.Errorf("%w: instance %s: parameter %s: %v", ErrElab, inst.Name, pc.Name, err)
		}
		overrides[pc.Name] = v
	}
	childScope, err := s.elaborate(child, sc.prefix+inst.Name+".", overrides, sc)
	if err != nil {
		return err
	}

	bind := func(formal *ast.Port, actual ast.Expr) error {
		if actual == nil {
			return nil // explicitly unconnected
		}
		formalRef := &ast.Ident{Name: formal.Name}
		switch formal.Dir {
		case ast.Input:
			// formal (child) driven by actual (parent expression).
			p := &process{scope: childScope, cont: true, lhs: formalRef, rhs: actual, rhsScope: sc}
			s.addProcess(p)
		case ast.Output:
			// actual (parent lvalue) driven by formal (child net).
			p := &process{scope: sc, cont: true, lhs: actual, rhs: formalRef, rhsScope: childScope}
			s.addProcess(p)
		default:
			return fmt.Errorf("%w: instance %s: inout ports are not supported", ErrElab, inst.Name)
		}
		return nil
	}

	if inst.ByName {
		for _, c := range inst.Conns {
			if c.Name == "" {
				return fmt.Errorf("%w: instance %s mixes positional and named connections", ErrElab, inst.Name)
			}
			formal := child.PortByName(c.Name)
			if formal == nil {
				return fmt.Errorf("%w: instance %s: module %s has no port %q", ErrElab, inst.Name, child.Name, c.Name)
			}
			if err := bind(formal, c.Expr); err != nil {
				return err
			}
		}
	} else {
		if len(inst.Conns) > len(child.Ports) {
			return fmt.Errorf("%w: instance %s: too many connections (%d > %d ports)", ErrElab, inst.Name, len(inst.Conns), len(child.Ports))
		}
		for i, c := range inst.Conns {
			if err := bind(child.Ports[i], c.Expr); err != nil {
				return err
			}
		}
	}
	return nil
}

// addProcess registers a process and computes its sensitivities.
func (s *Simulator) addProcess(p *process) {
	p.id = len(s.procs)
	s.procs = append(s.procs, p)

	if p.initialOnly {
		return
	}
	if p.cont {
		reads := make(map[string]struct{})
		ast.ExprReads(p.rhs, reads)
		// Index expressions on the LHS are also reads.
		collectLHSIndexReads(p.lhs, reads)
		rsc := p.rhsScope
		if rsc == nil {
			rsc = p.scope
		}
		// RHS reads resolve in rhsScope; LHS index reads in scope. To stay
		// conservative, subscribe in both scopes where the name resolves.
		for name := range reads {
			if n, ok := rsc.lookupNet(name); ok {
				n.levelFanout = append(n.levelFanout, p)
			}
			if p.rhsScope != nil {
				if n, ok := p.scope.lookupNet(name); ok {
					n.levelFanout = append(n.levelFanout, p)
				}
			}
		}
		return
	}
	// Behavioral process.
	if p.starSens {
		reads := make(map[string]struct{})
		ast.WalkStmts(p.body, func(st ast.Stmt) bool {
			ast.StmtExprs(st, func(e ast.Expr) bool {
				if id, ok := e.(*ast.Ident); ok {
					reads[id.Name] = struct{}{}
				}
				return true
			})
			// Exclude pure LHS base names? Reading the old value is possible;
			// staying conservative is safe but can oscillate on self-updates.
			return true
		})
		// Remove names that are only ever written, to avoid self-triggering.
		writes := make(map[string]struct{})
		onlyWrites := make(map[string]struct{})
		ast.WalkStmts(p.body, func(st ast.Stmt) bool {
			if a, ok := st.(*ast.AssignStmt); ok {
				ast.LHSBase(a.LHS, func(nm string) { writes[nm] = struct{}{} })
			}
			if f, ok := st.(*ast.For); ok {
				if f.Init != nil {
					ast.LHSBase(f.Init.LHS, func(nm string) { writes[nm] = struct{}{} })
				}
				if f.Step != nil {
					ast.LHSBase(f.Step.LHS, func(nm string) { writes[nm] = struct{}{} })
				}
			}
			return true
		})
		for w := range writes {
			if !readOutsideWrite(p.body, w) {
				onlyWrites[w] = struct{}{}
			}
		}
		for name := range reads {
			if _, skip := onlyWrites[name]; skip {
				continue
			}
			if n, ok := p.scope.lookupNet(name); ok {
				n.levelFanout = append(n.levelFanout, p)
			}
		}
		return
	}
	for _, ev := range p.levelEvents {
		reads := make(map[string]struct{})
		ast.ExprReads(ev.Sig, reads)
		for name := range reads {
			if n, ok := p.scope.lookupNet(name); ok {
				n.levelFanout = append(n.levelFanout, p)
			}
		}
	}
	for _, ev := range p.edgeEvents {
		if id, ok := ev.Sig.(*ast.Ident); ok {
			if n, ok2 := p.scope.lookupNet(id.Name); ok2 {
				n.edgeFanout = append(n.edgeFanout, edgeSub{proc: p, edge: ev.Edge})
			}
		}
	}
}

// readOutsideWrite reports whether name is read in any RHS/condition of the
// statement tree (not merely written).
func readOutsideWrite(body ast.Stmt, name string) bool {
	found := false
	ast.WalkStmts(body, func(st ast.Stmt) bool {
		check := func(e ast.Expr) {
			ast.WalkExprs(e, func(x ast.Expr) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return true
			})
		}
		switch a := st.(type) {
		case *ast.AssignStmt:
			check(a.RHS)
			// Index expressions on LHS are reads.
			switch l := a.LHS.(type) {
			case *ast.Index:
				check(l.Idx)
			case *ast.PartSel:
				check(l.A)
				check(l.B)
			}
		case *ast.If:
			check(a.Cond)
		case *ast.Case:
			check(a.Subject)
			for _, it := range a.Items {
				for _, l := range it.Labels {
					check(l)
				}
			}
		case *ast.For:
			check(a.Cond)
			if a.Init != nil {
				check(a.Init.RHS)
			}
			if a.Step != nil {
				check(a.Step.RHS)
			}
		}
		return true
	})
	return found
}

func collectLHSIndexReads(lhs ast.Expr, out map[string]struct{}) {
	switch l := lhs.(type) {
	case *ast.Index:
		ast.ExprReads(l.Idx, out)
		collectLHSIndexReads(l.X, out)
	case *ast.PartSel:
		ast.ExprReads(l.A, out)
		ast.ExprReads(l.B, out)
		collectLHSIndexReads(l.X, out)
	case *ast.Concat:
		for _, p := range l.Parts {
			collectLHSIndexReads(p, out)
		}
	}
}
