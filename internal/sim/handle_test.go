package sim

import (
	"errors"
	"testing"

	"repro/internal/verilog/parser"
)

const handleSrc = `
module top_module (
    input clk,
    input reset,
    input [6:0] d,
    output reg [6:0] q,
    output [6:0] inv
);
    always @(posedge clk) begin
        if (reset) q <= 7'd0;
        else q <= q + d;
    end
    assign inv = ~q;
endmodule
`

// handleInstances returns one instance per backend for the shared source.
func handleInstances(t *testing.T) map[string]Instance {
	t.Helper()
	src, err := parser.Parse(handleSrc)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := New(src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(src, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Instance{"interpreter": interp, "compiled": d.NewEngine()}
}

// TestHandlePathMatchesNamePath drives the same stimulus by name and by
// handle on both backends and requires identical printed outputs and hashes.
func TestHandlePathMatchesNamePath(t *testing.T) {
	for name, inst := range handleInstances(t) {
		t.Run(name, func(t *testing.T) {
			clkH, err := inst.InputHandle("clk")
			if err != nil {
				t.Fatal(err)
			}
			rstH, err := inst.InputHandle("reset")
			if err != nil {
				t.Fatal(err)
			}
			dH, err := inst.InputHandle("d")
			if err != nil {
				t.Fatal(err)
			}
			qH, err := inst.OutputHandle("q")
			if err != nil {
				t.Fatal(err)
			}
			invH, err := inst.OutputHandle("inv")
			if err != nil {
				t.Fatal(err)
			}

			inst.SetInputUintH(clkH, 0)
			inst.SetInputUintH(rstH, 1)
			if err := inst.TickH(clkH); err != nil {
				t.Fatal(err)
			}
			inst.SetInputUintH(rstH, 0)
			for step := 0; step < 8; step++ {
				inst.SetInputH(dH, NewKnown(7, uint64(step*13+5)))
				if err := inst.TickH(clkH); err != nil {
					t.Fatal(err)
				}
				for _, out := range []struct {
					name string
					h    int
				}{{"q", qH}, {"inv", invH}} {
					v, err := inst.Output(out.name)
					if err != nil {
						t.Fatal(err)
					}
					want := v.Resize(7).String()
					got := string(inst.AppendOutputH(nil, out.h, 7))
					if got != want {
						t.Fatalf("step %d %s: AppendOutputH %q, Output %q", step, out.name, got, want)
					}
					wantHash := FNVOffset64
					for i := 0; i < len(want); i++ {
						wantHash = (wantHash ^ uint64(want[i])) * FNVPrime64
					}
					if gotHash := inst.HashOutputH(FNVOffset64, out.h, 7); gotHash != wantHash {
						t.Fatalf("step %d %s: HashOutputH mismatch", step, out.name)
					}
				}
			}
		})
	}
}

// TestHandleResolutionErrors pins the error classes handle resolution shares
// with the name-keyed methods.
func TestHandleResolutionErrors(t *testing.T) {
	for name, inst := range handleInstances(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := inst.InputHandle("q"); !errors.Is(err, ErrNotInput) {
				t.Errorf("InputHandle(output) = %v, want ErrNotInput", err)
			}
			if _, err := inst.InputHandle("nosuch"); err == nil {
				t.Error("InputHandle(unknown) succeeded")
			}
			if _, err := inst.OutputHandle("nosuch"); !errors.Is(err, ErrUnknownNet) {
				t.Errorf("OutputHandle(unknown) = %v, want ErrUnknownNet", err)
			}
			if h, err := inst.OutputHandle("q"); err != nil || h < 0 {
				t.Errorf("OutputHandle(q) = %d, %v", h, err)
			}
		})
	}
}

// TestHandleWidthResize drives a value wider and narrower than the port and
// checks SetInputH applies the same Resize semantics as SetInput.
func TestHandleWidthResize(t *testing.T) {
	for name, inst := range handleInstances(t) {
		t.Run(name, func(t *testing.T) {
			dH, err := inst.InputHandle("d")
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []Value{NewKnown(3, 5), NewKnown(32, 0xFFFF), NewX(7)} {
				if err := inst.SetInput("d", v); err != nil {
					t.Fatal(err)
				}
				if err := inst.Settle(); err != nil {
					t.Fatal(err)
				}
				want, err := inst.Output("d")
				if err != nil {
					t.Fatal(err)
				}
				inst.SetInputH(dH, NewKnown(7, 0)) // perturb
				if err := inst.Settle(); err != nil {
					t.Fatal(err)
				}
				inst.SetInputH(dH, v)
				if err := inst.Settle(); err != nil {
					t.Fatal(err)
				}
				got, err := inst.Output("d")
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("SetInputH(%s) -> %s, SetInput -> %s", v, got, want)
				}
			}
		})
	}
}
