package sim

import (
	"testing"
	"testing/quick"
)

func TestNewKnownAndString(t *testing.T) {
	v := NewKnown(4, 0b1010)
	if got := v.String(); got != "4'b1010" {
		t.Errorf("String = %q", got)
	}
	if u, ok := v.Uint64(); !ok || u != 10 {
		t.Errorf("Uint64 = %d,%v", u, ok)
	}
	if v.HasXZ() {
		t.Error("known value reports XZ")
	}
}

func TestNewXAndBits(t *testing.T) {
	v := NewX(3)
	if got := v.String(); got != "3'bxxx" {
		t.Errorf("String = %q", got)
	}
	if !v.HasXZ() {
		t.Error("X value reports known")
	}
	if _, ok := v.Uint64(); ok {
		t.Error("X value converted to uint64")
	}
	if v.Bit(5) != '0' {
		t.Error("out-of-range bit should read 0")
	}
}

func TestMaskOverflow(t *testing.T) {
	v := NewKnown(4, 0xFF)
	if u, _ := v.Uint64(); u != 0xF {
		t.Errorf("mask failed: %d", u)
	}
}

func TestResize(t *testing.T) {
	v := NewKnown(4, 0b1010)
	up := v.Resize(8)
	if u, _ := up.Uint64(); u != 0b1010 {
		t.Errorf("zero-extend: %d", u)
	}
	down := v.Resize(2)
	if u, _ := down.Uint64(); u != 0b10 {
		t.Errorf("truncate: %d", u)
	}
}

func TestBitwiseXSemantics(t *testing.T) {
	x := NewX(1)
	one := NewKnown(1, 1)
	zero := NewKnown(1, 0)

	if got := And(zero, x); got.Bit(0) != '0' {
		t.Errorf("0 & x = %c, want 0", got.Bit(0))
	}
	if got := And(one, x); got.Bit(0) != 'x' {
		t.Errorf("1 & x = %c, want x", got.Bit(0))
	}
	if got := Or(one, x); got.Bit(0) != '1' {
		t.Errorf("1 | x = %c, want 1", got.Bit(0))
	}
	if got := Or(zero, x); got.Bit(0) != 'x' {
		t.Errorf("0 | x = %c, want x", got.Bit(0))
	}
	if got := Xor(one, x); got.Bit(0) != 'x' {
		t.Errorf("1 ^ x = %c, want x", got.Bit(0))
	}
	if got := Not(x); got.Bit(0) != 'x' {
		t.Errorf("~x = %c, want x", got.Bit(0))
	}
}

func TestArithXPropagation(t *testing.T) {
	x := NewX(4)
	v := NewKnown(4, 3)
	for name, got := range map[string]Value{
		"add": Add(v, x), "sub": Sub(v, x), "mul": Mul(v, x),
		"div": Div(v, x), "mod": Mod(v, x),
	} {
		if !got.HasXZ() {
			t.Errorf("%s with X operand should be X", name)
		}
	}
	if !Div(v, NewKnown(4, 0)).HasXZ() {
		t.Error("division by zero should be X")
	}
	if !Eq(v, x).HasXZ() {
		t.Error("== with X should be X")
	}
}

func TestCaseEquality(t *testing.T) {
	x := NewX(2)
	if got, _ := CaseEq(x, NewX(2)).Uint64(); got != 1 {
		t.Error("x === x should be 1")
	}
	if got, _ := CaseEq(x, NewKnown(2, 0)).Uint64(); got != 0 {
		t.Error("x === 0 should be 0")
	}
	if got, _ := CaseNeq(x, NewKnown(2, 0)).Uint64(); got != 1 {
		t.Error("x !== 0 should be 1")
	}
}

func TestShifts(t *testing.T) {
	v := NewKnown(8, 0b10010110)
	if u, _ := Shl(v, NewKnown(3, 2)).Uint64(); u != 0b01011000 {
		t.Errorf("shl: %b", u)
	}
	if u, _ := Shr(v, NewKnown(3, 2)).Uint64(); u != 0b00100101 {
		t.Errorf("shr: %b", u)
	}
	if u, _ := AShr(v, NewKnown(3, 2)).Uint64(); u != 0b11100101 {
		t.Errorf("ashr: %b", u)
	}
	if u, _ := Shl(v, NewKnown(8, 9)).Uint64(); u != 0 {
		t.Errorf("over-shift left: %b", u)
	}
	if u, _ := AShr(v, NewKnown(8, 9)).Uint64(); u != 0xFF {
		t.Errorf("over-ashr of negative: %b", u)
	}
	if !Shl(v, NewX(2)).HasXZ() {
		t.Error("shift by X should be X")
	}
}

func TestReductions(t *testing.T) {
	if u, _ := RedAnd(NewKnown(4, 0xF)).Uint64(); u != 1 {
		t.Error("&1111 should be 1")
	}
	if u, _ := RedAnd(NewKnown(4, 0x7)).Uint64(); u != 0 {
		t.Error("&0111 should be 0")
	}
	if u, _ := RedOr(NewKnown(4, 0)).Uint64(); u != 0 {
		t.Error("|0000 should be 0")
	}
	if u, _ := RedXor(NewKnown(4, 0b1011)).Uint64(); u != 1 {
		t.Error("^1011 should be 1")
	}
	// X handling: AND with a known 0 dominates X.
	v := NewX(2)
	v = v.WriteBits(0, NewKnown(1, 0))
	if u, _ := RedAnd(v).Uint64(); u != 0 {
		t.Error("&(x0) should be 0")
	}
	if !RedOr(v).HasXZ() {
		t.Error("|(x0) should be x")
	}
}

func TestConcatAndRepl(t *testing.T) {
	hi := NewKnown(4, 0xA)
	lo := NewKnown(4, 0x5)
	cat := ConcatVals([]Value{hi, lo})
	if u, _ := cat.Uint64(); u != 0xA5 || cat.Width() != 8 {
		t.Errorf("concat = %x width %d", u, cat.Width())
	}
	rep := ReplVal(3, NewKnown(2, 0b10))
	if u, _ := rep.Uint64(); u != 0b101010 || rep.Width() != 6 {
		t.Errorf("repl = %b width %d", u, rep.Width())
	}
}

func TestSliceAndWrite(t *testing.T) {
	v := NewKnown(8, 0xA5)
	if u, _ := v.SliceBits(4, 4).Uint64(); u != 0xA {
		t.Error("slice high nibble")
	}
	out := v.SliceBits(6, 4)
	if out.Bit(2) != 'x' || out.Bit(3) != 'x' {
		t.Error("out-of-range slice bits should be X")
	}
	w := v.WriteBits(0, NewKnown(4, 0xF))
	if u, _ := w.Uint64(); u != 0xAF {
		t.Errorf("write = %x", u)
	}
	if u, _ := v.Uint64(); u != 0xA5 {
		t.Error("WriteBits must not mutate the receiver")
	}
}

func TestCasezMatch(t *testing.T) {
	subj := NewKnown(4, 0b1010)
	label := NewFromPlanes(4, []uint64{0b1011}, []uint64{0b0011}) // 10zz ('?'→z)
	if !CasezMatch(subj, label, false) {
		t.Error("10zz should match 1010 in casez")
	}
	exact := NewKnown(4, 0b1110)
	if CasezMatch(exact, NewKnown(4, 0b1010), false) {
		t.Error("no wildcards: mismatch expected")
	}
	xsubj := NewX(4)
	if CasezMatch(xsubj, NewKnown(4, 0), false) {
		t.Error("X subject should not match in casez")
	}
	if !CasezMatch(xsubj, NewKnown(4, 0), true) {
		t.Error("X subject should match in casex")
	}
}

func TestBool3(t *testing.T) {
	if tr, known := NewKnown(4, 2).Bool3(); !tr || !known {
		t.Error("2 should be known-true")
	}
	if tr, known := NewKnown(4, 0).Bool3(); tr || !known {
		t.Error("0 should be known-false")
	}
	if _, known := NewX(4).Bool3(); known {
		t.Error("X should be unknown")
	}
	// 1 bit known-1 plus X bits: still known-true.
	v := NewX(4).WriteBits(0, NewKnown(1, 1))
	if tr, known := v.Bool3(); !tr || !known {
		t.Error("x..1 should be known-true")
	}
}

// --- property-based tests against uint64 reference semantics ------------------

func TestAddMatchesUint64Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		va, vb := NewKnown(32, uint64(a)), NewKnown(32, uint64(b))
		got, ok := Add(va, vb).Uint64()
		return ok && uint32(got) == a+b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesUint64Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		got, ok := Sub(NewKnown(32, uint64(a)), NewKnown(32, uint64(b))).Uint64()
		return ok && uint32(got) == a-b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesUint64Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		got, ok := Mul(NewKnown(32, uint64(a)), NewKnown(32, uint64(b))).Uint64()
		return ok && uint32(got) == a*b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDivModMatchesUint64Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		if b == 0 {
			return Div(NewKnown(32, uint64(a)), NewKnown(32, 0)).HasXZ()
		}
		q, ok1 := Div(NewKnown(32, uint64(a)), NewKnown(32, uint64(b))).Uint64()
		r, ok2 := Mod(NewKnown(32, uint64(a)), NewKnown(32, uint64(b))).Uint64()
		return ok1 && ok2 && uint32(q) == a/b && uint32(r) == a%b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWideMulDivConsistencyQuick(t *testing.T) {
	// For 96-bit values built from two words, (a*b)/b == a when b != 0 and
	// the product fits (use small a to avoid overflow).
	prop := func(a16 uint16, b32 uint32) bool {
		if b32 == 0 {
			return true
		}
		a := NewKnown(96, uint64(a16))
		b := NewKnown(96, uint64(b32))
		prod := Mul(a, b)
		q := Div(prod, b)
		return q.Equal(a.Resize(96))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompareMatchesUint64Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		va, vb := NewKnown(32, uint64(a)), NewKnown(32, uint64(b))
		lt, _ := Lt(va, vb).Uint64()
		leq, _ := Leq(va, vb).Uint64()
		gt, _ := Gt(va, vb).Uint64()
		geq, _ := Geq(va, vb).Uint64()
		eq, _ := Eq(va, vb).Uint64()
		return (lt == 1) == (a < b) && (leq == 1) == (a <= b) &&
			(gt == 1) == (a > b) && (geq == 1) == (a >= b) && (eq == 1) == (a == b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBitwiseMatchesUint64Quick(t *testing.T) {
	prop := func(a, b uint32) bool {
		va, vb := NewKnown(32, uint64(a)), NewKnown(32, uint64(b))
		and, _ := And(va, vb).Uint64()
		or, _ := Or(va, vb).Uint64()
		xor, _ := Xor(va, vb).Uint64()
		not, _ := Not(va).Uint64()
		return uint32(and) == a&b && uint32(or) == a|b &&
			uint32(xor) == a^b && uint32(not) == ^a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNegQuick(t *testing.T) {
	prop := func(a uint32) bool {
		got, ok := Neg(NewKnown(32, uint64(a))).Uint64()
		return ok && uint32(got) == -a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcatSliceInverseQuick(t *testing.T) {
	// Slicing a concat recovers the original parts.
	prop := func(hi uint16, lo uint16) bool {
		cat := ConcatVals([]Value{NewKnown(16, uint64(hi)), NewKnown(16, uint64(lo))})
		gotHi, _ := cat.SliceBits(16, 16).Uint64()
		gotLo, _ := cat.SliceBits(0, 16).Uint64()
		return uint16(gotHi) == hi && uint16(gotLo) == lo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
