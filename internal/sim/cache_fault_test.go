package sim

import (
	"strings"
	"testing"
)

// TestCompileCachePanicNotPoisoned: a panicking compilation must resolve
// the single-flight entry to an error — not leave it pinned forever with
// done unset and every caller seeing (nil, nil) — and must not recompile
// on subsequent hits (crashes cache like any other compile failure).
func TestCompileCachePanicNotPoisoned(t *testing.T) {
	c := NewCompileCache(2)
	calls := 0
	key := cacheKey{hash: "deadbeef", top: "t"}
	d, err := c.get(key, func() (*Design, error) {
		calls++
		panic("injected compile crash")
	})
	if d != nil {
		t.Fatalf("crashed compile returned a design")
	}
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want compile-panicked error", err)
	}

	// Cached as a failure: the hit path returns the same error without
	// re-running the (crashing) compile.
	d2, err2 := c.get(key, func() (*Design, error) {
		t.Fatal("compile re-ran for a resolved entry")
		return nil, nil
	})
	if d2 != nil || err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("second lookup: %v / %v", d2, err2)
	}
	if calls != 1 {
		t.Fatalf("compile ran %d times, want 1", calls)
	}

	// And evictable: done flipped, so cap pressure can push it out.
	c.get(cacheKey{hash: "a", top: "t"}, func() (*Design, error) { return nil, nil })
	c.get(cacheKey{hash: "b", top: "t"}, func() (*Design, error) { return nil, nil })
	if n := c.Len(); n > 2 {
		t.Fatalf("crashed entry pinned against eviction: len=%d", n)
	}
}
