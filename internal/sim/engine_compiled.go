package sim

import (
	"fmt"
	"strconv"

	"repro/internal/verilog/ast"
)

// Instance is the common stimulus interface of both simulation backends: the
// AST-walking Simulator and the compiled Engine.
//
// The name-keyed methods (SetInput, Output, ...) resolve the port on every
// call; the handle-bound variants split resolution from use, so a testbench
// schedule resolves each name exactly once per (design, stimulus) pair and
// then drives and observes through integer handles. Handles are stable
// across instances of the same design on the same backend (the compiled
// engine shares them through its Design; the interpreter's elaboration is
// deterministic), so a schedule bound on one instance is valid for every
// per-case instance of the run. The handle-taking methods require a handle
// obtained from InputHandle/OutputHandle on the same design and do not
// re-validate it.
type Instance interface {
	Inputs() []PortInfo
	Outputs() []PortInfo
	SetInput(name string, v Value) error
	SetInputUint(name string, x uint64) error
	Output(name string) (Value, error)
	Settle() error
	Tick(clock string) error

	// InputHandle resolves an input port name (ErrNotInput for non-inputs,
	// ErrUnknownNet where the backend distinguishes unknown names).
	InputHandle(name string) (int, error)
	// OutputHandle resolves a top-level net name (ErrUnknownNet if absent).
	OutputHandle(name string) (int, error)
	// SetInputH drives an input through its handle. The Value's planes are
	// only read during the call, so callers may pass reused buffers.
	SetInputH(h int, v Value)
	// SetInputUintH drives an input with a known integer value.
	SetInputUintH(h int, x uint64)
	// TickH performs one full clock cycle on the input behind h.
	TickH(h int) error
	// HashOutputH folds the output's printed rendering at the given width
	// into a running FNV-1a hash (same bytes as AppendOutputH).
	HashOutputH(hash uint64, h int, width int) uint64
	// AppendOutputH appends the output's binary rendering at the given
	// width, identical to Output(name).Resize(width).String().
	AppendOutputH(dst []byte, h int, width int) []byte
}

var (
	_ Instance = (*Simulator)(nil)
	_ Instance = (*Engine)(nil)
)

// Engine executes a compiled Design. All mutable state is a pair of flat
// val/xz word planes (net state, constant pool, expression scratch) plus the
// scheduler queues; steady-state Settle/Tick touch only preallocated storage
// and perform zero heap allocations. Many Engines can run one Design
// concurrently. An individual Engine is not safe for concurrent use.
type Engine struct {
	d       *Design
	val, xz []uint64
	queued  []bool
	active  []int32
	changed []echange
	nba     []enbaWrite
	current int32 // behavioral process being run, -1 outside

	// nbaVal/nbaXZ arena the pending values of non-blocking assignments
	// (the RHS scratch slot is long overwritten by the time NBAs apply).
	nbaVal, nbaXZ []uint64

	// wstack holds produced widths of in-flight concat parts.
	wstack []int32

	// targets buffers resolved dynamic lvalue targets so an assignment
	// resolves every target before storing any (assignments never nest, so
	// one buffer suffices).
	targets []rtarget

	// Spare buffers double-buffer the scheduler queues so steady-state
	// settling allocates nothing.
	activeSpare  []int32
	changedSpare []echange
	nbaSpare     []enbaWrite
}

// echange records one net transition for fanout dispatch. Only the 4-state
// code of bit 0 before/after is kept: edge detection looks at nothing else,
// and level fanout needs no value at all.
type echange struct {
	net    int32
	byProc int32
	oldB   uint8 // 0:'0' 1:'1' 2:'x' 3:'z'
	newB   uint8
}

type enbaWrite struct {
	net     int32
	lo      int
	width   int
	dataOff int // word offset into the NBA arena
}

// NewEngine returns a fresh instance of the design, already in its
// post-initial settled state (the snapshot Compile captured), so
// instantiation costs one frame copy instead of a re-elaboration.
func (d *Design) NewEngine() *Engine {
	en := &Engine{
		d:       d,
		val:     make([]uint64, d.frameWords),
		xz:      make([]uint64, d.frameWords),
		queued:  make([]bool, len(d.procs)),
		current: -1,
	}
	copy(en.val, d.initVal)
	copy(en.xz, d.initXZ)
	return en
}

// AcquireEngine returns an engine reset to the design's initial state,
// recycling a previously released one when possible. The reset is two plane
// memcpys, so acquire/release cycles through testbench cases cost no
// allocation in steady state.
func (d *Design) AcquireEngine() *Engine {
	if v := d.pool.Get(); v != nil {
		en := v.(*Engine)
		en.reset()
		return en
	}
	return d.NewEngine()
}

// ReleaseEngine returns an engine to the design's pool. The engine must not
// be used after release. Engines belonging to other designs are ignored.
func (d *Design) ReleaseEngine(en *Engine) {
	if en == nil || en.d != d {
		return
	}
	d.pool.Put(en)
}

// reset restores the post-initial snapshot and empties the scheduler, so a
// recycled engine is indistinguishable from a fresh one (even after an
// errored run left queues half-full). The queued flags are cleared
// wholesale: a mid-batch process error leaves the unprocessed tail of the
// batch flagged but parked outside en.active, so clearing only en.active
// would permanently suppress those processes on the recycled engine.
func (en *Engine) reset() {
	copy(en.val, en.d.initVal)
	copy(en.xz, en.d.initXZ)
	for i := range en.queued {
		en.queued[i] = false
	}
	en.active = en.active[:0]
	en.changed = en.changed[:0]
	en.nba = en.nba[:0]
	en.nbaVal = en.nbaVal[:0]
	en.nbaXZ = en.nbaXZ[:0]
	en.wstack = en.wstack[:0]
	en.current = -1
}

// Design returns the compiled design this engine executes.
func (en *Engine) Design() *Design { return en.d }

// Inputs returns the top module's input ports in declaration order.
func (en *Engine) Inputs() []PortInfo { return append([]PortInfo(nil), en.d.inputs...) }

// Outputs returns the top module's output ports in declaration order.
func (en *Engine) Outputs() []PortInfo { return append([]PortInfo(nil), en.d.outputs...) }

// netValue boxes the current value of net idx (API boundary and boxed
// fallback path only — the hot path never materializes Values).
func (en *Engine) netValue(idx int32) Value {
	n := &en.d.nets[idx]
	return NewFromPlanes(n.width, en.val[n.off:n.off+n.nw], en.xz[n.off:n.off+n.nw])
}

// SetInput drives a top-level input port. The new value takes effect at the
// next Settle call.
func (en *Engine) SetInput(name string, v Value) error {
	idx, ok := en.d.inputIdx[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotInput, name)
	}
	// Writing exactly the net's width from v's planes is Resize semantics:
	// guarded reads zero-extend, the width bound truncates.
	en.storeNet(idx, 0, v.val, v.xz, 0, en.d.nets[idx].width)
	return nil
}

// SetInputUint drives an input port with a known integer value. Non-input
// nets are rejected exactly like the interpreter: unknown names report
// ErrUnknownNet, known non-input nets ErrNotInput.
func (en *Engine) SetInputUint(name string, x uint64) error {
	idx, ok := en.d.inputIdx[name]
	if !ok {
		if _, isNet := en.d.topIdx[name]; !isNet {
			return fmt.Errorf("%w: %q", ErrUnknownNet, name)
		}
		return fmt.Errorf("%w: %q", ErrNotInput, name)
	}
	sv := [1]uint64{x}
	en.storeNet(idx, 0, sv[:], nil, 0, en.d.nets[idx].width)
	return nil
}

// Output reads any top-level net (usually an output port).
func (en *Engine) Output(name string) (Value, error) {
	idx, ok := en.d.topIdx[name]
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return en.netValue(idx), nil
}

// AppendOutput appends the binary rendering of a top-level net at the given
// width (identical to Output(name).Resize(width).String()) to dst, without
// boxing a Value. Trace capture is the hottest consumer of outputs; this
// keeps it at one allocation per recorded string.
func (en *Engine) AppendOutput(dst []byte, name string, width int) ([]byte, error) {
	idx, ok := en.d.topIdx[name]
	if !ok {
		return dst, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return en.AppendOutputH(dst, int(idx), width), nil
}

// InputHandle resolves an input port name to a design-stable handle
// (delegates to the shared Design, so every pooled Engine agrees).
func (en *Engine) InputHandle(name string) (int, error) { return en.d.InputHandle(name) }

// OutputHandle resolves a top-level net name to a design-stable handle.
func (en *Engine) OutputHandle(name string) (int, error) { return en.d.OutputHandle(name) }

// SetInputH drives an input port through its handle: SetInput without the
// name lookup. The planes of v are read only during the call.
func (en *Engine) SetInputH(h int, v Value) {
	en.storeNet(int32(h), 0, v.val, v.xz, 0, en.d.nets[h].width)
}

// SetInputUintH drives an input port with a known integer value through its
// handle.
func (en *Engine) SetInputUintH(h int, x uint64) {
	sv := [1]uint64{x}
	en.storeNet(int32(h), 0, sv[:], nil, 0, en.d.nets[h].width)
}

// AppendOutputH is AppendOutput through a handle: one bounds check instead
// of a map lookup per recorded output.
func (en *Engine) AppendOutputH(dst []byte, h int, width int) []byte {
	cn := &en.d.nets[h]
	sv := en.val[cn.off : cn.off+cn.nw]
	sx := en.xz[cn.off : cn.off+cn.nw]
	dst = strconv.AppendInt(dst, int64(width), 10)
	dst = append(dst, '\'', 'b')
	for i := width - 1; i >= 0; i-- {
		switch kbit(sv, sx, cn.width, i) {
		case 0:
			dst = append(dst, '0')
		case 1:
			dst = append(dst, '1')
		case 2:
			dst = append(dst, 'x')
		default:
			dst = append(dst, 'z')
		}
	}
	return dst
}

// Settle runs delta cycles until no activity remains, or fails with
// ErrNoConverge.
func (en *Engine) Settle() error {
	for iter := 0; ; iter++ {
		if iter > maxDeltas {
			return ErrNoConverge
		}
		if len(en.changed) > 0 {
			en.dispatchChanges()
			continue
		}
		if len(en.active) > 0 {
			if err := en.runActive(); err != nil {
				return err
			}
			continue
		}
		if len(en.nba) > 0 {
			en.applyNBA()
			continue
		}
		return nil
	}
}

// Tick performs one full clock cycle on the named clock input.
func (en *Engine) Tick(clock string) error {
	if err := en.SetInputUint(clock, 1); err != nil {
		return err
	}
	if err := en.Settle(); err != nil {
		return err
	}
	if err := en.SetInputUint(clock, 0); err != nil {
		return err
	}
	return en.Settle()
}

// TickH performs one full clock cycle through the clock's handle, saving the
// two name lookups Tick pays per cycle.
func (en *Engine) TickH(h int) error {
	en.SetInputUintH(h, 1)
	if err := en.Settle(); err != nil {
		return err
	}
	en.SetInputUintH(h, 0)
	return en.Settle()
}

// --- Scheduler internals -----------------------------------------------------

func (en *Engine) enqueue(pid int32) {
	if en.queued[pid] {
		return
	}
	en.queued[pid] = true
	en.active = append(en.active, pid)
}

// storeNet writes n bits read from (sv, sx) starting at bit spos into net
// idx at bit offset lo, in place. Bits landing outside the net are dropped
// (WriteBits semantics) and an unchanged store is a no-op. Changes are
// recorded for fanout dispatch, mirroring Simulator.writeNet; nets with no
// fanout at all (e.g. pure output ports) skip the record, since dispatching
// them is a no-op by construction.
func (en *Engine) storeNet(idx int32, lo int, sv, sx []uint64, spos, n int) {
	cn := &en.d.nets[idx]
	// Fast path: a whole-net store of a net that fits one word and an
	// aligned source — the shape of every input drive and most assignments.
	// Skips the guarded multi-word blit loop below.
	if lo == 0 && spos == 0 && n == cn.width && n <= 64 && len(sv) > 0 {
		m := maskN(n)
		nv := sv[0] & m
		var nx uint64
		if len(sx) > 0 {
			nx = sx[0] & m
		}
		dv := &en.val[cn.off]
		dx := &en.xz[cn.off]
		if nv == *dv && nx == *dx {
			return
		}
		hasFan := len(en.d.levelFan[idx]) > 0 || len(en.d.edgeFan[idx]) > 0
		if !hasFan {
			*dv, *dx = nv, nx
			return
		}
		oldB := uint8(*dv&1) | uint8(*dx&1)<<1
		*dv, *dx = nv, nx
		newB := uint8(nv&1) | uint8(nx&1)<<1
		en.changed = append(en.changed, echange{net: idx, byProc: en.current, oldB: oldB, newB: newB})
		return
	}
	cnt := n
	s := spos
	dpos := lo
	if dpos < 0 {
		s -= dpos
		cnt += dpos
		dpos = 0
	}
	if max := cn.width - dpos; cnt > max {
		cnt = max
	}
	if cnt <= 0 {
		return
	}
	dv := en.val[cn.off : cn.off+cn.nw]
	dx := en.xz[cn.off : cn.off+cn.nw]
	hasFan := len(en.d.levelFan[idx]) > 0 || len(en.d.edgeFan[idx]) > 0
	var oldB uint8
	if hasFan {
		oldB = uint8(dv[0]&1) | uint8(dx[0]&1)<<1
	}
	changed := false
	for cnt > 0 {
		wi, b := dpos/64, dpos%64
		take := 64 - b
		if take > cnt {
			take = cnt
		}
		m := maskN(take) << uint(b)
		nv := dv[wi]&^m | kread64(sv, s)<<uint(b)&m
		nx := dx[wi]&^m | kread64(sx, s)<<uint(b)&m
		if nv != dv[wi] || nx != dx[wi] {
			changed = true
			dv[wi] = nv
			dx[wi] = nx
		}
		dpos += take
		s += take
		cnt -= take
	}
	if !changed || !hasFan {
		return
	}
	newB := uint8(dv[0]&1) | uint8(dx[0]&1)<<1
	en.changed = append(en.changed, echange{net: idx, byProc: en.current, oldB: oldB, newB: newB})
}

// queueNBA copies n bits of the RHS (starting at spos) into the NBA arena
// and schedules the write. The arena is reused across deltas, so after
// warmup this allocates nothing.
func (en *Engine) queueNBA(idx int32, lo int, sv, sx []uint64, spos, n int) {
	nw := words(n)
	off := len(en.nbaVal)
	need := off + nw
	if need > cap(en.nbaVal) {
		grown := make([]uint64, need, 2*need)
		copy(grown, en.nbaVal)
		en.nbaVal = grown
		grownX := make([]uint64, need, 2*need)
		copy(grownX, en.nbaXZ)
		en.nbaXZ = grownX
	} else {
		en.nbaVal = en.nbaVal[:need]
		en.nbaXZ = en.nbaXZ[:need]
	}
	for i := off; i < need; i++ {
		en.nbaVal[i], en.nbaXZ[i] = 0, 0
	}
	kblit(en.nbaVal[off:need], en.nbaXZ[off:need], 0, sv, sx, spos, n)
	en.nba = append(en.nba, enbaWrite{net: idx, lo: lo, width: n, dataOff: off})
}

// edgeFiredCode implements LRM edge semantics on the LSB codes: posedge
// fires on transitions toward 1 (0→1, 0→x/z, x/z→1), negedge mirrors toward
// 0. Codes: 0:'0' 1:'1' 2:'x' 3:'z' (the code equivalent of edgeFired in
// eval.go).
func edgeFiredCode(edge ast.EdgeKind, oldB, newB uint8) bool {
	if oldB == newB {
		return false
	}
	switch edge {
	case ast.EdgePos:
		return (oldB == 0 && newB != 0) || (oldB != 1 && newB == 1)
	case ast.EdgeNeg:
		return (oldB == 1 && newB != 1) || (oldB != 0 && newB == 0)
	default:
		return false
	}
}

func (en *Engine) dispatchChanges() {
	batch := en.changed
	en.changed = en.changedSpare[:0]
	for _, ch := range batch {
		for _, pid := range en.d.levelFan[ch.net] {
			if pid == ch.byProc {
				continue // processes miss events raised during their own run
			}
			en.enqueue(pid)
		}
		for _, sub := range en.d.edgeFan[ch.net] {
			if sub.proc == ch.byProc {
				continue
			}
			if edgeFiredCode(sub.edge, ch.oldB, ch.newB) {
				en.enqueue(sub.proc)
			}
		}
	}
	en.changedSpare = batch[:0]
}

func (en *Engine) runActive() error {
	batch := en.active
	en.active = en.activeSpare[:0]
	for _, pid := range batch {
		en.queued[pid] = false
		if err := en.runProcess(pid); err != nil {
			en.activeSpare = batch[:0]
			return err
		}
	}
	en.activeSpare = batch[:0]
	return nil
}

func (en *Engine) applyNBA() {
	batch := en.nba
	en.nba = en.nbaSpare[:0]
	for _, w := range batch {
		en.storeNet(w.net, w.lo, en.nbaVal[w.dataOff:], en.nbaXZ[w.dataOff:], 0, w.width)
	}
	en.nbaSpare = batch[:0]
	en.nbaVal = en.nbaVal[:0]
	en.nbaXZ = en.nbaXZ[:0]
}

func (en *Engine) runProcess(pid int32) error {
	p := &en.d.procs[pid]
	if p.cont {
		// Continuous assignments observe their own changes (that is what
		// makes a zero-delay combinational loop oscillate, not freeze).
		return p.run(en)
	}
	prev := en.current
	en.current = pid
	err := p.run(en)
	en.current = prev
	return err
}

// assignLV distributes v across the lvalue's resolved targets MSB-first,
// mirroring Simulator.assign (boxed fallback path).
func (en *Engine) assignLV(lv *clval, v Value, blocking bool) error {
	targets, totalWidth, err := lv.resolve(en)
	if err != nil {
		return err
	}
	// Reading bit ranges of v with guarded loads is Resize(totalWidth)
	// semantics: zero-extension beyond v's width, truncation past total.
	pos := totalWidth
	for _, t := range targets {
		pos -= t.width
		if t.skip {
			continue
		}
		if blocking {
			en.storeNet(t.idx, t.lo, v.val, v.xz, pos, t.width)
		} else {
			en.queueNBA(t.idx, t.lo, v.val, v.xz, pos, t.width)
		}
	}
	return nil
}
