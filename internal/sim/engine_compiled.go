package sim

import "fmt"

// Instance is the common stimulus interface of both simulation backends: the
// AST-walking Simulator and the compiled Engine.
type Instance interface {
	Inputs() []PortInfo
	Outputs() []PortInfo
	SetInput(name string, v Value) error
	SetInputUint(name string, x uint64) error
	Output(name string) (Value, error)
	Settle() error
	Tick(clock string) error
}

var (
	_ Instance = (*Simulator)(nil)
	_ Instance = (*Engine)(nil)
)

// Engine executes a compiled Design. It holds only per-run mutable state
// (net values and scheduler queues); many Engines can run one Design
// concurrently. An individual Engine is not safe for concurrent use.
type Engine struct {
	d       *Design
	vals    []Value
	queued  []bool
	active  []int32
	changed []echange
	nba     []enbaWrite
	current int32 // behavioral process being run, -1 outside

	// Spare buffers double-buffer the scheduler queues so steady-state
	// settling allocates nothing.
	activeSpare  []int32
	changedSpare []echange
	nbaSpare     []enbaWrite
}

type echange struct {
	net      int32
	old, new Value
	byProc   int32
}

type enbaWrite struct {
	net int32
	lo  int
	val Value
}

// NewEngine returns a fresh instance of the design, already in its
// post-initial settled state (the snapshot Compile captured), so
// instantiation costs one value-slice copy instead of a re-elaboration.
func (d *Design) NewEngine() *Engine {
	en := &Engine{
		d:       d,
		vals:    make([]Value, len(d.initVals)),
		queued:  make([]bool, len(d.procs)),
		current: -1,
	}
	copy(en.vals, d.initVals)
	return en
}

// Design returns the compiled design this engine executes.
func (en *Engine) Design() *Design { return en.d }

// Inputs returns the top module's input ports in declaration order.
func (en *Engine) Inputs() []PortInfo { return append([]PortInfo(nil), en.d.inputs...) }

// Outputs returns the top module's output ports in declaration order.
func (en *Engine) Outputs() []PortInfo { return append([]PortInfo(nil), en.d.outputs...) }

// SetInput drives a top-level input port. The new value takes effect at the
// next Settle call.
func (en *Engine) SetInput(name string, v Value) error {
	idx, ok := en.d.inputIdx[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotInput, name)
	}
	en.writeNet(idx, 0, v.Resize(en.d.nets[idx].width))
	return nil
}

// SetInputUint drives an input port with a known integer value.
func (en *Engine) SetInputUint(name string, x uint64) error {
	idx, ok := en.d.topIdx[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	if x <= 1 {
		// Clock/reset toggles dominate this path; reuse the design's
		// premade constants (values are immutable, sharing is safe).
		if pair, has := en.d.in01[idx]; has {
			en.writeNet(idx, 0, pair[x])
			return nil
		}
	}
	return en.SetInput(name, NewKnown(en.d.nets[idx].width, x))
}

// Output reads any top-level net (usually an output port).
func (en *Engine) Output(name string) (Value, error) {
	idx, ok := en.d.topIdx[name]
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return en.vals[idx], nil
}

// Settle runs delta cycles until no activity remains, or fails with
// ErrNoConverge.
func (en *Engine) Settle() error {
	for iter := 0; ; iter++ {
		if iter > maxDeltas {
			return ErrNoConverge
		}
		if len(en.changed) > 0 {
			en.dispatchChanges()
			continue
		}
		if len(en.active) > 0 {
			if err := en.runActive(); err != nil {
				return err
			}
			continue
		}
		if len(en.nba) > 0 {
			en.applyNBA()
			continue
		}
		return nil
	}
}

// Tick performs one full clock cycle on the named clock input.
func (en *Engine) Tick(clock string) error {
	if err := en.SetInputUint(clock, 1); err != nil {
		return err
	}
	if err := en.Settle(); err != nil {
		return err
	}
	if err := en.SetInputUint(clock, 0); err != nil {
		return err
	}
	return en.Settle()
}

// --- Scheduler internals -----------------------------------------------------

func (en *Engine) enqueue(pid int32) {
	if en.queued[pid] {
		return
	}
	en.queued[pid] = true
	en.active = append(en.active, pid)
}

// writeNet stores v into net idx at storage offset lo and records the change
// for fanout dispatch, mirroring Simulator.writeNet. Nets with no fanout at
// all (e.g. pure output ports) skip the change record: dispatching them is a
// no-op by construction.
func (en *Engine) writeNet(idx int32, lo int, v Value) {
	old := en.vals[idx]
	var updated Value
	if lo == 0 && v.Width() == en.d.nets[idx].width {
		updated = v
	} else {
		updated = old.WriteBits(lo, v)
	}
	if old.Equal(updated) {
		return
	}
	en.vals[idx] = updated
	if len(en.d.levelFan[idx]) == 0 && len(en.d.edgeFan[idx]) == 0 {
		return
	}
	en.changed = append(en.changed, echange{net: idx, old: old, new: updated, byProc: en.current})
}

func (en *Engine) dispatchChanges() {
	batch := en.changed
	en.changed = en.changedSpare[:0]
	for _, ch := range batch {
		for _, pid := range en.d.levelFan[ch.net] {
			if pid == ch.byProc {
				continue // processes miss events raised during their own run
			}
			en.enqueue(pid)
		}
		for _, sub := range en.d.edgeFan[ch.net] {
			if sub.proc == ch.byProc {
				continue
			}
			if edgeFired(sub.edge, ch.old, ch.new) {
				en.enqueue(sub.proc)
			}
		}
	}
	en.changedSpare = batch[:0]
}

func (en *Engine) runActive() error {
	batch := en.active
	en.active = en.activeSpare[:0]
	for _, pid := range batch {
		en.queued[pid] = false
		if err := en.runProcess(pid); err != nil {
			en.activeSpare = batch[:0]
			return err
		}
	}
	en.activeSpare = batch[:0]
	return nil
}

func (en *Engine) applyNBA() {
	batch := en.nba
	en.nba = en.nbaSpare[:0]
	for _, w := range batch {
		en.writeNet(w.net, w.lo, w.val)
	}
	en.nbaSpare = batch[:0]
}

func (en *Engine) runProcess(pid int32) error {
	p := &en.d.procs[pid]
	if p.cont {
		// Continuous assignments observe their own changes (that is what
		// makes a zero-delay combinational loop oscillate, not freeze).
		return p.run(en)
	}
	prev := en.current
	en.current = pid
	err := p.run(en)
	en.current = prev
	return err
}

// assignLV distributes v across the lvalue's resolved targets MSB-first,
// mirroring Simulator.assign.
func (en *Engine) assignLV(lv *clval, v Value, blocking bool) error {
	targets, totalWidth, err := lv.resolve(en)
	if err != nil {
		return err
	}
	v = v.Resize(totalWidth)
	// Fast path: a single non-skipped full-width target takes v whole —
	// SliceBits(0, w) of a w-bit value is an identical copy.
	if len(targets) == 1 && !targets[0].skip && targets[0].width == totalWidth {
		t := targets[0]
		if blocking {
			en.writeNet(t.idx, t.lo, v)
		} else {
			en.nba = append(en.nba, enbaWrite{net: t.idx, lo: t.lo, val: v})
		}
		return nil
	}
	pos := totalWidth
	for _, t := range targets {
		pos -= t.width
		part := v.SliceBits(pos, t.width)
		if t.skip {
			continue
		}
		if blocking {
			en.writeNet(t.idx, t.lo, part)
		} else {
			en.nba = append(en.nba, enbaWrite{net: t.idx, lo: t.lo, val: part})
		}
	}
	return nil
}
