// Word-level four-state kernels for the register-file engine. Every kernel
// operates directly on (val, xz) uint64 plane slices inside an Engine frame:
// operands are read with guarded loads (bits beyond a slice read as known 0,
// which is exactly zero-extension), results are written in place into a
// destination slice, and no kernel allocates.
//
// Shared invariant: a slot holding a value produced at width w has every bit
// at or above w cleared in both planes, so a consumer that needs the value at
// any width w' >= w can simply read w' bits — the implicit Resize of the
// boxed backend costs nothing here. Each kernel re-establishes the invariant
// for its destination via kfinish.
//
// Kernels mirror the Value operations in logic.go construct by construct
// (including quirks like Shl treating a >64-bit known shift amount as X, and
// divmodBits masking the remainder at width w); the differential tests in
// random_expr_test.go and kernel_width_test.go hold the two implementations
// together.
package sim

import "math/bits"

// ldw is the guarded word load: reads past the slice are known 0.
func ldw(s []uint64, i int) uint64 {
	if i >= 0 && i < len(s) {
		return s[i]
	}
	return 0
}

// maskN returns a mask of the low n bits (n in [0,64]).
func maskN(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// kfinish clears every bit at or above width w in dst slices of nw words.
func kfinish(dv, dx []uint64, w, nw int) {
	last := (w - 1) / 64
	if w <= 0 {
		last = -1
	} else if rem := w % 64; rem != 0 {
		m := maskN(rem)
		dv[last] &= m
		dx[last] &= m
	}
	for i := last + 1; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
}

// kzero clears nw words of dst.
func kzero(dv, dx []uint64, nw int) {
	for i := 0; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
}

// ksetX fills dst with w X bits (NewX semantics).
func ksetX(dv, dx []uint64, w, nw int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		dv[i] = 0
		dx[i] = ^uint64(0)
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

// kanyNZ reports whether any word of s is nonzero.
func kanyNZ(s []uint64) bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// kfits64 reports whether the value in (sv, sx) is fully known and fits in
// one word, mirroring Value.Uint64.
func kfits64(sv, sx []uint64) (uint64, bool) {
	if kanyNZ(sx) {
		return 0, false
	}
	for i := 1; i < len(sv); i++ {
		if sv[i] != 0 {
			return 0, false
		}
	}
	return ldw(sv, 0), true
}

// kbool3 is Value.Bool3 on a slot: (truth, known).
func kbool3(sv, sx []uint64) (bool, bool) {
	anyOne, anyXZ := false, false
	n := len(sv)
	if len(sx) > n {
		n = len(sx)
	}
	for i := 0; i < n; i++ {
		if ldw(sv, i)&^ldw(sx, i) != 0 {
			anyOne = true
		}
		if ldw(sx, i) != 0 {
			anyXZ = true
		}
	}
	if anyOne {
		return true, true
	}
	if anyXZ {
		return false, false
	}
	return false, true
}

// kcmp compares two fully known slots as unsigned integers (-1, 0, +1),
// mirroring cmpKnown.
func kcmp(av, bv []uint64) int {
	n := len(av)
	if len(bv) > n {
		n = len(bv)
	}
	for i := n - 1; i >= 0; i-- {
		a, b := ldw(av, i), ldw(bv, i)
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// kcaseEqual reports exact four-state equality of two slots (both hold the
// zero-is-known-0 invariant, so comparing the longer word count suffices).
func kcaseEqual(av, ax, bv, bx []uint64) bool {
	n := len(av)
	if len(bv) > n {
		n = len(bv)
	}
	for i := 0; i < n; i++ {
		if ldw(av, i) != ldw(bv, i) || ldw(ax, i) != ldw(bx, i) {
			return false
		}
	}
	return true
}

// kcasezMatch is CasezMatch on slots: Z bits (and X bits when alsoX) of
// either side are wildcards. Bits above both produced widths are known 0 on
// both sides and never mismatch, so no explicit width bound is needed.
func kcasezMatch(sv, sx, lv, lx []uint64, alsoX bool) bool {
	n := len(sv)
	if len(lv) > n {
		n = len(lv)
	}
	for i := 0; i < n; i++ {
		svw, sxw := ldw(sv, i), ldw(sx, i)
		lvw, lxw := ldw(lv, i), ldw(lx, i)
		wild := (svw & sxw) | (lvw & lxw) // z bits
		if alsoX {
			wild |= (^svw & sxw) | (^lvw & lxw) // x bits
		}
		diff := (svw ^ lvw) | (sxw ^ lxw)
		if diff&^wild != 0 {
			return false
		}
	}
	return true
}

// kbit returns the 4-state code (0:'0' 1:'1' 2:'x' 3:'z') of bit i, with
// out-of-range bits reading as known 0 within [0,w).
func kbit(sv, sx []uint64, w, i int) uint8 {
	if i < 0 || i >= w {
		return 0
	}
	wi, b := i/64, uint(i)%64
	return uint8(ldw(sv, wi)>>b&1) | uint8(ldw(sx, wi)>>b&1)<<1
}

// kread64 assembles 64 bits of s starting at bit position pos (guarded).
func kread64(s []uint64, pos int) uint64 {
	wi, b := pos/64, uint(pos)%64
	if b == 0 {
		return ldw(s, wi)
	}
	return ldw(s, wi)>>b | ldw(s, wi+1)<<(64-b)
}

// kblit copies n bits from (sv, sx) starting at bit spos into (dv, dx)
// starting at bit dpos. Source reads are guarded (zero-extension); the
// destination must be large enough.
func kblit(dv, dx []uint64, dpos int, sv, sx []uint64, spos, n int) {
	for n > 0 {
		wi, b := dpos/64, dpos%64
		take := 64 - b
		if take > n {
			take = n
		}
		m := maskN(take) << uint(b)
		dv[wi] = dv[wi]&^m | kread64(sv, spos)<<uint(b)&m
		dx[wi] = dx[wi]&^m | kread64(sx, spos)<<uint(b)&m
		dpos += take
		spos += take
		n -= take
	}
}

// kcopy copies a value produced at width w from src slices into dst of nw
// words, zeroing above (used by ternary/unary-plus passthrough).
func kcopy(dv, dx, sv, sx []uint64, w, nw int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		dv[i] = ldw(sv, i)
		dx[i] = ldw(sx, i)
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

// --- Bitwise ----------------------------------------------------------------

func kand(dv, dx, av, ax, bv, bx []uint64, w, nw int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		avw, axw := ldw(av, i), ldw(ax, i)
		bvw, bxw := ldw(bv, i), ldw(bx, i)
		a0 := ^avw & ^axw
		a1 := avw & ^axw
		b0 := ^bvw & ^bxw
		b1 := bvw & ^bxw
		one := a1 & b1
		zero := a0 | b0
		dv[i] = one
		dx[i] = ^(one | zero)
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

func kor(dv, dx, av, ax, bv, bx []uint64, w, nw int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		avw, axw := ldw(av, i), ldw(ax, i)
		bvw, bxw := ldw(bv, i), ldw(bx, i)
		a0 := ^avw & ^axw
		a1 := avw & ^axw
		b0 := ^bvw & ^bxw
		b1 := bvw & ^bxw
		one := a1 | b1
		zero := a0 & b0
		dv[i] = one
		dx[i] = ^(one | zero)
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

// kxor computes XOR; when invert is set it computes XNOR (Not(Xor)) in one
// pass, matching Xnor = Not(Xor) bit for bit.
func kxor(dv, dx, av, ax, bv, bx []uint64, w, nw int, invert bool) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		unk := ldw(ax, i) | ldw(bx, i)
		v := (ldw(av, i) ^ ldw(bv, i)) &^ unk
		if invert {
			v = ^v &^ unk
		}
		dv[i] = v
		dx[i] = unk
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

func knot(dv, dx, av, ax []uint64, w, nw int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		axw := ldw(ax, i)
		dv[i] = ^ldw(av, i) &^ axw
		dx[i] = axw
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

// --- Arithmetic --------------------------------------------------------------

// kadd computes a+b (or a-b when sub is set) at width w; all-X when any
// operand bit is X/Z, mirroring Add/Sub.
func kadd(dv, dx, av, ax, bv, bx []uint64, w, nw int, sub bool) {
	if kanyNZ(ax) || kanyNZ(bx) {
		ksetX(dv, dx, w, nw)
		return
	}
	wn := words(w)
	var carry uint64
	if sub {
		for i := 0; i < wn; i++ {
			dv[i], carry = bits.Sub64(ldw(av, i), ldw(bv, i), carry)
		}
	} else {
		for i := 0; i < wn; i++ {
			dv[i], carry = bits.Add64(ldw(av, i), ldw(bv, i), carry)
		}
	}
	for i := 0; i < nw; i++ {
		if i >= wn {
			dv[i] = 0
		}
		dx[i] = 0
	}
	kfinish(dv, dx, w, nw)
}

// kneg computes two's-complement negation (Neg = Sub(0, a)).
func kneg(dv, dx, av, ax []uint64, w, nw int) {
	var zero [1]uint64
	kadd(dv, dx, zero[:0], zero[:0], av, ax, w, nw, true)
}

// kmul computes a*b truncated at width w; all-X on X/Z input.
func kmul(dv, dx, av, ax, bv, bx []uint64, w, nw int) {
	if kanyNZ(ax) || kanyNZ(bx) {
		ksetX(dv, dx, w, nw)
		return
	}
	wn := words(w)
	for i := 0; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	for i := 0; i < len(av) && i < wn; i++ {
		if av[i] == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < wn && j < len(bv); j++ {
			hi, lo := bits.Mul64(av[i], bv[j])
			var c1, c2 uint64
			lo, c1 = bits.Add64(lo, dv[i+j], 0)
			lo, c2 = bits.Add64(lo, carry, 0)
			dv[i+j] = lo
			carry = hi + c1 + c2
		}
		for k := i + len(bv); carry != 0 && k < wn; k++ {
			dv[k], carry = bits.Add64(dv[k], carry, 0)
		}
	}
	kfinish(dv, dx, w, nw)
}

// kshl1 shifts the low words(w) words of d left by one bit, masking at w
// (mirroring the Shl-by-1 inside divmodBits).
func kshl1(d []uint64, w int) {
	wn := words(w)
	var carry uint64
	for i := 0; i < wn; i++ {
		nc := d[i] >> 63
		d[i] = d[i]<<1 | carry
		carry = nc
	}
	if rem := w % 64; rem != 0 {
		d[wn-1] &= maskN(rem)
	}
}

// ksub64in subtracts b (guarded) from d in place over wn words.
func ksub64in(d, b []uint64, wn int) {
	var borrow uint64
	for i := 0; i < wn; i++ {
		d[i], borrow = bits.Sub64(d[i], ldw(b, i), borrow)
	}
}

// kdivmod computes a/b and a%b at width w via bit-serial restoring division,
// writing the quotient into (qv) and remainder into (rv); it mirrors
// divmodBits exactly, including the remainder being shifted under a width-w
// mask. Operands must be fully known and b nonzero; the caller handles the
// X and divide-by-zero cases. qv and rv must each have words(w) words and
// are used as working storage.
func kdivmod(qv, rv, av, bv []uint64, w int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		qv[i], rv[i] = 0, 0
	}
	// Single-word fast path, mirroring Div/Mod's Uint64 shortcut.
	if a0, ok := kfits64(av, nil); ok {
		if b0, ok2 := kfits64(bv, nil); ok2 {
			qv[0] = a0 / b0
			rv[0] = a0 % b0
			if rem := w % 64; rem != 0 && wn == 1 {
				qv[0] &= maskN(rem)
				rv[0] &= maskN(rem)
			}
			return
		}
	}
	for i := w - 1; i >= 0; i-- {
		kshl1(rv, w)
		if ldw(av, i/64)>>(uint(i)%64)&1 != 0 {
			rv[0] |= 1
		}
		if kcmp(rv, bv) >= 0 {
			ksub64in(rv, bv, wn)
			qv[i/64] |= 1 << (uint(i) % 64)
		}
	}
}

// --- Shifts ------------------------------------------------------------------

// kshiftConst shifts a (produced at width w after context extension) by a
// known amount within [0, w), writing the result at width w. arith selects
// sign-filled right shifts; right selects direction.
func kshift(dv, dx, av, ax []uint64, w, nw, amt int, right, arith bool) {
	wn := words(w)
	var fillV, fillX uint64
	if right && arith {
		switch kbit(av, ax, w, w-1) {
		case 1:
			fillV, fillX = ^uint64(0), 0
		case 2:
			fillV, fillX = 0, ^uint64(0)
		case 3:
			fillV, fillX = ^uint64(0), ^uint64(0)
		}
	}
	ws, bs := amt/64, uint(amt)%64
	if right {
		for i := 0; i < wn; i++ {
			var v, x uint64
			if bs == 0 {
				v, x = ldwFill(av, i+ws, wn, w, fillV), ldwFill(ax, i+ws, wn, w, fillX)
			} else {
				v = ldwFill(av, i+ws, wn, w, fillV)>>bs | ldwFill(av, i+ws+1, wn, w, fillV)<<(64-bs)
				x = ldwFill(ax, i+ws, wn, w, fillX)>>bs | ldwFill(ax, i+ws+1, wn, w, fillX)<<(64-bs)
			}
			dv[i], dx[i] = v, x
		}
	} else {
		for i := wn - 1; i >= 0; i-- {
			var v, x uint64
			if bs == 0 {
				v, x = ldw(av, i-ws), ldw(ax, i-ws)
			} else {
				v = ldw(av, i-ws)<<bs | ldw(av, i-ws-1)>>(64-bs)
				x = ldw(ax, i-ws)<<bs | ldw(ax, i-ws-1)>>(64-bs)
			}
			dv[i], dx[i] = v, x
		}
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}

// ldwFill loads word i of a width-w value whose bits at and above w are the
// fill pattern (used by arithmetic right shifts). The value's own slice
// covers words < wn; beyond that (and for the defined-but-masked top bits of
// the last word) the fill applies.
func ldwFill(s []uint64, i, wn, w int, fill uint64) uint64 {
	if i < 0 {
		return 0
	}
	if i < wn-1 {
		return ldw(s, i)
	}
	if i == wn-1 {
		v := ldw(s, i)
		if rem := w % 64; rem != 0 {
			v |= fill &^ maskN(rem)
		}
		return v
	}
	return fill
}

// --- Reductions --------------------------------------------------------------

// kredAnd mirrors RedAnd over w bits of the operand.
func kredAnd(sv, sx []uint64, w int) (any0, anyXZ bool) {
	if w <= 0 {
		return false, false
	}
	wn := words(w)
	for i := 0; i < wn; i++ {
		m := ^uint64(0)
		if i == wn-1 {
			if rem := w % 64; rem != 0 {
				m = maskN(rem)
			}
		}
		if ^ldw(sv, i)&^ldw(sx, i)&m != 0 {
			any0 = true
		}
		if ldw(sx, i)&m != 0 {
			anyXZ = true
		}
	}
	return any0, anyXZ
}

// kredOr mirrors RedOr; the slot invariant makes masking unnecessary.
func kredOr(sv, sx []uint64) (any1, anyXZ bool) {
	n := len(sv)
	if len(sx) > n {
		n = len(sx)
	}
	for i := 0; i < n; i++ {
		if ldw(sv, i)&^ldw(sx, i) != 0 {
			any1 = true
		}
		if ldw(sx, i) != 0 {
			anyXZ = true
		}
	}
	return any1, anyXZ
}

// kredXor mirrors RedXor: (parity, anyXZ).
func kredXor(sv, sx []uint64) (parity uint64, anyXZ bool) {
	for i := 0; i < len(sx); i++ {
		if sx[i] != 0 {
			return 0, true
		}
	}
	for i := 0; i < len(sv); i++ {
		parity ^= uint64(bits.OnesCount64(sv[i]) & 1)
	}
	return parity, false
}

// kset1 writes a 1-bit result code (0:'0' 1:'1' 2:'x') into dst.
func kset1(dv, dx []uint64, nw int, code uint8) {
	dv[0] = uint64(code & 1)
	dx[0] = uint64(code >> 1)
	for i := 1; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
}

// kslice extracts width bits of src (produced at srcW) starting at bit lo
// into dst, with out-of-range source bits reading X (SliceBits semantics).
func kslice(dv, dx []uint64, w, nw int, sv, sx []uint64, srcW, lo int) {
	ksetX(dv, dx, w, nw)
	// Overlap of [lo, lo+w) with [0, srcW), translated to dst positions.
	from := lo
	if from < 0 {
		from = 0
	}
	to := lo + w
	if to > srcW {
		to = srcW
	}
	if to <= from {
		return
	}
	kblit(dv, dx, from-lo, sv, sx, from, to-from)
}

// kmergeTernary merges two branch values under an unknown condition at width
// w: agreeing known bits survive, everything else becomes X (mergeTernary).
func kmergeTernary(dv, dx, av, ax, bv, bx []uint64, w, nw int) {
	wn := words(w)
	for i := 0; i < wn; i++ {
		avw, bvw := ldw(av, i), ldw(bv, i)
		agree := ^(ldw(ax, i) | ldw(bx, i)) &^ (avw ^ bvw)
		dv[i] = avw & agree
		dx[i] = ^agree
	}
	for i := wn; i < nw; i++ {
		dv[i], dx[i] = 0, 0
	}
	kfinish(dv, dx, w, nw)
}
