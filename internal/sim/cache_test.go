package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheInFlightEntryPinnedDuringEviction regression-tests LRU eviction
// against unresolved entries. With a capacity-1 cache and one compilation
// blocked mid-flight, inserting other keys runs the eviction loop; evicting
// the in-flight entry would hand every later caller of that key a fresh
// entry and a fresh compilation, breaking the single-flight guarantee
// exactly under a cold-key burst. The in-flight entry must stay pinned
// (resident and joinable) until its compile resolves.
func TestCacheInFlightEntryPinnedDuringEviction(t *testing.T) {
	c := NewCompileCache(1)
	keyA := cacheKey{hash: "in-flight", top: "t"}
	var aCompiles, aRecompiles atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.get(keyA, func() (*Design, error) {
			aCompiles.Add(1)
			close(started)
			<-release
			return &Design{}, nil
		})
	}()
	<-started

	// Churn through other keys while A is still compiling; every insert runs
	// the eviction loop against the over-cap cache.
	for i := 0; i < 8; i++ {
		key := cacheKey{hash: fmt.Sprintf("filler-%d", i), top: "t"}
		if _, err := c.get(key, func() (*Design, error) { return &Design{}, nil }); err != nil {
			t.Fatal(err)
		}
	}

	// A second caller for the in-flight key must join the existing entry; if
	// churn evicted it, this compile func would run instead.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.get(keyA, func() (*Design, error) {
			aRecompiles.Add(1)
			return &Design{}, nil
		})
	}()
	close(release)
	wg.Wait()

	if got := aCompiles.Load(); got != 1 {
		t.Errorf("in-flight key compiled %d times, want 1", got)
	}
	if got := aRecompiles.Load(); got != 0 {
		t.Errorf("second caller recompiled the in-flight key %d times, want 0", got)
	}
}

// TestCacheColdKeyBurstSingleFlight releases a burst of goroutines onto one
// cold key at once: exactly one compilation must run (run under -race, this
// also exercises the entry hand-off).
func TestCacheColdKeyBurstSingleFlight(t *testing.T) {
	c := NewCompileCache(4)
	var calls atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			d, err := c.get(cacheKey{hash: "burst", top: "t"}, func() (*Design, error) {
				calls.Add(1)
				return &Design{}, nil
			})
			if err != nil || d == nil {
				t.Errorf("burst get: d=%v err=%v", d, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("cold key compiled %d times under a concurrent burst, want 1", got)
	}
}
