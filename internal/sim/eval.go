package sim

import (
	"fmt"

	"repro/internal/verilog/ast"
)

// --- Public stimulus API -------------------------------------------------------

// Inputs returns the top module's input ports in declaration order.
func (s *Simulator) Inputs() []PortInfo { return append([]PortInfo(nil), s.inputs...) }

// Outputs returns the top module's output ports in declaration order.
func (s *Simulator) Outputs() []PortInfo { return append([]PortInfo(nil), s.outputs...) }

// SetInput drives a top-level input port. The new value takes effect at the
// next Settle call (changes are queued immediately).
func (s *Simulator) SetInput(name string, v Value) error {
	for _, in := range s.inputs {
		if in.Name == name {
			n, ok := s.topScope.lookupNet(name)
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnknownNet, name)
			}
			s.writeNet(n, 0, v.Resize(n.width))
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrNotInput, name)
}

// SetInputUint drives an input port with a known integer value.
func (s *Simulator) SetInputUint(name string, x uint64) error {
	n, ok := s.topScope.lookupNet(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return s.SetInput(name, NewKnown(n.width, x))
}

// Output reads any top-level net (usually an output port).
func (s *Simulator) Output(name string) (Value, error) {
	n, ok := s.topScope.lookupNet(name)
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return n.value, nil
}

// InputHandle resolves an input port name to an instance-stable handle (the
// net's elaboration index). Elaboration is deterministic, so the handle is
// valid on every Simulator instance of the same source: a testbench schedule
// bound on one per-case instance drives all of them. Error semantics mirror
// SetInput (ErrNotInput for names that are not input ports).
func (s *Simulator) InputHandle(name string) (int, error) {
	for _, in := range s.inputs {
		if in.Name == name {
			n, ok := s.topScope.lookupNet(name)
			if !ok {
				return -1, fmt.Errorf("%w: %q", ErrUnknownNet, name)
			}
			return n.idx, nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrNotInput, name)
}

// OutputHandle resolves a top-level net name to an instance-stable handle,
// with Output's error semantics.
func (s *Simulator) OutputHandle(name string) (int, error) {
	n, ok := s.topScope.lookupNet(name)
	if !ok {
		return -1, fmt.Errorf("%w: %q", ErrUnknownNet, name)
	}
	return n.idx, nil
}

// SetInputH drives an input port through its handle (SetInput without the
// port scan and scope lookup).
func (s *Simulator) SetInputH(h int, v Value) {
	n := s.nets[h]
	s.writeNet(n, 0, v.Resize(n.width))
}

// SetInputUintH drives an input port with a known integer value through its
// handle.
func (s *Simulator) SetInputUintH(h int, x uint64) {
	n := s.nets[h]
	s.writeNet(n, 0, NewKnown(n.width, x))
}

// TickH performs one full clock cycle through the clock's handle.
func (s *Simulator) TickH(h int) error {
	s.SetInputUintH(h, 1)
	if err := s.Settle(); err != nil {
		return err
	}
	s.SetInputUintH(h, 0)
	return s.Settle()
}

// HashOutputH folds the net's printed rendering at the given width into a
// running FNV-1a hash: byte-identical to hashing AppendOutputH's output.
// The interpreter is the differential referee, not a hot path, so it renders
// through the boxed Value.
func (s *Simulator) HashOutputH(hash uint64, h int, width int) uint64 {
	rendered := s.nets[h].value.Resize(width).String()
	for i := 0; i < len(rendered); i++ {
		hash = (hash ^ uint64(rendered[i])) * FNVPrime64
	}
	return hash
}

// AppendOutputH appends the net's binary rendering at the given width,
// identical to Output(name).Resize(width).String().
func (s *Simulator) AppendOutputH(dst []byte, h int, width int) []byte {
	return append(dst, s.nets[h].value.Resize(width).String()...)
}

// Settle runs delta cycles until no activity remains, or fails with
// ErrNoConverge.
func (s *Simulator) Settle() error {
	for iter := 0; ; iter++ {
		if iter > maxDeltas {
			return ErrNoConverge
		}
		if len(s.changed) > 0 {
			s.dispatchChanges()
			continue
		}
		if len(s.active) > 0 {
			if err := s.runActive(); err != nil {
				return err
			}
			continue
		}
		if len(s.nba) > 0 {
			s.applyNBA()
			continue
		}
		return nil
	}
}

// Tick performs one full clock cycle on the named clock input:
// posedge (0→1), settle, negedge (1→0), settle.
func (s *Simulator) Tick(clock string) error {
	if err := s.SetInputUint(clock, 1); err != nil {
		return err
	}
	if err := s.Settle(); err != nil {
		return err
	}
	if err := s.SetInputUint(clock, 0); err != nil {
		return err
	}
	return s.Settle()
}

// --- Scheduler internals ----------------------------------------------------------

func (s *Simulator) enqueue(p *process) {
	if p == nil || p.queued {
		return
	}
	p.queued = true
	s.active = append(s.active, p)
}

// writeNet stores width bits of v into n starting at storage offset lo and
// records the change for fanout dispatch.
func (s *Simulator) writeNet(n *net, lo int, v Value) {
	old := n.value
	var updated Value
	if lo == 0 && v.Width() == n.width {
		updated = v
	} else {
		updated = old.WriteBits(lo, v)
	}
	if old.Equal(updated) {
		return
	}
	n.value = updated
	s.changed = append(s.changed, netChange{n: n, old: old, new: updated, byProc: s.currentProc})
}

func (s *Simulator) dispatchChanges() {
	batch := s.changed
	s.changed = nil
	for _, ch := range batch {
		for _, p := range ch.n.levelFanout {
			if p == ch.byProc {
				continue // processes miss events raised during their own run
			}
			s.enqueue(p)
		}
		for _, sub := range ch.n.edgeFanout {
			if sub.proc == ch.byProc {
				continue
			}
			if edgeFired(sub.edge, ch.old, ch.new) {
				s.enqueue(sub.proc)
			}
		}
	}
}

// edgeFired implements LRM edge semantics on the LSB: posedge fires on
// transitions toward 1 (0→1, 0→x/z, x/z→1), negedge mirrors toward 0.
func edgeFired(edge ast.EdgeKind, old, new Value) bool {
	ob, nb := old.Bit(0), new.Bit(0)
	if ob == nb {
		return false
	}
	switch edge {
	case ast.EdgePos:
		return (ob == '0' && nb != '0') || (ob != '1' && nb == '1')
	case ast.EdgeNeg:
		return (ob == '1' && nb != '1') || (ob != '0' && nb == '0')
	default:
		return false
	}
}

func (s *Simulator) runActive() error {
	batch := s.active
	s.active = nil
	for _, p := range batch {
		p.queued = false
		if err := s.runProcess(p); err != nil {
			return err
		}
	}
	return nil
}

func (s *Simulator) applyNBA() {
	batch := s.nba
	s.nba = nil
	for _, w := range batch {
		s.writeNet(w.target, w.lo, w.val)
	}
}

func (s *Simulator) runProcess(p *process) error {
	// Only behavioral processes miss events raised during their own run
	// (they re-arm at the event control after the body completes).
	// Continuous assignments re-evaluate on any change of their inputs,
	// including self-feedback — that is what makes a zero-delay
	// combinational loop oscillate instead of silently freezing.
	prev := s.currentProc
	if !p.cont {
		s.currentProc = p
	}
	defer func() { s.currentProc = prev }()
	if p.cont {
		rsc := p.rhsScope
		if rsc == nil {
			rsc = p.scope
		}
		w, err := s.lvalueWidth(p.lhs, p.scope)
		if err != nil {
			return err
		}
		v, err := s.evalCtx(p.rhs, rsc, w)
		if err != nil {
			return err
		}
		return s.assign(p.lhs, v, p.scope, true)
	}
	return s.execStmt(p.body, p.scope)
}

// lvalueWidth computes the total width of an lvalue without evaluating
// dynamic indices (dynamic selects contribute their fixed width).
func (s *Simulator) lvalueWidth(lhs ast.Expr, sc *scope) (int, error) {
	switch x := lhs.(type) {
	case *ast.Ident:
		n, ok := sc.lookupNet(x.Name)
		if !ok {
			return 0, fmt.Errorf("%w: assignment to unknown net %q", ErrRuntime, x.Name)
		}
		return n.width, nil
	case *ast.Index:
		return 1, nil
	case *ast.PartSel:
		av, errA := s.eval(x.A, sc)
		bv, errB := s.eval(x.B, sc)
		if errA != nil || errB != nil {
			return 1, nil
		}
		return partSelLvalueWidthVals(x.Kind, av, bv), nil
	case *ast.Concat:
		total := 0
		for _, p := range x.Parts {
			w, err := s.lvalueWidth(p, sc)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	default:
		return 0, fmt.Errorf("%w: expression is not a valid lvalue", ErrRuntime)
	}
}

// --- Statement execution -----------------------------------------------------------

func (s *Simulator) execStmt(st ast.Stmt, sc *scope) error {
	switch x := st.(type) {
	case *ast.Block:
		for _, sub := range x.Stmts {
			if err := s.execStmt(sub, sc); err != nil {
				return err
			}
		}
		return nil
	case *ast.AssignStmt:
		w, err := s.lvalueWidth(x.LHS, sc)
		if err != nil {
			return err
		}
		v, err := s.evalCtx(x.RHS, sc, w)
		if err != nil {
			return err
		}
		return s.assign(x.LHS, v, sc, x.Blocking)
	case *ast.If:
		cond, err := s.eval(x.Cond, sc)
		if err != nil {
			return err
		}
		truth, known := cond.Bool3()
		switch {
		case known && truth:
			return s.execStmt(x.Then, sc)
		case known && !truth:
			if x.Else != nil {
				return s.execStmt(x.Else, sc)
			}
			return nil
		default:
			// Unknown condition: per common simulator behavior, take the
			// else branch (Icarus treats X as false).
			if x.Else != nil {
				return s.execStmt(x.Else, sc)
			}
			return nil
		}
	case *ast.Case:
		return s.execCase(x, sc)
	case *ast.For:
		return s.execFor(x, sc)
	default:
		return fmt.Errorf("%w: unsupported statement %T", ErrRuntime, st)
	}
}

func (s *Simulator) execCase(c *ast.Case, sc *scope) error {
	subj, err := s.eval(c.Subject, sc)
	if err != nil {
		return err
	}
	var deflt *ast.CaseItem
	for _, item := range c.Items {
		if item.Labels == nil {
			deflt = item
			continue
		}
		for _, lbl := range item.Labels {
			lv, err := s.eval(lbl, sc)
			if err != nil {
				return err
			}
			match := false
			switch c.Kind {
			case ast.CaseZ:
				match = CasezMatch(subj, lv, false)
			case ast.CaseX:
				match = CasezMatch(subj, lv, true)
			default:
				w := maxInt(subj.Width(), lv.Width())
				match = subj.Resize(w).Equal(lv.Resize(w))
			}
			if match {
				return s.execStmt(item.Body, sc)
			}
		}
	}
	if deflt != nil {
		return s.execStmt(deflt.Body, sc)
	}
	return nil
}

func (s *Simulator) execFor(f *ast.For, sc *scope) error {
	if f.Init != nil {
		v, err := s.eval(f.Init.RHS, sc)
		if err != nil {
			return err
		}
		if err := s.assign(f.Init.LHS, v, sc, true); err != nil {
			return err
		}
	}
	for iter := 0; ; iter++ {
		if iter >= maxLoopIters {
			return fmt.Errorf("%w: for loop exceeded %d iterations", ErrRuntime, maxLoopIters)
		}
		cond, err := s.eval(f.Cond, sc)
		if err != nil {
			return err
		}
		truth, known := cond.Bool3()
		if !known || !truth {
			return nil
		}
		if err := s.execStmt(f.Body, sc); err != nil {
			return err
		}
		if f.Step != nil {
			v, err := s.eval(f.Step.RHS, sc)
			if err != nil {
				return err
			}
			if err := s.assign(f.Step.LHS, v, sc, true); err != nil {
				return err
			}
		}
	}
}

// assign writes v to the lvalue. Blocking writes update immediately;
// non-blocking writes are queued for the NBA region.
func (s *Simulator) assign(lhs ast.Expr, v Value, sc *scope, blocking bool) error {
	targets, totalWidth, err := s.resolveLValue(lhs, sc)
	if err != nil {
		return err
	}
	v = v.Resize(totalWidth)
	// Distribute bits MSB-first across targets (concat order).
	pos := totalWidth
	for _, t := range targets {
		pos -= t.width
		part := v.SliceBits(pos, t.width)
		if t.skip {
			continue
		}
		if blocking {
			s.writeNet(t.n, t.lo, part)
		} else {
			s.nba = append(s.nba, nbaWrite{target: t.n, lo: t.lo, val: part})
		}
	}
	return nil
}

// lvTarget is one resolved slice of an lvalue.
type lvTarget struct {
	n     *net
	lo    int // storage bit offset
	width int
	skip  bool // write dropped (e.g. X index)
}

// resolveLValue flattens an lvalue into net slices, MSB-first.
func (s *Simulator) resolveLValue(lhs ast.Expr, sc *scope) ([]lvTarget, int, error) {
	switch x := lhs.(type) {
	case *ast.Ident:
		n, ok := sc.lookupNet(x.Name)
		if !ok {
			return nil, 0, fmt.Errorf("%w: assignment to unknown net %q", ErrRuntime, x.Name)
		}
		return []lvTarget{{n: n, lo: 0, width: n.width}}, n.width, nil
	case *ast.Index:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, 0, fmt.Errorf("%w: nested lvalue selects are not supported", ErrRuntime)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, 0, fmt.Errorf("%w: assignment to unknown net %q", ErrRuntime, base.Name)
		}
		idx, err := s.eval(x.Idx, sc)
		if err != nil {
			return nil, 0, err
		}
		iv, known := idx.Uint64()
		if !known {
			return []lvTarget{{skip: true, width: 1}}, 1, nil
		}
		lo := int(iv) - n.lsb
		if lo < 0 || lo >= n.width {
			return []lvTarget{{skip: true, width: 1}}, 1, nil
		}
		return []lvTarget{{n: n, lo: lo, width: 1}}, 1, nil
	case *ast.PartSel:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, 0, fmt.Errorf("%w: nested lvalue selects are not supported", ErrRuntime)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, 0, fmt.Errorf("%w: assignment to unknown net %q", ErrRuntime, base.Name)
		}
		lo, w, known, err := s.partSelBounds(x, n, sc)
		if err != nil {
			return nil, 0, err
		}
		if !known {
			return []lvTarget{{skip: true, width: w}}, w, nil
		}
		return []lvTarget{{n: n, lo: lo, width: w}}, w, nil
	case *ast.Concat:
		var all []lvTarget
		total := 0
		for _, part := range x.Parts {
			ts, w, err := s.resolveLValue(part, sc)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, ts...)
			total += w
		}
		return all, total, nil
	default:
		return nil, 0, fmt.Errorf("%w: expression is not a valid lvalue", ErrRuntime)
	}
}

// partSelBounds computes (storage lo, width, indexKnown) for a part-select.
func (s *Simulator) partSelBounds(x *ast.PartSel, n *net, sc *scope) (int, int, bool, error) {
	av, err := s.eval(x.A, sc)
	if err != nil {
		return 0, 0, false, err
	}
	bv, err := s.eval(x.B, sc)
	if err != nil {
		return 0, 0, false, err
	}
	return partSelBoundsVals(x.Kind, av, bv, n.lsb)
}

// partSelLvalueWidthVals is the pure lvalue-width estimate for a part-select
// (errors and unknown bounds degrade to width 1), shared by both backends.
func partSelLvalueWidthVals(kind ast.SelKind, av, bv Value) int {
	switch kind {
	case ast.SelConst:
		a, ok1 := av.Uint64()
		b, ok2 := bv.Uint64()
		if ok1 && ok2 && a >= b {
			return int(a-b) + 1
		}
		return 1
	default:
		w, ok := bv.Uint64()
		if ok && w > 0 {
			return int(w)
		}
		return 1
	}
}

// partSelBoundsVals is the pure part-select bounds computation shared by the
// interpreter and the compiled backend, so both resolve selects identically.
func partSelBoundsVals(kind ast.SelKind, av, bv Value, lsb int) (int, int, bool, error) {
	switch kind {
	case ast.SelConst:
		a, ok1 := av.Uint64()
		b, ok2 := bv.Uint64()
		if !ok1 || !ok2 {
			return 0, 1, false, nil
		}
		if b > a {
			return 0, 0, false, fmt.Errorf("%w: reversed part-select [%d:%d]", ErrRuntime, a, b)
		}
		w := int(a-b) + 1
		return int(b) - lsb, w, true, nil
	case ast.SelPlus:
		wv, okw := bv.Uint64()
		if !okw || wv == 0 {
			return 0, 0, false, fmt.Errorf("%w: indexed part-select width must be a positive constant", ErrRuntime)
		}
		base, okb := av.Uint64()
		if !okb {
			return 0, int(wv), false, nil
		}
		return int(base) - lsb, int(wv), true, nil
	case ast.SelMinus:
		wv, okw := bv.Uint64()
		if !okw || wv == 0 {
			return 0, 0, false, fmt.Errorf("%w: indexed part-select width must be a positive constant", ErrRuntime)
		}
		base, okb := av.Uint64()
		if !okb {
			return 0, int(wv), false, nil
		}
		return int(base) - int(wv) + 1 - lsb, int(wv), true, nil
	default:
		return 0, 0, false, fmt.Errorf("%w: unknown part-select kind", ErrRuntime)
	}
}

// --- Expression evaluation ------------------------------------------------------------

// eval evaluates e self-determined (no assignment context width).
func (s *Simulator) eval(e ast.Expr, sc *scope) (Value, error) {
	return s.evalCtx(e, sc, 0)
}

// evalCtx evaluates e under a context width: per Verilog sizing rules,
// arithmetic and bitwise operands are extended to the maximum of their own
// widths and the assignment context, while comparisons, concatenations,
// selects and shift amounts are self-determined.
func (s *Simulator) evalCtx(e ast.Expr, sc *scope, ctx int) (Value, error) {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := sc.params[x.Name]; ok {
			return v, nil
		}
		if n, ok := sc.lookupNet(x.Name); ok {
			return n.value, nil
		}
		return Value{}, fmt.Errorf("%w: unknown identifier %q", ErrRuntime, x.Name)
	case *ast.Number:
		return numberValue(x), nil
	case *ast.Unary:
		switch x.Op {
		case ast.UnaryPlus, ast.UnaryMinus, ast.BitNot:
			v, err := s.evalCtx(x.X, sc, ctx)
			if err != nil {
				return Value{}, err
			}
			if ctx > v.Width() {
				v = v.Resize(ctx)
			}
			return evalUnary(x.Op, v), nil
		default:
			// Logical not and reductions are self-determined, 1-bit results.
			v, err := s.eval(x.X, sc)
			if err != nil {
				return Value{}, err
			}
			return evalUnary(x.Op, v), nil
		}
	case *ast.Binary:
		return s.evalBinaryCtx(x, sc, ctx)
	case *ast.Ternary:
		cond, err := s.eval(x.Cond, sc)
		if err != nil {
			return Value{}, err
		}
		truth, known := cond.Bool3()
		if known {
			if truth {
				return s.evalCtx(x.Then, sc, ctx)
			}
			return s.evalCtx(x.Else, sc, ctx)
		}
		tv, err := s.evalCtx(x.Then, sc, ctx)
		if err != nil {
			return Value{}, err
		}
		ev, err := s.evalCtx(x.Else, sc, ctx)
		if err != nil {
			return Value{}, err
		}
		return mergeTernary(tv, ev), nil
	case *ast.Concat:
		parts := make([]Value, len(x.Parts))
		for i, pe := range x.Parts {
			v, err := s.eval(pe, sc)
			if err != nil {
				return Value{}, err
			}
			parts[i] = v
		}
		return ConcatVals(parts), nil
	case *ast.Repl:
		cnt, err := s.eval(x.Count, sc)
		if err != nil {
			return Value{}, err
		}
		c, ok := cnt.Uint64()
		if !ok || c > 1<<16 {
			return Value{}, fmt.Errorf("%w: replication count must be a small constant", ErrRuntime)
		}
		v, err := s.eval(x.Value, sc)
		if err != nil {
			return Value{}, err
		}
		return ReplVal(int(c), v), nil
	case *ast.Index:
		return s.evalIndex(x, sc)
	case *ast.PartSel:
		return s.evalPartSel(x, sc)
	default:
		return Value{}, fmt.Errorf("%w: unsupported expression %T", ErrRuntime, e)
	}
}

func (s *Simulator) evalBinaryCtx(x *ast.Binary, sc *scope, ctx int) (Value, error) {
	switch x.Op {
	case ast.Add, ast.Sub, ast.Mul, ast.Div, ast.Mod,
		ast.BitAnd, ast.BitOr, ast.BitXor, ast.BitXnor:
		a, err := s.evalCtx(x.X, sc, ctx)
		if err != nil {
			return Value{}, err
		}
		b, err := s.evalCtx(x.Y, sc, ctx)
		if err != nil {
			return Value{}, err
		}
		w := maxInt(maxInt(a.Width(), b.Width()), ctx)
		return evalBinary(x.Op, a.Resize(w), b.Resize(w)), nil
	case ast.Shl, ast.Shr, ast.AShl, ast.AShr:
		a, err := s.evalCtx(x.X, sc, ctx)
		if err != nil {
			return Value{}, err
		}
		if ctx > a.Width() {
			a = a.Resize(ctx)
		}
		b, err := s.eval(x.Y, sc) // shift amount is self-determined
		if err != nil {
			return Value{}, err
		}
		return evalBinary(x.Op, a, b), nil
	case ast.LogAnd, ast.LogOr:
		a, err := s.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		truth, known := a.Bool3()
		if known {
			if x.Op == ast.LogAnd && !truth {
				return NewKnown(1, 0), nil
			}
			if x.Op == ast.LogOr && truth {
				return NewKnown(1, 1), nil
			}
		}
		b, err := s.eval(x.Y, sc)
		if err != nil {
			return Value{}, err
		}
		return evalBinary(x.Op, a, b), nil
	default:
		// Comparisons: operands sized to each other, result is 1 bit.
		a, err := s.eval(x.X, sc)
		if err != nil {
			return Value{}, err
		}
		b, err := s.eval(x.Y, sc)
		if err != nil {
			return Value{}, err
		}
		return evalBinary(x.Op, a, b), nil
	}
}

func (s *Simulator) evalIndex(x *ast.Index, sc *scope) (Value, error) {
	base, err := s.eval(x.X, sc)
	if err != nil {
		return Value{}, err
	}
	lsb := 0
	if id, ok := x.X.(*ast.Ident); ok {
		if n, ok2 := sc.lookupNet(id.Name); ok2 {
			lsb = n.lsb
		}
	}
	idx, err := s.eval(x.Idx, sc)
	if err != nil {
		return Value{}, err
	}
	iv, known := idx.Uint64()
	if !known {
		return NewX(1), nil
	}
	return base.SliceBits(int(iv)-lsb, 1), nil
}

func (s *Simulator) evalPartSel(x *ast.PartSel, sc *scope) (Value, error) {
	base, err := s.eval(x.X, sc)
	if err != nil {
		return Value{}, err
	}
	lsb := 0
	if id, ok := x.X.(*ast.Ident); ok {
		if n, ok2 := sc.lookupNet(id.Name); ok2 {
			lsb = n.lsb
		}
	}
	fake := &net{width: base.Width(), lsb: lsb}
	lo, w, known, err := s.partSelBounds(x, fake, sc)
	if err != nil {
		return Value{}, err
	}
	if !known {
		return NewX(w), nil
	}
	return base.SliceBits(lo, w), nil
}

// numberValue materializes a literal, shared by both backends.
func numberValue(x *ast.Number) Value {
	w := x.Width
	if w <= 0 {
		w = 32
		if len(x.Val)*64 > 32 {
			// Wide unsized literal: keep its natural storage width.
			w = len(x.Val) * 64
		}
	}
	return NewFromPlanes(w, x.Val, x.XZ)
}

func evalUnary(op ast.UnaryOp, v Value) Value {
	switch op {
	case ast.UnaryPlus:
		return v
	case ast.UnaryMinus:
		return Neg(v)
	case ast.LogicalNot:
		truth, known := v.Bool3()
		if !known {
			return NewX(1)
		}
		return NewKnown(1, boolToU64(!truth))
	case ast.BitNot:
		return Not(v)
	case ast.RedAnd:
		return RedAnd(v)
	case ast.RedOr:
		return RedOr(v)
	case ast.RedXor:
		return RedXor(v)
	case ast.RedNand:
		return Not(RedAnd(v))
	case ast.RedNor:
		return Not(RedOr(v))
	case ast.RedXnor:
		return Not(RedXor(v))
	default:
		return NewX(v.Width())
	}
}

func evalBinary(op ast.BinaryOp, a, b Value) Value {
	switch op {
	case ast.Add:
		return Add(a, b)
	case ast.Sub:
		return Sub(a, b)
	case ast.Mul:
		return Mul(a, b)
	case ast.Div:
		return Div(a, b)
	case ast.Mod:
		return Mod(a, b)
	case ast.BitAnd:
		return And(a, b)
	case ast.BitOr:
		return Or(a, b)
	case ast.BitXor:
		return Xor(a, b)
	case ast.BitXnor:
		return Xnor(a, b)
	case ast.LogAnd:
		at, ak := a.Bool3()
		bt, bk := b.Bool3()
		switch {
		case ak && !at, bk && !bt:
			return NewKnown(1, 0)
		case ak && bk:
			return NewKnown(1, boolToU64(at && bt))
		default:
			return NewX(1)
		}
	case ast.LogOr:
		at, ak := a.Bool3()
		bt, bk := b.Bool3()
		switch {
		case ak && at, bk && bt:
			return NewKnown(1, 1)
		case ak && bk:
			return NewKnown(1, boolToU64(at || bt))
		default:
			return NewX(1)
		}
	case ast.Eq:
		return Eq(a, b)
	case ast.Neq:
		return Neq(a, b)
	case ast.CaseEq:
		return CaseEq(a, b)
	case ast.CaseNeq:
		return CaseNeq(a, b)
	case ast.Lt:
		return Lt(a, b)
	case ast.Leq:
		return Leq(a, b)
	case ast.Gt:
		return Gt(a, b)
	case ast.Geq:
		return Geq(a, b)
	case ast.Shl, ast.AShl:
		return Shl(a, b)
	case ast.Shr:
		return Shr(a, b)
	case ast.AShr:
		return AShr(a, b)
	default:
		return NewX(maxInt(a.Width(), b.Width()))
	}
}

// mergeTernary merges branch values bitwise when the condition is unknown:
// agreeing known bits survive, all others become X.
func mergeTernary(a, b Value) Value {
	w := maxInt(a.Width(), b.Width())
	a, b = a.Resize(w), b.Resize(w)
	out := NewX(w)
	for i := 0; i < w; i++ {
		ab, bb := a.Bit(i), b.Bit(i)
		if ab == bb && (ab == '0' || ab == '1') {
			out.setBit(i, ab)
		}
	}
	return out
}
