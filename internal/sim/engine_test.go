package sim

import (
	"errors"
	"testing"

	"repro/internal/verilog/parser"
)

func TestXPropagationUninitializedReg(t *testing.T) {
	src := `
module top_module (
    input clk,
    input d,
    output q
);
    reg r;
    always @(posedge clk)
        r <= d;
    assign q = r;
endmodule
`
	s := mustElab(t, src, "top_module")
	v, err := s.Output("q")
	if err != nil {
		t.Fatal(err)
	}
	if !v.HasXZ() {
		t.Errorf("uninitialized reg should read X, got %s", v)
	}
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("d", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 1 {
		t.Errorf("after clock q=%d, want 1", got)
	}
}

func TestNonBlockingSwapSemantics(t *testing.T) {
	// The classic: non-blocking assignments read pre-edge values, so two
	// registers can swap without a temp.
	src := `
module top_module (
    input clk,
    input load,
    input [3:0] av,
    input [3:0] bv,
    output reg [3:0] a,
    output reg [3:0] b
);
    always @(posedge clk) begin
        if (load) begin
            a <= av;
            b <= bv;
        end else begin
            a <= b;
            b <= a;
        end
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	for name, v := range map[string]uint64{"clk": 0, "load": 1, "av": 3, "bv": 12} {
		if err := s.SetInputUint(name, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("load", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if a, b := outUint(t, s, "a"), outUint(t, s, "b"); a != 12 || b != 3 {
		t.Errorf("after swap a=%d b=%d, want 12,3", a, b)
	}
}

func TestBlockingChainInClockedBlock(t *testing.T) {
	// Blocking assignments propagate within the same edge.
	src := `
module top_module (
    input clk,
    input [3:0] d,
    output reg [3:0] q
);
    reg [3:0] tmp;
    always @(posedge clk) begin
        tmp = d + 4'd1;
        q = tmp + 4'd1;
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("d", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 7 {
		t.Errorf("q=%d, want 7", got)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	// From an all-X start, X is a fixed point of the feedback (four-state
	// semantics), so elaboration settles. Driving the enable with a known
	// value turns the loop into a zero-delay oscillator, which Settle must
	// report instead of spinning forever.
	src := `
module top_module (
    input en,
    output y
);
    wire w;
    assign w = en ? ~w : 1'b0;
    assign y = w;
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("en", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "y"); got != 0 {
		t.Fatalf("y=%d with en=0, want 0", got)
	}
	if err := s.SetInputUint("en", 1); err != nil {
		t.Fatal(err)
	}
	err := s.Settle()
	if err == nil {
		t.Fatal("expected oscillation error")
	}
	if !errors.Is(err, ErrNoConverge) {
		t.Errorf("error %v is not ErrNoConverge", err)
	}
}

func TestPartSelectWrite(t *testing.T) {
	src := `
module top_module (
    input clk,
    input [1:0] be,
    input [15:0] d,
    output reg [15:0] q
);
    always @(posedge clk) begin
        if (be[0])
            q[7:0] <= d[7:0];
        if (be[1])
            q[15:8] <= d[15:8];
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	for name, v := range map[string]uint64{"clk": 0, "be": 3, "d": 0xABCD} {
		if err := s.SetInputUint(name, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 0xABCD {
		t.Errorf("q=%x", got)
	}
	// Byte-enable only low byte.
	if err := s.SetInputUint("be", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("d", 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 0xAB34 {
		t.Errorf("q=%x, want AB34", got)
	}
}

func TestDynamicBitWrite(t *testing.T) {
	src := `
module top_module (
    input clk,
    input [2:0] idx,
    output reg [7:0] q
);
    always @(posedge clk) begin
        q <= 8'd0;
        q[idx] <= 1'b1;
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("idx", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 1<<5 {
		t.Errorf("q=%b", got)
	}
}

func TestNegedgeSensitivity(t *testing.T) {
	src := `
module top_module (
    input clk,
    input d,
    output reg q
);
    always @(negedge clk)
        q <= d;
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("clk", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("d", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// Rising edge: no capture.
	v, _ := s.Output("q")
	if !v.HasXZ() {
		t.Error("q captured on wrong edge")
	}
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 1 {
		t.Errorf("q=%d after negedge, want 1", got)
	}
}

func TestParametersAndOverrides(t *testing.T) {
	src := `
module counter (
    input clk,
    input reset,
    output reg [7:0] q
);
    parameter LIMIT = 3;
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else if (q == LIMIT)
            q <= 8'd0;
        else
            q <= q + 8'd1;
    end
endmodule

module top_module (
    input clk,
    input reset,
    output [7:0] q
);
    counter #(.LIMIT(5)) u (.clk(clk), .reset(reset), .q(q));
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("reset", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("reset", 0); err != nil {
		t.Fatal(err)
	}
	seen := []uint64{}
	for i := 0; i < 8; i++ {
		if err := s.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		seen = append(seen, outUint(t, s, "q"))
	}
	want := []uint64{1, 2, 3, 4, 5, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("cycle %d: q=%d, want %d (override LIMIT=5 ignored?)", i, seen[i], want[i])
		}
	}
}

func TestWireInitializer(t *testing.T) {
	src := `
module top_module (
    input [3:0] a,
    output [3:0] y
);
    wire [3:0] inv = ~a;
    assign y = inv;
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("a", 0b0101); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "y"); got != 0b1010 {
		t.Errorf("y=%b", got)
	}
}

func TestNonZeroLSBRange(t *testing.T) {
	src := `
module top_module (
    input [7:4] a,
    output [3:0] y
);
    assign y = a[5:4];
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInput("a", NewKnown(4, 0b0110)); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "y"); got != 0b10 {
		t.Errorf("y=%b, want 10", got)
	}
}

func TestErrorsAPI(t *testing.T) {
	src := `
module top_module (
    input a,
    output y
);
    assign y = a;
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("ghost", 1); !errors.Is(err, ErrUnknownNet) {
		t.Errorf("SetInput unknown: %v", err)
	}
	if err := s.SetInputUint("y", 1); !errors.Is(err, ErrNotInput) {
		t.Errorf("SetInput on output: %v", err)
	}
	if _, err := s.Output("ghost"); !errors.Is(err, ErrUnknownNet) {
		t.Errorf("Output unknown: %v", err)
	}
	ins, outs := s.Inputs(), s.Outputs()
	if len(ins) != 1 || ins[0].Name != "a" || len(outs) != 1 || outs[0].Name != "y" {
		t.Errorf("ports: %v %v", ins, outs)
	}
}

func TestElabErrors(t *testing.T) {
	for name, src := range map[string]string{
		"missing-top": "module other (input a, output y); assign y = a; endmodule",
		"bad-range":   "module top_module (input [0:7] a, output y); assign y = a[0]; endmodule",
		"unknown-sub": "module top_module (input a, output y); ghost u (.a(a), .y(y)); endmodule",
	} {
		srcAst, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := New(srcAst, "top_module"); !errors.Is(err, ErrElab) {
			t.Errorf("%s: error %v is not ErrElab", name, err)
		}
	}
}

func TestCasezWildcardExecution(t *testing.T) {
	src := `
module top_module (
    input [3:0] in,
    output reg [1:0] pos
);
    always @(*) begin
        casez (in)
            4'b1zzz: pos = 2'd3;
            4'b01zz: pos = 2'd2;
            4'b001z: pos = 2'd1;
            4'b0001: pos = 2'd0;
            default: pos = 2'd0;
        endcase
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	for in, want := range map[uint64]uint64{0b1000: 3, 0b1111: 3, 0b0100: 2, 0b0011: 1, 0b0001: 0, 0b0000: 0} {
		if err := s.SetInputUint("in", in); err != nil {
			t.Fatal(err)
		}
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := outUint(t, s, "pos"); got != want {
			t.Errorf("in=%04b: pos=%d, want %d", in, got, want)
		}
	}
}

func TestTernaryXMerge(t *testing.T) {
	src := `
module top_module (
    input s,
    output [1:0] y
);
    assign y = s ? 2'b11 : 2'b10;
endmodule
`
	s := mustElab(t, src, "top_module")
	// s unset (X): bit 1 agrees (1), bit 0 disagrees -> x.
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Output("y")
	if err != nil {
		t.Fatal(err)
	}
	if v.Bit(1) != '1' || v.Bit(0) != 'x' {
		t.Errorf("y=%s, want 1x", v)
	}
}

func TestShiftContextWidth(t *testing.T) {
	// in << amt assigned to a wider output must not truncate at the input
	// width.
	src := `
module top_module (
    input [3:0] in,
    input [2:0] amt,
    output [7:0] y
);
    assign y = in << amt;
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("in", 0xF); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("amt", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "y"); got != 0xF0 {
		t.Errorf("y=%x, want F0", got)
	}
}
