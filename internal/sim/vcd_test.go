package sim

import (
	"strings"
	"testing"
)

func TestVCDRecorder(t *testing.T) {
	src := `
module top_module (
    input clk,
    input [3:0] d,
    output reg [3:0] q
);
    always @(posedge clk)
        q <= d;
endmodule
`
	s := mustElab(t, src, "top_module")
	rec := NewVCDRecorder(s)
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	var now uint64
	for cyc := 0; cyc < 3; cyc++ {
		if err := s.SetInputUint("d", uint64(cyc+1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		now += 10
		rec.Sample(now)
	}
	var b strings.Builder
	if err := rec.Flush(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ", "$var wire 4 ",
		"$enddefinitions $end",
		"#10", "#20", "#30",
		"b0001 ", "b0010 ", "b0011 ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q\n%s", want, out)
		}
	}
	// Unchanged signals must not re-emit: clk ends each Tick at 0, so after
	// the first sample it should not reappear.
	clkLines := strings.Count(out, "0!") // clk is alphabetically first -> code "!"
	if clkLines > 2 {
		t.Errorf("clk dumped %d times despite not changing between samples", clkLines)
	}
}

func TestVCDCodeUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
	}
}
