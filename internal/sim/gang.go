// Gang simulation: N candidate engines advanced in lockstep over one shared
// stimulus stream. The testbench decodes each schedule step row exactly once
// and broadcasts the decoded values into every live lane (Drive), then all
// lanes advance together (Advance) and fold their outputs into per-lane
// fingerprints (HashOutput). Lanes are fully independent — each engine keeps
// its own val/xz planes — so a gang run of any size is bit-identical to N
// solo runs; the gang only removes the per-candidate stimulus decode and
// improves locality by touching one row of stimulus words for all lanes.
package sim

// Gang runs several compiled Engines in lockstep. It is not safe for
// concurrent use; ranking workers each drive their own gang.
type Gang struct {
	lanes []glane
	live  []int32 // lanes still running, in lane order (compacted in place)
}

// glane is one candidate lane: its engine, resolved stimulus handles, the
// running per-case fingerprint, and the terminal error once retired.
type glane struct {
	d       *Design
	en      *Engine
	perCase bool // acquire a fresh engine per case (sequential lifecycle)
	clock   int  // clock input handle, -1 for combinational lanes
	ins     []int
	outs    []int
	hash    uint64
	err     error
}

// NewGang returns an empty gang with capacity for n lanes.
func NewGang(n int) *Gang {
	return &Gang{lanes: make([]glane, 0, n), live: make([]int32, 0, n)}
}

// AddLane registers one candidate design with its resolved handles and
// returns the lane id. A non-nil engine is the lane's standing instance,
// kept across cases (combinational interfaces, matching the solo path's
// shared instance); nil selects a fresh pooled engine per case (sequential
// interfaces, where cases must be independent).
func (g *Gang) AddLane(d *Design, en *Engine, clock int, ins, outs []int) int {
	id := len(g.lanes)
	g.lanes = append(g.lanes, glane{d: d, en: en, perCase: en == nil, clock: clock, ins: ins, outs: outs})
	g.live = append(g.live, int32(id))
	return id
}

// LiveLanes returns how many lanes are still running.
func (g *Gang) LiveLanes() int { return len(g.live) }

// Err returns the error that retired the lane, or nil while it runs.
func (g *Gang) Err(id int) error { return g.lanes[id].err }

// Hash returns the lane's running fingerprint for the current case.
func (g *Gang) Hash(id int) uint64 { return g.lanes[id].hash }

// BeginCase starts the next test case on every live lane: per-case lanes
// acquire a pooled engine, fingerprints reset to the FNV offset basis, and
// clocked lanes drive their clock low — the exact preamble of a solo
// scheduled case run.
func (g *Gang) BeginCase() {
	for _, id := range g.live {
		ln := &g.lanes[id]
		if ln.perCase {
			ln.en = ln.d.AcquireEngine()
		}
		ln.hash = FNVOffset64
		if ln.clock >= 0 {
			ln.en.SetInputUintH(ln.clock, 0)
		}
	}
}

// EndCase releases the per-case engines of every live lane.
func (g *Gang) EndCase() {
	for _, id := range g.live {
		ln := &g.lanes[id]
		if ln.perCase {
			ln.d.ReleaseEngine(ln.en)
			ln.en = nil
		}
	}
}

// Drive stores one decoded stimulus value into drive position pos of every
// live lane. The Value may be a view over shared schedule planes: engines
// only read it during the call.
func (g *Gang) Drive(pos int, v Value) {
	for _, id := range g.live {
		ln := &g.lanes[id]
		ln.en.SetInputH(ln.ins[pos], v)
	}
}

// Advance moves every live lane one step — a full clock cycle for clocked
// lanes, a settle otherwise. A lane that fails is retired with its error
// (engine returned to its pool) and takes no further part in the gang; the
// others continue, exactly as independent solo runs would.
func (g *Gang) Advance() {
	n := 0
	for _, id := range g.live {
		ln := &g.lanes[id]
		var err error
		if ln.clock >= 0 {
			err = ln.en.TickH(ln.clock)
		} else {
			err = ln.en.Settle()
		}
		if err != nil {
			ln.err = err
			if ln.en != nil {
				ln.d.ReleaseEngine(ln.en)
				ln.en = nil
			}
			continue
		}
		g.live[n] = id
		n++
	}
	g.live = g.live[:n]
}

// HashOutput folds output column col at the given rendering width into every
// live lane's case fingerprint, followed by the newline separator — the same
// byte stream the solo scheduled fingerprint run folds.
func (g *Gang) HashOutput(col, width int) {
	for _, id := range g.live {
		ln := &g.lanes[id]
		h := ln.en.HashOutputH(ln.hash, ln.outs[col], width)
		ln.hash = (h ^ uint64('\n')) * FNVPrime64
	}
}

// Close releases every engine still held (standing combinational engines,
// or per-case engines if the caller abandoned a case midway).
func (g *Gang) Close() {
	for i := range g.lanes {
		ln := &g.lanes[i]
		if ln.en != nil {
			ln.d.ReleaseEngine(ln.en)
			ln.en = nil
		}
	}
	g.live = g.live[:0]
}
