package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/verilog/ast"
	"repro/internal/verilog/printer"
)

// canonicalKeyMemo caches CanonicalKey by AST identity: printing a design is
// comparable in cost to compiling it, and the same parsed candidate is keyed
// several times per pipeline run (dedup, ranking, refinement checks). The
// memo is cleared wholesale when it exceeds its cap so it cannot pin an
// unbounded number of ASTs against the garbage collector.
var (
	keyMemoMu sync.Mutex
	keyMemo   = make(map[*ast.Source]string)
)

const keyMemoCap = 4096

// CanonicalKey returns a canonical content hash of a design: the SHA-256 of
// its printed source. Two ASTs that print identically — same code modulo the
// formatting and comments the printer normalizes away — share a key, so
// duplicate candidates (common under the paper's n-sample generation) can be
// recognized before any simulation work. ASTs are assumed immutable once
// handed to the simulator, so the key is memoized per AST.
func CanonicalKey(src *ast.Source) string {
	keyMemoMu.Lock()
	if k, ok := keyMemo[src]; ok {
		keyMemoMu.Unlock()
		return k
	}
	keyMemoMu.Unlock()
	sum := sha256.Sum256([]byte(printer.Print(src)))
	k := hex.EncodeToString(sum[:])
	keyMemoMu.Lock()
	if len(keyMemo) >= keyMemoCap {
		keyMemo = make(map[*ast.Source]string, keyMemoCap)
	}
	keyMemo[src] = k
	keyMemoMu.Unlock()
	return k
}

// contentHash folds a compile-cache key — canonical source hash plus top
// module — into the single hex digest a Design carries as its persistent
// content address. Delta-compiled and fresh-compiled designs of the same
// source share it, which is exactly right: the gang equivalence gates hold
// their fingerprints bit-identical.
func contentHash(key cacheKey) string {
	h := sha256.New()
	h.Write([]byte(key.hash))
	h.Write([]byte{0})
	h.Write([]byte(key.top))
	return hex.EncodeToString(h.Sum(nil))
}

// CompileCache memoizes Compile results keyed by (CanonicalKey, top module).
// It is safe for concurrent use and concurrent requests for the same design
// share a single compilation. A bounded LRU keeps memory in check; failed
// compilations are cached too (invalid candidates recur just as often).
type CompileCache struct {
	mu  sync.Mutex
	cap int
	m   map[cacheKey]*cacheEntry
	// Intrusive LRU list over the entries, most recently used first. Entries
	// are their own nodes, so a cache hit allocates nothing and a miss
	// allocates exactly the entry (memo-cold ranking calls look up dozens of
	// candidates per batch, which made per-call closure and list-element
	// allocations a measurable slice of the cold path).
	front *cacheEntry
	back  *cacheEntry
	n     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheKey struct {
	hash string
	top  string
}

type cacheEntry struct {
	key     cacheKey
	once    sync.Once
	compile func() (*Design, error)
	d       *Design
	err     error
	// done flips after resolve completes. The LRU eviction loop reads it to
	// pin in-flight entries: evicting an entry before its resolve() ran
	// would hand every subsequent caller of that key a fresh entry and a
	// fresh compilation, defeating the single-flight guarantee exactly when
	// it matters (a burst of concurrent callers on a cold key).
	done atomic.Bool

	prev *cacheEntry // LRU links, guarded by CompileCache.mu
	next *cacheEntry
}

// resolve runs the compilation exactly once (whichever caller gets here
// first does the work; the rest block until it is done) and returns it.
// A panicking compilation resolves to an error rather than escaping: the
// once is spent either way, and without the recover the entry would be
// poisoned — done never set (pinned against eviction forever) and every
// waiter handed a nil design with a nil error. Compilation is a pure
// function of the source, so caching the crash as a failure follows the
// same policy as caching ordinary compile errors.
func (e *cacheEntry) resolve() (*Design, error) {
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.d, e.err = nil, fmt.Errorf("compile panicked: %v", r)
			}
			e.compile = nil
			e.done.Store(true)
		}()
		e.d, e.err = e.compile()
	})
	return e.d, e.err
}

// NewCompileCache returns a cache bounded to capacity designs (minimum 1).
func NewCompileCache(capacity int) *CompileCache {
	if capacity < 1 {
		capacity = 1
	}
	return &CompileCache{
		cap: capacity,
		m:   make(map[cacheKey]*cacheEntry, capacity),
	}
}

// unlink detaches e from the LRU list. Callers hold c.mu.
func (c *CompileCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
	c.n--
}

// pushFront makes e the most recently used entry. Callers hold c.mu.
func (c *CompileCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
	c.n++
}

// Get returns the compiled design for src/top, compiling at most once per
// canonical source even under concurrent callers.
func (c *CompileCache) Get(src *ast.Source, top string) (*Design, error) {
	key := cacheKey{hash: CanonicalKey(src), top: top}
	if e := c.touch(key); e != nil {
		return e.resolve()
	}
	return c.get(key, func() (*Design, error) {
		d, err := Compile(src, top)
		if err == nil {
			d.canonHash = contentHash(key)
		}
		return d, err
	})
}

// GetDelta is Get with a delta-compilation base: a cache miss compiles
// src through CompileDelta(base, ...), reusing the base design's per-process
// artifacts where layout and process hashes line up. The cache key is the
// same as Get's — a delta compilation of a source is behaviorally identical
// to a from-scratch one (held together by differential tests), so both entry
// points share entries.
func (c *CompileCache) GetDelta(base *Design, src *ast.Source, top string) (*Design, error) {
	key := cacheKey{hash: CanonicalKey(src), top: top}
	if e := c.touch(key); e != nil {
		return e.resolve()
	}
	return c.get(key, func() (*Design, error) {
		d, err := CompileDelta(base, src, top)
		if err == nil {
			d.canonHash = contentHash(key)
		}
		return d, err
	})
}

// touch returns the resident entry for key freshened to the LRU front, or
// nil on a miss. Splitting the hit path out lets Get/GetDelta construct
// their compile closures only on misses — a cache hit allocates nothing,
// which matters on memo-cold ranking calls that key dozens of candidates.
func (c *CompileCache) touch(key cacheKey) *cacheEntry {
	c.mu.Lock()
	e, ok := c.m[key]
	if ok && c.front != e {
		c.unlink(e)
		c.pushFront(e)
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	c.hits.Add(1)
	return e
}

// get looks up or inserts the entry for key, evicting only *resolved*
// entries past the cap (unresolved ones stay pinned until their compilation
// finishes; the cache may transiently exceed cap by the number of in-flight
// compilations).
func (c *CompileCache) get(key cacheKey, compile func() (*Design, error)) (*Design, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		if c.front != e {
			c.unlink(e)
			c.pushFront(e)
		}
		c.mu.Unlock()
		c.hits.Add(1)
		return e.resolve()
	}
	e := &cacheEntry{key: key, compile: compile}
	c.m[key] = e
	c.pushFront(e)
	for c.n > c.cap {
		oldest := c.back
		for oldest != nil && !oldest.done.Load() {
			oldest = oldest.prev
		}
		if oldest == nil {
			break // every entry is in flight; retry eviction on later inserts
		}
		c.unlink(oldest)
		delete(c.m, oldest.key)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return e.resolve()
}

// Stats reports cumulative cache hits and misses.
func (c *CompileCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached designs.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// defaultCacheCapacity bounds the process-wide cache. Designs are small
// (closures plus a value snapshot), and the experiment drivers churn through
// thousands of candidates, most of them duplicates.
const defaultCacheCapacity = 1024

// DefaultCache is the process-wide compile cache used by CompileCached.
var DefaultCache = NewCompileCache(defaultCacheCapacity)

// CompileCached is Compile through the process-wide elaboration cache:
// repeated evaluations of identical (or cosmetically different but
// canonically equal) candidates skip elaboration and compilation entirely.
func CompileCached(src *ast.Source, top string) (*Design, error) {
	return DefaultCache.Get(src, top)
}

// CompileDeltaCached is CompileDelta through the process-wide cache: on a
// miss the mutant is lowered against base (nil base degrades to a plain
// Compile), on a hit delta and non-delta callers share one design.
func CompileDeltaCached(base *Design, src *ast.Source, top string) (*Design, error) {
	if base == nil {
		return DefaultCache.Get(src, top)
	}
	return DefaultCache.GetDelta(base, src, top)
}
