package sim

import (
	"testing"

	"repro/internal/verilog/parser"
)

func mustElab(t *testing.T, src, top string) *Simulator {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sim, err := New(s, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return sim
}

func outUint(t *testing.T, s *Simulator, name string) uint64 {
	t.Helper()
	v, err := s.Output(name)
	if err != nil {
		t.Fatalf("output %s: %v", name, err)
	}
	u, ok := v.Uint64()
	if !ok {
		t.Fatalf("output %s is not fully known: %s", name, v)
	}
	return u
}

func TestCombinationalAdder(t *testing.T) {
	src := `
module top_module (
    input [7:0] a,
    input [7:0] b,
    output [8:0] sum
);
    assign sum = a + b;
endmodule
`
	s := mustElab(t, src, "top_module")
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {1, 2, 3}, {255, 255, 510}, {128, 128, 256},
	}
	for _, tc := range cases {
		if err := s.SetInputUint("a", tc.a); err != nil {
			t.Fatal(err)
		}
		if err := s.SetInputUint("b", tc.b); err != nil {
			t.Fatal(err)
		}
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := outUint(t, s, "sum"); got != tc.want {
			t.Errorf("a=%d b=%d: sum=%d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSequentialCounterSyncReset(t *testing.T) {
	src := `
module top_module (
    input clk,
    input reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'd0;
        else if (q == 4'd9)
            q <= 4'd0;
        else
            q <= q + 4'd1;
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	if err := s.SetInputUint("clk", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("reset", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	if got := outUint(t, s, "q"); got != 0 {
		t.Fatalf("after reset: q=%d, want 0", got)
	}
	if err := s.SetInputUint("reset", 0); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1}
	for i, w := range want {
		if err := s.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		if got := outUint(t, s, "q"); got != w {
			t.Fatalf("cycle %d: q=%d, want %d", i, got, w)
		}
	}
}

func TestAlwaysStarCase(t *testing.T) {
	src := `
module top_module (
    input [1:0] sel,
    input [3:0] a,
    input [3:0] b,
    input [3:0] c,
    input [3:0] d,
    output reg [3:0] y
);
    always @(*) begin
        case (sel)
            2'd0: y = a;
            2'd1: y = b;
            2'd2: y = c;
            default: y = d;
        endcase
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := s.SetInputUint(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetInputUint("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("c", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputUint("d", 4); err != nil {
		t.Fatal(err)
	}
	for sel, want := range map[uint64]uint64{0: 1, 1: 2, 2: 3, 3: 4} {
		if err := s.SetInputUint("sel", sel); err != nil {
			t.Fatal(err)
		}
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := outUint(t, s, "y"); got != want {
			t.Errorf("sel=%d: y=%d, want %d", sel, got, want)
		}
	}
}

func TestHierarchyInstance(t *testing.T) {
	src := `
module full_adder (
    input a,
    input b,
    input cin,
    output sum,
    output cout
);
    assign sum = a ^ b ^ cin;
    assign cout = (a & b) | (a & cin) | (b & cin);
endmodule

module top_module (
    input [3:0] x,
    input [3:0] y,
    output [4:0] s
);
    wire c1, c2, c3;
    full_adder fa0 (.a(x[0]), .b(y[0]), .cin(1'b0), .sum(s[0]), .cout(c1));
    full_adder fa1 (.a(x[1]), .b(y[1]), .cin(c1), .sum(s[1]), .cout(c2));
    full_adder fa2 (.a(x[2]), .b(y[2]), .cin(c2), .sum(s[2]), .cout(c3));
    full_adder fa3 (.a(x[3]), .b(y[3]), .cin(c3), .sum(s[3]), .cout(s[4]));
endmodule
`
	s := mustElab(t, src, "top_module")
	for a := uint64(0); a < 16; a += 3 {
		for b := uint64(0); b < 16; b += 5 {
			if err := s.SetInputUint("x", a); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInputUint("y", b); err != nil {
				t.Fatal(err)
			}
			if err := s.Settle(); err != nil {
				t.Fatal(err)
			}
			if got := outUint(t, s, "s"); got != a+b {
				t.Errorf("x=%d y=%d: s=%d, want %d", a, b, got, a+b)
			}
		}
	}
}

func TestForLoopPopcount(t *testing.T) {
	src := `
module top_module (
    input [7:0] in,
    output reg [3:0] count
);
    integer i;
    always @(*) begin
        count = 4'd0;
        for (i = 0; i < 8; i = i + 1)
            if (in[i])
                count = count + 4'd1;
    end
endmodule
`
	s := mustElab(t, src, "top_module")
	for _, tc := range []struct{ in, want uint64 }{
		{0x00, 0}, {0xFF, 8}, {0xA5, 4}, {0x01, 1}, {0x80, 1},
	} {
		if err := s.SetInputUint("in", tc.in); err != nil {
			t.Fatal(err)
		}
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := outUint(t, s, "count"); got != tc.want {
			t.Errorf("in=%#x: count=%d, want %d", tc.in, got, tc.want)
		}
	}
}
