// Register-file lowering: processes become destination-passing kernels over
// the Engine's flat val/xz planes. Every expression node owns a statically
// sized scratch slot (a word range in the frame); evaluating a node runs its
// operand kernels and then computes the node's value in place. Net and
// constant leaves have no kernel at all — their slot IS the storage.
//
// Width rules mirror Simulator.evalCtx exactly. A node's produced width can
// vary at run time (ternaries whose branches differ in width, concats of
// such), so kernels return the produced width; the static `cap` field is a
// compile-time upper bound that sizes the slot. The slot invariant (bits at
// or above the produced width are zero) makes zero-extension free: a parent
// that needs an operand at a wider width simply reads more words.
//
// Anything without a static width bound — [a:b] part-selects with
// non-constant bounds, indexed part-selects with non-constant widths,
// replications with non-constant counts, capacities past maxRegCap — reports
// errNoRegfile and the whole process drops to the boxed path in compile.go.
package sim

import (
	"fmt"

	"repro/internal/verilog/ast"
)

// rexpr is one lowered expression node.
type rexpr struct {
	run func(en *Engine) (int32, error) // nil: value already in place (leaf)
	off int32                           // word offset of the result slot
	nw  int32                           // slot size in words
	cap int32                           // static upper bound on produced width (bits)
	sw  int32                           // produced width when run == nil
	net int32                           // net index for net leaves, else -1
}

// eval runs the node (if it has a kernel) and returns the produced width.
func (e *rexpr) eval(en *Engine) (int32, error) {
	if e.run == nil {
		return e.sw, nil
	}
	return e.run(en)
}

// planes returns the node's result slot slices.
func (e *rexpr) planes(en *Engine) ([]uint64, []uint64) {
	return en.val[e.off : e.off+e.nw], en.xz[e.off : e.off+e.nw]
}

// node allocates a fresh scratch slot for a kernel with capacity cap bits.
func (c *compiler) node(cap int) (*rexpr, error) {
	if cap > maxRegCap {
		return nil, fmt.Errorf("%w: intermediate capacity %d bits", errNoRegfile, cap)
	}
	if cap < 1 {
		cap = 1
	}
	nw := words(cap)
	return &rexpr{off: c.alloc(nw), nw: int32(nw), cap: int32(cap), net: -1}, nil
}

// leafConst interns v in the constant pool and returns a kernel-less node.
func (c *compiler) leafConst(v Value) *rexpr {
	w := v.Width()
	return &rexpr{
		off: c.allocConst(v),
		nw:  int32(words(w)),
		cap: int32(w),
		sw:  int32(w),
		net: -1,
	}
}

// constFold extends constOf to whole constant expressions (literals,
// parameters, and operators over them, e.g. the ubiquitous WIDTH-1 select
// bounds), evaluating them at compile time exactly as evalCtx would at run
// time — same width contexts, same operator semantics — so folding is
// unobservable. Anything touching a net is not foldable.
func constFold(e ast.Expr, sc *scope) (Value, bool) {
	return constFoldCtx(e, sc, 0)
}

func constFoldCtx(e ast.Expr, sc *scope, ctx int) (Value, bool) {
	switch x := e.(type) {
	case *ast.Number:
		return numberValue(x), true
	case *ast.Ident:
		v, ok := sc.params[x.Name]
		return v, ok
	case *ast.Unary:
		switch x.Op {
		case ast.UnaryPlus, ast.UnaryMinus, ast.BitNot:
			v, ok := constFoldCtx(x.X, sc, ctx)
			if !ok {
				return Value{}, false
			}
			if ctx > v.Width() {
				v = v.Resize(ctx)
			}
			return evalUnary(x.Op, v), true
		default:
			v, ok := constFoldCtx(x.X, sc, 0)
			if !ok {
				return Value{}, false
			}
			return evalUnary(x.Op, v), true
		}
	case *ast.Binary:
		switch x.Op {
		case ast.Add, ast.Sub, ast.Mul, ast.Div, ast.Mod,
			ast.BitAnd, ast.BitOr, ast.BitXor, ast.BitXnor:
			a, ok := constFoldCtx(x.X, sc, ctx)
			if !ok {
				return Value{}, false
			}
			b, ok := constFoldCtx(x.Y, sc, ctx)
			if !ok {
				return Value{}, false
			}
			w := maxInt(maxInt(a.Width(), b.Width()), ctx)
			return evalBinary(x.Op, a.Resize(w), b.Resize(w)), true
		case ast.Shl, ast.Shr, ast.AShl, ast.AShr:
			a, ok := constFoldCtx(x.X, sc, ctx)
			if !ok {
				return Value{}, false
			}
			if ctx > a.Width() {
				a = a.Resize(ctx)
			}
			b, ok := constFoldCtx(x.Y, sc, 0)
			if !ok {
				return Value{}, false
			}
			return evalBinary(x.Op, a, b), true
		case ast.LogAnd, ast.LogOr:
			a, ok := constFoldCtx(x.X, sc, 0)
			if !ok {
				return Value{}, false
			}
			truth, known := a.Bool3()
			if known {
				// Short-circuit exactly like the runtime evaluator: a
				// deciding left operand never looks at the right one.
				if x.Op == ast.LogAnd && !truth {
					return NewKnown(1, 0), true
				}
				if x.Op == ast.LogOr && truth {
					return NewKnown(1, 1), true
				}
			}
			b, ok := constFoldCtx(x.Y, sc, 0)
			if !ok {
				return Value{}, false
			}
			return evalBinary(x.Op, a, b), true
		default:
			a, ok := constFoldCtx(x.X, sc, 0)
			if !ok {
				return Value{}, false
			}
			b, ok := constFoldCtx(x.Y, sc, 0)
			if !ok {
				return Value{}, false
			}
			return evalBinary(x.Op, a, b), true
		}
	case *ast.Ternary:
		cond, ok := constFoldCtx(x.Cond, sc, 0)
		if !ok {
			return Value{}, false
		}
		truth, known := cond.Bool3()
		if known {
			if truth {
				return constFoldCtx(x.Then, sc, ctx)
			}
			return constFoldCtx(x.Else, sc, ctx)
		}
		tv, ok := constFoldCtx(x.Then, sc, ctx)
		if !ok {
			return Value{}, false
		}
		ev, ok := constFoldCtx(x.Else, sc, ctx)
		if !ok {
			return Value{}, false
		}
		return mergeTernary(tv, ev), true
	default:
		return Value{}, false
	}
}

// compileProcessRegfile lowers one process to register-file form.
func (c *compiler) compileProcessRegfile(p *process) (cproc, error) {
	if p.cont {
		rsc := p.rhsScope
		if rsc == nil {
			rsc = p.scope
		}
		run, err := c.compileRAssign(p.lhs, p.scope, p.rhs, rsc, true)
		if err != nil {
			return cproc{}, err
		}
		return cproc{run: run, cont: true}, nil
	}
	body, err := c.compileRStmt(p.body, p.scope)
	if err != nil {
		return cproc{}, err
	}
	return cproc{run: body}, nil
}

// --- Statements --------------------------------------------------------------

// rstmt is a lowered statement.
type rstmt = func(en *Engine) error

func (c *compiler) compileRStmt(st ast.Stmt, sc *scope) (rstmt, error) {
	switch x := st.(type) {
	case *ast.Block:
		subs := make([]rstmt, len(x.Stmts))
		for i, sub := range x.Stmts {
			cs, err := c.compileRStmt(sub, sc)
			if err != nil {
				return nil, err
			}
			subs[i] = cs
		}
		return func(en *Engine) error {
			for _, cs := range subs {
				if err := cs(en); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *ast.AssignStmt:
		return c.compileRAssign(x.LHS, sc, x.RHS, sc, x.Blocking)
	case *ast.If:
		cond, err := c.compileRExpr(x.Cond, sc, 0)
		if err != nil {
			return nil, err
		}
		then, err := c.compileRStmt(x.Then, sc)
		if err != nil {
			return nil, err
		}
		var els rstmt
		if x.Else != nil {
			if els, err = c.compileRStmt(x.Else, sc); err != nil {
				return nil, err
			}
		}
		return func(en *Engine) error {
			if _, err := cond.eval(en); err != nil {
				return err
			}
			cv, cx := cond.planes(en)
			truth, known := kbool3(cv, cx)
			if known && truth {
				return then(en)
			}
			// Known-false and unknown both take the else branch, matching
			// the interpreter (Icarus treats X as false).
			if els != nil {
				return els(en)
			}
			return nil
		}, nil
	case *ast.Case:
		return c.compileRCase(x, sc)
	case *ast.For:
		return c.compileRFor(x, sc)
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrElab, st)
	}
}

type rcaseItem struct {
	isDefault bool
	labels    []*rexpr
	body      rstmt
}

func (c *compiler) compileRCase(x *ast.Case, sc *scope) (rstmt, error) {
	subj, err := c.compileRExpr(x.Subject, sc, 0)
	if err != nil {
		return nil, err
	}
	items := make([]rcaseItem, len(x.Items))
	for i, item := range x.Items {
		body, err := c.compileRStmt(item.Body, sc)
		if err != nil {
			return nil, err
		}
		ci := rcaseItem{body: body}
		if item.Labels == nil {
			ci.isDefault = true
		} else {
			ci.labels = make([]*rexpr, len(item.Labels))
			for j, lbl := range item.Labels {
				cl, err := c.compileRExpr(lbl, sc, 0)
				if err != nil {
					return nil, err
				}
				ci.labels[j] = cl
			}
		}
		items[i] = ci
	}
	kind := x.Kind
	return func(en *Engine) error {
		if _, err := subj.eval(en); err != nil {
			return err
		}
		sv, sx := subj.planes(en)
		deflt := -1
		for i := range items {
			if items[i].isDefault {
				deflt = i
				continue
			}
			for _, cl := range items[i].labels {
				if _, err := cl.eval(en); err != nil {
					return err
				}
				lv, lx := cl.planes(en)
				match := false
				switch kind {
				case ast.CaseZ:
					match = kcasezMatch(sv, sx, lv, lx, false)
				case ast.CaseX:
					match = kcasezMatch(sv, sx, lv, lx, true)
				default:
					match = kcaseEqual(sv, sx, lv, lx)
				}
				if match {
					return items[i].body(en)
				}
			}
		}
		if deflt >= 0 {
			return items[deflt].body(en)
		}
		return nil
	}, nil
}

func (c *compiler) compileRFor(x *ast.For, sc *scope) (rstmt, error) {
	var initA, stepA rstmt
	var err error
	if x.Init != nil {
		// Loop init/step RHS are self-determined, as in the interpreter.
		if initA, err = c.compileRAssignCtx(x.Init.LHS, sc, x.Init.RHS, sc, true, 0); err != nil {
			return nil, err
		}
	}
	cond, err := c.compileRExpr(x.Cond, sc, 0)
	if err != nil {
		return nil, err
	}
	body, err := c.compileRStmt(x.Body, sc)
	if err != nil {
		return nil, err
	}
	if x.Step != nil {
		if stepA, err = c.compileRAssignCtx(x.Step.LHS, sc, x.Step.RHS, sc, true, 0); err != nil {
			return nil, err
		}
	}
	return func(en *Engine) error {
		if initA != nil {
			if err := initA(en); err != nil {
				return err
			}
		}
		for iter := 0; ; iter++ {
			if iter >= maxLoopIters {
				return fmt.Errorf("%w: for loop exceeded %d iterations", ErrRuntime, maxLoopIters)
			}
			if _, err := cond.eval(en); err != nil {
				return err
			}
			cv, cx := cond.planes(en)
			truth, known := kbool3(cv, cx)
			if !known || !truth {
				return nil
			}
			if err := body(en); err != nil {
				return err
			}
			if stepA != nil {
				if err := stepA(en); err != nil {
					return err
				}
			}
		}
	}, nil
}

// --- Lvalues and assignment --------------------------------------------------

// rtarget is one resolved slice of a lowered lvalue.
type rtarget struct {
	net   int32
	lo    int
	width int
	skip  bool
}

// rlval is a lowered lvalue. The total width is always static here (dynamic
// widths fall back to the boxed path); only target offsets may be dynamic.
type rlval struct {
	total   int
	static  []rtarget                           // non-nil: fully static resolve
	dyn     []func(en *Engine) (rtarget, error) // else: one resolver per target, MSB-first
	netIdxs []int32                             // every net a target may touch
}

// compileRAssign lowers an assignment whose RHS context is the lvalue width.
func (c *compiler) compileRAssign(lhs ast.Expr, lsc *scope, rhs ast.Expr, rsc *scope, blocking bool) (rstmt, error) {
	lv, err := c.compileRLValue(lhs, lsc)
	if err != nil {
		return nil, err
	}
	return c.finishRAssign(lv, rhs, rsc, blocking, lv.total)
}

// compileRAssignCtx lowers an assignment with an explicit RHS context width
// (for-loop init/step use 0: self-determined).
func (c *compiler) compileRAssignCtx(lhs ast.Expr, lsc *scope, rhs ast.Expr, rsc *scope, blocking bool, ctx int) (rstmt, error) {
	lv, err := c.compileRLValue(lhs, lsc)
	if err != nil {
		return nil, err
	}
	return c.finishRAssign(lv, rhs, rsc, blocking, ctx)
}

func (c *compiler) finishRAssign(lv *rlval, rhs ast.Expr, rsc *scope, blocking bool, ctx int) (rstmt, error) {
	rx, err := c.compileRExpr(rhs, rsc, ctx)
	if err != nil {
		return nil, err
	}
	// A net-leaf RHS aliases live storage; if the lvalue can write that same
	// net at a shifted position, an in-place partial store would read bits it
	// already overwrote. Bounce through a scratch copy (rare: self-moves like
	// y[9:5] = y[4:0]). A single full-width self-assignment needs no bounce —
	// the store degenerates to a compare.
	if rx.run == nil && rx.net >= 0 && lv.mayTouch(rx.net) && !lv.isWholeNet(rx.net) {
		src := rx
		bounced, err := c.node(int(src.cap))
		if err != nil {
			return nil, err
		}
		w := src.sw
		bounced.run = func(en *Engine) (int32, error) {
			dv, dx := bounced.planes(en)
			sv, sx := src.planes(en)
			kcopy(dv, dx, sv, sx, int(w), int(bounced.nw))
			return w, nil
		}
		rx = bounced
	}
	total := lv.total
	if lv.static != nil {
		targets := lv.static
		// Fast path: one non-skipped full-width target.
		if len(targets) == 1 && !targets[0].skip && targets[0].width == total {
			t := targets[0]
			return func(en *Engine) error {
				if _, err := rx.eval(en); err != nil {
					return err
				}
				sv, sx := rx.planes(en)
				if blocking {
					en.storeNet(t.net, t.lo, sv, sx, 0, total)
				} else {
					en.queueNBA(t.net, t.lo, sv, sx, 0, total)
				}
				return nil
			}, nil
		}
		return func(en *Engine) error {
			if _, err := rx.eval(en); err != nil {
				return err
			}
			sv, sx := rx.planes(en)
			pos := total
			for _, t := range targets {
				pos -= t.width
				if t.skip {
					continue
				}
				if blocking {
					en.storeNet(t.net, t.lo, sv, sx, pos, t.width)
				} else {
					en.queueNBA(t.net, t.lo, sv, sx, pos, t.width)
				}
			}
			return nil
		}, nil
	}
	resolvers := lv.dyn
	return func(en *Engine) error {
		// Match the interpreter's order exactly: evaluate the RHS, resolve
		// EVERY target, and only then store. A blocking store interleaved
		// with resolution would be observable when an earlier concat part
		// writes a net a later part's index expression reads
		// (e.g. {i, a[i]} = x must index a with the old i).
		if _, err := rx.eval(en); err != nil {
			return err
		}
		en.targets = en.targets[:0]
		for _, res := range resolvers {
			t, err := res(en)
			if err != nil {
				return err
			}
			en.targets = append(en.targets, t)
		}
		sv, sx := rx.planes(en)
		pos := total
		for _, t := range en.targets {
			pos -= t.width
			if t.skip {
				continue
			}
			if blocking {
				en.storeNet(t.net, t.lo, sv, sx, pos, t.width)
			} else {
				en.queueNBA(t.net, t.lo, sv, sx, pos, t.width)
			}
		}
		return nil
	}, nil
}

// mayTouch reports whether the lvalue can write net idx.
func (lv *rlval) mayTouch(idx int32) bool {
	for _, n := range lv.netIdxs {
		if n == idx {
			return true
		}
	}
	return false
}

// isWholeNet reports whether the lvalue is exactly one full-width static
// write of net idx (safe to store in place even from the net itself).
func (lv *rlval) isWholeNet(idx int32) bool {
	return len(lv.static) == 1 && !lv.static[0].skip &&
		lv.static[0].net == idx && lv.static[0].lo == 0
}

// compileRLValue lowers an lvalue. Mirrors compileLValue but produces
// static-total-width resolvers; constructs with dynamic widths return
// errNoRegfile.
func (c *compiler) compileRLValue(lhs ast.Expr, sc *scope) (*rlval, error) {
	switch x := lhs.(type) {
	case *ast.Ident:
		n, ok := sc.lookupNet(x.Name)
		if !ok {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", ErrElab, x.Name)
		}
		idx := c.netIdx[n]
		return &rlval{
			total:   n.width,
			static:  []rtarget{{net: idx, lo: 0, width: n.width}},
			netIdxs: []int32{idx},
		}, nil
	case *ast.Index:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%w: nested lvalue selects are not supported", ErrElab)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", ErrElab, base.Name)
		}
		idx, lsb, width := c.netIdx[n], n.lsb, n.width
		if iv, isConst := constFold(x.Idx, sc); isConst {
			u, known := iv.Uint64()
			t := rtarget{skip: true, width: 1}
			if known {
				if lo := int(u) - lsb; lo >= 0 && lo < width {
					t = rtarget{net: idx, lo: lo, width: 1}
				}
			}
			return &rlval{total: 1, static: []rtarget{t}, netIdxs: []int32{idx}}, nil
		}
		cidx, err := c.compileRExpr(x.Idx, sc, 0)
		if err != nil {
			return nil, err
		}
		res := func(en *Engine) (rtarget, error) {
			if _, err := cidx.eval(en); err != nil {
				return rtarget{}, err
			}
			iv, known := kfits64(cidx.planes(en))
			if !known {
				return rtarget{skip: true, width: 1}, nil
			}
			lo := int(iv) - lsb
			if lo < 0 || lo >= width {
				return rtarget{skip: true, width: 1}, nil
			}
			return rtarget{net: idx, lo: lo, width: 1}, nil
		}
		return &rlval{total: 1, dyn: []func(en *Engine) (rtarget, error){res}, netIdxs: []int32{idx}}, nil
	case *ast.PartSel:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%w: nested lvalue selects are not supported", ErrElab)
		}
		n, ok2 := sc.lookupNet(base.Name)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment to unknown net %q", ErrElab, base.Name)
		}
		idx, lsb := c.netIdx[n], n.lsb
		av, aConst := constFold(x.A, sc)
		bv, bConst := constFold(x.B, sc)
		if aConst && bConst {
			lo, rw, known, err := partSelBoundsVals(x.Kind, av, bv, lsb)
			if err != nil {
				// Runtime error every evaluation, mirroring the interpreter.
				res := func(en *Engine) (rtarget, error) { return rtarget{}, err }
				return &rlval{total: 1, dyn: []func(en *Engine) (rtarget, error){res}, netIdxs: []int32{idx}}, nil
			}
			t := rtarget{skip: true, width: rw}
			if known {
				t = rtarget{net: idx, lo: lo, width: rw}
			}
			return &rlval{total: rw, static: []rtarget{t}, netIdxs: []int32{idx}}, nil
		}
		// Indexed part-selects with a constant width keep a static total;
		// anything else has a dynamic lvalue width: boxed fallback.
		if x.Kind == ast.SelConst || !bConst {
			return nil, fmt.Errorf("%w: dynamic part-select bounds", errNoRegfile)
		}
		wv, okw := bv.Uint64()
		if !okw || wv == 0 {
			err := fmt.Errorf("%w: indexed part-select width must be a positive constant", ErrRuntime)
			res := func(en *Engine) (rtarget, error) { return rtarget{}, err }
			return &rlval{total: 1, dyn: []func(en *Engine) (rtarget, error){res}, netIdxs: []int32{idx}}, nil
		}
		ca, err := c.compileRExpr(x.A, sc, 0)
		if err != nil {
			return nil, err
		}
		w := int(wv)
		minus := x.Kind == ast.SelMinus
		res := func(en *Engine) (rtarget, error) {
			if _, err := ca.eval(en); err != nil {
				return rtarget{}, err
			}
			baseV, known := kfits64(ca.planes(en))
			if !known {
				return rtarget{skip: true, width: w}, nil
			}
			lo := int(baseV) - lsb
			if minus {
				lo = int(baseV) - w + 1 - lsb
			}
			return rtarget{net: idx, lo: lo, width: w}, nil
		}
		return &rlval{total: w, dyn: []func(en *Engine) (rtarget, error){res}, netIdxs: []int32{idx}}, nil
	case *ast.Concat:
		out := &rlval{}
		allStatic := true
		var parts []*rlval
		for _, part := range x.Parts {
			lv, err := c.compileRLValue(part, sc)
			if err != nil {
				return nil, err
			}
			parts = append(parts, lv)
			out.total += lv.total
			out.netIdxs = append(out.netIdxs, lv.netIdxs...)
			if lv.static == nil {
				allStatic = false
			}
		}
		if allStatic {
			for _, lv := range parts {
				out.static = append(out.static, lv.static...)
			}
			return out, nil
		}
		for _, lv := range parts {
			if lv.static != nil {
				for _, t := range lv.static {
					t := t
					out.dyn = append(out.dyn, func(en *Engine) (rtarget, error) { return t, nil })
				}
			} else {
				out.dyn = append(out.dyn, lv.dyn...)
			}
		}
		out.static = nil
		return out, nil
	default:
		return nil, fmt.Errorf("%w: expression is not a valid lvalue", ErrElab)
	}
}

// storeNet writes n bits read from (sv, sx) starting at bit spos into net
// idx at bit offset lo, dropping bits outside the net (WriteBits semantics),
// and records the change for fanout dispatch. Defined on Engine in
// engine_compiled.go; declared here for reading order.

// --- Expressions -------------------------------------------------------------

// compileRExpr lowers e under static context width ctx (0 = self-determined).
func (c *compiler) compileRExpr(e ast.Expr, sc *scope, ctx int) (*rexpr, error) {
	switch x := e.(type) {
	case *ast.Ident:
		// Parameters shadow nets, as in the interpreter.
		if v, ok := sc.params[x.Name]; ok {
			return c.leafConst(v), nil
		}
		if n, ok := sc.lookupNet(x.Name); ok {
			idx := c.netIdx[n]
			cn := &c.d.nets[idx]
			return &rexpr{off: cn.off, nw: cn.nw, cap: int32(n.width), sw: int32(n.width), net: idx}, nil
		}
		return nil, fmt.Errorf("%w: unknown identifier %q", ErrElab, x.Name)
	case *ast.Number:
		return c.leafConst(numberValue(x)), nil
	case *ast.Unary:
		return c.compileRUnary(x, sc, ctx)
	case *ast.Binary:
		return c.compileRBinary(x, sc, ctx)
	case *ast.Ternary:
		return c.compileRTernary(x, sc, ctx)
	case *ast.Concat:
		return c.compileRConcat(x, sc)
	case *ast.Repl:
		return c.compileRRepl(x, sc)
	case *ast.Index:
		return c.compileRIndex(x, sc)
	case *ast.PartSel:
		return c.compileRPartSel(x, sc)
	default:
		return nil, fmt.Errorf("%w: unsupported expression %T", ErrElab, e)
	}
}

func (c *compiler) compileRUnary(x *ast.Unary, sc *scope, ctx int) (*rexpr, error) {
	op := x.Op
	switch op {
	case ast.UnaryPlus:
		// Identity: reuse the operand slot, only the width context extends.
		child, err := c.compileRExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		if child.run == nil {
			out := *child
			out.sw = max(child.sw, int32(ctx))
			out.cap = max(child.cap, int32(ctx))
			return &out, nil
		}
		out := &rexpr{off: child.off, nw: child.nw, cap: max(child.cap, int32(ctx)), net: -1}
		cw := int32(ctx)
		out.run = func(en *Engine) (int32, error) {
			w, err := child.run(en)
			if err != nil {
				return 0, err
			}
			return max(w, cw), nil
		}
		return out, nil
	case ast.UnaryMinus, ast.BitNot:
		child, err := c.compileRExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		out, err := c.node(int(max(child.cap, int32(ctx))))
		if err != nil {
			return nil, err
		}
		neg := op == ast.UnaryMinus
		cw := int32(ctx)
		out.run = func(en *Engine) (int32, error) {
			wc, err := child.eval(en)
			if err != nil {
				return 0, err
			}
			w := max(wc, cw)
			dv, dx := out.planes(en)
			sv, sx := child.planes(en)
			if neg {
				kneg(dv, dx, sv, sx, int(w), int(out.nw))
			} else {
				knot(dv, dx, sv, sx, int(w), int(out.nw))
			}
			return w, nil
		}
		return out, nil
	default:
		// Logical not and reductions: self-determined operand, 1-bit result.
		child, err := c.compileRExpr(x.X, sc, 0)
		if err != nil {
			return nil, err
		}
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.run = func(en *Engine) (int32, error) {
			wc, err := child.eval(en)
			if err != nil {
				return 0, err
			}
			sv, sx := child.planes(en)
			dv, dx := out.planes(en)
			var code uint8
			switch op {
			case ast.LogicalNot:
				truth, known := kbool3(sv, sx)
				switch {
				case !known:
					code = 2
				case !truth:
					code = 1
				}
			case ast.RedAnd, ast.RedNand:
				any0, anyXZ := kredAnd(sv, sx, int(wc))
				switch {
				case any0:
					code = 0
				case anyXZ:
					code = 2
				default:
					code = 1
				}
				if op == ast.RedNand && code != 2 {
					code ^= 1
				}
			case ast.RedOr, ast.RedNor:
				any1, anyXZ := kredOr(sv, sx)
				switch {
				case any1:
					code = 1
				case anyXZ:
					code = 2
				default:
					code = 0
				}
				if op == ast.RedNor && code != 2 {
					code ^= 1
				}
			case ast.RedXor, ast.RedXnor:
				parity, anyXZ := kredXor(sv, sx)
				if anyXZ {
					code = 2
				} else {
					code = uint8(parity)
					if op == ast.RedXnor {
						code ^= 1
					}
				}
			default:
				// Unknown unary op (unreachable for parsed sources): X.
				kset1(dv, dx, int(out.nw), 2)
				return 1, nil
			}
			kset1(dv, dx, int(out.nw), code)
			return 1, nil
		}
		return out, nil
	}
}

func (c *compiler) compileRBinary(x *ast.Binary, sc *scope, ctx int) (*rexpr, error) {
	op := x.Op
	switch op {
	case ast.Add, ast.Sub, ast.Mul, ast.Div, ast.Mod,
		ast.BitAnd, ast.BitOr, ast.BitXor, ast.BitXnor:
		a, err := c.compileRExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		b, err := c.compileRExpr(x.Y, sc, ctx)
		if err != nil {
			return nil, err
		}
		cap := int(max(max(a.cap, b.cap), int32(ctx)))
		out, err := c.node(cap)
		if err != nil {
			return nil, err
		}
		var aux *rexpr
		if op == ast.Div || op == ast.Mod {
			if aux, err = c.node(cap); err != nil {
				return nil, err
			}
		}
		cw := int32(ctx)
		out.run = func(en *Engine) (int32, error) {
			wa, err := a.eval(en)
			if err != nil {
				return 0, err
			}
			wb, err := b.eval(en)
			if err != nil {
				return 0, err
			}
			w := int(max(max(wa, wb), cw))
			nw := int(out.nw)
			dv, dx := out.planes(en)
			av, ax := a.planes(en)
			bv, bx := b.planes(en)
			switch op {
			case ast.Add:
				kadd(dv, dx, av, ax, bv, bx, w, nw, false)
			case ast.Sub:
				kadd(dv, dx, av, ax, bv, bx, w, nw, true)
			case ast.Mul:
				kmul(dv, dx, av, ax, bv, bx, w, nw)
			case ast.Div, ast.Mod:
				if kanyNZ(ax) || kanyNZ(bx) || !kanyNZ(bv) {
					ksetX(dv, dx, w, nw)
					break
				}
				rv, rx := aux.planes(en)
				wn := words(w)
				if op == ast.Div {
					kdivmod(dv, rv, av, bv, w)
				} else {
					kdivmod(rv, dv, av, bv, w)
				}
				for i := 0; i < wn; i++ {
					dx[i], rx[i] = 0, 0
				}
				kfinish(dv, dx, w, nw)
			case ast.BitAnd:
				kand(dv, dx, av, ax, bv, bx, w, nw)
			case ast.BitOr:
				kor(dv, dx, av, ax, bv, bx, w, nw)
			case ast.BitXor:
				kxor(dv, dx, av, ax, bv, bx, w, nw, false)
			case ast.BitXnor:
				kxor(dv, dx, av, ax, bv, bx, w, nw, true)
			}
			return int32(w), nil
		}
		return out, nil
	case ast.Shl, ast.Shr, ast.AShl, ast.AShr:
		a, err := c.compileRExpr(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		b, err := c.compileRExpr(x.Y, sc, 0) // shift amount is self-determined
		if err != nil {
			return nil, err
		}
		out, err := c.node(int(max(a.cap, int32(ctx))))
		if err != nil {
			return nil, err
		}
		right := op == ast.Shr || op == ast.AShr
		arith := op == ast.AShr
		cw := int32(ctx)
		out.run = func(en *Engine) (int32, error) {
			wa, err := a.eval(en)
			if err != nil {
				return 0, err
			}
			if _, err := b.eval(en); err != nil {
				return 0, err
			}
			w := int(max(wa, cw))
			nw := int(out.nw)
			dv, dx := out.planes(en)
			av, ax := a.planes(en)
			bv, bx := b.planes(en)
			amt, ok := kfits64(bv, bx)
			switch {
			case !ok:
				// X/Z or >64-bit amount: all-X, mirroring Shl/Shr/AShr.
				ksetX(dv, dx, w, nw)
			case amt >= uint64(w):
				kzero(dv, dx, nw)
				if arith && kbit(av, ax, w, w-1) == 1 {
					// AShr of a negative value saturates to all known ones.
					for i := 0; i < words(w); i++ {
						dv[i] = ^uint64(0)
					}
					kfinish(dv, dx, w, nw)
				}
			default:
				kshift(dv, dx, av, ax, w, nw, int(amt), right, arith)
			}
			return int32(w), nil
		}
		return out, nil
	case ast.LogAnd, ast.LogOr:
		a, err := c.compileRExpr(x.X, sc, 0)
		if err != nil {
			return nil, err
		}
		b, err := c.compileRExpr(x.Y, sc, 0)
		if err != nil {
			return nil, err
		}
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		isAnd := op == ast.LogAnd
		out.run = func(en *Engine) (int32, error) {
			if _, err := a.eval(en); err != nil {
				return 0, err
			}
			dv, dx := out.planes(en)
			av, ax := a.planes(en)
			at, ak := kbool3(av, ax)
			// Short-circuit on a deciding left operand, as the interpreter's
			// compiled predecessor did.
			if ak {
				if isAnd && !at {
					kset1(dv, dx, int(out.nw), 0)
					return 1, nil
				}
				if !isAnd && at {
					kset1(dv, dx, int(out.nw), 1)
					return 1, nil
				}
			}
			if _, err := b.eval(en); err != nil {
				return 0, err
			}
			bv, bx := b.planes(en)
			bt, bk := kbool3(bv, bx)
			var code uint8
			if isAnd {
				switch {
				case (ak && !at) || (bk && !bt):
					code = 0
				case ak && bk:
					if at && bt {
						code = 1
					}
				default:
					code = 2
				}
			} else {
				switch {
				case (ak && at) || (bk && bt):
					code = 1
				case ak && bk:
					if at || bt {
						code = 1
					}
				default:
					code = 2
				}
			}
			kset1(dv, dx, int(out.nw), code)
			return 1, nil
		}
		return out, nil
	default:
		// Comparisons: operands sized to each other, result is 1 bit.
		a, err := c.compileRExpr(x.X, sc, 0)
		if err != nil {
			return nil, err
		}
		b, err := c.compileRExpr(x.Y, sc, 0)
		if err != nil {
			return nil, err
		}
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.run = func(en *Engine) (int32, error) {
			if _, err := a.eval(en); err != nil {
				return 0, err
			}
			if _, err := b.eval(en); err != nil {
				return 0, err
			}
			dv, dx := out.planes(en)
			av, ax := a.planes(en)
			bv, bx := b.planes(en)
			var code uint8
			switch op {
			case ast.CaseEq, ast.CaseNeq:
				eq := kcaseEqual(av, ax, bv, bx)
				if eq == (op == ast.CaseEq) {
					code = 1
				}
			default:
				if kanyNZ(ax) || kanyNZ(bx) {
					code = 2
					break
				}
				cmp := kcmp(av, bv)
				var truth bool
				switch op {
				case ast.Eq:
					truth = cmp == 0
				case ast.Neq:
					truth = cmp != 0
				case ast.Lt:
					truth = cmp < 0
				case ast.Leq:
					truth = cmp <= 0
				case ast.Gt:
					truth = cmp > 0
				case ast.Geq:
					truth = cmp >= 0
				}
				if truth {
					code = 1
				}
			}
			kset1(dv, dx, int(out.nw), code)
			return 1, nil
		}
		return out, nil
	}
}

func (c *compiler) compileRTernary(x *ast.Ternary, sc *scope, ctx int) (*rexpr, error) {
	cond, err := c.compileRExpr(x.Cond, sc, 0)
	if err != nil {
		return nil, err
	}
	then, err := c.compileRExpr(x.Then, sc, ctx)
	if err != nil {
		return nil, err
	}
	els, err := c.compileRExpr(x.Else, sc, ctx)
	if err != nil {
		return nil, err
	}
	out, err := c.node(int(max(then.cap, els.cap)))
	if err != nil {
		return nil, err
	}
	out.run = func(en *Engine) (int32, error) {
		if _, err := cond.eval(en); err != nil {
			return 0, err
		}
		cv, cx := cond.planes(en)
		truth, known := kbool3(cv, cx)
		dv, dx := out.planes(en)
		if known {
			br := then
			if !truth {
				br = els
			}
			w, err := br.eval(en)
			if err != nil {
				return 0, err
			}
			sv, sx := br.planes(en)
			kcopy(dv, dx, sv, sx, int(w), int(out.nw))
			return w, nil
		}
		wt, err := then.eval(en)
		if err != nil {
			return 0, err
		}
		we, err := els.eval(en)
		if err != nil {
			return 0, err
		}
		w := max(wt, we)
		tv, tx := then.planes(en)
		ev, ex := els.planes(en)
		kmergeTernary(dv, dx, tv, tx, ev, ex, int(w), int(out.nw))
		return w, nil
	}
	return out, nil
}

func (c *compiler) compileRConcat(x *ast.Concat, sc *scope) (*rexpr, error) {
	parts := make([]*rexpr, len(x.Parts))
	capSum := 0
	for i, pe := range x.Parts {
		cp, err := c.compileRExpr(pe, sc, 0)
		if err != nil {
			return nil, err
		}
		parts[i] = cp
		capSum += int(cp.cap)
	}
	out, err := c.node(capSum)
	if err != nil {
		return nil, err
	}
	out.run = func(en *Engine) (int32, error) {
		// First pass: evaluate every part, pushing produced widths onto the
		// engine's width stack (concats nest, so use stack discipline).
		base := len(en.wstack)
		total := int32(0)
		for _, cp := range parts {
			w, err := cp.eval(en)
			if err != nil {
				en.wstack = en.wstack[:base]
				return 0, err
			}
			en.wstack = append(en.wstack, w)
			total += w
		}
		dv, dx := out.planes(en)
		kzero(dv, dx, int(out.nw))
		pos := total
		for i, cp := range parts {
			w := en.wstack[base+i]
			pos -= w
			sv, sx := cp.planes(en)
			kblit(dv, dx, int(pos), sv, sx, 0, int(w))
		}
		en.wstack = en.wstack[:base]
		return total, nil
	}
	return out, nil
}

func (c *compiler) compileRRepl(x *ast.Repl, sc *scope) (*rexpr, error) {
	cntV, isConst := constFold(x.Count, sc)
	if !isConst {
		return nil, fmt.Errorf("%w: non-constant replication count", errNoRegfile)
	}
	child, err := c.compileRExpr(x.Value, sc, 0)
	if err != nil {
		return nil, err
	}
	n, ok := cntV.Uint64()
	if !ok || n > 1<<16 {
		// Mirror the interpreter's runtime error on X or oversized counts.
		rtErr := fmt.Errorf("%w: replication count must be a small constant", ErrRuntime)
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.run = func(en *Engine) (int32, error) { return 0, rtErr }
		return out, nil
	}
	out, err := c.node(int(n) * int(child.cap))
	if err != nil {
		return nil, err
	}
	cnt := int(n)
	out.run = func(en *Engine) (int32, error) {
		wv, err := child.eval(en)
		if err != nil {
			return 0, err
		}
		dv, dx := out.planes(en)
		kzero(dv, dx, int(out.nw))
		sv, sx := child.planes(en)
		for i := 0; i < cnt; i++ {
			kblit(dv, dx, i*int(wv), sv, sx, 0, int(wv))
		}
		return int32(cnt) * wv, nil
	}
	return out, nil
}

func (c *compiler) compileRIndex(x *ast.Index, sc *scope) (*rexpr, error) {
	base, err := c.compileRExpr(x.X, sc, 0)
	if err != nil {
		return nil, err
	}
	lsb := exprBaseLSB(x.X, sc)
	cidx, err := c.compileRExpr(x.Idx, sc, 0)
	if err != nil {
		return nil, err
	}
	out, err := c.node(1)
	if err != nil {
		return nil, err
	}
	out.run = func(en *Engine) (int32, error) {
		wb, err := base.eval(en)
		if err != nil {
			return 0, err
		}
		if _, err := cidx.eval(en); err != nil {
			return 0, err
		}
		dv, dx := out.planes(en)
		iv, known := kfits64(cidx.planes(en))
		if !known {
			kset1(dv, dx, int(out.nw), 2)
			return 1, nil
		}
		lo := int(iv) - lsb
		if lo < 0 || lo >= int(wb) {
			// SliceBits reads out-of-range bits as X.
			kset1(dv, dx, int(out.nw), 2)
			return 1, nil
		}
		sv, sx := base.planes(en)
		kset1(dv, dx, int(out.nw), kbit(sv, sx, int(wb), lo))
		return 1, nil
	}
	return out, nil
}

func (c *compiler) compileRPartSel(x *ast.PartSel, sc *scope) (*rexpr, error) {
	base, err := c.compileRExpr(x.X, sc, 0)
	if err != nil {
		return nil, err
	}
	lsb := exprBaseLSB(x.X, sc)
	av, aConst := constFold(x.A, sc)
	bv, bConst := constFold(x.B, sc)
	if aConst && bConst {
		lo, w, known, rtErr := partSelBoundsVals(x.Kind, av, bv, lsb)
		if rtErr != nil {
			out, err := c.node(1)
			if err != nil {
				return nil, err
			}
			out.run = func(en *Engine) (int32, error) {
				if _, err := base.eval(en); err != nil {
					return 0, err
				}
				return 0, rtErr
			}
			return out, nil
		}
		out, err := c.node(w)
		if err != nil {
			return nil, err
		}
		out.run = func(en *Engine) (int32, error) {
			wb, err := base.eval(en)
			if err != nil {
				return 0, err
			}
			dv, dx := out.planes(en)
			if !known {
				ksetX(dv, dx, w, int(out.nw))
				return int32(w), nil
			}
			sv, sx := base.planes(en)
			kslice(dv, dx, w, int(out.nw), sv, sx, int(wb), lo)
			return int32(w), nil
		}
		return out, nil
	}
	// Indexed part-selects with constant width stay static-width; everything
	// else is dynamically sized and falls back to the boxed path.
	if x.Kind == ast.SelConst || !bConst {
		return nil, fmt.Errorf("%w: dynamic part-select bounds", errNoRegfile)
	}
	wv, okw := bv.Uint64()
	if !okw || wv == 0 {
		rtErr := fmt.Errorf("%w: indexed part-select width must be a positive constant", ErrRuntime)
		out, err := c.node(1)
		if err != nil {
			return nil, err
		}
		out.run = func(en *Engine) (int32, error) {
			if _, err := base.eval(en); err != nil {
				return 0, err
			}
			return 0, rtErr
		}
		return out, nil
	}
	ca, err := c.compileRExpr(x.A, sc, 0)
	if err != nil {
		return nil, err
	}
	w := int(wv)
	minus := x.Kind == ast.SelMinus
	out, err := c.node(w)
	if err != nil {
		return nil, err
	}
	out.run = func(en *Engine) (int32, error) {
		wb, err := base.eval(en)
		if err != nil {
			return 0, err
		}
		if _, err := ca.eval(en); err != nil {
			return 0, err
		}
		dv, dx := out.planes(en)
		baseV, known := kfits64(ca.planes(en))
		if !known {
			ksetX(dv, dx, w, int(out.nw))
			return int32(w), nil
		}
		lo := int(baseV) - lsb
		if minus {
			lo = int(baseV) - w + 1 - lsb
		}
		sv, sx := base.planes(en)
		kslice(dv, dx, w, int(out.nw), sv, sx, int(wb), lo)
		return int32(w), nil
	}
	return out, nil
}
