package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/verilog/parser"
)

// kernelWidths are the word-boundary widths every kernel must survive: a
// single bit, one bit below/at/above the 64-bit word boundary, and a full
// two-word vector.
var kernelWidths = []int{1, 63, 64, 65, 128}

// threeWay elaborates one source on the interpreter, the PR-1 boxed
// compiler, and the register-file compiler, and replays identical stimulus
// on all three, requiring bit-exact four-state agreement on every output
// after every step. It is the backbone of the width tests below and of the
// random differential harness.
type threeWay struct {
	src     string
	interp  *Simulator
	regfile *Engine
	boxed   *Engine
}

// compileForTest lowers src with the chosen strategy (forceBoxed drops every
// process to the PR-1 boxed path).
func compileForTest(t *testing.T, src, top string, forceBoxed bool) *Design {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	s, err := New(parsed, top)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, src)
	}
	d, err := compileFrom(s, forceBoxed, nil)
	if err != nil {
		t.Fatalf("compile(forceBoxed=%v): %v\n%s", forceBoxed, err, src)
	}
	return d
}

func newThreeWay(t *testing.T, src, top string) *threeWay {
	t.Helper()
	parsed, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	interp, err := New(parsed, top)
	if err != nil {
		t.Fatalf("interpreter elaborate: %v\n%s", err, src)
	}
	return &threeWay{
		src:     src,
		interp:  interp,
		regfile: compileForTest(t, src, top, false).NewEngine(),
		boxed:   compileForTest(t, src, top, true).NewEngine(),
	}
}

func (tw *threeWay) instances() []struct {
	name string
	ins  Instance
} {
	return []struct {
		name string
		ins  Instance
	}{
		{"interpreter", tw.interp},
		{"regfile", tw.regfile},
		{"boxed", tw.boxed},
	}
}

func (tw *threeWay) drive(t *testing.T, name string, v Value) {
	t.Helper()
	for _, b := range tw.instances() {
		if err := b.ins.SetInput(name, v); err != nil {
			t.Fatalf("%s SetInput(%s): %v", b.name, name, err)
		}
	}
}

func (tw *threeWay) settle(t *testing.T) {
	t.Helper()
	var firstErr error
	for i, b := range tw.instances() {
		err := b.ins.Settle()
		if i == 0 {
			firstErr = err
		} else if (err == nil) != (firstErr == nil) {
			t.Fatalf("settle divergence: interpreter=%v %s=%v\n%s", firstErr, b.name, err, tw.src)
		}
	}
	if firstErr != nil {
		t.Fatalf("settle: %v\n%s", firstErr, tw.src)
	}
}

func (tw *threeWay) tick(t *testing.T, clock string) {
	t.Helper()
	var firstErr error
	for i, b := range tw.instances() {
		err := b.ins.Tick(clock)
		if i == 0 {
			firstErr = err
		} else if (err == nil) != (firstErr == nil) {
			t.Fatalf("tick divergence: interpreter=%v %s=%v\n%s", firstErr, b.name, err, tw.src)
		}
	}
	if firstErr != nil {
		t.Fatalf("tick: %v\n%s", firstErr, tw.src)
	}
}

func (tw *threeWay) compare(t *testing.T, label string) {
	t.Helper()
	for _, out := range tw.interp.Outputs() {
		ref, err := tw.interp.Output(out.Name)
		if err != nil {
			t.Fatalf("interpreter Output(%s): %v", out.Name, err)
		}
		want := ref.String()
		for _, b := range tw.instances()[1:] {
			got, err := b.ins.Output(out.Name)
			if err != nil {
				t.Fatalf("%s Output(%s): %v", b.name, out.Name, err)
			}
			if got.String() != want {
				t.Fatalf("%s: output %s diverges on %s: interpreter=%s got=%s\n%s",
					label, out.Name, b.name, want, got, tw.src)
			}
		}
	}
}

// kernelTemplate produces one width-parameterized module exercising a
// kernel family. Inputs are always a and b of the given width (plus clk for
// sequential templates).
type kernelTemplate struct {
	name string
	seq  bool
	src  func(w int) string
}

func kernelTemplates() []kernelTemplate {
	comb := func(name, body string) kernelTemplate {
		return kernelTemplate{name: name, src: func(w int) string {
			return fmt.Sprintf(`
module top_module (
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output [%[1]d:0] y
);
    %[2]s
endmodule
`, w-1, body)
		}}
	}
	return []kernelTemplate{
		comb("add", "assign y = a + b;"),
		comb("sub", "assign y = a - b;"),
		comb("mul", "assign y = a * b;"),
		comb("div", "assign y = a / ((b == 0) ? {a, 1'b1} : b);"),
		comb("mod", "assign y = a % ((b == 0) ? {a, 1'b1} : b);"),
		comb("divzero", "assign y = a / b;"),
		comb("neg_not", "assign y = (-a) ^ (~b);"),
		comb("bitops", "assign y = (a & b) | (a ^ b) | (a ~^ b);"),
		comb("shl_dyn", "assign y = a << b[7:0];"),
		comb("shr_dyn", "assign y = a >> b[7:0];"),
		comb("ashr_dyn", "assign y = a >>> b[7:0];"),
		comb("shl_wide_amount", "assign y = a << b;"),
		comb("compare", "assign y = {a < b, a <= b, a > b, a >= b, a == b, a != b, a === b, a !== b};"),
		comb("logical", "assign y = {a && b, a || b, !a};"),
		comb("reduce", "assign y = {&a, |a, ^a, ~&a, ~|a, ~^a};"),
		comb("ternary", "assign y = b[0] ? a + b : a - b;"),
		comb("concat_swap", "assign y = {a, b} >> b[6:0];"),
		{name: "repl", src: func(w int) string {
			return fmt.Sprintf(`
module top_module (
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output [%[2]d:0] y
);
    assign y = {%[3]d{a[1:0]}};
endmodule
`, w-1, 2*w-1, w)
		}},
		{name: "partsel_const", src: func(w int) string {
			hi := w - 1
			lo := w / 2
			return fmt.Sprintf(`
module top_module (
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output [%[2]d:0] y
);
    assign y = a[%[3]d:%[4]d] ^ b[%[3]d:%[4]d];
endmodule
`, w-1, hi-lo, hi, lo)
		}},
		{name: "index_dyn", src: func(w int) string {
			return fmt.Sprintf(`
module top_module (
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output y
);
    assign y = a[b[7:0]];
endmodule
`, w-1)
		}},
		{name: "partsel_indexed", src: func(w int) string {
			take := w
			if take > 8 {
				take = 8
			}
			return fmt.Sprintf(`
module top_module (
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output [%[2]d:0] y,
    output [%[2]d:0] z
);
    assign y = a[b[6:0] +: %[3]d];
    assign z = a[b[6:0] -: %[3]d];
endmodule
`, w-1, take-1, take)
		}},
		{name: "lvalue_slices", seq: true, src: func(w int) string {
			hi := w - 1
			mid := w / 2
			return fmt.Sprintf(`
module top_module (
    input clk,
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output reg [%[1]d:0] y,
    output reg [%[1]d:0] z
);
    always @(posedge clk) begin
        y[%[2]d:%[3]d] <= a[%[2]d:%[3]d] + b[%[2]d:%[3]d];
        y[0] <= a[0] ^ b[0];
        z <= {y[%[3]d +: 1], y[%[1]d:1]};
    end
endmodule
`, hi, hi, mid)
		}},
		{name: "self_move", seq: true, src: func(w int) string {
			hi := w - 1
			mid := w / 2
			return fmt.Sprintf(`
module top_module (
    input clk,
    input [%[1]d:0] a,
    input [%[1]d:0] b,
    output reg [%[1]d:0] y
);
    always @(posedge clk) begin
        y = y ^ a;
        y[%[2]d:%[3]d] = y[%[2]d-%[3]d:0];
        y = y + b;
    end
endmodule
`, hi, hi, mid)
		}},
	}
}

// TestKernelWidthBoundaries runs every kernel family at every boundary
// width through all three engines under known and four-state stimulus.
func TestKernelWidthBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for _, tmpl := range kernelTemplates() {
		for _, w := range kernelWidths {
			if tmpl.seq && w == 1 {
				continue // the slice-shuffling sequential templates need ≥ 2 bits
			}
			label := fmt.Sprintf("%s/w%d", tmpl.name, w)
			src := tmpl.src(w)
			tw := newThreeWay(t, src, "top_module")
			if n := tw.regfile.Design().BoxedProcs(); n != 0 {
				t.Errorf("%s: %d processes fell back to the boxed path", label, n)
			}
			if tmpl.seq {
				tw.drive(t, "clk", NewKnown(1, 0))
			}
			step := func(av, bv Value, vec string) {
				tw.drive(t, "a", av)
				tw.drive(t, "b", bv)
				if tmpl.seq {
					tw.tick(t, "clk")
				} else {
					tw.settle(t)
				}
				tw.compare(t, label+"/"+vec)
			}
			// Corners: zero, all-ones, one-hot at word boundaries.
			ones := Not(NewKnown(w, 0))
			step(NewKnown(w, 0), NewKnown(w, 0), "zero")
			step(ones, ones, "ones")
			step(ones, NewKnown(w, 1), "ones_one")
			for _, bit := range []int{0, w / 2, w - 1} {
				oneHot := NewKnown(w, 0)
				oneHot.setBit(bit, '1')
				step(oneHot, ones, fmt.Sprintf("hot%d", bit))
			}
			// Random known vectors.
			for vec := 0; vec < 8; vec++ {
				step(randFourState(rng, w, 0), randFourState(rng, w, 0), fmt.Sprintf("rand%d", vec))
			}
			// Four-state vectors.
			for vec := 0; vec < 6; vec++ {
				step(randFourState(rng, w, 0.25), randFourState(rng, w, 0.25), fmt.Sprintf("xz%d", vec))
			}
		}
	}
}

// soaLaneCounts are the gang widths every strided SoA kernel family must
// survive: a degenerate single lane, the smallest true gang, and the default
// ranking gang width.
var soaLaneCounts = []int{1, 2, 8}

// TestSoAKernelWidthLanes runs every kernel family at every boundary width
// through a shared-plane SoA gang at several lane counts, with DISTINCT
// per-lane stimulus, and requires each lane to agree bit-exactly with a solo
// engine fed the same values. Distinct stimulus is the point: a strided
// kernel that reads or writes a neighboring lane's words produces identical
// lanes under broadcast stimulus and would pass trivially; here any
// cross-lane smear diverges from the solo referee immediately.
func TestSoAKernelWidthLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, tmpl := range kernelTemplates() {
		for _, w := range kernelWidths {
			if tmpl.seq && w == 1 {
				continue // the slice-shuffling sequential templates need ≥ 2 bits
			}
			src := tmpl.src(w)
			d := compileForTest(t, src, "top_module", false)
			for _, lanes := range soaLaneCounts {
				label := fmt.Sprintf("%s/w%d/lanes%d", tmpl.name, w, lanes)
				g := NewSoAGang(lanes, nil)
				// Identical lanes would dedup to one leader; this test wants
				// every lane walked by the gang kernels, so force execution.
				g.dedup = false
				for l := 0; l < lanes; l++ {
					g.AddLane(d, nil, -1, nil, nil)
				}
				g.BeginCase() // seals the layout and resets every lane
				for l := 0; l < lanes; l++ {
					for k, c := range g.lanes[l].class {
						// Sharing needs at least two lanes in a class; a
						// single-lane gang legitimately runs everything solo.
						if c < 0 && lanes > 1 {
							t.Fatalf("%s: lane %d process %d did not lower to the gang program", label, l, k)
						}
					}
				}
				solo := make([]*Engine, lanes)
				for l := range solo {
					solo[l] = d.NewEngine()
				}

				drive := func(l int, name string, v Value) {
					if err := g.run.engines[l].SetInput(name, v); err != nil {
						t.Fatalf("%s: gang lane %d SetInput(%s): %v", label, l, name, err)
					}
					if err := solo[l].SetInput(name, v); err != nil {
						t.Fatalf("%s: solo lane %d SetInput(%s): %v", label, l, name, err)
					}
				}
				settle := func(vec string) {
					g.settleAll()
					for l := 0; l < lanes; l++ {
						serr := solo[l].Settle()
						gerr := g.run.laneErr[l]
						if (serr == nil) != (gerr == nil) ||
							(serr != nil && serr.Error() != gerr.Error()) {
							t.Fatalf("%s/%s: lane %d settle divergence: solo=%v gang=%v", label, vec, l, serr, gerr)
						}
					}
				}
				compare := func(vec string) {
					for l := 0; l < lanes; l++ {
						for _, out := range []string{"y", "z"} {
							want, err := solo[l].Output(out)
							if err != nil {
								continue // template has no such output
							}
							got, err := g.run.engines[l].Output(out)
							if err != nil {
								t.Fatalf("%s/%s: gang lane %d Output(%s): %v", label, vec, l, out, err)
							}
							if got.String() != want.String() {
								t.Fatalf("%s/%s: lane %d output %s diverges: solo=%s gang=%s\n%s",
									label, vec, l, out, want, got, src)
							}
						}
					}
				}
				step := func(vals func(l int) (Value, Value), vec string) {
					for l := 0; l < lanes; l++ {
						av, bv := vals(l)
						drive(l, "a", av)
						drive(l, "b", bv)
					}
					if tmpl.seq {
						for l := 0; l < lanes; l++ {
							drive(l, "clk", NewKnown(1, 1))
						}
						settle(vec)
						for l := 0; l < lanes; l++ {
							if g.run.laneErr[l] == nil {
								drive(l, "clk", NewKnown(1, 0))
							}
						}
						settle(vec)
					} else {
						settle(vec)
					}
					compare(vec)
				}
				if tmpl.seq {
					for l := 0; l < lanes; l++ {
						drive(l, "clk", NewKnown(1, 0))
					}
				}
				// Corners, rotated so neighboring lanes always differ.
				ones := Not(NewKnown(w, 0))
				step(func(l int) (Value, Value) {
					if l%2 == 0 {
						return NewKnown(w, 0), ones
					}
					return ones, NewKnown(w, uint64(l))
				}, "corners")
				for _, bit := range []int{0, w / 2, w - 1} {
					step(func(l int) (Value, Value) {
						oneHot := NewKnown(w, 0)
						oneHot.setBit((bit+l)%w, '1')
						return oneHot, ones
					}, fmt.Sprintf("hot%d", bit))
				}
				// Random known and four-state vectors, fresh per lane.
				for vec := 0; vec < 4; vec++ {
					step(func(l int) (Value, Value) {
						return randFourState(rng, w, 0), randFourState(rng, w, 0)
					}, fmt.Sprintf("rand%d", vec))
				}
				for vec := 0; vec < 4; vec++ {
					step(func(l int) (Value, Value) {
						return randFourState(rng, w, 0.25), randFourState(rng, w, 0.25)
					}, fmt.Sprintf("xz%d", vec))
				}
			}
		}
	}
}

// TestKernelWidthBoundariesBoxedFallback pins the fallback boundary: a
// dynamic [a:b] part-select cannot be statically sized, must lower via the
// boxed path, and must still agree with the interpreter.
func TestKernelWidthBoundariesBoxedFallback(t *testing.T) {
	src := `
module top_module (
    input [63:0] a,
    input [7:0] b,
    output [63:0] y
);
    wire [7:0] hi = b[2:0] + 8'd7;
    assign y = a[hi:b[2:0]];
endmodule
`
	tw := newThreeWay(t, src, "top_module")
	if n := tw.regfile.Design().BoxedProcs(); n == 0 {
		t.Fatalf("dynamic [a:b] part-select should use the boxed fallback")
	}
	rng := rand.New(rand.NewSource(7))
	for vec := 0; vec < 12; vec++ {
		tw.drive(t, "a", randFourState(rng, 64, 0.1))
		tw.drive(t, "b", NewKnown(8, rng.Uint64()))
		tw.settle(t)
		tw.compare(t, fmt.Sprintf("vec%d", vec))
	}
}

// TestRegfileCoverageOnGoldens asserts the register-file path carries the
// real workload: every golden design in the width templates compiles with
// zero boxed processes (the eval suite equivalent lives in internal/eval's
// trace tests, which would fail loudly on semantic drift).
func TestRegfileCoverageOnGoldens(t *testing.T) {
	var boxed, procs int
	for _, tmpl := range kernelTemplates() {
		src := tmpl.src(64)
		d := compileForTest(t, src, "top_module", false)
		boxed += d.BoxedProcs()
		procs += len(d.procs)
	}
	if boxed != 0 {
		t.Fatalf("%d of %d template processes fell back to the boxed path", boxed, procs)
	}
}

// TestConcatLValueIndexReadsOldValue pins the lvalue resolution order: all
// targets of a concat lvalue resolve before any store, so an index
// expression in a later part reads the value from before the assignment
// even when an earlier part writes that index net ({i, a[i]} = ...).
func TestConcatLValueIndexReadsOldValue(t *testing.T) {
	src := `
module top_module (
    input [7:0] x,
    output reg [2:0] i,
    output reg [7:0] a
);
    always @(*) begin
        a = 8'd0;
        i = x[6:4];
        {i, a[i]} = {x[2:0], x[3]};
    end
endmodule
`
	tw := newThreeWay(t, src, "top_module")
	rng := rand.New(rand.NewSource(31))
	for vec := 0; vec < 16; vec++ {
		tw.drive(t, "x", NewKnown(8, rng.Uint64()))
		tw.settle(t)
		tw.compare(t, fmt.Sprintf("vec%d", vec))
	}
}

// TestPooledEngineSurvivesProcessError guards the engine pool against
// scheduler poisoning: a run that errors mid-batch (leaving unprocessed
// processes flagged as queued) must not suppress those processes after the
// engine is released and reacquired.
func TestPooledEngineSurvivesProcessError(t *testing.T) {
	src := `
module top_module (
    input [7:0] x,
    output [7:0] z
);
    reg [7:0] tr;
    integer j;
    always @(*) begin
        tr = x;
        if (x[7])
            for (j = 0; j < 100000; j = j + 1)
                tr = tr + 8'd1;
    end
    assign z = x ^ 8'h55;
endmodule
`
	d := compileForTest(t, src, "top_module", false)
	en := d.AcquireEngine()
	if err := en.SetInputUint("x", 0x80); err != nil {
		t.Fatal(err)
	}
	if err := en.Settle(); err == nil {
		t.Fatal("expected a loop-limit error with x[7] set")
	}
	d.ReleaseEngine(en)

	en2 := d.AcquireEngine()
	defer d.ReleaseEngine(en2)
	if err := en2.SetInputUint("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := en2.Settle(); err != nil {
		t.Fatalf("recycled engine failed a clean run: %v", err)
	}
	z, err := en2.Output("z")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := z.Uint64(); !ok || u != 1^0x55 {
		t.Fatalf("recycled engine suppressed a process: z = %s, want 8'd%d", z, 1^0x55)
	}
}

// TestBoxedFallbackRollsBackFrameSpace guards the fallback path's frame
// hygiene: the scratch/constant words a failed register-file attempt
// allocated must be rolled back, so a process that drops to the boxed path
// costs the same frame space as compiling it boxed outright.
func TestBoxedFallbackRollsBackFrameSpace(t *testing.T) {
	src := `
module top_module (
    input [63:0] a,
    input [7:0] b,
    output [63:0] y
);
    wire [63:0] big = (a * a) + {8{b}} + 64'hFFFF_FFFF_FFFF_FFFF;
    assign y = big[b[2:0] + 8'd7:b[2:0]];
endmodule
`
	mixed := compileForTest(t, src, "top_module", false)
	boxed := compileForTest(t, src, "top_module", true)
	if mixed.BoxedProcs() == 0 {
		t.Fatal("expected the dynamic [a:b] select to use the boxed fallback")
	}
	// The failed regfile attempt on the y-process must not leave dead words
	// behind: its frame may exceed the all-boxed frame only by the scratch
	// of processes that DID lower to the register file (the `big` assign).
	if mixed.FrameWords() > boxed.FrameWords()+words(64)*16 {
		t.Fatalf("fallback leaked frame space: mixed=%d words, all-boxed=%d words",
			mixed.FrameWords(), boxed.FrameWords())
	}
}

// TestHugeDynamicLValueOffsetDropsWrite pins WriteBits drop semantics for
// dynamic lvalue offsets beyond 2^32: the store offset must not be
// truncated to 32 bits (which would wrap a far out-of-range write back
// into range), matching the interpreter's resolveLValue exactly.
func TestHugeDynamicLValueOffsetDropsWrite(t *testing.T) {
	src := `
module top_module (
    input [32:0] i,
    input [1:0] x,
    output reg [7:0] y
);
    always @(*) begin
        y = 8'h00;
        y[i +: 2] = x;
        y[i] = x[0];
    end
endmodule
`
	tw := newThreeWay(t, src, "top_module")
	for _, iv := range []uint64{0, 3, 6, 1 << 32, 1<<32 | 2, (1 << 33) - 1} {
		tw.drive(t, "i", NewKnown(33, iv))
		tw.drive(t, "x", NewKnown(2, 3))
		tw.settle(t)
		tw.compare(t, fmt.Sprintf("i=%d", iv))
	}
}

// TestEngineErrorsMatchInterpreter pins the stimulus-API error contract on
// the compiled engine: SetInputUint must reject unknown names and non-input
// nets exactly like the interpreter (TestErrorsAPI), so a candidate whose
// clock is not actually an input fails identically on both backends.
func TestEngineErrorsMatchInterpreter(t *testing.T) {
	src := `
module top_module (
    input a,
    output y
);
    assign y = a;
endmodule
`
	en := compileForTest(t, src, "top_module", false).NewEngine()
	if err := en.SetInputUint("ghost", 1); !errors.Is(err, ErrUnknownNet) {
		t.Errorf("SetInputUint unknown: %v", err)
	}
	if err := en.SetInputUint("y", 1); !errors.Is(err, ErrNotInput) {
		t.Errorf("SetInputUint on output: %v", err)
	}
	if err := en.SetInput("y", NewKnown(1, 1)); !errors.Is(err, ErrNotInput) {
		t.Errorf("SetInput on output: %v", err)
	}
	if err := en.Tick("y"); !errors.Is(err, ErrNotInput) {
		t.Errorf("Tick on output: %v", err)
	}
	if _, err := en.Output("ghost"); !errors.Is(err, ErrUnknownNet) {
		t.Errorf("Output unknown: %v", err)
	}
}
