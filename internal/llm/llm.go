// Package llm defines the client interface the VFocus pipeline talks to and
// provides a simulated reasoning LLM behind it.
//
// The paper drives three hosted reasoning models (Deepseek-R1, o3-mini,
// QwQ-32B) over HTTP APIs. Offline, this package substitutes a mechanistic
// simulator: each model profile samples a reasoning-trace length and emits a
// real Verilog candidate whose correctness probability follows that model's
// empirical pass-rate-versus-length curve (the shapes of the paper's
// Fig. 3). Incorrect candidates are materialized by semantically mutating
// the task's hidden golden design — so candidates genuinely differ in
// simulated behavior, and everything downstream (filtering, clustering,
// refinement, verification) runs the same code path it would with a live
// model. The pipeline only ever sees the Client interface.
package llm

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/testbench"
)

// Sentinel errors returned by clients.
var (
	// ErrTransient marks a retryable failure (rate limit, network); the
	// pipeline's retry-with-backoff handles it.
	ErrTransient = errors.New("transient llm error")
	// ErrUnknownTask is returned for task IDs outside the benchmark.
	ErrUnknownTask = errors.New("unknown task")
	// ErrUnknownModel is returned for unrecognized model names.
	ErrUnknownModel = errors.New("unknown model")
)

// GenerateRequest asks for one Verilog candidate.
type GenerateRequest struct {
	// TaskID identifies the problem.
	TaskID string
	// Spec is the natural-language module specification.
	Spec string
	// Guidelines carries the prompt-engineering text (general tips and
	// typical-mistake warnings per the paper's pre-ranking stage).
	Guidelines string
	// SampleIndex distinguishes repeated samples of the same task; with
	// Attempt it makes generation deterministic for a fixed client seed.
	SampleIndex int
	// Attempt counts syntax retries (0 for the first try).
	Attempt int
}

// Response is one model completion.
type Response struct {
	// Code is the Verilog source text.
	Code string
	// Reasoning is the reasoning trace ("" when the model omitted it).
	Reasoning string
	// ReasoningTokens is the trace length in tokens (0 when missing).
	ReasoningTokens int
}

// RefineRequest asks the model to reconcile two candidate implementations
// (the paper's intra-cluster and fallback inter-cluster refinement).
type RefineRequest struct {
	TaskID string
	Spec   string
	// CandidateA and CandidateB are the two implementations to reconcile.
	CandidateA string
	CandidateB string
	// FocusHint describes a concrete behavioral divergence (test inputs and
	// conflicting outputs); non-empty hints sharpen the model's attention
	// and raise refinement quality.
	FocusHint string
	// SampleIndex deduplicates repeated refinement calls deterministically.
	SampleIndex int
}

// JudgeRequest asks the model to reason out the expected outputs for one
// concrete test case (inter-cluster refinement on simple-description tasks).
type JudgeRequest struct {
	TaskID string
	Spec   string
	// Case is the stimulus whose expected response is in question.
	Case testbench.Case
	// SampleIndex deduplicates repeated judge calls deterministically.
	SampleIndex int
}

// JudgeResponse carries the model's predicted outputs for the case.
type JudgeResponse struct {
	// Predicted is the model's claimed output trace for the case.
	Predicted *testbench.CaseTrace
}

// Client is the model API used by the pipeline. Implementations must be
// deterministic for a fixed construction seed and request contents.
type Client interface {
	// ModelName identifies the underlying model.
	ModelName() string
	// Generate produces one candidate completion.
	Generate(ctx context.Context, req GenerateRequest) (Response, error)
	// Refine produces an improved candidate from two references.
	Refine(ctx context.Context, req RefineRequest) (Response, error)
	// JudgeOutput predicts expected outputs for one test case.
	JudgeOutput(ctx context.Context, req JudgeRequest) (JudgeResponse, error)
}

// CurveKind selects the pass-rate-versus-reasoning-length shape observed in
// the paper's Fig. 3.
type CurveKind int

// Curve kinds.
const (
	// CurveMonotone: pass rate decreases as reasoning grows (Deepseek-R1,
	// Fig. 3a).
	CurveMonotone CurveKind = iota + 1
	// CurveInvertedU: both very short and very long reasoning hurt
	// (o3-mini-high, QwQ-32B; Fig. 3b/3c).
	CurveInvertedU
	// CurveFlat: no usable length signal (o3-mini-medium, Fig. 3d — the
	// model's imposed token limit destroys the correlation).
	CurveFlat
)

// Profile parameterizes one simulated model.
type Profile struct {
	// Name is the model identifier, e.g. "deepseek-r1".
	Name string
	// TCMB and TSEQ are the solvability thresholds for combinational and
	// sequential tasks: a task of difficulty d is solvable to base
	// probability PMax·σ((T−d)/Tau). Steep Tau makes per-task correctness
	// bimodal, matching the small pass@2−pass@1 gaps in the paper.
	TCMB, TSEQ float64
	// Tau is the logistic width of the solvability transition.
	Tau float64
	// PMax caps per-sample correctness (residual noise floor).
	PMax float64
	// DiffScale scales difficulty into refinement/judging penalties.
	DiffScale float64
	// Curve shapes the length modulation.
	Curve CurveKind
	// PInvalid is the per-sample probability of syntactically broken
	// output (exercises the paper's retry mechanism).
	PInvalid float64
	// PNoTrace is the probability the reasoning trace is missing.
	PNoTrace float64
	// PTransient is the probability of a retryable API error.
	PTransient float64
	// RefineSkill in [0,1] scales refinement success.
	RefineSkill float64
	// JudgeSkill in [0,1] scales output-judging accuracy on
	// simple-description tasks.
	JudgeSkill float64
	// TokenBase and TokenSpan set the reasoning-token scale: a sample at
	// latent length-percentile u spends about
	// difficulty*(TokenBase + u*TokenSpan) tokens.
	TokenBase int
	TokenSpan int
	// MaxBugs bounds semantic mutations per incorrect candidate.
	MaxBugs int
	// CanonicalProb is the chance an incorrect candidate reproduces the
	// task's "common misconception" bug instead of an idiosyncratic one —
	// this is what lets wrong candidates agree and form large wrong
	// clusters, the failure mode VRank inherits.
	CanonicalProb float64
}

// Profiles returns the four simulated models used across the paper's
// experiments, keyed by name.
func Profiles() map[string]Profile {
	ps := []Profile{
		{
			Name:          "deepseek-r1",
			TCMB:          0.435,
			TSEQ:          0.41,
			Tau:           0.08,
			PMax:          0.985,
			DiffScale:     1.12,
			Curve:         CurveMonotone,
			PInvalid:      0.02,
			PNoTrace:      0.01,
			PTransient:    0.01,
			RefineSkill:   0.72,
			JudgeSkill:    0.88,
			TokenBase:     900,
			TokenSpan:     5200,
			MaxBugs:       3,
			CanonicalProb: 0.50,
		},
		{
			Name:          "o3-mini-high",
			TCMB:          0.355,
			TSEQ:          0.385,
			Tau:           0.08,
			PMax:          0.98,
			DiffScale:     1.18,
			Curve:         CurveInvertedU,
			PInvalid:      0.01,
			PNoTrace:      0.02,
			PTransient:    0.01,
			RefineSkill:   0.70,
			JudgeSkill:    0.86,
			TokenBase:     700,
			TokenSpan:     3800,
			MaxBugs:       3,
			CanonicalProb: 0.60,
		},
		{
			Name:          "qwq-32b",
			TCMB:          0.33,
			TSEQ:          0.25,
			Tau:           0.09,
			PMax:          0.97,
			DiffScale:     1.62,
			Curve:         CurveInvertedU,
			PInvalid:      0.06,
			PNoTrace:      0.03,
			PTransient:    0.02,
			RefineSkill:   0.55,
			JudgeSkill:    0.74,
			TokenBase:     1200,
			TokenSpan:     7800,
			MaxBugs:       3,
			CanonicalProb: 0.45,
		},
		{
			Name:          "o3-mini-medium",
			TCMB:          0.38,
			TSEQ:          0.40,
			Tau:           0.08,
			PMax:          0.98,
			DiffScale:     1.30,
			Curve:         CurveFlat,
			PInvalid:      0.02,
			PNoTrace:      0.10,
			PTransient:    0.01,
			RefineSkill:   0.60,
			JudgeSkill:    0.80,
			TokenBase:     500,
			TokenSpan:     1400,
			MaxBugs:       2,
			CanonicalProb: 0.42,
		},
	}
	out := make(map[string]Profile, len(ps))
	for _, p := range ps {
		out[p.Name] = p
	}
	return out
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return p, nil
}

// LengthShift is the reasoning-length modulation s(u) for a latent length
// percentile u in [0,1], expressed in *difficulty units* added to the
// solvability margin. Shapes mirror Fig. 3:
//   - monotone: best when short, degrading as reasoning grows (underthinking
//     models keep rambling past the solution);
//   - inverted-U: negligently short *and* overthought traces both hurt, with
//     the sweet spot around the 35th percentile;
//   - flat: no signal.
//
// Because the shift enters the logistic margin, tasks well inside a model's
// capability barely feel it (their per-task correctness stays near PMax,
// matching the paper's small pass@2−pass@1 gaps), while *marginal* tasks
// swing strongly with reasoning length — which is exactly where
// Density-guided Filtering buys accuracy.
func LengthShift(curve CurveKind, u float64) float64 {
	switch curve {
	case CurveMonotone:
		return 0.05 - 0.22*u
	case CurveInvertedU:
		const peakU, peak = 0.35, 0.05
		if u < peakU {
			d := peakU - u
			return peak - 1.4*d*d
		}
		d := u - peakU
		return peak - 0.60*d*d
	default:
		return 0
	}
}

// logistic is the standard sigmoid.
func logistic(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// PassProbability returns the simulated probability that a sample drawn at
// latent length-percentile u solves a task of the given difficulty and
// category: PMax·σ((T − d + s(u))/τ). The steep logistic makes per-task
// correctness bimodal — most tasks are either within or beyond a model's
// capability — while the length shift s(u) moves marginal tasks across the
// boundary. Exposed for calibration tests and the experiment harness.
func (p Profile) PassProbability(cat eval.Category, difficulty, u float64) float64 {
	t := p.TCMB
	if cat == eval.Sequential {
		t = p.TSEQ
	}
	tau := p.Tau
	if tau <= 0 {
		tau = 0.12
	}
	v := p.PMax * logistic((t-difficulty+LengthShift(p.Curve, u))/tau)
	if v < 0.01 {
		return 0.01
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}

// ReasoningTokens maps a latent percentile and difficulty to a token count.
func (p Profile) ReasoningTokens(difficulty, u float64) int {
	scale := 0.35 + difficulty
	n := int(scale * (float64(p.TokenBase) + u*float64(p.TokenSpan)))
	if n < 16 {
		n = 16
	}
	return n
}
