package llm_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/llm/contracts"
)

// TestSimClientContract holds the deterministic simulated backend to the
// shared llm.Client contract. SimClient has no wire, breaker, or limiter,
// so those drills skip; determinism, cancellation, error identity, and the
// stampede result-consistency checks all apply.
func TestSimClientContract(t *testing.T) {
	contracts.Run(t, contracts.Harness{
		NewClient: func(t *testing.T, seed int64) llm.Client {
			profile, err := llm.ProfileByName("deepseek-r1")
			if err != nil {
				t.Fatal(err)
			}
			c, err := llm.NewSimClient(profile, seed, eval.Suite()[:1])
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	})
}
