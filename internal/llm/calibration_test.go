package llm

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/sem"
)

// TestEmpiricalValidityRateMatchesProfile: over many samples, the observed
// invalid-output rate must track the profile's PInvalid within binomial
// noise.
func TestEmpiricalValidityRateMatchesProfile(t *testing.T) {
	tasks := eval.Suite()[:12]
	profile := Profiles()["qwq-32b"] // highest PInvalid: best signal
	client, err := NewSimClient(profile, 41, tasks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	invalid, total := 0, 0
	for _, task := range tasks {
		for i := 0; i < 40; i++ {
			resp, gerr := client.Generate(ctx, GenerateRequest{TaskID: task.ID, SampleIndex: i})
			if gerr != nil {
				if errors.Is(gerr, ErrTransient) {
					continue
				}
				t.Fatal(gerr)
			}
			total++
			src, perr := parser.Parse(resp.Code)
			bad := perr != nil
			if !bad {
				bad = sem.Check(src).HasErrors()
			}
			if bad {
				invalid++
			}
		}
	}
	rate := float64(invalid) / float64(total)
	// 3-sigma binomial band around PInvalid.
	sigma := math.Sqrt(profile.PInvalid * (1 - profile.PInvalid) / float64(total))
	if math.Abs(rate-profile.PInvalid) > 3*sigma+0.01 {
		t.Errorf("invalid rate %.3f deviates from PInvalid %.3f (n=%d)", rate, profile.PInvalid, total)
	}
}

// TestEmpiricalNoTraceRateMatchesProfile mirrors the validity test for
// missing reasoning traces.
func TestEmpiricalNoTraceRateMatchesProfile(t *testing.T) {
	tasks := eval.Suite()[:12]
	profile := Profiles()["o3-mini-medium"] // highest PNoTrace
	client, err := NewSimClient(profile, 43, tasks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	missing, total := 0, 0
	for _, task := range tasks {
		for i := 0; i < 40; i++ {
			resp, gerr := client.Generate(ctx, GenerateRequest{TaskID: task.ID, SampleIndex: i})
			if gerr != nil {
				continue
			}
			total++
			if resp.ReasoningTokens == 0 {
				missing++
			}
		}
	}
	rate := float64(missing) / float64(total)
	sigma := math.Sqrt(profile.PNoTrace * (1 - profile.PNoTrace) / float64(total))
	if math.Abs(rate-profile.PNoTrace) > 3*sigma+0.01 {
		t.Errorf("missing-trace rate %.3f deviates from PNoTrace %.3f (n=%d)", rate, profile.PNoTrace, total)
	}
}

// TestFocusHintRaisesRefinementQuality: the paper's core mechanism — a
// focused prompt (non-empty hint) must make refinement succeed more often
// than a blind one. Measured empirically against the verification oracle's
// criterion (behavioral agreement with the hidden golden) over many calls.
func TestFocusHintRaisesRefinementQuality(t *testing.T) {
	all := eval.Suite()
	var hard []eval.Task
	for _, task := range all {
		if task.Category == eval.Sequential && task.Difficulty > 0.45 {
			hard = append(hard, task)
		}
		if len(hard) == 12 {
			break
		}
	}
	profile := Profiles()["qwq-32b"]
	client, err := NewSimClient(profile, 47, hard)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	countCorrect := func(hint string) int {
		correct := 0
		for _, task := range hard {
			goldenAst, perr := parser.Parse(task.Golden)
			if perr != nil {
				t.Fatal(perr)
			}
			st := buildCase(task)
			goldenTrace := runCase(goldenAst, st)
			for i := 0; i < 15; i++ {
				resp, rerr := client.Refine(ctx, RefineRequest{
					TaskID:      task.ID,
					Spec:        task.Spec,
					CandidateA:  task.Golden,
					CandidateB:  task.Golden,
					FocusHint:   hint,
					SampleIndex: i,
				})
				if rerr != nil {
					continue
				}
				candAst, cerr := parser.Parse(resp.Code)
				if cerr != nil {
					continue
				}
				tr := runCase(candAst, st)
				if tr.Err == nil && tr.Fingerprint() == goldenTrace.Fingerprint() {
					correct++
				}
			}
		}
		return correct
	}

	blind := countCorrect("")
	focused := countCorrect("on test case 3 the groups disagree: out=1 vs out=0")
	t.Logf("blind=%d focused=%d (of %d calls each)", blind, focused, len(hard)*15)
	if focused <= blind {
		t.Errorf("focused refinement (%d) did not beat blind refinement (%d)", focused, blind)
	}
}
