package llm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/verilog/parser"
)

func testTasks(t *testing.T) []eval.Task {
	t.Helper()
	all := eval.Suite()
	return []eval.Task{all[0], all[10], all[44], all[85], all[120], all[150]}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"deepseek-r1", "o3-mini-high", "qwq-32b", "o3-mini-medium"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		if p.PMax <= 0 || p.PMax > 1 || p.Tau <= 0 {
			t.Errorf("%s: bad PMax/Tau: %+v", name, p)
		}
	}
	if _, err := ProfileByName("gpt-oops"); !errors.Is(err, ErrUnknownModel) {
		t.Error("unknown model should fail")
	}
}

func TestPassProbabilityShapes(t *testing.T) {
	ds, _ := ProfileByName("deepseek-r1")
	o3h, _ := ProfileByName("o3-mini-high")
	o3m, _ := ProfileByName("o3-mini-medium")

	// Monotone: short reasoning beats long at a marginal difficulty.
	d := ds.TSEQ
	if ds.PassProbability(eval.Sequential, d, 0.1) <= ds.PassProbability(eval.Sequential, d, 0.9) {
		t.Error("deepseek curve should decrease with length")
	}
	// Inverted-U: the sweet spot beats both extremes.
	d2 := o3h.TSEQ
	mid := o3h.PassProbability(eval.Sequential, d2, 0.35)
	if mid <= o3h.PassProbability(eval.Sequential, d2, 0.0) ||
		mid <= o3h.PassProbability(eval.Sequential, d2, 1.0) {
		t.Error("o3-mini-high curve should peak mid-length")
	}
	// Flat: no length signal at all.
	d3 := o3m.TSEQ
	if o3m.PassProbability(eval.Sequential, d3, 0.1) != o3m.PassProbability(eval.Sequential, d3, 0.9) {
		t.Error("o3-mini-medium should be flat in length")
	}
	// Difficulty monotone: harder tasks never raise the pass probability.
	for _, u := range []float64{0.1, 0.5, 0.9} {
		if ds.PassProbability(eval.Sequential, 0.2, u) < ds.PassProbability(eval.Sequential, 0.7, u) {
			t.Errorf("u=%v: harder task has higher pass probability", u)
		}
	}
	// Bounds.
	for _, u := range []float64{0, 0.5, 1} {
		for _, d := range []float64{0, 0.5, 1} {
			p := ds.PassProbability(eval.Combinational, d, u)
			if p < 0.01 || p > 0.98 {
				t.Errorf("pass probability %v out of clamp range", p)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tasks := testTasks(t)
	c1, err := NewSimClient(Profiles()["deepseek-r1"], 9, tasks)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewSimClient(Profiles()["deepseek-r1"], 9, tasks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		req := GenerateRequest{TaskID: tasks[0].ID, Spec: tasks[0].Spec, SampleIndex: i}
		r1, e1 := c1.Generate(ctx, req)
		r2, e2 := c2.Generate(ctx, req)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("error divergence: %v vs %v", e1, e2)
		}
		if e1 != nil {
			continue
		}
		if r1.Code != r2.Code || r1.ReasoningTokens != r2.ReasoningTokens {
			t.Fatalf("sample %d not deterministic", i)
		}
	}
	// Different seeds must diverge somewhere.
	c3, _ := NewSimClient(Profiles()["deepseek-r1"], 10, tasks)
	same := 0
	for i := 0; i < 10; i++ {
		req := GenerateRequest{TaskID: tasks[0].ID, SampleIndex: i}
		r1, e1 := c1.Generate(ctx, req)
		r3, e3 := c3.Generate(ctx, req)
		if e1 == nil && e3 == nil && r1.Code == r3.Code && r1.ReasoningTokens == r3.ReasoningTokens {
			same++
		}
	}
	if same == 10 {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateProducesMostlyValidCode(t *testing.T) {
	tasks := testTasks(t)
	client, err := NewSimClient(Profiles()["deepseek-r1"], 3, tasks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	valid, total := 0, 0
	for _, task := range tasks {
		for i := 0; i < 20; i++ {
			resp, gerr := client.Generate(ctx, GenerateRequest{TaskID: task.ID, SampleIndex: i})
			if gerr != nil {
				if errors.Is(gerr, ErrTransient) {
					continue
				}
				t.Fatal(gerr)
			}
			total++
			if _, perr := parser.Parse(resp.Code); perr == nil {
				valid++
			}
		}
	}
	frac := float64(valid) / float64(total)
	if frac < 0.90 {
		t.Errorf("only %.0f%% of completions parse (PInvalid=0.02 expected ~98%%)", 100*frac)
	}
	if frac == 1.0 {
		t.Log("note: no invalid completions in this sample (possible but unusual)")
	}
}

func TestGenerateUnknownTask(t *testing.T) {
	client, err := NewSimClient(Profiles()["deepseek-r1"], 3, testTasks(t))
	if err != nil {
		t.Fatal(err)
	}
	_, gerr := client.Generate(context.Background(), GenerateRequest{TaskID: "nope"})
	if !errors.Is(gerr, ErrUnknownTask) {
		t.Errorf("got %v", gerr)
	}
}

func TestContextCancellation(t *testing.T) {
	client, err := NewSimClient(Profiles()["deepseek-r1"], 3, testTasks(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, gerr := client.Generate(ctx, GenerateRequest{TaskID: testTasks(t)[0].ID}); gerr == nil {
		t.Error("cancelled context should fail")
	}
	if _, rerr := client.Refine(ctx, RefineRequest{TaskID: testTasks(t)[0].ID}); rerr == nil {
		t.Error("cancelled context should fail refine")
	}
	if _, jerr := client.JudgeOutput(ctx, JudgeRequest{TaskID: testTasks(t)[0].ID}); jerr == nil {
		t.Error("cancelled context should fail judge")
	}
}

func TestRefineReturnsCode(t *testing.T) {
	tasks := testTasks(t)
	client, err := NewSimClient(Profiles()["deepseek-r1"], 3, tasks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	task := tasks[3]
	got := 0
	for i := 0; i < 10; i++ {
		resp, rerr := client.Refine(ctx, RefineRequest{
			TaskID:      task.ID,
			Spec:        task.Spec,
			CandidateA:  task.Golden,
			CandidateB:  task.Golden,
			SampleIndex: i,
		})
		if rerr != nil {
			if errors.Is(rerr, ErrTransient) {
				continue
			}
			t.Fatal(rerr)
		}
		got++
		if strings.TrimSpace(resp.Code) == "" {
			t.Error("empty refined code")
		}
		if resp.ReasoningTokens <= 0 {
			t.Error("refinement should carry reasoning tokens")
		}
	}
	if got == 0 {
		t.Fatal("all refine calls failed")
	}
}

func TestJudgePredictsGoldenMostly(t *testing.T) {
	all := eval.Suite()
	// Use an easy combinational SimpleDesc task: judge accuracy should be
	// high.
	var task eval.Task
	for _, tk := range all {
		if tk.Family == "gates" {
			task = tk
			break
		}
	}
	client, err := NewSimClient(Profiles()["deepseek-r1"], 3, all)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Build one concrete test case by hand.
	st := buildCase(task)
	goldenAst, _ := parser.Parse(task.Golden)
	goldenTrace := runCase(goldenAst, st)

	match, total := 0, 0
	for i := 0; i < 30; i++ {
		resp, jerr := client.JudgeOutput(ctx, JudgeRequest{TaskID: task.ID, Case: st.Cases[0], SampleIndex: i})
		if jerr != nil {
			continue
		}
		total++
		if resp.Predicted.Fingerprint() == goldenTrace.Cases[0].Fingerprint() {
			match++
		}
	}
	if total == 0 {
		t.Fatal("no judge responses")
	}
	if frac := float64(match) / float64(total); frac < 0.6 {
		t.Errorf("judge matched golden only %.0f%% on an easy task", 100*frac)
	}
}

func TestReasoningTokensScale(t *testing.T) {
	p := Profiles()["deepseek-r1"]
	short := p.ReasoningTokens(0.2, 0.0)
	long := p.ReasoningTokens(0.2, 1.0)
	if long <= short {
		t.Errorf("tokens should grow with u: %d vs %d", short, long)
	}
	easy := p.ReasoningTokens(0.1, 0.5)
	hard := p.ReasoningTokens(0.9, 0.5)
	if hard <= easy {
		t.Errorf("tokens should grow with difficulty: %d vs %d", easy, hard)
	}
	if p.ReasoningTokens(0, 0) < 16 {
		t.Error("token floor violated")
	}
}
