package httpclient

import "sync/atomic"

// Stats are the adapter's cumulative counters, safe for concurrent
// readers. vfocusd surfaces them at /statsz.
type Stats struct {
	WireRequests  int64 // HTTP requests actually sent (or fixture lookups)
	Retries       int64 // wire attempts beyond the first
	Coalesced     int64 // callers that joined an in-flight identical request
	CacheHits     int64 // served from the prompt-hash response cache
	CacheMisses   int64
	BreakerTrips  int64 // closed/half-open → open transitions
	BreakerOpens  int64 // callers fast-failed by an open breaker
	RateWaits     int64 // reserve calls that had to sleep for a token
	FixtureHits   int64 // replay-mode fixture lookups that matched
	FixtureMisses int64 // replay-mode lookups with no recorded fixture
}

type statCounters struct {
	wireRequests  atomic.Int64
	retries       atomic.Int64
	coalesced     atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	breakerOpens  atomic.Int64
	rateWaits     atomic.Int64
	fixtureHits   atomic.Int64
	fixtureMisses atomic.Int64
}

// ReadStats snapshots the client's counters.
func (c *Client) ReadStats() Stats {
	return Stats{
		WireRequests:  c.stats.wireRequests.Load(),
		Retries:       c.stats.retries.Load(),
		Coalesced:     c.stats.coalesced.Load(),
		CacheHits:     c.stats.cacheHits.Load(),
		CacheMisses:   c.stats.cacheMisses.Load(),
		BreakerTrips:  c.breaker.tripCount(),
		BreakerOpens:  c.stats.breakerOpens.Load(),
		RateWaits:     c.stats.rateWaits.Load(),
		FixtureHits:   c.stats.fixtureHits.Load(),
		FixtureMisses: c.stats.fixtureMisses.Load(),
	}
}

// Map renders the snapshot as a JSON-friendly map for /statsz.
func (s Stats) Map() map[string]int64 {
	return map[string]int64{
		"wire_requests":  s.WireRequests,
		"retries":        s.Retries,
		"coalesced":      s.Coalesced,
		"cache_hits":     s.CacheHits,
		"cache_misses":   s.CacheMisses,
		"breaker_trips":  s.BreakerTrips,
		"breaker_opens":  s.BreakerOpens,
		"rate_waits":     s.RateWaits,
		"fixture_hits":   s.FixtureHits,
		"fixture_misses": s.FixtureMisses,
	}
}
