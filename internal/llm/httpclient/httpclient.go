// Package httpclient is the HTTP adapter behind the llm.Client port: it
// speaks an OpenAI-style completions protocol and wraps every wire request
// in a full resilience stack — prompt-hash response cache, single-flight
// coalescing of identical in-flight requests, token-bucket rate limiting
// with bounded concurrency, a consecutive-failure circuit breaker with
// half-open probing, and retries with capped exponential backoff + full
// jitter that honor Retry-After and fire only on idempotent/safe failures
// (timeouts, 429, 5xx, torn bodies — never on caller cancellation).
//
// A record/replay fixture mode keeps CI hermetic: record captures terminal
// exchanges keyed by request content hash; replay serves them with zero
// network egress. The stack order per logical request is
//
//	cache → single-flight → [per attempt: breaker → rate limit → wire]
//
// so a stampede of M identical calls costs at most one cache miss and one
// wire request, and a tripped breaker fast-fails without consuming rate
// tokens.
package httpclient

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/xrng"
)

// Options configures a Client. Zero values take the documented defaults.
type Options struct {
	// URL is the completions endpoint base (the client posts to
	// URL + CompletionsPath). Empty in record mode runs the embedded
	// reference server; empty in replay mode is fine (no dialing happens).
	URL string
	// Mode is ModeOff, ModeRecord, or ModeReplay.
	Mode string
	// FixtureDir holds the record/replay fixtures (required unless off).
	FixtureDir string

	// Retries is the number of wire retries after the first attempt
	// (default 3; negative disables retry).
	Retries int
	// AttemptTimeout bounds each wire attempt under the caller's ctx
	// (default 10s).
	AttemptTimeout time.Duration
	// BackoffBase and BackoffCap shape the exponential backoff
	// (defaults 100ms and 2s). The delay before retry n is a full-jitter
	// draw from [0, min(BackoffBase·2ⁿ, BackoffCap)], seeded from the
	// request hash so drills replay identically.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// BreakerThreshold trips the circuit after that many consecutive wire
	// failures (default 5; 0 or negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the open period before a half-open probe
	// (default 2s).
	BreakerCooldown time.Duration

	// RPS caps sustained wire requests per second (default 0: unlimited).
	RPS float64
	// Burst is the token-bucket burst allowance (default 2·RPS, min 1).
	Burst int
	// MaxConcurrent bounds simultaneous wire requests (default 0:
	// unlimited).
	MaxConcurrent int

	// CacheCap sizes the prompt-hash response cache (default 512 entries;
	// negative disables it).
	CacheCap int

	// Tasks scopes the embedded record-mode reference server (nil: the
	// full eval suite).
	Tasks []eval.Task
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
}

func (o *Options) fill() {
	if o.Mode == "" {
		o.Mode = ModeOff
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.AttemptTimeout == 0 {
		o.AttemptTimeout = 10 * time.Second
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Burst == 0 {
		o.Burst = int(2 * o.RPS)
	}
	if o.CacheCap == 0 {
		o.CacheCap = 512
	}
	if o.CacheCap < 0 {
		o.CacheCap = 0
	}
}

// clientCore is the state shared by every For-derived view: one breaker,
// limiter, cache, single-flight table, and counter set per process, no
// matter how many (model, seed) bindings exist.
type clientCore struct {
	opts     Options
	hc       *http.Client
	limiter  *limiter
	breaker  *breaker
	cache    *respCache
	fixtures *fixtureStore
	stats    statCounters

	mu       sync.Mutex
	inflight map[string]*flightCall

	stopServer func() // embedded record-mode reference server
}

// flightCall is one in-flight wire exchange. If the leader's caller
// context is cancelled before a terminal result, the call is marked
// abandoned and one waiter adopts leadership — waiters never inherit a
// foreign cancellation.
type flightCall struct {
	done      chan struct{}
	resp      *wireResponse
	err       error
	abandoned bool
}

// Client implements llm.Client over the shared core for one (model, seed)
// binding.
type Client struct {
	*clientCore
	model string
	seed  int64
}

// New builds a client bound to model and seed. Record mode with no URL
// starts an embedded reference server; Close stops it.
func New(model string, seed int64, opts Options) (*Client, error) {
	opts.fill()
	switch opts.Mode {
	case ModeOff, ModeRecord, ModeReplay:
	default:
		return nil, fmt.Errorf("unknown llm mode %q", opts.Mode)
	}
	if opts.Mode != ModeOff && opts.FixtureDir == "" {
		return nil, fmt.Errorf("llm mode %q requires a fixture dir", opts.Mode)
	}
	core := &clientCore{
		opts:     opts,
		limiter:  newLimiter(opts.RPS, opts.Burst, opts.MaxConcurrent),
		breaker:  newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		cache:    newRespCache(opts.CacheCap),
		inflight: make(map[string]*flightCall),
	}
	if opts.Mode != ModeOff {
		core.fixtures = newFixtureStore(opts.FixtureDir)
	}
	if opts.Mode != ModeReplay {
		if opts.URL == "" {
			if opts.Mode == ModeOff {
				return nil, fmt.Errorf("llm mode off requires a URL")
			}
			srv := NewServer(opts.Tasks)
			url, stop, err := srv.Start("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			core.opts.URL = url
			core.stopServer = stop
		}
		core.hc = &http.Client{Transport: opts.Transport}
	}
	return &Client{clientCore: core, model: model, seed: seed}, nil
}

// For returns a view of the same client bound to a different (model,
// seed) — cheap enough to mint per run or per job while every binding
// shares the breaker, limiter, cache, single-flight table, and counters.
func (c *Client) For(model string, seed int64) *Client {
	return &Client{clientCore: c.clientCore, model: model, seed: seed}
}

// Close releases the embedded reference server, if any.
func (c *Client) Close() error {
	if c.stopServer != nil {
		c.stopServer()
		c.stopServer = nil
	}
	return nil
}

// ModelName implements llm.Client.
func (c *Client) ModelName() string { return c.model }

// Generate implements llm.Client.
func (c *Client) Generate(ctx context.Context, req llm.GenerateRequest) (llm.Response, error) {
	resp, err := c.do(ctx, buildGenerate(c.model, c.seed, req))
	if err != nil {
		return llm.Response{}, err
	}
	return toResponse(resp), nil
}

// Refine implements llm.Client.
func (c *Client) Refine(ctx context.Context, req llm.RefineRequest) (llm.Response, error) {
	resp, err := c.do(ctx, buildRefine(c.model, c.seed, req))
	if err != nil {
		return llm.Response{}, err
	}
	return toResponse(resp), nil
}

// JudgeOutput implements llm.Client.
func (c *Client) JudgeOutput(ctx context.Context, req llm.JudgeRequest) (llm.JudgeResponse, error) {
	resp, err := c.do(ctx, buildJudge(c.model, c.seed, req))
	if err != nil {
		return llm.JudgeResponse{}, err
	}
	return llm.JudgeResponse{Predicted: decodeTrace(resp.Choices[0].Message.Judge)}, nil
}

func toResponse(resp *wireResponse) llm.Response {
	msg := resp.Choices[0].Message
	return llm.Response{
		Code:            msg.Content,
		Reasoning:       msg.Reasoning,
		ReasoningTokens: resp.Usage.ReasoningTokens,
	}
}

// do runs one logical request through cache → single-flight → the retry
// loop, returning a validated terminal response.
func (c *Client) do(ctx context.Context, wr wireRequest) (*wireResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	body, hash, err := encodeRequest(wr)
	if err != nil {
		return nil, err
	}
	if resp := c.cache.get(hash); resp != nil {
		c.stats.cacheHits.Add(1)
		return resp, nil
	}
	c.stats.cacheMisses.Add(1)

	for {
		c.mu.Lock()
		if call, ok := c.inflight[hash]; ok {
			c.mu.Unlock()
			c.stats.coalesced.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-call.done:
			}
			if call.abandoned {
				continue // leader was cancelled; race to adopt leadership
			}
			return call.resp, call.err
		}
		call := &flightCall{done: make(chan struct{})}
		c.inflight[hash] = call
		c.mu.Unlock()

		resp, err := c.attemptLoop(ctx, wr.VFocus.Op, hash, body)
		c.mu.Lock()
		delete(c.inflight, hash)
		c.mu.Unlock()
		if err == nil && resp != nil {
			c.cache.put(hash, resp)
		}
		// A result caused by this caller's own cancellation must not be
		// published to waiters with live contexts.
		call.resp, call.err = resp, err
		call.abandoned = err != nil && ctx.Err() != nil
		close(call.done)
		return resp, err
	}
}

// attemptLoop is the per-request retry engine: breaker admission, rate
// pacing, one wire attempt per iteration, and jittered backoff between
// retryable failures. The request body is reused verbatim across attempts
// — retries are bit-identical.
func (c *Client) attemptLoop(ctx context.Context, op, hash string, body []byte) (*wireResponse, error) {
	// Jitter stream seeded from the request hash: deterministic per
	// request, decorrelated across requests.
	rng := xrng.New(hashSeed(hash))
	var lastErr error
	var retryAfter time.Duration
	retryAfterSet := false
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
			delay := c.backoff(attempt, rng)
			if retryAfterSet {
				delay = retryAfter
			}
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				case <-t.C:
				}
			}
		}
		if !c.breaker.allow() {
			c.stats.breakerOpens.Add(1)
			return nil, fmt.Errorf("%w: %w", llm.ErrTransient, ErrBreakerOpen)
		}
		waited, err := c.limiter.reserve(ctx)
		if waited {
			c.stats.rateWaits.Add(1)
		}
		if err != nil {
			c.breaker.abort() // nothing reached the wire; no outcome
			return nil, err
		}
		resp, ra, raSet, err := c.attempt(ctx, op, hash, body)
		c.breaker.report(err == nil || isPermanent(err))
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			// Caller gave up (or its deadline passed): never retry.
			return nil, ctx.Err()
		}
		if isPermanent(err) {
			return nil, err
		}
		lastErr = err
		retryAfter, retryAfterSet = ra, raSet
	}
	if errors.Is(lastErr, llm.ErrTransient) {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: %w", llm.ErrTransient, lastErr)
}

// isPermanent reports failures retry cannot help: bad requests, unknown
// task/model, missing fixtures.
func isPermanent(err error) bool {
	return errors.Is(err, llm.ErrUnknownTask) ||
		errors.Is(err, llm.ErrUnknownModel) ||
		errors.Is(err, ErrNoFixture) ||
		errors.Is(err, ErrHTTPStatus)
}

// backoff is the full-jitter capped exponential delay before retry n≥1.
func (c *Client) backoff(attempt int, rng *xrng.Rand) time.Duration {
	ceil := c.opts.BackoffBase << (attempt - 1)
	if ceil > c.opts.BackoffCap || ceil <= 0 {
		ceil = c.opts.BackoffCap
	}
	return time.Duration(rng.Float64() * float64(ceil))
}

// hashSeed folds the hex request hash into a 64-bit jitter seed.
func hashSeed(hash string) uint64 {
	raw, err := hex.DecodeString(hash[:16])
	if err != nil || len(raw) < 8 {
		return 0x9e3779b97f4a7c15
	}
	return binary.BigEndian.Uint64(raw)
}

// attempt performs one wire exchange (or fixture lookup) and classifies
// the outcome. retryAfter carries a server pacing hint when set.
func (c *Client) attempt(ctx context.Context, op, hash string, body []byte) (resp *wireResponse, retryAfter time.Duration, retryAfterSet bool, err error) {
	c.stats.wireRequests.Add(1)
	if c.opts.Mode == ModeReplay {
		resp, retryAfter, retryAfterSet, err = c.replayAttempt(op, hash)
		return
	}

	if err := c.limiter.acquire(ctx); err != nil {
		return nil, 0, false, err
	}
	defer c.limiter.release()

	attemptCtx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(attemptCtx, http.MethodPost,
		c.opts.URL+CompletionsPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.hc.Do(httpReq)
	if err != nil {
		// Transport-level failure: timeout, refused connection, torn
		// connection. All safe to retry (the request is idempotent).
		return nil, 0, false, fmt.Errorf("%w: %v", llm.ErrTransient, err)
	}
	defer httpResp.Body.Close()
	respBody, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, 0, false, fmt.Errorf("%w: %v", ErrTornBody, err)
	}
	return c.classify(op, hash, body, httpResp.StatusCode, httpResp.Header.Get("Retry-After"), respBody)
}

// classify maps one HTTP exchange to a terminal result or a typed,
// retryability-classified error, recording terminal exchanges in record
// mode.
func (c *Client) classify(op, hash string, reqBody []byte, status int, retryAfterHdr string, respBody []byte) (*wireResponse, time.Duration, bool, error) {
	switch {
	case status == http.StatusOK:
		resp, err := decodeResponse(respBody, op)
		if err != nil {
			// Torn/invalid body: retryable, and NOT recorded — a fixture
			// must never replay a half response.
			return nil, 0, false, err
		}
		c.record(hash, reqBody, status, "", respBody)
		return resp, 0, false, nil
	case status == http.StatusTooManyRequests:
		// Deterministic application-level throttle (the reference server
		// surfaces SimClient transients this way): terminal for fixture
		// purposes, transient for the caller.
		c.record(hash, reqBody, status, retryAfterHdr, respBody)
		ra, raSet := parseRetryAfter(retryAfterHdr)
		return nil, ra, raSet, fmt.Errorf("%w: http 429", llm.ErrTransient)
	case status >= 500:
		// Infrastructure failure: retryable, never recorded.
		ra, raSet := parseRetryAfter(retryAfterHdr)
		return nil, ra, raSet, fmt.Errorf("%w: http %d", llm.ErrTransient, status)
	default:
		// Permanent 4xx. Map structured wire errors to the llm sentinels.
		c.record(hash, reqBody, status, "", respBody)
		if err := decodeWireError(status, respBody); err != nil {
			return nil, 0, false, err
		}
		return nil, 0, false, fmt.Errorf("%w: http %d", ErrHTTPStatus, status)
	}
}

// record persists a terminal exchange in record mode.
func (c *Client) record(hash string, reqBody []byte, status int, retryAfter string, respBody []byte) {
	if c.opts.Mode != ModeRecord {
		return
	}
	c.fixtures.save(&fixture{
		Hash:       hash,
		Request:    json.RawMessage(reqBody),
		Status:     status,
		RetryAfter: retryAfter,
		Response:   json.RawMessage(respBody),
	})
}

// replayAttempt serves one attempt from the fixture store — no network.
func (c *Client) replayAttempt(op, hash string) (*wireResponse, time.Duration, bool, error) {
	fx, err := c.fixtures.load(hash)
	if err != nil {
		if errors.Is(err, ErrNoFixture) {
			c.stats.fixtureMisses.Add(1)
		}
		return nil, 0, false, err
	}
	c.stats.fixtureHits.Add(1)
	resp, ra, raSet, cerr := c.classify(op, hash, fx.Request, fx.Status, fx.RetryAfter, fx.Response)
	return resp, ra, raSet, cerr
}

// parseRetryAfter reads a seconds-valued Retry-After header.
func parseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs * float64(time.Second)), true
}

// ClientFactory builds an llm.Client for one (model, seed, task-set)
// binding — the shape core/exp/serve use to mint per-run clients.
type ClientFactory func(model string, seed int64, tasks []eval.Task) (llm.Client, error)

// SimFactory is the default factory: a fresh deterministic SimClient per
// binding, no network.
func SimFactory(model string, seed int64, tasks []eval.Task) (llm.Client, error) {
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return nil, err
	}
	return llm.NewSimClient(profile, seed, tasks)
}

// Factory builds a ClientFactory from flag-level options. Mode off with no
// URL yields SimFactory (the hermetic default); anything else builds ONE
// shared resilient core and mints For-views per binding, so every run and
// job shares the breaker, limiter, cache, and counters. close releases the
// core (and any embedded server); stats is non-nil only for HTTP-backed
// factories.
func Factory(opts Options) (factory ClientFactory, stats func() Stats, close func() error, err error) {
	opts.fill()
	if opts.Mode == ModeOff && opts.URL == "" {
		return SimFactory, nil, func() error { return nil }, nil
	}
	root, err := New("", 0, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	factory = func(model string, seed int64, _ []eval.Task) (llm.Client, error) {
		if _, err := llm.ProfileByName(model); err != nil {
			return nil, err
		}
		return root.For(model, seed), nil
	}
	return factory, root.ReadStats, root.Close, nil
}
