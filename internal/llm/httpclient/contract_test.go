package httpclient_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/llm/contracts"
	"repro/internal/llm/httpclient"
)

// tasks1 is the single-task set the contract suite drives (contracts uses
// eval.Suite()[0]).
func tasks1() []eval.Task { return eval.Suite()[:1] }

// liveOptions are fast-failing resilience knobs for drills against a local
// server.
func liveOptions(url string) httpclient.Options {
	return httpclient.Options{
		URL:            url,
		AttemptTimeout: 5 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffCap:     5 * time.Millisecond,
	}
}

// harnessFor builds the shared-contract harness for one mode. clients
// accumulate so WireCount can aggregate stats across everything the
// harness minted.
func harnessFor(t *testing.T, srv *httpclient.Server, url, mode, fixtureDir string) contracts.Harness {
	var mu sync.Mutex
	var minted []*httpclient.Client
	mint := func(t *testing.T, seed int64, opts httpclient.Options) *httpclient.Client {
		t.Helper()
		opts.Mode = mode
		opts.FixtureDir = fixtureDir
		c, err := httpclient.New("deepseek-r1", seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		mu.Lock()
		minted = append(minted, c)
		mu.Unlock()
		return c
	}
	h := contracts.Harness{
		NewClient: func(t *testing.T, seed int64) llm.Client {
			return mint(t, seed, liveOptions(url))
		},
		PacedClient: func(t *testing.T, rps float64) llm.Client {
			opts := liveOptions(url)
			opts.RPS = rps
			opts.Burst = 1
			return mint(t, 6, opts)
		},
	}
	if mode == httpclient.ModeReplay {
		// No server in replay: count fixture lookups via client stats.
		h.WireCount = func() int64 {
			mu.Lock()
			defer mu.Unlock()
			var n int64
			for _, c := range minted {
				n += c.ReadStats().WireRequests
			}
			return n
		}
		return h
	}
	h.WireCount = srv.WireRequests
	h.FailingClient = func(t *testing.T) (llm.Client, int) {
		failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":{"type":"internal","message":"down"}}`, http.StatusInternalServerError)
		}))
		t.Cleanup(failing.Close)
		opts := liveOptions(failing.URL)
		opts.Retries = -1 // one wire attempt per call
		opts.BreakerThreshold = 3
		opts.BreakerCooldown = time.Minute
		return mint(t, 7, opts), 3
	}
	return h
}

// TestHTTPClientContract runs the shared contract twice: live against the
// reference server in record mode (persisting fixtures as it goes), then
// again in replay mode over the fixtures the first pass wrote — proving
// the replayed backend is behaviorally indistinguishable.
func TestHTTPClientContract(t *testing.T) {
	srv := httpclient.NewServer(tasks1())
	url, stop, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	dir := t.TempDir()

	t.Run("record", func(t *testing.T) {
		contracts.Run(t, harnessFor(t, srv, url, httpclient.ModeRecord, dir))
	})
	t.Run("replay", func(t *testing.T) {
		contracts.Run(t, harnessFor(t, nil, "", httpclient.ModeReplay, dir))
	})
}
