package httpclient

import "sync"

// respCache is a prompt-hash → response LRU using the intrusive-link idiom
// from internal/testbench: entries carry their own prev/next pointers, so
// hits relink in O(1) with zero allocation. Only terminal successful
// responses are cached — transients and permanent errors always re-enter
// the resilience stack. Single-flight runs in front of the cache, so there
// is no in-flight state to pin here.
type respCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	head    *cacheEntry // most recent
	tail    *cacheEntry // least recent
}

type cacheEntry struct {
	hash       string
	resp       *wireResponse
	prev, next *cacheEntry
}

func newRespCache(capacity int) *respCache {
	if capacity <= 0 {
		return &respCache{}
	}
	return &respCache{cap: capacity, entries: make(map[string]*cacheEntry, capacity)}
}

func (c *respCache) get(hash string) *wireResponse {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[hash]
	if e == nil {
		return nil
	}
	c.unlink(e)
	c.pushFront(e)
	return e.resp
}

func (c *respCache) put(hash string, resp *wireResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[hash]; e != nil {
		e.resp = resp
		c.unlink(e)
		c.pushFront(e)
		return
	}
	e := &cacheEntry{hash: hash, resp: resp}
	c.entries[hash] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.hash)
	}
}

func (c *respCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *respCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
