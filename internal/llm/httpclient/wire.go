package httpclient

// The wire protocol is an OpenAI-style chat-completions endpoint: one POST
// route, model + messages in the request, choices + usage in the response.
// The pipeline's three structured operations (generate, refine, judge) ride
// in a vendor-extension block ("vfocus") alongside the human-readable
// messages, so the reference server can route them losslessly while a real
// deployment is free to answer from the messages alone.
//
// Every request has a canonical encoding — json.Marshal of wireRequest,
// whose field order is fixed by the struct — and its SHA-256 is the request
// content hash used for single-flight coalescing, the response cache, and
// fixture file names.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/testbench"
)

// Typed failures the adapter surfaces. All transient failures also answer
// errors.Is(err, llm.ErrTransient) so the pipeline's existing retry
// classification keeps working unchanged.
var (
	// ErrTornBody marks a response whose body was truncated mid-stream or
	// otherwise failed structural validation: the client never exposes a
	// half-parsed completion; it surfaces this error and retries.
	ErrTornBody = errors.New("torn llm response body")
	// ErrBreakerOpen is the fast-fail returned while the circuit breaker is
	// open: no wire request is attempted until the cooldown's half-open
	// probe succeeds.
	ErrBreakerOpen = errors.New("llm circuit breaker open")
	// ErrNoFixture is returned in replay mode for a request whose content
	// hash has no recorded fixture. It is permanent: replay never falls
	// back to the network.
	ErrNoFixture = errors.New("no recorded llm fixture")
	// ErrHTTPStatus wraps permanent (non-retryable) upstream HTTP failures.
	ErrHTTPStatus = errors.New("llm http error")
)

// Wire op names.
const (
	opGenerate = "generate"
	opRefine   = "refine"
	opJudge    = "judge"
)

// wireMessage is one chat message.
type wireMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// wireInput is one driven input of a judge-request test case, with the
// value rendered as a Verilog binary literal ("4'b10x1").
type wireInput struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// wireStep is one stimulus step of a judge-request test case. Inputs are
// sorted by name — part of the canonical encoding.
type wireStep struct {
	Inputs []wireInput `json:"inputs"`
}

// wireCase carries a full test case for judge requests.
type wireCase struct {
	Steps []wireStep `json:"steps"`
}

// wireOp is the structured operation block.
type wireOp struct {
	Op          string    `json:"op"`
	TaskID      string    `json:"task_id"`
	Seed        int64     `json:"seed"`
	SampleIndex int       `json:"sample_index"`
	Attempt     int       `json:"attempt,omitempty"`
	FocusHint   string    `json:"focus_hint,omitempty"`
	CandidateA  string    `json:"candidate_a,omitempty"`
	CandidateB  string    `json:"candidate_b,omitempty"`
	Case        *wireCase `json:"case,omitempty"`
}

// wireRequest is the full request body.
type wireRequest struct {
	Model    string        `json:"model"`
	Messages []wireMessage `json:"messages"`
	VFocus   wireOp        `json:"vfocus"`
}

// wireTraceStep is one step of a judged output trace.
type wireTraceStep struct {
	Outputs []string `json:"outputs"`
}

// wireTrace is the judge operation's predicted output trace.
type wireTrace struct {
	Steps []wireTraceStep `json:"steps"`
}

// wireRespMessage is the assistant message of one choice.
type wireRespMessage struct {
	Content   string     `json:"content"`
	Reasoning string     `json:"reasoning,omitempty"`
	Judge     *wireTrace `json:"judge,omitempty"`
}

// wireChoice is one completion choice.
type wireChoice struct {
	Message      wireRespMessage `json:"message"`
	FinishReason string          `json:"finish_reason"`
}

// wireUsage carries token accounting.
type wireUsage struct {
	ReasoningTokens int `json:"reasoning_tokens"`
}

// wireError is the structured error body of a non-2xx response.
type wireError struct {
	Type    string `json:"type"`
	Message string `json:"message"`
}

// Wire error types, mapped back to the llm sentinels client-side.
const (
	wireErrUnknownTask  = "unknown_task"
	wireErrUnknownModel = "unknown_model"
	wireErrRateLimited  = "rate_limited"
	wireErrInternal     = "internal"
)

// wireResponse is the full response body.
type wireResponse struct {
	Choices []wireChoice `json:"choices"`
	Usage   wireUsage    `json:"usage"`
	Error   *wireError   `json:"error,omitempty"`
}

// encodeCase renders a testbench case canonically (steps in order, inputs
// sorted by name, values as binary literals).
func encodeCase(c testbench.Case) *wireCase {
	wc := &wireCase{Steps: make([]wireStep, len(c.Steps))}
	for i, st := range c.Steps {
		names := make([]string, 0, len(st.Inputs))
		for name := range st.Inputs {
			names = append(names, name)
		}
		sort.Strings(names)
		ws := wireStep{Inputs: make([]wireInput, 0, len(names))}
		for _, name := range names {
			ws.Inputs = append(ws.Inputs, wireInput{Name: name, Value: st.Inputs[name].String()})
		}
		wc.Steps[i] = ws
	}
	return wc
}

// decodeCase parses a wire case back into a testbench case.
func decodeCase(wc *wireCase) (testbench.Case, error) {
	var c testbench.Case
	if wc == nil {
		return c, fmt.Errorf("judge op missing case")
	}
	c.Steps = make([]testbench.Step, len(wc.Steps))
	for i, ws := range wc.Steps {
		ins := make(map[string]sim.Value, len(ws.Inputs))
		for _, in := range ws.Inputs {
			v, err := parseValueLiteral(in.Value)
			if err != nil {
				return c, fmt.Errorf("case step %d input %s: %w", i, in.Name, err)
			}
			ins[in.Name] = v
		}
		c.Steps[i] = testbench.Step{Inputs: ins}
	}
	return c, nil
}

// parseValueLiteral parses the binary-literal rendering of sim.Value
// ("4'b10x1") back into a value.
func parseValueLiteral(s string) (sim.Value, error) {
	wstr, bits, ok := strings.Cut(s, "'b")
	if !ok {
		return sim.Value{}, fmt.Errorf("bad value literal %q", s)
	}
	width, err := strconv.Atoi(wstr)
	if err != nil || width <= 0 || len(bits) != width {
		return sim.Value{}, fmt.Errorf("bad value literal %q", s)
	}
	words := (width + 63) / 64
	val := make([]uint64, words)
	xz := make([]uint64, words)
	for i := 0; i < width; i++ {
		// bits[0] is the MSB (bit width-1).
		bit := width - 1 - i
		w, off := bit/64, uint(bit%64)
		switch bits[i] {
		case '0':
		case '1':
			val[w] |= 1 << off
		case 'x':
			xz[w] |= 1 << off
		case 'z':
			val[w] |= 1 << off
			xz[w] |= 1 << off
		default:
			return sim.Value{}, fmt.Errorf("bad value literal %q", s)
		}
	}
	return sim.NewFromPlanes(width, val, xz), nil
}

// encodeTrace renders a judged case trace for the wire.
func encodeTrace(ct *testbench.CaseTrace) *wireTrace {
	wt := &wireTrace{Steps: make([]wireTraceStep, len(ct.Steps))}
	for i, st := range ct.Steps {
		outs := make([]string, len(st.Outputs))
		copy(outs, st.Outputs)
		wt.Steps[i] = wireTraceStep{Outputs: outs}
	}
	return wt
}

// decodeTrace parses a wire trace into a case trace.
func decodeTrace(wt *wireTrace) *testbench.CaseTrace {
	ct := &testbench.CaseTrace{Steps: make([]testbench.StepRecord, len(wt.Steps))}
	for i, st := range wt.Steps {
		outs := make([]string, len(st.Outputs))
		copy(outs, st.Outputs)
		ct.Steps[i] = testbench.StepRecord{Outputs: outs}
	}
	return ct
}

// buildGenerate constructs the wire request of a Generate call.
func buildGenerate(model string, seed int64, req llm.GenerateRequest) wireRequest {
	msgs := make([]wireMessage, 0, 2)
	if req.Guidelines != "" {
		msgs = append(msgs, wireMessage{Role: "system", Content: req.Guidelines})
	}
	msgs = append(msgs, wireMessage{Role: "user", Content: req.Spec})
	return wireRequest{
		Model:    model,
		Messages: msgs,
		VFocus: wireOp{
			Op:          opGenerate,
			TaskID:      req.TaskID,
			Seed:        seed,
			SampleIndex: req.SampleIndex,
			Attempt:     req.Attempt,
		},
	}
}

// buildRefine constructs the wire request of a Refine call.
func buildRefine(model string, seed int64, req llm.RefineRequest) wireRequest {
	return wireRequest{
		Model:    model,
		Messages: []wireMessage{{Role: "user", Content: req.Spec}},
		VFocus: wireOp{
			Op:          opRefine,
			TaskID:      req.TaskID,
			Seed:        seed,
			SampleIndex: req.SampleIndex,
			FocusHint:   req.FocusHint,
			CandidateA:  req.CandidateA,
			CandidateB:  req.CandidateB,
		},
	}
}

// buildJudge constructs the wire request of a JudgeOutput call.
func buildJudge(model string, seed int64, req llm.JudgeRequest) wireRequest {
	return wireRequest{
		Model:    model,
		Messages: []wireMessage{{Role: "user", Content: req.Spec}},
		VFocus: wireOp{
			Op:          opJudge,
			TaskID:      req.TaskID,
			Seed:        seed,
			SampleIndex: req.SampleIndex,
			Case:        encodeCase(req.Case),
		},
	}
}

// encodeRequest marshals the canonical request body and derives its content
// hash. The encoding is deterministic: struct-driven field order, sorted
// case inputs, no maps.
func encodeRequest(wr wireRequest) (body []byte, hash string, err error) {
	body, err = json.Marshal(wr)
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(body)
	return body, hex.EncodeToString(sum[:]), nil
}

// decodeResponse validates and parses a 200 response body. Any structural
// damage — unparseable JSON, zero choices, a judge response without its
// trace — is reported as ErrTornBody so the caller retries instead of
// exposing a half-parsed completion.
func decodeResponse(body []byte, op string) (*wireResponse, error) {
	var resp wireResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTornBody, err)
	}
	if len(resp.Choices) == 0 {
		return nil, fmt.Errorf("%w: no choices", ErrTornBody)
	}
	ch := resp.Choices[0]
	if ch.FinishReason != "stop" {
		return nil, fmt.Errorf("%w: finish_reason %q", ErrTornBody, ch.FinishReason)
	}
	if op == opJudge && ch.Message.Judge == nil {
		return nil, fmt.Errorf("%w: judge response missing trace", ErrTornBody)
	}
	return &resp, nil
}

// decodeWireError maps a non-2xx body's structured error to the llm
// sentinels. Unknown task/model are permanent; everything else is left to
// status-code classification.
func decodeWireError(status int, body []byte) error {
	var resp wireResponse
	if err := json.Unmarshal(body, &resp); err == nil && resp.Error != nil {
		switch resp.Error.Type {
		case wireErrUnknownTask:
			return fmt.Errorf("%w: %s", llm.ErrUnknownTask, resp.Error.Message)
		case wireErrUnknownModel:
			return fmt.Errorf("%w: %s", llm.ErrUnknownModel, resp.Error.Message)
		}
	}
	return nil
}
