package httpclient

// Record/replay fixtures keep CI hermetic: record mode captures every
// terminal application-level exchange (200s and deterministic 4xx/429s —
// retried-past transients are terminal too, because the pipeline's own
// retry issues a *different* request with a bumped attempt/sample index)
// into one JSON file per request content hash; replay mode serves those
// files with zero network egress and fails typed on a miss.
//
// A fixture file is self-verifying: its name and embedded hash must both
// equal the SHA-256 of the embedded request body, so a stale artifact
// (request format drifted, fixture not re-recorded) is detected instead of
// silently replayed against a different request.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Fixture modes.
const (
	ModeOff    = "off"    // no fixtures: live HTTP (or SimClient fallback)
	ModeRecord = "record" // live HTTP, terminal exchanges written to disk
	ModeReplay = "replay" // no network: every request served from disk
)

// fixture is the on-disk record of one exchange.
type fixture struct {
	Hash       string          `json:"hash"`        // SHA-256 of Request
	Request    json.RawMessage `json:"request"`     // canonical request body
	Status     int             `json:"status"`      // HTTP status replayed
	RetryAfter string          `json:"retry_after"` // Retry-After header, if any
	Response   json.RawMessage `json:"response"`    // response body
}

// fixtureStore reads and writes hash-named fixture files under one
// directory. Writes are last-wins and atomic (temp + rename) so record
// mode is safe under concurrent identical requests.
type fixtureStore struct {
	dir string
	mu  sync.Mutex
}

func newFixtureStore(dir string) *fixtureStore { return &fixtureStore{dir: dir} }

func (fs *fixtureStore) path(hash string) string {
	return filepath.Join(fs.dir, hash+".json")
}

// load returns the fixture for hash, ErrNoFixture when absent, or a
// validation error when the file exists but is stale/corrupt.
func (s *fixtureStore) load(hash string) (*fixture, error) {
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoFixture, hash)
		}
		return nil, err
	}
	var fx fixture
	if err := json.Unmarshal(data, &fx); err != nil {
		return nil, fmt.Errorf("fixture %s: %v", hash, err)
	}
	if err := verifyFixture(&fx, hash); err != nil {
		return nil, err
	}
	return &fx, nil
}

// save writes the fixture atomically under its hash name.
func (s *fixtureStore) save(fx *fixture) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(fx, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(s.dir, ".fx-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, s.path(fx.Hash))
}

// verifyFixture checks a fixture's internal consistency against the hash
// it is filed under.
func verifyFixture(fx *fixture, wantHash string) error {
	if fx.Hash != wantHash {
		return fmt.Errorf("stale fixture %s: embedded hash %s", wantHash, fx.Hash)
	}
	_, gotHash, err := encodeRawRequest(fx.Request)
	if err != nil {
		return fmt.Errorf("stale fixture %s: bad request body: %v", wantHash, err)
	}
	if gotHash != wantHash {
		return fmt.Errorf("stale fixture %s: request body hashes to %s", wantHash, gotHash)
	}
	return nil
}

// encodeRawRequest re-canonicalizes a stored raw request body and hashes
// it, so verification notices both bit-rot and format drift.
func encodeRawRequest(raw json.RawMessage) ([]byte, string, error) {
	var wr wireRequest
	if err := json.Unmarshal(raw, &wr); err != nil {
		return nil, "", err
	}
	return encodeRequest(wr)
}

// VerifyFixtureDir validates every fixture in dir (the CI staleness gate):
// each file's name, embedded hash, and re-canonicalized request hash must
// agree. Returns the number of fixtures checked.
func VerifyFixtureDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	st := newFixtureStore(dir)
	for _, name := range names {
		hash := strings.TrimSuffix(name, ".json")
		if _, err := st.load(hash); err != nil {
			return 0, err
		}
	}
	return len(names), nil
}
