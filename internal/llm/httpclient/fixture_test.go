package httpclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
)

// TestRecordThenReplayZeroEgress records a small exchange set against the
// embedded reference server, then replays it with a transport that fails
// the test on any dial — the hermeticity guarantee CI leans on.
func TestRecordThenReplayZeroEgress(t *testing.T) {
	tk := eval.Suite()[0]
	dir := t.TempDir()
	ctx := context.Background()

	rec, err := New("deepseek-r1", 1, Options{
		Mode:       ModeRecord,
		FixtureDir: dir,
		Tasks:      eval.Suite()[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []llm.Response
	for sample := 0; sample < 3; sample++ {
		r, err := rec.Generate(ctx, testGenReq(tk, sample))
		if err != nil {
			if !errors.Is(err, llm.ErrTransient) {
				t.Fatalf("record sample %d: %v", sample, err)
			}
			want = append(want, llm.Response{})
			continue
		}
		want = append(want, r)
	}
	rec.Close()

	if n, err := VerifyFixtureDir(dir); err != nil || n == 0 {
		t.Fatalf("VerifyFixtureDir = (%d, %v), want fixtures and no error", n, err)
	}

	rep, err := New("deepseek-r1", 1, Options{
		Mode:       ModeReplay,
		FixtureDir: dir,
		Transport:  dialBomb{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	for sample := 0; sample < 3; sample++ {
		r, err := rep.Generate(ctx, testGenReq(tk, sample))
		if err != nil {
			if !errors.Is(err, llm.ErrTransient) {
				t.Fatalf("replay sample %d: %v", sample, err)
			}
			continue
		}
		if r != want[sample] {
			t.Fatalf("replay sample %d diverged:\n%+v\nvs recorded\n%+v", sample, r, want[sample])
		}
	}

	// A request with no fixture is a typed, permanent miss — replay never
	// falls back to the network.
	_, err = rep.Generate(ctx, testGenReq(tk, 999))
	if !errors.Is(err, ErrNoFixture) {
		t.Fatalf("missing fixture error = %v, want ErrNoFixture", err)
	}
	if errors.Is(err, llm.ErrTransient) {
		t.Fatalf("missing fixture classified transient: %v", err)
	}
	st := rep.ReadStats()
	if st.FixtureMisses != 1 || st.FixtureHits == 0 {
		t.Fatalf("fixture counters = %d hits / %d misses", st.FixtureHits, st.FixtureMisses)
	}
}

// dialBomb is a RoundTripper that fails the test on use: replay mode must
// never reach it.
type dialBomb struct{ t *testing.T }

func (d dialBomb) RoundTrip(r *http.Request) (*http.Response, error) {
	d.t.Errorf("replay mode dialed %s", r.URL)
	return nil, errors.New("network egress in replay mode")
}

// TestStaleFixtureDetected is the staleness gate: a fixture whose embedded
// request no longer hashes to its file name (format drift, manual edit)
// must fail verification and replay, not silently serve a wrong response.
func TestStaleFixtureDetected(t *testing.T) {
	tk := eval.Suite()[0]
	dir := t.TempDir()
	ctx := context.Background()
	rec, err := New("deepseek-r1", 1, Options{
		Mode:       ModeRecord,
		FixtureDir: dir,
		Tasks:      eval.Suite()[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Generate(ctx, testGenReq(tk, 0)); err != nil && !errors.Is(err, llm.ErrTransient) {
		t.Fatal(err)
	}
	rec.Close()

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures recorded: %v", err)
	}
	// Tamper: change the embedded request so its hash no longer matches.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var fx fixture
	if err := json.Unmarshal(raw, &fx); err != nil {
		t.Fatal(err)
	}
	fx.Request = json.RawMessage(strings.Replace(string(fx.Request), tk.ID, "tampered_task", 1))
	out, err := json.Marshal(&fx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], out, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := VerifyFixtureDir(dir); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("VerifyFixtureDir on tampered dir = %v, want stale error", err)
	}
	rep, err := New("deepseek-r1", 1, Options{Mode: ModeReplay, FixtureDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Generate(ctx, testGenReq(tk, 0)); err == nil {
		t.Fatal("replay served a stale fixture")
	}
}
