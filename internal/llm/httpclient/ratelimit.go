package httpclient

import (
	"context"
	"sync"
	"time"
)

// limiter paces wire requests: a token bucket bounds sustained
// requests/sec (with a small burst allowance) and a semaphore bounds the
// number of requests simultaneously on the wire. Both waits are ctx-aware
// so a cancelled caller never sits in line.
type limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens added per second; <= 0 disables pacing
	burst  float64
	tokens float64
	last   time.Time

	conc chan struct{} // nil when max concurrency is unlimited

	now func() time.Time // test hook
}

func newLimiter(rps float64, burst, maxConcurrent int) *limiter {
	l := &limiter{rate: rps, now: time.Now}
	if rps > 0 {
		if burst < 1 {
			burst = 1
		}
		l.burst = float64(burst)
		l.tokens = l.burst
		l.last = l.now()
	}
	if maxConcurrent > 0 {
		l.conc = make(chan struct{}, maxConcurrent)
	}
	return l
}

// reserve blocks until one rate token is available, then takes it,
// reporting whether it had to wait. The refill math runs under the lock
// but the sleep does not, so waiters accumulate debt fairly rather than
// serializing on the mutex.
func (l *limiter) reserve(ctx context.Context) (waited bool, err error) {
	if l.rate <= 0 {
		return false, nil
	}
	for {
		l.mu.Lock()
		now := l.now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		l.last = now
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return waited, nil
		}
		wait := time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
		l.mu.Unlock()
		waited = true
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return waited, ctx.Err()
		case <-t.C:
		}
	}
}

// acquire takes a concurrency slot; release returns it. acquire after a
// successful reserve, so queued callers are paced before they contend.
func (l *limiter) acquire(ctx context.Context) error {
	if l.conc == nil {
		return nil
	}
	select {
	case l.conc <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() {
	if l.conc != nil {
		<-l.conc
	}
}
