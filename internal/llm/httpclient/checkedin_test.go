package httpclient

// Checked-in fixture coverage: testdata/fixtures holds recorded exchanges
// for a small pinned request set (model deepseek-r1, seed 1, the suite's
// first task), so CI replays a real wire-shaped conversation with zero
// network egress. Regenerate after a deliberate wire-format change with
//
//	go test ./internal/llm/httpclient -run TestCheckedInFixturesReplay -update-fixtures
//
// The staleness gate (VerifyFixtureDir) fails this test when the checked-in
// request bodies no longer hash to their file names — i.e. when the wire
// encoding drifted without the fixtures being re-recorded.

import (
	"context"
	"errors"
	"flag"
	"os"
	"testing"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/testbench"
)

var updateFixtures = flag.Bool("update-fixtures", false, "re-record testdata/fixtures against the embedded reference server")

const checkedInDir = "testdata/fixtures"

// pinnedJudgeCase is the deterministic two-step stimulus the judge fixture
// is recorded against.
func pinnedJudgeCase(tk eval.Task) testbench.Case {
	var c testbench.Case
	for s := 0; s < 2; s++ {
		ins := make(map[string]sim.Value, len(tk.Ifc.Inputs))
		for _, p := range tk.Ifc.Inputs {
			ins[p.Name] = sim.NewKnown(p.Width, uint64(s))
		}
		c.Steps = append(c.Steps, testbench.Step{Inputs: ins})
	}
	return c
}

// drivePinned issues the pinned request stream — four generates, one
// refine, one judge — and sanity-checks every answer. Simulated transients
// are part of the recorded conversation and acceptable on generates.
func drivePinned(t *testing.T, c *Client, tk eval.Task) {
	t.Helper()
	ctx := context.Background()
	var codes []string
	for sample := 0; sample < 4; sample++ {
		r, err := c.Generate(ctx, testGenReq(tk, sample))
		if err != nil {
			if !errors.Is(err, llm.ErrTransient) {
				t.Fatalf("generate sample %d: %v", sample, err)
			}
			continue
		}
		if r.Code == "" {
			t.Fatalf("generate sample %d returned empty code", sample)
		}
		codes = append(codes, r.Code)
	}
	if len(codes) < 2 {
		t.Fatalf("only %d/4 pinned generates succeeded; fixture set too thin", len(codes))
	}
	rr, err := c.Refine(ctx, llm.RefineRequest{
		TaskID:     tk.ID,
		Spec:       tk.Spec,
		CandidateA: codes[0],
		CandidateB: codes[1],
		FocusHint:  "checked-in fixture divergence",
	})
	if err != nil && !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("refine: %v", err)
	}
	if err == nil && rr.Code == "" {
		t.Fatal("refine returned empty code")
	}
	jr, err := c.JudgeOutput(ctx, llm.JudgeRequest{
		TaskID: tk.ID,
		Spec:   tk.Spec,
		Case:   pinnedJudgeCase(tk),
	})
	if err != nil && !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("judge: %v", err)
	}
	if err == nil && jr.Predicted == nil {
		t.Fatal("judge returned nil trace")
	}
}

// TestCheckedInFixturesReplay replays the checked-in fixture set with a
// transport that fails the test on any dial, after the staleness gate has
// vouched for every file.
func TestCheckedInFixturesReplay(t *testing.T) {
	tk := eval.Suite()[0]
	if *updateFixtures {
		if err := os.RemoveAll(checkedInDir); err != nil {
			t.Fatal(err)
		}
		rec, err := New("deepseek-r1", 1, Options{
			Mode:       ModeRecord,
			FixtureDir: checkedInDir,
			Tasks:      eval.Suite()[:1],
		})
		if err != nil {
			t.Fatal(err)
		}
		drivePinned(t, rec, tk)
		rec.Close()
	}

	n, err := VerifyFixtureDir(checkedInDir)
	if err != nil {
		t.Fatalf("checked-in fixtures failed the staleness gate: %v", err)
	}
	if n == 0 {
		t.Fatal("no checked-in fixtures found; run with -update-fixtures to record them")
	}

	rep, err := New("deepseek-r1", 1, Options{
		Mode:       ModeReplay,
		FixtureDir: checkedInDir,
		Transport:  dialBomb{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	drivePinned(t, rep, tk)
	if st := rep.ReadStats(); st.FixtureHits == 0 || st.FixtureMisses != 0 {
		t.Fatalf("replay fixture counters = %d hits / %d misses, want all hits", st.FixtureHits, st.FixtureMisses)
	}
}
