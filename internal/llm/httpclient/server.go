package httpclient

// Server is the reference completions endpoint: an OpenAI-style HTTP
// surface over the deterministic SimClient, used as the record-mode
// backend, as the target of the fault drills, and as a stand-in for a real
// deployment in the daemon smoke. It is production code (vfocus -llm
// record with no URL runs it embedded), so it listens on net.Listener
// rather than depending on httptest.
//
// Fault scripting has two layers: faultinject points (PointLLMRequest /
// PointLLMResponse, keyed by task ID) for panics and sleeps on the serving
// goroutine, and a PushFault queue for protocol-level faults — forced
// status codes with Retry-After, and bodies truncated mid-stream — that a
// hook-style fn cannot express.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/serve/faultinject"
)

// CompletionsPath is the single wire route.
const CompletionsPath = "/v1/chat/completions"

// Fault is one scripted protocol fault, consumed FIFO by the next request.
type Fault struct {
	// Status forces this HTTP status (with a wire error body) instead of
	// dispatching to the backing client. 0 dispatches normally.
	Status int
	// RetryAfter sets the Retry-After header (seconds) on a forced status.
	RetryAfter string
	// TruncateBody, when > 0, writes only the first TruncateBody bytes of
	// the (otherwise successful) response body — a torn response.
	TruncateBody int
}

// Server serves the completions endpoint over SimClients built per
// (model, seed) from the wire op, so one server answers requests from any
// run or job deterministically.
type Server struct {
	tasks []eval.Task

	mu      sync.Mutex
	clients map[simKey]llm.Client
	faults  []Fault
	wire    int64 // requests that reached the handler
}

type simKey struct {
	model string
	seed  int64
}

// NewServer builds a reference server over the given task set (nil means
// the full eval suite).
func NewServer(tasks []eval.Task) *Server {
	if tasks == nil {
		tasks = eval.Suite()
	}
	return &Server{tasks: tasks, clients: make(map[simKey]llm.Client)}
}

// PushFault queues a scripted fault; each request consumes at most one.
func (s *Server) PushFault(f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = append(s.faults, f)
}

// WireRequests reports how many requests reached the handler — the
// stampede drills pin this to 1.
func (s *Server) WireRequests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wire
}

func (s *Server) popFault() (Fault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.faults) == 0 {
		return Fault{}, false
	}
	f := s.faults[0]
	s.faults = s.faults[1:]
	return f, true
}

func (s *Server) clientFor(model string, seed int64) (llm.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := simKey{model: model, seed: seed}
	if c, ok := s.clients[k]; ok {
		return c, nil
	}
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return nil, err
	}
	c, err := llm.NewSimClient(profile, seed, s.tasks)
	if err != nil {
		return nil, err
	}
	s.clients[k] = c
	return c, nil
}

// Handler returns the HTTP handler serving CompletionsPath.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(CompletionsPath, s.handleCompletions)
	return mux
}

func (s *Server) handleCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var wr wireRequest
	if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
		s.writeError(w, http.StatusBadRequest, wireErrInternal, err.Error(), "", 0)
		return
	}
	s.mu.Lock()
	s.wire++
	s.mu.Unlock()

	faultinject.Fire(faultinject.PointLLMRequest, wr.VFocus.TaskID)

	fault, _ := s.popFault()
	if fault.Status != 0 {
		typ := wireErrInternal
		if fault.Status == http.StatusTooManyRequests {
			typ = wireErrRateLimited
		}
		s.writeError(w, fault.Status, typ, "scripted fault", fault.RetryAfter, fault.TruncateBody)
		return
	}

	resp, status, typ, msg := s.dispatch(r.Context(), wr)
	if status != http.StatusOK {
		s.writeError(w, status, typ, msg, retryAfterFor(status), fault.TruncateBody)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, wireErrInternal, err.Error(), "", 0)
		return
	}
	faultinject.Fire(faultinject.PointLLMResponse, wr.VFocus.TaskID)
	if fault.TruncateBody > 0 && fault.TruncateBody < len(body) {
		body = body[:fault.TruncateBody]
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// retryAfterFor advertises a pacing hint on simulated-transient 429s.
func retryAfterFor(status int) string {
	if status == http.StatusTooManyRequests {
		return "0"
	}
	return ""
}

// dispatch routes the wire op to the backing SimClient and maps the result
// to (response, status).
func (s *Server) dispatch(ctx context.Context, wr wireRequest) (*wireResponse, int, string, string) {
	client, err := s.clientFor(wr.Model, wr.VFocus.Seed)
	if err != nil {
		return nil, http.StatusBadRequest, wireErrUnknownModel, err.Error()
	}
	op := wr.VFocus
	switch op.Op {
	case opGenerate:
		guidelines := ""
		if len(wr.Messages) > 1 {
			guidelines = wr.Messages[0].Content
		}
		spec := wr.Messages[len(wr.Messages)-1].Content
		resp, err := client.Generate(ctx, llm.GenerateRequest{
			TaskID:      op.TaskID,
			Spec:        spec,
			Guidelines:  guidelines,
			SampleIndex: op.SampleIndex,
			Attempt:     op.Attempt,
		})
		if err != nil {
			return s.mapError(err)
		}
		return textResponse(resp), http.StatusOK, "", ""
	case opRefine:
		spec := wr.Messages[len(wr.Messages)-1].Content
		resp, err := client.Refine(ctx, llm.RefineRequest{
			TaskID:      op.TaskID,
			Spec:        spec,
			CandidateA:  op.CandidateA,
			CandidateB:  op.CandidateB,
			FocusHint:   op.FocusHint,
			SampleIndex: op.SampleIndex,
		})
		if err != nil {
			return s.mapError(err)
		}
		return textResponse(resp), http.StatusOK, "", ""
	case opJudge:
		c, err := decodeCase(op.Case)
		if err != nil {
			return nil, http.StatusBadRequest, wireErrInternal, err.Error()
		}
		spec := wr.Messages[len(wr.Messages)-1].Content
		jr, err := client.JudgeOutput(ctx, llm.JudgeRequest{
			TaskID:      op.TaskID,
			Spec:        spec,
			Case:        c,
			SampleIndex: op.SampleIndex,
		})
		if err != nil {
			return s.mapError(err)
		}
		return judgeResponse(jr), http.StatusOK, "", ""
	default:
		return nil, http.StatusBadRequest, wireErrInternal, fmt.Sprintf("unknown op %q", op.Op)
	}
}

// mapError converts a backing-client error to wire (status, type).
func (s *Server) mapError(err error) (*wireResponse, int, string, string) {
	switch {
	case errors.Is(err, llm.ErrUnknownTask):
		return nil, http.StatusBadRequest, wireErrUnknownTask, err.Error()
	case errors.Is(err, llm.ErrUnknownModel):
		return nil, http.StatusBadRequest, wireErrUnknownModel, err.Error()
	case errors.Is(err, llm.ErrTransient):
		return nil, http.StatusTooManyRequests, wireErrRateLimited, err.Error()
	default:
		return nil, http.StatusInternalServerError, wireErrInternal, err.Error()
	}
}

// textResponse wraps a Generate/Refine result as one completion choice.
func textResponse(resp llm.Response) *wireResponse {
	return &wireResponse{
		Choices: []wireChoice{{
			Message:      wireRespMessage{Content: resp.Code, Reasoning: resp.Reasoning},
			FinishReason: "stop",
		}},
		Usage: wireUsage{ReasoningTokens: resp.ReasoningTokens},
	}
}

// judgeResponse wraps a JudgeOutput result, carrying the predicted trace
// in the structured judge field.
func judgeResponse(jr llm.JudgeResponse) *wireResponse {
	return &wireResponse{
		Choices: []wireChoice{{
			Message:      wireRespMessage{Judge: encodeTrace(jr.Predicted)},
			FinishReason: "stop",
		}},
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, typ, msg, retryAfter string, truncate int) {
	body, _ := json.Marshal(&wireResponse{Error: &wireError{Type: typ, Message: msg}})
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if truncate > 0 && truncate < len(body) {
		body = body[:truncate]
	}
	w.Write(body)
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves until the returned
// stop function is called. It returns the bound base URL.
func (s *Server) Start(addr string) (baseURL string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop = func() {
		srv.Close()
		<-done
	}
	return "http://" + ln.Addr().String(), stop, nil
}
