package httpclient

import (
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker. Closed it admits
// everything; after threshold consecutive wire failures it opens and
// fast-fails every caller for cooldown; then it half-opens and admits
// exactly one probe — the probe's outcome closes the breaker or re-opens
// it for another cooldown. Successes anywhere reset the failure count.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	failures int
	openedAt time.Time
	state    breakerState
	probing  bool // a half-open probe is in flight

	trips int64 // cumulative, read via stats

	now func() time.Time // test hook
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a wire attempt may proceed. In half-open state
// only the first caller gets through (as the probe); the rest fast-fail
// until the probe reports.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// report records the outcome of an admitted wire attempt.
func (b *breaker) report(ok bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		b.state = breakerClosed
		b.probing = false
		return
	}
	if b.state == breakerHalfOpen {
		// Failed probe: back to open for a full cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
		return
	}
	b.failures++
	if b.failures >= b.threshold && b.state == breakerClosed {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// abort releases an admission whose attempt never reached the wire (e.g.
// the caller cancelled while waiting for a rate token): no outcome is
// recorded, and a half-open probe slot is handed back.
func (b *breaker) abort() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
