package httpclient

// The fault matrix: every failure mode a real completions dependency
// exhibits, driven against the resilience stack with scripted handlers and
// the faultinject points, under -race, with a goroutine-leak gate on the
// heaviest drill.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/serve/faultinject"
)

func testTask(t *testing.T) eval.Task {
	t.Helper()
	return eval.Suite()[0]
}

func testGenReq(tk eval.Task, sample int) llm.GenerateRequest {
	return llm.GenerateRequest{TaskID: tk.ID, Spec: tk.Spec, SampleIndex: sample}
}

// fastOptions are millisecond-scale resilience knobs for drills.
func fastOptions(url string) Options {
	return Options{
		URL:            url,
		AttemptTimeout: 2 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffCap:     4 * time.Millisecond,
	}
}

func mustClient(t *testing.T, opts Options) *Client {
	t.Helper()
	c, err := New("deepseek-r1", 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// scriptedServer runs fn per request, capturing request bodies.
type scriptedServer struct {
	ts     *httptest.Server
	mu     sync.Mutex
	bodies [][]byte
	fn     func(n int, w http.ResponseWriter)
}

func newScripted(t *testing.T, fn func(n int, w http.ResponseWriter)) *scriptedServer {
	s := &scriptedServer{fn: fn}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		s.bodies = append(s.bodies, body)
		n := len(s.bodies)
		s.mu.Unlock()
		s.fn(n, w)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *scriptedServer) requestBodies() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.bodies))
	copy(out, s.bodies)
	return out
}

// okBody renders a minimal valid completion.
func okBody() []byte {
	b, _ := json.Marshal(&wireResponse{
		Choices: []wireChoice{{
			Message:      wireRespMessage{Content: "module top_module(); endmodule"},
			FinishReason: "stop",
		}},
		Usage: wireUsage{ReasoningTokens: 42},
	})
	return b
}

// TestTornBodyTypedErrorAndBitIdenticalRetry is the torn-response drill:
// a truncated JSON body must surface as ErrTornBody (classified
// transient), never as a half-parsed completion, and the automatic retry
// must put bit-identical request bytes back on the wire and succeed.
func TestTornBodyTypedErrorAndBitIdenticalRetry(t *testing.T) {
	tk := testTask(t)
	full := okBody()

	// Retries disabled: the typed error is caller-visible.
	s0 := newScripted(t, func(n int, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(full[:20])
	})
	opts := fastOptions(s0.ts.URL)
	opts.Retries = -1
	c0 := mustClient(t, opts)
	_, err := c0.Generate(context.Background(), testGenReq(tk, 0))
	if !errors.Is(err, ErrTornBody) {
		t.Fatalf("torn body error = %v, want ErrTornBody", err)
	}
	if !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("torn body error %v must classify transient", err)
	}

	// Retries enabled: first attempt torn, second identical and whole.
	s1 := newScripted(t, func(n int, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		if n == 1 {
			w.Write(full[:20])
			return
		}
		w.Write(full)
	})
	c1 := mustClient(t, fastOptions(s1.ts.URL))
	resp, err := c1.Generate(context.Background(), testGenReq(tk, 0))
	if err != nil {
		t.Fatalf("Generate after torn retry: %v", err)
	}
	if resp.Code == "" || resp.ReasoningTokens != 42 {
		t.Fatalf("unexpected completion %+v", resp)
	}
	bodies := s1.requestBodies()
	if len(bodies) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(bodies))
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Fatalf("retry was not bit-identical:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	if st := c1.ReadStats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestRetryAfterHonored pins the 429 path: the client waits at least the
// advertised Retry-After before the retry.
func TestRetryAfterHonored(t *testing.T) {
	tk := testTask(t)
	var firstRetryGap atomic.Int64
	var last atomic.Int64
	s := newScripted(t, func(n int, w http.ResponseWriter) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); n == 2 {
			firstRetryGap.Store(now - prev)
		}
		if n == 1 {
			w.Header().Set("Retry-After", "0.2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"type":"rate_limited","message":"slow down"}}`))
			return
		}
		w.Write(okBody())
	})
	c := mustClient(t, fastOptions(s.ts.URL))
	if _, err := c.Generate(context.Background(), testGenReq(tk, 0)); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if gap := time.Duration(firstRetryGap.Load()); gap < 150*time.Millisecond {
		t.Fatalf("retry after 429 came %v after the 429, want >= 150ms (Retry-After: 0.2)", gap)
	}
}

// Test5xxBurstRetriedThrough pins the 5xx path: a burst of 500s inside the
// retry budget is absorbed.
func Test5xxBurstRetriedThrough(t *testing.T) {
	tk := testTask(t)
	s := newScripted(t, func(n int, w http.ResponseWriter) {
		if n <= 3 {
			http.Error(w, `{"error":{"type":"internal","message":"blip"}}`, http.StatusInternalServerError)
			return
		}
		w.Write(okBody())
	})
	c := mustClient(t, fastOptions(s.ts.URL))
	if _, err := c.Generate(context.Background(), testGenReq(tk, 0)); err != nil {
		t.Fatalf("Generate through 5xx burst: %v", err)
	}
	if st := c.ReadStats(); st.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", st.Retries)
	}
}

// TestPerAttemptTimeout pins the slow-upstream path using the reference
// server and the PointLLMRequest sleep fault: the first attempt stalls
// past AttemptTimeout, the retry (fault exhausted) succeeds, and the
// caller's own context stays live throughout.
func TestPerAttemptTimeout(t *testing.T) {
	defer faultinject.Reset()
	tk := testTask(t)
	srv := NewServer(eval.Suite()[:1])
	url, stop, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	faultinject.Arm(faultinject.PointLLMRequest, tk.ID, 1, func() {
		time.Sleep(400 * time.Millisecond)
	})
	opts := fastOptions(url)
	opts.AttemptTimeout = 50 * time.Millisecond
	c := mustClient(t, opts)
	start := time.Now()
	if _, err := c.Generate(context.Background(), testGenReq(tk, 0)); err != nil {
		t.Fatalf("Generate past slow attempt: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("recovery took %v; per-attempt timeout did not cut the stall", elapsed)
	}
	if st := c.ReadStats(); st.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", st.Retries)
	}
}

// TestServerTornConnection drives the PointLLMResponse panic fault: the
// reference server tears the connection between decode and response, the
// client classifies it transient and retries to success.
func TestServerTornConnection(t *testing.T) {
	defer faultinject.Reset()
	tk := testTask(t)
	srv := NewServer(eval.Suite()[:1])
	url, stop, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	faultinject.Arm(faultinject.PointLLMResponse, tk.ID, 1, func() {
		panic("torn connection")
	})
	c := mustClient(t, fastOptions(url))
	if _, err := c.Generate(context.Background(), testGenReq(tk, 0)); err != nil {
		t.Fatalf("Generate past torn connection: %v", err)
	}
	if st := c.ReadStats(); st.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", st.Retries)
	}
}

// TestBreakerTripHalfOpenRecovery walks the breaker lifecycle: trip on
// consecutive failures (fast-fail while open, zero wire traffic), then a
// half-open probe against a recovered upstream closes it again.
func TestBreakerTripHalfOpenRecovery(t *testing.T) {
	tk := testTask(t)
	var healthy atomic.Bool
	s := newScripted(t, func(n int, w http.ResponseWriter) {
		if !healthy.Load() {
			http.Error(w, `{"error":{"type":"internal","message":"down"}}`, http.StatusInternalServerError)
			return
		}
		w.Write(okBody())
	})
	opts := fastOptions(s.ts.URL)
	opts.Retries = -1
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 80 * time.Millisecond
	c := mustClient(t, opts)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Generate(ctx, testGenReq(tk, i)); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if st := c.ReadStats(); st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	wireBefore := len(s.requestBodies())
	_, err := c.Generate(ctx, testGenReq(tk, 3))
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("open-breaker error = %v, want ErrBreakerOpen and transient", err)
	}
	if got := len(s.requestBodies()) - wireBefore; got != 0 {
		t.Fatalf("open breaker let %d requests to the wire", got)
	}
	if st := c.ReadStats(); st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}

	// Upstream recovers; after the cooldown the half-open probe succeeds
	// and the circuit closes for everyone.
	healthy.Store(true)
	time.Sleep(100 * time.Millisecond)
	if _, err := c.Generate(ctx, testGenReq(tk, 4)); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.Generate(ctx, testGenReq(tk, 5)); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
}

// TestCancelMidRetryNeverRetries pins the safety rule: caller cancellation
// during the backoff wait returns context.Canceled promptly and issues no
// further wire requests — and no goroutines leak from the abandoned work.
func TestCancelMidRetryNeverRetries(t *testing.T) {
	tk := testTask(t)
	s := newScripted(t, func(n int, w http.ResponseWriter) {
		http.Error(w, `{"error":{"type":"internal","message":"down"}}`, http.StatusInternalServerError)
	})
	// A private transport so the leak check can retire this test's own
	// keep-alive connections.
	tr := &http.Transport{}
	opts := fastOptions(s.ts.URL)
	opts.Transport = tr
	opts.Retries = 10
	opts.BackoffBase = 200 * time.Millisecond
	opts.BackoffCap = 200 * time.Millisecond
	opts.BreakerThreshold = 1000
	c := mustClient(t, opts)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Generate(ctx, testGenReq(tk, 0))
		done <- err
	}()
	// Let the first attempt fail and the backoff start, then cancel.
	deadline := time.After(2 * time.Second)
	for len(s.requestBodies()) == 0 {
		select {
		case <-deadline:
			t.Fatal("first attempt never reached the server")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Generate = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Generate did not return promptly")
	}
	wire := len(s.requestBodies())
	time.Sleep(50 * time.Millisecond)
	if got := len(s.requestBodies()); got != wire {
		t.Fatalf("wire requests continued after cancel: %d -> %d", wire, got)
	}

	checkNoGoroutineLeak(t, before, func() {
		tr.CloseIdleConnections()
		s.ts.CloseClientConnections()
	})
}

// TestStampedeLeaderCancelAdoption: when the single-flight leader's caller
// cancels mid-request, a live waiter adopts leadership and completes —
// cancellation of one caller never fails the others.
func TestStampedeLeaderCancelAdoption(t *testing.T) {
	tk := testTask(t)
	release := make(chan struct{})
	var stalled sync.Once
	firstArrived := make(chan struct{})
	s := newScripted(t, func(n int, w http.ResponseWriter) {
		if n == 1 {
			stalled.Do(func() { close(firstArrived) })
			<-release // hold the leader's attempt until it is cancelled
			http.Error(w, "late", http.StatusInternalServerError)
			return
		}
		w.Write(okBody())
	})
	opts := fastOptions(s.ts.URL)
	c := mustClient(t, opts)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Generate(leaderCtx, testGenReq(tk, 0))
		leaderDone <- err
	}()
	<-firstArrived

	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Generate(context.Background(), testGenReq(tk, 0))
		waiterDone <- err
	}()
	// Give the waiter time to join the in-flight call, then cancel the
	// leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	close(release)
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter inherited the leader's fate: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed after leader cancellation")
	}
}

// TestResponseCacheHit pins the prompt-hash cache: the same logical
// request twice costs one wire request, and the counters say why.
func TestResponseCacheHit(t *testing.T) {
	tk := testTask(t)
	s := newScripted(t, func(n int, w http.ResponseWriter) { w.Write(okBody()) })
	c := mustClient(t, fastOptions(s.ts.URL))
	ctx := context.Background()
	r1, err := c.Generate(ctx, testGenReq(tk, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Generate(ctx, testGenReq(tk, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("cache returned a different completion: %+v vs %+v", r1, r2)
	}
	if got := len(s.requestBodies()); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
	st := c.ReadStats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters = %d hits / %d misses, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

// TestForViewsShareResilienceState: For-derived bindings share one breaker
// — failures under one (model, seed) protect every other binding.
func TestForViewsShareResilienceState(t *testing.T) {
	tk := testTask(t)
	s := newScripted(t, func(n int, w http.ResponseWriter) {
		http.Error(w, `{"error":{"type":"internal","message":"down"}}`, http.StatusInternalServerError)
	})
	opts := fastOptions(s.ts.URL)
	opts.Retries = -1
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Minute
	c := mustClient(t, opts)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Generate(ctx, testGenReq(tk, i)); err == nil {
			t.Fatal("expected failure")
		}
	}
	v := c.For("qwq-32b", 99)
	if v.ModelName() != "qwq-32b" {
		t.Fatalf("ModelName = %q", v.ModelName())
	}
	_, err := v.Generate(ctx, testGenReq(tk, 0))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("view error = %v, want shared breaker open", err)
	}
}

func checkNoGoroutineLeak(t *testing.T, before int, retire func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if retire != nil {
			retire()
		}
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
