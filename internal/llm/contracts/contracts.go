// Package contracts holds the behavioral contract every llm.Client
// implementation must satisfy, in the frameless contracts style of
// resultstore/contracts: a test helper each adapter's test file invokes
// with a harness. One suite, both clients — the deterministic SimClient
// and the resilient HTTP adapter (live and over replay fixtures) — so a
// pipeline cannot observe which backend it is ranking completions from.
package contracts

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/testbench"
)

// Harness adapts one client implementation to the suite. NewClient is
// required; the remaining hooks gate backend-specific drills — a nil hook
// skips its subtest (SimClient has no wire, no breaker, no pacing).
type Harness struct {
	// NewClient returns a client bound to the given seed. Two clients
	// built with the same seed must be behaviorally identical.
	NewClient func(t *testing.T, seed int64) llm.Client

	// WireCount, when set, reports the cumulative wire requests issued by
	// every client this harness built — the stampede drill pins M
	// concurrent identical Generates to exactly one.
	WireCount func() int64

	// FailingClient, when set, returns a client whose every wire attempt
	// fails transiently, plus the number of *logical calls* after which
	// the circuit must be open (threshold and retry budget folded in by
	// the harness).
	FailingClient func(t *testing.T) (c llm.Client, callsToTrip int)

	// PacedClient, when set, returns a client rate-limited to rps with a
	// burst of one, for the pacing drill.
	PacedClient func(t *testing.T, rps float64) llm.Client
}

// task returns the benchmark task the suite drives requests against.
func task() eval.Task { return eval.Suite()[0] }

// genReq builds a deterministic Generate request.
func genReq(tk eval.Task, sample int) llm.GenerateRequest {
	return llm.GenerateRequest{
		TaskID:      tk.ID,
		Spec:        tk.Spec,
		Guidelines:  "contract-suite guidelines",
		SampleIndex: sample,
	}
}

// judgeCase builds a small all-zero-input case over the task's interface.
func judgeCase(tk eval.Task) testbench.Case {
	var c testbench.Case
	for s := 0; s < 2; s++ {
		ins := make(map[string]sim.Value, len(tk.Ifc.Inputs))
		for _, p := range tk.Ifc.Inputs {
			ins[p.Name] = sim.NewKnown(p.Width, uint64(s))
		}
		c.Steps = append(c.Steps, testbench.Step{Inputs: ins})
	}
	return c
}

// Run drives the full contract against the harness.
func Run(t *testing.T, h Harness) {
	t.Helper()
	ctx := context.Background()
	tk := task()

	// Determinism: two independently built clients answer an identical
	// request stream identically — responses, reasoning, token counts,
	// judge traces, and errors all match.
	t.Run("Determinism", func(t *testing.T) {
		a := h.NewClient(t, 1)
		b := h.NewClient(t, 1)
		for sample := 0; sample < 4; sample++ {
			ra, errA := a.Generate(ctx, genReq(tk, sample))
			rb, errB := b.Generate(ctx, genReq(tk, sample))
			if (errA == nil) != (errB == nil) {
				t.Fatalf("sample %d: error divergence: %v vs %v", sample, errA, errB)
			}
			if errA != nil {
				if !errors.Is(errA, llm.ErrTransient) {
					t.Fatalf("sample %d: unexpected permanent error %v", sample, errA)
				}
				continue
			}
			if ra != rb {
				t.Fatalf("sample %d: response divergence:\n%+v\nvs\n%+v", sample, ra, rb)
			}
			if ra.Code == "" {
				t.Fatalf("sample %d: empty completion", sample)
			}
		}
		// Judge determinism over a concrete case.
		jreq := llm.JudgeRequest{TaskID: tk.ID, Spec: tk.Spec, Case: judgeCase(tk), SampleIndex: 0}
		ja, errA := a.JudgeOutput(ctx, jreq)
		jb, errB := b.JudgeOutput(ctx, jreq)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("judge error divergence: %v vs %v", errA, errB)
		}
		if errA == nil {
			if ja.Predicted == nil || jb.Predicted == nil {
				t.Fatal("judge returned nil trace")
			}
			if ja.Predicted.Fingerprint() != jb.Predicted.Fingerprint() {
				t.Fatal("judge trace divergence")
			}
		}
	})

	// Repeatability: the same client asked twice gives the same answer.
	t.Run("Repeatable", func(t *testing.T) {
		c := h.NewClient(t, 2)
		r1, err1 := c.Generate(ctx, genReq(tk, 0))
		r2, err2 := c.Generate(ctx, genReq(tk, 0))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence: %v vs %v", err1, err2)
		}
		if err1 == nil && r1 != r2 {
			t.Fatalf("repeat divergence:\n%+v\nvs\n%+v", r1, r2)
		}
	})

	// Cancellation propagation: a cancelled caller context surfaces as the
	// context's own error — never reclassified as a transient the pipeline
	// would retry.
	t.Run("Cancellation", func(t *testing.T) {
		c := h.NewClient(t, 3)
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		_, err := c.Generate(cctx, genReq(tk, 0))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Generate = %v, want context.Canceled", err)
		}
		if errors.Is(err, llm.ErrTransient) {
			t.Fatalf("cancellation misclassified as transient: %v", err)
		}
		_, err = c.Refine(cctx, llm.RefineRequest{TaskID: tk.ID, Spec: tk.Spec, CandidateA: "a", CandidateB: "b"})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Refine = %v, want context.Canceled", err)
		}
		_, err = c.JudgeOutput(cctx, llm.JudgeRequest{TaskID: tk.ID, Spec: tk.Spec, Case: judgeCase(tk)})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled JudgeOutput = %v, want context.Canceled", err)
		}
	})

	// Error identity: unknown tasks answer llm.ErrUnknownTask through any
	// backend, and the error is permanent (not transient).
	t.Run("ErrorIdentity", func(t *testing.T) {
		c := h.NewClient(t, 4)
		_, err := c.Generate(ctx, llm.GenerateRequest{TaskID: "no_such_task", Spec: "?"})
		if !errors.Is(err, llm.ErrUnknownTask) {
			t.Fatalf("unknown task = %v, want ErrUnknownTask", err)
		}
		if errors.Is(err, llm.ErrTransient) {
			t.Fatalf("unknown task classified transient: %v", err)
		}
	})

	// Stampede: M concurrent identical Generates all succeed with the
	// identical completion, and — when the backend exposes a wire counter
	// — cost exactly one wire request.
	t.Run("Stampede", func(t *testing.T) {
		c := h.NewClient(t, 5)
		var before int64
		if h.WireCount != nil {
			before = h.WireCount()
		}
		const callers = 16
		req := genReq(tk, 1)
		var wg sync.WaitGroup
		results := make([]llm.Response, callers)
		errs := make([]error, callers)
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g], errs[g] = c.Generate(ctx, req)
			}(g)
		}
		wg.Wait()
		for g := 0; g < callers; g++ {
			if errs[g] != nil {
				t.Fatalf("caller %d: %v", g, errs[g])
			}
			if results[g] != results[0] {
				t.Fatalf("caller %d diverged from caller 0", g)
			}
		}
		if h.WireCount != nil {
			if got := h.WireCount() - before; got != 1 {
				t.Fatalf("stampede issued %d wire requests, want exactly 1", got)
			}
		}
	})

	// Breaker: after enough consecutive wire failures the circuit opens
	// and callers fast-fail — still transient (the pipeline may retry
	// later), but with zero wire traffic while open.
	t.Run("BreakerFastFail", func(t *testing.T) {
		if h.FailingClient == nil {
			t.Skip("backend has no circuit breaker")
		}
		c, calls := h.FailingClient(t)
		for i := 0; i < calls; i++ {
			// Distinct samples: each logical call is a fresh request, so
			// coalescing and caching cannot absorb the failures.
			if _, err := c.Generate(ctx, genReq(tk, i)); err == nil {
				t.Fatalf("call %d unexpectedly succeeded", i)
			}
		}
		var before int64
		if h.WireCount != nil {
			before = h.WireCount()
		}
		_, err := c.Generate(ctx, genReq(tk, calls))
		if !errors.Is(err, llm.ErrTransient) {
			t.Fatalf("breaker-open error = %v, want transient", err)
		}
		if !strings.Contains(err.Error(), "breaker") {
			t.Fatalf("breaker-open error %v does not identify the breaker", err)
		}
		if h.WireCount != nil {
			if got := h.WireCount() - before; got != 0 {
				t.Fatalf("open breaker let %d wire requests through, want 0", got)
			}
		}
	})

	// Pacing: a client limited to rps with burst 1 cannot finish N
	// distinct requests faster than the bucket refills.
	t.Run("RateLimitPacing", func(t *testing.T) {
		if h.PacedClient == nil {
			t.Skip("backend has no rate limiter")
		}
		const rps = 50.0
		const n = 5
		c := h.PacedClient(t, rps)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := c.Generate(ctx, genReq(tk, i)); err != nil && !errors.Is(err, llm.ErrTransient) {
				t.Fatalf("paced call %d: %v", i, err)
			}
		}
		elapsed := time.Since(start)
		// Burst 1 admits the first immediately; the remaining n-1 wait a
		// token each. Allow generous scheduling slack below the ideal.
		min := time.Duration(float64(n-1) / rps * float64(time.Second) / 2)
		if elapsed < min {
			t.Fatalf("paced %d calls finished in %v, want >= %v", n, elapsed, min)
		}
	})
}
