package llm

import (
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
)

// buildCase constructs a one-case stimulus with all-zero inputs for a task.
func buildCase(task eval.Task) *testbench.Stimulus {
	inputs := make(map[string]sim.Value)
	for _, in := range task.Ifc.DataInputs() {
		inputs[in.Name] = sim.NewKnown(in.Width, 0)
	}
	if task.Ifc.Reset != "" {
		inputs[task.Ifc.Reset] = sim.NewKnown(1, 0)
	}
	return &testbench.Stimulus{
		Ifc:   task.Ifc,
		Cases: []testbench.Case{{Steps: []testbench.Step{{Inputs: inputs}}}},
	}
}

// runCase executes a stimulus against a parsed design.
func runCase(src *ast.Source, st *testbench.Stimulus) *testbench.Trace {
	return testbench.Run(src, eval.TopModule, st)
}
