package llm

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/eval"
	"repro/internal/mutate"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
	"repro/internal/verilog/printer"
	"repro/internal/xrng"
)

// SimClient is the simulated reasoning-LLM backend. It is deterministic for
// a fixed (profile, seed) pair: every request derives its randomness from a
// hash of the seed and the request's identifying fields, so repeated runs
// and retries reproduce exactly.
type SimClient struct {
	profile Profile
	seed    int64
	tasks   map[string]eval.Task
	golden  map[string]*ast.Source

	// genMemo caches Generate responses by request identity. Generation is
	// a deterministic function of (seed, profile, request), and experiment
	// drivers replay the identical request stream once per pipeline variant,
	// so the memo turns three of every four completions into map hits.
	genMu   sync.Mutex
	genMemo map[string]genOutcome
}

// genOutcome is a memoized Generate result.
type genOutcome struct {
	resp Response
	err  error
}

var _ Client = (*SimClient)(nil)

// NewSimClient builds a simulated client for one model profile over the
// benchmark tasks.
func NewSimClient(profile Profile, seed int64, tasks []eval.Task) (*SimClient, error) {
	c := &SimClient{
		profile: profile,
		seed:    seed,
		tasks:   make(map[string]eval.Task, len(tasks)),
		golden:  make(map[string]*ast.Source, len(tasks)),
	}
	for _, t := range tasks {
		src, err := eval.ParseCached(t.Golden)
		if err != nil {
			return nil, fmt.Errorf("task %s golden: %w", t.ID, err)
		}
		c.tasks[t.ID] = t
		c.golden[t.ID] = src
	}
	return c, nil
}

// ModelName implements Client.
func (c *SimClient) ModelName() string { return c.profile.Name }

// fnvAdd folds bytes into a running 64-bit FNV-1a hash (the allocation-free
// replacement for boxing a hash/fnv hasher per request). The constants are
// sim's canonical definitions, shared with the fingerprint paths.
func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * sim.FNVPrime64
	}
	return h
}

// rngFor derives a deterministic RNG from the request identity. Seeding a
// stream is one word (xrng), so deriving a fresh RNG per request no longer
// shows up in the CPU profile the way math/rand's 607-word warmup did.
func (c *SimClient) rngFor(parts ...string) *xrng.Rand {
	var buf [20]byte
	h := fnvAdd(sim.FNVOffset64, string(strconv.AppendInt(buf[:0], c.seed, 10)))
	h = fnvAdd(h, "|")
	h = fnvAdd(h, c.profile.Name)
	for _, p := range parts {
		h = (h ^ 0) * sim.FNVPrime64
		h = fnvAdd(h, p)
	}
	return xrng.New(h)
}

// canonicalSeed derives the per-task "common misconception" seed shared by
// all candidates of a task.
func (c *SimClient) canonicalSeed(taskID string) int64 {
	return int64(fnvAdd(sim.FNVOffset64, "canonical|"+taskID))
}

// canonicalProb returns the per-task misconception strength. Tasks split
// roughly in half: some have a strong shared misconception (most wrong
// candidates make the *same* mistake, so a large wrong cluster can outvote a
// thin correct one — the failure mode self-consistency inherits), while on
// the rest errors scatter idiosyncratically (even a few correct candidates
// form the plurality, which is how ranking lifts tasks whose raw pass rate
// is low). The model-level CanonicalProb scales the strong case.
func (c *SimClient) canonicalProb(taskID string) float64 {
	if fnvAdd(sim.FNVOffset64, "misconception|"+taskID)%2 == 0 {
		return 0.06
	}
	return c.profile.CanonicalProb * 1.3
}

// Generate implements Client. Results are memoized: the client is
// deterministic, so identical requests always produce identical responses
// (including simulated transient failures).
func (c *SimClient) Generate(ctx context.Context, req GenerateRequest) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	key := req.TaskID + "|" + itoa(req.SampleIndex) + "|" + itoa(req.Attempt)
	c.genMu.Lock()
	if out, hit := c.genMemo[key]; hit {
		c.genMu.Unlock()
		return out.resp, out.err
	}
	c.genMu.Unlock()
	resp, err := c.generate(req)
	c.genMu.Lock()
	if c.genMemo == nil {
		c.genMemo = make(map[string]genOutcome)
	}
	c.genMemo[key] = genOutcome{resp: resp, err: err}
	c.genMu.Unlock()
	return resp, err
}

// generate computes one completion (the uncached Generate body).
func (c *SimClient) generate(req GenerateRequest) (Response, error) {
	task, ok := c.tasks[req.TaskID]
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownTask, req.TaskID)
	}
	rng := c.rngFor("gen", req.TaskID, itoa(req.SampleIndex), itoa(req.Attempt))
	if rng.Float64() < c.profile.PTransient {
		return Response{}, fmt.Errorf("%w: simulated rate limit", ErrTransient)
	}

	u := rng.Float64() // latent length percentile
	tokens := c.profile.ReasoningTokens(task.Difficulty, u)
	reasoning := c.reasoningText(task, tokens, rng)
	if rng.Float64() < c.profile.PNoTrace {
		reasoning, tokens = "", 0
	}

	top := c.golden[req.TaskID].FindModule(eval.TopModule)
	if rng.Float64() < c.profile.PInvalid {
		return Response{
			Code:            truncateCode(printModuleSource(c.golden[req.TaskID], top), rng),
			Reasoning:       reasoning,
			ReasoningTokens: tokens,
		}, nil
	}

	correct := rng.Float64() < c.profile.PassProbability(task.Category, task.Difficulty, u)
	var mod *ast.Module
	if correct {
		mod = mutate.Cosmetic(top, rng)
	} else {
		// With probability CanonicalProb the candidate reproduces the
		// task's common misconception exactly (one shared bug, so these
		// candidates agree behaviorally); otherwise it makes 1..MaxBugs
		// idiosyncratic mistakes.
		var cfg mutate.Config
		if rng.Float64() < c.canonicalProb(req.TaskID) {
			cfg = mutate.Config{
				Count:         1,
				CanonicalSeed: c.canonicalSeed(req.TaskID),
				CanonicalProb: 1,
			}
		} else {
			bugs := 1
			if c.profile.MaxBugs > 1 {
				bugs += rng.Intn(c.profile.MaxBugs)
			}
			cfg = mutate.Config{Count: bugs}
		}
		mutant, applied := mutate.Semantic(top, rng, cfg)
		if mutant == nil || len(applied) == 0 {
			mutant = mutate.Cosmetic(top, rng)
		}
		// Incorrect solutions also vary cosmetically.
		mod = mutate.Cosmetic(mutant, rng)
	}
	return Response{
		Code:            printModuleSource(c.golden[req.TaskID], mod),
		Reasoning:       reasoning,
		ReasoningTokens: tokens,
	}, nil
}

// Refine implements Client: the reasoning-augmented repair call. Focused
// prompts (non-empty FocusHint) raise the success probability — this is the
// paper's core claim that sharpening the model's attention on a concrete
// inconsistency beats blind resampling.
func (c *SimClient) Refine(ctx context.Context, req RefineRequest) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	task, ok := c.tasks[req.TaskID]
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownTask, req.TaskID)
	}
	rng := c.rngFor("refine", req.TaskID, itoa(req.SampleIndex), req.FocusHint,
		fingerprint(req.CandidateA), fingerprint(req.CandidateB))
	if rng.Float64() < c.profile.PTransient {
		return Response{}, fmt.Errorf("%w: simulated rate limit", ErrTransient)
	}

	// Refinement reasons inside the sweet spot by construction: the prompt
	// anchors the model on two concrete implementations.
	u := 0.25 + 0.3*rng.Float64()
	tokens := c.profile.ReasoningTokens(task.Difficulty, u)

	success := c.profile.RefineSkill * (1 - 0.45*c.profile.DiffScale*task.Difficulty)
	if req.FocusHint != "" {
		success += 0.18
	}
	top := c.golden[req.TaskID].FindModule(eval.TopModule)
	var mod *ast.Module
	if rng.Float64() < success {
		mod = mutate.Cosmetic(top, rng)
	} else if rng.Float64() < 0.5 && req.CandidateA != "" {
		// The model found no actionable inconsistency and restated one
		// input candidate.
		return Response{Code: req.CandidateA, Reasoning: "no inconsistency found", ReasoningTokens: tokens}, nil
	} else {
		mutant, _ := mutate.Semantic(top, rng, mutate.Config{
			Count:         1,
			CanonicalSeed: c.canonicalSeed(req.TaskID),
			CanonicalProb: c.profile.CanonicalProb * 0.6,
		})
		if mutant == nil {
			mutant = top
		}
		mod = mutate.Cosmetic(mutant, rng)
	}
	return Response{
		Code:            printModuleSource(c.golden[req.TaskID], mod),
		Reasoning:       c.reasoningText(task, tokens, rng),
		ReasoningTokens: tokens,
	}, nil
}

// JudgeOutput implements Client: predict the expected outputs for one test
// case by "reasoning from the spec". The simulation runs the hidden golden
// design and corrupts the answer with probability depending on the model's
// judging skill and the task difficulty.
func (c *SimClient) JudgeOutput(ctx context.Context, req JudgeRequest) (JudgeResponse, error) {
	if err := ctx.Err(); err != nil {
		return JudgeResponse{}, err
	}
	task, ok := c.tasks[req.TaskID]
	if !ok {
		return JudgeResponse{}, fmt.Errorf("%w: %q", ErrUnknownTask, req.TaskID)
	}
	rng := c.rngFor("judge", req.TaskID, itoa(req.SampleIndex))
	if rng.Float64() < c.profile.PTransient {
		return JudgeResponse{}, fmt.Errorf("%w: simulated rate limit", ErrTransient)
	}

	st := &testbench.Stimulus{Ifc: task.Ifc, Cases: []testbench.Case{req.Case}}
	tr := testbench.Run(c.golden[req.TaskID], eval.TopModule, st)
	if tr.Err != nil || len(tr.Cases) != 1 {
		return JudgeResponse{}, fmt.Errorf("judge simulation failed: %v", tr.Err)
	}
	predicted := tr.Cases[0]

	accuracy := c.profile.JudgeSkill * (1 - 0.40*task.Difficulty)
	if rng.Float64() >= accuracy {
		corruptTrace(&predicted, rng)
	}
	return JudgeResponse{Predicted: &predicted}, nil
}

// corruptTrace flips one output bit somewhere in the trace, modeling a
// reasoning mistake.
func corruptTrace(ct *testbench.CaseTrace, rng *xrng.Rand) {
	if len(ct.Steps) == 0 {
		return
	}
	si := rng.Intn(len(ct.Steps))
	step := &ct.Steps[si]
	if len(step.Outputs) == 0 {
		return
	}
	oi := rng.Intn(len(step.Outputs))
	out := []byte(step.Outputs[oi])
	// Find bit characters after the 'b marker and flip one.
	var bitIdx []int
	marker := strings.IndexByte(string(out), 'b')
	for i := marker + 1; i >= 0 && i < len(out); i++ {
		if out[i] == '0' || out[i] == '1' {
			bitIdx = append(bitIdx, i)
		}
	}
	if len(bitIdx) == 0 {
		return
	}
	p := bitIdx[rng.Intn(len(bitIdx))]
	if out[p] == '0' {
		out[p] = '1'
	} else {
		out[p] = '0'
	}
	step.Outputs[oi] = string(out)
}

// reasoningText synthesizes a short trace summary; the token count is
// carried separately so the pipeline's density filter has real lengths
// without megabytes of filler.
func (c *SimClient) reasoningText(task eval.Task, tokens int, rng *xrng.Rand) string {
	stances := []string{
		"enumerated the interface and reset behavior",
		"worked through the timing diagram cycle by cycle",
		"derived the next-state logic from the spec",
		"checked boundary conditions and wrap-around",
		"cross-checked operator widths and signedness",
	}
	a, b := stances[rng.Intn(len(stances))], stances[rng.Intn(len(stances))]
	var sb strings.Builder
	sb.Grow(len("[ reasoning tokens] For : ; .") + 8 + len(task.ID) + len(a) + len(b))
	sb.WriteByte('[')
	sb.WriteString(strconv.Itoa(tokens))
	sb.WriteString(" reasoning tokens] For ")
	sb.WriteString(task.ID)
	sb.WriteString(": ")
	sb.WriteString(a)
	sb.WriteString("; ")
	sb.WriteString(b)
	sb.WriteByte('.')
	return sb.String()
}

// printModuleSource renders a source unit with the top module replaced by
// mod (supporting multi-module goldens).
func printModuleSource(src *ast.Source, mod *ast.Module) string {
	var b strings.Builder
	for _, m := range src.Modules {
		if m.Name == mod.Name {
			b.WriteString(printer.PrintModule(mod))
		} else {
			b.WriteString(printer.PrintModule(m))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// truncateCode produces a syntactically broken completion (the model ran out
// of output budget mid-module).
func truncateCode(code string, rng *xrng.Rand) string {
	if len(code) < 40 {
		return code[:len(code)/2]
	}
	frac := 0.35 + 0.45*rng.Float64()
	cut := int(float64(len(code)) * frac)
	return code[:cut] + "\n// ..."
}

// fingerprint hashes candidate text for RNG derivation.
func fingerprint(s string) string {
	return strconv.FormatUint(fnvAdd(sim.FNVOffset64, s), 16)
}

func itoa(n int) string { return strconv.Itoa(n) }
