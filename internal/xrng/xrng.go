// Package xrng provides the deterministic random source used by stimulus
// generation and the simulated LLM. It replaces math/rand's lagged-Fibonacci
// generator, whose 607-word seeding dominated the CPU profile: both the
// testbench generator and the simulated model derive a fresh, independently
// seeded stream per request, so seeding must cost a handful of instructions,
// not a kilobyte of state.
//
// The generator is splitmix64 (Steele, Lea & Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014) — the same mixer
// math/rand/v2 uses to expand seeds. Its output stream is a frozen part of
// this package's contract: stimulus streams, simulated completions, and the
// experiment artifacts all derive from it, and the stream-lock golden test
// pins the exact byte sequence so a refactor cannot silently shift every
// downstream decision.
package xrng

// Rand is a splitmix64 pseudorandom stream. The zero value is a valid
// generator (the stream seeded with 0). Not safe for concurrent use.
type Rand struct {
	state uint64
}

// New returns a generator whose stream is fully determined by seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Reseed resets the generator to the stream of the given seed, reusing the
// allocation.
func (r *Rand) Reseed(seed uint64) {
	r.state = seed
}

// Uint64 returns the next value of the splitmix64 stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits, the same
// construction math/rand/v2 uses.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
// Bias note: the straightforward 128-bit multiply-shift (Lemire) is used
// without the rejection step; for the small n this codebase draws (site
// counts, case counts, pool sizes — far below 2^32) the bias is below 2^-32
// and determinism matters more than the last ulp of uniformity.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrng: Intn with n <= 0")
	}
	// hi of a 64x64->128 multiply maps the uniform word into [0, n).
	x := r.Uint64()
	nn := uint64(n)
	hi, _ := mul64(x, nn)
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo). Spelled out
// rather than importing math/bits to keep the stream definition visibly
// self-contained; compiles to a single MUL on 64-bit targets.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w := aLo*bHi + t&mask
	hi = aHi*bHi + t>>32 + w>>32
	lo = a * b
	return hi, lo
}

// Shuffle pseudo-randomizes the order of n elements using the Fisher-Yates
// algorithm (same element access pattern as math/rand.Shuffle).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
