package xrng

import (
	"math"
	"testing"
)

// TestStreamLock pins the exact splitmix64 output stream. Stimulus
// generation, the simulated LLM, and mutation choices all derive from this
// stream, so any change here silently regenerates every experiment artifact;
// this golden makes such a change loud instead.
func TestStreamLock(t *testing.T) {
	want := []uint64{
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
		0x53cb9f0c747ea2ea,
		0x2c829abe1f4532e1,
		0xc584133ac916ab3c,
		0x3ee5789041c98ac3,
	}
	r := New(0x9E3779B97F4A7C15)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#016x, want %#016x", i, got, w)
		}
	}

	r = New(42)
	if got := r.Uint64(); got != 0xbdd732262feb6e95 {
		t.Fatalf("seed 42 first word = %#016x", got)
	}
	if got := r.Uint64(); got != 0x28efe333b266f103 {
		t.Fatalf("seed 42 second word = %#016x", got)
	}

	r = New(42)
	if got := r.Float64(); math.Abs(got-0.7415648787718233) > 1e-16 {
		t.Fatalf("seed 42 Float64 = %.17g", got)
	}

	r = New(7)
	wantInts := []int{3, 0, 9, 5, 4, 2}
	for i, w := range wantInts {
		if got := r.Intn(10); got != w {
			t.Fatalf("seed 7 Intn(10) #%d = %d, want %d", i, got, w)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	a := r.Uint64()
	var r2 Rand
	if b := r2.Uint64(); a != b {
		t.Fatal("zero-value streams diverge")
	}
}

func TestReseed(t *testing.T) {
	r := New(9)
	first := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Reseed(9)
	for i, w := range first {
		if got := r.Uint64(); got != w {
			t.Fatalf("reseeded word %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(2)
	for _, n := range []int{1, 2, 3, 7, 64, 1 << 20} {
		seen0 := false
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
			if v == 0 {
				seen0 = true
			}
		}
		if n <= 7 && !seen0 {
			t.Errorf("Intn(%d) never produced 0 in 2000 draws", n)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestShuffleCoversPermutations sanity-checks Fisher-Yates: over many
// shuffles of 3 elements all 6 permutations appear.
func TestShuffleCoversPermutations(t *testing.T) {
	r := New(5)
	seen := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		p := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { p[i], p[j] = p[j], p[i] })
		seen[p]++
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d permutations of 3, want 6", len(seen))
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 63, 2, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0x123456789abcdef0, 0x0fedcba987654321, 0x0121fa00ad77d742, 0x2236d88fe5618cf0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
