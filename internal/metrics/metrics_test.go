package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPassAtKKnownValues(t *testing.T) {
	cases := []struct {
		n, c, k int
		want    float64
	}{
		{50, 0, 1, 0},
		{50, 50, 1, 1},
		{50, 25, 1, 0.5},
		{2, 1, 2, 1},                   // both picks cover the one correct
		{4, 2, 2, 1 - (2.0/4)*(1.0/3)}, // 1 - C(2,2)/C(4,2) = 5/6
		{10, 3, 1, 0.3},
	}
	for _, tc := range cases {
		got, err := PassAtK(tc.n, tc.c, tc.k)
		if err != nil {
			t.Errorf("PassAtK(%d,%d,%d): %v", tc.n, tc.c, tc.k, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PassAtK(%d,%d,%d) = %v, want %v", tc.n, tc.c, tc.k, got, tc.want)
		}
	}
}

func TestPassAtKErrors(t *testing.T) {
	for _, tc := range [][3]int{{0, 0, 1}, {5, 6, 1}, {5, 2, 6}, {5, -1, 1}, {5, 2, 0}} {
		if _, err := PassAtK(tc[0], tc[1], tc[2]); !errors.Is(err, ErrBadInput) {
			t.Errorf("PassAtK(%v) should fail with ErrBadInput", tc)
		}
	}
}

// TestPassAtKMonotoneQuick: pass@k is monotone in both c and k.
func TestPassAtKMonotoneQuick(t *testing.T) {
	prop := func(cRaw, kRaw uint8) bool {
		n := 50
		c := int(cRaw) % (n + 1)
		k := int(kRaw)%n + 1
		p1, err1 := PassAtK(n, c, k)
		if err1 != nil {
			return false
		}
		if c < n {
			p2, err2 := PassAtK(n, c+1, k)
			if err2 != nil || p2 < p1-1e-12 {
				return false
			}
		}
		if k < n {
			p3, err3 := PassAtK(n, c, k+1)
			if err3 != nil || p3 < p1-1e-12 {
				return false
			}
		}
		return p1 >= 0 && p1 <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMeanPassAtK(t *testing.T) {
	got, err := MeanPassAtK(10, []int{0, 10, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.0 + 1.0 + 0.5) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
	if _, err := MeanPassAtK(10, nil, 1); !errors.Is(err, ErrBadInput) {
		t.Error("empty input should fail")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2.138089935299395) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Error("empty summarize")
	}
	if got := Summarize([]float64{3}); got.Std != 0 || got.Median != 3 {
		t.Errorf("single-element: %+v", got)
	}
}

func TestFitQuadraticExact(t *testing.T) {
	// y = 2 - 3x + 0.5x² sampled exactly.
	var xs, ys []float64
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 2-3*x+0.5*x*x)
	}
	fit, err := FitQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-2) > 1e-9 || math.Abs(fit.B+3) > 1e-9 || math.Abs(fit.C-0.5) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.Eval(0.5)-(2-1.5+0.125)) > 1e-9 {
		t.Errorf("Eval(0.5) = %v", fit.Eval(0.5))
	}
	if math.Abs(fit.PeakX()-3) > 1e-9 {
		t.Errorf("PeakX = %v", fit.PeakX())
	}
}

func TestFitQuadraticErrors(t *testing.T) {
	if _, err := FitQuadratic([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Error("too few points should fail")
	}
	// Degenerate: all same x.
	if _, err := FitQuadratic([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("singular system should fail")
	}
	if !math.IsNaN((QuadFit{C: 0, B: 1}).PeakX()) {
		t.Error("PeakX of linear fit should be NaN")
	}
}

// TestFitQuadraticRecoveryQuick: fitting exact parabola samples recovers the
// coefficients for arbitrary (bounded) coefficients.
func TestFitQuadraticRecoveryQuick(t *testing.T) {
	prop := func(a8, b8, c8 int8) bool {
		a, b, c := float64(a8)/16, float64(b8)/16, float64(c8)/16
		var xs, ys []float64
		for i := 0; i <= 8; i++ {
			x := float64(i) / 8
			xs = append(xs, x)
			ys = append(ys, a+b*x+c*x*x)
		}
		fit, err := FitQuadratic(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a) < 1e-6 && math.Abs(fit.B-b) < 1e-6 && math.Abs(fit.C-c) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinPassRates(t *testing.T) {
	pos := []float64{0.05, 0.15, 0.15, 0.95, 1.0, -0.5}
	passed := []bool{true, true, false, false, true, true}
	bins := BinPassRates(pos, passed, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Bin 0 holds 0.05 and the clamped -0.5.
	if bins[0].Count != 2 || bins[0].PassRate != 1 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Count != 2 || bins[1].PassRate != 0.5 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	// 0.95 and clamped 1.0 land in the last bin.
	last := bins[9]
	if last.Count != 2 || last.PassRate != 0.5 {
		t.Errorf("bin9 = %+v", last)
	}
	if got := bins[0].Center(); got != 0.05 {
		t.Errorf("center = %v", got)
	}
	if BinPassRates(pos, passed[:2], 10) != nil {
		t.Error("mismatched lengths should return nil")
	}
	if BinPassRates(pos, passed, 0) != nil {
		t.Error("zero bins should return nil")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0.25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if got := Percentile(xs, 0.1); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("p10 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}
