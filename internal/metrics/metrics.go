// Package metrics implements the paper's evaluation statistics: the
// unbiased pass@k estimator (Eq. 4, following Chen et al. 2021), summary
// statistics for repeated runs, histogram binning and the quadratic
// least-squares trend fit used in Fig. 3.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// ErrBadInput marks invalid statistic inputs.
var ErrBadInput = errors.New("invalid metrics input")

// PassAtK is the unbiased estimator 1 - C(n-c, k)/C(n, k): the probability
// that at least one of k uniformly drawn candidates (out of n with c
// correct) passes. Returns an error when k > n or c > n.
func PassAtK(n, c, k int) (float64, error) {
	if n <= 0 || k <= 0 || k > n || c < 0 || c > n {
		return 0, ErrBadInput
	}
	if c == 0 {
		return 0, nil
	}
	if n-c < k {
		return 1, nil
	}
	// Compute prod_{i=0}^{k-1} (n-c-i)/(n-i) in floating point.
	prob := 1.0
	for i := 0; i < k; i++ {
		prob *= float64(n-c-i) / float64(n-i)
	}
	return 1 - prob, nil
}

// MeanPassAtK averages PassAtK over per-problem correct counts, mirroring
// the paper's E_problems[·].
func MeanPassAtK(n int, correct []int, k int) (float64, error) {
	if len(correct) == 0 {
		return 0, ErrBadInput
	}
	sum := 0.0
	for _, c := range correct {
		p, err := PassAtK(n, c, k)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum / float64(len(correct)), nil
}

// Summary holds aggregate statistics of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics; an empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// QuadFit holds the coefficients of y = A + B·x + C·x².
type QuadFit struct {
	A, B, C float64
}

// Eval evaluates the fitted parabola at x.
func (q QuadFit) Eval(x float64) float64 {
	return q.A + q.B*x + q.C*x*x
}

// PeakX returns the stationary point of the parabola (NaN for C == 0).
func (q QuadFit) PeakX() float64 {
	if q.C == 0 {
		return math.NaN()
	}
	return -q.B / (2 * q.C)
}

// FitQuadratic computes the least-squares parabola through (x, y) pairs by
// solving the 3x3 normal equations with Gaussian elimination. It needs at
// least three distinct x values.
func FitQuadratic(xs, ys []float64) (QuadFit, error) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return QuadFit{}, ErrBadInput
	}
	var s [5]float64 // sums of x^0..x^4
	var t [3]float64 // sums of y·x^0..x^2
	for i := range xs {
		x, y := xs[i], ys[i]
		xp := 1.0
		for p := 0; p <= 4; p++ {
			s[p] += xp
			if p <= 2 {
				t[p] += y * xp
			}
			xp *= x
		}
	}
	m := [3][4]float64{
		{s[0], s[1], s[2], t[0]},
		{s[1], s[2], s[3], t[1]},
		{s[2], s[3], s[4], t[2]},
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return QuadFit{}, ErrBadInput
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for cc := col; cc < 4; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
		}
	}
	return QuadFit{
		A: m[0][3] / m[0][0],
		B: m[1][3] / m[1][1],
		C: m[2][3] / m[2][2],
	}, nil
}

// Bin is one histogram bucket of samples keyed by a unit-interval position.
type Bin struct {
	// Lo and Hi bound the bin in [0,1].
	Lo, Hi float64
	// Count is the number of samples.
	Count int
	// PassRate is the fraction of passing samples (0 when empty).
	PassRate float64
}

// Center returns the bin midpoint.
func (b Bin) Center() float64 { return (b.Lo + b.Hi) / 2 }

// BinPassRates buckets (position, passed) samples into nbins equal bins over
// [0,1] and computes per-bin pass rates. Positions outside [0,1] are
// clamped.
func BinPassRates(pos []float64, passed []bool, nbins int) []Bin {
	if nbins <= 0 || len(pos) != len(passed) {
		return nil
	}
	bins := make([]Bin, nbins)
	counts := make([]int, nbins)
	passes := make([]int, nbins)
	for i := range bins {
		bins[i].Lo = float64(i) / float64(nbins)
		bins[i].Hi = float64(i+1) / float64(nbins)
	}
	for i, p := range pos {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		idx := int(p * float64(nbins))
		if idx == nbins {
			idx = nbins - 1
		}
		counts[idx]++
		if passed[i] {
			passes[idx]++
		}
	}
	for i := range bins {
		bins[i].Count = counts[i]
		if counts[i] > 0 {
			bins[i].PassRate = float64(passes[i]) / float64(counts[i])
		}
	}
	return bins
}

// Percentile returns the p-quantile (0..1) of xs by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
