package exp

import (
	"context"
	"testing"

	"repro/internal/eval"
)

// TestRunTable1Small runs a reduced Table I (few tasks, 1 run, small n) and
// checks structural invariants: rows exist for each dataset, probabilities
// are in range, and the run is deterministic for a fixed seed.
func TestRunTable1Small(t *testing.T) {
	tasks := eval.Suite()
	sel := []eval.Task{
		tasks[0], tasks[20], tasks[40], tasks[60], // CMB
		tasks[85], tasks[100], tasks[120], tasks[140], // SEQ
	}
	cfg := Table1Config{
		Models:  []string{"deepseek-r1"},
		Tasks:   sel,
		Samples: 10,
		Runs:    1,
		Seed:    3,
	}
	res, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		for name, v := range map[string]float64{
			"pass@1": row.BasePass1, "pass@2": row.BasePass2, "pass@3": row.BasePass3,
			"vrank": row.VRank, "prevrank": row.PreVRank, "vfocus": row.VFocus,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s/%s %s = %v out of [0,1]", row.Model, row.Dataset, name, v)
			}
		}
		if row.BasePass2 < row.BasePass1 || row.BasePass3 < row.BasePass2 {
			t.Errorf("%s/%s pass@k not monotone: %v %v %v",
				row.Model, row.Dataset, row.BasePass1, row.BasePass2, row.BasePass3)
		}
	}

	res2, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunTable1 rerun: %v", err)
	}
	for i := range res.Rows {
		if res.Rows[i] != res2.Rows[i] {
			t.Errorf("row %d differs between identical runs:\n%+v\n%+v", i, res.Rows[i], res2.Rows[i])
		}
	}
}
