package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/testbench"
)

// Fig4Config parameterizes the Fig. 4 reproduction: pass@1 versus the number
// of sampled candidates.
type Fig4Config struct {
	// Models to evaluate (paper: deepseek-r1, o3-mini-high, qwq-32b).
	Models []string
	// Tasks is the benchmark (defaults to the full suite).
	Tasks []eval.Task
	// SampleSizes are the n values (paper: 5,10,...,50).
	SampleSizes []int
	// Runs averages each point (paper: 10).
	Runs int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds task-level parallelism (defaults to core.DefaultWorkers()).
	Workers int
	// Backend selects the simulation engine (zero value: compiled).
	Backend testbench.Backend
	// LegacyTraces forces ranking and verification onto the retained
	// printed-trace path instead of streaming fingerprints.
	LegacyTraces bool
	// PerLaneGang forces gang simulation onto the per-lane engine model
	// instead of the default shared-plane SoA model (identical results;
	// kept as the differential referee and escape hatch).
	PerLaneGang bool
	// FPMemoCap sizes the process-wide fingerprint memo (the result
	// store's memory tier); zero keeps the current capacity.
	FPMemoCap int
	// NewClient, when non-nil, replaces llm.NewSimClient as the source of
	// per-(task, run) clients (HTTP backend or fixture replay).
	NewClient ClientFactory
	// LLMRetries overrides the pipeline transient-retry bound (zero keeps
	// the default, 4); see core.Config.LLMRetries.
	LLMRetries int
}

// Fig4Point is one (model, n) measurement: mean ± std over runs for the
// three series. Per the paper, the VFocus series excludes post-ranking
// refinement (its repeated cost is prohibitive), i.e. it is pre-ranking +
// ranking.
type Fig4Point struct {
	N        int
	Baseline metrics.Summary
	VRank    metrics.Summary
	VFocus   metrics.Summary
}

// Fig4Series is one model's curve set.
type Fig4Series struct {
	Model  string
	Points []Fig4Point
}

// Fig4Result is the full reproduction of Fig. 4.
type Fig4Result struct {
	Config Fig4Config
	Series []Fig4Series
}

// RunFig4 reproduces Fig. 4: pass@1 of Baseline, VRank and VFocus
// (pre-ranking + ranking) as the candidate count grows from 5 to 50,
// averaged over cfg.Runs repetitions with standard deviations.
func RunFig4(ctx context.Context, cfg Fig4Config) (*Fig4Result, error) {
	if len(cfg.Tasks) == 0 {
		cfg.Tasks = eval.Suite()
	}
	if len(cfg.SampleSizes) == 0 {
		cfg.SampleSizes = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = core.DefaultWorkers()
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{"deepseek-r1", "o3-mini-high", "qwq-32b"}
	}
	oracle := NewOracle(cfg.Tasks, cfg.Seed+7)
	oracle.Backend = cfg.Backend
	oracle.LegacyTraces = cfg.LegacyTraces
	oracle.PerLaneGang = cfg.PerLaneGang
	res := &Fig4Result{Config: cfg}
	for _, model := range cfg.Models {
		series, err := runFig4Model(ctx, cfg, oracle, model)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", model, err)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// fig4Cell is one (task, run, n) outcome.
type fig4Cell struct {
	baseline float64 // pass@1 estimator over the pool
	vrank    bool
	vfocus   bool
	err      error
}

func runFig4Model(ctx context.Context, cfg Fig4Config, oracle *Oracle, model string) (Fig4Series, error) {
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return Fig4Series{}, err
	}
	series := Fig4Series{Model: model}
	for _, n := range cfg.SampleSizes {
		var (
			baseRuns, vrankRuns, vfocusRuns []float64
		)
		for run := 0; run < cfg.Runs; run++ {
			cells := make([]fig4Cell, len(cfg.Tasks))
			var wg sync.WaitGroup
			jobs := make(chan int)
			for w := 0; w < cfg.Workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for ti := range jobs {
						cells[ti] = fig4Task(ctx, cfg, oracle, profile, cfg.Tasks[ti], run, n)
					}
				}()
			}
			for ti := range cfg.Tasks {
				jobs <- ti
			}
			close(jobs)
			wg.Wait()

			var base, vr, vf float64
			for _, c := range cells {
				if c.err != nil {
					return series, c.err
				}
				base += c.baseline
				if c.vrank {
					vr++
				}
				if c.vfocus {
					vf++
				}
			}
			total := float64(len(cfg.Tasks))
			baseRuns = append(baseRuns, base/total)
			vrankRuns = append(vrankRuns, vr/total)
			vfocusRuns = append(vfocusRuns, vf/total)
		}
		series.Points = append(series.Points, Fig4Point{
			N:        n,
			Baseline: metrics.Summarize(baseRuns),
			VRank:    metrics.Summarize(vrankRuns),
			VFocus:   metrics.Summarize(vfocusRuns),
		})
	}
	return series, nil
}

func fig4Task(ctx context.Context, cfg Fig4Config, oracle *Oracle, profile llm.Profile, task eval.Task, run, n int) fig4Cell {
	var cell fig4Cell
	clientSeed := cfg.Seed + int64(run)*1009
	client, err := mintClient(cfg.NewClient, profile, clientSeed, []eval.Task{task})
	if err != nil {
		cell.err = err
		return cell
	}
	runVariant := func(v core.Variant) (*core.Result, error) {
		pcfg := core.DefaultConfig(v, profile.Name)
		pcfg.Samples = n
		pcfg.TBSeed = cfg.Seed + int64(run)*31
		pcfg.SelectSeed = cfg.Seed + int64(run)*47
		pcfg.RetryBaseDelay = 0
		pcfg.Backend = cfg.Backend
		pcfg.LegacyTraces = cfg.LegacyTraces
		pcfg.PerLaneGang = cfg.PerLaneGang
		pcfg.FPMemoCap = cfg.FPMemoCap
		pcfg.LLMRetries = cfg.LLMRetries
		return core.New(client, pcfg).Run(ctx, task)
	}

	baseRes, err := runVariant(core.VariantBaseline)
	if err != nil {
		cell.err = err
		return cell
	}
	correct := 0
	for _, c := range baseRes.Candidates {
		ok, verr := oracle.Verify(task.ID, c.Code)
		if verr != nil {
			cell.err = verr
			return cell
		}
		if ok {
			correct++
		}
	}
	cell.baseline = float64(correct) / float64(n)

	check := func(v core.Variant) (bool, error) {
		r, rerr := runVariant(v)
		if rerr != nil {
			return false, rerr
		}
		if r.Final == "" {
			return false, nil
		}
		return oracle.Verify(task.ID, r.Final)
	}
	if cell.vrank, err = check(core.VariantVRank); err != nil {
		cell.err = err
		return cell
	}
	// Per the paper, the Fig. 4 VFocus series is pre-ranking + ranking only.
	if cell.vfocus, err = check(core.VariantPreVRank); err != nil {
		cell.err = err
		return cell
	}
	return cell
}

// Render formats the curves as one table per model.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: Functional correctness (Pass@1 %%) vs # samples (%d runs, mean±std)\n", r.Config.Runs)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n(%s)\n", s.Model)
		fmt.Fprintf(&b, "  %-5s %-16s %-16s %-16s\n", "n", "Baseline", "VRank", "VFocus")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  %-5d %6.2f ± %-6.2f %6.2f ± %-6.2f %6.2f ± %-6.2f\n",
				p.N,
				100*p.Baseline.Mean, 100*p.Baseline.Std,
				100*p.VRank.Mean, 100*p.VRank.Std,
				100*p.VFocus.Mean, 100*p.VFocus.Std)
		}
	}
	return b.String()
}
