package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/testbench"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/sem"
)

// Fig3Config parameterizes the Fig. 3 reproduction: functional correctness
// versus per-problem normalized reasoning length.
type Fig3Config struct {
	// Models to analyze (paper: deepseek-r1, o3-mini-high, qwq-32b,
	// o3-mini-medium).
	Models []string
	// Tasks is the benchmark (defaults to the full suite).
	Tasks []eval.Task
	// Samples per task (paper: 50, i.e. 7800 samples per model).
	Samples int
	// Bins is the number of normalized-length buckets.
	Bins int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds task-level parallelism (defaults to core.DefaultWorkers()).
	Workers int
	// Backend selects the simulation engine (zero value: compiled).
	Backend testbench.Backend
	// LegacyTraces forces verification onto the retained printed-trace
	// path instead of streaming fingerprints.
	LegacyTraces bool
	// PerLaneGang forces gang simulation onto the per-lane engine model
	// instead of the default shared-plane SoA model (identical results;
	// kept as the differential referee and escape hatch).
	PerLaneGang bool
	// FPMemoCap sizes the process-wide fingerprint memo (the result
	// store's memory tier); zero keeps the current capacity.
	FPMemoCap int
	// NewClient, when non-nil, replaces llm.NewSimClient as the source of
	// per-task clients (HTTP backend or fixture replay).
	NewClient ClientFactory
}

// Fig3Series is one model's panel.
type Fig3Series struct {
	Model string
	// Bins are pass rates per normalized-length bucket; Count shows the
	// sample density (the circles in the paper's plot).
	Bins []metrics.Bin
	// Fit is the quadratic trend line.
	Fit metrics.QuadFit
	// Total and Dropped count samples (dropped = syntactically incomplete
	// after retries, or missing reasoning trace — excluded per the paper).
	Total   int
	Dropped int
}

// Fig3Result is the full reproduction of Fig. 3.
type Fig3Result struct {
	Config Fig3Config
	Series []Fig3Series
}

// RunFig3 reproduces Fig. 3: for every model it samples candidates for every
// task, verifies each against the golden testbench, normalizes reasoning
// lengths per task to [0,1], and reports binned pass rates plus a quadratic
// trend fit.
func RunFig3(ctx context.Context, cfg Fig3Config) (*Fig3Result, error) {
	if len(cfg.Tasks) == 0 {
		cfg.Tasks = eval.Suite()
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 50
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = core.DefaultWorkers()
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{"deepseek-r1", "o3-mini-high", "qwq-32b", "o3-mini-medium"}
	}
	if cfg.FPMemoCap > 0 {
		testbench.SetFPMemoCap(cfg.FPMemoCap)
	}
	oracle := NewOracle(cfg.Tasks, cfg.Seed+7)
	oracle.Backend = cfg.Backend
	oracle.LegacyTraces = cfg.LegacyTraces
	oracle.PerLaneGang = cfg.PerLaneGang
	res := &Fig3Result{Config: cfg}
	for _, model := range cfg.Models {
		series, err := runFig3Model(ctx, cfg, oracle, model)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", model, err)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// taskFig3 is the per-task sample summary.
type taskFig3 struct {
	norm    []float64
	passed  []bool
	total   int
	dropped int
	err     error
}

func runFig3Model(ctx context.Context, cfg Fig3Config, oracle *Oracle, model string) (Fig3Series, error) {
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return Fig3Series{}, err
	}
	results := make([]taskFig3, len(cfg.Tasks))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				results[ti] = fig3Task(ctx, cfg, oracle, profile, cfg.Tasks[ti])
			}
		}()
	}
	for ti := range cfg.Tasks {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()

	series := Fig3Series{Model: model}
	var allNorm []float64
	var allPassed []bool
	for _, r := range results {
		if r.err != nil {
			return series, r.err
		}
		allNorm = append(allNorm, r.norm...)
		allPassed = append(allPassed, r.passed...)
		series.Total += r.total
		series.Dropped += r.dropped
	}
	series.Bins = metrics.BinPassRates(allNorm, allPassed, cfg.Bins)
	var xs, ys []float64
	for _, b := range series.Bins {
		if b.Count == 0 {
			continue
		}
		xs = append(xs, b.Center())
		ys = append(ys, b.PassRate)
	}
	if len(xs) >= 3 {
		fit, ferr := metrics.FitQuadratic(xs, ys)
		if ferr == nil {
			series.Fit = fit
		}
	}
	return series, nil
}

// fig3Task samples one task, verifies every sample, and normalizes lengths.
func fig3Task(ctx context.Context, cfg Fig3Config, oracle *Oracle, profile llm.Profile, task eval.Task) taskFig3 {
	var out taskFig3
	client, err := mintClient(cfg.NewClient, profile, cfg.Seed, []eval.Task{task})
	if err != nil {
		out.err = err
		return out
	}
	type sample struct {
		tokens int
		passed bool
	}
	var samples []sample
	for i := 0; i < cfg.Samples; i++ {
		out.total++
		resp, gerr := client.Generate(ctx, llm.GenerateRequest{
			TaskID:      task.ID,
			Spec:        task.Spec,
			SampleIndex: i,
		})
		if gerr != nil {
			// Transient failures count as dropped samples here; the
			// pre-ranking experiments handle retries.
			out.dropped++
			continue
		}
		if resp.ReasoningTokens <= 0 {
			out.dropped++ // missing reasoning trace: removed from the graph
			continue
		}
		if _, ok := validateForFig3(resp.Code); !ok {
			out.dropped++ // syntactically incomplete: removed from the graph
			continue
		}
		pass, verr := oracle.Verify(task.ID, resp.Code)
		if verr != nil {
			out.err = verr
			return out
		}
		samples = append(samples, sample{tokens: resp.ReasoningTokens, passed: pass})
	}
	if len(samples) < 2 {
		return out
	}
	minT, maxT := samples[0].tokens, samples[0].tokens
	for _, s := range samples {
		if s.tokens < minT {
			minT = s.tokens
		}
		if s.tokens > maxT {
			maxT = s.tokens
		}
	}
	span := maxT - minT
	for _, s := range samples {
		n := 0.5
		if span > 0 {
			n = float64(s.tokens-minT) / float64(span)
		}
		out.norm = append(out.norm, n)
		out.passed = append(out.passed, s.passed)
	}
	return out
}

// validateForFig3 mirrors the pipeline's validity gate: candidates must
// parse, define top_module, and pass semantic checks.
func validateForFig3(code string) (struct{}, bool) {
	src, err := parser.Parse(code)
	if err != nil || src.FindModule(eval.TopModule) == nil {
		return struct{}{}, false
	}
	if res := sem.Check(src); res.HasErrors() {
		return struct{}{}, false
	}
	return struct{}{}, true
}

// Render formats the result as aligned bin tables, one panel per model.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3: Output pass rate vs normalized reasoning length\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n(%s)  samples=%d dropped=%d   trend: %.3f %+.3f·x %+.3f·x²\n",
			s.Model, s.Total, s.Dropped, s.Fit.A, s.Fit.B, s.Fit.C)
		fmt.Fprintf(&b, "  %-12s %-10s %-10s %s\n", "norm-length", "samples", "pass-rate", "trend")
		for _, bin := range s.Bins {
			fmt.Fprintf(&b, "  [%.1f,%.1f)    %-10d %-10.3f %.3f\n",
				bin.Lo, bin.Hi, bin.Count, bin.PassRate, s.Fit.Eval(bin.Center()))
		}
	}
	return b.String()
}

// SortedModels returns series order by model name (stable rendering).
func (r *Fig3Result) SortedModels() []string {
	names := make([]string, len(r.Series))
	for i, s := range r.Series {
		names[i] = s.Model
	}
	sort.Strings(names)
	return names
}
