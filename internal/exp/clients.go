package exp

import (
	"repro/internal/eval"
	"repro/internal/llm"
)

// ClientFactory mints an llm.Client bound to (model, seed) over a task set.
// It is an alias of the plain function signature so any compatible factory —
// llm.NewSimClient via a thin wrapper, httpclient.Factory's product, or a
// test double — assigns without conversion. Experiment drivers call it once
// per (task, run) pair, mirroring the historical NewSimClient call sites, so
// a resilient HTTP factory that shares one transport across bindings keeps
// its cache, limiter and breaker state common to the whole experiment.
type ClientFactory = func(model string, seed int64, tasks []eval.Task) (llm.Client, error)

// mintClient applies a config's optional factory, defaulting to the
// deterministic simulated client that reproduces the published numbers.
func mintClient(f ClientFactory, profile llm.Profile, seed int64, tasks []eval.Task) (llm.Client, error) {
	if f == nil {
		return llm.NewSimClient(profile, seed, tasks)
	}
	return f(profile.Name, seed, tasks)
}
