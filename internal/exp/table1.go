package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/testbench"
)

// Table1Config parameterizes the Table I reproduction.
type Table1Config struct {
	// Models to evaluate (paper: deepseek-r1, o3-mini-high, qwq-32b).
	Models []string
	// Tasks is the benchmark (defaults to the full suite).
	Tasks []eval.Task
	// Samples is n (paper: 50).
	Samples int
	// Runs averages over repeated experiments (paper: 5).
	Runs int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds task-level parallelism (defaults to core.DefaultWorkers()).
	Workers int
	// Backend selects the simulation engine (zero value: compiled; the
	// interpreter remains selectable for differential benchmarking).
	Backend testbench.Backend
	// LegacyTraces forces ranking and verification onto the retained
	// printed-trace path instead of streaming fingerprints (results are
	// identical; kept for differential benchmarking).
	LegacyTraces bool
	// PerLaneGang forces gang simulation onto the per-lane engine model
	// instead of the default shared-plane SoA model (identical results;
	// kept as the differential referee and escape hatch).
	PerLaneGang bool
	// FPMemoCap sizes the process-wide fingerprint memo (the result
	// store's memory tier); zero keeps the current capacity.
	FPMemoCap int
	// NewClient, when non-nil, replaces llm.NewSimClient as the source of
	// per-(task, run) clients — the hook that points an experiment at a
	// real HTTP backend (httpclient.Factory) or replayed fixtures.
	NewClient ClientFactory
	// LLMRetries overrides the pipeline transient-retry bound (zero keeps
	// the default, 4). Changing it changes the deterministic request
	// stream; see core.Config.LLMRetries.
	LLMRetries int
}

// Table1Row is one (model, dataset) row of Table I.
type Table1Row struct {
	Model   string
	Dataset string
	// Baseline pass@k from the raw sample pool.
	BasePass1, BasePass2, BasePass3 float64
	// Selection pass@1 for the three frameworks.
	VRank, PreVRank, VFocus float64
}

// Table1Result is the full reproduction of Table I.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// taskRunOutcome records one task under one run for one model.
type taskRunOutcome struct {
	taskID   string
	category eval.Category
	correct  int // correct candidates among the baseline pool
	n        int
	vrank    bool
	preVRank bool
	vfocus   bool
}

// RunTable1 reproduces Table I: for every model it measures baseline
// pass@1/2/3 over n samples and the pass@1 of VRank, Pre+VRank and VFocus,
// averaged over cfg.Runs repetitions, on the full set plus the CMB and SEQ
// splits.
func RunTable1(ctx context.Context, cfg Table1Config) (*Table1Result, error) {
	if len(cfg.Tasks) == 0 {
		cfg.Tasks = eval.Suite()
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 50
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = core.DefaultWorkers()
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{"deepseek-r1", "o3-mini-high", "qwq-32b"}
	}

	res := &Table1Result{Config: cfg}
	oracle := NewOracle(cfg.Tasks, cfg.Seed+7)
	oracle.Backend = cfg.Backend
	oracle.LegacyTraces = cfg.LegacyTraces
	oracle.PerLaneGang = cfg.PerLaneGang

	for _, model := range cfg.Models {
		outcomes, err := runModelOutcomes(ctx, cfg, oracle, model)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", model, err)
		}
		for _, ds := range []string{"Human", "CMB", "SEQ"} {
			row, err := aggregateRows(model, ds, outcomes, cfg.Samples)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// runModelOutcomes evaluates one model over all runs and tasks.
func runModelOutcomes(ctx context.Context, cfg Table1Config, oracle *Oracle, model string) ([]taskRunOutcome, error) {
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return nil, err
	}
	var (
		mu       sync.Mutex
		outcomes []taskRunOutcome
		firstErr error
	)
	type job struct {
		task eval.Task
		run  int
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out, err := evalTaskRun(ctx, cfg, oracle, profile, j.task, j.run)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				outcomes = append(outcomes, out)
				mu.Unlock()
			}
		}()
	}
	for run := 0; run < cfg.Runs; run++ {
		for _, t := range cfg.Tasks {
			jobs <- job{task: t, run: run}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Deterministic order for reproducible aggregation.
	sort.Slice(outcomes, func(a, b int) bool {
		if outcomes[a].taskID != outcomes[b].taskID {
			return outcomes[a].taskID < outcomes[b].taskID
		}
		return outcomes[a].n < outcomes[b].n
	})
	return outcomes, nil
}

// evalTaskRun evaluates one (task, run): baseline correctness counts plus
// the three frameworks' final picks.
func evalTaskRun(ctx context.Context, cfg Table1Config, oracle *Oracle, profile llm.Profile, task eval.Task, run int) (taskRunOutcome, error) {
	out := taskRunOutcome{taskID: task.ID, category: task.Category, n: cfg.Samples}
	clientSeed := cfg.Seed + int64(run)*1009
	client, err := mintClient(cfg.NewClient, profile, clientSeed, []eval.Task{task})
	if err != nil {
		return out, err
	}

	runVariant := func(v core.Variant) (*core.Result, error) {
		pcfg := core.DefaultConfig(v, profile.Name)
		pcfg.Samples = cfg.Samples
		pcfg.TBSeed = cfg.Seed + int64(run)*31
		pcfg.SelectSeed = cfg.Seed + int64(run)*47
		pcfg.RetryBaseDelay = 0
		pcfg.Backend = cfg.Backend
		pcfg.LegacyTraces = cfg.LegacyTraces
		pcfg.PerLaneGang = cfg.PerLaneGang
		pcfg.FPMemoCap = cfg.FPMemoCap
		pcfg.LLMRetries = cfg.LLMRetries
		pipe := core.New(client, pcfg)
		return pipe.Run(ctx, task)
	}

	// Baseline: verify the raw pool (attempt-0 candidates) as one gang
	// batch — verdicts identical to per-candidate Verify calls.
	baseRes, err := runVariant(core.VariantBaseline)
	if err != nil {
		return out, err
	}
	pool := make([]string, len(baseRes.Candidates))
	for i, c := range baseRes.Candidates {
		pool[i] = c.Code
	}
	verdicts, err := oracle.VerifyBatch(task.ID, pool)
	if err != nil {
		return out, err
	}
	for _, ok := range verdicts {
		if ok {
			out.correct++
		}
	}

	check := func(v core.Variant) (bool, error) {
		r, err := runVariant(v)
		if err != nil {
			return false, err
		}
		if r.Final == "" {
			return false, nil
		}
		return oracle.Verify(task.ID, r.Final)
	}
	if out.vrank, err = check(core.VariantVRank); err != nil {
		return out, err
	}
	if out.preVRank, err = check(core.VariantPreVRank); err != nil {
		return out, err
	}
	if out.vfocus, err = check(core.VariantVFocus); err != nil {
		return out, err
	}
	return out, nil
}

// aggregateRows reduces per-task-run outcomes into one table row.
func aggregateRows(model, dataset string, outcomes []taskRunOutcome, n int) (Table1Row, error) {
	row := Table1Row{Model: model, Dataset: dataset}
	var correct []int
	var vr, pv, vf, total float64
	for _, o := range outcomes {
		if dataset == "CMB" && o.category != eval.Combinational {
			continue
		}
		if dataset == "SEQ" && o.category != eval.Sequential {
			continue
		}
		correct = append(correct, o.correct)
		total++
		if o.vrank {
			vr++
		}
		if o.preVRank {
			pv++
		}
		if o.vfocus {
			vf++
		}
	}
	if total == 0 {
		return row, fmt.Errorf("%w: dataset %s empty", ErrExperiment, dataset)
	}
	var err error
	if row.BasePass1, err = metrics.MeanPassAtK(n, correct, 1); err != nil {
		return row, err
	}
	if row.BasePass2, err = metrics.MeanPassAtK(n, correct, 2); err != nil {
		return row, err
	}
	if row.BasePass3, err = metrics.MeanPassAtK(n, correct, 3); err != nil {
		return row, err
	}
	row.VRank = vr / total
	row.PreVRank = pv / total
	row.VFocus = vf / total
	return row, nil
}

// Render formats the result like the paper's Table I.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: Comparison of the proposed framework with direct generation baseline (n=%d, %d runs)\n",
		r.Config.Samples, r.Config.Runs)
	fmt.Fprintf(&b, "%-14s %-8s | %8s %8s %8s | %18s %18s %18s\n",
		"Model", "Dataset", "Pass@1", "Pass@2", "Pass@3", "VRank", "Pre+VRank", "VFocus")
	b.WriteString(strings.Repeat("-", 120) + "\n")
	for _, row := range r.Rows {
		delta := func(v float64) string {
			return fmt.Sprintf("%5.1f%% (%+5.1f%%)", 100*v, 100*(v-row.BasePass1))
		}
		fmt.Fprintf(&b, "%-14s %-8s | %7.1f%% %7.1f%% %7.1f%% | %18s %18s %18s\n",
			row.Model, row.Dataset,
			100*row.BasePass1, 100*row.BasePass2, 100*row.BasePass3,
			delta(row.VRank), delta(row.PreVRank), delta(row.VFocus))
	}
	return b.String()
}
