package exp

import (
	"context"
	"testing"

	"repro/internal/eval"
)

// TestFrameworkOrdering is the headline integration test: on a moderate
// subset of the benchmark, the paper's main result must hold —
// Baseline < VRank ≤ Pre+VRank ≤ VFocus in pass@1 (with slack for run
// noise on the two refinement increments).
//
// This exercises the entire stack end to end: task generation, the
// simulated LLM, parsing, semantic checks, testbench generation, four-state
// simulation, clustering, density filtering, refinement, and golden
// verification.
func TestFrameworkOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack ordering test skipped in -short mode")
	}
	all := eval.Suite()
	var tasks []eval.Task
	for i := 0; i < len(all); i += 3 {
		tasks = append(tasks, all[i])
	}
	cfg := Table1Config{
		Models:  []string{"qwq-32b"}, // weakest model: clearest separations
		Tasks:   tasks,
		Samples: 30,
		Runs:    2,
		Seed:    5,
	}
	res, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var human Table1Row
	for _, row := range res.Rows {
		if row.Dataset == "Human" {
			human = row
		}
	}
	t.Logf("baseline=%.3f vrank=%.3f prevrank=%.3f vfocus=%.3f",
		human.BasePass1, human.VRank, human.PreVRank, human.VFocus)

	if human.VRank <= human.BasePass1+0.05 {
		t.Errorf("VRank %.3f should clearly beat baseline %.3f", human.VRank, human.BasePass1)
	}
	if human.PreVRank < human.VRank-0.02 {
		t.Errorf("Pre+VRank %.3f trails VRank %.3f beyond noise", human.PreVRank, human.VRank)
	}
	if human.VFocus < human.PreVRank-0.02 {
		t.Errorf("VFocus %.3f trails Pre+VRank %.3f beyond noise", human.VFocus, human.PreVRank)
	}
	if human.VFocus <= human.BasePass1+0.10 {
		t.Errorf("VFocus %.3f should beat baseline %.3f by a wide margin", human.VFocus, human.BasePass1)
	}
}

// TestSeqGainsExceedCmbGains checks the paper's second structural claim:
// the full framework's improvement over the baseline is larger on
// sequential circuits than on combinational ones.
func TestSeqGainsExceedCmbGains(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack test skipped in -short mode")
	}
	all := eval.Suite()
	var tasks []eval.Task
	for i := 0; i < len(all); i += 3 {
		tasks = append(tasks, all[i])
	}
	cfg := Table1Config{
		Models:  []string{"deepseek-r1"},
		Tasks:   tasks,
		Samples: 30,
		Runs:    2,
		Seed:    9,
	}
	res, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cmb, seq Table1Row
	for _, row := range res.Rows {
		switch row.Dataset {
		case "CMB":
			cmb = row
		case "SEQ":
			seq = row
		}
	}
	cmbGain := cmb.VFocus - cmb.BasePass1
	seqGain := seq.VFocus - seq.BasePass1
	t.Logf("CMB gain %.3f, SEQ gain %.3f", cmbGain, seqGain)
	if seqGain <= cmbGain {
		t.Errorf("SEQ gain %.3f should exceed CMB gain %.3f (CMB baselines are already high)",
			seqGain, cmbGain)
	}
}
