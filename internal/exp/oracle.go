// Package exp implements the paper's experiments: Table I (framework
// comparison), Fig. 3 (pass rate versus normalized reasoning length) and
// Fig. 4 (pass@1 versus sample count), plus the ablation studies listed in
// DESIGN.md. Each experiment is a pure function of its config and seeds.
package exp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/eval"
	"repro/internal/testbench"
)

// oracleBackend note: golden traces and candidate traces always run on the
// same backend, so verification compares like with like.

// ErrExperiment wraps experiment-level failures.
var ErrExperiment = errors.New("experiment failed")

// Oracle scores candidate code against a task's golden design under a dense
// verification testbench — the role the VerilogEval reference testbenches
// play in the paper. Golden fingerprints are computed once per task and
// cached. Verification compares fingerprints on the streaming path by
// default (the dense benches made verification the largest remaining trace
// producer); LegacyTraces retains full printed traces instead, with
// identical verdicts. The oracle is safe for concurrent use.
type Oracle struct {
	seed int64
	// Backend selects the simulation engine (zero value: compiled).
	Backend testbench.Backend
	// LegacyTraces forces verification onto the retained printed-trace
	// path (the differential referee for the fingerprint path). Set it
	// before the first Verify: tasks prepared earlier have no retained
	// golden trace, so they keep comparing fingerprints (same verdicts).
	LegacyTraces bool

	mu       sync.Mutex
	tasks    map[string]eval.Task
	stimul   map[string]*testbench.Stimulus
	golden   map[string]*testbench.FPTrace
	goldenTr map[string]*testbench.Trace
	verdicts map[verdictKey]bool
}

// verdictKey caches verification results by task and candidate text hash
// (candidate generation is deterministic, so identical code recurs across
// pipeline variants).
type verdictKey struct {
	taskID string
	code   uint64
}

// NewOracle builds an oracle over the given tasks.
func NewOracle(tasks []eval.Task, seed int64) *Oracle {
	o := &Oracle{
		seed:     seed,
		tasks:    make(map[string]eval.Task, len(tasks)),
		stimul:   make(map[string]*testbench.Stimulus, len(tasks)),
		golden:   make(map[string]*testbench.FPTrace, len(tasks)),
		goldenTr: make(map[string]*testbench.Trace, len(tasks)),
		verdicts: make(map[verdictKey]bool),
	}
	for _, t := range tasks {
		o.tasks[t.ID] = t
	}
	return o
}

// prepare lazily computes the verification stimulus and the golden
// fingerprints (plus the golden printed trace on the legacy path).
func (o *Oracle) prepare(taskID string) (*testbench.Stimulus, *testbench.FPTrace, *testbench.Trace, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if st, ok := o.stimul[taskID]; ok {
		return st, o.golden[taskID], o.goldenTr[taskID], nil
	}
	task, ok := o.tasks[taskID]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: unknown task %q", ErrExperiment, taskID)
	}
	st := testbench.VerificationCached(o.seed+int64(task.Index), task.Ifc)
	src, err := eval.ParseCached(task.Golden)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: golden parse: %v", ErrExperiment, err)
	}
	var golden *testbench.FPTrace
	var goldenTr *testbench.Trace
	if o.LegacyTraces {
		goldenTr = testbench.RunBackend(src, eval.TopModule, st, o.Backend)
		if goldenTr.Err != nil {
			return nil, nil, nil, fmt.Errorf("%w: golden simulation: %v", ErrExperiment, goldenTr.Err)
		}
		// The cached trace is compared by many goroutines at once, so its
		// lazy fingerprint memo must be filled before publication.
		goldenTr.Warm()
		o.goldenTr[taskID] = goldenTr
		golden = goldenTr.FP() // same values, no second simulation
	} else {
		golden = testbench.RunFingerprint(src, eval.TopModule, st, o.Backend)
		if golden.Err != nil {
			return nil, nil, nil, fmt.Errorf("%w: golden simulation: %v", ErrExperiment, golden.Err)
		}
	}
	golden.Fingerprint() // warm the memo before concurrent reads
	o.stimul[taskID] = st
	o.golden[taskID] = golden
	return st, golden, goldenTr, nil
}

// Verify reports whether candidate code is functionally correct for the
// task: it must parse and match the golden behavior on every verification
// case.
func (o *Oracle) Verify(taskID, code string) (bool, error) {
	key := verdictKey{taskID: taskID, code: hashCode(code)}
	o.mu.Lock()
	if v, hit := o.verdicts[key]; hit {
		o.mu.Unlock()
		return v, nil
	}
	o.mu.Unlock()

	st, golden, goldenTr, err := o.prepare(taskID)
	if err != nil {
		return false, err
	}
	verdict := false
	if src, perr := eval.ParseCached(code); perr == nil && src.FindModule(eval.TopModule) != nil {
		if o.LegacyTraces && goldenTr != nil {
			tr := testbench.RunBackend(src, eval.TopModule, st, o.Backend)
			verdict = tr.Err == nil && testbench.Agrees(tr, goldenTr)
		} else {
			tr := testbench.RunFingerprint(src, eval.TopModule, st, o.Backend)
			verdict = tr.Err == nil && testbench.FPAgrees(tr, golden)
		}
	}
	o.mu.Lock()
	o.verdicts[key] = verdict
	o.mu.Unlock()
	return verdict, nil
}

func hashCode(code string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(code))
	return h.Sum64()
}
