// Package exp implements the paper's experiments: Table I (framework
// comparison), Fig. 3 (pass rate versus normalized reasoning length) and
// Fig. 4 (pass@1 versus sample count), plus the ablation studies listed in
// DESIGN.md. Each experiment is a pure function of its config and seeds.
package exp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/testbench"
	"repro/internal/verilog/ast"
)

// oracleBackend note: golden traces and candidate traces always run on the
// same backend, so verification compares like with like.

// ErrExperiment wraps experiment-level failures.
var ErrExperiment = errors.New("experiment failed")

// Oracle scores candidate code against a task's golden design under a dense
// verification testbench — the role the VerilogEval reference testbenches
// play in the paper. Golden fingerprints are computed once per task and
// cached. Verification compares fingerprints on the streaming path by
// default (the dense benches made verification the largest remaining trace
// producer); LegacyTraces retains full printed traces instead, with
// identical verdicts. The oracle is safe for concurrent use.
type Oracle struct {
	seed int64
	// Backend selects the simulation engine (zero value: compiled).
	Backend testbench.Backend
	// LegacyTraces forces verification onto the retained printed-trace
	// path (the differential referee for the fingerprint path). Set it
	// before the first Verify: tasks prepared earlier have no retained
	// golden trace, so they keep comparing fingerprints (same verdicts).
	LegacyTraces bool
	// PerLaneGang forces VerifyBatch gangs onto the per-lane engine model
	// instead of the default shared-plane SoA model. Verdicts are identical
	// either way; the per-lane model is the differential referee.
	PerLaneGang bool

	mu       sync.Mutex
	tasks    map[string]eval.Task
	stimul   map[string]*testbench.Stimulus
	golden   map[string]*testbench.FPTrace
	goldenTr map[string]*testbench.Trace
	goldenD  map[string]*sim.Design // compiled golden: delta-compilation base
	verdicts map[verdictKey]bool
}

// verdictKey caches verification results by task and candidate text hash
// (candidate generation is deterministic, so identical code recurs across
// pipeline variants).
type verdictKey struct {
	taskID string
	code   uint64
}

// NewOracle builds an oracle over the given tasks.
func NewOracle(tasks []eval.Task, seed int64) *Oracle {
	o := &Oracle{
		seed:     seed,
		tasks:    make(map[string]eval.Task, len(tasks)),
		stimul:   make(map[string]*testbench.Stimulus, len(tasks)),
		golden:   make(map[string]*testbench.FPTrace, len(tasks)),
		goldenTr: make(map[string]*testbench.Trace, len(tasks)),
		goldenD:  make(map[string]*sim.Design, len(tasks)),
		verdicts: make(map[verdictKey]bool),
	}
	for _, t := range tasks {
		o.tasks[t.ID] = t
	}
	return o
}

// prepare lazily computes the verification stimulus and the golden
// fingerprints (plus the golden printed trace on the legacy path).
func (o *Oracle) prepare(taskID string) (*testbench.Stimulus, *testbench.FPTrace, *testbench.Trace, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if st, ok := o.stimul[taskID]; ok {
		return st, o.golden[taskID], o.goldenTr[taskID], nil
	}
	task, ok := o.tasks[taskID]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: unknown task %q", ErrExperiment, taskID)
	}
	st := testbench.VerificationCached(o.seed+int64(task.Index), task.Ifc)
	src, err := eval.ParseCached(task.Golden)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: golden parse: %v", ErrExperiment, err)
	}
	var golden *testbench.FPTrace
	var goldenTr *testbench.Trace
	if o.LegacyTraces {
		goldenTr = testbench.RunBackend(src, eval.TopModule, st, o.Backend)
		if goldenTr.Err != nil {
			return nil, nil, nil, fmt.Errorf("%w: golden simulation: %v", ErrExperiment, goldenTr.Err)
		}
		// The cached trace is compared by many goroutines at once, so its
		// lazy fingerprint memo must be filled before publication.
		goldenTr.Warm()
		o.goldenTr[taskID] = goldenTr
		golden = goldenTr.FP() // same values, no second simulation
	} else {
		golden = testbench.RunFingerprint(src, eval.TopModule, st, o.Backend)
		if golden.Err != nil {
			return nil, nil, nil, fmt.Errorf("%w: golden simulation: %v", ErrExperiment, golden.Err)
		}
	}
	golden.Fingerprint() // warm the memo before concurrent reads
	if o.Backend != testbench.BackendInterpreter {
		// The compiled golden is the delta-compilation base for candidate
		// batches: mutants share its netlist layout, so their unmutated
		// processes splice in instead of re-lowering.
		if d, derr := sim.CompileCached(src, eval.TopModule); derr == nil {
			o.goldenD[taskID] = d
		}
	}
	o.stimul[taskID] = st
	o.golden[taskID] = golden
	return st, golden, goldenTr, nil
}

// Verify reports whether candidate code is functionally correct for the
// task: it must parse and match the golden behavior on every verification
// case.
func (o *Oracle) Verify(taskID, code string) (bool, error) {
	key := verdictKey{taskID: taskID, code: hashCode(code)}
	o.mu.Lock()
	if v, hit := o.verdicts[key]; hit {
		o.mu.Unlock()
		return v, nil
	}
	o.mu.Unlock()

	st, golden, goldenTr, err := o.prepare(taskID)
	if err != nil {
		return false, err
	}
	verdict := false
	if src, perr := eval.ParseCached(code); perr == nil && src.FindModule(eval.TopModule) != nil {
		if o.LegacyTraces && goldenTr != nil {
			tr := testbench.RunBackend(src, eval.TopModule, st, o.Backend)
			verdict = tr.Err == nil && testbench.Agrees(tr, goldenTr)
		} else {
			tr := testbench.RunFingerprint(src, eval.TopModule, st, o.Backend)
			verdict = tr.Err == nil && testbench.FPAgrees(tr, golden)
		}
	}
	o.mu.Lock()
	o.verdicts[key] = verdict
	o.mu.Unlock()
	return verdict, nil
}

// VerifyBatch is Verify over a batch of candidates for one task: verdicts
// are identical to per-candidate Verify calls, but all unverified
// parseable candidates are simulated as one gang over the shared dense
// verification stimulus, with the compiled golden as delta-compilation
// base. The legacy-trace referee path stays per-candidate.
func (o *Oracle) VerifyBatch(taskID string, codes []string) ([]bool, error) {
	out := make([]bool, len(codes))
	keys := make([]verdictKey, len(codes))
	pending := make([]int, 0, len(codes)) // first index per unresolved unique key
	seen := make(map[verdictKey]bool, len(codes))
	o.mu.Lock()
	for i, code := range codes {
		keys[i] = verdictKey{taskID: taskID, code: hashCode(code)}
		if _, hit := o.verdicts[keys[i]]; !hit && !seen[keys[i]] {
			seen[keys[i]] = true
			pending = append(pending, i)
		}
	}
	o.mu.Unlock()

	if len(pending) > 0 {
		st, golden, goldenTr, err := o.prepare(taskID)
		if err != nil {
			return nil, err
		}
		verdicts := make([]bool, len(pending))
		if o.LegacyTraces && goldenTr != nil {
			for k, i := range pending {
				src := mustParse(codes[i])
				if src == nil {
					continue // unparseable: verdict stays false
				}
				tr := testbench.RunBackend(src, eval.TopModule, st, o.Backend)
				verdicts[k] = tr.Err == nil && testbench.Agrees(tr, goldenTr)
			}
		} else {
			srcs := make([]*ast.Source, len(pending))
			for k, i := range pending {
				srcs[k] = mustParse(codes[i])
			}
			gangSrcs := make([]*ast.Source, 0, len(srcs))
			gangAt := make([]int, 0, len(srcs))
			for k, src := range srcs {
				if src != nil {
					gangSrcs = append(gangSrcs, src)
					gangAt = append(gangAt, k)
				}
			}
			o.mu.Lock()
			base := o.goldenD[taskID]
			o.mu.Unlock()
			mode := testbench.GangSoA
			if o.PerLaneGang {
				mode = testbench.GangPerLane
			}
			trs := testbench.RunFingerprintGangMode(gangSrcs, eval.TopModule, st, o.Backend, base, mode)
			for j, k := range gangAt {
				tr := trs[j]
				verdicts[k] = tr.Err == nil && testbench.FPAgrees(tr, golden)
			}
		}
		o.mu.Lock()
		for k, i := range pending {
			o.verdicts[keys[i]] = verdicts[k]
		}
		o.mu.Unlock()
	}

	o.mu.Lock()
	for i := range codes {
		out[i] = o.verdicts[keys[i]]
	}
	o.mu.Unlock()
	return out, nil
}

// mustParse returns the parsed source when the code is a valid candidate
// containing the top module, else nil (verdict false, as in Verify).
func mustParse(code string) *ast.Source {
	src, err := eval.ParseCached(code)
	if err != nil || src.FindModule(eval.TopModule) == nil {
		return nil
	}
	return src
}

func hashCode(code string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(code))
	return h.Sum64()
}
