package exp

import (
	"repro/internal/xrng"
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/mutate"
	"repro/internal/verilog/parser"
	"repro/internal/verilog/printer"
)

func TestOracleGoldenAlwaysPasses(t *testing.T) {
	tasks := eval.Suite()
	oracle := NewOracle(tasks, 3)
	for i := 0; i < len(tasks); i += 10 {
		ok, err := oracle.Verify(tasks[i].ID, tasks[i].Golden)
		if err != nil {
			t.Fatalf("%s: %v", tasks[i].ID, err)
		}
		if !ok {
			t.Errorf("%s: golden fails its own verification", tasks[i].ID)
		}
	}
}

func TestOracleRejectsGarbageAndUnknownTask(t *testing.T) {
	tasks := eval.Suite()[:3]
	oracle := NewOracle(tasks, 3)
	ok, err := oracle.Verify(tasks[0].ID, "not verilog at all")
	if err != nil || ok {
		t.Errorf("garbage verdict: %v %v", ok, err)
	}
	ok, err = oracle.Verify(tasks[0].ID, "module wrong_name (input a, output y);\nassign y = a;\nendmodule\n")
	if err != nil || ok {
		t.Errorf("wrong module name verdict: %v %v", ok, err)
	}
	if _, err := oracle.Verify("ghost_task", "x"); err == nil {
		t.Error("unknown task should error")
	}
}

func TestOracleDetectsMutants(t *testing.T) {
	tasks := eval.Suite()
	oracle := NewOracle(tasks, 3)
	rng := xrng.New(31)
	detected, total := 0, 0
	for i := 0; i < len(tasks); i += 12 {
		task := tasks[i]
		src, err := parser.Parse(task.Golden)
		if err != nil {
			t.Fatal(err)
		}
		top := src.FindModule(eval.TopModule)
		for trial := 0; trial < 3; trial++ {
			mutant, _ := mutate.Semantic(top, rng, mutate.Config{Count: 2})
			if mutant == nil {
				continue
			}
			ok, verr := oracle.Verify(task.ID, printer.PrintModule(mutant))
			if verr != nil {
				t.Fatal(verr)
			}
			total++
			if !ok {
				detected++
			}
		}
	}
	if total == 0 {
		t.Fatal("no mutants tested")
	}
	if frac := float64(detected) / float64(total); frac < 0.7 {
		t.Errorf("oracle detected only %.0f%% of double mutants", 100*frac)
	}
}

func TestOracleCacheConsistencyUnderConcurrency(t *testing.T) {
	tasks := eval.Suite()[:4]
	oracle := NewOracle(tasks, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, task := range tasks {
				ok, err := oracle.Verify(task.ID, task.Golden)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- &Error{msg: "golden failed under concurrency: " + task.ID}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Error is a trivial test error type.
type Error struct{ msg string }

func (e *Error) Error() string { return e.msg }

func TestTable1Render(t *testing.T) {
	res := &Table1Result{
		Config: Table1Config{Samples: 50, Runs: 5},
		Rows: []Table1Row{{
			Model: "deepseek-r1", Dataset: "Human",
			BasePass1: 0.66, BasePass2: 0.709, BasePass3: 0.729,
			VRank: 0.792, PreVRank: 0.847, VFocus: 0.87,
		}},
	}
	out := res.Render()
	for _, want := range []string{"deepseek-r1", "Human", "66.0%", "79.2%", "87.0%", "VRank", "Pre+VRank", "VFocus"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
