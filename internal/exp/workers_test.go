package exp

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/eval"
)

// TestTable1WorkersEquivalence pins the acceptance criterion for the
// parallel ranking/driver pools: a reduced Table I must produce identical
// rows whether the task pool runs on one worker or many (per-task outcomes
// are aggregated in sorted order, and per-pipeline ranking is deterministic
// by construction).
func TestTable1WorkersEquivalence(t *testing.T) {
	all := eval.Suite()
	var tasks []eval.Task
	for i := 0; i < len(all); i += 24 {
		tasks = append(tasks, all[i])
	}
	run := func(workers int) []Table1Row {
		res, err := RunTable1(context.Background(), Table1Config{
			Models:  []string{"qwq-32b"},
			Tasks:   tasks,
			Samples: 10,
			Runs:    1,
			Seed:    5,
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Rows
	}
	r1 := run(1)
	rN := run(8)
	if !reflect.DeepEqual(r1, rN) {
		t.Fatalf("Table I rows diverge between Workers=1 and Workers=8\nw1: %+v\nw8: %+v", r1, rN)
	}
}
