package exp

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/testbench"
)

// TestTable1BackendEquivalence runs a reduced Table I once per backend and
// requires identical rows: the compiled engine must not change a single
// pipeline decision (clustering, refinement admission, final pick,
// verification verdicts) relative to the interpreter.
func TestTable1BackendEquivalence(t *testing.T) {
	all := eval.Suite()
	var tasks []eval.Task
	for i := 0; i < len(all); i += 24 {
		tasks = append(tasks, all[i])
	}
	run := func(b testbench.Backend, legacy bool) []Table1Row {
		res, err := RunTable1(context.Background(), Table1Config{
			Models:       []string{"qwq-32b"},
			Tasks:        tasks,
			Samples:      10,
			Runs:         1,
			Seed:         5,
			Backend:      b,
			LegacyTraces: legacy,
		})
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		return res.Rows
	}
	ri := run(testbench.BackendInterpreter, false)
	rc := run(testbench.BackendCompiled, false)
	if !reflect.DeepEqual(ri, rc) {
		t.Fatalf("Table I rows diverge between backends\ninterpreter: %+v\ncompiled: %+v", ri, rc)
	}
	// The retained-trace path is the differential referee for the streaming
	// fingerprint path: same rows, bit for bit, on both backends.
	if rl := run(testbench.BackendCompiled, true); !reflect.DeepEqual(rl, rc) {
		t.Fatalf("Table I rows diverge between trace paths\nlegacy: %+v\nfingerprint: %+v", rl, rc)
	}
	if rli := run(testbench.BackendInterpreter, true); !reflect.DeepEqual(rli, ri) {
		t.Fatalf("Table I rows diverge between trace paths on the interpreter\nlegacy: %+v\nfingerprint: %+v", rli, ri)
	}
}

// TestOracleBackendEquivalence checks that verification verdicts agree
// across backends for golden and deliberately wrong candidates.
func TestOracleBackendEquivalence(t *testing.T) {
	tasks := eval.Suite()[:6]
	oi := NewOracle(tasks, 3)
	oi.Backend = testbench.BackendInterpreter
	oc := NewOracle(tasks, 3)
	oc.Backend = testbench.BackendCompiled
	ol := NewOracle(tasks, 3)
	ol.Backend = testbench.BackendCompiled
	ol.LegacyTraces = true
	wrong := `
module top_module (input a, input b, output y);
    assign y = a & b;
endmodule
`
	for _, task := range tasks {
		for _, code := range []string{task.Golden, wrong} {
			vi, err := oi.Verify(task.ID, code)
			if err != nil {
				t.Fatalf("%s: interp verify: %v", task.ID, err)
			}
			vc, err := oc.Verify(task.ID, code)
			if err != nil {
				t.Fatalf("%s: compiled verify: %v", task.ID, err)
			}
			if vi != vc {
				t.Errorf("%s: verdict divergence: interp=%v compiled=%v", task.ID, vi, vc)
			}
			vl, err := ol.Verify(task.ID, code)
			if err != nil {
				t.Fatalf("%s: legacy verify: %v", task.ID, err)
			}
			if vl != vc {
				t.Errorf("%s: verdict divergence between trace paths: legacy=%v fingerprint=%v",
					task.ID, vl, vc)
			}
		}
	}
}
