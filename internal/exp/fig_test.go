package exp

import (
	"context"
	"testing"

	"repro/internal/eval"
)

// smallTasks picks a spread of tasks for fast experiment tests.
func smallTasks(t *testing.T) []eval.Task {
	t.Helper()
	all := eval.Suite()
	idx := []int{0, 10, 25, 40, 55, 70, 85, 95, 110, 125, 140, 150}
	out := make([]eval.Task, 0, len(idx))
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}

func TestRunFig3ShapesAndDeterminism(t *testing.T) {
	cfg := Fig3Config{
		Models:  []string{"deepseek-r1", "o3-mini-medium"},
		Tasks:   smallTasks(t),
		Samples: 30,
		Bins:    5,
		Seed:    11,
	}
	res, err := RunFig3(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Total != len(cfg.Tasks)*cfg.Samples {
			t.Errorf("%s: total=%d, want %d", s.Model, s.Total, len(cfg.Tasks)*cfg.Samples)
		}
		kept := 0
		for _, b := range s.Bins {
			kept += b.Count
			if b.PassRate < 0 || b.PassRate > 1 {
				t.Errorf("%s: bin pass rate %v out of range", s.Model, b.PassRate)
			}
		}
		if kept+s.Dropped != s.Total {
			t.Errorf("%s: kept %d + dropped %d != total %d", s.Model, kept, s.Dropped, s.Total)
		}
	}

	// Deepseek (monotone curve) must show a falling trend: first-bin pass
	// rate above last-bin pass rate.
	ds := res.Series[0]
	first, last := ds.Bins[0], ds.Bins[len(ds.Bins)-1]
	if first.Count > 0 && last.Count > 0 && first.PassRate <= last.PassRate {
		t.Errorf("deepseek pass rate not decreasing: first=%v last=%v", first.PassRate, last.PassRate)
	}

	res2, err := RunFig3(context.Background(), cfg)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	for i := range res.Series {
		if res.Series[i].Total != res2.Series[i].Total || res.Series[i].Dropped != res2.Series[i].Dropped {
			t.Errorf("series %d not deterministic", i)
		}
		for j := range res.Series[i].Bins {
			if res.Series[i].Bins[j] != res2.Series[i].Bins[j] {
				t.Errorf("series %d bin %d not deterministic", i, j)
			}
		}
	}
}

func TestRunFig4ShapeSmall(t *testing.T) {
	cfg := Fig4Config{
		Models:      []string{"deepseek-r1"},
		Tasks:       smallTasks(t),
		SampleSizes: []int{5, 20},
		Runs:        2,
		Seed:        13,
	}
	res, err := RunFig4(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	for _, p := range res.Series[0].Points {
		for name, s := range map[string]float64{
			"baseline": p.Baseline.Mean, "vrank": p.VRank.Mean, "vfocus": p.VFocus.Mean,
		} {
			if s < 0 || s > 1 {
				t.Errorf("n=%d %s mean %v out of range", p.N, name, s)
			}
		}
		// Selection frameworks should not trail the random baseline on
		// this seed spread.
		if p.VFocus.Mean < p.Baseline.Mean-0.10 {
			t.Errorf("n=%d vfocus %.3f well below baseline %.3f", p.N, p.VFocus.Mean, p.Baseline.Mean)
		}
	}
}
