package testbench

import (
	"strings"
	"testing"
)

func TestRenderVerilogComb(t *testing.T) {
	g := NewGenerator(1)
	st := g.Ranking(combIfc())
	out := RenderVerilog(st, "top_module")

	for _, want := range []string{
		"module tb;",
		"reg [1:0] a;",
		"reg b;",
		"wire [1:0] y;",
		"top_module dut (.a(a), .b(b), .y(y));",
		"$display(",
		"y=%b",
		"$finish;",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered testbench missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "posedge") {
		t.Error("combinational bench must not wait on a clock")
	}
	// One display per step.
	if got := strings.Count(out, "$display"); got != len(st.Cases)+0 {
		// each comb case has exactly one step, plus the format line itself
		// appears once per step.
		if got != len(st.Cases) {
			t.Errorf("%d $display calls for %d cases", got, len(st.Cases))
		}
	}
}

func TestRenderVerilogSeq(t *testing.T) {
	g := NewGenerator(1)
	st := g.Ranking(seqIfc())
	out := RenderVerilog(st, "top_module")
	for _, want := range []string{
		"always #5 clk = ~clk;",
		"@(posedge clk); #1;",
		"reg clk;",
		"reg reset;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered seq testbench missing %q", want)
		}
	}
	// The clock must not be driven procedurally inside the step sequence
	// (the always block owns it after init).
	if strings.Contains(out, "clk = 1'b") {
		t.Error("clock driven as a data input")
	}
}
