//go:build !race

package testbench

// raceEnabled reports that the race detector is inactive.
const raceEnabled = false
