package testbench

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// countingInst wraps an Instance and counts handle resolutions, so tests can
// observe how many times a binding was actually resolved.
type countingInst struct {
	sim.Instance
	inCalls  *atomic.Int32
	outCalls *atomic.Int32
}

func (ci countingInst) InputHandle(name string) (int, error) {
	ci.inCalls.Add(1)
	return ci.Instance.InputHandle(name)
}

func (ci countingInst) OutputHandle(name string) (int, error) {
	ci.outCalls.Add(1)
	return ci.Instance.OutputHandle(name)
}

// TestCachedBindSingleFlightUnderConcurrency regression-tests the bind memo
// against its former check-then-act race: concurrent missers on one cold
// (design, schedule) key used to each run sc.bind and clobber one another's
// entry. The single-flight memo must resolve the binding exactly once, with
// every caller receiving that one result.
func TestCachedBindSingleFlightUnderConcurrency(t *testing.T) {
	ifc := schedSeqIfc()
	parsed := mustParse(t, schedSeqSrc)
	d, err := sim.CompileCached(parsed, "top_module")
	if err != nil {
		t.Fatal(err)
	}
	// Fresh generator (not the stimulus cache) -> fresh Schedule pointer ->
	// cold bind key.
	st := NewGenerator(33).Ranking(ifc)
	sc := st.schedule()
	if sc == nil {
		t.Fatal("generated stimulus must be schedulable")
	}

	// Expected per-resolution handle counts, measured on a direct bind.
	var wantIn, wantOut atomic.Int32
	en := d.AcquireEngine()
	if _, ok := sc.bind(countingInst{Instance: en, inCalls: &wantIn, outCalls: &wantOut}, &ifc); !ok {
		t.Fatal("direct bind failed")
	}
	d.ReleaseEngine(en)

	// A second fresh schedule of the same stimulus shape gives the cold key
	// the burst races on.
	st2 := NewGenerator(33).Ranking(ifc)
	sc2 := st2.schedule()
	var gotIn, gotOut atomic.Int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	results := make([]binding, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			en := d.AcquireEngine()
			defer d.ReleaseEngine(en)
			<-gate
			b, ok := cachedBind(d, sc2, countingInst{Instance: en, inCalls: &gotIn, outCalls: &gotOut}, &ifc)
			if !ok {
				t.Error("cachedBind failed")
				return
			}
			results[i] = b
		}(i)
	}
	close(gate)
	wg.Wait()

	if gotIn.Load() != wantIn.Load() || gotOut.Load() != wantOut.Load() {
		t.Errorf("burst resolved handles %d/%d times, want exactly one bind's worth (%d/%d)",
			gotIn.Load(), gotOut.Load(), wantIn.Load(), wantOut.Load())
	}
	for i := 1; i < len(results); i++ {
		if results[i].clock != results[0].clock ||
			len(results[i].ins) != len(results[0].ins) ||
			len(results[i].outs) != len(results[0].outs) {
			t.Fatalf("caller %d received a different binding", i)
		}
	}
}

// blockingInst keeps a bind resolution in flight until its gate opens.
type blockingInst struct {
	sim.Instance
	gate  <-chan struct{}
	start chan<- struct{}
	calls *atomic.Int32
}

func (bi blockingInst) InputHandle(string) (int, error) {
	bi.calls.Add(1)
	if bi.start != nil {
		close(bi.start)
	}
	<-bi.gate
	return 0, nil
}

// TestBindMemoLRUEviction replaces the old wholesale flush check: entries
// past the cap must be evicted one at a time in LRU order, recently used
// entries survive, and in-flight (unresolved) entries are pinned.
func TestBindMemoLRUEviction(t *testing.T) {
	// Empty schedules resolve without touching the instance, so synthetic
	// keys are cheap: each distinct *Schedule is one memo key.
	emptyIfc := Interface{}
	mk := func() *Schedule { return &Schedule{} }

	victim, keeper := mk(), mk()
	cachedBind(nil, victim, nil, &emptyIfc)
	cachedBind(nil, keeper, nil, &emptyIfc)

	// An in-flight resolution on a one-name schedule must survive any amount
	// of churn below.
	inflight := &Schedule{names: []string{"x"}, widths: []int32{1}, wordsOf: []int32{1}}
	var calls atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cachedBind(nil, inflight, blockingInst{gate: gate, start: started, calls: &calls}, &emptyIfc)
	}()
	<-started

	// Churn far past the cap, touching keeper along the way so it stays hot.
	for i := 0; i < bindMemoCap+8; i++ {
		cachedBind(nil, mk(), nil, &emptyIfc)
		if i == bindMemoCap/2 {
			cachedBind(nil, keeper, nil, &emptyIfc)
		}
	}

	bindMu.Lock()
	_, victimAlive := bindMemo[bindKey{d: nil, sc: victim}]
	_, keeperAlive := bindMemo[bindKey{d: nil, sc: keeper}]
	_, inflightAlive := bindMemo[bindKey{d: nil, sc: inflight}]
	memoLen := bindLen
	bindMu.Unlock()

	if victimAlive {
		t.Error("cold entry survived cap overflow; LRU eviction not engaging")
	}
	if !keeperAlive {
		t.Error("recently touched entry was evicted")
	}
	if !inflightAlive {
		t.Error("in-flight entry was evicted while resolving")
	}
	// One in-flight entry may pin the memo one past cap, no further.
	if memoLen > bindMemoCap+1 {
		t.Errorf("memo holds %d entries, cap %d", memoLen, bindMemoCap)
	}

	// A joiner on the in-flight key must share the single resolution.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cachedBind(nil, inflight, blockingInst{gate: gate, calls: &calls}, &emptyIfc)
	}()
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("in-flight binding resolved %d times, want 1", got)
	}
}

// TestBuildScheduleStepOverflowRejected pins the int32-narrowing fix in
// buildSchedule: a stimulus whose total step count exceeds the int32 stepOff
// range must fall back to the interpreted path (nil schedule) instead of
// silently wrapping row offsets. Cases share one backing step slice, so the
// 2^31-step stimulus is cheap to build, and the O(cases) pre-count rejects
// it without walking the steps. (The width guards in the same function are
// untestable without allocating multi-gigabit values.)
func TestBuildScheduleStepOverflowRejected(t *testing.T) {
	const stepsPerCase = 100000
	proto := Step{Inputs: map[string]sim.Value{"a": sim.NewKnown(2, 1), "b": sim.NewKnown(1, 0)}}
	proto.finalize()
	shared := make([]Step, stepsPerCase)
	for i := range shared {
		shared[i] = proto
	}
	nCases := math.MaxInt32/stepsPerCase + 2 // total steps just past MaxInt32
	st := &Stimulus{Ifc: combIfc(), Cases: make([]Case, nCases)}
	for i := range st.Cases {
		st.Cases[i] = Case{Steps: shared}
	}
	if stepCountFitsInt32(st) {
		t.Fatal("step pre-count accepted an overflowing stimulus")
	}
	if buildSchedule(st) != nil {
		t.Fatal("buildSchedule compiled a stimulus with > MaxInt32 steps")
	}

	// Control: trimmed to a handful of cases the same shape schedules fine.
	small := &Stimulus{Ifc: combIfc(), Cases: st.Cases[:2]}
	if buildSchedule(small) == nil {
		t.Fatal("control stimulus failed to schedule")
	}
}
