// Package testbench generates stimulus for candidate modules and captures
// simulation traces. It plays the role of CorrectBench in the paper: the
// generated testbenches only *print* outputs (they never judge them), and
// the ranking stage compares the printed traces across candidates.
//
// Two testbench grades exist:
//
//   - Ranking testbenches (Generator.Ranking) are deliberately lightweight
//     and optionally imperfect, modeling the LLM-generated testbenches the
//     paper relies on: they may under-cover edge cases, which is exactly why
//     the post-ranking refinement stage exists.
//   - Verification testbenches (Generator.Verification) are dense and are
//     used only to score a final pick against the golden design, mirroring
//     the reference testbenches of VerilogEval-Human.
package testbench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/verilog/ast"
)

// ErrRun is the sentinel for stimulus execution failures.
var ErrRun = errors.New("testbench run failed")

// PortSpec describes one port of the design under test.
type PortSpec struct {
	Name  string
	Width int
}

// Interface describes the boundary of a design under test.
type Interface struct {
	Inputs  []PortSpec
	Outputs []PortSpec
	// Clock is the clock input name for sequential designs ("" for
	// combinational).
	Clock string
	// Reset is the synchronous reset input name, if any.
	Reset string
	// ResetActiveLow marks an active-low reset.
	ResetActiveLow bool
}

// Sequential reports whether the interface has a clock.
func (ifc *Interface) Sequential() bool { return ifc.Clock != "" }

// DataInputs returns input ports excluding clock and reset.
func (ifc *Interface) DataInputs() []PortSpec {
	var out []PortSpec
	for _, in := range ifc.Inputs {
		if in.Name == ifc.Clock || in.Name == ifc.Reset {
			continue
		}
		out = append(out, in)
	}
	return out
}

// Step is one stimulus step: drive the inputs, advance (settle or clock
// tick), then record all outputs.
type Step struct {
	Inputs map[string]sim.Value

	// sortedNames caches the deterministic drive order (generator-built
	// stimuli fill it once; hand-built steps fall back to sorting per run).
	sortedNames []string
}

// driveOrder returns the input names in deterministic (sorted) order.
func (st *Step) driveOrder() []string {
	if st.sortedNames != nil {
		return st.sortedNames
	}
	names := make([]string, 0, len(st.Inputs))
	for name := range st.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// finalize precomputes the drive order (called by the generator, which owns
// the stimulus before any concurrent use).
func (st *Step) finalize() {
	st.sortedNames = st.driveOrder()
}

// Case is one test case: a single vector for combinational circuits or a
// reset-plus-sequence for sequential circuits. Each case starts from a fresh
// simulator.
type Case struct {
	Steps []Step
}

// Stimulus is a full printing testbench: a set of test cases for one
// interface.
type Stimulus struct {
	Ifc   Interface
	Cases []Case
}

// NumCases returns the number of test cases.
func (st *Stimulus) NumCases() int { return len(st.Cases) }

// Generator builds stimulus deterministically from a seed.
type Generator struct {
	rng *rand.Rand

	// MaxCombVectors bounds combinational vector counts (exhaustive
	// enumeration is used when the input space is smaller).
	MaxCombVectors int
	// SeqCases and SeqSteps control sequential stimulus volume.
	SeqCases int
	SeqSteps int
	// Imperfection in [0,1) drops roughly that fraction of the cases a
	// perfect testbench would contain, modeling weak LLM-generated
	// testbenches (0 = as dense as configured).
	Imperfection float64
}

// NewGenerator returns a generator with the given seed and defaults
// resembling the lightweight testbenches of the ranking stage.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:            rand.New(rand.NewSource(seed)),
		MaxCombVectors: 32,
		SeqCases:       3,
		SeqSteps:       12,
	}
}

// Ranking generates the lightweight printing testbench used by the ranking
// stage.
func (g *Generator) Ranking(ifc Interface) *Stimulus {
	st := g.generate(ifc, g.MaxCombVectors, g.SeqCases, g.SeqSteps)
	if g.Imperfection > 0 && len(st.Cases) > 1 {
		keep := int(float64(len(st.Cases)) * (1 - g.Imperfection))
		if keep < 1 {
			keep = 1
		}
		g.rng.Shuffle(len(st.Cases), func(i, j int) {
			st.Cases[i], st.Cases[j] = st.Cases[j], st.Cases[i]
		})
		st.Cases = st.Cases[:keep]
	}
	return st
}

// Verification generates the dense testbench used only for final scoring
// against the golden design.
func (g *Generator) Verification(ifc Interface) *Stimulus {
	return g.generate(ifc, 256, 8, 48)
}

func (g *Generator) generate(ifc Interface, maxComb, seqCases, seqSteps int) *Stimulus {
	st := &Stimulus{Ifc: ifc}
	if ifc.Sequential() {
		for c := 0; c < seqCases; c++ {
			st.Cases = append(st.Cases, g.seqCase(ifc, seqSteps, c == 0))
		}
	} else {
		st.Cases = g.combCases(ifc, maxComb)
	}
	for ci := range st.Cases {
		for si := range st.Cases[ci].Steps {
			st.Cases[ci].Steps[si].finalize()
		}
	}
	return st
}

// combCases enumerates the input space exhaustively when it is small enough,
// otherwise samples random vectors (always including the all-zeros and
// all-ones corners).
func (g *Generator) combCases(ifc Interface, maxVectors int) []Case {
	ins := ifc.DataInputs()
	totalBits := 0
	for _, in := range ins {
		totalBits += in.Width
	}
	var cases []Case
	if totalBits <= 16 && 1<<uint(totalBits) <= maxVectors {
		for v := uint64(0); v < 1<<uint(totalBits); v++ {
			cases = append(cases, Case{Steps: []Step{{Inputs: splitVector(ins, v)}}})
		}
		return cases
	}
	seen := make(map[string]bool)
	addVector := func(mk func(PortSpec) sim.Value) {
		inputs := make(map[string]sim.Value, len(ins))
		var key strings.Builder
		for _, in := range ins {
			v := mk(in)
			inputs[in.Name] = v
			key.WriteString(v.String())
			key.WriteByte('|')
		}
		if seen[key.String()] {
			return
		}
		seen[key.String()] = true
		cases = append(cases, Case{Steps: []Step{{Inputs: inputs}}})
	}
	addVector(func(p PortSpec) sim.Value { return sim.NewKnown(p.Width, 0) })
	addVector(func(p PortSpec) sim.Value {
		return sim.Not(sim.NewKnown(p.Width, 0))
	})
	for len(cases) < maxVectors {
		addVector(func(p PortSpec) sim.Value { return g.randValue(p.Width) })
	}
	return cases
}

// seqCase builds one sequential test case: assert reset for two cycles (when
// the interface has one), then drive random data inputs. The first case uses
// a short directed pattern (all-zeros then all-ones inputs) so basic
// behaviors always appear in the trace.
func (g *Generator) seqCase(ifc Interface, steps int, directed bool) Case {
	var c Case
	ins := ifc.DataInputs()
	mkStep := func(reset bool, mk func(PortSpec, int) sim.Value, idx int) Step {
		inputs := make(map[string]sim.Value, len(ins)+1)
		if ifc.Reset != "" {
			rv := uint64(0)
			if reset != ifc.ResetActiveLow {
				rv = 1
			}
			inputs[ifc.Reset] = sim.NewKnown(1, rv)
		}
		for _, in := range ins {
			inputs[in.Name] = mk(in, idx)
		}
		return Step{Inputs: inputs}
	}
	zero := func(p PortSpec, _ int) sim.Value { return sim.NewKnown(p.Width, 0) }
	rnd := func(p PortSpec, _ int) sim.Value { return g.randValue(p.Width) }
	alt := func(p PortSpec, i int) sim.Value {
		if i%2 == 0 {
			return sim.NewKnown(p.Width, 0)
		}
		return sim.Not(sim.NewKnown(p.Width, 0))
	}

	if ifc.Reset != "" {
		c.Steps = append(c.Steps, mkStep(true, zero, 0), mkStep(true, zero, 1))
	}
	for i := 0; i < steps; i++ {
		if directed {
			c.Steps = append(c.Steps, mkStep(false, alt, i))
		} else {
			c.Steps = append(c.Steps, mkStep(false, rnd, i))
		}
	}
	return c
}

func (g *Generator) randValue(width int) sim.Value {
	words := (width + 63) / 64
	planes := make([]uint64, words)
	for i := range planes {
		planes[i] = g.rng.Uint64()
	}
	return sim.NewFromPlanes(width, planes, make([]uint64, words))
}

func splitVector(ins []PortSpec, v uint64) map[string]sim.Value {
	out := make(map[string]sim.Value, len(ins))
	shift := 0
	for _, in := range ins {
		out[in.Name] = sim.NewKnown(in.Width, v>>uint(shift))
		shift += in.Width
	}
	return out
}

// --- Trace capture -----------------------------------------------------------------

// StepRecord holds all printed outputs after one step.
type StepRecord struct {
	Outputs []string // aligned with Interface.Outputs order
}

// CaseTrace is the printed record of one test case.
type CaseTrace struct {
	Steps []StepRecord
}

// Fingerprint returns a stable hash of the case's printed outputs.
func (ct *CaseTrace) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, s := range ct.Steps {
		for _, o := range s.Outputs {
			_, _ = h.Write([]byte(o))
			_, _ = h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}

// Trace is the full printed record of a stimulus run.
type Trace struct {
	Ifc   Interface
	Cases []CaseTrace
	// Err records a runtime failure (e.g. combinational loop); candidates
	// whose trace has Err != nil never match any other candidate.
	Err error
}

// Fingerprint hashes the entire trace, including the error state.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	if t.Err != nil {
		_, _ = h.Write([]byte("ERR:" + t.Err.Error()))
		return h.Sum64()
	}
	for _, c := range t.Cases {
		var buf [8]byte
		fp := c.Fingerprint()
		for i := range buf {
			buf[i] = byte(fp >> (8 * uint(i)))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// CaseAgrees reports whether two traces printed identical outputs for test
// case i.
func CaseAgrees(a, b *Trace, i int) bool {
	if a.Err != nil || b.Err != nil {
		return a.Err != nil && b.Err != nil && a.Err.Error() == b.Err.Error()
	}
	if i >= len(a.Cases) || i >= len(b.Cases) {
		return false
	}
	return a.Cases[i].Fingerprint() == b.Cases[i].Fingerprint()
}

// Agrees reports strict behavioral agreement across all test cases
// (the paper's ℓ_strict(c,c') == 0).
func Agrees(a, b *Trace) bool {
	if a.Err != nil || b.Err != nil {
		return a.Err != nil && b.Err != nil && a.Err.Error() == b.Err.Error()
	}
	if len(a.Cases) != len(b.Cases) {
		return false
	}
	for i := range a.Cases {
		if a.Cases[i].Fingerprint() != b.Cases[i].Fingerprint() {
			return false
		}
	}
	return true
}

// String renders the trace the way the paper's printing testbench would:
// one line per step listing every output.
func (t *Trace) String() string {
	if t.Err != nil {
		return "SIMULATION ERROR: " + t.Err.Error() + "\n"
	}
	var b strings.Builder
	for ci, c := range t.Cases {
		fmt.Fprintf(&b, "case %d:\n", ci)
		for si, s := range c.Steps {
			fmt.Fprintf(&b, "  step %d:", si)
			for oi, out := range s.Outputs {
				name := "?"
				if oi < len(t.Ifc.Outputs) {
					name = t.Ifc.Outputs[oi].Name
				}
				fmt.Fprintf(&b, " %s=%s", name, out)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Backend selects the simulation engine used to execute a stimulus.
type Backend int

// Available backends. The zero value is the compiled engine, so every
// caller that does not ask for the interpreter gets the fast path.
const (
	// BackendCompiled flattens the design to an index-addressed netlist via
	// sim.CompileCached: elaboration and compilation are skipped entirely
	// for repeated (or canonically identical) designs, and per-case
	// instantiation is a value-snapshot copy.
	BackendCompiled Backend = iota
	// BackendInterpreter is the original AST-walking engine, retained for
	// differential testing against the compiled backend.
	BackendInterpreter
)

// String names the backend for bench/CLI labels.
func (b Backend) String() string {
	if b == BackendInterpreter {
		return "interpreter"
	}
	return "compiled"
}

// Run executes the stimulus against a design with the default (compiled)
// backend and captures its trace.
func Run(src *ast.Source, top string, st *Stimulus) *Trace {
	return RunBackend(src, top, st, BackendCompiled)
}

// RunBackend executes the stimulus against a design on the chosen backend
// and captures its trace. Each sequential test case gets a fresh simulator
// instance so cases are independent; combinational interfaces reuse one
// instance across cases (deterministic for both golden and candidates, so
// comparisons stay apples-to-apples even for buggy candidates with
// accidental state). A runtime error is recorded in the trace rather than
// returned: a failing candidate is simply one that agrees with nobody.
func RunBackend(src *ast.Source, top string, st *Stimulus, backend Backend) *Trace {
	tr := &Trace{Ifc: st.Ifc}
	var newInstance func() (sim.Instance, error)
	release := func(sim.Instance) {}
	if backend == BackendInterpreter {
		newInstance = func() (sim.Instance, error) { return sim.New(src, top) }
	} else {
		d, err := sim.CompileCached(src, top)
		if err != nil {
			tr.Err = fmt.Errorf("%w: %v", ErrRun, err)
			return tr
		}
		// Pooled engines: per-case instantiation is a frame memcpy, and the
		// engine (with its warmed-up queue buffers) is recycled afterwards.
		newInstance = func() (sim.Instance, error) { return d.AcquireEngine(), nil }
		release = func(ins sim.Instance) {
			if en, ok := ins.(*sim.Engine); ok {
				d.ReleaseEngine(en)
			}
		}
	}
	var shared sim.Instance
	if st.Ifc.Clock == "" {
		var err error
		shared, err = newInstance()
		if err != nil {
			tr.Err = fmt.Errorf("%w: %v", ErrRun, err)
			return tr
		}
		defer release(shared)
	}
	for _, c := range st.Cases {
		s := shared
		if s == nil {
			var err error
			s, err = newInstance()
			if err != nil {
				tr.Err = fmt.Errorf("%w: %v", ErrRun, err)
				return tr
			}
		}
		ct, err := runCase(s, st, &c)
		if s != shared {
			// Release per case so the next case recycles this engine.
			release(s)
		}
		if err != nil {
			tr.Err = fmt.Errorf("%w: %v", ErrRun, err)
			return tr
		}
		tr.Cases = append(tr.Cases, ct)
	}
	return tr
}

// outputAppender is the zero-boxing trace-capture fast path the compiled
// engine provides: rendering an output directly from its storage planes
// costs one allocation (the recorded string) instead of boxing a Value.
type outputAppender interface {
	AppendOutput(dst []byte, name string, width int) ([]byte, error)
}

// runCase drives one test case on one instance and records its outputs.
func runCase(s sim.Instance, st *Stimulus, c *Case) (CaseTrace, error) {
	var ct CaseTrace
	if st.Ifc.Clock != "" {
		if err := s.SetInputUint(st.Ifc.Clock, 0); err != nil {
			return ct, err
		}
	}
	appender, _ := s.(outputAppender)
	nOuts := len(st.Ifc.Outputs)
	steps := make([]StepRecord, 0, len(c.Steps))
	flat := make([]string, len(c.Steps)*nOuts)
	var scratch []byte
	for _, step := range c.Steps {
		for _, name := range step.driveOrder() {
			if err := s.SetInput(name, step.Inputs[name]); err != nil {
				return ct, err
			}
		}
		if st.Ifc.Clock != "" {
			if err := s.Tick(st.Ifc.Clock); err != nil {
				return ct, err
			}
		} else {
			if err := s.Settle(); err != nil {
				return ct, err
			}
		}
		rec := StepRecord{Outputs: flat[:nOuts:nOuts]}
		flat = flat[nOuts:]
		for i, out := range st.Ifc.Outputs {
			if appender != nil {
				var err error
				scratch, err = appender.AppendOutput(scratch[:0], out.Name, out.Width)
				if err != nil {
					return ct, err
				}
				rec.Outputs[i] = string(scratch)
				continue
			}
			v, err := s.Output(out.Name)
			if err != nil {
				return ct, err
			}
			rec.Outputs[i] = v.Resize(out.Width).String()
		}
		steps = append(steps, rec)
	}
	ct.Steps = steps
	return ct, nil
}

// Verify runs the stimulus on both a candidate and a reference design and
// reports whether their printed traces agree exactly. This is the
// golden-testbench pass/fail oracle used for final scoring.
func Verify(candidate, golden *ast.Source, top string, st *Stimulus) bool {
	ct := Run(candidate, top, st)
	if ct.Err != nil {
		return false
	}
	gt := Run(golden, top, st)
	return Agrees(ct, gt)
}
