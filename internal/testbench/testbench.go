// Package testbench generates stimulus for candidate modules and captures
// simulation traces. It plays the role of CorrectBench in the paper: the
// generated testbenches only *print* outputs (they never judge them), and
// the ranking stage compares the printed traces across candidates.
//
// Two testbench grades exist:
//
//   - Ranking testbenches (Generator.Ranking) are deliberately lightweight
//     and optionally imperfect, modeling the LLM-generated testbenches the
//     paper relies on: they may under-cover edge cases, which is exactly why
//     the post-ranking refinement stage exists.
//   - Verification testbenches (Generator.Verification) are dense and are
//     used only to score a final pick against the golden design, mirroring
//     the reference testbenches of VerilogEval-Human.
package testbench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/serve/faultinject"
	"repro/internal/sim"
	"repro/internal/verilog/ast"
	"repro/internal/xrng"
)

// ErrRun is the sentinel for stimulus execution failures.
var ErrRun = errors.New("testbench run failed")

// ErrSimPanic is the sentinel for a recovered crash while simulating one
// candidate. It marks a result that must not be memoized: unlike an ErrRun
// failure (a deterministic property of the candidate), a crash may be
// transient, so the claim is released and the next run recomputes.
var ErrSimPanic = errors.New("simulation panicked")

// PortSpec describes one port of the design under test.
type PortSpec struct {
	Name  string
	Width int
}

// Interface describes the boundary of a design under test.
type Interface struct {
	Inputs  []PortSpec
	Outputs []PortSpec
	// Clock is the clock input name for sequential designs ("" for
	// combinational).
	Clock string
	// Reset is the synchronous reset input name, if any.
	Reset string
	// ResetActiveLow marks an active-low reset.
	ResetActiveLow bool
}

// Sequential reports whether the interface has a clock.
func (ifc *Interface) Sequential() bool { return ifc.Clock != "" }

// DataInputs returns input ports excluding clock and reset.
func (ifc *Interface) DataInputs() []PortSpec {
	var out []PortSpec
	for _, in := range ifc.Inputs {
		if in.Name == ifc.Clock || in.Name == ifc.Reset {
			continue
		}
		out = append(out, in)
	}
	return out
}

// Step is one stimulus step: drive the inputs, advance (settle or clock
// tick), then record all outputs.
type Step struct {
	Inputs map[string]sim.Value

	// sortedNames caches the deterministic drive order (generator-built
	// stimuli fill it once; hand-built steps fall back to sorting per run).
	sortedNames []string
}

// driveOrder returns the input names in deterministic (sorted) order.
func (st *Step) driveOrder() []string {
	if st.sortedNames != nil {
		return st.sortedNames
	}
	names := make([]string, 0, len(st.Inputs))
	for name := range st.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// finalize precomputes the drive order (called by the generator, which owns
// the stimulus before any concurrent use).
func (st *Step) finalize() {
	st.sortedNames = st.driveOrder()
}

// Case is one test case: a single vector for combinational circuits or a
// reset-plus-sequence for sequential circuits. Each case starts from a fresh
// simulator.
type Case struct {
	Steps []Step
}

// Stimulus is a full printing testbench: a set of test cases for one
// interface.
type Stimulus struct {
	Ifc   Interface
	Cases []Case

	// sched caches the compiled Schedule (built on first run; Once-guarded
	// because cached stimuli are shared across ranking workers).
	schedOnce sync.Once
	sched     *Schedule

	// chash caches the stimulus's persistent-store content hash ("" for
	// irregular stimuli); see (*Stimulus).contentHash in store.go.
	chashOnce sync.Once
	chash     string
}

// NumCases returns the number of test cases.
func (st *Stimulus) NumCases() int { return len(st.Cases) }

// Generator builds stimulus deterministically from a seed.
type Generator struct {
	rng *xrng.Rand

	// MaxCombVectors bounds combinational vector counts (exhaustive
	// enumeration is used when the input space is smaller).
	MaxCombVectors int
	// SeqCases and SeqSteps control sequential stimulus volume.
	SeqCases int
	SeqSteps int
	// Imperfection in [0,1) drops roughly that fraction of the cases a
	// perfect testbench would contain, modeling weak LLM-generated
	// testbenches (0 = as dense as configured).
	Imperfection float64

	// Allocation pools for generated values. Generated Values are immutable
	// downstream (the schedule compiler copies them into planes, solo runs
	// copy them into engines), so random val planes are carved from a
	// chunked word arena, xz planes alias one shared all-zeros block, and
	// the constant values the patterns repeat (all-zeros, all-ones) are
	// cached per width. Stimulus generation is the dominant cost of a
	// memo-cold ranking call, and it is almost entirely these allocations.
	arena    []uint64
	chunk    int               // last arena chunk size (grows geometrically)
	constVal map[int]sim.Value // width -> all-zeros value
	constNot map[int]sim.Value // width -> all-ones value
	// Shared step-input maps for the value-identical steps of sequential
	// stimulus (reset, directed even/odd). Valid because a generator serves
	// one interface and finalized steps are read-only.
	resetInputs map[string]sim.Value
	altInputs   [2]map[string]sim.Value
}

// NewGenerator returns a generator with the given seed and defaults
// resembling the lightweight testbenches of the ranking stage. Seeding is a
// single word (xrng), not math/rand's 607-word lagged-Fibonacci warmup —
// generator construction is no longer visible in the CPU profile.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:            xrng.New(uint64(seed)),
		MaxCombVectors: 32,
		SeqCases:       3,
		SeqSteps:       12,
	}
}

// Ranking generates the lightweight printing testbench used by the ranking
// stage.
func (g *Generator) Ranking(ifc Interface) *Stimulus {
	st := g.generate(ifc, g.MaxCombVectors, g.SeqCases, g.SeqSteps)
	if g.Imperfection > 0 && len(st.Cases) > 1 {
		keep := int(float64(len(st.Cases)) * (1 - g.Imperfection))
		if keep < 1 {
			keep = 1
		}
		g.rng.Shuffle(len(st.Cases), func(i, j int) {
			st.Cases[i], st.Cases[j] = st.Cases[j], st.Cases[i]
		})
		st.Cases = st.Cases[:keep]
	}
	return st
}

// Verification generates the dense testbench used only for final scoring
// against the golden design.
func (g *Generator) Verification(ifc Interface) *Stimulus {
	return g.generate(ifc, 256, 8, 48)
}

// --- Stimulus cache ----------------------------------------------------------------
//
// Stimulus generation is a pure function of (seed, generator parameters,
// interface), and the experiment drivers regenerate identical stimuli over
// and over: every pipeline variant re-derives the same ranking stimulus,
// and every fresh oracle re-derives the same dense verification stimulus.
// A finalized Stimulus is immutable (runs only read it), so a process-wide
// memo is safe — the same pattern the compile cache established for
// elaboration. Cleared wholesale at the cap so it stays bounded.

var (
	stimMu   sync.Mutex
	stimMemo = make(map[string]*Stimulus)
)

const stimMemoCap = 4096

func cachedStimulus(key string, build func() *Stimulus) *Stimulus {
	stimMu.Lock()
	if st, hit := stimMemo[key]; hit {
		stimMu.Unlock()
		return st
	}
	stimMu.Unlock()
	st := build()
	stimMu.Lock()
	if len(stimMemo) >= stimMemoCap {
		stimMemo = make(map[string]*Stimulus, stimMemoCap)
	}
	stimMemo[key] = st
	stimMu.Unlock()
	return st
}

// stimKey identifies a stimulus by everything generation depends on.
func stimKey(kind string, seed int64, imperfection float64, ifc Interface) string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString(kind)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(imperfection, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(ifc.Clock)
	b.WriteByte('|')
	b.WriteString(ifc.Reset)
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(ifc.ResetActiveLow))
	port := func(tag byte, p PortSpec) {
		b.WriteByte('|')
		b.WriteByte(tag)
		b.WriteByte(':')
		b.WriteString(p.Name)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(p.Width))
	}
	for _, p := range ifc.Inputs {
		port('i', p)
	}
	for _, p := range ifc.Outputs {
		port('o', p)
	}
	return b.String()
}

// RankingCached returns the default-parameter ranking stimulus for (seed,
// imperfection, ifc), generating it at most once per process. The returned
// stimulus is shared: callers must treat it as read-only.
func RankingCached(seed int64, imperfection float64, ifc Interface) *Stimulus {
	return cachedStimulus(stimKey("rank", seed, imperfection, ifc), func() *Stimulus {
		g := NewGenerator(seed)
		g.Imperfection = imperfection
		return g.Ranking(ifc)
	})
}

// VerificationCached returns the default-parameter verification stimulus
// for (seed, ifc), generating it at most once per process. The returned
// stimulus is shared: callers must treat it as read-only.
func VerificationCached(seed int64, ifc Interface) *Stimulus {
	return cachedStimulus(stimKey("verify", seed, 0, ifc), func() *Stimulus {
		return NewGenerator(seed).Verification(ifc)
	})
}

func (g *Generator) generate(ifc Interface, maxComb, seqCases, seqSteps int) *Stimulus {
	st := &Stimulus{Ifc: ifc}
	if ifc.Sequential() {
		for c := 0; c < seqCases; c++ {
			st.Cases = append(st.Cases, g.seqCase(ifc, seqSteps, c == 0))
		}
	} else {
		st.Cases = g.combCases(ifc, maxComb)
	}
	// Precompute drive orders, sharing one sorted slice across consecutive
	// steps with the same key set — generated steps drive the same inputs
	// every step, so one slice usually serves the whole stimulus.
	var shared []string
	for ci := range st.Cases {
		for si := range st.Cases[ci].Steps {
			stp := &st.Cases[ci].Steps[si]
			if sameKeys(shared, stp.Inputs) {
				stp.sortedNames = shared
			} else {
				stp.finalize()
				shared = stp.sortedNames
			}
		}
	}
	return st
}

// sameKeys reports whether the map's key set is exactly the given names.
func sameKeys(names []string, m map[string]sim.Value) bool {
	if names == nil || len(names) != len(m) {
		return false
	}
	for _, n := range names {
		if _, ok := m[n]; !ok {
			return false
		}
	}
	return true
}

// combCases enumerates the input space exhaustively when it is small enough,
// otherwise samples random vectors (always including the all-zeros and
// all-ones corners).
func (g *Generator) combCases(ifc Interface, maxVectors int) []Case {
	ins := ifc.DataInputs()
	totalBits := 0
	for _, in := range ins {
		totalBits += in.Width
	}
	var cases []Case
	if totalBits <= 16 && 1<<uint(totalBits) <= maxVectors {
		for v := uint64(0); v < 1<<uint(totalBits); v++ {
			cases = append(cases, Case{Steps: []Step{{Inputs: splitVector(ins, v)}}})
		}
		return cases
	}
	seen := make(map[string]bool)
	addVector := func(mk func(PortSpec) sim.Value) {
		inputs := make(map[string]sim.Value, len(ins))
		var key strings.Builder
		for _, in := range ins {
			v := mk(in)
			inputs[in.Name] = v
			key.WriteString(v.String())
			key.WriteByte('|')
		}
		if seen[key.String()] {
			return
		}
		seen[key.String()] = true
		cases = append(cases, Case{Steps: []Step{{Inputs: inputs}}})
	}
	addVector(func(p PortSpec) sim.Value { return g.zeroValue(p.Width) })
	addVector(func(p PortSpec) sim.Value { return g.onesValue(p.Width) })
	for len(cases) < maxVectors {
		addVector(func(p PortSpec) sim.Value { return g.randValue(p.Width) })
	}
	return cases
}

// seqCase builds one sequential test case: assert reset for two cycles (when
// the interface has one), then drive random data inputs. The first case uses
// a short directed pattern (all-zeros then all-ones inputs) so basic
// behaviors always appear in the trace.
func (g *Generator) seqCase(ifc Interface, steps int, directed bool) Case {
	var c Case
	ins := ifc.DataInputs()
	mkInputs := func(reset bool, mk func(PortSpec, int) sim.Value, idx int) map[string]sim.Value {
		inputs := make(map[string]sim.Value, len(ins)+1)
		if ifc.Reset != "" {
			if reset != ifc.ResetActiveLow {
				inputs[ifc.Reset] = g.onesValue(1)
			} else {
				inputs[ifc.Reset] = g.zeroValue(1)
			}
		}
		for _, in := range ins {
			inputs[in.Name] = mk(in, idx)
		}
		return inputs
	}
	zero := func(p PortSpec, _ int) sim.Value { return g.zeroValue(p.Width) }
	rnd := func(p PortSpec, _ int) sim.Value { return g.randValue(p.Width) }
	alt := func(p PortSpec, i int) sim.Value {
		if i%2 == 0 {
			return g.zeroValue(p.Width)
		}
		return g.onesValue(p.Width)
	}

	// Steps with value-identical inputs share one map: a finalized stimulus
	// is read-only, and a generator serves a single interface, so the reset
	// step and the two directed patterns each need exactly one map per
	// generator instead of one per step. Only random steps still build maps
	// (and only they draw the RNG, so sharing leaves the stream untouched).
	if ifc.Reset != "" {
		if g.resetInputs == nil {
			g.resetInputs = mkInputs(true, zero, 0)
		}
		c.Steps = append(c.Steps, Step{Inputs: g.resetInputs}, Step{Inputs: g.resetInputs})
	}
	for i := 0; i < steps; i++ {
		if directed {
			k := i % 2
			if g.altInputs[k] == nil {
				g.altInputs[k] = mkInputs(false, alt, k)
			}
			c.Steps = append(c.Steps, Step{Inputs: g.altInputs[k]})
		} else {
			c.Steps = append(c.Steps, Step{Inputs: mkInputs(false, rnd, i)})
		}
	}
	return c
}

// zeroPlanes backs the xz plane of every generated value (generated stimulus
// is always fully known) and the val plane of cached zero values, up to 4096
// bits. It is read-only by the Value immutability convention; wider values
// fall back to the copying constructors.
var zeroPlanes [64]uint64

// genWords carves n words out of the generator's chunked arena. Chunks grow
// geometrically from small, so a generator that produces little stimulus
// (one per seed on the memo-cold path) doesn't pay for a large block.
func (g *Generator) genWords(n int) []uint64 {
	if len(g.arena) < n {
		sz := g.chunk * 2
		if sz < 256 {
			sz = 256
		}
		if sz < n {
			sz = n
		}
		g.chunk = sz
		g.arena = make([]uint64, sz)
	}
	w := g.arena[:n:n]
	g.arena = g.arena[n:]
	return w
}

// zeroValue returns the cached all-zeros value of the width.
func (g *Generator) zeroValue(width int) sim.Value {
	n := (width + 63) / 64
	if n > len(zeroPlanes) {
		return sim.NewKnown(width, 0)
	}
	v, ok := g.constVal[width]
	if !ok {
		v = sim.ValueView(width, zeroPlanes[:n], zeroPlanes[:n])
		if g.constVal == nil {
			g.constVal = make(map[int]sim.Value)
		}
		g.constVal[width] = v
	}
	return v
}

// onesValue returns the cached all-ones value of the width.
func (g *Generator) onesValue(width int) sim.Value {
	v, ok := g.constNot[width]
	if !ok {
		v = sim.Not(sim.NewKnown(width, 0))
		if g.constNot == nil {
			g.constNot = make(map[int]sim.Value)
		}
		g.constNot[width] = v
	}
	return v
}

func (g *Generator) randValue(width int) sim.Value {
	words := (width + 63) / 64
	if words > len(zeroPlanes) {
		planes := make([]uint64, words)
		for i := range planes {
			planes[i] = g.rng.Uint64()
		}
		return sim.NewFromPlanes(width, planes, make([]uint64, words))
	}
	w := g.genWords(words)
	for i := range w {
		w[i] = g.rng.Uint64()
	}
	if r := uint(width) & 63; r != 0 {
		w[words-1] &= 1<<r - 1
	}
	return sim.ValueView(width, w, zeroPlanes[:words])
}

func splitVector(ins []PortSpec, v uint64) map[string]sim.Value {
	out := make(map[string]sim.Value, len(ins))
	shift := 0
	for _, in := range ins {
		out[in.Name] = sim.NewKnown(in.Width, v>>uint(shift))
		shift += in.Width
	}
	return out
}

// --- Trace capture -----------------------------------------------------------------

// Inline FNV-1a (64-bit), byte-identical to hash/fnv but without boxing a
// hasher per call. Every fingerprint in this package — printed-trace and
// streaming alike — is this fold over the same canonical bytes, so the two
// paths produce interchangeable values. The constants alias sim's: a digest
// routinely flows through both packages (runCaseFP seeds it, the engine's
// HashOutput continues it), so there is exactly one definition.
const (
	fnvOffset64 = sim.FNVOffset64
	fnvPrime64  = sim.FNVPrime64
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// fnvUint64 folds x as 8 little-endian bytes (how case fingerprints combine
// into a whole-run fingerprint).
func fnvUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x >> (8 * uint(i)) & 0xFF)) * fnvPrime64
	}
	return h
}

// errFingerprint hashes a runtime failure (same bytes as hashing the string
// "ERR:" + message).
func errFingerprint(err error) uint64 {
	return fnvString(fnvString(fnvOffset64, "ERR:"), err.Error())
}

// StepRecord holds all printed outputs after one step.
type StepRecord struct {
	Outputs []string // aligned with Interface.Outputs order
}

// CaseTrace is the printed record of one test case.
type CaseTrace struct {
	Steps []StepRecord

	// fp memoizes Fingerprint: ranking compares every pair through the
	// fingerprint, and re-hashing the strings on each comparison was the
	// dominant CPU cost of clustering. Steps must not be mutated after the
	// first Fingerprint call.
	fp   uint64
	fpOK bool
}

// Fingerprint returns a stable hash of the case's printed outputs, computed
// once and memoized.
func (ct *CaseTrace) Fingerprint() uint64 {
	if ct.fpOK {
		return ct.fp
	}
	h := fnvOffset64
	for _, s := range ct.Steps {
		for _, o := range s.Outputs {
			h = fnvString(h, o)
			h = fnvByte(h, '\n')
		}
	}
	ct.fp, ct.fpOK = h, true
	return h
}

// Trace is the full printed record of a stimulus run.
type Trace struct {
	Ifc   Interface
	Cases []CaseTrace
	// Err records a runtime failure (e.g. combinational loop); candidates
	// whose trace has Err != nil never match any other candidate.
	Err error

	// fp memoizes Fingerprint (see CaseTrace).
	fp   uint64
	fpOK bool
}

// Fingerprint hashes the entire trace, including the error state. The value
// is memoized; Cases must not be mutated after the first call.
func (t *Trace) Fingerprint() uint64 {
	if t.fpOK {
		return t.fp
	}
	var h uint64
	if t.Err != nil {
		h = errFingerprint(t.Err)
	} else {
		h = fnvOffset64
		for i := range t.Cases {
			h = fnvUint64(h, t.Cases[i].Fingerprint())
		}
	}
	t.fp, t.fpOK = h, true
	return h
}

// Warm precomputes the trace's whole-run and per-case fingerprints. A trace
// shared by concurrent readers (e.g. a cached golden trace compared against
// many candidates) must be warmed before publication, since the lazy memo
// write is not synchronized.
func (t *Trace) Warm() {
	t.Fingerprint()
	for i := range t.Cases {
		t.Cases[i].Fingerprint()
	}
}

// FP derives the fingerprint-only view of a printed trace: the exact values
// RunFingerprint would have produced for the same run, including the
// completed-case fingerprints of an errored run (both runners record the
// cases finished before the failure). Used by the differential tests that
// referee the streaming path against the retained string path, and by the
// oracle's legacy path to avoid a second golden simulation.
func (t *Trace) FP() *FPTrace {
	f := &FPTrace{Ifc: t.Ifc, Err: t.Err, CaseFPs: make([]uint64, len(t.Cases))}
	for i := range t.Cases {
		f.CaseFPs[i] = t.Cases[i].Fingerprint()
	}
	return f
}

// FPTrace is the fingerprint-only record of a stimulus run: one 64-bit
// digest per test case and nothing else. It is what the ranking stage
// retains per candidate — strict behavioral agreement (the paper's ℓ_strict)
// only ever compares hashes, so the printed strings never need to exist.
// Fingerprints are FNV-1a over the exact bytes the printed trace would hash,
// so an FPTrace and a Trace of the same run agree on every value (see
// Trace.FP).
type FPTrace struct {
	Ifc Interface
	// CaseFPs holds one fingerprint per test case, aligned with the
	// stimulus cases.
	CaseFPs []uint64
	// Err records a runtime failure exactly as Trace.Err does; errored runs
	// agree only with runs failing with the same message.
	Err error

	fp   uint64
	fpOK bool
}

// NumCases returns the number of completed test cases.
func (t *FPTrace) NumCases() int { return len(t.CaseFPs) }

// Fingerprint returns the whole-run fingerprint, identical to the
// corresponding Trace.Fingerprint value (memoized).
func (t *FPTrace) Fingerprint() uint64 {
	if t.fpOK {
		return t.fp
	}
	var h uint64
	if t.Err != nil {
		h = errFingerprint(t.Err)
	} else {
		h = fnvOffset64
		for _, fp := range t.CaseFPs {
			h = fnvUint64(h, fp)
		}
	}
	t.fp, t.fpOK = h, true
	return h
}

// FPCaseAgrees reports whether two fingerprint traces agree on test case i,
// with FPTrace semantics mirroring CaseAgrees exactly.
func FPCaseAgrees(a, b *FPTrace, i int) bool {
	if a.Err != nil || b.Err != nil {
		return a.Err != nil && b.Err != nil && a.Err.Error() == b.Err.Error()
	}
	if i >= len(a.CaseFPs) || i >= len(b.CaseFPs) {
		return false
	}
	return a.CaseFPs[i] == b.CaseFPs[i]
}

// FPAgrees reports strict behavioral agreement across all test cases,
// mirroring Agrees exactly.
func FPAgrees(a, b *FPTrace) bool {
	if a.Err != nil || b.Err != nil {
		return a.Err != nil && b.Err != nil && a.Err.Error() == b.Err.Error()
	}
	if len(a.CaseFPs) != len(b.CaseFPs) {
		return false
	}
	for i := range a.CaseFPs {
		if a.CaseFPs[i] != b.CaseFPs[i] {
			return false
		}
	}
	return true
}

// CaseAgrees reports whether two traces printed identical outputs for test
// case i.
func CaseAgrees(a, b *Trace, i int) bool {
	if a.Err != nil || b.Err != nil {
		return a.Err != nil && b.Err != nil && a.Err.Error() == b.Err.Error()
	}
	if i >= len(a.Cases) || i >= len(b.Cases) {
		return false
	}
	return a.Cases[i].Fingerprint() == b.Cases[i].Fingerprint()
}

// Agrees reports strict behavioral agreement across all test cases
// (the paper's ℓ_strict(c,c') == 0).
func Agrees(a, b *Trace) bool {
	if a.Err != nil || b.Err != nil {
		return a.Err != nil && b.Err != nil && a.Err.Error() == b.Err.Error()
	}
	if len(a.Cases) != len(b.Cases) {
		return false
	}
	for i := range a.Cases {
		if a.Cases[i].Fingerprint() != b.Cases[i].Fingerprint() {
			return false
		}
	}
	return true
}

// String renders the trace the way the paper's printing testbench would:
// one line per step listing every output.
func (t *Trace) String() string {
	if t.Err != nil {
		return "SIMULATION ERROR: " + t.Err.Error() + "\n"
	}
	var b strings.Builder
	for ci, c := range t.Cases {
		fmt.Fprintf(&b, "case %d:\n", ci)
		for si, s := range c.Steps {
			fmt.Fprintf(&b, "  step %d:", si)
			for oi, out := range s.Outputs {
				name := "?"
				if oi < len(t.Ifc.Outputs) {
					name = t.Ifc.Outputs[oi].Name
				}
				fmt.Fprintf(&b, " %s=%s", name, out)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Backend selects the simulation engine used to execute a stimulus.
type Backend int

// Available backends. The zero value is the compiled engine, so every
// caller that does not ask for the interpreter gets the fast path.
const (
	// BackendCompiled flattens the design to an index-addressed netlist via
	// sim.CompileCached: elaboration and compilation are skipped entirely
	// for repeated (or canonically identical) designs, and per-case
	// instantiation is a value-snapshot copy.
	BackendCompiled Backend = iota
	// BackendInterpreter is the original AST-walking engine, retained for
	// differential testing against the compiled backend.
	BackendInterpreter
)

// String names the backend for bench/CLI labels.
func (b Backend) String() string {
	if b == BackendInterpreter {
		return "interpreter"
	}
	return "compiled"
}

// Run executes the stimulus against a design with the default (compiled)
// backend and captures its trace.
func Run(src *ast.Source, top string, st *Stimulus) *Trace {
	return RunBackend(src, top, st, BackendCompiled)
}

// instSource resolves backend instances for one run. It is a plain value
// (not a pair of closures) so the per-candidate ranking loop does not
// allocate for it. The compiled backend pools engines: per-case
// instantiation is a frame memcpy, and the engine (with its warmed-up queue
// buffers) is recycled afterwards.
type instSource struct {
	src *ast.Source
	top string
	d   *sim.Design // nil selects the interpreter
}

func newInstSource(src *ast.Source, top string, backend Backend) (instSource, error) {
	is := instSource{src: src, top: top}
	if backend == BackendInterpreter {
		return is, nil
	}
	d, err := sim.CompileCached(src, top)
	if err != nil {
		return is, err
	}
	is.d = d
	return is, nil
}

func (is *instSource) acquire() (sim.Instance, error) {
	if is.d == nil {
		return sim.New(is.src, is.top)
	}
	return is.d.AcquireEngine(), nil
}

func (is *instSource) release(s sim.Instance) {
	if is.d == nil {
		return
	}
	if en, ok := s.(*sim.Engine); ok {
		is.d.ReleaseEngine(en)
	}
}

// caseRunner carries the per-run schedule state forEachCase threads through
// a run: the compiled schedule (nil for irregular stimuli) and its handle
// binding, resolved on the run's first instance and reused for every case
// (handles are stable across instances of one design on one backend). A
// failed binding — a candidate missing an expected port — clears sched, and
// every case takes the name-keyed legacy path, reproducing the interpreted
// error behavior byte-for-byte.
type caseRunner struct {
	sched *Schedule
	bind  binding
	bound bool
}

// prepare resolves the binding on the first visited instance. Compiled
// designs hit the process-wide binding memo (one resolution per
// (design, schedule) pair ever); interpreter instances resolve per run.
func (cr *caseRunner) prepare(d *sim.Design, s sim.Instance, ifc *Interface) {
	if cr.bound {
		return
	}
	cr.bound = true
	if cr.sched == nil {
		return
	}
	var b binding
	var ok bool
	if d != nil {
		b, ok = cachedBind(d, cr.sched, s, ifc)
	} else {
		b, ok = cr.sched.bind(s, ifc)
	}
	if !ok {
		cr.sched = nil
		return
	}
	cr.bind = b
}

// forEachCase drives the shared per-case instance lifecycle of RunBackend
// and RunFingerprint: each sequential test case gets a fresh simulator
// instance so cases are independent; combinational interfaces reuse one
// instance across cases (deterministic for both golden and candidates, so
// comparisons stay apples-to-apples even for buggy candidates with
// accidental state). Run errors are wrapped with ErrRun; a context error is
// returned bare so callers can tell cancellation from a failing candidate.
func forEachCase(ctx context.Context, src *ast.Source, top string, st *Stimulus, backend Backend, cr *caseRunner, visit func(s sim.Instance, ci int) error) error {
	is, err := newInstSource(src, top, backend)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRun, err)
	}
	var shared sim.Instance
	if st.Ifc.Clock == "" {
		if shared, err = is.acquire(); err != nil {
			return fmt.Errorf("%w: %v", ErrRun, err)
		}
		defer is.release(shared)
	}
	for i := range st.Cases {
		if err := ctx.Err(); err != nil {
			return err
		}
		s := shared
		if s == nil {
			if s, err = is.acquire(); err != nil {
				return fmt.Errorf("%w: %v", ErrRun, err)
			}
		}
		cr.prepare(is.d, s, &st.Ifc)
		verr := visit(s, i)
		if s != shared {
			// Release per case so the next case recycles this engine.
			is.release(s)
		}
		if verr != nil {
			return fmt.Errorf("%w: %v", ErrRun, verr)
		}
	}
	return nil
}

// RunBackend executes the stimulus against a design on the chosen backend
// and captures its full printed trace. A runtime error is recorded in the
// trace rather than returned: a failing candidate is simply one that agrees
// with nobody.
func RunBackend(src *ast.Source, top string, st *Stimulus, backend Backend) *Trace {
	tr := &Trace{Ifc: st.Ifc, Cases: make([]CaseTrace, 0, len(st.Cases))}
	cr := caseRunner{sched: st.schedule()}
	tr.Err = forEachCase(context.Background(), src, top, st, backend, &cr, func(s sim.Instance, ci int) error {
		var ct CaseTrace
		var err error
		if cr.sched != nil {
			ct, err = runCaseSched(s, st, cr.sched, &cr.bind, ci)
		} else {
			ct, err = runCase(s, st, &st.Cases[ci])
		}
		if err != nil {
			return err
		}
		tr.Cases = append(tr.Cases, ct)
		return nil
	})
	return tr
}

// RunFingerprint executes the stimulus exactly like RunBackend but records
// only per-case fingerprints: no StepRecord strings are ever materialized.
// On the compiled backend the engine folds output bits straight into the
// running hash (sim.Engine.HashOutputH), so a whole run allocates a small
// constant independent of case and step counts. Errors fold into the trace
// exactly as in RunBackend, and every fingerprint equals the one the printed
// trace of the same run would produce.
//
// Compiled runs are memoized process-wide by (design, stimulus) identity —
// both are themselves process-wide cached objects, and the experiment
// drivers re-run the same candidate under the same stimulus across ranking
// variants, refinement passes, verification pools and bench iterations. The
// returned trace is shared and pre-warmed; callers treat it as read-only
// (exactly as ranking already shares one FPTrace across duplicate
// candidates).
func RunFingerprint(src *ast.Source, top string, st *Stimulus, backend Backend) *FPTrace {
	tr, err := RunFingerprintCtx(context.Background(), src, top, st, backend)
	if err != nil {
		// Unreachable with a background context: the only errors the ctx
		// variant returns are the context's own.
		panic(err)
	}
	return tr
}

// RunFingerprintCtx is RunFingerprint under a cancellable context: the run
// observes ctx between test cases, and on cancellation returns ctx's error
// with any memo claim released so the next caller recomputes the entry.
func RunFingerprintCtx(ctx context.Context, src *ast.Source, top string, st *Stimulus, backend Backend) (*FPTrace, error) {
	if backend != BackendInterpreter {
		if d, err := sim.CompileCached(src, top); err == nil {
			e := fpClaim(d, st)
			if e.claim() {
				return runFingerprintOwned(ctx, e, src, top, st, backend)
			}
			tr, adopted, err := e.wait(ctx)
			if err != nil {
				return nil, err
			}
			if adopted {
				// The previous owner aborted; this caller inherits the
				// claim and computes the entry itself.
				return runFingerprintOwned(ctx, e, src, top, st, backend)
			}
			return tr, nil
		}
		// Compile errors skip the memo; the solo path reproduces the
		// error trace and the compile cache makes the retry cheap.
	}
	return runFingerprintSoloCtx(ctx, src, top, st, backend)
}

// runFingerprintOwned computes a claimed memo entry's trace solo and then
// resolves the claim: clean runs and deterministic run errors publish,
// while cancellation and recovered crashes abort — releasing the claim and
// waking waiters — so the memo never retains a transient fault.
func runFingerprintOwned(ctx context.Context, e *fpEntry, src *ast.Source, top string, st *Stimulus, backend Backend) (*FPTrace, error) {
	published := false
	defer func() {
		if !published {
			e.abort()
		}
	}()
	// The claim is held, so this is the key's single flight across every
	// tier: probe the persistent store first and publish a hit without
	// simulating at all.
	if tr := storeLookup(ctx, e.key.d, st); tr != nil {
		e.publish(tr)
		published = true
		return tr, nil
	}
	tr, err := runFingerprintSoloCtx(ctx, src, top, st, backend)
	if err != nil {
		return nil, err
	}
	if tr.Err == nil || !errors.Is(tr.Err, ErrSimPanic) {
		e.publish(tr)
		published = true
		storePut(ctx, e.key.d, st, tr)
	}
	return tr, nil
}

// runFingerprintSolo is the unmemoized single-candidate fingerprint run.
func runFingerprintSolo(src *ast.Source, top string, st *Stimulus, backend Backend) *FPTrace {
	tr, err := runFingerprintSoloCtx(context.Background(), src, top, st, backend)
	if err != nil {
		panic(err) // unreachable: a background context never cancels
	}
	return tr
}

// runFingerprintSoloCtx is the unmemoized single-candidate fingerprint run.
// A panic anywhere in the run — compile, bind, or simulation — is recovered
// into the trace as an ErrSimPanic error, so one crashing candidate stays a
// per-candidate result instead of taking down its worker.
func runFingerprintSoloCtx(ctx context.Context, src *ast.Source, top string, st *Stimulus, backend Backend) (tr *FPTrace, err error) {
	statSims.Add(1)
	tr = &FPTrace{Ifc: st.Ifc, CaseFPs: make([]uint64, 0, len(st.Cases))}
	defer func() {
		if r := recover(); r != nil {
			tr.Err = fmt.Errorf("%w: %v", ErrSimPanic, r)
			err = nil
		}
	}()
	fire := faultinject.Enabled()
	var fiKey string
	if fire {
		fiKey = sim.CanonicalKey(src)
	}
	cr := caseRunner{sched: st.schedule()}
	ferr := forEachCase(ctx, src, top, st, backend, &cr, func(s sim.Instance, ci int) error {
		if fire {
			faultinject.Fire(faultinject.PointSimCase, fiKey)
		}
		var fp uint64
		var err error
		if cr.sched != nil {
			fp, err = runCaseFPSched(s, st, cr.sched, &cr.bind, ci)
		} else {
			fp, err = runCaseFP(s, st, &st.Cases[ci])
		}
		if err != nil {
			return err
		}
		tr.CaseFPs = append(tr.CaseFPs, fp)
		return nil
	})
	if ferr != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(ferr, cerr) {
			return nil, ferr
		}
		tr.Err = ferr
	}
	return tr, nil
}

// outputAppender is the zero-boxing trace-capture fast path the compiled
// engine provides: rendering an output directly from its storage planes
// costs one allocation (the recorded string) instead of boxing a Value.
type outputAppender interface {
	AppendOutput(dst []byte, name string, width int) ([]byte, error)
}

// runCase drives one test case on one instance and records its outputs.
func runCase(s sim.Instance, st *Stimulus, c *Case) (CaseTrace, error) {
	var ct CaseTrace
	if st.Ifc.Clock != "" {
		if err := s.SetInputUint(st.Ifc.Clock, 0); err != nil {
			return ct, err
		}
	}
	appender, _ := s.(outputAppender)
	nOuts := len(st.Ifc.Outputs)
	steps := make([]StepRecord, 0, len(c.Steps))
	flat := make([]string, len(c.Steps)*nOuts)
	var scratch []byte
	for _, step := range c.Steps {
		for _, name := range step.driveOrder() {
			if err := s.SetInput(name, step.Inputs[name]); err != nil {
				return ct, err
			}
		}
		if st.Ifc.Clock != "" {
			if err := s.Tick(st.Ifc.Clock); err != nil {
				return ct, err
			}
		} else {
			if err := s.Settle(); err != nil {
				return ct, err
			}
		}
		rec := StepRecord{Outputs: flat[:nOuts:nOuts]}
		flat = flat[nOuts:]
		for i, out := range st.Ifc.Outputs {
			if appender != nil {
				var err error
				scratch, err = appender.AppendOutput(scratch[:0], out.Name, out.Width)
				if err != nil {
					return ct, err
				}
				rec.Outputs[i] = string(scratch)
				continue
			}
			v, err := s.Output(out.Name)
			if err != nil {
				return ct, err
			}
			rec.Outputs[i] = v.Resize(out.Width).String()
		}
		steps = append(steps, rec)
	}
	ct.Steps = steps
	return ct, nil
}

// outputHasher is the streaming-digest fast path the compiled engine
// provides: folding an output's bits into the running hash costs zero
// allocations and never touches a string.
type outputHasher interface {
	HashOutput(h uint64, name string, width int) (uint64, error)
}

// runCaseFP drives one test case on one instance and folds its outputs into
// a fingerprint, hashing exactly the bytes runCase would have recorded.
func runCaseFP(s sim.Instance, st *Stimulus, c *Case) (uint64, error) {
	if st.Ifc.Clock != "" {
		if err := s.SetInputUint(st.Ifc.Clock, 0); err != nil {
			return 0, err
		}
	}
	hasher, _ := s.(outputHasher)
	h := fnvOffset64
	for si := range c.Steps {
		step := &c.Steps[si]
		for _, name := range step.driveOrder() {
			if err := s.SetInput(name, step.Inputs[name]); err != nil {
				return 0, err
			}
		}
		if st.Ifc.Clock != "" {
			if err := s.Tick(st.Ifc.Clock); err != nil {
				return 0, err
			}
		} else {
			if err := s.Settle(); err != nil {
				return 0, err
			}
		}
		for _, out := range st.Ifc.Outputs {
			if hasher != nil {
				var err error
				if h, err = hasher.HashOutput(h, out.Name, out.Width); err != nil {
					return 0, err
				}
			} else {
				v, err := s.Output(out.Name)
				if err != nil {
					return 0, err
				}
				h = fnvString(h, v.Resize(out.Width).String())
			}
			h = fnvByte(h, '\n')
		}
	}
	return h, nil
}

// Verify runs the stimulus on both a candidate and a reference design and
// reports whether their behaviors agree exactly on every case. Agreement is
// defined over trace fingerprints (as in the ranking stage), so the check
// runs on the allocation-free streaming path; verdicts are identical to
// comparing full printed traces.
func Verify(candidate, golden *ast.Source, top string, st *Stimulus) bool {
	ct := RunFingerprint(candidate, top, st, BackendCompiled)
	if ct.Err != nil {
		return false
	}
	gt := RunFingerprint(golden, top, st, BackendCompiled)
	return FPAgrees(ct, gt)
}
