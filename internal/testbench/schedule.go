package testbench

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/serve/faultinject"
	"repro/internal/sim"
)

// Schedule is the compiled form of a Stimulus: the drive order fixed once,
// every stimulus value flattened into two reusable word planes, and per-case
// step extents precomputed. Where the interpreted path walks
// map[string]sim.Value steps — sorting names, hashing strings, and boxing
// values on every drive — the scheduled path is a loop over int-indexed
// records: zero map lookups, zero driveOrder allocations, zero formatting.
//
// A Schedule captures only the design-independent half of a run. The
// design-dependent half — which net each drive position and output column
// lands on — is resolved once per run into a binding (see Schedule.bind),
// because handles belong to a design, not to a stimulus.
//
// Schedules require a *regular* stimulus: every step of every case drives
// the same input names at the same widths. Generator-built stimuli are
// regular by construction; hand-built irregular stimuli fall back to the
// interpreted path (Stimulus.schedule returns nil).
type Schedule struct {
	names    []string // drive order: sorted input names, incl. reset, excl. clock
	widths   []int32  // stimulus value width per drive position
	wordsOf  []int32  // words per drive position (words(widths[i]))
	rowWords int      // total words per step row
	stepOff  []int32  // per case: index of its first step row; len NumCases+1
	val, xz  []uint64 // flattened stimulus planes, stepOff[c]*rowWords + position offsets
}

// buildSchedule compiles st into a Schedule, or returns nil when the
// stimulus is irregular (or empty of steps, where scheduling buys nothing).
func buildSchedule(st *Stimulus) *Schedule {
	var first *Step
	for ci := range st.Cases {
		if len(st.Cases[ci].Steps) > 0 {
			first = &st.Cases[ci].Steps[0]
			break
		}
	}
	if first == nil {
		return nil
	}
	names := make([]string, 0, len(first.Inputs))
	for name := range first.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)

	sc := &Schedule{
		names:   names,
		widths:  make([]int32, len(names)),
		wordsOf: make([]int32, len(names)),
	}
	for i, name := range names {
		w := first.Inputs[name].Width()
		nw := first.Inputs[name].PlaneWords()
		// Guard the int32 narrowing below: a pathological stimulus width
		// must fall back to the interpreted path, not silently truncate
		// handle widths and row offsets.
		if w > math.MaxInt32 || nw > math.MaxInt32 {
			return nil
		}
		sc.widths[i] = int32(w)
		sc.wordsOf[i] = int32(nw)
		sc.rowWords += nw
		if sc.rowWords > math.MaxInt32 {
			return nil
		}
	}

	// Bail before the per-step pass if the step count cannot be indexed by
	// the int32 stepOff table: overflow would otherwise corrupt every row
	// offset past the wrap. Counting per case keeps this O(cases), so an
	// overflowing stimulus is rejected without touching its billions of
	// steps (the regularity pass below only runs on in-range stimuli).
	if !stepCountFitsInt32(st) {
		return nil
	}

	// Regularity check + step counting in one pass.
	totalSteps := 0
	sc.stepOff = make([]int32, len(st.Cases)+1)
	for ci := range st.Cases {
		sc.stepOff[ci] = int32(totalSteps)
		for si := range st.Cases[ci].Steps {
			step := &st.Cases[ci].Steps[si]
			if len(step.Inputs) != len(names) {
				return nil
			}
			for i, name := range names {
				v, ok := step.Inputs[name]
				if !ok || v.Width() != int(sc.widths[i]) {
					return nil
				}
			}
			totalSteps++
		}
	}
	sc.stepOff[len(st.Cases)] = int32(totalSteps)

	sc.val = make([]uint64, totalSteps*sc.rowWords)
	sc.xz = make([]uint64, totalSteps*sc.rowWords)
	off := 0
	for ci := range st.Cases {
		for si := range st.Cases[ci].Steps {
			step := &st.Cases[ci].Steps[si]
			for i, name := range names {
				v := step.Inputs[name]
				nw := int(sc.wordsOf[i])
				v.CopyPlanes(sc.val[off:off+nw], sc.xz[off:off+nw])
				off += nw
			}
		}
	}
	return sc
}

// stepCountFitsInt32 reports whether the stimulus's total step count is
// indexable by the schedule's int32 stepOff table.
func stepCountFitsInt32(st *Stimulus) bool {
	total := 0
	for ci := range st.Cases {
		total += len(st.Cases[ci].Steps)
		if total > math.MaxInt32 {
			return false
		}
	}
	return true
}

// schedule returns the stimulus's compiled schedule, building it at most
// once (the stimulus cache shares Stimulus values across goroutines, so the
// build is Once-guarded). Returns nil for irregular stimuli.
func (st *Stimulus) schedule() *Schedule {
	st.schedOnce.Do(func() { st.sched = buildSchedule(st) })
	return st.sched
}

// binding resolves a Schedule's names against one design: the clock handle
// (-1 for combinational interfaces), one input handle per drive position,
// and one output handle per interface output column.
type binding struct {
	clock int
	ins   []int
	outs  []int
}

// --- Binding cache ---------------------------------------------------------
//
// On the compiled backend a binding is a pure function of (Design, Schedule)
// — both of which are process-wide cached objects that recur across every
// candidate of every variant — so bindings are memoized the same way.
// Interpreter bindings stay per-run (each run re-elaborates anyway).

type bindKey struct {
	d  *sim.Design
	sc *Schedule
}

// bindEntry is a single-flight memo slot: the first caller for a key claims
// the once and resolves the binding; concurrent missers block on the once
// instead of each running sc.bind and clobbering one another's entry (a
// binding is a pure function of the key, so whichever instance resolves it
// is immaterial). done is read by the LRU eviction loop to pin in-flight
// entries, mirroring sim.CompileCache.
type bindEntry struct {
	key  bindKey
	once sync.Once
	b    binding
	ok   bool
	done atomic.Bool
	prev *bindEntry // intrusive LRU links, guarded by bindMu
	next *bindEntry
}

var (
	bindMu    sync.Mutex
	bindMemo  = make(map[bindKey]*bindEntry)
	bindFront *bindEntry // most recently used
	bindBack  *bindEntry
	bindLen   int
)

// bindUnlink detaches e from the LRU list. Callers hold bindMu.
func bindUnlink(e *bindEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		bindFront = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		bindBack = e.prev
	}
	e.prev, e.next = nil, nil
	bindLen--
}

// bindPushFront makes e the most recently used entry. Callers hold bindMu.
func bindPushFront(e *bindEntry) {
	e.prev, e.next = nil, bindFront
	if bindFront != nil {
		bindFront.prev = e
	}
	bindFront = e
	if bindBack == nil {
		bindBack = e
	}
	bindLen++
}

// bindMemoCap matches the compile cache's capacity: the memo's strong
// *sim.Design keys pin designs (and their pooled engines) against the LRU's
// eviction, so the cap bounds that pinning to about one LRU's worth. Entries
// past the cap are evicted one at a time in LRU order — a single insert no
// longer drops every live binding at once, which mattered little for solo
// runs but would thundering-rebind under gang traffic.
const bindMemoCap = 1024

// cachedBind resolves (and memoizes) the binding of sc against the compiled
// design d, probing handles on inst.
func cachedBind(d *sim.Design, sc *Schedule, inst sim.Instance, ifc *Interface) (binding, bool) {
	key := bindKey{d: d, sc: sc}
	bindMu.Lock()
	e, hit := bindMemo[key]
	if hit {
		if bindFront != e {
			bindUnlink(e)
			bindPushFront(e)
		}
	} else {
		e = &bindEntry{key: key}
		bindMemo[key] = e
		bindPushFront(e)
		for bindLen > bindMemoCap {
			oldest := bindBack
			for oldest != nil && !oldest.done.Load() {
				oldest = oldest.prev
			}
			if oldest == nil {
				break // all in flight; retry on a later insert
			}
			bindUnlink(oldest)
			delete(bindMemo, oldest.key)
		}
	}
	bindMu.Unlock()
	e.once.Do(func() {
		defer func() {
			e.done.Store(true)
			if r := recover(); r != nil {
				// The once is spent either way, so a crashed resolution
				// must not poison the memo: drop the entry and let the
				// next caller re-create it with a fresh once. Callers
				// already blocked on this once see ok=false and take the
				// solo fallback; the panic continues up to the per-
				// candidate recovery.
				bindMu.Lock()
				if bindMemo[e.key] == e {
					bindUnlink(e)
					delete(bindMemo, e.key)
				}
				bindMu.Unlock()
				panic(r)
			}
		}()
		faultinject.Fire(faultinject.PointBind, "")
		e.b, e.ok = sc.bind(inst, ifc)
	})
	return e.b, e.ok
}

// bind resolves every handle the scheduled run needs, once. Any resolution
// failure (a candidate missing an expected port, an interface output that is
// not a top-level net) aborts the binding and the run falls back to the
// name-keyed path, which reproduces the interpreted error behavior
// byte-for-byte.
func (sc *Schedule) bind(s sim.Instance, ifc *Interface) (binding, bool) {
	b := binding{clock: -1, ins: make([]int, len(sc.names)), outs: make([]int, len(ifc.Outputs))}
	if ifc.Clock != "" {
		h, err := s.InputHandle(ifc.Clock)
		if err != nil {
			return binding{}, false
		}
		b.clock = h
	}
	for i, name := range sc.names {
		h, err := s.InputHandle(name)
		if err != nil {
			return binding{}, false
		}
		b.ins[i] = h
	}
	for i, out := range ifc.Outputs {
		h, err := s.OutputHandle(out.Name)
		if err != nil {
			return binding{}, false
		}
		b.outs[i] = h
	}
	return b, true
}

// driveStep drives one step row through the binding's input handles, in the
// schedule's fixed (sorted) order, and advances the simulation one step
// (clock tick or settle). rowOff is the word offset of the step's row.
func (sc *Schedule) driveStep(s sim.Instance, b *binding, rowOff int) error {
	off := rowOff
	for i, h := range b.ins {
		nw := int(sc.wordsOf[i])
		s.SetInputH(h, sim.ValueView(int(sc.widths[i]), sc.val[off:off+nw], sc.xz[off:off+nw]))
		off += nw
	}
	if b.clock >= 0 {
		return s.TickH(b.clock)
	}
	return s.Settle()
}

// runCaseSched is runCase on the scheduled fast path: same drives, same
// advance, same recorded bytes — with every name resolved ahead of time.
func runCaseSched(s sim.Instance, st *Stimulus, sc *Schedule, b *binding, ci int) (CaseTrace, error) {
	var ct CaseTrace
	if b.clock >= 0 {
		s.SetInputUintH(b.clock, 0)
	}
	nOuts := len(st.Ifc.Outputs)
	nSteps := int(sc.stepOff[ci+1] - sc.stepOff[ci])
	steps := make([]StepRecord, 0, nSteps)
	flat := make([]string, nSteps*nOuts)
	var scratch []byte
	row := int(sc.stepOff[ci]) * sc.rowWords
	for si := 0; si < nSteps; si++ {
		if err := sc.driveStep(s, b, row); err != nil {
			return ct, err
		}
		row += sc.rowWords
		rec := StepRecord{Outputs: flat[:nOuts:nOuts]}
		flat = flat[nOuts:]
		for i, out := range st.Ifc.Outputs {
			scratch = s.AppendOutputH(scratch[:0], b.outs[i], out.Width)
			rec.Outputs[i] = string(scratch)
		}
		steps = append(steps, rec)
	}
	ct.Steps = steps
	return ct, nil
}

// runCaseFPSched is runCaseFP on the scheduled fast path: it folds exactly
// the bytes runCaseSched records, allocating nothing per step or output.
func runCaseFPSched(s sim.Instance, st *Stimulus, sc *Schedule, b *binding, ci int) (uint64, error) {
	if b.clock >= 0 {
		s.SetInputUintH(b.clock, 0)
	}
	h := fnvOffset64
	nSteps := int(sc.stepOff[ci+1] - sc.stepOff[ci])
	row := int(sc.stepOff[ci]) * sc.rowWords
	for si := 0; si < nSteps; si++ {
		if err := sc.driveStep(s, b, row); err != nil {
			return 0, err
		}
		row += sc.rowWords
		for i, out := range st.Ifc.Outputs {
			h = s.HashOutputH(h, b.outs[i], out.Width)
			h = fnvByte(h, '\n')
		}
	}
	return h, nil
}
