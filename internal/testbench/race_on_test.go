//go:build race

package testbench

// raceEnabled reports that the race detector is active (alloc accounting is
// perturbed by it, so tight allocation budgets skip).
const raceEnabled = true
